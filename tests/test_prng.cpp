#include "cnet/util/prng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cnet::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro, BelowOneIsZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowCoversSmallRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, BelowRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.below(kBuckets)];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets / 5);
  }
}

TEST(Xoshiro, RangeInclusiveBounds) {
  Xoshiro256 rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, Uniform01InUnitInterval) {
  Xoshiro256 rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256 a(23);
  Xoshiro256 b(23);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace cnet::util
