// Difference merging network M(t, δ): Lemma 3.1 (depth), Lemma 3.2/3.3
// (difference-merging property), §3.3 (comparison with the bitonic merger).
#include "cnet/core/merging.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"

namespace cnet::core {
namespace {

TEST(MergingParams, ValidityRule) {
  // t = p·2^i, δ = 2^j, 1 <= j < i  <=>  δ power of two >= 2 and 2δ | t.
  EXPECT_TRUE(is_valid_merging_params(4, 2));
  EXPECT_TRUE(is_valid_merging_params(8, 2));
  EXPECT_TRUE(is_valid_merging_params(8, 4));
  EXPECT_TRUE(is_valid_merging_params(16, 4));
  EXPECT_TRUE(is_valid_merging_params(24, 4));   // p=3, i=3, j=2
  EXPECT_FALSE(is_valid_merging_params(8, 8));   // needs j < i
  EXPECT_FALSE(is_valid_merging_params(8, 3));   // δ not a power of two
  EXPECT_FALSE(is_valid_merging_params(8, 1));   // δ < 2
  EXPECT_FALSE(is_valid_merging_params(6, 2));   // 4 does not divide 6
  EXPECT_FALSE(is_valid_merging_params(0, 2));
}

TEST(MergingParams, ConstructorRejectsInvalid) {
  EXPECT_THROW((void)make_merging(8, 8), std::invalid_argument);
  EXPECT_THROW((void)make_merging(6, 2), std::invalid_argument);
}

// Lemma 3.1: depth(M(t, δ)) = lg δ.
TEST(Merging, DepthIsLgDelta) {
  for (const std::size_t t : {8u, 16u, 32u, 48u, 64u}) {
    for (std::size_t delta = 2; 2 * delta <= t; delta *= 2) {
      if (!is_valid_merging_params(t, delta)) continue;
      const auto net = make_merging(t, delta);
      EXPECT_EQ(net.depth(), util::ilog2(delta))
          << "t=" << t << " delta=" << delta;
      EXPECT_TRUE(net.is_regular());
      EXPECT_EQ(net.width_in(), t);
      EXPECT_EQ(net.width_out(), t);
    }
  }
}

// Balancer count: every layer has t/2 balancers, so lg δ · t/2 in total.
TEST(Merging, BalancerCount) {
  for (const std::size_t t : {8u, 16u, 32u}) {
    for (std::size_t delta = 2; 2 * delta <= t; delta *= 2) {
      const auto net = make_merging(t, delta);
      EXPECT_EQ(net.num_balancers(), util::ilog2(delta) * t / 2);
    }
  }
}

// Lemmas 3.2/3.3, checked exhaustively: for every pair of step inputs whose
// sums differ by gap in [0, δ], the output is step.
class MergingProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MergingProperty, MergesAllStepPairsWithinDelta) {
  const auto [t, delta] = GetParam();
  const auto net = make_merging(t, delta);
  const std::size_t half = t / 2;
  const auto max_sum = static_cast<seq::Value>(3 * t);
  for (seq::Value sum_y = 0; sum_y <= max_sum; ++sum_y) {
    for (seq::Value gap = 0; gap <= static_cast<seq::Value>(delta); ++gap) {
      const auto x = seq::make_step(half, sum_y + gap);
      const auto y = seq::make_step(half, sum_y);
      seq::Sequence input = x;
      input.insert(input.end(), y.begin(), y.end());
      const auto z = topo::evaluate(net, input);
      ASSERT_TRUE(seq::is_step(z))
          << "t=" << t << " delta=" << delta << " sum_y=" << sum_y
          << " gap=" << gap;
      ASSERT_EQ(seq::sum(z), sum_y + gap + sum_y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergingProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{8, 2},
                      std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{16, 2},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{16, 8},
                      std::pair<std::size_t, std::size_t>{24, 4},
                      std::pair<std::size_t, std::size_t>{32, 8},
                      std::pair<std::size_t, std::size_t>{32, 16}),
    [](const auto& pinfo) {
      return "t" + std::to_string(pinfo.param.first) + "_d" +
             std::to_string(pinfo.param.second);
    });

// Beyond δ the merge may (and for some inputs must) fail — the guarantee is
// tight in the sense that some gap > δ breaks the step property.
TEST(Merging, GapBeyondDeltaCanBreakStepProperty) {
  const auto net = make_merging(16, 2);
  bool found_violation = false;
  for (seq::Value sum_y = 0; sum_y <= 48 && !found_violation; ++sum_y) {
    for (seq::Value gap = 3; gap <= 8 && !found_violation; ++gap) {
      const auto x = seq::make_step(8, sum_y + gap);
      const auto y = seq::make_step(8, sum_y);
      seq::Sequence input = x;
      input.insert(input.end(), y.begin(), y.end());
      found_violation = !seq::is_step(topo::evaluate(net, input));
    }
  }
  EXPECT_TRUE(found_violation);
}

// §3.3: our merger is strictly shallower than a width-t bitonic merger
// (depth lg t) whenever δ < t.
TEST(Merging, ShallowerThanBitonicMergerDepth) {
  for (const std::size_t t : {16u, 32u, 64u, 128u}) {
    for (std::size_t delta = 2; 2 * delta <= t; delta *= 2) {
      const auto net = make_merging(t, delta);
      EXPECT_LT(net.depth(), util::ilog2(t));
    }
  }
}

}  // namespace
}  // namespace cnet::core
