// Discrete-event timed simulator: exact small cases, conservation laws,
// and the qualitative throughput behaviour the experimental study reports.
#include "cnet/sim/timed_sim.hpp"

#include <gtest/gtest.h>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/util/bitops.hpp"

namespace cnet::sim {
namespace {

topo::Topology single_balancer(std::size_t inputs, std::size_t outputs) {
  topo::Builder b;
  const auto in = b.add_network_inputs(inputs);
  b.set_outputs(b.add_balancer(in, outputs));
  return std::move(b).build();
}

TEST(TimedSim, RejectsBadConfig) {
  const auto net = single_balancer(2, 2);
  TimedConfig cfg;
  cfg.total_tokens = 0;
  EXPECT_THROW((void)simulate_timed(net, cfg), std::invalid_argument);
  cfg.total_tokens = 1;
  cfg.service_time = 0.0;
  EXPECT_THROW((void)simulate_timed(net, cfg), std::invalid_argument);
}

TEST(TimedSim, SingleTokenSingleBalancerExactTimes) {
  const auto net = single_balancer(2, 2);
  TimedConfig cfg;
  cfg.concurrency = 1;
  cfg.total_tokens = 1;
  cfg.service_time = 2.5;
  const auto res = simulate_timed(net, cfg);
  EXPECT_DOUBLE_EQ(res.makespan, 2.5);
  EXPECT_DOUBLE_EQ(res.mean_latency, 2.5);
  EXPECT_DOUBLE_EQ(res.max_latency, 2.5);
  EXPECT_DOUBLE_EQ(res.mean_queue_wait, 0.0);
}

TEST(TimedSim, SequentialTokensSerializeOnOneBalancer) {
  // One process, m tokens, service 1: makespan = m (think time 0).
  const auto net = single_balancer(2, 2);
  TimedConfig cfg;
  cfg.concurrency = 1;
  cfg.total_tokens = 10;
  const auto res = simulate_timed(net, cfg);
  EXPECT_DOUBLE_EQ(res.makespan, 10.0);
  EXPECT_DOUBLE_EQ(res.throughput, 1.0);
}

TEST(TimedSim, TwoProcessesQueueAtOneBalancer) {
  // Both tokens arrive at t=0; the second waits one service.
  const auto net = single_balancer(2, 2);
  TimedConfig cfg;
  cfg.concurrency = 2;
  cfg.total_tokens = 2;
  const auto res = simulate_timed(net, cfg);
  EXPECT_DOUBLE_EQ(res.makespan, 2.0);
  EXPECT_DOUBLE_EQ(res.max_latency, 2.0);
  EXPECT_DOUBLE_EQ(res.mean_queue_wait, 0.5);  // (0 + 1) / 2
}

TEST(TimedSim, PipelineOverlapsAcrossLayers) {
  // Two balancers in series (width 2). Two tokens from one wire pipeline:
  // makespan 3, not 4.
  topo::Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [a0, a1] = b.add_balancer2(in[0], in[1]);
  const auto [c0, c1] = b.add_balancer2(a0, a1);
  const topo::WireId outs[2] = {c0, c1};
  b.set_outputs(outs);
  const auto net = std::move(b).build();
  TimedConfig cfg;
  cfg.concurrency = 2;
  cfg.total_tokens = 2;
  const auto res = simulate_timed(net, cfg);
  EXPECT_DOUBLE_EQ(res.makespan, 3.0);
}

TEST(TimedSim, WireDelayAddsUp) {
  const auto net = core::make_counting(4, 4);  // depth 3
  TimedConfig cfg;
  cfg.concurrency = 1;
  cfg.total_tokens = 1;
  cfg.wire_delay = 0.5;
  // Path: 3 services + 3 post-balancer wire hops (the final hop reaches the
  // output).
  const auto res = simulate_timed(net, cfg);
  EXPECT_DOUBLE_EQ(res.makespan, 3.0 + 3 * 0.5);
}

TEST(TimedSim, LatencyAtLeastDepthTimesService) {
  for (const std::size_t w : {4u, 8u, 16u}) {
    const auto net = baselines::make_bitonic(w);
    TimedConfig cfg;
    cfg.concurrency = 8;
    cfg.total_tokens = 200;
    const auto res = simulate_timed(net, cfg);
    EXPECT_GE(res.mean_latency,
              static_cast<double>(net.depth()) * cfg.service_time);
  }
}

TEST(TimedSim, ExponentialServiceMatchesMeanInExpectation) {
  // One process, no queueing: mean latency over many tokens must approach
  // depth * mean service time (LLN; generous tolerance).
  const auto net = core::make_counting(4, 4);  // depth 3
  TimedConfig cfg;
  cfg.concurrency = 1;
  cfg.total_tokens = 20000;
  cfg.exponential_service = true;
  cfg.seed = 11;
  const auto res = simulate_timed(net, cfg);
  EXPECT_NEAR(res.mean_latency, 3.0, 0.15);
  EXPECT_DOUBLE_EQ(res.mean_queue_wait, 0.0);
}

TEST(TimedSim, DeterministicForFixedSeed) {
  const auto net = core::make_counting(8, 16);
  TimedConfig cfg;
  cfg.concurrency = 12;
  cfg.total_tokens = 500;
  cfg.exponential_service = true;
  cfg.seed = 77;
  const auto r1 = simulate_timed(net, cfg);
  const auto r2 = simulate_timed(net, cfg);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_DOUBLE_EQ(r1.mean_latency, r2.mean_latency);
}

TEST(TimedSim, ThroughputGrowsWithConcurrencyThenSaturates) {
  const auto net = core::make_counting(8, 8);
  auto tp = [&](std::size_t n) {
    TimedConfig cfg;
    cfg.concurrency = n;
    cfg.total_tokens = 2000;
    return simulate_timed(net, cfg).throughput;
  };
  const double t1 = tp(1), t4 = tp(4), t32 = tp(32), t128 = tp(128);
  EXPECT_GT(t4, t1 * 1.5);  // scaling regime
  EXPECT_GT(t32, t4);
  EXPECT_LE(t128, t32 * 1.25);  // saturated regime: no big further gains
}

// The experimental-study shape: under heavy concurrency the wide-output
// C(w, w·lgw) sustains at least the throughput of the bitonic network of
// equal width and depth (queues in N_c are spread over t servers).
TEST(TimedSim, WideOutputBeatsBitonicUnderLoad) {
  const std::size_t w = 16;
  const std::size_t n = 256;
  TimedConfig cfg;
  cfg.concurrency = n;
  cfg.total_tokens = 4000;
  const double bitonic =
      simulate_timed(baselines::make_bitonic(w), cfg).throughput;
  const double wide =
      simulate_timed(core::make_counting(w, w * util::ilog2(w)), cfg)
          .throughput;
  EXPECT_GE(wide, bitonic * 0.95)
      << "wide=" << wide << " bitonic=" << bitonic;
}

}  // namespace
}  // namespace cnet::sim
