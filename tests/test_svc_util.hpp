// Helpers for the backend-parameterized svc test suites. Kept out of
// test_util.hpp so the core-layer tests don't pick up a dependency on the
// svc headers.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cnet/svc/backend.hpp"

namespace cnet::test {

// gtest-safe suffix ("central_atomic", ...) for suites parameterized over
// every counter backend kind.
inline std::string backend_param_name(
    const ::testing::TestParamInfo<svc::BackendKind>& pinfo) {
  std::string name = svc::backend_kind_name(pinfo.param);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

}  // namespace cnet::test
