// Helpers for the backend-parameterized svc test suites. Kept out of
// test_util.hpp so the core-layer tests don't pick up a dependency on the
// svc headers.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cnet/svc/backend.hpp"

namespace cnet::test {

// gtest-safe suffix ("central_atomic", ...) for suites parameterized over
// every counter backend kind.
inline std::string backend_param_name(
    const ::testing::TestParamInfo<svc::BackendKind>& pinfo) {
  std::string name = svc::backend_kind_name(pinfo.param);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

// Same for full backend specs ("elim_central_atomic", ...).
inline std::string backend_spec_param_name(
    const ::testing::TestParamInfo<svc::BackendSpec>& pinfo) {
  std::string name = svc::backend_spec_name(pinfo.param);
  std::replace(name.begin(), name.end(), '-', '_');
  std::replace(name.begin(), name.end(), '+', '_');
  return name;
}

// Every pool-capable kind plain and behind the elimination front-end —
// the axis for suites that must cover "all backends including elim+".
inline std::vector<svc::BackendSpec> all_pool_backend_specs() {
  std::vector<svc::BackendSpec> specs;
  for (const svc::BackendKind kind : svc::kPoolBackendKinds) {
    specs.push_back({kind, false});
    specs.push_back({kind, true});
  }
  return specs;
}

}  // namespace cnet::test
