// dist::PeerCluster's lease ledger, edge cases first: an expiry racing a
// renewal settles exactly once (never revived, never double-refunded), a
// healed partition reconciles its escrowed debt exactly, a zero-lease
// node degrades to local-pool-only admission, donations keep the donor's
// hierarchy grant parts, and the reweigh push (subscribe) reaches every
// connected node while a partitioned one catches up at heal. The hammer
// at the end runs renew/admit threads against a racing clock with a
// partition cycling through — the TSan concurrency label covers the
// ledger mutexes, the donation scoped_lock, and the settled-flag
// exactly-once protocol.
#include "cnet/dist/peer_cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cnet/dist/topology.hpp"
#include "cnet/svc/quota.hpp"

namespace cnet::dist {
namespace {

// Two dcs, one rack each, two nodes per rack: 0|1 are rack-mates, 2|3 are
// rack-mates, cross-dc is remote.
Topology four_nodes() {
  return Topology({{0, 0}, {0, 0}, {1, 0}, {1, 0}});
}

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.parent_initial = 100;
  cfg.node_account_initial = 100;
  cfg.borrow_budget = 0;  // child-account-only grants: exact arithmetic
  cfg.local_initial = 0;
  cfg.lease_chunk = 100;
  cfg.lease_cap = 200;
  cfg.lease_ttl = 4;
  cfg.peer_reserve = 24;
  cfg.reconcile_chunk = 64;
  return cfg;
}

std::uint64_t drain(svc::NetTokenBucket& bucket) {
  std::uint64_t total = 0;
  while (bucket.consume(0, 1, svc::kPartialOk) == 1) ++total;
  return total;
}

std::uint64_t settle_and_drain(PeerCluster& cluster) {
  cluster.expire_all(0);
  std::uint64_t drained = 0;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    drained += cluster.drain_local(0, i);
  }
  drained += cluster.drain_global(0);
  return drained;
}

TEST(DistLeases, ExpirySettlesExactlyOnceAndIsNeverRevived) {
  PeerCluster cluster(four_nodes(), small_config());
  ASSERT_EQ(cluster.renew(0, 0, 100), 100u);
  EXPECT_EQ(cluster.local_balance(0), 100);
  EXPECT_EQ(cluster.leased_tokens(0), 100u);

  // The lease expires untouched: all 100 tokens recover and refund to the
  // account they came from.
  cluster.advance(0, 4);
  EXPECT_EQ(cluster.expiries(), 1u);
  EXPECT_EQ(cluster.expiry_recovered(), 100u);
  EXPECT_EQ(cluster.expiry_refunded(), 100u);
  EXPECT_EQ(cluster.local_balance(0), 0);
  EXPECT_EQ(cluster.leased_tokens(0), 0u);

  // A second sweep at the same instant finds nothing to settle — the
  // settled flag (and the erase behind it) is the exactly-once guard.
  cluster.advance(0, 4);
  EXPECT_EQ(cluster.expiries(), 1u);
  EXPECT_EQ(cluster.expiry_refunded(), 100u);

  // A renewal after the sweep starts a fresh lease from the refunded
  // account; the settled lease is never revived or re-extended.
  ASSERT_EQ(cluster.renew(0, 0, 100), 100u);
  EXPECT_EQ(cluster.leased_tokens(0), 100u);
  cluster.advance(0, 8);
  EXPECT_EQ(cluster.expiries(), 2u);
  EXPECT_EQ(cluster.expiry_refunded(), 200u);

  const std::uint64_t drained = settle_and_drain(cluster);
  EXPECT_EQ(cluster.total_spent() + drained,
            cluster.total_initial_tokens());
}

TEST(DistLeases, DonatedLeaseKeepsDonorGrantPartsAndSettlesToDonor) {
  ClusterConfig cfg = small_config();
  cfg.lease_chunk = 50;  // so a want of 50 asks for exactly 50
  PeerCluster cluster(four_nodes(), cfg);
  ASSERT_EQ(cluster.renew(0, 0, 100), 100u);

  // Node 1's renewal is served rack-locally: node 0's surplus above its
  // reserve, carved out of node 0's lease — no global acquire involved.
  EXPECT_EQ(cluster.renew(0, 1, 50), 50u);
  EXPECT_EQ(cluster.donations(), 1u);
  EXPECT_EQ(cluster.donated_tokens(), 50u);
  EXPECT_EQ(cluster.local_balance(0), 50);
  EXPECT_EQ(cluster.local_balance(1), 50);
  EXPECT_EQ(cluster.leased_tokens(1), 50u);

  // Node 1 spends 10 of the donated tokens, then everything expires: the
  // transferred lease still settles against the *donor's* account, so
  // node 0's account gets back exactly its unspent 90 while node 1's
  // account was never touched.
  EXPECT_EQ(cluster.admit(0, 1, 10), 10u);
  cluster.expire_all(0);
  EXPECT_EQ(cluster.expiry_recovered(), 90u);
  EXPECT_EQ(cluster.expiry_refunded(), 90u);
  EXPECT_EQ(drain(cluster.global().child(0)), 90u);
  EXPECT_EQ(drain(cluster.global().child(1)), 100u);

  std::uint64_t drained = 0;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    drained += cluster.drain_local(0, i);
  }
  drained += cluster.drain_global(0);
  // 190 already drained by hand above; the ledger still balances.
  EXPECT_EQ(cluster.total_spent() + drained + 190u,
            cluster.total_initial_tokens());
}

TEST(DistLeases, HealedPartitionReconcilesOutstandingDebtExactly) {
  PeerCluster cluster(four_nodes(), small_config());
  ASSERT_EQ(cluster.renew(0, 2, 100), 100u);
  EXPECT_EQ(cluster.admit(0, 2, 30), 30u);

  // The partition blocks the control plane; the lease expires while dark,
  // so its 70 unspent tokens recover into debt escrow — held out of every
  // pool, counted once.
  cluster.partition(2);
  cluster.advance(0, 4);
  EXPECT_EQ(cluster.debt_created(), 70u);
  EXPECT_EQ(cluster.debt_tokens(2), 70u);
  EXPECT_EQ(cluster.debt_reconciled(), 0u);
  EXPECT_EQ(cluster.expiry_recovered(), 70u);
  EXPECT_EQ(cluster.expiry_refunded(), 0u);  // nothing refunded while dark

  // Heal replays the escrow exactly once; the refund lands in the
  // account the lease was granted from.
  cluster.heal(0, 2);
  EXPECT_EQ(cluster.debt_reconciled(), 70u);
  EXPECT_EQ(cluster.debt_tokens(2), 0u);
  EXPECT_EQ(cluster.expiry_refunded(), 70u);
  EXPECT_EQ(drain(cluster.global().child(2)), 70u);

  std::uint64_t drained = settle_and_drain(cluster);
  EXPECT_EQ(cluster.total_spent() + drained + 70u,
            cluster.total_initial_tokens());
}

TEST(DistLeases, ZeroLeaseNodeDegradesToLocalPoolOnlyAdmission) {
  ClusterConfig cfg = small_config();
  cfg.local_initial = 16;
  PeerCluster cluster(four_nodes(), cfg);
  cluster.partition(3);

  // Never renewed: the node holds nothing but its initial local pool. It
  // spends exactly that, then admits nothing and cannot renew.
  std::uint64_t spent = 0;
  while (cluster.admit(0, 3, 1) == 1) ++spent;
  EXPECT_EQ(spent, 16u);
  EXPECT_EQ(cluster.leased_tokens(3), 0u);
  EXPECT_EQ(cluster.renew(0, 3, 100), 0u);
  EXPECT_EQ(cluster.admit(0, 3, 1), 0u);

  // Heal reopens the control plane; the node is back to full service.
  cluster.heal(0, 3);
  EXPECT_GT(cluster.renew(0, 3, 100), 0u);
  EXPECT_EQ(cluster.admit(0, 3, 1), 1u);

  const std::uint64_t drained = settle_and_drain(cluster);
  EXPECT_EQ(cluster.total_spent() + drained,
            cluster.total_initial_tokens());
}

TEST(DistLeases, ReweighPushReachesConnectedNodesAndHealCatchesUp) {
  PeerCluster cluster(four_nodes(), small_config());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.observed_reweigh_version(i), 1u);
  }

  cluster.global().reweigh(0, {2, 1, 1, 1});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.observed_reweigh_version(i), 2u);
  }

  // A dark node misses the push — no polling anywhere — and learns the
  // committed version at heal().
  cluster.partition(3);
  cluster.global().reweigh(0, {1, 2, 1, 1});
  EXPECT_EQ(cluster.observed_reweigh_version(0), 3u);
  EXPECT_EQ(cluster.observed_reweigh_version(3), 2u);
  cluster.heal(0, 3);
  EXPECT_EQ(cluster.observed_reweigh_version(3), 3u);
}

// The TSan hammer: renew/admit threads race a clock thread driving
// expiries every other tick, with one node cycling through
// partition/heal. Every settle decision crosses the ledger mutexes and
// the donation scoped_lock; conservation at the end proves exactly-once
// for every lease that raced its renewal.
TEST(DistLeases, ExpiryRenewalPartitionHammerConservesExactly) {
  ClusterConfig cfg;
  cfg.parent_initial = 512;
  cfg.node_account_initial = 128;
  cfg.borrow_budget = 256;
  cfg.local_initial = 16;
  cfg.lease_chunk = 32;
  cfg.lease_cap = 128;
  cfg.lease_ttl = 2;
  cfg.peer_reserve = 8;
  cfg.reconcile_chunk = 64;
  PeerCluster cluster(four_nodes(), cfg);

  constexpr std::size_t kNodes = 4;
  constexpr std::uint64_t kIters = 1500;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t node = 0; node < kNodes; ++node) {
    threads.emplace_back([&, node] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        if (i % 8 == 0) cluster.renew(node, node, 32);
        cluster.admit(node, node, 1 + i % 3);
      }
    });
  }
  threads.emplace_back([&] {
    std::uint64_t t = 0;
    while (!stop.load(std::memory_order_acquire)) {
      cluster.advance(kNodes, ++t);
      if (t % 64 == 17) cluster.partition(2);
      if (t % 64 == 49) cluster.heal(kNodes, 2);
    }
  });
  for (std::size_t node = 0; node < kNodes; ++node) threads[node].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  cluster.heal(0, 2);  // idempotent if the clock already healed it
  const std::uint64_t drained = settle_and_drain(cluster);
  EXPECT_EQ(cluster.total_spent() + drained,
            cluster.total_initial_tokens());
  EXPECT_EQ(cluster.expiry_recovered(), cluster.expiry_refunded());
  EXPECT_EQ(cluster.debt_created(), cluster.debt_reconciled());
  EXPECT_EQ(cluster.debt_tokens(2), 0u);
}

}  // namespace
}  // namespace cnet::dist
