// svc::LoadStats: the sampler must never produce an underflowed window.
// The historical bug: the caller read its lifetime event total *before*
// winning the sampler claim, so a concurrent sampler could advance
// last_events_ past the captured total and the delta wrapped to ~2^64 —
// one poisoned window was enough to force a spurious adaptive switch.
// These tests pin the clamp (pre-captured form) and the re-read-after-
// claim form, then hammer the claim race under the concurrency label so
// TSan sees the sampler fields too.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "cnet/svc/load_stats.hpp"

namespace cnet::svc {
namespace {

TEST(LoadStats, StaleTotalClampsToEmptyWindowInsteadOfWrapping) {
  LoadStats stats(1);
  stats.record_ops(0);
  // First sample observes 150 lifetime events.
  auto first = stats.sample(std::uint64_t{150});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->events, 150u);

  // Regression: a sampler that captured its total before the first one ran
  // hands in a stale 100. Pre-fix this produced 100 - 150 == ~2^64 events
  // (event_rate ~1.8e17 per op) and a guaranteed spurious switch; the
  // clamp must yield an empty window instead.
  stats.record_ops(0);
  auto stale = stats.sample(std::uint64_t{100});
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->events, 0u);
  EXPECT_EQ(stale->event_rate(), 0.0);

  // The high-water mark survives the stale sample: progress past 150 is
  // measured from 150, not from the stale 100.
  stats.record_ops(0);
  auto next = stats.sample(std::uint64_t{160});
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->events, 10u);
}

TEST(LoadStats, CallableFormReadsTheTotalAfterClaiming) {
  LoadStats stats(1);
  std::uint64_t reads = 0;
  std::uint64_t total = 40;
  stats.record_ops(0);
  auto window = stats.sample([&] {
    ++reads;
    return total;
  });
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(reads, 1u);  // read exactly once, inside the claim
  EXPECT_EQ(window->events, 40u);
  EXPECT_EQ(window->ops, 1u);
}

TEST(LoadStats, WindowsPartitionTheOpStream) {
  LoadStats stats(4);
  std::uint64_t sampled_ops = 0;
  for (int i = 0; i < 100; ++i) {
    if (stats.record_ops(0)) {
      const auto w = stats.sample(std::uint64_t{0});
      ASSERT_TRUE(w.has_value());
      sampled_ops += w->ops;
    }
  }
  const auto tail = stats.sample(std::uint64_t{0});
  ASSERT_TRUE(tail.has_value());
  sampled_ops += tail->ops;
  EXPECT_EQ(sampled_ops, 100u);
}

TEST(LoadStats, ConcurrentStaleSamplersNeverObserveWrappedWindows) {
  // The original interleaving, live: every thread captures the event total
  // *before* calling sample (the pre-fix call pattern), so captured totals
  // routinely lag a faster sampler's update. No window may ever report
  // more events than were recorded in the whole run.
  constexpr std::uint64_t kPerThread = 20000;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kTotal = kPerThread * kThreads;
  LoadStats stats(8);
  std::atomic<std::uint64_t> events{0};
  std::vector<std::uint64_t> max_seen(kThreads, 0);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          events.fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t snap = events.load(std::memory_order_relaxed);
          if (!stats.record_ops(t)) continue;
          if (const auto w = stats.sample(snap)) {
            max_seen[t] = std::max(max_seen[t], w->events);
          }
        }
      });
    }
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_LE(max_seen[t], kTotal) << "window wrapped on thread " << t;
  }
}

}  // namespace
}  // namespace cnet::svc
