// Baseline networks: bitonic and periodic (AHS'94), diffracting tree
// topology (Shavit–Zemach). All must be counting networks.
#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/difftree.hpp"
#include "cnet/baselines/periodic.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/core/butterfly.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/topology/isomorphism.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"
#include "test_util.hpp"

namespace cnet::baselines {
namespace {

// --- Bitonic --------------------------------------------------------------

TEST(Bitonic, DepthMatchesClosedForm) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const std::size_t k = util::ilog2(w);
    EXPECT_EQ(make_bitonic(w).depth(), (k * k + k) / 2) << w;
  }
}

TEST(Bitonic, SameDepthAsCountingNetwork) {
  // §1.3.1: depth(C(w,t)) equals the bitonic depth for every t.
  for (const std::size_t w : {4u, 8u, 16u}) {
    EXPECT_EQ(make_bitonic(w).depth(), core::make_counting(w, w).depth());
    EXPECT_EQ(make_bitonic(w).depth(),
              core::make_counting(w, 4 * w).depth());
  }
}

TEST(Bitonic, IsRegularAllTwoTwo) {
  const auto net = make_bitonic(16);
  EXPECT_TRUE(net.is_regular());
  const auto census = net.census();
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census[0].fan_in, 2u);
  EXPECT_EQ(census[0].fan_out, 2u);
}

TEST(Bitonic, CountsExhaustivelySmall) {
  for (const std::size_t w : {2u, 4u, 8u}) {
    EXPECT_FALSE(
        topo::check_counting_exhaustive(make_bitonic(w), 3).has_value())
        << w;
  }
}

class BitonicRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitonicRandom, CountsOnRandomInputs) {
  const std::size_t w = GetParam();
  const auto net = make_bitonic(w);
  util::Xoshiro256 rng(0xB170 + w);
  EXPECT_FALSE(topo::check_counting_random(net, 300, 50, rng).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitonicRandom,
                         ::testing::Values(16, 32, 64, 128),
                         ::testing::PrintToStringParamName());

TEST(Bitonic, MergerMergesStepPairs) {
  const auto merger = make_bitonic_merger(16);
  EXPECT_EQ(merger.depth(), 4u);  // lg t — contrast with M(t, δ)'s lg δ
  for (seq::Value sx = 0; sx <= 24; ++sx) {
    for (seq::Value sy = 0; sy <= 24; ++sy) {
      auto input = seq::make_step(8, sx);
      const auto y = seq::make_step(8, sy);
      input.insert(input.end(), y.begin(), y.end());
      EXPECT_TRUE(seq::is_step(topo::evaluate(merger, input)))
          << sx << "," << sy;
    }
  }
}

TEST(Bitonic, NotIsomorphicToCwwForW8) {
  // §3.3: the constructions differ even at w == t (non-isomorphic).
  const auto bitonic = make_bitonic(8);
  const auto cww = core::make_counting(8, 8);
  EXPECT_FALSE(topo::are_isomorphic(bitonic, cww));
}

TEST(Bitonic, RejectsBadWidth) {
  EXPECT_THROW((void)make_bitonic(6), std::invalid_argument);
  EXPECT_THROW((void)make_bitonic(1), std::invalid_argument);
}

// --- Periodic ---------------------------------------------------------------

TEST(Periodic, DepthIsLgSquared) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u}) {
    const std::size_t k = util::ilog2(w);
    EXPECT_EQ(make_periodic(w).depth(), k * k) << w;
    EXPECT_EQ(make_block(w).depth(), k) << w;
  }
}

TEST(Periodic, BlockIsomorphicToButterfly) {
  // The AHS Block[w] has the butterfly wiring diagram.
  for (const std::size_t w : {4u, 8u}) {
    EXPECT_TRUE(topo::are_isomorphic(
        make_block(w), core::make_forward_butterfly(w)))
        << w;
  }
}

TEST(Periodic, CountsExhaustivelySmall) {
  for (const std::size_t w : {2u, 4u, 8u}) {
    EXPECT_FALSE(
        topo::check_counting_exhaustive(make_periodic(w), 3).has_value())
        << w;
  }
}

class PeriodicRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeriodicRandom, CountsOnRandomInputs) {
  const std::size_t w = GetParam();
  const auto net = make_periodic(w);
  util::Xoshiro256 rng(0x9E10 + w);
  EXPECT_FALSE(topo::check_counting_random(net, 200, 50, rng).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeriodicRandom, ::testing::Values(16, 32, 64),
                         ::testing::PrintToStringParamName());

TEST(Periodic, SingleBlockDoesNotCount) {
  // One block is only a smoothing stage; lg w blocks are required.
  const auto net = make_block(8);
  EXPECT_TRUE(topo::check_counting_exhaustive(net, 2).has_value());
}

// --- Diffracting tree -------------------------------------------------------

TEST(DiffTree, ShapeAndDepth) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u}) {
    const auto net = make_diffracting_tree(w);
    EXPECT_EQ(net.width_in(), 1u);
    EXPECT_EQ(net.width_out(), w);
    EXPECT_EQ(net.depth(), util::ilog2(w));
    EXPECT_EQ(net.num_balancers(), w - 1);  // internal nodes of a full tree
    EXPECT_FALSE(net.is_regular());
  }
}

TEST(DiffTree, CountsForAnyTokenCount) {
  for (const std::size_t w : {2u, 4u, 8u, 16u}) {
    const auto net = make_diffracting_tree(w);
    for (seq::Value m = 0; m <= static_cast<seq::Value>(4 * w); ++m) {
      const seq::Sequence x = {m};
      const auto y = topo::evaluate(net, x);
      ASSERT_TRUE(seq::is_step(y)) << "w=" << w << " m=" << m;
      ASSERT_EQ(seq::sum(y), m);
    }
  }
}

TEST(DiffTree, LeafOrderIsBitReversed) {
  // With m = 1 token, it must exit on output 0; with m = 2, outputs 0 and 1;
  // the i-th token lands on leaf with bit-reversed path — the output
  // *ordering* hides this, i.e. outputs fill 0,1,2,... in order.
  const auto net = make_diffracting_tree(8);
  for (seq::Value m = 0; m <= 8; ++m) {
    const auto y = topo::evaluate(net, seq::Sequence{m});
    for (seq::Value i = 0; i < 8; ++i) {
      EXPECT_EQ(y[static_cast<std::size_t>(i)], i < m ? 1 : 0)
          << "m=" << m << " i=" << i;
    }
  }
}

TEST(DiffTree, RejectsBadWidth) {
  EXPECT_THROW((void)make_diffracting_tree(3), std::invalid_argument);
  EXPECT_THROW((void)make_diffracting_tree(1), std::invalid_argument);
}

}  // namespace
}  // namespace cnet::baselines
