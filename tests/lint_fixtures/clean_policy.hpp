// Fixture: a well-behaved policy header. Pure functions, a plain-data
// struct, an inline constexpr constant — nothing check_policy_purity.py
// should object to. Mentions of std::mutex in comments or "std::atomic"
// in string literals must NOT fire (the scanner strips both).
#pragma once

#include <algorithm>
#include <cstdint>

namespace cnet::fixture {

struct QuotaSplit {
  std::uint64_t from_child = 0;
  std::uint64_t from_parent = 0;
};

inline constexpr double kFrobCeiling = 0.75;

// Margin kept free under load (values above the ceiling clamp).
constexpr double frob_margin(double load) noexcept {
  return std::min(load * 0.5, kFrobCeiling);
}

inline constexpr double settle_ratio(std::uint64_t settled,
                                     std::uint64_t total) noexcept {
  return total == 0 ? 0.0 : static_cast<double>(settled) /
                                static_cast<double>(total);
}

}  // namespace cnet::fixture
