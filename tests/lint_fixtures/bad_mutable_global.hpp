// Fixture: mutable namespace-scope state in a "pure" policy header — two
// callers of the rule could observe each other. Expected violation class:
// mutable-global (and only that).
#pragma once

#include <cstdint>

namespace cnet::fixture {

inline std::uint64_t g_rule_evaluations = 0;

constexpr std::uint64_t passthrough(std::uint64_t v) noexcept { return v; }

}  // namespace cnet::fixture
