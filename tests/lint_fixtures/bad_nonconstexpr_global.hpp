// Fixture: a const-but-not-constexpr namespace-scope constant — runtime
// initialization order hazards, and the compiler cannot fold it. Expected
// violation class: nonconstexpr-global (and only that).
#pragma once

namespace cnet::fixture {

inline const double kSmoothingFactor = 0.875;

constexpr double passthrough(double v) noexcept { return v; }

}  // namespace cnet::fixture
