// Fixture: a policy header reaching back into the impure service layer.
// Expected violation class: impure-include (and only that).
#pragma once

#include <cstdint>

#include "cnet/svc/overload.hpp"

namespace cnet::fixture {

constexpr std::uint64_t passthrough(std::uint64_t v) noexcept { return v; }

}  // namespace cnet::fixture
