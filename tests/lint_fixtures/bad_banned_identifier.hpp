// Fixture: names an impure facility without including its header (the
// include arrived transitively — the way purity actually erodes). Expected
// violation class: banned-identifier (and only that).
#pragma once

#include <cstdint>

namespace cnet::fixture {

inline std::uint64_t stamp_now() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace cnet::fixture
