// Fixture: includes an impurity-smuggling standard header. Expected
// violation class: banned-include (and only that).
#pragma once

#include <atomic>
#include <cstdint>

namespace cnet::fixture {

constexpr std::uint64_t passthrough(std::uint64_t v) noexcept { return v; }

}  // namespace cnet::fixture
