// Self-test fixture: raw RAII lock types over a util::Mutex-shaped thing.
namespace fixture {

template <class M>
inline void twice(M& a, M& b) {
  const std::scoped_lock lock(a, b);
}

template <class M>
inline void once(M& m) {
  std::unique_lock<M> lock(m);
}

}  // namespace fixture
