// Self-test fixture: a bare yield spin the schedule checker cannot
// deschedule — must go through util::sched_yield.
#include <thread>

namespace fixture {

inline void spin_wait(const bool& flag) {
  while (!flag) std::this_thread::yield();
}

}  // namespace fixture
