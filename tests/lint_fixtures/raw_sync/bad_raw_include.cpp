// Self-test fixture: direct <mutex> include plus the primitives it brings.
#include <mutex>

namespace fixture {

inline int counter_bump(int& x) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  return ++x;
}

}  // namespace fixture
