// Self-test fixture: names a raw mutex type without including <mutex>
// itself (arrived transitively) — the identifier rule must still fire.
namespace fixture {

struct Holder {
  std::shared_mutex* mu = nullptr;
  std::condition_variable* cv = nullptr;
};

}  // namespace fixture
