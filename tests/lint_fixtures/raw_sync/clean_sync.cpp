// Self-test fixture: the blessed way to synchronize outside util/ and
// check/ — util wrappers only. Mentions of std::mutex in comments and
// "std::lock_guard in strings" must not fire either.
#include "cnet/util/mutex.hpp"
#include "cnet/util/sched_point.hpp"

namespace fixture {

inline int locked_add(cnet::util::Mutex& mu, int& x) {
  const cnet::util::MutexLock lock(mu);
  return ++x;
}

inline void polite_spin() {
  for (int i = 0; i < 4; ++i) cnet::util::sched_yield();
}

inline const char* label() { return "prefer std::lock_guard? no: MutexLock"; }

}  // namespace fixture
