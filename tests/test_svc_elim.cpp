// svc::EliminationLayer / svc::ElimCounter unit tests: the exchange-slot
// protocol (catch, deposit/withdraw, pair-value agreement) and the headline
// guarantee of the front-end — a paired increment/decrement cancels locally
// and never sends a token into the backing network (its traversal counter
// stays untouched).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/elimination.hpp"

namespace cnet::svc {
namespace {

using Role = EliminationLayer::Role;

TEST(EliminationLayer, CatchOnlyMissesOnEmptySlots) {
  EliminationLayer layer({.slots = 2, .max_spins = 64});
  std::int64_t value = 0;
  EXPECT_FALSE(layer.try_exchange(Role::kDec, 0, /*spins=*/0, &value));
  EXPECT_FALSE(layer.try_exchange(Role::kInc, 0, /*spins=*/0, &value));
  EXPECT_EQ(layer.pairs(), 0u);
  EXPECT_EQ(layer.withdrawals(), 0u);
}

TEST(EliminationLayer, DepositWithdrawsCleanlyAfterTimeout) {
  EliminationLayer layer({.slots = 1, .max_spins = 16});
  std::int64_t value = 0;
  EXPECT_FALSE(layer.try_exchange(Role::kInc, 0, /*spins=*/16, &value));
  EXPECT_EQ(layer.withdrawals(), 1u);
  // The slot must be empty again: a later opposite-role catch pass finds no
  // stale waiter to pair with.
  EXPECT_FALSE(layer.try_exchange(Role::kDec, 1, /*spins=*/0, &value));
  EXPECT_EQ(layer.pairs(), 0u);
}

TEST(EliminationLayer, PairAgreesOnOneNegativeValue) {
  EliminationLayer layer({.slots = 1, .max_spins = 64});
  std::int64_t waiter_value = 0, catcher_value = 0;
  bool waiter_paired = false;
  std::thread waiter([&] {
    // Large budget: stays deposited until the catcher arrives.
    waiter_paired =
        layer.try_exchange(Role::kInc, 0, 1u << 28, &waiter_value);
  });
  while (!layer.try_exchange(Role::kDec, 1, /*spins=*/0, &catcher_value)) {
    std::this_thread::yield();  // waiter not deposited yet
  }
  waiter.join();
  ASSERT_TRUE(waiter_paired);
  EXPECT_EQ(waiter_value, catcher_value);
  EXPECT_LT(waiter_value, 0);
  EXPECT_EQ(layer.pairs(), 1u);
}

TEST(ElimCounter, PairedIncDecNeverEntersTheNetwork) {
  // The tentpole guarantee, deterministically: one increment deposits, one
  // decrement collides with it, both complete — and the backing network's
  // traversal counter never moves, because neither token was ever routed.
  ElimCounter counter(
      std::make_unique<rt::BatchedNetworkCounter>(core::make_counting(4, 8),
                                                  "C(4,8)"),
      {.layer = {.slots = 1, .max_spins = 1u << 28},
       .inc_spins = 1u << 28,
       .dec_spins = 1u << 28});

  std::int64_t inc_value = 0;
  std::thread inc([&] { inc_value = counter.fetch_increment(0); });
  std::int64_t dec_value = 0;
  // Catch-only probes until the waiter shows up, so this thread can never
  // fall through to the backing counter either.
  while (!counter.layer().try_exchange(Role::kDec, 1, /*spins=*/0,
                                       &dec_value)) {
    std::this_thread::yield();
  }
  inc.join();

  EXPECT_EQ(inc_value, dec_value);
  EXPECT_LT(inc_value, 0);
  EXPECT_EQ(counter.layer().pairs(), 1u);
  EXPECT_EQ(counter.inner().traversal_count(), 0u)
      << "a paired inc/dec must not traverse the backing network";
  EXPECT_EQ(counter.inner().stall_count(), 0u);
}

TEST(ElimCounter, FallsThroughToBackingWithoutAPartner) {
  // Catch-only on both roles and a single thread: nothing ever pairs, so
  // the decorator must be a transparent pass-through.
  ElimCounter counter(
      std::make_unique<rt::BatchedNetworkCounter>(core::make_counting(4, 8),
                                                  "C(4,8)"),
      {.layer = {.slots = 2, .max_spins = 16},
       .inc_spins = 0,
       .dec_spins = 0});
  std::int64_t batch[5];
  counter.fetch_increment_batch(0, 5, batch);
  std::vector<std::int64_t> values(batch, batch + 5);
  values.push_back(counter.fetch_increment(1));
  std::sort(values.begin(), values.end());
  EXPECT_EQ(std::vector<std::int64_t>({0, 1, 2, 3, 4, 5}), values)
      << "pass-through increments must hand out the backing sequence";
  EXPECT_EQ(counter.traversal_count(), 6u);

  EXPECT_EQ(counter.try_fetch_decrement_n(0, 4), 4u);
  EXPECT_TRUE(counter.try_fetch_decrement(0));
  EXPECT_TRUE(counter.try_fetch_decrement(0));
  // Bound at zero: the pool is drained and must report empty.
  EXPECT_FALSE(counter.try_fetch_decrement(0));
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 4), 0u);
  EXPECT_EQ(counter.layer().pairs(), 0u);
}

TEST(BackendSpec, ParsesAndRoundTrips) {
  const auto plain = parse_backend_spec("batched-network");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->kind, BackendKind::kBatchedNetwork);
  EXPECT_FALSE(plain->elimination);

  const auto elim = parse_backend_spec("elim+central-atomic");
  ASSERT_TRUE(elim.has_value());
  EXPECT_EQ(elim->kind, BackendKind::kCentralAtomic);
  EXPECT_TRUE(elim->elimination);
  EXPECT_EQ(backend_spec_name(*elim), "elim+central-atomic");

  const auto adaptive = parse_backend_spec("elim+adaptive");
  ASSERT_TRUE(adaptive.has_value());
  EXPECT_EQ(adaptive->kind, BackendKind::kAdaptive);
  EXPECT_TRUE(adaptive->elimination);

  EXPECT_FALSE(parse_backend_spec("elim+").has_value());
  EXPECT_FALSE(parse_backend_spec("elim+bogus").has_value());
  EXPECT_FALSE(parse_backend_spec("bogus").has_value());
}

TEST(BackendSpec, ParseFailuresNameTheReason) {
  // A successful parse carries no error text.
  EXPECT_TRUE(parse_backend_spec("network").error.empty());

  // A bare prefix is its own failure mode, not an "unknown kind".
  const auto bare = parse_backend_spec("elim+");
  ASSERT_FALSE(bare.has_value());
  EXPECT_NE(bare.error.find("bare \"elim+\" prefix"), std::string::npos)
      << bare.error;

  // Unknown kinds list what IS known, so a typo'd flag is self-correcting.
  const auto unknown = parse_backend_spec("bogus");
  ASSERT_FALSE(unknown.has_value());
  EXPECT_NE(unknown.error.find("unknown backend kind \"bogus\""),
            std::string::npos)
      << unknown.error;
  EXPECT_NE(unknown.error.find("batched-network"), std::string::npos)
      << "the known-kinds list should appear in: " << unknown.error;

  // The prefix survives into the unknown-kind diagnosis.
  const auto prefixed = parse_backend_spec("elim+bogus");
  ASSERT_FALSE(prefixed.has_value());
  EXPECT_NE(prefixed.error.find("unknown backend kind \"bogus\""),
            std::string::npos)
      << prefixed.error;

  // A valid kind with junk appended is called out as trailing garbage
  // rather than lumped in with unknown kinds.
  const auto trailing = parse_backend_spec("central-atomicx");
  ASSERT_FALSE(trailing.has_value());
  EXPECT_NE(trailing.error.find("trailing garbage \"x\""), std::string::npos)
      << trailing.error;
  EXPECT_NE(trailing.error.find("\"central-atomic\""), std::string::npos)
      << trailing.error;
}

TEST(BackendSpec, FactoryComposesTheDecorator) {
  const auto counter =
      make_counter(BackendSpec{BackendKind::kCentralAtomic, true});
  EXPECT_EQ(counter->name(), "elim·central-atomic");
  EXPECT_NE(dynamic_cast<ElimCounter*>(counter.get()), nullptr);
}

}  // namespace
}  // namespace cnet::svc
