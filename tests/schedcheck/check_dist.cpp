// Schedule-checker driver: dist lease ledger, expiry-vs-renewal settlement.
//
// The protocol under test is the exactly-once settlement argument: a lease
// expiring (advance sweeps it, refunds the unspent part via settle_spent)
// while the owning node concurrently renews (extends TTLs, acquires a new
// lease) or spends. The oracle is the cluster's global conservation
// ledger: after force-expiring and draining everything,
//   local + global + spent == total_initial
// — a double settlement inflates the left side, a lost lease deflates it.
#include <cstdint>
#include <memory>

#include "cnet/check/driver.hpp"
#include "cnet/dist/peer_cluster.hpp"
#include "cnet/dist/topology.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/util/ensure.hpp"

namespace {

using cnet::check::Expect;
using cnet::check::Scenario;
using cnet::check::TestContext;
using cnet::dist::ClusterConfig;
using cnet::dist::NodeLocation;
using cnet::dist::PeerCluster;
using cnet::dist::Topology;

// One node, tiny budgets, central-atomic parent: the schedule space is the
// ledger mutex + the hierarchy's reservation words, not pool arithmetic.
std::shared_ptr<PeerCluster> tiny_cluster() {
  ClusterConfig cfg;
  cfg.parent_spec = {cnet::svc::BackendKind::kCentralAtomic, false};
  cfg.parent_initial = 8;
  cfg.node_account_initial = 4;
  cfg.borrow_budget = 4;
  cfg.local_initial = 0;
  cfg.refill_chunk = 2;
  cfg.lease_chunk = 2;
  cfg.lease_cap = 4;
  cfg.lease_ttl = 2;
  cfg.peer_reserve = 1;
  cfg.reconcile_chunk = 2;
  return std::make_shared<PeerCluster>(
      Topology({NodeLocation{0, 0}}), cfg);
}

void settle_and_check(PeerCluster& cluster) {
  cluster.expire_all(0);
  const std::uint64_t local = cluster.drain_local(0, 0);
  const std::uint64_t global = cluster.drain_global(0);
  CNET_ENSURE(local + global + cluster.total_spent() ==
                  cluster.total_initial_tokens(),
              "conservation broken: a lease settled twice or vanished");
  CNET_ENSURE(cluster.debt_tokens(0) == 0,
              "debt escrow nonzero with no partition in play");
  CNET_ENSURE(cluster.expiry_refunded() <= cluster.expiry_recovered(),
              "refunded more than expiries ever recovered");
}

void expiry_vs_renewal(TestContext& ctx) {
  auto cluster = tiny_cluster();
  // Seed one active lease (expiry = now + ttl = 2) before the race.
  const std::uint64_t seeded = cluster->renew(0, 0, 2);
  CNET_ENSURE(seeded >= 2, "seed renewal failed");
  ctx.spawn([cluster] { cluster->advance(0, 5); });  // sweeps the lease
  ctx.spawn([cluster] { cluster->renew(1, 0, 2); }); // races the sweep
  ctx.join_all();
  settle_and_check(*cluster);
}

void expiry_vs_spend(TestContext& ctx) {
  auto cluster = tiny_cluster();
  const std::uint64_t seeded = cluster->renew(0, 0, 2);
  CNET_ENSURE(seeded >= 2, "seed renewal failed");
  auto charged = std::make_shared<std::uint64_t>(0);
  ctx.spawn([cluster] { cluster->advance(0, 5); });
  // Data-plane spend racing the expiry sweep's recovery of the same local
  // pool: every charged token must show up in spent(), every uncharged one
  // in the refund — the conservation ledger catches both leaks.
  ctx.spawn([cluster, charged] { *charged = cluster->admit(1, 0, 1); });
  ctx.join_all();
  CNET_ENSURE(cluster->spent(0) == *charged, "spend ledger out of sync");
  settle_and_check(*cluster);
}

}  // namespace

int main(int argc, char** argv) {
  return cnet::check::run_scenarios(
      {
          Scenario{"expiry_vs_renewal", Expect::kClean, expiry_vs_renewal},
          Scenario{"expiry_vs_spend", Expect::kClean, expiry_vs_spend},
      },
      argc, argv);
}
