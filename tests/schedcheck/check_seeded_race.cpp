// Schedule-checker driver: the teeth test.
//
// PR 9 fixed OverloadManager::add_monitor registering the monitor outside
// the registry mutex — a sampler walking the vector mid-growth. This
// driver re-introduces that exact registration order through the
// CNET_SCHED_CHECK-only seam testonly_add_monitor_unlocked and requires
// the explorer to find the overlap deterministically (Expect::kViolation:
// the driver fails if the checker does NOT catch it, and re-replays the
// reported schedule string to prove bit-identical reproduction). The
// locked twin runs the same race with the real add_monitor and must
// explore clean — the fix, proven against every bounded schedule.
#include <memory>

#include "cnet/check/driver.hpp"
#include "cnet/svc/overload.hpp"
#include "cnet/util/ensure.hpp"

namespace {

using cnet::check::Expect;
using cnet::check::Scenario;
using cnet::check::TestContext;
using cnet::svc::GaugeMonitor;
using cnet::svc::OverloadManager;

void unlocked_registration(TestContext& ctx) {
  auto mgr = std::make_shared<OverloadManager>();
  mgr->add_monitor(std::make_unique<GaugeMonitor>("g0", 4));
  ctx.spawn([mgr] { mgr->evaluate(); });
  ctx.spawn([mgr] {
    // The pre-PR-9 bug, verbatim: registry mutation with no lock held.
    mgr->testonly_add_monitor_unlocked(
        std::make_unique<GaugeMonitor>("g1", 4));
  });
  ctx.join_all();
  CNET_ENSURE(mgr->num_monitors() == 2, "a registration was lost");
}

void locked_registration(TestContext& ctx) {
  auto mgr = std::make_shared<OverloadManager>();
  mgr->add_monitor(std::make_unique<GaugeMonitor>("g0", 4));
  ctx.spawn([mgr] { mgr->evaluate(); });
  ctx.spawn([mgr] {
    mgr->add_monitor(std::make_unique<GaugeMonitor>("g1", 4));
  });
  ctx.join_all();
  CNET_ENSURE(mgr->num_monitors() == 2, "a registration was lost");
}

}  // namespace

int main(int argc, char** argv) {
  return cnet::check::run_scenarios(
      {
          Scenario{"unlocked_registration", Expect::kViolation,
                   unlocked_registration},
          Scenario{"locked_registration", Expect::kClean,
                   locked_registration},
      },
      argc, argv);
}
