// Schedule-checker driver: ReconfigEngine commit vs racing readers.
//
// The protocol under test is the RCU-style triangle: reader slot enter
// (seq_cst RMW) + active-pointer load vs the committer's publish + slot
// scan. The committer's migrate step poisons the *old* state after
// quiescence; the invariant is that no reader section ever observes the
// poison value (a reader that could would have been migrated under) or a
// torn half-written state.
#include <cstdint>
#include <memory>

#include "cnet/check/driver.hpp"
#include "cnet/svc/reconfig.hpp"
#include "cnet/util/atomic.hpp"
#include "cnet/util/ensure.hpp"

namespace {

using cnet::check::Expect;
using cnet::check::Scenario;
using cnet::check::TestContext;
using cnet::svc::ReconfigEngine;

constexpr std::uint64_t kPoison = 999;

struct XY {
  cnet::util::Atomic<std::uint64_t> x;
  cnet::util::Atomic<std::uint64_t> y;
  explicit XY(std::uint64_t v) : x(v), y(v) {}
};

void reader(const std::shared_ptr<ReconfigEngine<XY>>& eng,
            std::size_t hint) {
  eng->read(hint, [](XY& s) {
    const std::uint64_t a = s.x.load();
    const std::uint64_t b = s.y.load();
    CNET_ENSURE(a != kPoison && b != kPoison,
                "reader section observed a migrated (quiescence-poisoned) "
                "state: commit did not wait for this reader");
    CNET_ENSURE(a == b, "reader observed a torn state");
    return 0;
  });
}

void committer(const std::shared_ptr<ReconfigEngine<XY>>& eng) {
  eng->commit(std::make_unique<XY>(2), [](XY& old, XY&) {
    // Runs only once the old state is quiescent; a reader still inside a
    // read section on `old` would trip the kPoison invariant above.
    old.x.store(kPoison);
    old.y.store(kPoison);
  });
}

void commit_vs_reader(TestContext& ctx) {
  auto eng = std::make_shared<ReconfigEngine<XY>>(std::make_unique<XY>(1));
  ctx.spawn([eng] { reader(eng, 0); });
  ctx.spawn([eng] { committer(eng); });
  ctx.join_all();
  CNET_ENSURE(eng->config_version() == 2, "commit did not bump the version");
  CNET_ENSURE(eng->current().x.load() == 2 && eng->current().y.load() == 2,
              "published state is not the staged one");
}

void commit_vs_two_readers(TestContext& ctx) {
  auto eng = std::make_shared<ReconfigEngine<XY>>(std::make_unique<XY>(1));
  // Hints 0 and 1 land on the two distinct reader slots of a
  // CNET_SCHED_CHECK build, so the quiescence scan must get both right.
  ctx.spawn([eng] { reader(eng, 0); });
  ctx.spawn([eng] { reader(eng, 1); });
  ctx.spawn([eng] { committer(eng); });
  ctx.join_all();
  CNET_ENSURE(eng->config_version() == 2, "commit did not bump the version");
}

}  // namespace

int main(int argc, char** argv) {
  return cnet::check::run_scenarios(
      {
          Scenario{"commit_vs_reader", Expect::kClean, commit_vs_reader},
          Scenario{"commit_vs_two_readers", Expect::kClean,
                   commit_vs_two_readers},
      },
      argc, argv);
}
