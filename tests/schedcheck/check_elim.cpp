// Schedule-checker driver: EliminationLayer pairing protocol.
//
// The slot word's catch/deposit/withdraw CAS dance is explored exhaustively
// (every load/CAS is one schedulable step, util::Atomic). The invariants
// are the layer's conservation contract: pairing is symmetric (an inc hit
// implies exactly one dec hit with the same synthesized negative value),
// and the pairs/withdrawals counters account every op exactly.
#include <cstdint>
#include <memory>

#include "cnet/check/driver.hpp"
#include "cnet/svc/elimination.hpp"
#include "cnet/util/ensure.hpp"

namespace {

using cnet::check::Expect;
using cnet::check::Scenario;
using cnet::check::TestContext;
using cnet::svc::EliminationLayer;

struct OpResult {
  bool hit = false;
  std::int64_t value = 0;
};

EliminationLayer::Config tiny_layer() {
  EliminationLayer::Config cfg;
  cfg.slots = 1;     // one exchange slot: every op contends on one word
  cfg.max_spins = 3; // bounded waiting keeps the schedule space tiny
  return cfg;
}

void inc_dec_pair(TestContext& ctx) {
  auto layer = std::make_shared<EliminationLayer>(tiny_layer());
  auto inc = std::make_shared<OpResult>();
  auto dec = std::make_shared<OpResult>();
  ctx.spawn([layer, inc] {
    inc->hit = layer->try_exchange(EliminationLayer::Role::kInc, 1, 3,
                                   &inc->value);
  });
  ctx.spawn([layer, dec] {
    dec->hit = layer->try_exchange(EliminationLayer::Role::kDec, 2, 3,
                                   &dec->value);
  });
  ctx.join_all();
  CNET_ENSURE(inc->hit == dec->hit,
              "one-sided pairing: inc and dec disagree on whether they met");
  if (inc->hit) {
    CNET_ENSURE(inc->value == dec->value,
                "paired ops disagree on the synthesized value");
    CNET_ENSURE(inc->value < 0, "pair value must be negative");
    CNET_ENSURE(layer->pairs() == 1, "pairing not counted exactly once");
    CNET_ENSURE(layer->withdrawals() == 0,
                "a completed pairing must not count a withdrawal");
  } else {
    CNET_ENSURE(layer->pairs() == 0, "counted a pair nobody observed");
    CNET_ENSURE(layer->withdrawals() <= 2, "more withdrawals than deposits");
  }
}

void two_inc_one_dec(TestContext& ctx) {
  auto layer = std::make_shared<EliminationLayer>(tiny_layer());
  auto inc_a = std::make_shared<OpResult>();
  auto inc_b = std::make_shared<OpResult>();
  auto dec = std::make_shared<OpResult>();
  auto run_inc = [layer](std::shared_ptr<OpResult> out, std::size_t hint) {
    return [layer, out, hint] {
      out->hit = layer->try_exchange(EliminationLayer::Role::kInc, hint, 2,
                                     &out->value);
    };
  };
  ctx.spawn(run_inc(inc_a, 1));
  ctx.spawn(run_inc(inc_b, 2));
  ctx.spawn([layer, dec] {
    dec->hit = layer->try_exchange(EliminationLayer::Role::kDec, 3, 2,
                                   &dec->value);
  });
  ctx.join_all();
  const int inc_hits = (inc_a->hit ? 1 : 0) + (inc_b->hit ? 1 : 0);
  CNET_ENSURE(inc_hits == (dec->hit ? 1 : 0),
              "inc hits must match dec hits one-to-one");
  if (dec->hit) {
    const std::int64_t paired = inc_a->hit ? inc_a->value : inc_b->value;
    CNET_ENSURE(paired == dec->value,
                "paired ops disagree on the synthesized value");
    CNET_ENSURE(layer->pairs() == 1, "pairing not counted exactly once");
  } else {
    CNET_ENSURE(layer->pairs() == 0, "counted a pair nobody observed");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return cnet::check::run_scenarios(
      {
          Scenario{"inc_dec_pair", Expect::kClean, inc_dec_pair},
          Scenario{"two_inc_one_dec", Expect::kClean, two_inc_one_dec},
      },
      argc, argv);
}
