// Schedule-checker driver: QuotaHierarchy borrow reservation.
//
// The protocol under test is reserve_borrow's CAS loop over the tenant's
// `borrowed` word inside a weights_ read section — the mechanism behind
// the isolation guarantee (outstanding borrow never exceeds the weighted
// limit, not even transiently). Two shapes: the reservation racing a
// reweigh commit (limits swap generations mid-loop), and two acquires
// racing for the last unit of borrow headroom.
#include <cstdint>
#include <memory>
#include <vector>

#include "cnet/check/driver.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/quota.hpp"
#include "cnet/util/ensure.hpp"

namespace {

using cnet::check::Expect;
using cnet::check::Scenario;
using cnet::check::TestContext;
using cnet::svc::BackendKind;
using cnet::svc::QuotaHierarchy;

// Two tenants, empty children, tiny parent: every admission is forced
// through the parent-borrow reservation. Central-atomic backends keep the
// pool arithmetic out of the schedule space — the explored steps are
// exactly the reservation CAS loop, the weights read section, and the
// commit protocol.
std::shared_ptr<QuotaHierarchy> tiny_quota() {
  QuotaHierarchy::Config cfg;
  cfg.parent = {BackendKind::kCentralAtomic, false};
  cfg.child = {BackendKind::kCentralAtomic, false};
  cfg.parent_initial_tokens = 4;
  cfg.borrow_budget = 2;  // weights {1,1} -> limit 1 per tenant
  return std::make_shared<QuotaHierarchy>(
      cfg, std::vector<QuotaHierarchy::TenantConfig>{{0, 1}, {0, 1}});
}

void borrow_vs_reweigh(TestContext& ctx) {
  auto quota = tiny_quota();
  auto grant = std::make_shared<QuotaHierarchy::Grant>();
  ctx.spawn([quota, grant] { *grant = quota->acquire(0, 0, 1); });
  ctx.spawn([quota] {
    quota->reweigh(1, std::vector<std::uint64_t>{3, 1});
  });
  ctx.join_all();
  CNET_ENSURE(quota->config_version() == 2, "reweigh did not commit");
  CNET_ENSURE(quota->borrow_limit(0) + quota->borrow_limit(1) <=
                  2,
              "limits exceed the borrow budget");
  if (grant->admitted) {
    CNET_ENSURE(grant->from_parent == 1 && grant->from_child == 0,
                "grant parts must record one parent-borrowed token");
    CNET_ENSURE(quota->borrowed(0) == 1,
                "borrow ledger out of sync with the outstanding grant");
    quota->release(0, *grant);
  }
  CNET_ENSURE(quota->borrowed(0) == 0 && quota->borrowed(1) == 0,
              "borrow ledger nonzero after all grants released");
}

void last_headroom(TestContext& ctx) {
  auto quota = tiny_quota();
  auto g1 = std::make_shared<QuotaHierarchy::Grant>();
  auto g2 = std::make_shared<QuotaHierarchy::Grant>();
  // Same tenant, limit 1: exactly one of the two racing reservations may
  // win the last unit of headroom — never both (that would put borrowed
  // above the limit, the isolation bug), never neither (a failed CAS means
  // the other reservation progressed).
  ctx.spawn([quota, g1] { *g1 = quota->acquire(0, 0, 1); });
  ctx.spawn([quota, g2] { *g2 = quota->acquire(1, 0, 1); });
  ctx.join_all();
  const int admitted = (g1->admitted ? 1 : 0) + (g2->admitted ? 1 : 0);
  CNET_ENSURE(admitted == 1,
              "exactly one acquire must win the last borrow headroom");
  CNET_ENSURE(quota->borrowed(0) == 1,
              "borrow ledger out of sync after the race");
  quota->release(0, g1->admitted ? *g1 : *g2);
  CNET_ENSURE(quota->borrowed(0) == 0,
              "borrow ledger nonzero after release");
}

}  // namespace

int main(int argc, char** argv) {
  return cnet::check::run_scenarios(
      {
          Scenario{"borrow_vs_reweigh", Expect::kClean, borrow_vs_reweigh},
          Scenario{"last_headroom", Expect::kClean, last_headroom},
      },
      argc, argv);
}
