// Contention measurement harness + reproduction of the paper's asymptotic
// ordering (Theorem 6.7 / §1.3.1) at test-sized parameters.
#include "cnet/sim/contention.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/util/bitops.hpp"

namespace cnet::sim {
namespace {

TEST(Contention, SingleProcessHasZeroContention) {
  const auto net = core::make_counting(8, 8);
  ContentionConfig cfg;
  cfg.concurrency = 1;
  cfg.generations = 16;
  const auto report = measure_contention(net, cfg);
  EXPECT_EQ(report.total_stalls, 0u);
  EXPECT_EQ(report.stalls_per_token, 0.0);
}

TEST(Contention, PerLayerSumsToTotal) {
  const auto net = baselines::make_bitonic(16);
  ContentionConfig cfg;
  cfg.concurrency = 32;
  cfg.generations = 16;
  const auto report = measure_contention(net, cfg);
  const double sum = std::accumulate(report.per_layer.begin(),
                                     report.per_layer.end(), 0.0);
  EXPECT_NEAR(sum, report.stalls_per_token, 1e-9);
}

TEST(Contention, GrowsWithConcurrency) {
  const auto net = baselines::make_bitonic(8);
  ContentionConfig cfg;
  cfg.generations = 32;
  cfg.concurrency = 8;
  const double low = measure_contention(net, cfg).stalls_per_token;
  cfg.concurrency = 64;
  const double high = measure_contention(net, cfg).stalls_per_token;
  EXPECT_GT(high, low);
}

// §1.3.1: at the same w and high n, raising t lowers contention. This is
// the headline claim; the wavefront adversary should exhibit it clearly.
TEST(Contention, WiderOutputReducesContention) {
  const std::size_t w = 8;
  const std::size_t n = 128;
  ContentionConfig cfg;
  cfg.concurrency = n;
  cfg.generations = 32;
  const double narrow =
      measure_contention(core::make_counting(w, w), cfg).stalls_per_token;
  const double wide =
      measure_contention(core::make_counting(w, 8 * w), cfg).stalls_per_token;
  EXPECT_LT(wide, narrow * 0.8)
      << "t=w: " << narrow << "  t=8w: " << wide;
}

// C(w, w·lgw) should beat the bitonic network of the same width at high
// concurrency (the lg w factor of §1.3.1).
TEST(Contention, BeatsBitonicAtHighConcurrency) {
  const std::size_t w = 16;
  const std::size_t lgw = util::ilog2(w);
  ContentionConfig cfg;
  cfg.concurrency = w * lgw * 4;  // n > w lg w
  cfg.generations = 32;
  const double ours = measure_contention(core::make_counting(w, w * lgw), cfg)
                          .stalls_per_token;
  const double bitonic =
      measure_contention(baselines::make_bitonic(w), cfg).stalls_per_token;
  EXPECT_LT(ours, bitonic) << "C: " << ours << "  bitonic: " << bitonic;
}

TEST(Contention, RandomSchedulerProducesLessContentionThanAdversary) {
  const auto net = baselines::make_bitonic(16);
  ContentionConfig cfg;
  cfg.concurrency = 64;
  cfg.generations = 32;
  cfg.scheduler = SchedulerKind::kWavefrontConvoy;
  const double adversary = measure_contention(net, cfg).stalls_per_token;
  cfg.scheduler = SchedulerKind::kRandom;
  const double random = measure_contention(net, cfg).stalls_per_token;
  EXPECT_LE(random, adversary * 1.5);
  EXPECT_GT(adversary, 0.0);
}

TEST(Contention, GroupStallsAggregates) {
  const std::vector<double> per_layer = {1.0, 2.0, 3.0, 4.0};
  const std::vector<std::string> groups = {"a", "a", "b", "c"};
  const auto out = group_stalls(per_layer, groups);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].group, "a");
  EXPECT_DOUBLE_EQ(out[0].stalls_per_token, 3.0);
  EXPECT_DOUBLE_EQ(out[1].stalls_per_token, 3.0);
  EXPECT_DOUBLE_EQ(out[2].stalls_per_token, 4.0);
}

TEST(Contention, GroupStallsRejectsMismatch) {
  EXPECT_THROW(
      (void)group_stalls(std::vector<double>{1.0},
                         std::vector<std::string>{"a", "b"}),
      std::invalid_argument);
}

}  // namespace
}  // namespace cnet::sim
