// Exhaustive execution-space exploration: every schedule of small
// instances. This is the strongest correctness statement in the suite —
// Theorem 4.2's guarantee checked over ALL interleavings, not just random
// ones — plus the exact adversarial contention cont(B, n, m) used to
// calibrate the wavefront-convoy heuristic.
#include "cnet/sim/model_check.hpp"

#include <gtest/gtest.h>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/sim/schedulers.hpp"
#include "cnet/sim/token_sim.hpp"

namespace cnet::sim {
namespace {

topo::Topology one_balancer_one_wire() {
  topo::Builder b;
  const auto in = b.add_network_inputs(1);
  b.set_outputs(b.add_balancer(in, 2));
  return std::move(b).build();
}

TEST(ModelCheck, RejectsBadConfig) {
  const auto net = one_balancer_one_wire();
  ModelCheckConfig cfg;
  cfg.total_tokens = 0;
  EXPECT_THROW((void)explore_all_executions(net, cfg),
               std::invalid_argument);
}

TEST(ModelCheck, SingleBalancerHasOneScheduleAndExactStalls) {
  // All tokens funnel through one balancer: FIFO leaves a single maximal
  // execution with exactly n(n-1)/2 stalls.
  const auto net = one_balancer_one_wire();
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    ModelCheckConfig cfg;
    cfg.concurrency = n;
    cfg.total_tokens = n;
    const auto r = explore_all_executions(net, cfg);
    EXPECT_EQ(r.executions, 1u) << n;
    EXPECT_TRUE(r.all_exact);
    EXPECT_EQ(r.max_total_stalls, n * (n - 1) / 2) << n;
    EXPECT_EQ(r.min_total_stalls, r.max_total_stalls);
    EXPECT_FALSE(r.inversion_possible);
  }
}

TEST(ModelCheck, TwoTokensThroughC22) {
  const auto net = core::make_counting(2, 2);
  ModelCheckConfig cfg;
  cfg.concurrency = 2;
  cfg.total_tokens = 2;
  const auto r = explore_all_executions(net, cfg);
  EXPECT_EQ(r.executions, 1u);  // one queue, FIFO: a single schedule
  EXPECT_TRUE(r.all_exact);
  EXPECT_EQ(r.max_total_stalls, 1u);
}

// Every interleaving of small C(w,t) instances hands out exactly 0..m-1.
struct Instance {
  std::size_t w, t, n, m;
};

class ModelCheckExact : public ::testing::TestWithParam<Instance> {};

TEST_P(ModelCheckExact, AllExecutionsYieldExactValues) {
  const auto [w, t, n, m] = GetParam();
  ModelCheckConfig cfg;
  cfg.concurrency = n;
  cfg.total_tokens = m;
  const auto r = explore_all_executions(core::make_counting(w, t), cfg);
  EXPECT_TRUE(r.all_exact)
      << "some schedule broke Fetch&Increment exactness";
  EXPECT_GT(r.executions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelCheckExact,
    ::testing::Values(Instance{2, 2, 2, 3}, Instance{2, 4, 3, 3},
                      Instance{4, 4, 2, 3}, Instance{4, 4, 3, 3},
                      Instance{4, 4, 2, 4}, Instance{4, 4, 3, 4},
                      Instance{4, 8, 2, 4}, Instance{4, 8, 3, 4},
                      Instance{4, 4, 3, 5}),
    [](const auto& pinfo) {
      return "w" + std::to_string(pinfo.param.w) + "t" +
             std::to_string(pinfo.param.t) + "n" +
             std::to_string(pinfo.param.n) + "m" +
             std::to_string(pinfo.param.m);
    });

TEST(ModelCheck, BitonicSmallInstanceExact) {
  ModelCheckConfig cfg;
  cfg.concurrency = 3;
  cfg.total_tokens = 4;
  const auto r =
      explore_all_executions(baselines::make_bitonic(4), cfg);
  EXPECT_TRUE(r.all_exact);
}

TEST(ModelCheck, ExactWorstCaseKnownValues) {
  // Pinned exact adversarial contention for figure-sized instances
  // (regression guards for the exploration itself).
  const auto net = core::make_counting(4, 4);
  {
    ModelCheckConfig cfg;
    cfg.concurrency = 3;
    cfg.total_tokens = 3;
    const auto r = explore_all_executions(net, cfg);
    EXPECT_EQ(r.executions, 399u);
    EXPECT_EQ(r.min_total_stalls, 1u);
    EXPECT_EQ(r.max_total_stalls, 3u);
  }
  {
    ModelCheckConfig cfg;
    cfg.concurrency = 2;
    cfg.total_tokens = 3;
    const auto r = explore_all_executions(net, cfg);
    EXPECT_EQ(r.executions, 84u);
    EXPECT_EQ(r.min_total_stalls, 0u);
    EXPECT_EQ(r.max_total_stalls, 2u);
  }
}

TEST(ModelCheck, GoldenScheduleSpaceDepthTwo) {
  // Pinned schedule-space size and exact worst/best-case stall counts for
  // the depth-2 network C(4,8) — a golden for the *explorer itself*: a
  // change to queue ordering, the duplicate-state filter, or the stall
  // accounting shifts either the execution count or the stall envelope and
  // fails here before any downstream claim (contention tables, adversary
  // calibration) silently drifts.
  const auto net = core::make_counting(4, 8);
  {
    ModelCheckConfig cfg;
    cfg.concurrency = 2;
    cfg.total_tokens = 3;
    const auto r = explore_all_executions(net, cfg);
    EXPECT_EQ(r.executions, 84u);
    EXPECT_EQ(r.min_total_stalls, 0u);
    EXPECT_EQ(r.max_total_stalls, 2u);
    EXPECT_TRUE(r.all_exact);
  }
  {
    ModelCheckConfig cfg;
    cfg.concurrency = 3;
    cfg.total_tokens = 4;
    const auto r = explore_all_executions(net, cfg);
    EXPECT_EQ(r.executions, 7571u);
    EXPECT_EQ(r.min_total_stalls, 1u);
    EXPECT_EQ(r.max_total_stalls, 5u);
    EXPECT_TRUE(r.all_exact);
  }
}

// The wavefront-convoy heuristic can never beat the exhaustive optimum,
// and on convoy-friendly instances it should land close to it.
TEST(ModelCheck, HeuristicAdversaryBoundedByExactOptimum) {
  const auto net = core::make_counting(4, 4);
  for (const auto& [n, m] :
       {std::pair<std::size_t, std::size_t>{3, 3}, {3, 4}, {4, 5}}) {
    ModelCheckConfig cfg;
    cfg.concurrency = n;
    cfg.total_tokens = m;
    const auto exact = explore_all_executions(net, cfg);

    SimConfig sim_cfg{.concurrency = n, .total_tokens = m};
    WavefrontConvoyScheduler sched;
    const auto heuristic = simulate(net, sim_cfg, sched);
    EXPECT_LE(heuristic.total_stalls, exact.max_total_stalls)
        << "n=" << n << " m=" << m;
    EXPECT_GE(heuristic.total_stalls, exact.min_total_stalls);
    // On these instances the convoy should reach at least half the
    // optimum adversary's stalls.
    EXPECT_GE(2 * heuristic.total_stalls, exact.max_total_stalls)
        << "n=" << n << " m=" << m;
  }
}

TEST(ModelCheck, NoInversionAtSmallScale) {
  // Non-linearizability (§1.4.2) needs enough tokens to lap the output
  // cells; exhaustively, no inversion exists yet at these sizes — the
  // witnesses found by tests/test_linearizability.cpp require larger m.
  for (const auto& [n, m] :
       {std::pair<std::size_t, std::size_t>{3, 4}, {4, 5}}) {
    ModelCheckConfig cfg;
    cfg.concurrency = n;
    cfg.total_tokens = m;
    const auto r =
        explore_all_executions(core::make_counting(4, 4), cfg);
    EXPECT_FALSE(r.inversion_possible) << "n=" << n << " m=" << m;
  }
}

TEST(ModelCheck, ExecutionCapThrows) {
  ModelCheckConfig cfg;
  cfg.concurrency = 3;
  cfg.total_tokens = 5;
  cfg.max_executions = 10;  // far below the real count
  EXPECT_THROW(
      (void)explore_all_executions(core::make_counting(4, 4), cfg),
      std::invalid_argument);
}

}  // namespace
}  // namespace cnet::sim
