// svc/policy.hpp: the decision logic shared between the real service layer
// and the virtual-time simulator. These rules are pure functions, so the
// tests pin their edges exactly — a drift here would silently desynchronize
// model from reality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cnet/svc/policy.hpp"

namespace cnet::svc {
namespace {

TEST(SwitchPolicy, RequiresBothWindowSizeAndRate) {
  AdaptiveTuning tuning;
  tuning.min_window_ops = 100;
  tuning.stall_rate_threshold = 0.05;

  // Too small a window never triggers, however hot.
  EXPECT_FALSE(should_switch({99, 99}, tuning));
  // Exactly at the floor with the rate above threshold: triggers.
  EXPECT_TRUE(should_switch({100, 6}, tuning));
  // Rate exactly at threshold is inclusive, above the floor too.
  EXPECT_TRUE(should_switch({100, 5}, tuning));
  EXPECT_TRUE(should_switch({200, 10}, tuning));
  EXPECT_FALSE(should_switch({100, 4}, tuning));
  // A zero-op window divides to rate 0, not NaN.
  EXPECT_FALSE(should_switch({0, 0}, tuning));
}

TEST(SwitchPolicy, EmptyWindowRateIsZero) {
  EXPECT_EQ(LoadWindow{}.event_rate(), 0.0);
  EXPECT_EQ((LoadWindow{0, 7}).event_rate(), 0.0);
  EXPECT_DOUBLE_EQ((LoadWindow{200, 10}).event_rate(), 0.05);
}

TEST(ElimPolicy, PairValuesAreNegativeAndUniquePerCollision) {
  // Value = -1 - (epoch * slots + slot): injective over (slot, epoch), so
  // no two distinct collisions can agree on the same value, and never >= 0
  // (real backends own the non-negative range).
  constexpr std::size_t kSlots = 8;
  std::vector<std::int64_t> seen;
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      const std::int64_t v = elimination_pair_value(kSlots, slot, epoch);
      EXPECT_LT(v, 0);
      for (const std::int64_t prior : seen) EXPECT_NE(v, prior);
      seen.push_back(v);
    }
  }
  EXPECT_EQ(elimination_pair_value(kSlots, 0, 0), -1);
  EXPECT_EQ(elimination_pair_value(kSlots, 7, 0), -8);
  EXPECT_EQ(elimination_pair_value(kSlots, 0, 1), -9);
}

TEST(BucketPolicy, PartialGrabAllowed) {
  // Pool of 10 claimed through a take that hands out at most 4 per call:
  // partial mode drains all 10 across the loop.
  std::uint64_t pool = 10;
  std::uint64_t refunds = 0;
  const auto take = [&](std::uint64_t want) {
    const std::uint64_t got = std::min<std::uint64_t>({want, pool, 4});
    pool -= got;
    return got;
  };
  const auto put = [&](std::uint64_t n) { refunds += n; };
  EXPECT_EQ(bucket_consume(16, /*allow_partial=*/true, take, put), 10u);
  EXPECT_EQ(pool, 0u);
  EXPECT_EQ(refunds, 0u);
}

TEST(BucketPolicy, ZeroTokensIsADefinedNoOp) {
  // Regression: tokens == 0 was undefined by the plan. It must succeed
  // trivially — return 0 without ever invoking take or put, in both modes.
  std::uint64_t takes = 0, puts = 0;
  const auto take = [&](std::uint64_t) -> std::uint64_t {
    ++takes;
    return 0;
  };
  const auto put = [&](std::uint64_t) { ++puts; };
  EXPECT_EQ(bucket_consume(0, /*allow_partial=*/false, take, put), 0u);
  EXPECT_EQ(bucket_consume(0, /*allow_partial=*/true, take, put), 0u);
  EXPECT_EQ(takes, 0u);
  EXPECT_EQ(puts, 0u);
}

TEST(BucketPolicy, AllOrNothingRefundsTheShortfall) {
  std::uint64_t pool = 10;
  std::uint64_t refunds = 0;
  const auto take = [&](std::uint64_t want) {
    const std::uint64_t got = std::min(want, pool);
    pool -= got;
    return got;
  };
  const auto put = [&](std::uint64_t n) { refunds += n; };
  // Short pool, no partial: the grab is refunded and nothing is consumed.
  EXPECT_EQ(bucket_consume(16, /*allow_partial=*/false, take, put), 0u);
  EXPECT_EQ(refunds, 10u);
  // Exact-fit all-or-nothing succeeds without a refund.
  pool = 16;
  refunds = 0;
  EXPECT_EQ(bucket_consume(16, /*allow_partial=*/false, take, put), 16u);
  EXPECT_EQ(refunds, 0u);
  // An observably empty pool consumes nothing and refunds nothing.
  EXPECT_EQ(bucket_consume(4, /*allow_partial=*/false, take, put), 0u);
  EXPECT_EQ(refunds, 0u);
}

TEST(QuotaPolicy, WeightedLimitsPartitionTheBudget) {
  // Rounded down per tenant, so the limits can never sum past the budget.
  EXPECT_EQ(weighted_borrow_limit(12, 2, 4), 6u);
  EXPECT_EQ(weighted_borrow_limit(12, 1, 4), 3u);
  EXPECT_EQ(weighted_borrow_limit(10, 1, 3), 3u);  // floor(10/3)
  EXPECT_EQ(weighted_borrow_limit(10, 0, 3), 0u);
  EXPECT_EQ(weighted_borrow_limit(10, 3, 0), 0u);  // degenerate: no weights
  // Large budgets survive the intermediate product (128-bit inside).
  EXPECT_EQ(weighted_borrow_limit(1ull << 60, 3, 4), 3ull << 58);
}

TEST(QuotaPolicy, BorrowAllowanceClampsAtTheLimit) {
  EXPECT_EQ(borrow_allowance(5, 0, 8), 5u);   // fully inside the cap
  EXPECT_EQ(borrow_allowance(5, 6, 8), 2u);   // clipped to the headroom
  EXPECT_EQ(borrow_allowance(5, 8, 8), 0u);   // saturated
  EXPECT_EQ(borrow_allowance(5, 9, 8), 0u);   // never negative headroom
  EXPECT_EQ(borrow_allowance(0, 3, 8), 0u);
}

TEST(QuotaPolicy, SettlementIsAllOrNothingPerLevel) {
  const auto full = quota_settle(5, 2, 3);
  EXPECT_TRUE(full.admitted);
  EXPECT_EQ(full.refund_child, 0u);
  EXPECT_EQ(full.refund_parent, 0u);
  const auto shortfall = quota_settle(5, 2, 1);
  EXPECT_FALSE(shortfall.admitted);
  EXPECT_EQ(shortfall.refund_child, 2u);   // back to the child
  EXPECT_EQ(shortfall.refund_parent, 1u);  // back to the parent
  // The zero-token no-op settles as admitted with empty parts.
  EXPECT_TRUE(quota_settle(0, 0, 0).admitted);
}

// A tiny synchronous harness for the full acquire plan: two integer pools
// and a reservation ledger, mirroring what QuotaHierarchy wires in.
struct PlanHarness {
  std::uint64_t child, parent, borrowed, limit;
  std::uint64_t reserves = 0, unreserves = 0;

  QuotaGrantPlan acquire(std::uint64_t tokens) {
    return quota_acquire(
        tokens,
        [&](std::uint64_t n) {
          const std::uint64_t got = std::min(n, child);
          child -= got;
          return got;
        },
        [&](std::uint64_t n) {
          const std::uint64_t ok = borrow_allowance(n, borrowed, limit);
          borrowed += ok;
          reserves += ok;
          return ok;
        },
        [&](std::uint64_t n) {
          borrowed -= n;
          unreserves += n;
        },
        [&](std::uint64_t n) {
          const std::uint64_t got = std::min(n, parent);
          parent -= got;
          return got;
        },
        [&](std::uint64_t n) { child += n; },
        [&](std::uint64_t n) { parent += n; });
  }
};

TEST(QuotaPolicy, AcquireTakesChildFirstThenBorrows) {
  PlanHarness h{.child = 2, .parent = 10, .borrowed = 0, .limit = 5};
  const auto plan = h.acquire(6);
  EXPECT_TRUE(plan.admitted);
  EXPECT_EQ(plan.from_child, 2u);
  EXPECT_EQ(plan.from_parent, 4u);
  EXPECT_EQ(h.child, 0u);
  EXPECT_EQ(h.parent, 6u);
  EXPECT_EQ(h.borrowed, 4u);  // the reservation is the outstanding borrow
  EXPECT_EQ(h.unreserves, 0u);
}

TEST(QuotaPolicy, AcquireOverTheLimitRefundsAndUnreserves) {
  // Shortfall 6 against headroom 3: the reservation fails, the child grab
  // goes back, the parent is never touched.
  PlanHarness h{.child = 2, .parent = 10, .borrowed = 2, .limit = 5};
  const auto plan = h.acquire(8);
  EXPECT_FALSE(plan.admitted);
  EXPECT_EQ(h.child, 2u);
  EXPECT_EQ(h.parent, 10u);
  EXPECT_EQ(h.borrowed, 2u);
  EXPECT_EQ(h.reserves, h.unreserves);  // every reservation returned
}

TEST(QuotaPolicy, AcquireAgainstAShortParentRefundsBothLevels) {
  PlanHarness h{.child = 1, .parent = 2, .borrowed = 0, .limit = 8};
  const auto plan = h.acquire(5);  // needs 4 from a parent holding 2
  EXPECT_FALSE(plan.admitted);
  EXPECT_EQ(h.child, 1u);
  EXPECT_EQ(h.parent, 2u);
  EXPECT_EQ(h.borrowed, 0u);
}

TEST(QuotaPolicy, AcquireZeroAdmitsWithoutTouchingAnything) {
  PlanHarness h{.child = 3, .parent = 4, .borrowed = 1, .limit = 5};
  const auto plan = h.acquire(0);
  EXPECT_TRUE(plan.admitted);
  EXPECT_EQ(plan.from_child + plan.from_parent, 0u);
  EXPECT_EQ(h.child, 3u);
  EXPECT_EQ(h.parent, 4u);
  EXPECT_EQ(h.borrowed, 1u);
}

}  // namespace
}  // namespace cnet::svc
