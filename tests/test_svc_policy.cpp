// svc/policy.hpp: the decision logic shared between the real service layer
// and the virtual-time simulator. These rules are pure functions, so the
// tests pin their edges exactly — a drift here would silently desynchronize
// model from reality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cnet/svc/policy.hpp"

namespace cnet::svc {
namespace {

TEST(SwitchPolicy, RequiresBothWindowSizeAndRate) {
  AdaptiveTuning tuning;
  tuning.min_window_ops = 100;
  tuning.stall_rate_threshold = 0.05;

  // Too small a window never triggers, however hot.
  EXPECT_FALSE(should_switch({99, 99}, tuning));
  // Exactly at the floor with the rate above threshold: triggers.
  EXPECT_TRUE(should_switch({100, 6}, tuning));
  // Rate exactly at threshold is inclusive, above the floor too.
  EXPECT_TRUE(should_switch({100, 5}, tuning));
  EXPECT_TRUE(should_switch({200, 10}, tuning));
  EXPECT_FALSE(should_switch({100, 4}, tuning));
  // A zero-op window divides to rate 0, not NaN.
  EXPECT_FALSE(should_switch({0, 0}, tuning));
}

TEST(SwitchPolicy, EmptyWindowRateIsZero) {
  EXPECT_EQ(LoadWindow{}.event_rate(), 0.0);
  EXPECT_EQ((LoadWindow{0, 7}).event_rate(), 0.0);
  EXPECT_DOUBLE_EQ((LoadWindow{200, 10}).event_rate(), 0.05);
}

TEST(ElimPolicy, PairValuesAreNegativeAndUniquePerCollision) {
  // Value = -1 - (epoch * slots + slot): injective over (slot, epoch), so
  // no two distinct collisions can agree on the same value, and never >= 0
  // (real backends own the non-negative range).
  constexpr std::size_t kSlots = 8;
  std::vector<std::int64_t> seen;
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      const std::int64_t v = elimination_pair_value(kSlots, slot, epoch);
      EXPECT_LT(v, 0);
      for (const std::int64_t prior : seen) EXPECT_NE(v, prior);
      seen.push_back(v);
    }
  }
  EXPECT_EQ(elimination_pair_value(kSlots, 0, 0), -1);
  EXPECT_EQ(elimination_pair_value(kSlots, 7, 0), -8);
  EXPECT_EQ(elimination_pair_value(kSlots, 0, 1), -9);
}

TEST(BucketPolicy, PartialGrabAllowed) {
  // Pool of 10 claimed through a take that hands out at most 4 per call:
  // partial mode drains all 10 across the loop.
  std::uint64_t pool = 10;
  std::uint64_t refunds = 0;
  const auto take = [&](std::uint64_t want) {
    const std::uint64_t got = std::min<std::uint64_t>({want, pool, 4});
    pool -= got;
    return got;
  };
  const auto put = [&](std::uint64_t n) { refunds += n; };
  EXPECT_EQ(bucket_consume(16, /*allow_partial=*/true, take, put), 10u);
  EXPECT_EQ(pool, 0u);
  EXPECT_EQ(refunds, 0u);
}

TEST(BucketPolicy, AllOrNothingRefundsTheShortfall) {
  std::uint64_t pool = 10;
  std::uint64_t refunds = 0;
  const auto take = [&](std::uint64_t want) {
    const std::uint64_t got = std::min(want, pool);
    pool -= got;
    return got;
  };
  const auto put = [&](std::uint64_t n) { refunds += n; };
  // Short pool, no partial: the grab is refunded and nothing is consumed.
  EXPECT_EQ(bucket_consume(16, /*allow_partial=*/false, take, put), 0u);
  EXPECT_EQ(refunds, 10u);
  // Exact-fit all-or-nothing succeeds without a refund.
  pool = 16;
  refunds = 0;
  EXPECT_EQ(bucket_consume(16, /*allow_partial=*/false, take, put), 16u);
  EXPECT_EQ(refunds, 0u);
  // An observably empty pool consumes nothing and refunds nothing.
  EXPECT_EQ(bucket_consume(4, /*allow_partial=*/false, take, put), 0u);
  EXPECT_EQ(refunds, 0u);
}

}  // namespace
}  // namespace cnet::svc
