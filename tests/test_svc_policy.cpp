// svc/policy.hpp: the decision logic shared between the real service layer
// and the virtual-time simulator. These rules are pure functions, so the
// tests pin their edges exactly — a drift here would silently desynchronize
// model from reality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cnet/dist/policy.hpp"
#include "cnet/svc/policy.hpp"

namespace cnet::svc {
namespace {

TEST(SwitchPolicy, RequiresBothWindowSizeAndRate) {
  AdaptiveTuning tuning;
  tuning.min_window_ops = 100;
  tuning.stall_rate_threshold = 0.05;

  // Too small a window never triggers, however hot.
  EXPECT_FALSE(should_switch({99, 99}, tuning));
  // Exactly at the floor with the rate above threshold: triggers.
  EXPECT_TRUE(should_switch({100, 6}, tuning));
  // Rate exactly at threshold is inclusive, above the floor too.
  EXPECT_TRUE(should_switch({100, 5}, tuning));
  EXPECT_TRUE(should_switch({200, 10}, tuning));
  EXPECT_FALSE(should_switch({100, 4}, tuning));
  // A zero-op window divides to rate 0, not NaN.
  EXPECT_FALSE(should_switch({0, 0}, tuning));
}

TEST(SwitchPolicy, EmptyWindowRateIsZero) {
  EXPECT_EQ(LoadWindow{}.event_rate(), 0.0);
  EXPECT_EQ((LoadWindow{0, 7}).event_rate(), 0.0);
  EXPECT_DOUBLE_EQ((LoadWindow{200, 10}).event_rate(), 0.05);
}

TEST(ElimPolicy, PairValuesAreNegativeAndUniquePerCollision) {
  // Value = -1 - (epoch * slots + slot): injective over (slot, epoch), so
  // no two distinct collisions can agree on the same value, and never >= 0
  // (real backends own the non-negative range).
  constexpr std::size_t kSlots = 8;
  std::vector<std::int64_t> seen;
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      const std::int64_t v = elimination_pair_value(kSlots, slot, epoch);
      EXPECT_LT(v, 0);
      for (const std::int64_t prior : seen) EXPECT_NE(v, prior);
      seen.push_back(v);
    }
  }
  EXPECT_EQ(elimination_pair_value(kSlots, 0, 0), -1);
  EXPECT_EQ(elimination_pair_value(kSlots, 7, 0), -8);
  EXPECT_EQ(elimination_pair_value(kSlots, 0, 1), -9);
}

TEST(BucketPolicy, PartialGrabAllowed) {
  // Pool of 10 claimed through a take that hands out at most 4 per call:
  // partial mode drains all 10 across the loop.
  std::uint64_t pool = 10;
  std::uint64_t refunds = 0;
  const auto take = [&](std::uint64_t want) {
    const std::uint64_t got = std::min<std::uint64_t>({want, pool, 4});
    pool -= got;
    return got;
  };
  const auto put = [&](std::uint64_t n) { refunds += n; };
  EXPECT_EQ(bucket_consume(16, kPartialOk, take, put), 10u);
  EXPECT_EQ(pool, 0u);
  EXPECT_EQ(refunds, 0u);
}

TEST(BucketPolicy, ZeroTokensIsADefinedNoOp) {
  // Regression: tokens == 0 was undefined by the plan. It must succeed
  // trivially — return 0 without ever invoking take or put, in both modes.
  std::uint64_t takes = 0, puts = 0;
  const auto take = [&](std::uint64_t) -> std::uint64_t {
    ++takes;
    return 0;
  };
  const auto put = [&](std::uint64_t) { ++puts; };
  EXPECT_EQ(bucket_consume(0, kAllOrNothing, take, put), 0u);
  EXPECT_EQ(bucket_consume(0, kPartialOk, take, put), 0u);
  EXPECT_EQ(takes, 0u);
  EXPECT_EQ(puts, 0u);
}

TEST(BucketPolicy, AllOrNothingRefundsTheShortfall) {
  std::uint64_t pool = 10;
  std::uint64_t refunds = 0;
  const auto take = [&](std::uint64_t want) {
    const std::uint64_t got = std::min(want, pool);
    pool -= got;
    return got;
  };
  const auto put = [&](std::uint64_t n) { refunds += n; };
  // Short pool, no partial: the grab is refunded and nothing is consumed.
  EXPECT_EQ(bucket_consume(16, kAllOrNothing, take, put), 0u);
  EXPECT_EQ(refunds, 10u);
  // Exact-fit all-or-nothing succeeds without a refund.
  pool = 16;
  refunds = 0;
  EXPECT_EQ(bucket_consume(16, kAllOrNothing, take, put), 16u);
  EXPECT_EQ(refunds, 0u);
  // An observably empty pool consumes nothing and refunds nothing.
  EXPECT_EQ(bucket_consume(4, kAllOrNothing, take, put), 0u);
  EXPECT_EQ(refunds, 0u);
}

TEST(QuotaPolicy, WeightedLimitsPartitionTheBudget) {
  // Rounded down per tenant, so the limits can never sum past the budget.
  EXPECT_EQ(weighted_borrow_limit(12, 2, 4), 6u);
  EXPECT_EQ(weighted_borrow_limit(12, 1, 4), 3u);
  EXPECT_EQ(weighted_borrow_limit(10, 1, 3), 3u);  // floor(10/3)
  EXPECT_EQ(weighted_borrow_limit(10, 0, 3), 0u);
  EXPECT_EQ(weighted_borrow_limit(10, 3, 0), 0u);  // degenerate: no weights
  // Large budgets survive the intermediate product (128-bit inside).
  EXPECT_EQ(weighted_borrow_limit(1ull << 60, 3, 4), 3ull << 58);
}

TEST(QuotaPolicy, BorrowAllowanceClampsAtTheLimit) {
  EXPECT_EQ(borrow_allowance(5, 0, 8), 5u);   // fully inside the cap
  EXPECT_EQ(borrow_allowance(5, 6, 8), 2u);   // clipped to the headroom
  EXPECT_EQ(borrow_allowance(5, 8, 8), 0u);   // saturated
  EXPECT_EQ(borrow_allowance(5, 9, 8), 0u);   // never negative headroom
  EXPECT_EQ(borrow_allowance(0, 3, 8), 0u);
}

TEST(QuotaPolicy, SettlementIsAllOrNothingPerLevel) {
  const auto full = quota_settle(5, 2, 3);
  EXPECT_TRUE(full.admitted);
  EXPECT_EQ(full.refund_child, 0u);
  EXPECT_EQ(full.refund_parent, 0u);
  const auto shortfall = quota_settle(5, 2, 1);
  EXPECT_FALSE(shortfall.admitted);
  EXPECT_EQ(shortfall.refund_child, 2u);   // back to the child
  EXPECT_EQ(shortfall.refund_parent, 1u);  // back to the parent
  // The zero-token no-op settles as admitted with empty parts.
  EXPECT_TRUE(quota_settle(0, 0, 0).admitted);
}

// A tiny synchronous harness for the full acquire plan: two integer pools
// and a reservation ledger, mirroring what QuotaHierarchy wires in.
struct PlanHarness {
  std::uint64_t child, parent, borrowed, limit;
  std::uint64_t reserves = 0, unreserves = 0;

  QuotaGrantPlan acquire(std::uint64_t tokens, ConsumeOptions opts = {}) {
    return quota_acquire(
        tokens,
        [&](std::uint64_t n) {
          const std::uint64_t got = std::min(n, child);
          child -= got;
          return got;
        },
        [&](std::uint64_t n) {
          const std::uint64_t ok = borrow_allowance(n, borrowed, limit);
          borrowed += ok;
          reserves += ok;
          return ok;
        },
        [&](std::uint64_t n) {
          borrowed -= n;
          unreserves += n;
        },
        [&](std::uint64_t n) {
          const std::uint64_t got = std::min(n, parent);
          parent -= got;
          return got;
        },
        [&](std::uint64_t n) { child += n; },
        [&](std::uint64_t n) { parent += n; }, opts);
  }
};

TEST(QuotaPolicy, AcquireTakesChildFirstThenBorrows) {
  PlanHarness h{.child = 2, .parent = 10, .borrowed = 0, .limit = 5};
  const auto plan = h.acquire(6);
  EXPECT_TRUE(plan.admitted);
  EXPECT_EQ(plan.from_child, 2u);
  EXPECT_EQ(plan.from_parent, 4u);
  EXPECT_EQ(h.child, 0u);
  EXPECT_EQ(h.parent, 6u);
  EXPECT_EQ(h.borrowed, 4u);  // the reservation is the outstanding borrow
  EXPECT_EQ(h.unreserves, 0u);
}

TEST(QuotaPolicy, AcquireOverTheLimitRefundsAndUnreserves) {
  // Shortfall 6 against headroom 3: the reservation fails, the child grab
  // goes back, the parent is never touched.
  PlanHarness h{.child = 2, .parent = 10, .borrowed = 2, .limit = 5};
  const auto plan = h.acquire(8);
  EXPECT_FALSE(plan.admitted);
  EXPECT_EQ(h.child, 2u);
  EXPECT_EQ(h.parent, 10u);
  EXPECT_EQ(h.borrowed, 2u);
  EXPECT_EQ(h.reserves, h.unreserves);  // every reservation returned
}

TEST(QuotaPolicy, AcquireAgainstAShortParentRefundsBothLevels) {
  PlanHarness h{.child = 1, .parent = 2, .borrowed = 0, .limit = 8};
  const auto plan = h.acquire(5);  // needs 4 from a parent holding 2
  EXPECT_FALSE(plan.admitted);
  EXPECT_EQ(h.child, 1u);
  EXPECT_EQ(h.parent, 2u);
  EXPECT_EQ(h.borrowed, 0u);
}

TEST(QuotaPolicy, AcquireZeroAdmitsWithoutTouchingAnything) {
  PlanHarness h{.child = 3, .parent = 4, .borrowed = 1, .limit = 5};
  const auto plan = h.acquire(0);
  EXPECT_TRUE(plan.admitted);
  EXPECT_EQ(plan.from_child + plan.from_parent, 0u);
  EXPECT_EQ(h.child, 3u);
  EXPECT_EQ(h.parent, 4u);
  EXPECT_EQ(h.borrowed, 1u);
}

TEST(QuotaPolicy, DegradedAcquireAdmitsShortWithExactParts) {
  // The same short-parent shape that rejects above: under partial_ok
  // (the kDegradePartial action) it admits with exactly what both levels
  // yielded, and the reservation headroom the parent could not cover is
  // returned so outstanding borrow == from_parent.
  PlanHarness h{.child = 1, .parent = 2, .borrowed = 0, .limit = 8};
  const auto plan = h.acquire(5, kPartialOk);
  EXPECT_TRUE(plan.admitted);
  EXPECT_EQ(plan.from_child, 1u);
  EXPECT_EQ(plan.from_parent, 2u);
  EXPECT_EQ(h.child, 0u);
  EXPECT_EQ(h.parent, 0u);
  EXPECT_EQ(h.borrowed, 2u);  // reserved 4, claimed 2, unreserved 2
  EXPECT_EQ(h.unreserves, 2u);
}

TEST(QuotaPolicy, DegradedAcquireAcceptsAPartialReservation) {
  // Shortfall 6 against headroom 2: all-or-nothing would reject without
  // touching the parent; degrade borrows just the allowance.
  PlanHarness h{.child = 2, .parent = 10, .borrowed = 3, .limit = 5};
  const auto plan = h.acquire(8, kPartialOk);
  EXPECT_TRUE(plan.admitted);
  EXPECT_EQ(plan.from_child, 2u);
  EXPECT_EQ(plan.from_parent, 2u);
  EXPECT_EQ(h.parent, 8u);
  EXPECT_EQ(h.borrowed, 5u);  // pinned at the limit, not beyond
}

TEST(OverloadPolicy, EscalationIsImmediate) {
  const OverloadThresholds th;
  // From nominal, any pressure jumps straight to the highest entered tier
  // — no ladder-climbing delay.
  EXPECT_EQ(overload_tier(0.97, OverloadTier::kNominal, th),
            OverloadTier::kShedTenants);
  EXPECT_EQ(overload_tier(0.72, OverloadTier::kNominal, th),
            OverloadTier::kForceEliminate);
  EXPECT_EQ(overload_tier(0.49, OverloadTier::kNominal, th),
            OverloadTier::kNominal);
  EXPECT_EQ(overload_tier(0.50, OverloadTier::kNominal, th),
            OverloadTier::kShrinkBatch);  // enter thresholds are inclusive
}

TEST(OverloadPolicy, DescentIsHysteretic) {
  const OverloadThresholds th;  // enter {-, .50, .70, .85, .95}, hyst .10
  // Inside tier 4's band (> .85): held.
  EXPECT_EQ(overload_tier(0.90, OverloadTier::kShedTenants, th),
            OverloadTier::kShedTenants);
  // At the exit threshold exactly: released, down to the highest tier
  // still held (tier 3 holds above .75).
  EXPECT_EQ(overload_tier(0.85, OverloadTier::kShedTenants, th),
            OverloadTier::kDegradePartial);
  // .55 releases tiers 4..2 but tier 1 still holds (> .40).
  EXPECT_EQ(overload_tier(0.55, OverloadTier::kShedTenants, th),
            OverloadTier::kShrinkBatch);
  EXPECT_EQ(overload_tier(0.40, OverloadTier::kShrinkBatch, th),
            OverloadTier::kNominal);
  // The band is what prevents flapping: the same .65 that cannot *enter*
  // tier 2 does keep it alive once entered.
  EXPECT_EQ(overload_tier(0.65, OverloadTier::kNominal, th),
            OverloadTier::kShrinkBatch);
  EXPECT_EQ(overload_tier(0.65, OverloadTier::kForceEliminate, th),
            OverloadTier::kForceEliminate);
}

TEST(OverloadPolicy, ActionTableIsMonotone) {
  auto prev = overload_actions(OverloadTier::kNominal);
  EXPECT_EQ(prev.batch_divisor, 1u);
  EXPECT_FALSE(prev.force_eliminate || prev.degrade_to_partial ||
               prev.shed_tenants);
  for (std::size_t t = 1; t < kNumOverloadTiers; ++t) {
    const auto cur = overload_actions(static_cast<OverloadTier>(t));
    EXPECT_GE(cur.batch_divisor, prev.batch_divisor) << "tier " << t;
    EXPECT_TRUE(cur.force_eliminate || !prev.force_eliminate) << "tier " << t;
    EXPECT_TRUE(cur.degrade_to_partial || !prev.degrade_to_partial)
        << "tier " << t;
    EXPECT_TRUE(cur.shed_tenants || !prev.shed_tenants) << "tier " << t;
    prev = cur;
  }
  EXPECT_EQ(prev.batch_divisor, kOverloadBatchDivisor);
  EXPECT_TRUE(prev.force_eliminate && prev.degrade_to_partial &&
              prev.shed_tenants);
}

TEST(OverloadPolicy, PressureRulesClampAndTreatEmptiesAsIdle) {
  // Empty window and zero saturation both read as zero — an idle system
  // decays to nominal instead of holding its last reading.
  EXPECT_EQ(window_pressure({.ops = 0, .events = 9}, 2.0), 0.0);
  EXPECT_EQ(window_pressure({.ops = 10, .events = 5}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(window_pressure({.ops = 10, .events = 5}, 2.0), 0.25);
  EXPECT_EQ(window_pressure({.ops = 4, .events = 1000}, 1.0), 1.0);  // clamp
  // Capacity 0 means "no budget at all": any occupancy is full pressure,
  // zero occupancy is idle. (Regression: this used to read 0.0 — a
  // zero-budget gauge could never raise pressure, so a reweighed-to-zero
  // tenant's backlog was invisible to the tier ladder.)
  EXPECT_EQ(occupancy_pressure(5, 0), 1.0);
  EXPECT_EQ(occupancy_pressure(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(occupancy_pressure(3, 4), 0.75);
  EXPECT_EQ(occupancy_pressure(9, 4), 1.0);
  // Max-combine: the worst signal wins; out-of-range readings clamp.
  EXPECT_DOUBLE_EQ(combine_pressure({0.2, 0.9, 0.1}), 0.9);
  EXPECT_EQ(combine_pressure({-3.0, 7.0}), 1.0);
  EXPECT_EQ(combine_pressure({}), 0.0);
}

TEST(ReconfigPolicy, DividedChunkFloorsAtOneAndIgnoresTrivialDivisors) {
  EXPECT_EQ(divided_chunk(64, 1), 64u);
  EXPECT_EQ(divided_chunk(64, 0), 64u);  // no divisor: unchanged
  EXPECT_EQ(divided_chunk(64, 4), 16u);
  EXPECT_EQ(divided_chunk(3, 4), 1u);   // floor: progress is never zero
  EXPECT_EQ(divided_chunk(0, 1), 1u);   // degenerate chunk also floors
  EXPECT_EQ(divided_chunk(256, 256), 1u);
}

TEST(ReconfigPolicy, RespecSafeBoundsTheChunk) {
  EXPECT_FALSE(respec_safe(0));
  EXPECT_TRUE(respec_safe(1));
  EXPECT_TRUE(respec_safe(kMaxRefillChunk));
  EXPECT_FALSE(respec_safe(kMaxRefillChunk + 1));
}

TEST(ReconfigPolicy, ReweighSafeRequiresAFullPositiveVector) {
  EXPECT_TRUE(reweigh_safe(3, {1, 2, 3}));
  EXPECT_FALSE(reweigh_safe(3, {1, 2}));      // positional: size must match
  EXPECT_FALSE(reweigh_safe(3, {1, 2, 3, 4}));
  EXPECT_FALSE(reweigh_safe(3, {1, 0, 3}));   // zero weight is a shed
  EXPECT_FALSE(reweigh_safe(0, {}));          // no tenants, nothing to weigh
}

TEST(ReconfigPolicy, ReweighLimitsRedividesAgainstTheVectorsOwnTotal) {
  EXPECT_EQ(reweigh_limits(100, {1, 1}), (std::vector<std::uint64_t>{50, 50}));
  EXPECT_EQ(reweigh_limits(100, {3, 1}), (std::vector<std::uint64_t>{75, 25}));
  // Per-tenant limits agree with the scalar rule on the same total...
  const std::vector<std::uint64_t> weights{4, 2, 1, 1};
  const auto limits = reweigh_limits(120, weights);
  ASSERT_EQ(limits.size(), weights.size());
  for (std::size_t t = 0; t < limits.size(); ++t) {
    EXPECT_EQ(limits[t], weighted_borrow_limit(120, weights[t], 8))
        << "tenant " << t;
  }
  // ...and the published vector's sum never exceeds the budget — the
  // whole-vector atomicity invariant a mixed-generation read would break.
  std::uint64_t sum = 0;
  for (const std::uint64_t l : limits) sum += l;
  EXPECT_LE(sum, 120u);
}

TEST(ReconfigPolicy, BorrowOverageIsNeverClawedBack) {
  EXPECT_EQ(borrow_overage(40, 10), 30u);  // shrunken limit: pure overage
  EXPECT_EQ(borrow_overage(10, 10), 0u);
  EXPECT_EQ(borrow_overage(5, 10), 0u);
  // The overage only ever drains through releases: allowance is zero while
  // any overage exists, so no new borrow can extend it.
  EXPECT_EQ(borrow_allowance(1, 40, 10), 0u);
  EXPECT_EQ(borrow_allowance(1, 10, 10), 0u);
  EXPECT_EQ(borrow_allowance(1, 9, 10), 1u);
}

TEST(OverloadPolicy, ShedSetPicksLowWeightsAndNeverShedsEveryone) {
  // Weights {4,2,1,1} at fraction .25: weight budget 2 — both weight-1
  // tenants, the higher index first, reported ascending.
  EXPECT_EQ(shed_set({4, 2, 1, 1}, 0.25), (std::vector<std::size_t>{2, 3}));
  // Ties break toward the higher index, so tenant 0 goes last.
  EXPECT_EQ(shed_set({1, 1, 1}, 0.34), (std::vector<std::size_t>{1, 2}));
  // Even fraction 1.0 leaves one tenant standing.
  EXPECT_EQ(shed_set({5, 3, 2}, 1.0), (std::vector<std::size_t>{1, 2}));
  // Degenerate inputs shed nobody.
  EXPECT_TRUE(shed_set({7}, 0.9).empty());
  EXPECT_TRUE(shed_set({3, 4}, 0.0).empty());
  EXPECT_TRUE(shed_set({}, 0.5).empty());
}

TEST(DistPolicy, LeaseGrantCoarsensSmallWantsAndCapsLargeOnes) {
  // want below the chunk rounds up to a full chunk; zero means "top up".
  EXPECT_EQ(dist::lease_grant(0, 96, 384), 96u);
  EXPECT_EQ(dist::lease_grant(40, 96, 384), 96u);
  // want above the chunk is honored exactly, until the per-node cap.
  EXPECT_EQ(dist::lease_grant(200, 96, 384), 200u);
  EXPECT_EQ(dist::lease_grant(500, 96, 384), 384u);
  // A cap below the chunk wins: the cap is the hard per-lease bound.
  EXPECT_EQ(dist::lease_grant(0, 96, 64), 64u);
}

TEST(DistPolicy, ExpiryRefundIsParentFirstAndAlwaysSumsToRecovered) {
  // Spend attributes child-first, so recovery refunds parent-first: all 30
  // spent tokens came from the child part here.
  const auto r = dist::lease_expiry_refund(50, 50, 70);
  EXPECT_EQ(r.refund_child, 20u);
  EXPECT_EQ(r.refund_parent, 50u);
  // Fully recovered: both parts go home whole.
  const auto whole = dist::lease_expiry_refund(50, 50, 100);
  EXPECT_EQ(whole.refund_child, 50u);
  EXPECT_EQ(whole.refund_parent, 50u);
  // Fully spent: nothing to refund.
  const auto spent = dist::lease_expiry_refund(50, 50, 0);
  EXPECT_EQ(spent.refund_child + spent.refund_parent, 0u);
  // Over-recovery (corrupt caller) is capped at the grant total.
  const auto capped = dist::lease_expiry_refund(50, 50, 999);
  EXPECT_EQ(capped.refund_child + capped.refund_parent, 100u);
  // Exhaustive small sweep: the split never loses a token.
  for (std::uint64_t fc = 0; fc <= 5; ++fc) {
    for (std::uint64_t fp = 0; fp <= 5; ++fp) {
      for (std::uint64_t rec = 0; rec <= fc + fp; ++rec) {
        const auto s = dist::lease_expiry_refund(fc, fp, rec);
        EXPECT_EQ(s.refund_child + s.refund_parent, rec);
        EXPECT_LE(s.refund_child, fc);
        EXPECT_LE(s.refund_parent, fp);
      }
    }
  }
}

TEST(DistPolicy, DebtReconcileAndSurplusClampAtTheirBounds) {
  EXPECT_EQ(dist::debt_reconcile(1000, 192), 192u);
  EXPECT_EQ(dist::debt_reconcile(100, 192), 100u);
  EXPECT_EQ(dist::debt_reconcile(0, 192), 0u);
  // The reserve is inviolable: at or below it a peer donates nothing.
  EXPECT_EQ(dist::peer_surplus(100, 24), 76u);
  EXPECT_EQ(dist::peer_surplus(24, 24), 0u);
  EXPECT_EQ(dist::peer_surplus(0, 24), 0u);
}

TEST(DistPolicy, LeaseCarveTakesChildFirstAndNeverOverdraws) {
  const auto both = dist::lease_carve(70, 50, 50);
  EXPECT_EQ(both.from_child, 50u);
  EXPECT_EQ(both.from_parent, 20u);
  EXPECT_EQ(both.tokens(), 70u);
  const auto child_only = dist::lease_carve(30, 50, 50);
  EXPECT_EQ(child_only.from_child, 30u);
  EXPECT_EQ(child_only.from_parent, 0u);
  // A want beyond both parts carves everything available, no more.
  const auto all = dist::lease_carve(999, 50, 50);
  EXPECT_EQ(all.tokens(), 100u);
}

TEST(DistPolicy, RenewalTargetWalksNearestFirstThenGoesGlobal) {
  // 0|1 share a rack, 2|3 share a rack in the other dc.
  const dist::Topology topo({{0, 0}, {0, 0}, {1, 0}, {1, 0}});
  ASSERT_TRUE(dist::renewal_target(topo, 0, 0).has_value());
  EXPECT_EQ(*dist::renewal_target(topo, 0, 0), 1u);  // rack-mate first
  // The remaining peers follow (remote dc, both nodes), then the walk
  // ends: nullopt is the "ask the global hierarchy yourself" signal.
  EXPECT_TRUE(dist::renewal_target(topo, 0, 1).has_value());
  EXPECT_TRUE(dist::renewal_target(topo, 0, 2).has_value());
  EXPECT_FALSE(dist::renewal_target(topo, 0, 3).has_value());
}

}  // namespace
}  // namespace cnet::svc
