// §1.4.2 (Herlihy–Shavit–Waarts): counting networks are NOT linearizable —
// a token can finish with a larger value before another token *starts* and
// receives a smaller one. Low contention + linearizability provably costs
// Ω(n) depth, a price the paper's networks (and all classical counting
// networks) deliberately do not pay. We reproduce both sides:
//   * depth-1 networks (a single balancer feeding the cells) ARE
//     linearizable in the simulator's atomic-exit model;
//   * every deeper counting network exhibits an inversion under some
//     schedule, which a deterministic seeded search finds.
#include <gtest/gtest.h>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/sim/schedulers.hpp"
#include "cnet/sim/token_sim.hpp"

namespace cnet::sim {
namespace {

// True iff some pair of non-overlapping tokens has inverted values:
// token i exited before token j entered, yet i's value exceeds j's.
bool has_inversion(const std::vector<TokenRecord>& records) {
  for (const auto& i : records) {
    for (const auto& j : records) {
      if (i.exit_step < j.enter_step && i.value > j.value) return true;
    }
  }
  return false;
}

SimResult run(const topo::Topology& net, std::size_t n, std::size_t m,
              std::uint64_t seed) {
  SimConfig cfg{.concurrency = n,
                .total_tokens = m,
                .collect_counter_values = false,
                .collect_per_balancer = false,
                .collect_token_records = true};
  RandomScheduler sched(seed);
  return simulate(net, cfg, sched);
}

TEST(Linearizability, RecordsCoverEveryToken) {
  const auto net = core::make_counting(4, 4);
  const auto res = run(net, 3, 100, 1);
  ASSERT_EQ(res.token_records.size(), 100u);
  for (const auto& rec : res.token_records) {
    EXPECT_LE(rec.enter_step, rec.exit_step);
    EXPECT_LT(rec.process, 3u);
  }
}

TEST(Linearizability, ValuesRespectPerProcessOrder) {
  // A single process's successive tokens must get increasing values (its
  // next token enters only after the previous one exited, and the whole
  // structure is quiescent at that moment in a 1-process run).
  const auto net = core::make_counting(8, 16);
  const auto res = run(net, 1, 200, 2);
  for (std::size_t i = 1; i < res.token_records.size(); ++i) {
    EXPECT_LT(res.token_records[i - 1].value, res.token_records[i].value);
  }
}

TEST(Linearizability, SingleBalancerNetworkIsLinearizable) {
  // C(2,t): one balancer straight into the cells — the balancer transition
  // and the value assignment are a single atomic step in the sim model, so
  // value order == completion order and no inversion can exist.
  topo::Builder b;
  const auto in = b.add_network_inputs(2);
  b.set_outputs(b.add_balancer(in, 4));
  const auto net = std::move(b).build();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto res = run(net, 6, 300, seed);
    EXPECT_FALSE(has_inversion(res.token_records)) << "seed " << seed;
  }
}

// Deeper counting networks: an adversary-found inversion witness. The
// searches are deterministic (fixed seeds, deterministic simulator).
class NonLinearizable : public ::testing::TestWithParam<const char*> {};

TEST_P(NonLinearizable, SomeScheduleInvertsNonOverlappingTokens) {
  topo::Topology net = [&]() -> topo::Topology {
    const std::string which = GetParam();
    if (which == "C44") return core::make_counting(4, 4);
    if (which == "C48") return core::make_counting(4, 8);
    if (which == "C88") return core::make_counting(8, 8);
    return baselines::make_bitonic(4);
  }();
  bool found = false;
  for (std::uint64_t seed = 0; seed < 200 && !found; ++seed) {
    found = has_inversion(run(net, 8, 400, seed).token_records);
  }
  EXPECT_TRUE(found)
      << "no inversion found — counting networks of depth >= 2 should not "
         "be linearizable";
}

INSTANTIATE_TEST_SUITE_P(Families, NonLinearizable,
                         ::testing::Values("C44", "C48", "C88", "bitonic4"));

}  // namespace
}  // namespace cnet::sim
