#include "cnet/runtime/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/network_counter.hpp"

namespace cnet::rt {
namespace {

TEST(Barrier, RejectsBadArguments) {
  EXPECT_THROW(CountingBarrier(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(CountingBarrier(std::make_shared<AtomicCounter>(), 0),
               std::invalid_argument);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  CountingBarrier barrier(std::make_shared<AtomicCounter>(), 1);
  for (std::int64_t phase = 0; phase < 10; ++phase) {
    EXPECT_EQ(barrier.arrive_and_wait(0), phase);
  }
}

// The barrier property: no thread may enter phase k+1 before every thread
// finished phase k. We detect violations with a per-phase arrival count.
void run_phase_discipline_test(std::shared_ptr<Counter> counter) {
  constexpr std::size_t kParties = 6;
  constexpr std::int64_t kPhases = 50;
  CountingBarrier barrier(std::move(counter), kParties);
  std::atomic<std::int64_t> in_phase[kPhases + 1] = {};
  std::atomic<bool> violation{false};

  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kParties; ++t) {
      workers.emplace_back([&, t] {
        for (std::int64_t phase = 0; phase < kPhases; ++phase) {
          in_phase[phase].fetch_add(1);
          const std::int64_t completed = barrier.arrive_and_wait(t);
          if (completed != phase) violation.store(true);
          // After the barrier, every party must have entered this phase.
          if (in_phase[phase].load() != kParties) violation.store(true);
        }
      });
    }
  }
  EXPECT_FALSE(violation.load());
  for (std::int64_t phase = 0; phase < kPhases; ++phase) {
    EXPECT_EQ(in_phase[phase].load(), static_cast<std::int64_t>(kParties));
  }
}

TEST(Barrier, PhaseDisciplineWithAtomicCounter) {
  run_phase_discipline_test(std::make_shared<AtomicCounter>());
}

TEST(Barrier, PhaseDisciplineWithCountingNetwork) {
  run_phase_discipline_test(std::make_shared<NetworkCounter>(
      core::make_counting(4, 8), "C(4,8)"));
}

TEST(Barrier, PhaseDisciplineWithMutexCounter) {
  run_phase_discipline_test(std::make_shared<MutexCounter>());
}

}  // namespace
}  // namespace cnet::rt
