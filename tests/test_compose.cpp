// Composition: cascades and stacks are first-class networks with the
// expected combinatorial and behavioural properties.
#include "cnet/topology/compose.hpp"

#include <gtest/gtest.h>

#include "cnet/baselines/periodic.hpp"
#include "cnet/core/butterfly.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/core/ladder.hpp"
#include "cnet/topology/isomorphism.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/prng.hpp"
#include "test_util.hpp"

namespace cnet::topo {
namespace {

TEST(Cascade, WidthsAndSizesAdd) {
  const auto a = core::make_ladder(8);
  const auto b = core::make_backward_butterfly(8);
  const auto c = cascade(a, b);
  EXPECT_EQ(c.width_in(), 8u);
  EXPECT_EQ(c.width_out(), 8u);
  EXPECT_EQ(c.num_balancers(), a.num_balancers() + b.num_balancers());
  EXPECT_EQ(c.depth(), a.depth() + b.depth());
}

TEST(Cascade, RejectsWidthMismatch) {
  EXPECT_THROW(
      (void)cascade(core::make_ladder(4), core::make_ladder(8)),
      std::invalid_argument);
}

TEST(Cascade, BehavesLikeSequentialEvaluation) {
  const auto a = core::make_forward_butterfly(8);
  const auto b = core::make_counting(8, 8);
  const auto c = cascade(a, b);
  util::Xoshiro256 rng(0xCA5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto x = test::random_input(8, 30, rng);
    EXPECT_EQ(evaluate(c, x), evaluate(b, evaluate(a, x)));
  }
}

TEST(Cascade, PeriodicEqualsCascadedBlocks) {
  // make_periodic is lg w blocks; rebuilding it via cascade_n must give an
  // isomorphic network.
  for (const std::size_t w : {4u, 8u}) {
    const auto block = baselines::make_block(w);
    const auto via_cascade = cascade_n(block, util::ilog2(w));
    EXPECT_TRUE(are_isomorphic(via_cascade, baselines::make_periodic(w)))
        << w;
  }
}

TEST(Cascade, CountingStageMakesCascadeCount) {
  // smoothing-then-counting cascades count.
  const auto net = cascade(core::make_forward_butterfly(8),
                           core::make_counting(8, 16));
  util::Xoshiro256 rng(0xCA6);
  EXPECT_FALSE(check_counting_random(net, 200, 30, rng).has_value());
}

TEST(CascadeN, RejectsBadArguments) {
  EXPECT_THROW((void)cascade_n(core::make_ladder(4), 0),
               std::invalid_argument);
  EXPECT_THROW((void)cascade_n(core::make_counting(4, 8), 2),
               std::invalid_argument);  // 4 != 8
}

TEST(Stack, WidthsConcatenate) {
  const auto s = stack(core::make_ladder(4), core::make_counting(4, 8));
  EXPECT_EQ(s.width_in(), 8u);
  EXPECT_EQ(s.width_out(), 12u);
}

TEST(Stack, HalvesAreIndependent) {
  const auto top = core::make_counting(4, 4);
  const auto bottom = core::make_counting(4, 4);
  const auto s = stack(top, bottom);
  util::Xoshiro256 rng(0x57AC);
  for (int trial = 0; trial < 50; ++trial) {
    const auto xt = test::random_input(4, 20, rng);
    const auto xb = test::random_input(4, 20, rng);
    seq::Sequence x = xt;
    x.insert(x.end(), xb.begin(), xb.end());
    const auto y = evaluate(s, x);
    const auto yt = evaluate(top, xt);
    const auto yb = evaluate(bottom, xb);
    seq::Sequence expected = yt;
    expected.insert(expected.end(), yb.begin(), yb.end());
    EXPECT_EQ(y, expected);
  }
}

TEST(Stack, PlusLadderEqualsButterflyRecursion) {
  // E(w) = L(w) then stack(E(w/2), E(w/2)): rebuild via compose and check
  // isomorphism with the library construction.
  const std::size_t w = 8;
  const auto manual = cascade(
      core::make_ladder(w), stack(core::make_backward_butterfly(w / 2),
                                  core::make_backward_butterfly(w / 2)));
  EXPECT_TRUE(are_isomorphic(manual, core::make_backward_butterfly(w)));
}

}  // namespace
}  // namespace cnet::topo
