// svc::AdmissionController: the facade must charge the bucket
// all-or-nothing, hand out globally-unique request IDs only on admission,
// and hold the combined safety property (admitted requests x cost never
// exceeds refilled tokens) under concurrency.
#include "cnet/svc/admission.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace cnet::svc {
namespace {

TEST(AdmissionController, AdmitsExactlyWhileTokensLast) {
  AdmissionConfig cfg;
  cfg.backend = BackendKind::kCentralAtomic;
  cfg.bucket.initial_tokens = 6;
  AdmissionController ctl(cfg);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 5; ++i) {
    const auto ticket = ctl.admit(0, 2);
    if (i < 3) {
      ASSERT_TRUE(ticket.admitted) << "request " << i;
      ids.push_back(ticket.request_id);
    } else {
      ASSERT_FALSE(ticket.admitted) << "request " << i;
      ASSERT_EQ(ticket.request_id, -1);
    }
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  // A later refill re-opens the gate.
  ctl.refill(0, 2);
  EXPECT_TRUE(ctl.admit(1, 2).admitted);
}

TEST(AdmissionController, ZeroCostIsRejectedAsMisuse) {
  AdmissionController ctl(AdmissionConfig{});
  EXPECT_THROW((void)ctl.admit(0, 0), std::invalid_argument);
}

TEST(AdmissionController, ConcurrentAdmissionsAreUniqueAndBounded) {
  for (const BackendKind kind :
       {BackendKind::kCentralCas, BackendKind::kBatchedNetwork}) {
    AdmissionConfig cfg;
    cfg.backend = kind;
    cfg.shards = 4;
    cfg.ids.max_threads = 8;
    cfg.bucket.initial_tokens = 2000;
    AdmissionController ctl(cfg);
    std::vector<std::vector<std::int64_t>> ids(8);
    {
      std::vector<std::jthread> workers;
      for (std::size_t t = 0; t < 8; ++t) {
        workers.emplace_back([&, t] {
          for (int i = 0; i < 400; ++i) {
            const auto ticket = ctl.admit(t, 1);
            if (ticket.admitted) ids[t].push_back(ticket.request_id);
          }
        });
      }
    }
    std::vector<std::int64_t> all;
    for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
    // 8x400 = 3200 attempts against 2000 tokens: admissions are bounded by
    // the refilled total and every admitted request got a distinct ID.
    EXPECT_LE(all.size(), 2000u) << ctl.name();
    EXPECT_GE(all.size(), 1u) << ctl.name();
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << ctl.name();
  }
}

TEST(AdmissionController, NameAndStallsReportTheBackend) {
  AdmissionConfig cfg;
  cfg.backend = BackendKind::kNetwork;
  AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.name(), "admission·C(8,24)");
  EXPECT_GE(ctl.stall_count(), 0u);
}

}  // namespace
}  // namespace cnet::svc
