// Scheduler policies: exact replay with ScriptScheduler, adversary
// comparisons, and the Lemma 2.5 layer-smoothness property the contention
// analysis rests on.
#include "cnet/sim/schedulers.hpp"

#include <gtest/gtest.h>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/core/ladder.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "test_util.hpp"

namespace cnet::sim {
namespace {

// Width-1 chain of two (1,2)->(2 inputs?) ... use a 2-wide chain: two
// balancers in series so a script can interleave precisely.
topo::Topology chain2() {
  topo::Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [a0, a1] = b.add_balancer2(in[0], in[1]);
  const auto [b0, b1] = b.add_balancer2(a0, a1);
  const topo::WireId outs[2] = {b0, b1};
  b.set_outputs(outs);
  return std::move(b).build();
}

TEST(ScriptScheduler, ReplaysExactExecution) {
  // Two processes, two tokens: both enter balancer 0, then balancer 1.
  // Script: fire 0, 0, 1, 1. First firing at each balancer stalls the
  // other waiter once at balancer 0 (queue 2), once at balancer 1.
  const auto net = chain2();
  SimConfig cfg{.concurrency = 2, .total_tokens = 2};
  ScriptScheduler sched({0, 0, 1, 1});
  const auto res = simulate(net, cfg, sched);
  EXPECT_EQ(res.total_stalls, 2u);
  EXPECT_EQ(sched.consumed(), 4u);
  EXPECT_TRUE(test::is_exact_range(res.counter_values));
}

TEST(ScriptScheduler, PipelinedInterleavingHalvesStalls) {
  // Script: fire 0, 1, 0, 1 — after the unavoidable stall at balancer 0
  // (both tokens inject there simultaneously), the pipeline keeps the
  // queues at one, so balancer 1 incurs no stall.
  const auto net = chain2();
  SimConfig cfg{.concurrency = 2, .total_tokens = 2};
  ScriptScheduler sched({0, 1, 0, 1});
  const auto res = simulate(net, cfg, sched);
  EXPECT_EQ(res.total_stalls, 1u);
}

TEST(ScriptScheduler, ThrowsWhenExhausted) {
  const auto net = chain2();
  SimConfig cfg{.concurrency = 2, .total_tokens = 2};
  ScriptScheduler sched({0, 0});
  EXPECT_THROW((void)simulate(net, cfg, sched), std::invalid_argument);
}

TEST(ScriptScheduler, RejectsFiringEmptyBalancer) {
  const auto net = chain2();
  SimConfig cfg{.concurrency = 2, .total_tokens = 2};
  ScriptScheduler sched({1, 0, 0, 1});  // balancer 1 is empty initially
  EXPECT_THROW((void)simulate(net, cfg, sched), std::logic_error);
}

TEST(GreedyScheduler, MatchesConvoyOnSingleBalancer) {
  topo::Builder b;
  const auto in = b.add_network_inputs(1);
  b.set_outputs(b.add_balancer(in, 2));
  const auto net = std::move(b).build();
  SimConfig cfg{.concurrency = 8, .total_tokens = 8};
  GreedyMaxQueueScheduler sched;
  const auto res = simulate(net, cfg, sched);
  EXPECT_EQ(res.total_stalls, 8u * 7u / 2u);
}

TEST(GreedyScheduler, ProducesContentionBetweenFairAndConvoy) {
  const auto net = baselines::make_bitonic(16);
  const std::size_t n = 128, m = 4096;
  auto measure = [&](SchedulerKind kind) {
    SimConfig cfg{.concurrency = n, .total_tokens = m,
                  .collect_counter_values = false,
                  .collect_per_balancer = false};
    auto sched = make_scheduler(kind, 7);
    return simulate(net, cfg, *sched).stalls_per_token;
  };
  const double fair = measure(SchedulerKind::kRoundRobin);
  const double greedy = measure(SchedulerKind::kGreedyMaxQueue);
  const double convoy = measure(SchedulerKind::kWavefrontConvoy);
  EXPECT_GT(greedy, 0.0);
  EXPECT_GT(convoy, fair);  // the adversary must beat fair scheduling
}

TEST(SchedulerNames, AllDistinct) {
  EXPECT_STREQ(scheduler_name(SchedulerKind::kRandom), "random");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kRoundRobin), "round-robin");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kWavefrontConvoy),
               "wavefront-convoy");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kGreedyMaxQueue),
               "greedy-max-queue");
}

TEST(SchedulerFactory, CoversEveryKind) {
  for (const auto kind :
       {SchedulerKind::kRandom, SchedulerKind::kRoundRobin,
        SchedulerKind::kWavefrontConvoy, SchedulerKind::kGreedyMaxQueue}) {
    EXPECT_NE(make_scheduler(kind, 1), nullptr);
  }
}

// Lemma 2.5: in a regular network, a k-smooth layer input yields a k-smooth
// layer output. We check it on ladder layers with randomized k-smooth
// inputs (the building block of the §6.4 contention argument).
TEST(Lemma25, LayerPreservesKSmoothness) {
  util::Xoshiro256 rng(0x25);
  for (const std::size_t w : {4u, 8u, 16u}) {
    const auto layer = core::make_ladder(w);
    for (seq::Value k = 0; k <= 6; ++k) {
      for (int trial = 0; trial < 100; ++trial) {
        // Random k-smooth input: values in [base, base+k].
        seq::Sequence x(w);
        const auto base = static_cast<seq::Value>(rng.below(10));
        for (auto& v : x) {
          v = base + static_cast<seq::Value>(
                         rng.below(static_cast<std::uint64_t>(k) + 1));
        }
        const auto y = topo::evaluate(layer, x);
        EXPECT_TRUE(seq::is_k_smooth(y, k))
            << "w=" << w << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace cnet::sim
