// Batched-token runtime: traverse_batch equivalence with per-token
// traversal (quiescent step property), and fetch_increment_batch no-gap /
// no-duplicate guarantees, across batch sizes on C(w,t), bitonic, and the
// central baseline.
#include "cnet/runtime/network_counter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/compiled_network.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/topology/topology.hpp"
#include "test_util.hpp"

namespace cnet::rt {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 3, 8, 64};

// Per-wire exit counts after pushing `k` tokens into `input_wire` of a
// fresh compiled copy of `net`, batched.
std::vector<std::uint64_t> batch_counts(const topo::Topology& net,
                                        std::size_t input_wire,
                                        std::uint64_t k, BalancerMode mode) {
  CompiledNetwork cn(net);
  BatchScratch scratch;
  std::vector<std::uint64_t> counts(cn.width_out(), 0);
  std::uint64_t stalls = 0;
  cn.traverse_batch(input_wire, k, mode, &stalls, scratch, counts.data());
  return counts;
}

// The same tokens pushed one at a time through traverse().
std::vector<std::uint64_t> serial_counts(const topo::Topology& net,
                                         std::size_t input_wire,
                                         std::uint64_t k) {
  CompiledNetwork cn(net);
  std::vector<std::uint64_t> counts(cn.width_out(), 0);
  for (std::uint64_t i = 0; i < k; ++i) {
    ++counts[cn.traverse(input_wire, BalancerMode::kFetchAdd, nullptr)];
  }
  return counts;
}

class BatchTraversal : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchTraversal, MatchesSerialTraversalOnCounting) {
  const std::uint64_t k = GetParam();
  const auto net = core::make_counting(8, 24);
  for (std::size_t wire = 0; wire < net.width_in(); ++wire) {
    EXPECT_EQ(batch_counts(net, wire, k, BalancerMode::kFetchAdd),
              serial_counts(net, wire, k))
        << "wire " << wire << " k " << k;
  }
}

TEST_P(BatchTraversal, MatchesSerialTraversalOnBitonic) {
  const std::uint64_t k = GetParam();
  const auto net = baselines::make_bitonic(8);
  for (std::size_t wire = 0; wire < net.width_in(); ++wire) {
    EXPECT_EQ(batch_counts(net, wire, k, BalancerMode::kFetchAdd),
              serial_counts(net, wire, k));
  }
}

TEST_P(BatchTraversal, CasModeMatchesFetchAddWhenSequential) {
  const std::uint64_t k = GetParam();
  const auto net = core::make_counting(4, 8);
  EXPECT_EQ(batch_counts(net, 1, k, BalancerMode::kCasRetry),
            batch_counts(net, 1, k, BalancerMode::kFetchAdd));
}

TEST_P(BatchTraversal, QuiescentOutputHasStepProperty) {
  // A counting network's quiescent output after any token count is a step
  // sequence (paper Thm 4.2); batches must preserve that, including when
  // several batches enter on different wires.
  const std::uint64_t k = GetParam();
  const auto net = core::make_counting(8, 16);
  CompiledNetwork cn(net);
  BatchScratch scratch;
  std::vector<std::uint64_t> counts(cn.width_out(), 0);
  std::uint64_t total = 0;
  for (std::size_t wire = 0; wire < net.width_in(); ++wire) {
    cn.traverse_batch(wire, k + wire, BalancerMode::kFetchAdd, nullptr,
                      scratch, counts.data());
    total += k + wire;
  }
  seq::Sequence out(counts.begin(), counts.end());
  EXPECT_TRUE(seq::is_step(out));
  EXPECT_EQ(static_cast<std::uint64_t>(
                std::accumulate(counts.begin(), counts.end(),
                                std::uint64_t{0})),
            total);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchTraversal,
                         ::testing::Values(std::size_t{1}, std::size_t{3},
                                           std::size_t{8}, std::size_t{64}),
                         [](const auto& pinfo) {
                           return "k" + std::to_string(pinfo.param);
                         });

// Hammers counter.fetch_increment_batch from several threads, mixing batch
// sizes, and returns every value obtained.
std::vector<std::int64_t> hammer_batched(Counter& counter,
                                         std::size_t threads,
                                         std::size_t calls_per_thread) {
  std::vector<std::vector<std::int64_t>> got(threads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::int64_t values[64];
        for (std::size_t i = 0; i < calls_per_thread; ++i) {
          const std::size_t k =
              kBatchSizes[(t + i) % std::size(kBatchSizes)];
          counter.fetch_increment_batch(t, k, values);
          got[t].insert(got[t].end(), values, values + k);
        }
      });
    }
  }
  std::vector<std::int64_t> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  return all;
}

void expect_exact_range(std::vector<std::int64_t> values) {
  EXPECT_TRUE(test::is_exact_range(
      std::vector<seq::Value>(values.begin(), values.end())))
      << "gaps or duplicates among " << values.size() << " values";
}

TEST(BatchedNetworkCounter, SequentialBatchesAreGapFree) {
  BatchedNetworkCounter counter(core::make_counting(8, 24), "C(8,24)");
  std::vector<std::int64_t> all;
  std::int64_t values[64];
  for (const std::size_t k : kBatchSizes) {
    for (int round = 0; round < 8; ++round) {
      counter.fetch_increment_batch(static_cast<std::size_t>(round), k,
                                    values);
      all.insert(all.end(), values, values + k);
    }
  }
  expect_exact_range(std::move(all));
}

TEST(BatchedNetworkCounter, SingleTokenBatchMatchesFetchIncrement) {
  BatchedNetworkCounter counter(core::make_counting(4, 8), "C(4,8)");
  std::int64_t value = -1;
  for (std::int64_t expect = 0; expect < 100; ++expect) {
    if (expect % 2 == 0) {
      counter.fetch_increment_batch(static_cast<std::size_t>(expect), 1,
                                    &value);
    } else {
      value = counter.fetch_increment(static_cast<std::size_t>(expect));
    }
    EXPECT_EQ(value, expect);
  }
}

struct BatchedCase {
  const char* label;
  std::size_t w, t;
  BalancerMode mode;
};

class BatchedCounterThreads : public ::testing::TestWithParam<BatchedCase> {};

TEST_P(BatchedCounterThreads, ConcurrentMixedBatchesAreExactRange) {
  const auto& param = GetParam();
  BatchedNetworkCounter counter(core::make_counting(param.w, param.t),
                                param.label, param.mode);
  expect_exact_range(hammer_batched(counter, 8, 400));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchedCounterThreads,
    ::testing::Values(BatchedCase{"C44_fa", 4, 4, BalancerMode::kFetchAdd},
                      BatchedCase{"C824_fa", 8, 24, BalancerMode::kFetchAdd},
                      BatchedCase{"C88_cas", 8, 8, BalancerMode::kCasRetry}),
    [](const auto& pinfo) { return std::string(pinfo.param.label); });

TEST(BatchedNetworkCounter, BitonicBackendConcurrentBatches) {
  BatchedNetworkCounter counter(baselines::make_bitonic(8), "bitonic(8)");
  expect_exact_range(hammer_batched(counter, 6, 400));
}

TEST(BatchedNetworkCounter, MixedBatchedAndPerTokenCallers) {
  // Batched and per-token callers share one counter; the union of their
  // values must still be gap-free and duplicate-free.
  BatchedNetworkCounter counter(core::make_counting(8, 16), "C(8,16)");
  std::vector<std::vector<std::int64_t>> got(8);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < 8; ++t) {
      workers.emplace_back([&, t] {
        std::int64_t values[8];
        for (int i = 0; i < 1000; ++i) {
          if (t % 2 == 0) {
            counter.fetch_increment_batch(t, 8, values);
            got[t].insert(got[t].end(), values, values + 8);
          } else {
            got[t].push_back(counter.fetch_increment(t));
          }
        }
      });
    }
  }
  std::vector<std::int64_t> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  expect_exact_range(std::move(all));
}

TEST(CentralBaseline, DefaultBatchLoopIsExactRange) {
  // The widened Counter API's default implementation (a fetch_increment
  // loop) must give the same guarantee on the central baseline.
  AtomicCounter counter;
  expect_exact_range(hammer_batched(counter, 8, 400));
}

TEST(CentralBaseline, MutexBackendBatches) {
  MutexCounter counter;
  expect_exact_range(hammer_batched(counter, 4, 200));
}

TEST(BatchedNetworkCounter, ZeroBatchIsANoOp) {
  BatchedNetworkCounter counter(core::make_counting(4, 4), "C(4,4)");
  counter.fetch_increment_batch(0, 0, nullptr);
  EXPECT_EQ(counter.fetch_increment(0), 0);
}

TEST(BatchedNetworkCounter, StallsTrackedInCasMode) {
  BatchedNetworkCounter counter(core::make_counting(4, 8), "C(4,8)/cas",
                                BalancerMode::kCasRetry);
  (void)hammer_batched(counter, 4, 100);
  // No assertion on the exact count (scheduling-dependent); the API must
  // simply not lose the tally.
  EXPECT_GE(counter.stall_count(), 0u);
}

}  // namespace
}  // namespace cnet::rt
