// Isomorphism machinery (paper §2.3, Fig. 4).
#include "cnet/topology/isomorphism.hpp"

#include <gtest/gtest.h>

#include "cnet/core/butterfly.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/core/ladder.hpp"
#include "cnet/core/merging.hpp"

namespace cnet::topo {
namespace {

Topology two_chain() {
  // b0 feeds b1 on both ports.
  Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [a0, a1] = b.add_balancer2(in[0], in[1]);
  const auto [b0, b1] = b.add_balancer2(a0, a1);
  const WireId outs[2] = {b0, b1};
  b.set_outputs(outs);
  return std::move(b).build();
}

Topology two_chain_crossed() {
  // Same but the wires between the balancers are crossed (input ports
  // swapped) — still isomorphic per the paper's definition, because input
  // ports are interchangeable.
  Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [a0, a1] = b.add_balancer2(in[0], in[1]);
  const auto [b0, b1] = b.add_balancer2(a1, a0);
  const WireId outs[2] = {b0, b1};
  b.set_outputs(outs);
  return std::move(b).build();
}

Topology two_parallel() {
  Builder b;
  const auto in = b.add_network_inputs(4);
  const auto [a0, a1] = b.add_balancer2(in[0], in[1]);
  const auto [b0, b1] = b.add_balancer2(in[2], in[3]);
  const WireId outs[4] = {a0, a1, b0, b1};
  b.set_outputs(outs);
  return std::move(b).build();
}

TEST(Isomorphism, NetworkIsIsomorphicToItself) {
  const auto t = two_chain();
  const auto mapping = find_isomorphism(t, t);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(verify_isomorphism(t, t, *mapping));
}

TEST(Isomorphism, InputPortSwapIsIsomorphic) {
  EXPECT_TRUE(are_isomorphic(two_chain(), two_chain_crossed()));
}

TEST(Isomorphism, OutputPortOrderMatters) {
  // Crossing *output* ports is NOT an isomorphism: condition (ii) pins the
  // k-th output wire. Build a chain where b0's outputs to b1 come from
  // swapped output ports going to a network output vs balancer.
  Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [a0, a1] = b.add_balancer2(in[0], in[1]);
  // a0 (port 0) goes straight out; a1 (port 1) feeds b1 together with a
  // fresh input... needs width 3 — simpler: compare nets where port roles
  // differ.
  Builder b2;
  const auto in2 = b2.add_network_inputs(3);
  const auto [c0, c1] = b2.add_balancer2(in2[0], in2[1]);
  const auto [d0, d1] = b2.add_balancer2(c1, in2[2]);  // port-1 output feeds
  const WireId outs2[3] = {c0, d0, d1};
  b2.set_outputs(outs2);
  const Topology net_port1 = std::move(b2).build();

  Builder b3;
  const auto in3 = b3.add_network_inputs(3);
  const auto [e0, e1] = b3.add_balancer2(in3[0], in3[1]);
  const auto [f0, f1] = b3.add_balancer2(e0, in3[2]);  // port-0 output feeds
  const WireId outs3[3] = {e1, f0, f1};
  b3.set_outputs(outs3);
  const Topology net_port0 = std::move(b3).build();

  EXPECT_FALSE(are_isomorphic(net_port1, net_port0));

  // Also exercise the plain chain to silence unused warnings.
  const WireId outs[2] = {a0, a1};
  b.set_outputs(outs);
  (void)std::move(b).build();
}

TEST(Isomorphism, DifferentWidthsRejected) {
  EXPECT_FALSE(are_isomorphic(two_chain(), two_parallel()));
}

TEST(Isomorphism, DifferentDepthsRejected) {
  EXPECT_FALSE(are_isomorphic(two_parallel(), two_chain()));
}

TEST(Isomorphism, VerifyRejectsShapeMismatch) {
  const auto a = two_chain();
  const auto b = two_parallel();
  EXPECT_FALSE(verify_isomorphism(a, b, {0, 1}));
}

TEST(Isomorphism, VerifyRejectsNonBijection) {
  const auto a = two_parallel();
  EXPECT_FALSE(verify_isomorphism(a, a, {0, 0}));
}

TEST(Isomorphism, VerifyAcceptsParallelSwap) {
  const auto a = two_parallel();
  EXPECT_TRUE(verify_isomorphism(a, a, {1, 0}));
}

TEST(Isomorphism, LadderIsomorphicToItselfUnderPairPermutation) {
  const auto l = core::make_ladder(8);
  const auto mapping = find_isomorphism(l, l);
  ASSERT_TRUE(mapping.has_value());
}

TEST(Isomorphism, MergerNotIsomorphicToButterfly) {
  // M(8,4) and D(8): both regular width-8, but different depths — and with
  // equal depth 2, M(8,4) has a different wiring than two butterfly layers.
  const auto m = core::make_merging(8, 4);
  const auto d = core::make_forward_butterfly(4);
  EXPECT_FALSE(are_isomorphic(m, d));  // widths differ
}

// Lemma 2.7: for isomorphic networks with u = pi_in(x), the outputs obey
// z = pi_out(y). Checked behaviourally on the Lemma 5.3 butterflies.
TEST(Isomorphism, Lemma27PermutedInputsGivePermutedOutputs) {
  for (const std::size_t w : {2u, 4u, 8u}) {
    const auto e = core::make_backward_butterfly(w);
    const auto d = core::make_forward_butterfly(w);
    const auto mapping = find_isomorphism(e, d);
    ASSERT_TRUE(mapping.has_value());
    const auto io = derive_io_permutations(e, d, *mapping);
    util::Xoshiro256 rng(0x27 + w);
    for (int trial = 0; trial < 100; ++trial) {
      seq::Sequence x(w);
      for (auto& v : x) v = static_cast<seq::Value>(rng.below(25));
      // u = pi_in(x): u[pi_in[i]] = x[i].
      seq::Sequence u(w, 0);
      for (std::size_t i = 0; i < w; ++i) u[io.pi_in[i]] = x[i];
      const auto y = evaluate(e, x);
      const auto z = evaluate(d, u);
      for (std::size_t i = 0; i < w; ++i) {
        ASSERT_EQ(z[io.pi_out[i]], y[i]) << "w=" << w << " pos=" << i;
      }
    }
  }
}

TEST(Isomorphism, DeriveRejectsNonIsomorphism) {
  const auto a = two_parallel();
  EXPECT_THROW((void)derive_io_permutations(a, a, {0, 0}),
               std::invalid_argument);
}

TEST(Isomorphism, DerivedPermutationsAreBijections) {
  const auto e = core::make_backward_butterfly(8);
  const auto d = core::make_forward_butterfly(8);
  const auto mapping = find_isomorphism(e, d);
  ASSERT_TRUE(mapping.has_value());
  const auto io = derive_io_permutations(e, d, *mapping);
  auto is_perm = [](const std::vector<std::uint32_t>& p) {
    std::vector<bool> seen(p.size(), false);
    for (const auto v : p) {
      if (v >= p.size() || seen[v]) return false;
      seen[v] = true;
    }
    return true;
  };
  EXPECT_TRUE(is_perm(io.pi_in));
  EXPECT_TRUE(is_perm(io.pi_out));
}

}  // namespace
}  // namespace cnet::topo
