// bench::json_escape guards the CI artifact gate: a check or section name
// carrying a control character, quote, or backslash must never produce
// invalid JSON (a corrupt artifact reads as "no failed checks" to anything
// parsing it leniently). Pins every short escape, the \u00XX fallback for
// the remaining C0 range, and pass-through for multibyte UTF-8.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace cnet::bench {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("Table B': ops/virtual-sec, 64 cores"),
            "Table B': ops/virtual-sec, 64 cores");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, EscapesEveryShortControlForm) {
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  // A CRLF-riddled multi-line name stays one valid JSON string.
  EXPECT_EQ(json_escape("line1\r\nline2"), "line1\\r\\nline2");
}

TEST(JsonEscape, EscapesRemainingC0ControlsAsUnicode) {
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape(std::string{'a', '\0', 'b'}), "a\\u0000b");
  // ESC (0x1b) has no short form.
  EXPECT_EQ(json_escape("a\x1b[1m"), "a\\u001b[1m");
}

TEST(JsonEscape, LeavesHighBytesAndUtf8Alone) {
  // Bytes >= 0x80 must not be treated as negative chars and escaped — a
  // UTF-8 section title round-trips byte-identically.
  // U+00D7 multiplication sign, two UTF-8 bytes.
  const std::string utf8 = "C(8,24) \xc3\x97 throughput";
  EXPECT_EQ(json_escape(utf8), utf8);
  EXPECT_EQ(json_escape("\x7f"), "\x7f");  // DEL is not C0; passes through
}

TEST(JsonEscape, EscapedOutputContainsNoRawControls) {
  std::string nasty;
  for (int c = 0; c < 0x20; ++c) nasty.push_back(static_cast<char>(c));
  nasty += "\"\\";
  const std::string out = json_escape(nasty);
  for (const char c : out) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(Report, DuplicateCheckNameFailsTheRunLoudly) {
  // The JSON sink renders checks as an object; a repeated name would emit
  // duplicate keys, and a later passing reading could shadow an earlier
  // failure in whatever parses the artifact. check() must drop the
  // repeated reading and record a failed sentinel instead.
  reset_for_testing();
  ReportOptions opts;
  check("conservation", true, opts);
  EXPECT_EQ(finish(opts), 0) << "a unique check name tripped the gate";
  check("conservation", true, opts);  // duplicate — even a pass must fail
  EXPECT_NE(finish(opts), 0) << "a duplicate check name passed silently";

  // The sentinel itself keeps the failure visible and cannot be shadowed
  // by yet another repetition.
  reset_for_testing();
  check("determinism", false, opts);
  check("determinism", true, opts);  // must not overwrite the failure
  EXPECT_NE(finish(opts), 0) << "a duplicate pass masked a recorded failure";

  reset_for_testing();
  EXPECT_EQ(finish(opts), 0) << "reset_for_testing left stale checks behind";
}

TEST(Report, EmptyTableFailsTheRunLoudly) {
  reset_for_testing();
  // A sweep that emits zero rows passed its checks vacuously; emit() must
  // record it as a failed named check so the driver exits nonzero. (The
  // report state is process-global, so this single test covers both the
  // clean path and the failure path, in that order.)
  ReportOptions opts;  // no --json: the exit-code gate alone must fire
  std::ostringstream sink;
  util::Table full({"col"});
  full.add_row({"value"});
  emit(full, opts, sink);
  EXPECT_EQ(finish(opts), 0) << "a populated table tripped the gate";
  util::Table empty({"col"});
  emit(empty, opts, sink);
  EXPECT_NE(finish(opts), 0) << "an empty table passed silently";
}

}  // namespace
}  // namespace cnet::bench
