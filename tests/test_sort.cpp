// Sorting networks from counting networks (paper §7) + Batcher baseline.
#include "cnet/sort/comparator_net.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/butterfly.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/sort/batcher.hpp"
#include "cnet/util/bitops.hpp"

namespace cnet::sort {
namespace {

TEST(Schedule, FromSingleBalancer) {
  topo::Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [top, bottom] = b.add_balancer2(in[0], in[1]);
  const topo::WireId outs[2] = {top, bottom};
  b.set_outputs(outs);
  const auto s = schedule_from_topology(std::move(b).build());
  EXPECT_EQ(s.lanes, 2u);
  ASSERT_EQ(s.comparators.size(), 1u);
  EXPECT_EQ(apply(s, std::vector<int>{1, 5}), (std::vector<int>{5, 1}));
  EXPECT_EQ(apply(s, std::vector<int>{5, 1}), (std::vector<int>{5, 1}));
}

TEST(Schedule, RejectsIrregularNetworks) {
  topo::Builder b;
  const auto in = b.add_network_inputs(2);
  b.set_outputs(b.add_balancer(in, 4));
  const auto net = std::move(b).build();
  EXPECT_THROW((void)schedule_from_topology(net), std::invalid_argument);
}

// §7: C(w,w) with comparators substituted is a sorting network.
class CountingSorter : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CountingSorter, SortsAllZeroOneInputs) {
  const std::size_t w = GetParam();
  const auto s = schedule_from_topology(core::make_counting(w, w));
  EXPECT_TRUE(sorts_all_01(s)) << "w=" << w;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CountingSorter, ::testing::Values(2, 4, 8, 16),
                         ::testing::PrintToStringParamName());

TEST(CountingSorterLarge, SortsRandomPermutations) {
  const auto s = schedule_from_topology(core::make_counting(64, 64));
  EXPECT_TRUE(sorts_random(s, 200, 0x50F7));
}

TEST(CountingSorterDepth, IsQuadraticInLgW) {
  for (const std::size_t w : {4u, 8u, 16u, 32u}) {
    const auto s = schedule_from_topology(core::make_counting(w, w));
    const std::size_t k = util::ilog2(w);
    EXPECT_EQ(s.depth, (k * k + k) / 2);
  }
}

// The bitonic *counting* network also yields a sorting network (AHS).
TEST(BitonicSorter, FromBitonicCountingNetwork) {
  const auto s = schedule_from_topology(baselines::make_bitonic(8));
  EXPECT_TRUE(sorts_all_01(s));
}

// A butterfly is merely smoothing, NOT counting — its comparator network
// must fail to sort (this validates that the checker has teeth).
TEST(ZeroOneChecker, RejectsButterfly) {
  const auto s =
      schedule_from_topology(core::make_forward_butterfly(8));
  EXPECT_FALSE(sorts_all_01(s));
}

TEST(Batcher, SortsAllZeroOne) {
  for (const std::size_t w : {2u, 4u, 8u, 16u}) {
    EXPECT_TRUE(sorts_all_01(make_batcher_bitonic(w))) << w;
  }
}

TEST(Batcher, SortsRandomLarge) {
  EXPECT_TRUE(sorts_random(make_batcher_bitonic(128), 100, 0xBA7C));
}

TEST(Batcher, DepthMatchesClosedForm) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u}) {
    const std::size_t k = util::ilog2(w);
    EXPECT_EQ(make_batcher_bitonic(w).depth, (k * k + k) / 2);
  }
}

TEST(Batcher, SameComparatorCountAsCwwSorter) {
  // Both are (lg²w+lgw)/2 layers of w/2 comparators.
  for (const std::size_t w : {4u, 8u, 16u}) {
    const auto batcher = make_batcher_bitonic(w);
    const auto cww = schedule_from_topology(core::make_counting(w, w));
    EXPECT_EQ(batcher.comparators.size(), cww.comparators.size()) << w;
  }
}

TEST(Apply, SortsArbitraryValuesDescending) {
  const auto s = schedule_from_topology(core::make_counting(8, 8));
  const std::vector<int> input = {3, -1, 41, 7, 7, 0, -5, 100};
  auto expected = input;
  std::sort(expected.begin(), expected.end(), std::greater<>());
  EXPECT_EQ(apply(s, input), expected);
}

TEST(Apply, RejectsWrongWidth) {
  const auto s = make_batcher_bitonic(4);
  std::vector<int> wrong = {1, 2, 3};
  EXPECT_THROW(apply_in_place(s, std::span<int>(wrong)),
               std::invalid_argument);
}

TEST(Batcher, RejectsBadWidth) {
  EXPECT_THROW((void)make_batcher_bitonic(3), std::invalid_argument);
  EXPECT_THROW((void)make_batcher_bitonic(0), std::invalid_argument);
}

}  // namespace
}  // namespace cnet::sort
