// cnet::check schedule codec + explorer surface, in every build flavor.
//
// The schedule string is the checker's exchange format — printed in
// assertion messages, pasted into --replay, stored in bug reports — so its
// codec is pinned in the normal suite (it has no dependence on the
// CNET_SCHED_CHECK seam). The exploration entry points are exercised
// adaptively: in a seam build they run a real two-thread interleaving
// sweep; in a normal build they must refuse loudly rather than "explore"
// a single uninstrumented schedule and report false confidence.
#include "cnet/check/explorer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/util/atomic.hpp"
#include "cnet/util/sched_point.hpp"

namespace cnet::check {
namespace {

TEST(ScheduleCodec, EmptyRoundTrip) {
  EXPECT_EQ(encode_schedule({}), "cnet-sched-v1;");
  EXPECT_TRUE(parse_schedule("cnet-sched-v1;").empty());
}

TEST(ScheduleCodec, RoundTripsSwitches) {
  const std::vector<ScheduleSwitch> switches{{3, 1}, {9, 0}, {12, 2}};
  const std::string text = encode_schedule(switches);
  EXPECT_EQ(text, "cnet-sched-v1;3@1,9@0,12@2");
  const auto parsed = parse_schedule(text);
  ASSERT_EQ(parsed.size(), switches.size());
  for (std::size_t i = 0; i < switches.size(); ++i) {
    EXPECT_EQ(parsed[i].step, switches[i].step);
    EXPECT_EQ(parsed[i].thread, switches[i].thread);
  }
}

TEST(ScheduleCodec, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_schedule(""), std::invalid_argument);
  EXPECT_THROW((void)parse_schedule("sched;3@1"), std::invalid_argument);
  EXPECT_THROW((void)parse_schedule("cnet-sched-v1;3"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_schedule("cnet-sched-v1;@1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_schedule("cnet-sched-v1;3@"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_schedule("cnet-sched-v1;3x@1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_schedule("cnet-sched-v1;3@1x"),
               std::invalid_argument);
  // Steps must be strictly increasing: two switches cannot share a step.
  EXPECT_THROW((void)parse_schedule("cnet-sched-v1;9@1,3@0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_schedule("cnet-sched-v1;3@1,3@0"),
               std::invalid_argument);
}

TEST(Explorer, RejectsBadOptions) {
  Options opts;
  opts.max_executions = 0;
  EXPECT_THROW((void)Explorer(opts), std::invalid_argument);
  Options inverted;
  inverted.max_steps = 100;
  inverted.hard_step_limit = 10;
  EXPECT_THROW((void)Explorer(inverted), std::invalid_argument);
}

TEST(Explorer, ExploreMatchesBuildFlavor) {
  Explorer explorer;
  const Body body = [](TestContext& ctx) {
    auto word = std::make_shared<util::Atomic<int>>(0);
    ctx.spawn([word] { word->fetch_add(1); });
    ctx.spawn([word] { word->fetch_add(1); });
    ctx.join_all();
    if (word->load() != 2) throw std::logic_error("lost update");
  };
  if (!util::kSchedCheckEnabled) {
    // Without the seam an "exploration" would be one uncontrolled run
    // reporting schedule coverage it does not have — it must refuse.
    EXPECT_THROW((void)explorer.explore(body), std::invalid_argument);
    return;
  }
  const Result r = explorer.explore(body);
  EXPECT_FALSE(r.failed) << r.message;
  // Two racing RMWs on one word: more than one distinct schedule exists.
  EXPECT_GT(r.executions, 1u);
  // An empty schedule exactly replays an execution with no switches at
  // all — a single-threaded body. (Multi-threaded schedules record every
  // switch, forced ones included, so the string alone pins the order; a
  // string that omits a switch the execution needs is a replay failure,
  // covered by the driver-level kViolation round-trips.)
  const Body solo = [](TestContext&) {};
  const Result rr = explorer.replay(encode_schedule({}), solo);
  EXPECT_FALSE(rr.failed) << rr.message;
  EXPECT_EQ(rr.executions, 1u);
}

}  // namespace
}  // namespace cnet::check
