// svc::ShardedIdAllocator: global uniqueness of IDs handed out across
// threads and shards (the dynomite-style residue-class composition), the
// shard-affinity structure, the batched refill path, and the precondition
// contract — for every counter backend kind.
#include "cnet/svc/sharded_id_allocator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cnet/svc/backend.hpp"
#include "test_svc_util.hpp"

namespace cnet::svc {
namespace {

ShardedIdAllocator make_allocator(BackendKind kind, std::size_t shards,
                                  ShardedIdAllocator::Config cfg) {
  std::vector<std::unique_ptr<rt::Counter>> counters;
  for (std::size_t s = 0; s < shards; ++s) {
    counters.push_back(make_counter(kind));
  }
  return ShardedIdAllocator(std::move(counters), cfg);
}

class AllocatorBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(AllocatorBackends, GloballyUniqueAcrossEightThreadsFourShards) {
  constexpr std::size_t kThreads = 8, kShards = 4, kOps = 900;
  auto alloc = make_allocator(GetParam(), kShards,
                              {.max_threads = kThreads, .refill_batch = 16});
  std::vector<std::vector<std::int64_t>> got(kThreads);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        std::int64_t buf[40];
        for (std::size_t i = 0; i < kOps; ++i) {
          if (i % 5 == 4) {
            // Mixed sizes: below and above refill_batch, exercising both
            // the cache refill and the direct-batch bypass.
            const std::size_t k = (i % 10 == 9) ? 40 : 5;
            alloc.allocate_batch(t, k, buf);
            got[t].insert(got[t].end(), buf, buf + k);
          } else {
            got[t].push_back(alloc.allocate(t));
          }
        }
      });
    }
  }
  std::vector<std::int64_t> all;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (const auto id : got[t]) {
      ASSERT_GE(id, 0);
      // Thread affinity: every ID a thread receives comes from its shard's
      // residue class.
      ASSERT_EQ(static_cast<std::size_t>(id) % kShards, t % kShards)
          << "thread " << t << " got an ID outside its shard class";
      all.push_back(id);
    }
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate ID handed out (" << all.size() << " total)";
}

TEST_P(AllocatorBackends, SequentialIdsArePerShardStrides) {
  auto alloc = make_allocator(GetParam(), 3,
                              {.max_threads = 8, .refill_batch = 4});
  // One thread per shard class: shard s hands out s, s+3, s+6, ... in some
  // order; the set of the first n must be the n smallest of the class.
  for (std::size_t hint = 0; hint < 3; ++hint) {
    std::set<std::int64_t> seen;
    for (int i = 0; i < 20; ++i) seen.insert(alloc.allocate(hint));
    std::int64_t expect = static_cast<std::int64_t>(hint);
    for (const auto id : seen) {
      EXPECT_EQ(id, expect);
      expect += 3;
    }
  }
}

TEST_P(AllocatorBackends, DirectBatchBypassIsUniqueAndAligned) {
  auto alloc = make_allocator(GetParam(), 2,
                              {.max_threads = 4, .refill_batch = 8});
  std::vector<std::int64_t> ids(64);
  alloc.allocate_batch(1, 64, ids.data());  // 64 >= refill_batch: direct
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  for (const auto id : ids) EXPECT_EQ(id % 2, 1);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AllocatorBackends,
                         ::testing::ValuesIn(kAllBackendKinds),
                         test::backend_param_name);

TEST(ShardedIdAllocator, RejectsBadConfiguration) {
  EXPECT_THROW(ShardedIdAllocator({}), std::invalid_argument);
  auto alloc = make_allocator(BackendKind::kCentralAtomic, 2,
                              {.max_threads = 4, .refill_batch = 8});
  EXPECT_THROW((void)alloc.allocate(4), std::invalid_argument);
  std::int64_t buf[4];
  EXPECT_THROW(alloc.allocate_batch(9, 4, buf), std::invalid_argument);
}

TEST(ShardedIdAllocator, ReportsShardsAndStalls) {
  auto alloc = make_allocator(BackendKind::kCentralCas, 4,
                              {.max_threads = 8, .refill_batch = 8});
  EXPECT_EQ(alloc.num_shards(), 4u);
  EXPECT_EQ(alloc.shard_of(6), 2u);
  (void)alloc.allocate(0);
  EXPECT_EQ(alloc.name(), "sharded[4]·central-cas");
  EXPECT_GE(alloc.stall_count(), 0u);
}

}  // namespace
}  // namespace cnet::svc
