#include "cnet/topology/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/topology/dot.hpp"

namespace cnet::topo {
namespace {

// A single (2,2)-balancer network.
Topology single_balancer() {
  Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [top, bottom] = b.add_balancer2(in[0], in[1]);
  const WireId outs[2] = {top, bottom};
  b.set_outputs(outs);
  return std::move(b).build();
}

TEST(Builder, SingleBalancerShape) {
  const Topology t = single_balancer();
  EXPECT_EQ(t.width_in(), 2u);
  EXPECT_EQ(t.width_out(), 2u);
  EXPECT_EQ(t.num_balancers(), 1u);
  EXPECT_EQ(t.num_wires(), 4u);
  EXPECT_EQ(t.depth(), 1u);
  EXPECT_TRUE(t.is_regular());
}

TEST(Builder, IrregularBalancer) {
  Builder b;
  const auto in = b.add_network_inputs(2);
  const auto out = b.add_balancer(in, 6);
  b.set_outputs(out);
  const Topology t = std::move(b).build();
  EXPECT_EQ(t.width_out(), 6u);
  EXPECT_FALSE(t.is_regular());
  const auto census = t.census();
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census[0].fan_in, 2u);
  EXPECT_EQ(census[0].fan_out, 6u);
  EXPECT_EQ(census[0].count, 1u);
}

TEST(Builder, RejectsDoubleConsumption) {
  Builder b;
  const auto in = b.add_network_inputs(2);
  (void)b.add_balancer2(in[0], in[1]);
  EXPECT_THROW((void)b.add_balancer2(in[0], in[1]), std::invalid_argument);
}

TEST(Builder, RejectsDanglingWires) {
  Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [top, bottom] = b.add_balancer2(in[0], in[1]);
  (void)bottom;  // never consumed nor declared an output
  const WireId outs[1] = {top};
  b.set_outputs(outs);
  EXPECT_THROW((void)std::move(b).build(), std::invalid_argument);
}

TEST(Builder, RejectsBuildWithoutOutputs) {
  Builder b;
  (void)b.add_network_inputs(2);
  EXPECT_THROW((void)std::move(b).build(), std::invalid_argument);
}

TEST(Builder, RejectsOutputOfConsumedWire) {
  Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [top, bottom] = b.add_balancer2(in[0], in[1]);
  (void)top;
  (void)bottom;
  const WireId outs[1] = {in[0]};  // already consumed by the balancer
  EXPECT_THROW(b.set_outputs(outs), std::invalid_argument);
}

TEST(Builder, RejectsUnknownWire) {
  Builder b;
  (void)b.add_network_inputs(1);
  const WireId bogus{12345};
  const WireId ins[2] = {bogus, bogus};
  EXPECT_THROW((void)b.add_balancer(ins, 2), std::invalid_argument);
}

TEST(Builder, PassThroughWire) {
  // A wire can go straight from network input to network output.
  Builder b;
  const auto in = b.add_network_inputs(1);
  b.set_outputs(in);
  const Topology t = std::move(b).build();
  EXPECT_EQ(t.depth(), 0u);
  EXPECT_EQ(t.num_balancers(), 0u);
}

TEST(Topology, DepthAndLayersOfTwoLayerNetwork) {
  // Two balancers in series on two wires, plus one parallel balancer.
  Builder b;
  const auto in = b.add_network_inputs(4);
  const auto [a0, a1] = b.add_balancer2(in[0], in[1]);
  const auto [b0, b1] = b.add_balancer2(a0, a1);
  const auto [c0, c1] = b.add_balancer2(in[2], in[3]);
  const WireId outs[4] = {b0, b1, c0, c1};
  b.set_outputs(outs);
  const Topology t = std::move(b).build();
  EXPECT_EQ(t.depth(), 2u);
  EXPECT_EQ(t.balancer_depth(BalancerId{0}), 1u);
  EXPECT_EQ(t.balancer_depth(BalancerId{1}), 2u);
  EXPECT_EQ(t.balancer_depth(BalancerId{2}), 1u);
  ASSERT_EQ(t.layers().size(), 2u);
  EXPECT_EQ(t.layers()[0].size(), 2u);
  EXPECT_EQ(t.layers()[1].size(), 1u);
}

TEST(Topology, ProducerConsumerEndpoints) {
  const Topology t = single_balancer();
  const WireId in0 = t.input_wires()[0];
  EXPECT_EQ(t.producer(in0).kind, WireEnd::Kind::kNetworkInput);
  EXPECT_EQ(t.consumer(in0).kind, WireEnd::Kind::kBalancer);
  const WireId out0 = t.output_wires()[0];
  EXPECT_EQ(t.producer(out0).kind, WireEnd::Kind::kBalancer);
  EXPECT_EQ(t.consumer(out0).kind, WireEnd::Kind::kNetworkOutput);
}

TEST(Topology, SummaryMentionsShape) {
  const std::string s = single_balancer().summary();
  EXPECT_NE(s.find("w=2"), std::string::npos);
  EXPECT_NE(s.find("1x(2,2)"), std::string::npos);
}

TEST(Topology, RangeChecksThrow) {
  const Topology t = single_balancer();
  EXPECT_THROW((void)t.balancer(BalancerId{5}), std::invalid_argument);
  EXPECT_THROW((void)t.producer(WireId{99}), std::invalid_argument);
  EXPECT_THROW((void)t.balancer_depth(BalancerId{9}), std::invalid_argument);
}

TEST(Dot, EmitsBalancersAndWires) {
  const std::string dot = to_dot(single_balancer(), "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("b0"), std::string::npos);
  EXPECT_NE(dot.find("in0 -> b0"), std::string::npos);
  EXPECT_NE(dot.find("b0 -> out0"), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
}

}  // namespace
}  // namespace cnet::topo
