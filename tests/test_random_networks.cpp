// Randomized structural property tests: generate arbitrary valid balancing
// networks and check the invariants every layer of the stack must satisfy
// regardless of wiring — sum preservation, layer partitioning, simulator /
// evaluator agreement, serialization round-trips, DOT well-formedness.
#include <gtest/gtest.h>

#include "cnet/sim/schedulers.hpp"
#include "cnet/sim/token_sim.hpp"
#include "cnet/topology/dot.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/topology/serialize.hpp"
#include "cnet/topology/topology.hpp"
#include "cnet/util/prng.hpp"
#include "test_util.hpp"

namespace cnet::topo {
namespace {

// Builds a random balancing network: starts from `width` input wires and
// repeatedly gathers 1-3 unconsumed wires into a balancer with fanout 1-4;
// whatever remains unconsumed becomes the outputs (shuffled).
Topology random_network(std::size_t width, std::size_t num_balancers,
                        util::Xoshiro256& rng) {
  Builder b;
  std::vector<WireId> pool = b.add_network_inputs(width);
  for (std::size_t i = 0; i < num_balancers; ++i) {
    const std::size_t fan_in =
        1 + rng.below(std::min<std::size_t>(3, pool.size()));
    std::vector<WireId> ins;
    for (std::size_t j = 0; j < fan_in; ++j) {
      const std::size_t pick = rng.below(pool.size());
      ins.push_back(pool[pick]);
      pool[pick] = pool.back();
      pool.pop_back();
    }
    const std::size_t fan_out = 1 + rng.below(4);
    const auto outs = b.add_balancer(ins, fan_out);
    pool.insert(pool.end(), outs.begin(), outs.end());
  }
  // Shuffle the surviving wires into an arbitrary output order.
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.below(i)]);
  }
  b.set_outputs(pool);
  return std::move(b).build();
}

class RandomNetworks : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetworks, StructuralInvariants) {
  util::Xoshiro256 rng(GetParam());
  const auto net = random_network(2 + rng.below(7), 1 + rng.below(20), rng);
  // Layers partition the balancers.
  std::size_t layered = 0;
  for (std::size_t d = 0; d < net.layers().size(); ++d) {
    for (const BalancerId b : net.layers()[d]) {
      EXPECT_EQ(net.balancer_depth(b), d + 1);
      ++layered;
    }
  }
  EXPECT_EQ(layered, net.num_balancers());
  // Census covers every balancer.
  std::size_t counted = 0;
  for (const auto& row : net.census()) counted += row.count;
  EXPECT_EQ(counted, net.num_balancers());
}

TEST_P(RandomNetworks, SumPreservationAndDeterminism) {
  util::Xoshiro256 rng(GetParam() + 1000);
  const auto net = random_network(2 + rng.below(7), 1 + rng.below(20), rng);
  for (int trial = 0; trial < 20; ++trial) {
    const auto x = cnet::test::random_input(net.width_in(), 15, rng);
    const auto y1 = evaluate(net, x);
    const auto y2 = evaluate(net, x);
    EXPECT_EQ(seq::sum(y1), seq::sum(x));
    EXPECT_EQ(y1, y2);
  }
}

TEST_P(RandomNetworks, SimulatorAgreesWithEvaluator) {
  util::Xoshiro256 rng(GetParam() + 2000);
  const auto net = random_network(2 + rng.below(7), 1 + rng.below(15), rng);
  sim::SimConfig cfg{.concurrency = 1 + rng.below(9),
                     .total_tokens = 50 + rng.below(200)};
  sim::RandomScheduler sched(GetParam());
  const auto res = sim::simulate(net, cfg, sched);
  EXPECT_EQ(res.output_counts, evaluate(net, res.input_counts));
}

TEST_P(RandomNetworks, SerializationRoundTrips) {
  util::Xoshiro256 rng(GetParam() + 3000);
  const auto net = random_network(2 + rng.below(7), 1 + rng.below(20), rng);
  EXPECT_TRUE(structurally_equal(net, from_text(to_text(net))));
}

TEST_P(RandomNetworks, DotMentionsEveryBalancer) {
  util::Xoshiro256 rng(GetParam() + 4000);
  const auto net = random_network(2 + rng.below(5), 1 + rng.below(10), rng);
  const auto dot = to_dot(net, "random");
  for (std::size_t b = 0; b < net.num_balancers(); ++b) {
    EXPECT_NE(dot.find("b" + std::to_string(b)), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworks,
                         ::testing::Range<std::uint64_t>(0, 12),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace cnet::topo
