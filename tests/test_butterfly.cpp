// Butterflies: Lemma 5.1 (depth), Lemma 5.2 (lgw-smoothing), Lemma 5.3
// (isomorphism D ≅ E), Lemma 6.6 (prefix smoothness bound).
#include "cnet/core/butterfly.hpp"

#include <gtest/gtest.h>

#include "cnet/core/counting.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/topology/isomorphism.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"
#include "test_util.hpp"

namespace cnet::core {
namespace {

TEST(Butterfly, DepthIsLgW) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u, 64u}) {
    EXPECT_EQ(make_forward_butterfly(w).depth(), util::ilog2(w));
    EXPECT_EQ(make_backward_butterfly(w).depth(), util::ilog2(w));
  }
}

TEST(Butterfly, BalancerCountIsHalfWLgW) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u}) {
    EXPECT_EQ(make_forward_butterfly(w).num_balancers(),
              w / 2 * util::ilog2(w));
    EXPECT_EQ(make_backward_butterfly(w).num_balancers(),
              w / 2 * util::ilog2(w));
  }
}

TEST(Butterfly, WidthOneIsAWire) {
  const auto d = make_forward_butterfly(1);
  EXPECT_EQ(d.num_balancers(), 0u);
  EXPECT_EQ(d.depth(), 0u);
}

// Lemma 5.2: D(w) is lgw-smoothing. Measured worst case must respect the
// bound; we also check it is not wildly loose (>= 1 for w >= 4 under skew).
class ButterflySmoothing : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ButterflySmoothing, ForwardWithinLgW) {
  const std::size_t w = GetParam();
  const auto net = make_forward_butterfly(w);
  util::Xoshiro256 rng(42 + w);
  const auto worst = topo::max_output_smoothness_random(net, 400, 60, rng);
  EXPECT_LE(worst, static_cast<seq::Value>(util::ilog2(w)));
}

TEST_P(ButterflySmoothing, BackwardWithinLgW) {
  // Isomorphic to D(w) (Lemma 5.3), hence also lgw-smoothing (Lemma 2.8).
  const std::size_t w = GetParam();
  const auto net = make_backward_butterfly(w);
  util::Xoshiro256 rng(43 + w);
  const auto worst = topo::max_output_smoothness_random(net, 400, 60, rng);
  EXPECT_LE(worst, static_cast<seq::Value>(util::ilog2(w)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ButterflySmoothing,
                         ::testing::Values(2, 4, 8, 16, 32, 64),
                         ::testing::PrintToStringParamName());

TEST(Butterfly, SumPreservation) {
  const auto net = make_backward_butterfly(16);
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto x = test::random_input(16, 30, rng);
    EXPECT_EQ(seq::sum(topo::evaluate(net, x)), seq::sum(x));
  }
}

// Lemma 5.3: E(w) ≅ D(w), by explicit isomorphism search.
class ButterflyIso : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ButterflyIso, BackwardIsomorphicToForward) {
  const std::size_t w = GetParam();
  const auto d = make_forward_butterfly(w);
  const auto e = make_backward_butterfly(w);
  const auto mapping = topo::find_isomorphism(e, d);
  ASSERT_TRUE(mapping.has_value()) << "no isomorphism for w=" << w;
  EXPECT_TRUE(topo::verify_isomorphism(e, d, *mapping));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ButterflyIso, ::testing::Values(2, 4, 8, 16),
                         ::testing::PrintToStringParamName());

// Lemma 6.6: the C(w,t) prefix N_a,b is s-smoothing, s = floor(w·lgw/t)+2.
class PrefixSmoothing
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PrefixSmoothing, WithinLemma66Bound) {
  const auto [w, t] = GetParam();
  const auto net = make_counting_prefix(w, t);
  EXPECT_EQ(net.width_in(), w);
  EXPECT_EQ(net.width_out(), t);
  EXPECT_EQ(net.depth(), util::ilog2(w));
  util::Xoshiro256 rng(99 + w + t);
  const auto worst = topo::max_output_smoothness_random(net, 400, 60, rng);
  EXPECT_LE(worst,
            static_cast<seq::Value>(prefix_smoothness_bound(w, t)))
      << "w=" << w << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrefixSmoothing,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{4, 8},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{8, 16},
                      std::pair<std::size_t, std::size_t>{8, 32},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{16, 64},
                      std::pair<std::size_t, std::size_t>{32, 32},
                      std::pair<std::size_t, std::size_t>{32, 160}),
    [](const auto& pinfo) {
      return "w" + std::to_string(pinfo.param.first) + "_t" +
             std::to_string(pinfo.param.second);
    });

TEST(Prefix, BoundFormula) {
  EXPECT_EQ(prefix_smoothness_bound(8, 8), 5u);    // 3 + 2
  EXPECT_EQ(prefix_smoothness_bound(8, 24), 3u);   // 1 + 2
  EXPECT_EQ(prefix_smoothness_bound(8, 32), 2u);   // 0 + 2
  EXPECT_EQ(prefix_smoothness_bound(16, 64), 3u);  // 1 + 2
}

TEST(Prefix, RegularPrefixEqualsBackwardButterfly) {
  // With t == w the prefix is exactly E(w).
  const auto prefix = make_counting_prefix(8, 8);
  const auto e = make_backward_butterfly(8);
  EXPECT_TRUE(topo::are_isomorphic(prefix, e));
}

// The prefix of C(w,t) really is the first lgw layers of C(w,t): same
// balancer census per layer.
TEST(Prefix, MatchesCountingNetworkPrefixLayers) {
  const std::size_t w = 8, t = 16;
  const auto full = make_counting(w, t);
  const auto prefix = make_counting_prefix(w, t);
  const std::size_t lgw = util::ilog2(w);
  for (std::size_t layer = 0; layer < lgw; ++layer) {
    ASSERT_EQ(full.layers()[layer].size(), prefix.layers()[layer].size())
        << "layer " << layer;
    for (std::size_t i = 0; i < full.layers()[layer].size(); ++i) {
      const auto& bf = full.balancer(full.layers()[layer][i]);
      const auto& bp = prefix.balancer(prefix.layers()[layer][i]);
      EXPECT_EQ(bf.fan_in(), bp.fan_in());
      EXPECT_EQ(bf.fan_out(), bp.fan_out());
    }
  }
}

}  // namespace
}  // namespace cnet::core
