// svc::OverloadManager: the pluggable monitor registry, the hysteretic
// tier ladder and its recorded history, the governed shed/restore cycle
// over a QuotaHierarchy, and the degrade-partial hooks in the admission
// path — sequentially and under concurrent evaluators and tenant threads
// (the TSan concurrency label covers the evaluate() claim, the published
// tier/pressure, and the shed flags racing live acquires).
#include "cnet/svc/overload.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "cnet/svc/adaptive.hpp"
#include "cnet/svc/admission.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/quota.hpp"

namespace cnet::svc {
namespace {

// Registers a gauge the test scripts and returns the raw pointer (the
// manager owns it).
GaugeMonitor* add_gauge(OverloadManager& mgr, const std::string& name,
                        std::uint64_t capacity) {
  auto gauge = std::make_unique<GaugeMonitor>(name, capacity);
  GaugeMonitor* raw = gauge.get();
  mgr.add_monitor(std::move(gauge));
  return raw;
}

std::uint64_t drain(NetTokenBucket& bucket) {
  std::uint64_t total = 0;
  while (bucket.consume(0, 1, kPartialOk) == 1) ++total;
  return total;
}

TEST(OverloadManager, StartsNominalAndIdleStaysNominal) {
  OverloadManager mgr;
  EXPECT_EQ(mgr.tier(), OverloadTier::kNominal);
  EXPECT_EQ(mgr.evaluate(), OverloadTier::kNominal);  // no monitors: 0
  EXPECT_EQ(mgr.pressure(), 0.0);
  EXPECT_TRUE(mgr.history().empty());
  EXPECT_FALSE(mgr.actions().degrade_to_partial);
}

TEST(OverloadManager, DuplicateMonitorNameThrows) {
  OverloadManager mgr;
  add_gauge(mgr, "depth", 10);
  EXPECT_THROW(add_gauge(mgr, "depth", 99), std::exception);
  EXPECT_EQ(mgr.num_monitors(), 1u);  // the rejected monitor was not kept
}

TEST(OverloadManager, TierFollowsTheHystereticLadder) {
  OverloadManager mgr;
  GaugeMonitor* gauge = add_gauge(mgr, "script", 100);

  gauge->set(97);
  EXPECT_EQ(mgr.evaluate(), OverloadTier::kShedTenants);  // immediate jump
  EXPECT_DOUBLE_EQ(mgr.pressure(), 0.97);
  gauge->set(90);  // inside tier 4's hysteresis band: held
  EXPECT_EQ(mgr.evaluate(), OverloadTier::kShedTenants);
  gauge->set(80);  // released; tier 3 still holds (> 0.75)
  EXPECT_EQ(mgr.evaluate(), OverloadTier::kDegradePartial);
  gauge->set(5);
  EXPECT_EQ(mgr.evaluate(), OverloadTier::kNominal);

  const auto history = mgr.history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].from, OverloadTier::kNominal);
  EXPECT_EQ(history[0].to, OverloadTier::kShedTenants);
  EXPECT_EQ(history[0].sample_seq, 1u);
  EXPECT_EQ(history[1].to, OverloadTier::kDegradePartial);
  EXPECT_EQ(history[1].sample_seq, 3u);  // the held sample is not a change
  EXPECT_EQ(history[2].to, OverloadTier::kNominal);
}

TEST(OverloadManager, CombinesMonitorsByWorstReading) {
  OverloadManager mgr;
  GaugeMonitor* low = add_gauge(mgr, "low", 100);
  GaugeMonitor* high = add_gauge(mgr, "high", 100);
  low->set(20);
  high->set(75);
  EXPECT_EQ(mgr.evaluate(), OverloadTier::kForceEliminate);
  EXPECT_DOUBLE_EQ(mgr.pressure(), 0.75);  // max, not mean
  EXPECT_DOUBLE_EQ(mgr.pressure_of("low"), 0.20);
  EXPECT_DOUBLE_EQ(mgr.pressure_of("high"), 0.75);
  EXPECT_THROW(mgr.pressure_of("missing"), std::exception);
}

TEST(OverloadManager, WindowedMonitorClampsStaleTotalsToAnEmptyWindow) {
  // Totals read from concurrently-written slots can be momentarily stale;
  // a backwards delta must read as an empty window (pressure 0), never an
  // underflowed one.
  std::uint64_t ops = 100, events = 50;
  WindowedRateMonitor mon(
      "stale", [&] { return ops; }, [&] { return events; },
      /*saturation_rate=*/1.0);
  // Construction primed the baselines at 100/50, so the first sample's
  // window is what happened *since then* — nothing yet.
  EXPECT_DOUBLE_EQ(mon.sample_pressure(), 0.0);
  ops = 90;  // stale re-read below the watermark
  events = 60;
  EXPECT_EQ(mon.sample_pressure(), 0.0);
  ops = 110;  // recovered: the watermarks never moved backwards
  events = 65;
  EXPECT_DOUBLE_EQ(mon.sample_pressure(), 0.5);  // 5 events / 10 ops
}

TEST(OverloadManager, WindowedMonitorFirstSampleExcludesPreAttachHistory) {
  // Regression: the monitor used to start its baselines at zero, so the
  // first sample read the *lifetime* totals as one window. Attaching a
  // monitor to a bucket with a long, stall-heavy past then reported
  // saturation pressure for activity that predated the monitor — one
  // spurious force-eliminate/shed tier entry at attach time.
  std::uint64_t ops = 1'000'000, events = 900'000;  // heavy pre-attach past
  WindowedRateMonitor mon(
      "late-attach", [&] { return ops; }, [&] { return events; },
      /*saturation_rate=*/1.0);
  EXPECT_DOUBLE_EQ(mon.sample_pressure(), 0.0);  // history is not a window
  ops += 100;  // quiet period after attach: 100 ops, 1 event
  events += 1;
  EXPECT_DOUBLE_EQ(mon.sample_pressure(), 0.01);
}

TEST(OverloadManager, GaugeWithZeroCapacityReportsBinaryPressure) {
  // Capacity 0 is legal (a reweigh can zero a tenant's budget): any
  // occupancy saturates the gauge, idle stays idle.
  GaugeMonitor mon("zero-cap", 0);
  EXPECT_EQ(mon.sample_pressure(), 0.0);
  mon.set(1);
  EXPECT_EQ(mon.sample_pressure(), 1.0);
  mon.set(0);
  EXPECT_EQ(mon.sample_pressure(), 0.0);
}

TEST(OverloadManager, AdaptiveStallCountExcludesBankedRefundStalls) {
  // Regression: AdaptiveCounter::stall_count() used to report the raw
  // cold+hot backend total without subtracting the stalls banked against
  // refund batches — so a stall-rate overload monitor windowing an
  // adaptive backend saw exactly the refund-storm contention the internal
  // switch probe deliberately excludes, and a storm of grab-then-refund
  // rejects (which admits nothing) could walk the tier ladder up.
  AdaptiveCounter::Config cfg;
  cfg.cold = BackendKind::kCentralCas;  // the only cold kind that banks
  cfg.tuning.sample_interval = 1u << 30;  // probe never fires: stay cold
  AdaptiveCounter counter(cfg);

  std::atomic<bool> stop{false};
  std::vector<std::thread> partners;
  for (int p = 0; p < 2; ++p) {
    partners.emplace_back([&, p] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.fetch_increment(1 + p);
      }
    });
  }
  // Refund under live CAS contention until a stall lands inside a refund
  // bracket and is banked. The bracket reads the cold word's shared stall
  // total, so any partner CAS retry that fires while a refund is open is
  // banked (capped at the refund's token count) — no exact interleaving
  // is required, just one stall during the mostly-refunding window. A
  // wall-clock deadline bounds the wait on schedulers (1 vCPU under a
  // sanitizer) where preemption-driven retries are rare.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (counter.refund_stall_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    counter.refund_n(0, 512);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& partner : partners) partner.join();

  if (counter.refund_stall_count() == 0) {
    // No CAS retry landed anywhere near a refund bracket inside the
    // deadline — nothing was banked, so the subtraction under test is
    // unobservable in this environment. Skip rather than assert on the
    // scheduler.
    GTEST_SKIP() << "no refund-bracketed contention observed";
  }
  // Quiescent now: the three telemetry reads are one consistent snapshot.
  const std::uint64_t raw = counter.backend_stall_count();
  const std::uint64_t banked = counter.refund_stall_count();
  ASSERT_GE(raw, banked);  // each bracket banks at most its own delta
  EXPECT_EQ(counter.stall_count(), raw - banked)
      << "stall_count() must report the refund-adjusted total";
}

TEST(OverloadManager, GovernedShedAndRestoreFollowTheTier) {
  QuotaHierarchy::Config cfg;
  cfg.parent = {BackendKind::kCentralAtomic, false};
  cfg.parent_initial_tokens = 8;
  cfg.borrow_budget = 8;
  QuotaHierarchy quota(cfg, {{.initial_tokens = 2, .weight = 4},
                             {.initial_tokens = 2, .weight = 2},
                             {.initial_tokens = 2, .weight = 1},
                             {.initial_tokens = 2, .weight = 1}});
  OverloadManager mgr;
  GaugeMonitor* gauge = add_gauge(mgr, "script", 100);
  mgr.govern(quota);

  // A held grant survives being shed — release keeps working after.
  const auto held = quota.acquire(0, 2, 1);
  ASSERT_TRUE(held.admitted);

  gauge->set(97);
  EXPECT_EQ(mgr.evaluate(), OverloadTier::kShedTenants);
  EXPECT_EQ(mgr.shed_tenants(), (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(quota.is_shed(2));
  EXPECT_TRUE(quota.is_shed(3));
  EXPECT_FALSE(quota.is_shed(0));
  EXPECT_FALSE(quota.acquire(0, 3, 1).admitted);  // shed: reject up front
  const auto alive = quota.acquire(0, 0, 1);
  EXPECT_TRUE(alive.admitted);  // unshed tenants are untouched
  quota.release(0, alive);

  gauge->set(5);
  EXPECT_EQ(mgr.evaluate(), OverloadTier::kNominal);
  EXPECT_TRUE(mgr.shed_tenants().empty());
  EXPECT_FALSE(quota.is_shed(2));
  EXPECT_FALSE(quota.is_shed(3));
  const auto back = quota.acquire(0, 3, 1);
  EXPECT_TRUE(back.admitted);
  quota.release(0, back);
  quota.release(0, held);

  // The full cycle conserved exactly.
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(drain(quota.child(t)), 2u) << "tenant " << t;
    EXPECT_EQ(quota.borrowed(t), 0u) << "tenant " << t;
  }
  EXPECT_EQ(drain(quota.parent()), 8u);
}

TEST(OverloadManager, DegradePartialFlowsThroughAdmissionAndQuota) {
  OverloadManager mgr;
  GaugeMonitor* gauge = add_gauge(mgr, "script", 100);

  AdmissionConfig acfg;
  acfg.backend = BackendKind::kCentralAtomic;
  acfg.bucket.initial_tokens = 3;
  AdmissionController admission(acfg);
  admission.attach_overload(&mgr);

  QuotaHierarchy::Config qcfg;
  qcfg.parent = {BackendKind::kCentralAtomic, false};
  qcfg.parent_initial_tokens = 1;  // smaller than the borrow cap
  qcfg.borrow_budget = 4;
  QuotaHierarchy quota(qcfg, {{.initial_tokens = 2, .weight = 1}});
  quota.attach_overload(&mgr);

  // Nominal: all-or-nothing everywhere.
  EXPECT_FALSE(admission.admit(0, 8).admitted);
  EXPECT_FALSE(quota.acquire(0, 0, 7).admitted);

  gauge->set(88);
  ASSERT_EQ(mgr.evaluate(), OverloadTier::kDegradePartial);
  const auto ticket = admission.admit(0, 8);
  EXPECT_TRUE(ticket.admitted);
  EXPECT_EQ(ticket.charged, 3u);  // the whole short pool, exactly
  // Shortfall 3 reserves in full (the reservation stays all-or-nothing
  // even under degrade) but the parent pool holds only 1.
  const auto grant = quota.acquire(0, 0, 5);
  EXPECT_TRUE(grant.admitted);
  EXPECT_EQ(grant.from_child, 2u);
  EXPECT_EQ(grant.from_parent, 1u);  // capped by the short parent pool
  EXPECT_EQ(quota.borrowed(0), 1u);  // excess reservation returned

  // Exact undo through the refund paths.
  admission.bucket().refund(0, ticket.charged);
  quota.release(0, grant);
  EXPECT_EQ(drain(admission.bucket()), 3u);
  EXPECT_EQ(drain(quota.child(0)), 2u);
  EXPECT_EQ(drain(quota.parent()), 1u);
}

TEST(OverloadManager, ConcurrentEvaluatorsAndTenantsStayConserved) {
  // Four tenant threads churn acquire/hold/release while two evaluator
  // threads replay a pressure ramp that repeatedly crosses the shed tier.
  // The claim in evaluate() serializes transitions, shed flags race the
  // acquires benignly (reject-or-admit, never corrupt), and the ledger
  // must balance exactly once everything quiesces.
  QuotaHierarchy::Config cfg;
  cfg.parent = {BackendKind::kBatchedNetwork, false};
  cfg.parent_initial_tokens = 24;
  cfg.borrow_budget = 16;
  QuotaHierarchy quota(cfg, {{.initial_tokens = 4, .weight = 4},
                             {.initial_tokens = 4, .weight = 2},
                             {.initial_tokens = 4, .weight = 1},
                             {.initial_tokens = 4, .weight = 1}});
  OverloadManager mgr;
  GaugeMonitor* gauge = add_gauge(mgr, "ramp", 100);
  mgr.add_monitor(std::make_unique<BorrowPressureMonitor>(quota));
  mgr.govern(quota);

  constexpr int kOpsPerThread = 2000;
  std::atomic<std::uint64_t> admitted{0}, rejected{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      QuotaHierarchy::Grant held;
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (held.admitted) {
          quota.release(t, held);
          held = {};
        }
        const auto grant = quota.acquire(t, t, 1 + (i % 3));
        if (grant.admitted) {
          ++admitted;
          held = grant;
        } else {
          ++rejected;
        }
      }
      if (held.admitted) quota.release(t, held);
    });
  }
  for (int e = 0; e < 2; ++e) {
    threads.emplace_back([&] {
      const std::uint64_t ramp[] = {10, 60, 80, 97, 90, 70, 30, 5};
      for (int round = 0; round < 200; ++round) {
        gauge->set(ramp[round % 8]);
        mgr.evaluate();
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) th.join();

  // Park the manager back at nominal so every tenant is restored.
  gauge->set(0);
  mgr.evaluate();
  EXPECT_EQ(mgr.tier(), OverloadTier::kNominal);
  EXPECT_TRUE(mgr.shed_tenants().empty());
  EXPECT_GT(admitted.load(), 0u);

  // Conservation is level-local even across shed/restore cycles: a
  // release under shed still refunds each part to its own level, so at
  // quiescence every pool is back at exactly its initial count.
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_FALSE(quota.is_shed(t)) << "tenant " << t;
    EXPECT_EQ(quota.borrowed(t), 0u) << "tenant " << t;
    EXPECT_EQ(drain(quota.child(t)), 4u) << "tenant " << t;
  }
  EXPECT_EQ(drain(quota.parent()), 24u);
}

TEST(OverloadManager, ConcurrentRegistrationRacesEvaluateSafely) {
  // Regression: add_monitor used to push into the registry *outside* the
  // mutex, so an evaluate() sampling on another thread could walk
  // monitors_ mid-reallocation. Registration now mutates the registry
  // under the same lock the sampler iterates it under (the thread-safety
  // annotations on OverloadManager are what surfaced this); this hammer
  // races the two so the TSan leg of CI would catch any regression.
  OverloadManager mgr;
  GaugeMonitor* seed = add_gauge(mgr, "seed", 100);
  seed->set(25);
  constexpr int kRegistrations = 200;
  std::atomic<bool> done{false};
  std::thread registrar([&] {
    for (int i = 0; i < kRegistrations; ++i) {
      add_gauge(mgr, "g" + std::to_string(i), 100)->set(50);
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    mgr.evaluate();
    EXPECT_GE(mgr.pressure_of("seed"), 0.0);
    EXPECT_GE(mgr.num_monitors(), 1u);
  }
  registrar.join();

  mgr.evaluate();
  EXPECT_EQ(mgr.num_monitors(),
            static_cast<std::size_t>(kRegistrations) + 1);
  EXPECT_DOUBLE_EQ(mgr.pressure_of("seed"), 0.25);
  EXPECT_DOUBLE_EQ(
      mgr.pressure_of("g" + std::to_string(kRegistrations - 1)), 0.5);
}

}  // namespace
}  // namespace cnet::svc
