// sim::simulate_multicore: the virtual-time svc simulator must be (a)
// bit-deterministic from its seed — that is the whole point of answering
// "Table B needs real cores" in virtual time — (b) shaped like the paper
// (central wins uncontended, network wins contended), (c) exactly
// token-conserving for every backend spec, and (d) must fire the adaptive
// switch at the precise virtual instant the shared should_switch rule
// crosses, which a hand-derived scenario pins below.
#include <gtest/gtest.h>

#include <vector>

#include "cnet/sim/multicore.hpp"
#include "cnet/svc/backend.hpp"

namespace cnet::sim {
namespace {

MulticoreConfig small_config(std::size_t cores) {
  MulticoreConfig cfg;
  cfg.cores = cores;
  cfg.ops_per_core = 512;
  cfg.refill_every = 64;
  cfg.initial_tokens_per_core = 64;
  cfg.exponential_service = true;
  cfg.seed = 0xB10C0DE;
  return cfg;
}

TEST(MulticoreSim, GoldenSeedDeterminism) {
  // Same seed -> identical Table B' numbers, for every spec, including the
  // exponential-service draws, elimination pairings, and the adaptive
  // switch instant.
  for (const auto& spec : multicore_sweep_specs()) {
    const auto a = simulate_multicore(spec, small_config(8));
    const auto b = simulate_multicore(spec, small_config(8));
    SCOPED_TRACE(svc::backend_spec_name(spec));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.ops_per_vtime, b.ops_per_vtime);
    EXPECT_EQ(a.consume_ops, b.consume_ops);
    EXPECT_EQ(a.consumed, b.consumed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.refilled, b.refilled);
    EXPECT_EQ(a.stall_events, b.stall_events);
    EXPECT_EQ(a.final_pool, b.final_pool);
    EXPECT_EQ(a.elim_pairs, b.elim_pairs);
    EXPECT_EQ(a.elim_withdrawals, b.elim_withdrawals);
    EXPECT_EQ(a.elim_value_sum, b.elim_value_sum);
    EXPECT_EQ(a.switched, b.switched);
    EXPECT_EQ(a.switch_time, b.switch_time);
    EXPECT_EQ(a.ops_at_switch, b.ops_at_switch);
  }
}

TEST(MulticoreSim, SeedChangesTheExponentialDraws) {
  auto cfg = small_config(8);
  const auto a = simulate_multicore({svc::BackendKind::kNetwork, false}, cfg);
  cfg.seed ^= 0xDEAD;
  const auto b = simulate_multicore({svc::BackendKind::kNetwork, false}, cfg);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(MulticoreSim, ConservesTokensForEverySpec) {
  for (const auto& spec : multicore_sweep_specs()) {
    for (const std::size_t cores : {1u, 4u, 16u}) {
      const auto r = simulate_multicore(spec, small_config(cores));
      SCOPED_TRACE(svc::backend_spec_name(spec) + " @ " +
                   std::to_string(cores));
      EXPECT_TRUE(r.conserved);
      EXPECT_EQ(r.consumed + static_cast<std::uint64_t>(r.final_pool),
                r.refilled + r.initial_tokens);
      EXPECT_EQ(r.consume_ops, cores * 512);
    }
  }
}

TEST(MulticoreSim, CentralNetworkCrossoverShape) {
  const svc::BackendSpec central{svc::BackendKind::kCentralAtomic, false};
  const svc::BackendSpec network{svc::BackendKind::kNetwork, false};
  // Uncontended: the single word beats a deep network traversal.
  EXPECT_GT(simulate_multicore(central, small_config(1)).ops_per_vtime,
            simulate_multicore(network, small_config(1)).ops_per_vtime);
  // Contended: the network's parallel servers win by at least the paper's
  // 2x margin.
  EXPECT_GE(simulate_multicore(network, small_config(32)).ops_per_vtime,
            2.0 * simulate_multicore(central, small_config(32)).ops_per_vtime);
}

// The hand-derivable adaptive scenario: 2 cores, fixed unit service, no
// think time, no contention slope, no refills in the window. The server
// serializes the two cores, so op completions land at t = 1, 2, 3, ...;
// the arrival behind each completion finds exactly one request in service
// (one stall each), plus the single stall of the t=0 double arrival. With
// sample_interval = min_window_ops = 64, the boundary crossing happens at
// the 64th completion — virtual time 64.0 exactly — with a window of
// {ops: 64, events: 64}, rate 1.0 >= threshold 0.5: the switch must fire
// at that instant and not a tick earlier or later.
MulticoreConfig pinned_adaptive_config(std::size_t cores) {
  MulticoreConfig cfg;
  cfg.cores = cores;
  cfg.ops_per_core = 128;
  cfg.refill_every = 1u << 20;  // never refills inside the run
  cfg.initial_tokens_per_core = 1024;
  cfg.think_time = 0.0;
  cfg.central_service = 1.0;
  cfg.central_slope = 0.0;
  cfg.exponential_service = false;
  cfg.tuning.sample_interval = 64;
  cfg.tuning.min_window_ops = 64;
  cfg.tuning.stall_rate_threshold = 0.5;
  return cfg;
}

TEST(MulticoreSim, AdaptiveSwitchFiresAtTheExactThresholdCrossing) {
  const auto r = simulate_multicore({svc::BackendKind::kAdaptive, false},
                                    pinned_adaptive_config(2));
  EXPECT_TRUE(r.switched);
  EXPECT_EQ(r.ops_at_switch, 64u);
  EXPECT_DOUBLE_EQ(r.switch_time, 64.0);
  EXPECT_TRUE(r.conserved);
}

TEST(MulticoreSim, AdaptiveStaysColdWithoutContention) {
  // One core never queues behind itself: zero stall events, so the rule
  // can never cross and the cold central model serves the whole run.
  const auto r = simulate_multicore({svc::BackendKind::kAdaptive, false},
                                    pinned_adaptive_config(1));
  EXPECT_FALSE(r.switched);
  EXPECT_EQ(r.stall_events, 0u);
  EXPECT_TRUE(r.conserved);
}

TEST(MulticoreSim, EliminationPairsUnderContendedMix) {
  // Contended batched-network spec with the elimination front-end: some
  // waiting decrements must be caught by bulk refills, and every pair
  // value from the shared rule is negative (the value sum strictly so).
  const auto r = simulate_multicore({svc::BackendKind::kBatchedNetwork, true},
                                    small_config(32));
  EXPECT_GT(r.elim_pairs, 0u);
  EXPECT_LT(r.elim_value_sum, 0);
  EXPECT_TRUE(r.conserved);
}

// The bench's exact Table D' workload (quota_sim_reference_config is
// shared so the CI-gated checks and these tests cannot drift apart).
QuotaSimConfig quota_config(std::size_t cores) {
  return quota_sim_reference_config(cores);
}

TEST(QuotaSim, GoldenSeedDeterminism) {
  for (const auto& spec : multicore_sweep_specs()) {
    const auto a = simulate_quota(spec, quota_config(16));
    const auto b = simulate_quota(spec, quota_config(16));
    SCOPED_TRACE(svc::backend_spec_name(spec));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.goodput_per_vtime, b.goodput_per_vtime);
    EXPECT_EQ(a.acquire_ops, b.acquire_ops);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.parent_stalls, b.parent_stalls);
    EXPECT_EQ(a.child_stalls, b.child_stalls);
    EXPECT_EQ(a.admitted_per_tenant, b.admitted_per_tenant);
    EXPECT_EQ(a.peak_borrowed_per_tenant, b.peak_borrowed_per_tenant);
  }
}

TEST(QuotaSim, ConservesAndIsolatesForEverySpec) {
  for (const auto& spec : multicore_sweep_specs()) {
    for (const std::size_t cores : {4u, 64u}) {
      const auto r = simulate_quota(spec, quota_config(cores));
      SCOPED_TRACE(svc::backend_spec_name(spec) + " @ " +
                   std::to_string(cores));
      EXPECT_TRUE(r.conserved);
      EXPECT_TRUE(r.isolation);
      EXPECT_EQ(r.cold_rejected, 0u);
      EXPECT_EQ(r.acquire_ops, cores * 512);
      // Peak borrow never pierced a weighted cap.
      for (std::size_t t = 0; t < r.peak_borrowed_per_tenant.size(); ++t) {
        EXPECT_LE(r.peak_borrowed_per_tenant[t], r.limit_per_tenant[t]);
      }
    }
  }
}

TEST(QuotaSim, HotTenantSaturatesItsCapAtScale) {
  // 48 of 64 cores hammer tenant 0: its demand far exceeds child + cap,
  // so the weighted limit must be pinned and the overflow rejected —
  // while every cold tenant stays inside its own cap, rejection-free.
  const auto r = simulate_quota({svc::BackendKind::kNetwork, false},
                                quota_config(64));
  EXPECT_GT(r.hot_rejected, 0u);
  EXPECT_EQ(r.cold_rejected, 0u);
  EXPECT_EQ(r.peak_borrowed_per_tenant[0], r.limit_per_tenant[0]);
  EXPECT_TRUE(r.conserved);
}

TEST(QuotaSim, ParentContentionOrderingMatchesThePaper) {
  const svc::BackendSpec central{svc::BackendKind::kCentralAtomic, false};
  const svc::BackendSpec network{svc::BackendKind::kNetwork, false};
  // Uncontended the central parent wins; at 64 cores every hot acquire
  // funnels through the shared parent and the network parent admits more
  // grants per unit virtual time.
  EXPECT_GT(simulate_quota(central, quota_config(4)).goodput_per_vtime,
            simulate_quota(network, quota_config(4)).goodput_per_vtime);
  EXPECT_GE(simulate_quota(network, quota_config(64)).goodput_per_vtime,
            simulate_quota(central, quota_config(64)).goodput_per_vtime);
}

TEST(OverloadSim, GoldenSeedReferenceTrace) {
  // The bench's exact Table E' reference cell, pinned golden: the virtual
  // clock makes the whole escalate→shed→recover trace a pure function of
  // (spec, config, seed), so any drift in the engine, the quota model, or
  // the shared policy rules shows up here as an exact-value diff.
  const auto r = simulate_overload({svc::BackendKind::kCentralAtomic, false},
                                   overload_sim_reference_config());
  EXPECT_EQ(r.attempts, 9216u);  // 48 cores x 192 attempts
  EXPECT_EQ(r.admitted, 2654u);
  EXPECT_EQ(r.rejected, 5550u);
  EXPECT_EQ(r.degraded_admits, 12u);
  EXPECT_EQ(r.shed_rejects, 1012u);
  EXPECT_EQ(r.shed_events, 4u);
  EXPECT_EQ(r.restore_events, 4u);
  EXPECT_EQ(r.shed_refunded_tokens, 8u);
  EXPECT_EQ(r.peak_tier, svc::OverloadTier::kShedTenants);
  EXPECT_EQ(r.final_tier, svc::OverloadTier::kNominal);
  EXPECT_FALSE(r.forced_switch);  // nothing to force on a central parent
  EXPECT_DOUBLE_EQ(r.makespan, 5580.1720385393346);

  // The tier-transition instants land on the sampler grid (multiples of
  // sample_every = 32). The ramp saturates the parent before the second
  // sample, so the first transition jumps straight to the shed tier; the
  // first descent drops two tiers at once, exactly as the hysteretic rule
  // dictates at that pressure.
  ASSERT_EQ(r.transitions.size(), 11u);
  EXPECT_EQ(r.transitions[0].time, 128.0);
  EXPECT_EQ(r.transitions[0].from, svc::OverloadTier::kNominal);
  EXPECT_EQ(r.transitions[0].to, svc::OverloadTier::kShedTenants);
  EXPECT_EQ(r.transitions[0].pressure, 1.0);
  EXPECT_EQ(r.transitions[1].time, 960.0);
  EXPECT_EQ(r.transitions[1].from, svc::OverloadTier::kShedTenants);
  EXPECT_EQ(r.transitions[1].to, svc::OverloadTier::kForceEliminate);
  EXPECT_NEAR(r.transitions[1].pressure, 0.72040816326530612, 1e-12);

  // Shedding hits only the cold weight-1 tenants (shed_set: tenant 0
  // carries the hot weight), highest indices first.
  ASSERT_EQ(r.shed_rejects_per_tenant.size(), 8u);
  const std::vector<std::uint64_t> expected_shed_rejects{0,   0,   0,   0,
                                                         347, 343, 159, 163};
  EXPECT_EQ(r.shed_rejects_per_tenant, expected_shed_rejects);

  EXPECT_TRUE(r.conserved);
  EXPECT_TRUE(r.hysteresis_respected);
  EXPECT_TRUE(r.recovered);
}

TEST(OverloadSim, ConservesAndRecoversForEverySpec) {
  for (const auto& spec : multicore_sweep_specs()) {
    const auto r = simulate_overload(spec, overload_sim_reference_config());
    SCOPED_TRACE(svc::backend_spec_name(spec));
    EXPECT_EQ(r.attempts, 9216u);
    // The reference ramp pushes every backend through the full ladder and
    // back: whatever was shed was restored, every grant part (released or
    // force-refunded) returned to its level, and no transition ever
    // violated the hysteresis band.
    EXPECT_EQ(r.peak_tier, svc::OverloadTier::kShedTenants);
    EXPECT_EQ(r.final_tier, svc::OverloadTier::kNominal);
    EXPECT_TRUE(r.conserved);
    EXPECT_TRUE(r.hysteresis_respected);
    EXPECT_TRUE(r.recovered);
    EXPECT_EQ(r.shed_events, r.restore_events);
  }
}

TEST(OverloadSim, GoldenSeedDeterminism) {
  for (const auto& spec : multicore_sweep_specs()) {
    const auto a = simulate_overload(spec, overload_sim_reference_config());
    const auto b = simulate_overload(spec, overload_sim_reference_config());
    SCOPED_TRACE(svc::backend_spec_name(spec));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.degraded_admits, b.degraded_admits);
    EXPECT_EQ(a.shed_rejects_per_tenant, b.shed_rejects_per_tenant);
    ASSERT_EQ(a.transitions.size(), b.transitions.size());
    for (std::size_t i = 0; i < a.transitions.size(); ++i) {
      EXPECT_EQ(a.transitions[i].time, b.transitions[i].time);
      EXPECT_EQ(a.transitions[i].from, b.transitions[i].from);
      EXPECT_EQ(a.transitions[i].to, b.transitions[i].to);
      EXPECT_EQ(a.transitions[i].pressure, b.transitions[i].pressure);
    }
  }
}

TEST(OverloadSim, AdaptiveParentTakesTheForcedSwap) {
  // The force-eliminate action tells an adaptive parent to take its
  // cold→hot swap at the next sample instant instead of waiting out its
  // own switch rule — the ramp enters tier >= 2 at the fourth sample, so
  // the swap lands exactly there.
  const auto r = simulate_overload({svc::BackendKind::kAdaptive, false},
                                   overload_sim_reference_config());
  EXPECT_TRUE(r.forced_switch);
  EXPECT_EQ(r.forced_switch_time, 128.0);
  EXPECT_TRUE(r.conserved);
  EXPECT_TRUE(r.recovered);
}

// The bench's exact Table F workload: reconfig_sim_reference_config plus
// the shared pairing rule, so the CI-gated checks and these goldens
// cannot drift apart.
ReconfigSimConfig reconfig_config(const svc::BackendSpec& spec_from) {
  ReconfigSimConfig cfg = reconfig_sim_reference_config();
  cfg.spec_to = reconfig_respec_target(spec_from);
  return cfg;
}

TEST(ReconfigSim, GoldenSeedDeterminism) {
  for (const auto& spec : multicore_sweep_specs()) {
    const auto a = simulate_reconfig(spec, reconfig_config(spec));
    const auto b = simulate_reconfig(spec, reconfig_config(spec));
    SCOPED_TRACE(svc::backend_spec_name(spec));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.consume_ops, b.consume_ops);
    EXPECT_EQ(a.consumed, b.consumed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.refilled, b.refilled);
    EXPECT_EQ(a.respec_staged_time, b.respec_staged_time);
    EXPECT_EQ(a.respec_commit_time, b.respec_commit_time);
    EXPECT_EQ(a.migrated_tokens, b.migrated_tokens);
    EXPECT_EQ(a.old_stalls, b.old_stalls);
    EXPECT_EQ(a.new_stalls, b.new_stalls);
    EXPECT_EQ(a.final_pool, b.final_pool);
  }
}

TEST(ReconfigSim, ConservesAcrossTheCommitForEverySpec) {
  for (const auto& spec : multicore_sweep_specs()) {
    const auto r = simulate_reconfig(spec, reconfig_config(spec));
    SCOPED_TRACE(svc::backend_spec_name(spec));
    EXPECT_TRUE(r.conserved);
    EXPECT_EQ(r.consumed + static_cast<std::uint64_t>(r.final_pool),
              r.refilled + r.initial_tokens);
    // The reference workload always has old ops in flight at t = 300, so
    // the commit is strictly after the stage, and the migration moved the
    // old pool's exact (nonzero, for this workload) remainder.
    EXPECT_EQ(r.config_version, 2u);
    EXPECT_DOUBLE_EQ(r.respec_staged_time, 300.0);
    EXPECT_GT(r.respec_commit_time, r.respec_staged_time);
    EXPECT_GT(r.migrated_tokens, 0u);
    // divided_chunk(64, 4) under the shared rule.
    EXPECT_EQ(r.staged_chunk, 16u);
    EXPECT_EQ(r.consume_ops, 8u * 2048u);
  }
}

TEST(ReconfigSim, GoldenCommitInstants) {
  // The quiescence instant is a pure function of (spec, config, seed): the
  // commit fires exactly when the last op in flight on the old stack at
  // t = 300 completes. Pinned to the bit for the two bookend directions —
  // any drift in the engine, the drain accounting, or the staged publish
  // shows up here as an exact-value diff.
  const auto up = simulate_reconfig(
      {svc::BackendKind::kCentralAtomic, false},
      reconfig_config({svc::BackendKind::kCentralAtomic, false}));
  EXPECT_DOUBLE_EQ(up.respec_commit_time, 307.26134860564667);
  EXPECT_EQ(up.migrated_tokens, 303u);
  EXPECT_EQ(up.consumed, 15905u);
  EXPECT_EQ(up.rejected, 479u);
  EXPECT_DOUBLE_EQ(up.makespan, 17943.989688889873);

  const auto down = simulate_reconfig(
      {svc::BackendKind::kBatchedNetwork, false},
      reconfig_config({svc::BackendKind::kBatchedNetwork, false}));
  EXPECT_DOUBLE_EQ(down.respec_commit_time, 307.69616677734183);
  EXPECT_EQ(down.migrated_tokens, 215u);
  EXPECT_EQ(down.consumed, 15872u);
  EXPECT_EQ(down.rejected, 512u);
  EXPECT_DOUBLE_EQ(down.makespan, 50688.496555901685);
}

TEST(ReconfigSim, IdleStageCommitsAtTheStageInstant) {
  // Stage the respec after the workload has fully drained: there are no
  // in-flight old-stack readers left, so quiescence holds trivially and
  // the commit fires at the very same instant the stage publishes — the
  // engine's "uncontended respec is instantaneous" degenerate case. The
  // whole leftover pool migrates in the one transfer.
  const svc::BackendSpec spec{svc::BackendKind::kCentralAtomic, false};
  ReconfigSimConfig cfg = reconfig_config(spec);
  cfg.respec_at = 1e9;
  const auto r = simulate_reconfig(spec, cfg);
  EXPECT_EQ(r.config_version, 2u);
  EXPECT_DOUBLE_EQ(r.respec_staged_time, 1e9);
  EXPECT_DOUBLE_EQ(r.respec_commit_time, 1e9);
  EXPECT_EQ(r.migrated_tokens, static_cast<std::uint64_t>(r.final_pool));
  EXPECT_TRUE(r.conserved);
}

TEST(MulticoreSim, RejectsWhenThePoolRunsDry) {
  // No initial tokens and a huge refill cadence: every consume before the
  // first refill must be rejected, never over-admitted.
  MulticoreConfig cfg = small_config(4);
  cfg.initial_tokens_per_core = 0;
  cfg.refill_every = 32;
  const auto r =
      simulate_multicore({svc::BackendKind::kCentralAtomic, false}, cfg);
  EXPECT_GT(r.rejected, 0u);
  EXPECT_TRUE(r.conserved);
}

}  // namespace
}  // namespace cnet::sim
