// End-to-end integration: every counter implementation in the library is
// exercised as a shared Fetch&Increment service under real threads, and the
// simulator, quiescent evaluator and runtime are cross-validated on the
// same topologies.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/difftree.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/difftree_rt.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/sim/schedulers.hpp"
#include "cnet/sim/token_sim.hpp"
#include "cnet/topology/quiescent.hpp"
#include "test_util.hpp"

namespace cnet {
namespace {

std::vector<seq::Value> hammer(rt::Counter& counter, std::size_t threads,
                               std::size_t per_thread) {
  std::vector<std::vector<seq::Value>> got(threads);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = 0; i < per_thread; ++i) {
          got[t].push_back(counter.fetch_increment(t));
        }
      });
    }
  }
  std::vector<seq::Value> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  return all;
}

// Every counter the library offers, hammered by 8 threads: the returned
// values must be exactly 0..m-1.
TEST(Integration, EveryCounterImplementationIsCorrect) {
  std::vector<std::unique_ptr<rt::Counter>> counters;
  counters.push_back(std::make_unique<rt::AtomicCounter>());
  counters.push_back(std::make_unique<rt::CasCounter>());
  counters.push_back(std::make_unique<rt::MutexCounter>());
  counters.push_back(std::make_unique<rt::NetworkCounter>(
      core::make_counting(8, 8), "C(8,8)"));
  counters.push_back(std::make_unique<rt::NetworkCounter>(
      core::make_counting(8, 24), "C(8,24)"));
  counters.push_back(std::make_unique<rt::NetworkCounter>(
      core::make_counting(8, 24), "C(8,24)-cas", rt::BalancerMode::kCasRetry));
  counters.push_back(std::make_unique<rt::NetworkCounter>(
      baselines::make_bitonic(8), "bitonic(8)"));
  counters.push_back(std::make_unique<rt::NetworkCounter>(
      baselines::make_periodic(8), "periodic(8)"));
  rt::DiffractingTreeCounter::Config dt;
  dt.leaves = 8;
  counters.push_back(std::make_unique<rt::DiffractingTreeCounter>(dt));

  for (auto& counter : counters) {
    const auto values = hammer(*counter, 8, 1000);
    EXPECT_TRUE(test::is_exact_range(values)) << counter->name();
  }
}

// The simulator and the quiescent evaluator agree for every network family
// and every scheduler.
TEST(Integration, SimulatorAgreesWithQuiescentEvaluator) {
  const std::vector<std::pair<std::string, topo::Topology>> nets = [] {
    std::vector<std::pair<std::string, topo::Topology>> v;
    v.emplace_back("C(8,8)", core::make_counting(8, 8));
    v.emplace_back("C(8,16)", core::make_counting(8, 16));
    v.emplace_back("bitonic(8)", baselines::make_bitonic(8));
    v.emplace_back("periodic(8)", baselines::make_periodic(8));
    v.emplace_back("difftree(8)", baselines::make_diffracting_tree(8));
    return v;
  }();
  for (const auto& [label, net] : nets) {
    for (const auto kind :
         {sim::SchedulerKind::kRandom, sim::SchedulerKind::kRoundRobin,
          sim::SchedulerKind::kWavefrontConvoy}) {
      sim::SimConfig cfg{.concurrency = 7, .total_tokens = 311};
      auto sched = sim::make_scheduler(kind, 5);
      const auto res = sim::simulate(net, cfg, *sched);
      EXPECT_EQ(res.output_counts, topo::evaluate(net, res.input_counts))
          << label << " / " << sim::scheduler_name(kind);
      EXPECT_TRUE(test::is_exact_range(res.counter_values))
          << label << " / " << sim::scheduler_name(kind);
    }
  }
}

// Interleaved bursts: threads join and leave; totals must stay exact.
TEST(Integration, BurstyTrafficKeepsExactness) {
  rt::NetworkCounter counter(core::make_counting(4, 8), "C(4,8)");
  std::vector<seq::Value> all;
  for (int burst = 0; burst < 5; ++burst) {
    const auto values = hammer(counter, static_cast<std::size_t>(3 + burst % 3), 500);
    all.insert(all.end(), values.begin(), values.end());
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], static_cast<seq::Value>(i));
  }
}

// The irregular network family keeps counting when p is not a power of two
// (t = 3w), end to end.
TEST(Integration, NonPowerOfTwoExpansionFactor) {
  const auto net = core::make_counting(16, 48);
  util::Xoshiro256 rng(123);
  EXPECT_FALSE(topo::check_counting_random(net, 200, 40, rng).has_value());

  rt::NetworkCounter counter(net, "C(16,48)");
  EXPECT_TRUE(test::is_exact_range(hammer(counter, 8, 1000)));
}

}  // namespace
}  // namespace cnet
