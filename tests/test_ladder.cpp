#include "cnet/core/ladder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "test_util.hpp"

namespace cnet::core {
namespace {

TEST(Ladder, Shape) {
  for (std::size_t w = 2; w <= 32; w += 2) {
    const auto t = make_ladder(w);
    EXPECT_EQ(t.width_in(), w);
    EXPECT_EQ(t.width_out(), w);
    EXPECT_EQ(t.depth(), 1u);
    EXPECT_EQ(t.num_balancers(), w / 2);
    EXPECT_TRUE(t.is_regular());
  }
}

TEST(Ladder, RejectsOddWidth) {
  EXPECT_THROW((void)make_ladder(3), std::invalid_argument);
  EXPECT_THROW((void)make_ladder(0), std::invalid_argument);
}

TEST(Ladder, PairsWireIWithIPlusHalf) {
  // Put tokens only on wire 1 of an 8-ladder: balancer b1 splits them over
  // output wires 1 and 5.
  const auto t = make_ladder(8);
  seq::Sequence x(8, 0);
  x[1] = 5;
  const auto y = topo::evaluate(t, x);
  EXPECT_EQ(y[1], 3);
  EXPECT_EQ(y[5], 2);
  for (const std::size_t i : {0u, 2u, 3u, 4u, 6u, 7u}) {
    EXPECT_EQ(y[i], 0) << i;
  }
}

// The property Theorem 4.2 needs: for every input, the per-pair difference
// between top and bottom ladder outputs is in [0,1], so the two recursive
// halves of C(w,t) receive sums differing by at most w/2.
TEST(Ladder, HalfSumGapBoundedByHalfWidth) {
  util::Xoshiro256 rng(31);
  for (const std::size_t w : {2u, 4u, 8u, 16u}) {
    const auto t = make_ladder(w);
    for (int trial = 0; trial < 200; ++trial) {
      const auto x = test::random_input(w, 25, rng);
      const auto y = topo::evaluate(t, x);
      const auto top = seq::first_half(y);
      const auto bottom = seq::second_half(y);
      const seq::Value gap = seq::sum(top) - seq::sum(bottom);
      EXPECT_GE(gap, 0);
      EXPECT_LE(gap, static_cast<seq::Value>(w / 2));
      // Per-balancer: top output minus bottom output is 0 or 1.
      for (std::size_t i = 0; i < w / 2; ++i) {
        const seq::Value d = y[i] - y[i + w / 2];
        EXPECT_GE(d, 0);
        EXPECT_LE(d, 1);
      }
    }
  }
}

}  // namespace
}  // namespace cnet::core
