// svc::QuotaHierarchy: child-first acquisition, weighted max-borrow from
// the shared parent, all-or-nothing refunds to the level each token came
// from, and exact two-level conservation — sequentially, across every
// parent backend spec, and under concurrent tenant threads (the TSan
// concurrency label covers the reservation CAS and the release ordering).
#include "cnet/svc/quota.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "cnet/svc/backend.hpp"
#include "cnet/util/prng.hpp"
#include "test_svc_util.hpp"

namespace cnet::svc {
namespace {

QuotaHierarchy::Config base_config(BackendSpec parent,
                                   std::uint64_t parent_tokens,
                                   std::uint64_t budget) {
  QuotaHierarchy::Config cfg;
  cfg.parent = parent;
  cfg.parent_initial_tokens = parent_tokens;
  cfg.borrow_budget = budget;
  return cfg;
}

// Drains a bucket one token at a time from a quiescent state.
std::uint64_t drain(NetTokenBucket& bucket) {
  std::uint64_t total = 0;
  while (bucket.consume(0, 1, kPartialOk) == 1) ++total;
  return total;
}

TEST(QuotaHierarchy, BorrowsFromTheParentOnChildShortfall) {
  QuotaHierarchy q(base_config({BackendKind::kCentralAtomic, false}, 10, 8),
                   {{.initial_tokens = 2, .weight = 1}});
  const auto grant = q.acquire(0, 0, 5);
  ASSERT_TRUE(grant.admitted);
  EXPECT_EQ(grant.from_child, 2u);   // the child covered what it had
  EXPECT_EQ(grant.from_parent, 3u);  // the shortfall came from the parent
  EXPECT_EQ(grant.tokens(), 5u);
  EXPECT_EQ(q.borrowed(0), 3u);

  q.release(0, grant);
  EXPECT_EQ(q.borrowed(0), 0u);
  // Every token returned to its own level.
  EXPECT_EQ(drain(q.child(0)), 2u);
  EXPECT_EQ(drain(q.parent()), 10u);
}

TEST(QuotaHierarchy, RejectionRefundsEachLevelExactly) {
  // Child holds 2, borrow limit is 3, parent has plenty: a request for 7
  // cannot be covered (shortfall 5 > limit 3) and must put the child's 2
  // tokens straight back.
  QuotaHierarchy q(base_config({BackendKind::kCentralAtomic, false}, 20, 3),
                   {{.initial_tokens = 2, .weight = 1}});
  const auto grant = q.acquire(0, 0, 7);
  EXPECT_FALSE(grant.admitted);
  EXPECT_EQ(grant.tokens(), 0u);
  EXPECT_EQ(q.borrowed(0), 0u);
  EXPECT_EQ(drain(q.child(0)), 2u);
  EXPECT_EQ(drain(q.parent()), 20u);
}

TEST(QuotaHierarchy, ParentShortfallRefundsTheParentGrab) {
  // Limit allows the borrow but the parent pool itself is short: the
  // partial parent grab goes back to the parent, the child part to the
  // child, the reservation is fully returned.
  QuotaHierarchy q(base_config({BackendKind::kCentralAtomic, false}, 3, 50),
                   {{.initial_tokens = 1, .weight = 1}});
  const auto grant = q.acquire(0, 0, 6);  // needs 5 from a parent of 3
  EXPECT_FALSE(grant.admitted);
  EXPECT_EQ(q.borrowed(0), 0u);
  EXPECT_EQ(drain(q.child(0)), 1u);
  EXPECT_EQ(drain(q.parent()), 3u);
}

TEST(QuotaHierarchy, WeightedLimitsSplitTheBudget) {
  QuotaHierarchy q(base_config({BackendKind::kCentralAtomic, false}, 20, 12),
                   {{.initial_tokens = 0, .weight = 2},
                    {.initial_tokens = 0, .weight = 1},
                    {.initial_tokens = 0, .weight = 1}});
  EXPECT_EQ(q.borrow_limit(0), 6u);  // 12 * 2/4
  EXPECT_EQ(q.borrow_limit(1), 3u);  // 12 * 1/4
  EXPECT_EQ(q.borrow_limit(2), 3u);
  EXPECT_EQ(q.weight(0), 2u);

  // Tenant 0 can take its 6 but not a 7th; tenant 1's own cap is intact.
  const auto six = q.acquire(0, 0, 6);
  ASSERT_TRUE(six.admitted);
  EXPECT_EQ(q.borrowed(0), 6u);
  EXPECT_FALSE(q.acquire(0, 0, 1).admitted);
  const auto other = q.acquire(1, 1, 3);
  EXPECT_TRUE(other.admitted);
  q.release(0, six);
  q.release(1, other);
  EXPECT_EQ(drain(q.parent()), 20u);
}

TEST(QuotaHierarchy, ZeroTokenAcquireIsAnAdmittedNoOp) {
  QuotaHierarchy q(base_config({BackendKind::kBatchedNetwork, false}, 5, 4),
                   {{.initial_tokens = 3, .weight = 1}});
  const auto grant = q.acquire(0, 0, 0);
  EXPECT_TRUE(grant.admitted);
  EXPECT_EQ(grant.tokens(), 0u);
  EXPECT_EQ(q.borrowed(0), 0u);
  q.release(0, grant);  // releasing the empty grant is equally a no-op
  EXPECT_EQ(drain(q.child(0)), 3u);
  EXPECT_EQ(drain(q.parent()), 5u);
}

TEST(QuotaHierarchy, RefillsAddCapacityAtTheRightLevel) {
  QuotaHierarchy q(base_config({BackendKind::kCentralAtomic, false}, 0, 4),
                   {{.initial_tokens = 0, .weight = 1}});
  EXPECT_FALSE(q.acquire(0, 0, 1).admitted);  // both levels empty
  q.refill_tenant(0, 0, 2);
  const auto child_grant = q.acquire(0, 0, 1);
  EXPECT_TRUE(child_grant.admitted);
  EXPECT_EQ(child_grant.from_child, 1u);
  q.refill_parent(0, 3);
  const auto mixed = q.acquire(0, 0, 3);
  ASSERT_TRUE(mixed.admitted);
  EXPECT_EQ(mixed.from_child, 1u);
  EXPECT_EQ(mixed.from_parent, 2u);
}

TEST(QuotaHierarchy, RejectsMisuse) {
  EXPECT_THROW(
      QuotaHierarchy(base_config({BackendKind::kCentralAtomic, false}, 0, 0),
                     {}),
      std::invalid_argument);
  EXPECT_THROW(
      QuotaHierarchy(base_config({BackendKind::kCentralAtomic, false}, 0, 0),
                     {{.initial_tokens = 0, .weight = 0}}),
      std::invalid_argument);
  QuotaHierarchy q(base_config({BackendKind::kCentralAtomic, false}, 4, 2),
                   {{.initial_tokens = 1, .weight = 1}});
  EXPECT_THROW(q.acquire(0, 7, 1), std::invalid_argument);
  QuotaHierarchy::Grant rejected;  // admitted == false
  EXPECT_THROW(q.release(0, rejected), std::invalid_argument);
}

TEST(QuotaHierarchy, NameReflectsTheParentSpec) {
  QuotaHierarchy q(
      base_config({BackendKind::kBatchedNetwork, true}, 1, 1),
      {{.initial_tokens = 0, .weight = 1}});
  EXPECT_EQ(q.name(), "quota·elim·batched C(8,24)");
}

// Every parent backend spec (all pool kinds plain, the elimination
// front-end on the bookends — the bench's 8-spec axis) conserves tokens
// through a sequential acquire/release mix.
class QuotaParentSpecs : public ::testing::TestWithParam<BackendKind> {};

TEST_P(QuotaParentSpecs, SequentialConservationPlainAndElim) {
  for (const bool elim : {false, true}) {
    QuotaHierarchy q(base_config({GetParam(), elim}, 12, 10),
                     {{.initial_tokens = 2, .weight = 3},
                      {.initial_tokens = 1, .weight = 1}});
    std::vector<QuotaHierarchy::Grant> held;
    util::Xoshiro256 rng(0x0D0A + static_cast<std::uint64_t>(elim));
    for (int i = 0; i < 200; ++i) {
      const auto tenant = static_cast<std::size_t>(rng.below(2));
      if (!held.empty() && rng.below(2) == 0) {
        q.release(0, held.back());
        held.pop_back();
      } else {
        const auto grant =
            q.acquire(0, tenant, 1 + rng.below(4));
        if (grant.admitted) held.push_back(grant);
      }
      EXPECT_LE(q.borrowed(0), q.borrow_limit(0));
      EXPECT_LE(q.borrowed(1), q.borrow_limit(1));
    }
    for (const auto& grant : held) q.release(0, grant);
    EXPECT_EQ(q.borrowed(0), 0u);
    EXPECT_EQ(q.borrowed(1), 0u);
    EXPECT_EQ(drain(q.child(0)), 2u);
    EXPECT_EQ(drain(q.child(1)), 1u);
    EXPECT_EQ(drain(q.parent()), 12u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPoolBackends, QuotaParentSpecs,
                         ::testing::ValuesIn(kPoolBackendKinds),
                         test::backend_param_name);

// The ISSUE's concurrency invariant: N tenant threads running a mixed
// acquire/release workload against one shared parent. At every
// observation point granted <= refilled per level (the borrow cap bounds
// the parent side, the bucket bounds each child), and at quiescence the
// ledger is exact.
TEST(QuotaHierarchy, ConcurrentMixedAcquireReleaseConservesBothLevels) {
  constexpr std::size_t kTenants = 4, kThreadsPerTenant = 2;
  constexpr std::uint64_t kParentTokens = 33, kBudget = 32;
  constexpr std::uint64_t kChildTokens = 3;
  QuotaHierarchy q(
      base_config({BackendKind::kBatchedNetwork, false}, kParentTokens,
                  kBudget),
      std::vector<QuotaHierarchy::TenantConfig>(
          kTenants, {.initial_tokens = kChildTokens, .weight = 1}));

  std::atomic<bool> cap_violated{false};
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kTenants * kThreadsPerTenant; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t tenant = t % kTenants;
        util::Xoshiro256 rng(0xC0FFEE + t);
        std::vector<QuotaHierarchy::Grant> held;
        for (int i = 0; i < 2000; ++i) {
          if (!held.empty() && rng.below(3) == 0) {
            q.release(t, held.back());
            held.pop_back();
          } else {
            const auto grant = q.acquire(t, tenant, 1 + rng.below(3));
            if (grant.admitted) held.push_back(grant);
          }
          // The reservation keeps this true at every instant, including
          // mid-acquire on other threads of the same tenant.
          if (q.borrowed(tenant) > q.borrow_limit(tenant)) {
            cap_violated.store(true, std::memory_order_relaxed);
          }
        }
        for (const auto& grant : held) q.release(t, grant);
      });
    }
  }
  EXPECT_FALSE(cap_violated.load());
  for (std::size_t i = 0; i < kTenants; ++i) {
    EXPECT_EQ(q.borrowed(i), 0u) << "tenant " << i << " leaked borrow";
    EXPECT_EQ(drain(q.child(i)), kChildTokens) << "child " << i;
  }
  EXPECT_EQ(drain(q.parent()), kParentTokens)
      << "parent pool was not conserved across the run";
}

// Cold tenants must be structurally immune to a hot tenant saturating its
// cap: with the budget sized one acquire below the parent pool, an in-cap
// reservation always finds its tokens, so the cold tenant's single-token
// borrows never fail even while hot threads hammer the parent.
TEST(QuotaHierarchy, HotTenantCannotStarveAColdTenant) {
  QuotaHierarchy q(base_config({BackendKind::kBatchedNetwork, false}, 9, 8),
                   {{.initial_tokens = 0, .weight = 3},
                    {.initial_tokens = 0, .weight = 1}});
  ASSERT_GE(q.borrow_limit(1), 1u);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> cold_rejects{0};
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < 3; ++t) {
      workers.emplace_back([&, t] {  // hot tenant 0, hints 0..2
        std::vector<QuotaHierarchy::Grant> held;
        while (!stop.load(std::memory_order_relaxed)) {
          if (held.size() >= 2) {
            q.release(t, held.back());
            held.pop_back();
          }
          const auto grant = q.acquire(t, 0, 2);
          if (grant.admitted) held.push_back(grant);
        }
        for (const auto& grant : held) q.release(t, grant);
      });
    }
    workers.emplace_back([&] {  // cold tenant 1, hint 3
      for (int i = 0; i < 3000; ++i) {
        const auto grant = q.acquire(3, 1, 1);
        if (!grant.admitted) {
          cold_rejects.fetch_add(1, std::memory_order_relaxed);
        } else {
          q.release(3, grant);
        }
      }
      stop.store(true);
    });
  }
  EXPECT_EQ(cold_rejects.load(), 0u)
      << "a hot tenant starved a cold tenant's in-cap borrow";
  EXPECT_EQ(drain(q.parent()), 9u);
}

}  // namespace
}  // namespace cnet::svc
