// bench::run_loadgen's minimum-iterations floor: a measurement window that
// closes before a thread has run (routine on a loaded CI box with smoke
// windows) must not produce zero-op tallies — every thread tops up to the
// floor after the window, so smoke-mode tables and the invariant checks
// computed over them can never pass vacuously on an empty run.
#include <gtest/gtest.h>

#include <atomic>

#include "support/loadgen.hpp"

namespace cnet::bench {
namespace {

TEST(LoadGen, FloorGuaranteesMeasuredOpsInAZeroLengthWindow) {
  // The degenerate window: zero seconds of measurement. Without the floor
  // this frequently yields total_ops == 0; with it, every thread must
  // deliver its quota.
  LoadGenConfig cfg;
  cfg.threads = 3;
  cfg.warmup_seconds = 0.0;
  cfg.measure_seconds = 0.0;
  cfg.min_ops_per_thread = 32;
  cfg.latency_sample_every = 0;
  std::atomic<std::uint64_t> calls{0};
  const auto result = run_loadgen(cfg, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return std::uint64_t{1};
  });
  EXPECT_EQ(result.threads, 3u);
  EXPECT_GE(result.total_ops, 3u * 32u);
  EXPECT_GE(result.min_thread_ops, 32u) << "a thread stopped below the floor";
  EXPECT_GT(result.seconds, 0.0) << "rate would divide by zero";
  EXPECT_GE(calls.load(), result.total_ops);
}

TEST(LoadGen, DefaultFloorIsOneOpPerThread) {
  LoadGenConfig cfg;
  cfg.threads = 2;
  cfg.warmup_seconds = 0.0;
  cfg.measure_seconds = 0.0;
  cfg.latency_sample_every = 0;
  const auto result = run_loadgen(cfg, [&](std::size_t) {
    return std::uint64_t{1};
  });
  EXPECT_GE(result.min_thread_ops, 1u);
  EXPECT_GE(result.total_ops, 2u);
}

TEST(LoadGen, NormalWindowsStillMeasureThroughput) {
  // A sanity run with a real window: ops flow and the rate is positive.
  LoadGenConfig cfg;
  cfg.threads = 2;
  cfg.warmup_seconds = 0.01;
  cfg.measure_seconds = 0.05;
  cfg.min_ops_per_thread = 1;
  cfg.latency_sample_every = 16;
  const auto result = run_loadgen(cfg, [&](std::size_t) {
    return std::uint64_t{2};  // 2 logical ops per call
  });
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_GT(result.ops_per_sec, 0.0);
  EXPECT_TRUE(result.has_latency);
  EXPECT_LE(result.min_thread_ops, result.max_thread_ops);
}

}  // namespace
}  // namespace cnet::bench
