// Aharonson–Attiya constructibility condition (paper §1.4.2).
#include "cnet/topology/feasibility.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cnet::topo {
namespace {

using V = std::vector<std::uint64_t>;

TEST(PrimeFactors, SmallCases) {
  EXPECT_EQ(prime_factors(1), V{});
  EXPECT_EQ(prime_factors(2), V{2});
  EXPECT_EQ(prime_factors(12), (V{2, 2, 3}));
  EXPECT_EQ(prime_factors(97), V{97});
  EXPECT_EQ(prime_factors(360), (V{2, 2, 2, 3, 3, 5}));
}

TEST(PrimeFactors, LargePrime) {
  EXPECT_EQ(prime_factors(1'000'003), V{1'000'003});
}

TEST(PrimeFactors, RejectsZero) {
  EXPECT_THROW((void)prime_factors(0), std::invalid_argument);
}

TEST(Feasibility, PowerOfTwoWidthsFromTwoTwoBalancers) {
  const V b22 = {2};
  for (const std::uint64_t w : {2u, 4u, 8u, 64u, 1024u}) {
    EXPECT_TRUE(counting_width_feasible(w, b22)) << w;
  }
}

TEST(Feasibility, WidthSixImpossibleFromTwoTwoBalancers) {
  // The classic instance: prime 3 divides 6 but no (·,2)-balancer width.
  const V b22 = {2};
  EXPECT_FALSE(counting_width_feasible(6, b22));
  EXPECT_EQ(infeasibility_witnesses(6, b22), V{3});
}

TEST(Feasibility, AddingATripleBalancerFixesIt) {
  const V widths = {2, 3};
  EXPECT_TRUE(counting_width_feasible(6, widths));
  EXPECT_TRUE(counting_width_feasible(12, widths));
  EXPECT_FALSE(counting_width_feasible(10, widths));  // 5 uncovered
}

TEST(Feasibility, PapersFamilyIsFeasible) {
  // C(w, t): (2,2)- and (2,2p)-balancers; output width t = p·2^k. Every
  // prime factor of t divides 2 or 2p.
  for (const std::uint64_t p : {1u, 2u, 3u, 5u, 6u}) {
    for (const std::uint64_t w : {2u, 8u, 32u}) {
      const V widths = {2, 2 * p};
      EXPECT_TRUE(counting_width_feasible(p * w, widths))
          << "p=" << p << " w=" << w;
    }
  }
}

TEST(Feasibility, FigureOneBalancer) {
  // A (4,6)-balancer alone supports width-6 counting (6 | 6) but not
  // width 25.
  const V widths = {6};
  EXPECT_TRUE(counting_width_feasible(6, widths));
  EXPECT_TRUE(counting_width_feasible(12, widths));
  EXPECT_FALSE(counting_width_feasible(25, widths));
  EXPECT_EQ(infeasibility_witnesses(25, widths), V{5});
}

TEST(Feasibility, WidthOneIsAlwaysFeasible) {
  EXPECT_TRUE(counting_width_feasible(1, V{}));
}

TEST(Feasibility, MultipleWitnessesReported) {
  EXPECT_EQ(infeasibility_witnesses(15, V{2}), (V{3, 5}));
}

}  // namespace
}  // namespace cnet::topo
