// Ablation (§1.3.2 / §3.3): replacing M(t, w/2) with the bitonic merger
// keeps the network counting but makes its depth grow with t.
#include "cnet/core/ablation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/core/counting.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/prng.hpp"

namespace cnet::core {
namespace {

TEST(Ablation, RejectsNonPowerOfTwoT) {
  EXPECT_THROW((void)make_counting_bitonic_merge(4, 12),
               std::invalid_argument);
  EXPECT_THROW((void)make_counting_bitonic_merge(3, 8),
               std::invalid_argument);
}

TEST(Ablation, DepthMatchesRecurrence) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u}) {
    for (std::size_t t = w; t <= 8 * w; t *= 2) {
      const auto net = make_counting_bitonic_merge(w, t);
      EXPECT_EQ(net.depth(), counting_bitonic_merge_depth(w, t))
          << "w=" << w << " t=" << t;
    }
  }
}

TEST(Ablation, StillCountsExhaustivelySmall) {
  for (const auto& [w, t] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {2, 4}, {4, 4}, {4, 8}, {8, 8}, {8, 16}}) {
    const auto net = make_counting_bitonic_merge(w, t);
    EXPECT_FALSE(topo::check_counting_exhaustive(net, 3).has_value())
        << "w=" << w << " t=" << t;
  }
}

TEST(Ablation, StillCountsRandomizedLarger) {
  util::Xoshiro256 rng(0xAB1A);
  for (const auto& [w, t] : std::vector<std::pair<std::size_t, std::size_t>>{
           {16, 16}, {16, 64}, {32, 128}}) {
    const auto net = make_counting_bitonic_merge(w, t);
    EXPECT_FALSE(topo::check_counting_random(net, 200, 40, rng).has_value())
        << "w=" << w << " t=" << t;
  }
}

// The headline structural claim: the ablated network is never shallower
// than C(w,t) (it keeps the ladder but pays lg t per merge level), and its
// depth grows with every doubling of t while C(w,t)'s stays flat.
TEST(Ablation, DepthGrowsWithTUnlikeTheRealConstruction) {
  for (const std::size_t w : {4u, 8u, 16u}) {
    const auto base = make_counting(w, w).depth();
    EXPECT_GE(make_counting_bitonic_merge(w, w).depth(), base);
    std::size_t prev = base;
    for (std::size_t t = 2 * w; t <= 16 * w; t *= 2) {
      const auto ablated = make_counting_bitonic_merge(w, t).depth();
      const auto ours = make_counting(w, t).depth();
      EXPECT_EQ(ours, base) << "C(w,t) depth must not depend on t";
      EXPECT_GT(ablated, prev) << "ablated depth must grow with t";
      prev = ablated;
    }
  }
}

TEST(Ablation, MoreBalancersThanRealConstruction) {
  for (const std::size_t w : {8u, 16u}) {
    for (std::size_t t = 2 * w; t <= 8 * w; t *= 2) {
      EXPECT_GT(make_counting_bitonic_merge(w, t).num_balancers(),
                make_counting(w, t).num_balancers())
          << "w=" << w << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace cnet::core
