// Mixed-operation stress on one NetworkCounter: concurrent fetch_increment,
// antitoken fetch_decrement, and fetch_increment_batch interleavings. The
// paper-level guarantee under test: at quiescence the net outstanding set
// (values incremented out minus values reclaimed) is exactly the gap-free,
// duplicate-free prefix {0..c-1} (paper §1.4.2 net-balance semantics).
// A second suite stresses the bounded try_fetch_decrement, whose weaker
// contract (counts conserved, no duplicates, but not necessarily a prefix)
// is what svc::NetTokenBucket relies on. A third suite wraps the counter in
// the svc::ElimCounter front-end and replays the ungated mix: eliminated
// pairs exchange synthesized values that must cancel exactly, so the same
// conservation assertions hold with collisions happening before the
// network.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/svc/elimination.hpp"
#include "cnet/util/prng.hpp"

namespace cnet::rt {
namespace {

struct ThreadLog {
  std::vector<std::int64_t> incs;
  std::vector<std::int64_t> decs;
};

// Runs `threads` workers over `counter`, each randomly mixing single
// increments, k-token batches, and decrements. Decrements are gated on the
// worker's own net surplus, so the global outstanding count never goes
// negative (the fetch_decrement precondition) at any interleaving.
std::vector<ThreadLog> run_mixed(NetworkCounter& counter, std::size_t threads,
                                 std::size_t ops_per_thread,
                                 std::uint64_t seed) {
  std::vector<ThreadLog> logs(threads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(seed + t);
        ThreadLog& log = logs[t];
        std::int64_t surplus = 0;
        std::int64_t batch[16];
        for (std::size_t i = 0; i < ops_per_thread; ++i) {
          const std::uint64_t pick = rng.below(8);
          if (pick < 3 && surplus > 0) {
            log.decs.push_back(counter.fetch_decrement(t));
            --surplus;
          } else if (pick < 6) {
            log.incs.push_back(counter.fetch_increment(t));
            ++surplus;
          } else {
            const std::size_t k = 2 + rng.below(15);  // 2..16
            counter.fetch_increment_batch(t, k, batch);
            log.incs.insert(log.incs.end(), batch, batch + k);
            surplus += static_cast<std::int64_t>(k);
          }
        }
      });
    }
  }
  return logs;
}

// Multiset difference incs - decs; fails the test if some dec value was
// never handed out.
std::vector<std::int64_t> outstanding_of(const std::vector<ThreadLog>& logs) {
  std::map<std::int64_t, std::int64_t> net;
  for (const auto& log : logs) {
    for (const auto v : log.incs) ++net[v];
    for (const auto v : log.decs) --net[v];
  }
  std::vector<std::int64_t> out;
  for (const auto& [value, count] : net) {
    EXPECT_GE(count, 0) << "value " << value
                        << " reclaimed more often than handed out";
    for (std::int64_t i = 0; i < count; ++i) out.push_back(value);
  }
  return out;
}

void expect_exact_prefix(const std::vector<std::int64_t>& outstanding) {
  for (std::size_t i = 0; i < outstanding.size(); ++i) {
    ASSERT_EQ(outstanding[i], static_cast<std::int64_t>(i))
        << "outstanding set is not the prefix {0..c-1} at position " << i;
  }
}

TEST(StressMixed, QuiescentOutstandingSetIsExactPrefix) {
  BatchedNetworkCounter counter(core::make_counting(8, 24), "C(8,24)");
  const auto logs = run_mixed(counter, 8, 1200, 0x51A1);
  expect_exact_prefix(outstanding_of(logs));
}

TEST(StressMixed, CasDisciplineKeepsThePrefixProperty) {
  BatchedNetworkCounter counter(core::make_counting(4, 8), "C(4,8)/cas",
                                BalancerMode::kCasRetry);
  const auto logs = run_mixed(counter, 6, 800, 0x51A2);
  expect_exact_prefix(outstanding_of(logs));
}

TEST(StressMixed, DefaultBatchLoopInterleavesWithAntitokens) {
  // Plain NetworkCounter: fetch_increment_batch is the inherited per-token
  // loop, racing against antitokens on the same balancers.
  NetworkCounter counter(core::make_counting(8, 16), "C(8,16)");
  const auto logs = run_mixed(counter, 6, 800, 0x51A3);
  expect_exact_prefix(outstanding_of(logs));
}

// --- bounded try_fetch_decrement ------------------------------------------

TEST(StressTryDecrement, NeverReclaimsMoreThanHandedOutAndNoDuplicates) {
  BatchedNetworkCounter counter(core::make_counting(8, 24), "C(8,24)");
  constexpr std::size_t kThreads = 8, kOps = 1500;
  std::vector<ThreadLog> logs(kThreads);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(0x7D3C + t);
        ThreadLog& log = logs[t];
        std::int64_t reclaimed = 0;
        for (std::size_t i = 0; i < kOps; ++i) {
          // Ungated: try_fetch_decrement must bound itself at empty.
          if (rng.below(2) == 0) {
            if (counter.try_fetch_decrement(t, &reclaimed)) {
              log.decs.push_back(reclaimed);
            }
          } else {
            log.incs.push_back(counter.fetch_increment(t));
          }
        }
      });
    }
  }
  std::size_t incs = 0, decs = 0;
  for (const auto& log : logs) {
    incs += log.incs.size();
    decs += log.decs.size();
  }
  ASSERT_LE(decs, incs);
  // outstanding_of() also checks decs ⊆ incs as multisets; on top of that,
  // no value may be outstanding twice (no duplicates), though with failed
  // antitokens absorbed in the balancers the set need not be a prefix.
  const auto outstanding = outstanding_of(logs);
  ASSERT_EQ(outstanding.size(), incs - decs);
  ASSERT_EQ(std::adjacent_find(outstanding.begin(), outstanding.end()),
            outstanding.end())
      << "some value is outstanding twice";
}

TEST(StressTryDecrement, BulkClaimsConserveCountsUnderConcurrency) {
  // try_fetch_decrement_n has no reclaimed-value output, so the property
  // under stress is pure conservation: claims never exceed increments, and
  // a quiescent drain recovers exactly what was left.
  BatchedNetworkCounter counter(core::make_counting(8, 16), "C(8,16)");
  constexpr std::size_t kThreads = 6, kOps = 1200;
  std::vector<std::uint64_t> incs(kThreads, 0), decs(kThreads, 0);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(0xB01C + t);
        for (std::size_t i = 0; i < kOps; ++i) {
          if (rng.below(2) == 0) {
            decs[t] += counter.try_fetch_decrement_n(t, 1 + rng.below(8));
          } else {
            (void)counter.fetch_increment(t);
            ++incs[t];
          }
        }
      });
    }
  }
  std::uint64_t total_incs = 0, total_decs = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    total_incs += incs[t];
    total_decs += decs[t];
  }
  ASSERT_LE(total_decs, total_incs);
  std::uint64_t drained = 0, grabbed = 0;
  while ((grabbed = counter.try_fetch_decrement_n(0, 5)) != 0) {
    drained += grabbed;
  }
  EXPECT_EQ(total_decs + drained, total_incs);
}

// --- elimination front-end -------------------------------------------------

// Ungated mixed stress through svc::ElimCounter: single increments (which
// deposit in the exchange slots), k-token batch increments (catch-only),
// and single try-decrements (which wait briefly). Every op logs its value,
// so eliminated pairs — which report the same synthesized negative value on
// both sides — cancel in the inc-minus-dec multiset and the conservation
// argument is identical to the unwrapped counter's. (Bulk decrements return
// anonymous counts, not values; the count-only stress below covers them.)
std::vector<ThreadLog> run_elim_mixed(rt::Counter& counter,
                                      std::size_t threads,
                                      std::size_t ops_per_thread,
                                      std::uint64_t seed) {
  std::vector<ThreadLog> logs(threads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(seed + t);
        ThreadLog& log = logs[t];
        std::int64_t reclaimed = 0;
        std::int64_t batch[16];
        for (std::size_t i = 0; i < ops_per_thread; ++i) {
          switch (rng.below(6)) {
            case 0:
            case 1: {  // ungated single decrement (may pair or fall through)
              if (counter.try_fetch_decrement(t, &reclaimed)) {
                log.decs.push_back(reclaimed);
              }
              break;
            }
            case 2:
            case 3: {  // k-token batch increment (catch-only elimination)
              const std::size_t k = 2 + rng.below(15);  // 2..16
              counter.fetch_increment_batch(t, k, batch);
              log.incs.insert(log.incs.end(), batch, batch + k);
              break;
            }
            default: {  // single increment (deposits and spins)
              log.incs.push_back(counter.fetch_increment(t));
              break;
            }
          }
        }
      });
    }
  }
  return logs;
}

TEST(StressElimination, UngatedMixConservesValueMultisetsExactly) {
  svc::ElimCounter counter(
      std::make_unique<BatchedNetworkCounter>(core::make_counting(8, 16),
                                              "C(8,16)"),
      {.layer = {.slots = 2, .max_spins = 256},
       .inc_spins = 128,
       .dec_spins = 128});
  auto logs = run_elim_mixed(counter, 8, 1000, 0xE11A);

  // Quiescent drain through the wrapper (no waiters left, so every claim
  // falls through to the backing network): afterwards the outstanding
  // multiset must be exactly empty — elimination neither minted nor leaked
  // a single token.
  ThreadLog drain_log;
  std::int64_t reclaimed = 0;
  while (counter.try_fetch_decrement(0, &reclaimed)) {
    drain_log.decs.push_back(reclaimed);
  }
  logs.push_back(std::move(drain_log));
  EXPECT_TRUE(outstanding_of(logs).empty())
      << "drained counter still has outstanding values";
}

TEST(StressElimination, CountOnlyMixNeverOverReclaims) {
  // The bucket-shaped workload: batch refills against bulk consumes, all
  // catch-only or briefly-waiting, tracked purely as counts. The bound
  // under test is the svc guarantee: successful decrements never exceed
  // increments at the end, and a quiescent drain recovers the exact
  // difference.
  svc::ElimCounter counter(
      std::make_unique<BatchedNetworkCounter>(core::make_counting(8, 24),
                                              "C(8,24)"),
      {.layer = {.slots = 4, .max_spins = 256},
       .inc_spins = 64,
       .dec_spins = 64});
  constexpr std::size_t kThreads = 8, kOps = 1200;
  std::vector<std::uint64_t> incs(kThreads, 0), decs(kThreads, 0);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(0xE11B + t);
        std::int64_t batch[8];
        for (std::size_t i = 0; i < kOps; ++i) {
          switch (rng.below(4)) {
            case 0: {
              const std::size_t k = 1 + rng.below(8);
              counter.fetch_increment_batch(t, k, batch);
              incs[t] += k;
              break;
            }
            case 1: {
              decs[t] += counter.try_fetch_decrement_n(t, 1 + rng.below(8));
              break;
            }
            case 2: {
              if (counter.try_fetch_decrement(t)) ++decs[t];
              break;
            }
            default: {
              (void)counter.fetch_increment(t);
              ++incs[t];
              break;
            }
          }
        }
      });
    }
  }
  std::uint64_t total_incs = 0, total_decs = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    total_incs += incs[t];
    total_decs += decs[t];
  }
  ASSERT_LE(total_decs, total_incs);
  std::uint64_t drained = 0;
  for (std::uint64_t got;
       (got = counter.try_fetch_decrement_n(0, 16)) != 0;) {
    drained += got;
  }
  EXPECT_EQ(total_decs + drained, total_incs);
}

TEST(StressTryDecrement, SequentialEmptyPoolAlwaysFails) {
  NetworkCounter counter(core::make_counting(4, 8), "C(4,8)");
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(counter.try_fetch_decrement(static_cast<std::size_t>(i)));
  }
  // The absorbed antitokens cancel against later tokens: counts still add
  // up once tokens flow again.
  std::int64_t reclaimed = -1;
  for (int i = 0; i < 100; ++i) (void)counter.fetch_increment(i);
  std::size_t drained = 0;
  while (counter.try_fetch_decrement(drained, &reclaimed)) ++drained;
  EXPECT_EQ(drained, 100u);
}

}  // namespace
}  // namespace cnet::rt
