// svc::NetTokenBucket: envoy-style consume semantics (partial vs.
// all-or-nothing), and the core rate-limiter safety property — the bucket
// never over-admits: at every observation point, tokens handed out by
// consume() never exceed tokens pushed in by refill(), for every counter
// backend kind, under concurrent refillers and consumers.
#include "cnet/svc/net_token_bucket.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cnet/svc/backend.hpp"
#include "test_svc_util.hpp"

namespace cnet::svc {
namespace {

NetTokenBucket make_bucket(BackendKind kind, NetTokenBucket::Config cfg) {
  return NetTokenBucket(make_counter(kind), cfg);
}

// Empties the bucket from a quiescent state and returns the token count.
std::uint64_t drain(NetTokenBucket& bucket) {
  std::uint64_t total = 0;
  while (bucket.consume(0, 1, kPartialOk) == 1) ++total;
  return total;
}

class BucketBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BucketBackends, SequentialConsumeSemantics) {
  auto bucket = make_bucket(GetParam(), {.initial_tokens = 10});
  // All-or-nothing: a request larger than the pool consumes nothing.
  EXPECT_EQ(bucket.consume(0, 3, kAllOrNothing), 3u);
  EXPECT_EQ(bucket.consume(1, 20, kAllOrNothing), 0u);
  EXPECT_EQ(bucket.consume(2, 7, kAllOrNothing), 7u);  // the 20 left the pool intact
  EXPECT_EQ(bucket.consume(3, 1, kPartialOk), 0u);   // empty
  // Partial: a short pool yields what it has.
  bucket.refill(0, 5);
  EXPECT_EQ(bucket.consume(4, 3, kPartialOk), 3u);
  EXPECT_EQ(bucket.consume(5, 9, kPartialOk), 2u);
  EXPECT_EQ(drain(bucket), 0u);
}

TEST_P(BucketBackends, NeverOverAdmitsUnderConcurrency) {
  auto bucket = make_bucket(GetParam(), {});
  constexpr std::size_t kConsumers = 5;
  constexpr std::uint64_t kRefillRounds = 400, kTokensPerRound = 16;
  // `refilled` is published BEFORE tokens enter the pool and `admitted`
  // AFTER consume returns, so admitted <= refilled is exact at every
  // sampling point, not just at quiescence.
  std::atomic<std::uint64_t> refilled{0}, admitted{0};
  std::atomic<bool> stop{false}, over_admitted{false};
  std::vector<std::uint64_t> per_thread(kConsumers, 0);
  {
    std::vector<std::jthread> threads;
    threads.emplace_back([&] {  // refiller (hint 0)
      for (std::uint64_t r = 0; r < kRefillRounds; ++r) {
        refilled.fetch_add(kTokensPerRound);
        bucket.refill(0, kTokensPerRound);
      }
      stop.store(true);
    });
    for (std::size_t t = 0; t < kConsumers; ++t) {
      threads.emplace_back([&, t] {  // consumers (hints 1..)
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t want = 1 + (per_thread[t] % 4);
          const std::uint64_t got = bucket.consume(
              t + 1, want, (t % 2 == 0) ? kPartialOk : kAllOrNothing);
          if (got != 0) {
            admitted.fetch_add(got);
            per_thread[t] += got;
          }
        }
      });
    }
    threads.emplace_back([&] {  // observer
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t a = admitted.load();
        // The pool's own RMWs are relaxed, so the refiller's `refilled`
        // update has no happens-before edge to a consumer's `admitted`
        // update; on weakly-ordered hardware `refilled` can lag a just-
        // observed `admitted` transiently. `refilled` is monotonic, so a
        // real over-admission persists: confirm before flagging.
        bool violated = a > refilled.load();
        for (int retry = 0; violated && retry < 1000; ++retry) {
          std::this_thread::yield();
          violated = a > refilled.load();
        }
        if (violated) {
          over_admitted.store(true);
          return;
        }
        std::this_thread::yield();
      }
    });
  }
  EXPECT_FALSE(over_admitted.load()) << "bucket over-admitted mid-run";
  const std::uint64_t leftover = drain(bucket);
  EXPECT_LE(admitted.load(), refilled.load());
  // Conservation at quiescence: every refilled token was either admitted
  // or still in the pool.
  EXPECT_EQ(admitted.load() + leftover, refilled.load());
}

TEST_P(BucketBackends, AllOrNothingGrabsAreMultiplesOfCost) {
  auto bucket = make_bucket(GetParam(), {.initial_tokens = 1000});
  constexpr std::uint64_t kCost = 3;
  std::vector<std::uint64_t> grabs(4, 0);
  {
    std::vector<std::jthread> threads;
    for (std::size_t t = 0; t < grabs.size(); ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 200; ++i) {
          const std::uint64_t got = bucket.consume(t, kCost, kAllOrNothing);
          EXPECT_TRUE(got == 0 || got == kCost);
          grabs[t] += got;
        }
      });
    }
  }
  std::uint64_t total = 0;
  for (const auto g : grabs) total += g;
  EXPECT_EQ(total % kCost, 0u);
  EXPECT_EQ(total + drain(bucket), 1000u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BucketBackends,
                         ::testing::ValuesIn(kAllBackendKinds),
                         test::backend_param_name);

// Spec-level coverage (every pool kind, plain and elim+): the zero-token
// contract and the shortfall-refund path must behave identically on every
// composition the factory can produce.
class BucketSpecs : public ::testing::TestWithParam<BackendSpec> {};

TEST_P(BucketSpecs, ZeroTokenConsumeIsATrivialNoOp) {
  // Regression: consume(hint, 0, ...) was undefined by the bucket_consume
  // plan (AdmissionController only guards cost > 0 at its own layer). It
  // is now a defined no-op: returns 0, succeeds, and never touches the
  // backend — in both partial and all-or-nothing modes, even on an empty
  // pool.
  NetTokenBucket bucket(make_counter(GetParam()), {.initial_tokens = 4});
  const std::uint64_t traversals_before = bucket.pool().traversal_count();
  EXPECT_EQ(bucket.consume(0, 0, kAllOrNothing), 0u);
  EXPECT_EQ(bucket.consume(1, 0, kPartialOk), 0u);
  EXPECT_EQ(bucket.pool().traversal_count(), traversals_before)
      << "a zero-token consume reached the backend";
  EXPECT_EQ(drain(bucket), 4u);  // the pool is untouched
  // ... and on the now-empty pool as well.
  EXPECT_EQ(bucket.consume(0, 0, kAllOrNothing), 0u);
  EXPECT_EQ(bucket.consume(0, 0, kPartialOk), 0u);
}

TEST_P(BucketSpecs, ShortfallRefundConservesThePool) {
  // A storm of oversized all-or-nothing consumes: every call grabs the
  // partial pool and must put it back through the refund path, leaving
  // the pool bit-exact.
  NetTokenBucket bucket(make_counter(GetParam()), {.initial_tokens = 7});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(bucket.consume(i % 4, 100, kAllOrNothing), 0u);
  }
  EXPECT_EQ(drain(bucket), 7u) << "the refund path minted or lost tokens";
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, BucketSpecs,
                         ::testing::ValuesIn(test::all_pool_backend_specs()),
                         test::backend_spec_param_name);

// A backend without take-back support: consume must degrade to "always
// empty" rather than over-admit.
class NoTakebackCounter final : public rt::Counter {
 public:
  std::int64_t fetch_increment(std::size_t) override { return next_++; }
  std::string name() const override { return "no-takeback"; }

 private:
  std::int64_t next_ = 0;
};

TEST(NetTokenBucket, BackendWithoutTakebackNeverAdmits) {
  NetTokenBucket bucket(std::make_unique<NoTakebackCounter>(),
                        {.initial_tokens = 50});
  EXPECT_EQ(bucket.consume(0, 1, kPartialOk), 0u);
  EXPECT_EQ(bucket.consume(1, 5, kAllOrNothing), 0u);
}

TEST(NetTokenBucket, RejectsBadConfiguration) {
  EXPECT_THROW(NetTokenBucket(nullptr), std::invalid_argument);
  EXPECT_THROW(make_bucket(BackendKind::kCentralAtomic, {.refill_chunk = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      make_bucket(BackendKind::kCentralAtomic, {.refill_chunk = 10000}),
      std::invalid_argument);
}

TEST(NetTokenBucket, NameReflectsThePoolBackend) {
  auto bucket = make_bucket(BackendKind::kNetwork, {});
  EXPECT_EQ(bucket.name(), "bucket·C(8,24)");
}

}  // namespace
}  // namespace cnet::svc
