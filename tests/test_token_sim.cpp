// Token simulator: stall accounting semantics, Fetch&Increment correctness
// (values are exactly 0..m-1), agreement with the quiescent evaluator.
#include "cnet/sim/token_sim.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/difftree.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/sim/schedulers.hpp"
#include "cnet/topology/quiescent.hpp"
#include "test_util.hpp"

namespace cnet::sim {
namespace {

topo::Topology single22() {
  topo::Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [top, bottom] = b.add_balancer2(in[0], in[1]);
  const topo::WireId outs[2] = {top, bottom};
  b.set_outputs(outs);
  return std::move(b).build();
}

TEST(TokenSim, SingleTokenNoStalls) {
  const auto net = single22();
  SimConfig cfg{.concurrency = 1, .total_tokens = 1};
  RoundRobinScheduler sched;
  const auto res = simulate(net, cfg, sched);
  EXPECT_EQ(res.total_stalls, 0u);
  EXPECT_EQ(res.tokens, 1u);
  ASSERT_EQ(res.counter_values.size(), 1u);
  EXPECT_EQ(res.counter_values[0], 0);
}

TEST(TokenSim, SequentialTokensNeverStall) {
  // One process: at most one token in flight, so no one ever waits.
  const auto net = core::make_counting(4, 8);
  SimConfig cfg{.concurrency = 1, .total_tokens = 64};
  RandomScheduler sched(1);
  const auto res = simulate(net, cfg, sched);
  EXPECT_EQ(res.total_stalls, 0u);
  EXPECT_EQ(res.max_queue, 1u);
}

TEST(TokenSim, TwoTokensOneBalancerExactStalls) {
  // Both processes enter the same balancer; whoever fires first stalls the
  // other exactly once.
  topo::Builder b;
  const auto in = b.add_network_inputs(1);
  b.set_outputs(b.add_balancer(in, 2));
  const auto net = std::move(b).build();
  SimConfig cfg{.concurrency = 2, .total_tokens = 2};
  RoundRobinScheduler sched;
  const auto res = simulate(net, cfg, sched);
  EXPECT_EQ(res.total_stalls, 1u);
  EXPECT_EQ(res.max_queue, 2u);
}

TEST(TokenSim, ConvoyOfNAtOneBalancerQuadraticStalls) {
  // n tokens queued at one (1,2)-balancer drain with n(n-1)/2 stalls.
  topo::Builder b;
  const auto in = b.add_network_inputs(1);
  b.set_outputs(b.add_balancer(in, 2));
  const auto net = std::move(b).build();
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    SimConfig cfg{.concurrency = n, .total_tokens = n};
    WavefrontConvoyScheduler sched;
    const auto res = simulate(net, cfg, sched);
    EXPECT_EQ(res.total_stalls, n * (n - 1) / 2) << n;
  }
}

TEST(TokenSim, CounterValuesAreExactRange) {
  const auto net = core::make_counting(8, 16);
  for (const auto kind : {SchedulerKind::kRandom, SchedulerKind::kRoundRobin,
                          SchedulerKind::kWavefrontConvoy}) {
    SimConfig cfg{.concurrency = 13, .total_tokens = 509};
    auto sched = make_scheduler(kind, 7);
    const auto res = simulate(net, cfg, *sched);
    EXPECT_TRUE(test::is_exact_range(res.counter_values))
        << scheduler_name(kind);
  }
}

TEST(TokenSim, OutputCountsMatchQuiescentEvaluator) {
  // After the simulation the per-output token counts must equal the
  // quiescent evaluation of the per-input injection counts.
  const auto net = core::make_counting(4, 8);
  const std::size_t n = 5, m = 137;
  SimConfig cfg{.concurrency = n, .total_tokens = m};
  RandomScheduler sched(99);
  const auto res = simulate(net, cfg, sched);
  (void)n;
  EXPECT_EQ(seq::sum(res.input_counts), static_cast<seq::Value>(m));
  EXPECT_EQ(res.output_counts, topo::evaluate(net, res.input_counts));
}

TEST(TokenSim, StallsPerLayerSumToTotal) {
  const auto net = baselines::make_bitonic(8);
  SimConfig cfg{.concurrency = 16, .total_tokens = 1024};
  WavefrontConvoyScheduler sched;
  const auto res = simulate(net, cfg, sched);
  const std::uint64_t by_layer = std::accumulate(
      res.stalls_per_layer.begin(), res.stalls_per_layer.end(), 0ULL);
  const std::uint64_t by_balancer = std::accumulate(
      res.stalls_per_balancer.begin(), res.stalls_per_balancer.end(), 0ULL);
  EXPECT_EQ(by_layer, res.total_stalls);
  EXPECT_EQ(by_balancer, res.total_stalls);
  EXPECT_GT(res.total_stalls, 0u);
}

TEST(TokenSim, DiffractingTreeSingleEntryWorks) {
  const auto net = baselines::make_diffracting_tree(8);
  SimConfig cfg{.concurrency = 6, .total_tokens = 200};
  RandomScheduler sched(3);
  const auto res = simulate(net, cfg, sched);
  EXPECT_TRUE(test::is_exact_range(res.counter_values));
}

TEST(TokenSim, MoreProcessesThanTokens) {
  const auto net = single22();
  SimConfig cfg{.concurrency = 64, .total_tokens = 5};
  RoundRobinScheduler sched;
  const auto res = simulate(net, cfg, sched);
  EXPECT_TRUE(test::is_exact_range(res.counter_values));
}

TEST(TokenSim, RejectsZeroTokensOrProcesses) {
  const auto net = single22();
  RoundRobinScheduler sched;
  SimConfig no_tokens{.concurrency = 1, .total_tokens = 0};
  EXPECT_THROW((void)simulate(net, no_tokens, sched), std::invalid_argument);
  SimConfig no_procs{.concurrency = 0, .total_tokens = 1};
  EXPECT_THROW((void)simulate(net, no_procs, sched), std::invalid_argument);
}

TEST(TokenSim, DeterministicForSameSeed) {
  const auto net = core::make_counting(8, 8);
  SimConfig cfg{.concurrency = 9, .total_tokens = 300};
  RandomScheduler s1(123), s2(123);
  const auto r1 = simulate(net, cfg, s1);
  const auto r2 = simulate(net, cfg, s2);
  EXPECT_EQ(r1.total_stalls, r2.total_stalls);
  EXPECT_EQ(r1.counter_values, r2.counter_values);
}

TEST(TokenSim, CollectionFlagsRespected) {
  const auto net = single22();
  SimConfig cfg{.concurrency = 2, .total_tokens = 10,
                .collect_counter_values = false,
                .collect_per_balancer = false};
  RoundRobinScheduler sched;
  const auto res = simulate(net, cfg, sched);
  EXPECT_TRUE(res.counter_values.empty());
  EXPECT_TRUE(res.stalls_per_balancer.empty());
  EXPECT_EQ(seq::sum(res.output_counts), 10);
}

}  // namespace
}  // namespace cnet::sim
