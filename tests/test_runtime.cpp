// Concurrent runtime: compiled networks, network counters under real
// threads, both balancer disciplines.
#include "cnet/runtime/network_counter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/compiled_network.hpp"
#include "test_util.hpp"

namespace cnet::rt {
namespace {

// Runs `threads` workers, each performing `per_thread` fetch_increments,
// and returns all values obtained.
std::vector<std::int64_t> hammer(Counter& counter, std::size_t threads,
                                 std::size_t per_thread) {
  std::vector<std::vector<std::int64_t>> got(threads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        got[t].reserve(per_thread);
        for (std::size_t i = 0; i < per_thread; ++i) {
          got[t].push_back(counter.fetch_increment(t));
        }
      });
    }
  }
  std::vector<std::int64_t> all;
  for (auto& v : got) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

TEST(CompiledNetwork, SequentialTraversalMatchesBalancerSemantics) {
  // One (2,4)-balancer: successive tokens exit wires 0,1,2,3,0,...
  topo::Builder b;
  const auto in = b.add_network_inputs(2);
  b.set_outputs(b.add_balancer(in, 4));
  const auto net = std::move(b).build();
  CompiledNetwork cn(net);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t expect = 0; expect < 4; ++expect) {
      EXPECT_EQ(cn.traverse(0, BalancerMode::kFetchAdd, nullptr), expect);
    }
  }
}

TEST(CompiledNetwork, ResetRestoresInitialState) {
  topo::Builder b;
  const auto in = b.add_network_inputs(2);
  b.set_outputs(b.add_balancer(in, 2));
  const auto net = std::move(b).build();
  CompiledNetwork cn(net);
  EXPECT_EQ(cn.traverse(0, BalancerMode::kFetchAdd, nullptr), 0u);
  EXPECT_EQ(cn.traverse(0, BalancerMode::kFetchAdd, nullptr), 1u);
  cn.reset();
  EXPECT_EQ(cn.traverse(0, BalancerMode::kFetchAdd, nullptr), 0u);
}

TEST(CompiledNetwork, CasModeCountsNoStallsWhenSequential) {
  const auto net = core::make_counting(4, 4);
  CompiledNetwork cn(net);
  std::uint64_t stalls = 0;
  for (int i = 0; i < 100; ++i) {
    (void)cn.traverse(static_cast<std::size_t>(i) % 4,
                      BalancerMode::kCasRetry, &stalls);
  }
  EXPECT_EQ(stalls, 0u);
}

TEST(NetworkCounter, SequentialValuesAreSequential) {
  NetworkCounter counter(core::make_counting(4, 8), "C(4,8)");
  for (std::int64_t expect = 0; expect < 200; ++expect) {
    EXPECT_EQ(counter.fetch_increment(static_cast<std::size_t>(expect) % 4),
              expect);
  }
}

struct CounterCase {
  const char* label;
  std::size_t w, t;
  BalancerMode mode;
};

class NetworkCounterThreads : public ::testing::TestWithParam<CounterCase> {};

TEST_P(NetworkCounterThreads, ConcurrentValuesAreExactRange) {
  const auto& param = GetParam();
  NetworkCounter counter(core::make_counting(param.w, param.t), param.label,
                         param.mode);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  auto values = hammer(counter, kThreads, kPerThread);
  ASSERT_EQ(values.size(), kThreads * kPerThread);
  EXPECT_TRUE(test::is_exact_range(
      std::vector<seq::Value>(values.begin(), values.end())));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkCounterThreads,
    ::testing::Values(CounterCase{"C44_fa", 4, 4, BalancerMode::kFetchAdd},
                      CounterCase{"C48_fa", 4, 8, BalancerMode::kFetchAdd},
                      CounterCase{"C816_fa", 8, 16, BalancerMode::kFetchAdd},
                      CounterCase{"C88_cas", 8, 8, BalancerMode::kCasRetry},
                      CounterCase{"C1648_fa", 16, 48,
                                  BalancerMode::kFetchAdd}),
    [](const auto& pinfo) { return std::string(pinfo.param.label); });

TEST(NetworkCounter, BitonicBackendAlsoCounts) {
  NetworkCounter counter(baselines::make_bitonic(8), "bitonic(8)");
  auto values = hammer(counter, 6, 1500);
  EXPECT_TRUE(test::is_exact_range(
      std::vector<seq::Value>(values.begin(), values.end())));
}

TEST(NetworkCounter, PeriodicBackendAlsoCounts) {
  NetworkCounter counter(baselines::make_periodic(8), "periodic(8)");
  auto values = hammer(counter, 6, 1500);
  EXPECT_TRUE(test::is_exact_range(
      std::vector<seq::Value>(values.begin(), values.end())));
}

TEST(NetworkCounter, StallCountIsZeroForFetchAdd) {
  NetworkCounter counter(core::make_counting(4, 4), "C(4,4)");
  (void)hammer(counter, 4, 500);
  EXPECT_EQ(counter.stall_count(), 0u);
}

TEST(NetworkCounter, NameAndWidthsExposed) {
  NetworkCounter counter(core::make_counting(4, 12), "C(4,12)");
  EXPECT_EQ(counter.name(), "C(4,12)");
  EXPECT_EQ(counter.width_in(), 4u);
  EXPECT_EQ(counter.width_out(), 12u);
}

}  // namespace
}  // namespace cnet::rt
