// svc::ReconfigEngine and its consumers: the staged-commit protocol itself
// (version stamps, quiescent migration, retired-state lifetime), the
// NetTokenBucket live respec (exact token migration across backend specs,
// the batch_divisor finally reaching the backend's own batch size), the
// QuotaHierarchy live reweigh (whole-vector limit publish, in-flight
// grants release-exact), and the concurrency hammer — consume/refill
// threads racing stage/commit threads with exact conservation and
// never-over-admit checked at quiescence (TSan concurrency label).
#include "cnet/svc/reconfig.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "cnet/svc/backend.hpp"
#include "cnet/svc/net_token_bucket.hpp"
#include "cnet/svc/overload.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/svc/quota.hpp"

namespace cnet::svc {
namespace {

// ---------------------------------------------------------------- engine

struct Box {
  explicit Box(int v) : value(v) {}
  int value;
};

TEST(ReconfigEngine, VersionStartsAtOneAndBumpsPerCommit) {
  ReconfigEngine<Box> engine(std::make_unique<Box>(1));
  EXPECT_EQ(engine.config_version(), 1u);
  EXPECT_EQ(engine.commit(std::make_unique<Box>(2), [](Box&, Box&) {}), 2u);
  EXPECT_EQ(engine.commit(std::make_unique<Box>(3), [](Box&, Box&) {}), 3u);
  EXPECT_EQ(engine.config_version(), 3u);
  EXPECT_EQ(engine.num_retired(), 2u);
}

TEST(ReconfigEngine, ReadRunsAgainstThePublishedState) {
  ReconfigEngine<Box> engine(std::make_unique<Box>(7));
  EXPECT_EQ(engine.read(0, [](Box& b) { return b.value; }), 7);
  engine.commit(std::make_unique<Box>(9), [](Box&, Box&) {});
  EXPECT_EQ(engine.read(0, [](Box& b) { return b.value; }), 9);
  EXPECT_EQ(engine.current().value, 9);
}

TEST(ReconfigEngine, MigrationSeesOldAndNewStates) {
  ReconfigEngine<Box> engine(std::make_unique<Box>(40));
  engine.commit(std::make_unique<Box>(2), [](Box& old_state, Box& fresh) {
    fresh.value += old_state.value;  // exact hand-off of the old content
  });
  EXPECT_EQ(engine.current().value, 42);
}

TEST(ReconfigEngine, RetiredStatesOutliveTheCommit) {
  ReconfigEngine<Box> engine(std::make_unique<Box>(5));
  const Box& stale = engine.current();  // long-lived reference
  engine.commit(std::make_unique<Box>(6), [](Box&, Box&) {});
  EXPECT_EQ(stale.value, 5);  // valid, merely stale
  EXPECT_EQ(engine.current().value, 6);
}

TEST(ReconfigEngine, NullStagedStateThrows) {
  ReconfigEngine<Box> engine(std::make_unique<Box>(0));
  EXPECT_THROW(engine.commit(nullptr, [](Box&, Box&) {}), std::exception);
  EXPECT_THROW(ReconfigEngine<Box>(nullptr), std::exception);
}

// ---------------------------------------------------- bucket live respec

// Every pool spec the respec conservation sweep covers: the six kinds
// plain, plus the elimination front over the two contended favourites
// (mirrors the simulator's multicore_sweep_specs axis).
std::vector<BackendSpec> respec_sweep_specs() {
  std::vector<BackendSpec> specs;
  for (BackendKind kind : kPoolBackendKinds) specs.push_back({kind, false});
  specs.push_back({BackendKind::kCentralAtomic, true});
  specs.push_back({BackendKind::kBatchedNetwork, true});
  return specs;
}

std::uint64_t drain(NetTokenBucket& bucket) {
  std::uint64_t total = 0, got = 0;
  while ((got = bucket.consume(0, 64, kPartialOk)) != 0) {
    total += got;
  }
  return total;
}

TEST(BucketRespec, MigratesTheRemainingCountExactlyAcrossEverySpec) {
  NetTokenBucket bucket(
      make_counter(BackendSpec{BackendKind::kCentralAtomic, false}),
      NetTokenBucket::Config{/*initial_tokens=*/1000, /*refill_chunk=*/64});
  ASSERT_EQ(bucket.consume(0, 300, kAllOrNothing), 300u);
  std::uint64_t version = 1;
  for (const BackendSpec& spec : respec_sweep_specs()) {
    EXPECT_EQ(bucket.respec(0, {spec, BackendConfig{}, 32}), ++version)
        << backend_spec_name(spec);
    EXPECT_EQ(bucket.config_version(), version);
    EXPECT_EQ(bucket.refill_chunk(), 32u);
  }
  // 1000 - 300 survived every hop, bit-exact.
  EXPECT_EQ(drain(bucket), 700u);
  EXPECT_EQ(bucket.consume(0, 1, kPartialOk), 0u);
}

TEST(BucketRespec, RejectsAnOutOfRangeChunk) {
  NetTokenBucket bucket(make_counter(BackendKind::kCentralAtomic));
  EXPECT_THROW(bucket.respec(
                   0, {{BackendKind::kCentralAtomic, false}, {}, 0}),
               std::exception);
  EXPECT_THROW(
      bucket.respec(0, {{BackendKind::kCentralAtomic, false}, {}, 257}),
      std::exception);
  EXPECT_EQ(bucket.config_version(), 1u);  // nothing committed
}

TEST(BucketRespec, TelemetryNeverRegressesAcrossACommit) {
  NetTokenBucket bucket(
      make_counter(BackendSpec{BackendKind::kBatchedNetwork, false}),
      NetTokenBucket::Config{0, 64});
  bucket.refill(0, 512);  // 8 passes of 64 through the batched network
  const std::uint64_t traversals = bucket.traversal_count();
  const std::uint64_t passes = bucket.batch_pass_count();
  EXPECT_EQ(traversals, 512u);
  EXPECT_EQ(passes, 8u);
  bucket.respec(0, {{BackendKind::kCentralAtomic, false}, {}, 64});
  // Retired totals rolled up: the counts are still visible (migration may
  // add traversals on top, never subtract).
  EXPECT_GE(bucket.traversal_count(), traversals);
  EXPECT_GE(bucket.batch_pass_count(), passes);
  EXPECT_EQ(drain(bucket), 512u);
}

TEST(BucketRespec, BatchDivisorReachesTheRespeccedBackendEndToEnd) {
  // The acceptance check for the tentpole's motivating bug: under tier >= 1
  // the shrunken refill chunk must show up in the *backend's own* observed
  // tokens-per-pass, not just in caller arithmetic. batch_pass_count makes
  // that observable: traversals / passes == the chunk that actually
  // traversed the network.
  NetTokenBucket bucket(
      make_counter(BackendSpec{BackendKind::kBatchedNetwork, false}),
      NetTokenBucket::Config{0, 64});
  OverloadManager mgr;
  auto gauge = std::make_unique<GaugeMonitor>("script", 100);
  GaugeMonitor* script = gauge.get();
  mgr.add_monitor(std::move(gauge));
  bucket.attach_overload(&mgr);

  bucket.refill(0, 128);  // nominal: 2 passes of 64
  EXPECT_EQ(bucket.batch_pass_count(), 2u);

  script->set(55);  // tier 1: batch_divisor kicks in
  ASSERT_NE(mgr.evaluate(), OverloadTier::kNominal);
  const std::size_t divisor = mgr.actions().batch_divisor;
  ASSERT_GT(divisor, 1u);

  // Re-spec mid-overload: the staged pool is wired to the manager before
  // publish, so its first refill already runs divided.
  bucket.respec(0, {{BackendKind::kBatchedNetwork, false}, {}, 64});
  const std::uint64_t passes_before = bucket.batch_pass_count();
  const std::uint64_t traversals_before = bucket.traversal_count();
  bucket.refill(0, 128);
  const std::uint64_t passes = bucket.batch_pass_count() - passes_before;
  const std::uint64_t traversals =
      bucket.traversal_count() - traversals_before;
  EXPECT_EQ(traversals, 128u);  // count-conserving: same tokens
  EXPECT_EQ(passes, 128 / divided_chunk(64, divisor));  // smaller holds
  EXPECT_EQ(traversals / passes, divided_chunk(64, divisor));
  EXPECT_EQ(drain(bucket), 256u);
}

// --------------------------------------------------- quota live reweigh

QuotaHierarchy::Config small_quota_config() {
  QuotaHierarchy::Config cfg;
  cfg.parent = {BackendKind::kCentralAtomic, false};
  cfg.child = {BackendKind::kCentralAtomic, false};
  cfg.parent_initial_tokens = 100;
  cfg.borrow_budget = 100;
  return cfg;
}

TEST(QuotaReweigh, PublishesTheWholeLimitVectorAsOneUnit) {
  QuotaHierarchy quota(small_quota_config(),
                       {{.initial_tokens = 0, .weight = 1},
                        {.initial_tokens = 0, .weight = 1}});
  EXPECT_EQ(quota.config_version(), 1u);
  EXPECT_EQ(quota.borrow_limit(0), 50u);
  EXPECT_EQ(quota.borrow_limit(1), 50u);
  EXPECT_EQ(quota.reweigh(0, {3, 1}), 2u);
  EXPECT_EQ(quota.config_version(), 2u);
  EXPECT_EQ(quota.weight(0), 3u);
  EXPECT_EQ(quota.weight(1), 1u);
  EXPECT_EQ(quota.borrow_limit(0), 75u);
  EXPECT_EQ(quota.borrow_limit(1), 25u);
}

TEST(QuotaReweigh, RejectsAMalformedWeightVector) {
  QuotaHierarchy quota(small_quota_config(),
                       {{.initial_tokens = 0, .weight = 1},
                        {.initial_tokens = 0, .weight = 1}});
  EXPECT_THROW(quota.reweigh(0, {1}), std::exception);        // wrong size
  EXPECT_THROW(quota.reweigh(0, {1, 0}), std::exception);     // zero weight
  EXPECT_THROW(quota.reweigh(0, {1, 1, 1}), std::exception);  // wrong size
  EXPECT_EQ(quota.config_version(), 1u);
}

TEST(QuotaReweigh, InFlightGrantsStayReleaseExactUnderAShrunkenLimit) {
  QuotaHierarchy quota(small_quota_config(),
                       {{.initial_tokens = 0, .weight = 1},
                        {.initial_tokens = 0, .weight = 1}});
  // Tenant 0 borrows 40 of its 50-limit from the parent.
  const auto held = quota.acquire(0, 0, 40);
  ASSERT_TRUE(held.admitted);
  EXPECT_EQ(held.from_parent, 40u);
  EXPECT_EQ(quota.borrowed(0), 40u);

  // Shrink tenant 0's share to 10: the outstanding 40 is overage, never
  // clawed back (borrow_overage names it), and no new allowance exists.
  quota.reweigh(0, {1, 9});
  EXPECT_EQ(quota.borrow_limit(0), 10u);
  EXPECT_EQ(quota.borrowed(0), 40u);  // untouched
  EXPECT_EQ(borrow_overage(quota.borrowed(0), quota.borrow_limit(0)), 30u);
  EXPECT_FALSE(quota.acquire(0, 0, 1).admitted);  // child empty, no borrow

  // Tenant 1's new 90-limit binds immediately against the remaining pool.
  const auto sibling = quota.acquire(0, 1, 60);
  ASSERT_TRUE(sibling.admitted);
  EXPECT_EQ(sibling.from_parent, 60u);

  // Release is the exact undo recorded in the grant — under the *new*
  // generation, and the drained overage restores allowance.
  quota.release(0, held);
  EXPECT_EQ(quota.borrowed(0), 0u);
  const auto after = quota.acquire(0, 0, 10);
  ASSERT_TRUE(after.admitted);  // back inside the shrunken limit
  quota.release(0, after);
  quota.release(0, sibling);
  EXPECT_EQ(quota.borrowed(1), 0u);
  // Parent pool conserved exactly: everything released went back.
  std::uint64_t total = 0, got = 0;
  while ((got = quota.parent().consume(0, 64, kPartialOk)) != 0) total += got;
  EXPECT_EQ(total, 100u);
}

// ------------------------------------------------------ concurrency hammer

TEST(ReconfigHammer, BucketConservesTokensUnderConcurrentRespecs) {
  // N consume/refill threads race M stage/commit threads cycling the pool
  // through every sweep spec. At quiescence conservation must be exact:
  // refilled == consumed + remaining, and never-over-admit held throughout
  // (each consume was bounded by a pool that only ever held real tokens).
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kReconfigurers = 2;
  constexpr std::uint64_t kRounds = 2000;

  NetTokenBucket bucket(
      make_counter(BackendSpec{BackendKind::kCentralAtomic, false}),
      NetTokenBucket::Config{0, 32});
  const auto specs = respec_sweep_specs();

  std::atomic<std::uint64_t> consumed{0}, refilled{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kRounds; ++i) {
        bucket.refill(w, 3);
        refilled.fetch_add(3, std::memory_order_relaxed);
        consumed.fetch_add(bucket.consume(w, 2, kPartialOk),
                           std::memory_order_relaxed);
        consumed.fetch_add(bucket.consume(w, 5, kAllOrNothing),
                           std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t r = 0; r < kReconfigurers; ++r) {
    threads.emplace_back([&, r] {
      std::size_t i = r;
      while (!stop.load(std::memory_order_acquire)) {
        const BackendSpec& spec = specs[i++ % specs.size()];
        bucket.respec(kWorkers + r,
                      {spec, BackendConfig{}, 1 + (i * 37) % 256});
      }
    });
  }
  for (std::size_t w = 0; w < kWorkers; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t r = 0; r < kReconfigurers; ++r) {
    threads[kWorkers + r].join();
  }

  const std::uint64_t remaining = drain(bucket);
  EXPECT_EQ(refilled.load(), consumed.load() + remaining)
      << "tokens leaked or were minted across respec commits";
  EXPECT_GE(refilled.load(), consumed.load());  // never over-admitted
  EXPECT_GT(bucket.config_version(), 1u);  // the respec threads did commit
}

TEST(ReconfigHammer, QuotaStaysReleaseExactUnderConcurrentReweighs) {
  // Tenant threads acquire/release against live reweighs. At quiescence,
  // after every held grant is released: borrowed == 0 for all tenants and
  // the parent pool holds exactly its initial count again.
  constexpr std::size_t kTenants = 4;
  constexpr std::uint64_t kRounds = 1500;
  QuotaHierarchy::Config cfg;
  cfg.parent = {BackendKind::kCentralAtomic, false};
  cfg.child = {BackendKind::kCentralAtomic, false};
  cfg.parent_initial_tokens = 200;
  cfg.borrow_budget = 120;
  QuotaHierarchy quota(cfg, {{.initial_tokens = 10, .weight = 4},
                             {.initial_tokens = 10, .weight = 2},
                             {.initial_tokens = 10, .weight = 1},
                             {.initial_tokens = 10, .weight = 1}});

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      std::vector<QuotaHierarchy::Grant> held;
      for (std::uint64_t i = 0; i < kRounds; ++i) {
        const auto grant = quota.acquire(t, t, 1 + i % 7);
        if (grant.admitted) held.push_back(grant);
        if (held.size() > 4 || (!held.empty() && i % 3 == 0)) {
          quota.release(t, held.back());
          held.pop_back();
        }
      }
      for (const auto& grant : held) quota.release(t, grant);
    });
  }
  threads.emplace_back([&] {
    const std::vector<std::vector<std::uint64_t>> cycles = {
        {4, 2, 1, 1}, {1, 1, 1, 1}, {8, 1, 1, 2}, {1, 6, 2, 3}};
    std::size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      quota.reweigh(kTenants, cycles[i++ % cycles.size()]);
    }
  });
  for (std::size_t t = 0; t < kTenants; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  for (std::size_t t = 0; t < kTenants; ++t) {
    EXPECT_EQ(quota.borrowed(t), 0u) << "tenant " << t;
    // Child pool conserved: initial tokens all came home.
    std::uint64_t total = 0, got = 0;
    while ((got = quota.child(t).consume(t, 16, kPartialOk)) != 0) total += got;
    EXPECT_EQ(total, 10u) << "tenant " << t;
  }
  std::uint64_t parent_total = 0, got = 0;
  while ((got = quota.parent().consume(0, 64, kPartialOk)) != 0) {
    parent_total += got;
  }
  EXPECT_EQ(parent_total, 200u);
  EXPECT_GT(quota.config_version(), 1u);
}

}  // namespace
}  // namespace cnet::svc
