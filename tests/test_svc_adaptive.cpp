// svc::AdaptiveCounter: the central→network hot swap must preserve pool
// counts exactly (the migrated token count equals the cold backend's
// remaining pool), keep the bound-at-zero guarantee at every interleaving,
// and trigger off the LoadStats probe without any cooperation from callers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cnet/svc/adaptive.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/net_token_bucket.hpp"
#include "cnet/util/prng.hpp"

namespace cnet::svc {
namespace {

TEST(AdaptiveCounter, StartsColdAndBoundsAtZero) {
  AdaptiveCounter counter;
  EXPECT_FALSE(counter.switched());
  EXPECT_EQ(counter.name(), "adaptive·central-atomic");
  for (int i = 0; i < 10; ++i) (void)counter.fetch_increment(0);
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 100), 10u);
  EXPECT_FALSE(counter.try_fetch_decrement(0));
  EXPECT_FALSE(counter.switched());
}

TEST(AdaptiveCounter, ForceSwitchMigratesThePoolExactly) {
  AdaptiveCounter counter;
  std::int64_t scratch[37];
  counter.fetch_increment_batch(0, 37, scratch);
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 5), 5u);

  counter.force_switch(0);
  EXPECT_TRUE(counter.switched());
  EXPECT_EQ(counter.name(), "adaptive·batched C(8,24)");
  // The 32 remaining tokens moved across backends; not one more or less.
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 100), 32u);
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 100), 0u);
}

TEST(AdaptiveCounter, StallRateThresholdTriggersTheSwitchUnprompted) {
  AdaptiveCounter::Config cfg;
  cfg.tuning.sample_interval = 64;
  cfg.tuning.min_window_ops = 64;
  cfg.tuning.stall_rate_threshold = 0.0;  // any sampled window qualifies
  AdaptiveCounter counter(cfg);
  EXPECT_FALSE(counter.switched());
  for (int i = 0; i < 200 && !counter.switched(); ++i) {
    (void)counter.fetch_increment(0);
  }
  EXPECT_TRUE(counter.switched());
  // Every pre-switch increment survived the migration.
  std::uint64_t drained = 0;
  for (std::uint64_t got;
       (got = counter.try_fetch_decrement_n(0, 16)) != 0;) {
    drained += got;
  }
  EXPECT_GE(drained, 64u);
}

TEST(AdaptiveCounter, SwapUnderConcurrentMixedTrafficConservesCounts) {
  AdaptiveCounter counter;
  constexpr std::size_t kThreads = 6, kOps = 1500;
  std::vector<std::uint64_t> incs(kThreads, 0), decs(kThreads, 0);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(0xADA7 + t);
        std::int64_t batch[8];
        for (std::size_t i = 0; i < kOps; ++i) {
          switch (rng.below(4)) {
            case 0: {
              const std::size_t k = 1 + rng.below(8);
              counter.fetch_increment_batch(t, k, batch);
              incs[t] += k;
              break;
            }
            case 1: {
              decs[t] += counter.try_fetch_decrement_n(t, 1 + rng.below(8));
              break;
            }
            case 2: {
              if (counter.try_fetch_decrement(t)) ++decs[t];
              break;
            }
            default: {
              (void)counter.fetch_increment(t);
              ++incs[t];
              break;
            }
          }
          if (t == 0 && i == kOps / 2) counter.force_switch(t);
        }
      });
    }
  }
  EXPECT_TRUE(counter.switched());
  std::uint64_t total_incs = 0, total_decs = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    total_incs += incs[t];
    total_decs += decs[t];
  }
  ASSERT_LE(total_decs, total_incs);
  std::uint64_t drained = 0;
  for (std::uint64_t got;
       (got = counter.try_fetch_decrement_n(0, 16)) != 0;) {
    drained += got;
  }
  EXPECT_EQ(total_decs + drained, total_incs)
      << "tokens were minted or lost across the backend swap";
}

TEST(AdaptiveCounter, BulkConsumeChargesTheTokenCountNotOneOp) {
  // Regression: try_fetch_decrement_n used to charge a single op for an
  // n-token bulk claim while the batch-increment path charged k, so
  // bulk-consume-heavy loads undercounted ops and overestimated the stall
  // rate. The probe must see the tokens actually transferred (minimum one
  // for an empty-pool attempt).
  AdaptiveCounter counter;
  std::int64_t scratch[64];
  counter.fetch_increment_batch(0, 64, scratch);
  EXPECT_EQ(counter.stats().ops(), 64u);
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 64), 64u);
  EXPECT_EQ(counter.stats().ops(), 128u) << "bulk consume undercharged";
  // Empty-pool attempt: one op for the failed claim.
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 64), 0u);
  EXPECT_EQ(counter.stats().ops(), 129u);
}

TEST(AdaptiveCounter, RefundStormDoesNotFeedTheSwitchProbe) {
  // Regression (deterministic, fails pre-fix): an all-or-nothing shortfall
  // used to refund through refill -> fetch_increment_batch, charging the
  // refunded tokens to LoadStats as completed ops — so a pure-reject storm
  // (which admitted nothing) pumped the sampled window toward a spurious
  // switch. The refund path must be invisible to the probe.
  auto counter = std::make_unique<AdaptiveCounter>();
  auto* adaptive = counter.get();
  NetTokenBucket bucket(std::move(counter), {.initial_tokens = 5});
  const std::uint64_t base = adaptive->stats().ops();  // the initial refill
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(bucket.consume(0, 10, kAllOrNothing), 0u);
  }
  // Each rejected consume is charged for its take side only: a 5-token
  // grab plus the conclusive empty miss (1 op) — never the 5-token refund.
  // Pre-fix each iteration charged 11 ops (6 take + 5 refund).
  EXPECT_EQ(adaptive->stats().ops(), base + 100 * 6)
      << "refund traffic leaked into the load probe";
  EXPECT_FALSE(adaptive->switched());
  // The storm moved nothing: the pool still holds exactly its 5 tokens.
  EXPECT_EQ(bucket.consume(0, 5, kAllOrNothing), 5u);
}

TEST(AdaptiveCounter, RefundNReturnsTokensWithoutOpCharge) {
  AdaptiveCounter counter;
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 4), 0u);  // empty: 1 op
  const std::uint64_t base = counter.stats().ops();
  counter.refund_n(0, 40);
  EXPECT_EQ(counter.stats().ops(), base) << "refund_n charged the probe";
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 100), 40u);
  // ... and the refunded tokens survive a switch like any others.
  counter.refund_n(0, 7);
  counter.force_switch(0);
  EXPECT_EQ(counter.try_fetch_decrement_n(0, 100), 7u);
}

TEST(AdaptiveCounter, ConcurrentRefundStormKeepsTheProbeQuietUnderTsan) {
  // The TSan face of the regression: refilling and reject-storming threads
  // race on the refund path while the probe samples. The bucket must stay
  // conserved and the probe must only ever see take-side charges (ops
  // strictly below what the pre-fix double charge would produce).
  auto counter = std::make_unique<AdaptiveCounter>();
  auto* adaptive = counter.get();
  NetTokenBucket bucket(std::move(counter), {.initial_tokens = 3});
  constexpr std::size_t kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<std::uint64_t> admitted{0};
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          // Oversized all-or-nothing requests: almost every call is a
          // grab-then-refund reject.
          admitted.fetch_add(bucket.consume(t, 8, kAllOrNothing),
                             std::memory_order_relaxed);
        }
      });
    }
  }
  std::uint64_t drained = 0;
  while (bucket.consume(0, 1, kPartialOk) == 1) ++drained;
  EXPECT_EQ(admitted.load() + drained, 3u) << "refund path lost tokens";
  // Take-side-only accounting: an all-or-nothing attempt is a grab (got
  // ≤ 3 tokens exist, charging max(got, 1)) plus at most one empty
  // follow-up call, so the take side charges at most ~4 ops per attempt;
  // refunds charge none. The pre-fix path charged the refunded tokens
  // again (~got more per rejecting attempt), which blows past this cap.
  EXPECT_GT(adaptive->stats().ops(), 0u);
  EXPECT_LE(adaptive->stats().ops(),
            static_cast<std::uint64_t>(kThreads) * kIters * 5 + 16);
}

TEST(AdaptiveCounter, FactoryBuildsAndComposesWithElimination) {
  const auto plain = make_counter(BackendKind::kAdaptive);
  EXPECT_EQ(plain->name(), "adaptive·central-atomic");

  const auto composed =
      make_counter(BackendSpec{BackendKind::kAdaptive, true});
  EXPECT_EQ(composed->name(), "elim·adaptive·central-atomic");
  // Counts still conserve through both layers.
  for (int i = 0; i < 8; ++i) (void)composed->fetch_increment(0);
  EXPECT_EQ(composed->try_fetch_decrement_n(0, 100), 8u);
  EXPECT_FALSE(composed->try_fetch_decrement(0));
}

}  // namespace
}  // namespace cnet::svc
