// Property test for the widened Counter API: for every backend, the
// virtual fetch_increment_batch (which batching backends override) and the
// base-class default (a fetch_increment loop, invoked non-virtually via
// Counter::fetch_increment_batch) must be interchangeable — same no-gap /
// no-duplicate value sets sequentially, and exact-range union when both
// paths race on one instance. One parameterized fixture sweeps all five
// backends through the svc factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cnet/runtime/counter.hpp"
#include "cnet/svc/backend.hpp"
#include "test_svc_util.hpp"
#include "test_util.hpp"

namespace cnet::svc {
namespace {

constexpr std::size_t kSizes[] = {1, 2, 7, 32};

class BatchEquivalence : public ::testing::TestWithParam<BackendKind> {
 protected:
  std::unique_ptr<rt::Counter> fresh() const { return make_counter(GetParam()); }
};

void expect_exact_range(std::vector<std::int64_t> values) {
  EXPECT_TRUE(test::is_exact_range(
      std::vector<seq::Value>(values.begin(), values.end())))
      << "gaps or duplicates among " << values.size() << " values";
}

TEST_P(BatchEquivalence, DefaultLoopMatchesOverrideSequentially) {
  // Same call sequence against two fresh instances: one through the
  // virtual batch entry point, one forced onto the base-class default loop.
  const auto via_override = fresh();
  const auto via_default = fresh();
  std::vector<std::int64_t> got_override, got_default;
  std::int64_t buf[32];
  std::size_t hint = 0;
  for (int round = 0; round < 6; ++round) {
    for (const std::size_t k : kSizes) {
      via_override->fetch_increment_batch(hint, k, buf);
      got_override.insert(got_override.end(), buf, buf + k);
      via_default->rt::Counter::fetch_increment_batch(hint, k, buf);
      got_default.insert(got_default.end(), buf, buf + k);
      ++hint;
    }
  }
  std::sort(got_override.begin(), got_override.end());
  std::sort(got_default.begin(), got_default.end());
  EXPECT_EQ(got_override, got_default)
      << "override and default batch paths diverge on "
      << backend_kind_name(GetParam());
  expect_exact_range(got_override);
}

TEST_P(BatchEquivalence, MixedPathsOnOneInstanceStaySequentiallyExact) {
  const auto counter = fresh();
  std::vector<std::int64_t> all;
  std::int64_t buf[32];
  for (int round = 0; round < 8; ++round) {
    for (const std::size_t k : kSizes) {
      if (round % 2 == 0) {
        counter->fetch_increment_batch(static_cast<std::size_t>(round), k,
                                       buf);
      } else {
        counter->rt::Counter::fetch_increment_batch(
            static_cast<std::size_t>(round), k, buf);
      }
      all.insert(all.end(), buf, buf + k);
    }
  }
  expect_exact_range(std::move(all));
}

TEST_P(BatchEquivalence, ConcurrentDefaultAndOverrideCallersAreExactRange) {
  // Half the threads batch through the override, half through the base
  // default loop, all on one shared counter: the union must still be the
  // exact range (the two paths claim from the same cells).
  const auto counter = fresh();
  constexpr std::size_t kThreads = 6, kCalls = 300;
  std::vector<std::vector<std::int64_t>> got(kThreads);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        std::int64_t buf[32];
        for (std::size_t i = 0; i < kCalls; ++i) {
          const std::size_t k = kSizes[(t + i) % std::size(kSizes)];
          if (t % 2 == 0) {
            counter->fetch_increment_batch(t, k, buf);
          } else {
            counter->rt::Counter::fetch_increment_batch(t, k, buf);
          }
          got[t].insert(got[t].end(), buf, buf + k);
        }
      });
    }
  }
  std::vector<std::int64_t> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  expect_exact_range(std::move(all));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BatchEquivalence,
                         ::testing::ValuesIn(kAllBackendKinds),
                         test::backend_param_name);

}  // namespace
}  // namespace cnet::svc
