#include "cnet/runtime/difftree_rt.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "test_util.hpp"

namespace cnet::rt {
namespace {

std::vector<seq::Value> hammer(Counter& counter, std::size_t threads,
                               std::size_t per_thread) {
  std::vector<std::vector<seq::Value>> got(threads);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = 0; i < per_thread; ++i) {
          got[t].push_back(counter.fetch_increment(t));
        }
      });
    }
  }
  std::vector<seq::Value> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  return all;
}

TEST(DiffTreeRt, RejectsBadConfig) {
  DiffractingTreeCounter::Config bad;
  bad.leaves = 3;
  EXPECT_THROW(DiffractingTreeCounter{bad}, std::invalid_argument);
  bad.leaves = 8;
  bad.prism_slots = 0;
  EXPECT_THROW(DiffractingTreeCounter{bad}, std::invalid_argument);
}

TEST(DiffTreeRt, SequentialValuesAreSequential) {
  DiffractingTreeCounter::Config cfg;
  cfg.leaves = 8;
  cfg.partner_spins = 2;  // no partners exist; keep the miss cheap
  DiffractingTreeCounter c(cfg);
  for (std::int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(c.fetch_increment(0), i);
  }
  EXPECT_EQ(c.diffractions(), 0u);
  EXPECT_GT(c.toggle_passes(), 0u);
}

class DiffTreeRtThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DiffTreeRtThreads, ConcurrentExactRange) {
  DiffractingTreeCounter::Config cfg;
  cfg.leaves = GetParam();
  cfg.partner_spins = 32;
  DiffractingTreeCounter c(cfg);
  const auto values = hammer(c, 8, 2000);
  EXPECT_TRUE(test::is_exact_range(values));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiffTreeRtThreads,
                         ::testing::Values(2, 4, 8, 16),
                         ::testing::PrintToStringParamName());

TEST(DiffTreeRt, TelemetryAccountsEveryNodeVisit) {
  DiffractingTreeCounter::Config cfg;
  cfg.leaves = 8;  // 3 levels
  DiffractingTreeCounter c(cfg);
  constexpr std::size_t kThreads = 4, kPer = 1000;
  (void)hammer(c, kThreads, kPer);
  // Every fetch_increment visits exactly lg(leaves) nodes, resolved either
  // by diffraction or by toggle.
  EXPECT_EQ(c.diffractions() + c.toggle_passes(), kThreads * kPer * 3);
}

TEST(DiffTreeRt, NameIncludesWidth) {
  DiffractingTreeCounter::Config cfg;
  cfg.leaves = 16;
  DiffractingTreeCounter c(cfg);
  EXPECT_EQ(c.name(), "difftree(16)");
}

}  // namespace
}  // namespace cnet::rt
