// Golden-structure regression tests: the exact wiring of the paper's
// figure networks, pinned as serialized text. Any change to the recursive
// constructions that alters wiring (even to an isomorphic network) fails
// here, so refactors cannot silently drift from the published figures.
#include <gtest/gtest.h>

#include "cnet/core/counting.hpp"
#include "cnet/core/ladder.hpp"
#include "cnet/core/merging.hpp"
#include "cnet/topology/serialize.hpp"

namespace cnet::topo {
namespace {

TEST(Golden, LadderL4) {
  // L(4): b0 on wires (0,2), b1 on (1,3); outputs in ladder order.
  EXPECT_EQ(to_text(core::make_ladder(4)),
            "cnet-topology v1\n"
            "inputs 4\n"
            "balancer 2 0 2\n"
            "balancer 2 1 3\n"
            "outputs 4 6 5 7\n");
}

TEST(Golden, MergingM42) {
  // M(4,2) (Fig. 5 top, t=4): b0 = (x0, y1) -> (z0, z3);
  // b1 = (y0, x1) -> (z1, z2). x = wires 0,1; y = wires 2,3.
  EXPECT_EQ(to_text(core::make_merging(4, 2)),
            "cnet-topology v1\n"
            "inputs 4\n"
            "balancer 2 0 3\n"
            "balancer 2 2 1\n"
            "outputs 4 6 7 5\n");
}

TEST(Golden, CountingC24) {
  // C(2,4): a single (2,4)-balancer.
  EXPECT_EQ(to_text(core::make_counting(2, 4)),
            "cnet-topology v1\n"
            "inputs 2\n"
            "balancer 4 0 1\n"
            "outputs 2 3 4 5\n");
}

TEST(Golden, CountingC44) {
  // Fig. 11 top-left: ladder L(4) (balancers 0,1), two C(2,2) (balancers
  // 2,3), merging M(4,2) (balancers 4,5).
  EXPECT_EQ(to_text(core::make_counting(4, 4)),
            "cnet-topology v1\n"
            "inputs 4\n"
            "balancer 2 0 2\n"   // ladder b0: wires 0,2 -> 4,5
            "balancer 2 1 3\n"   // ladder b1: wires 1,3 -> 6,7
            "balancer 2 4 6\n"   // C0(2,2) on ladder tops -> 8,9
            "balancer 2 5 7\n"   // C1(2,2) on ladder bottoms -> 10,11
            "balancer 2 8 11\n"  // M(4,2) b0: (g0, h1) -> z0, z3
            "balancer 2 10 9\n"  // M(4,2) b1: (h0, g1) -> z1, z2
            "outputs 12 14 15 13\n");
}

TEST(Golden, CountingC48) {
  // Fig. 1 right / Fig. 11 bottom: like C(4,4) but the recursion bottoms
  // out in (2,4)-balancers and merges with M(8,2).
  EXPECT_EQ(to_text(core::make_counting(4, 8)),
            "cnet-topology v1\n"
            "inputs 4\n"
            "balancer 2 0 2\n"
            "balancer 2 1 3\n"
            "balancer 4 4 6\n"     // C0(2,4) -> wires 8..11
            "balancer 4 5 7\n"     // C1(2,4) -> wires 12..15
            "balancer 2 8 15\n"    // M(8,2) b0: (x0, y3)
            "balancer 2 12 9\n"    // M(8,2) b1: (y0, x1)
            "balancer 2 13 10\n"   // M(8,2) b2: (y1, x2)
            "balancer 2 14 11\n"   // M(8,2) b3: (y2, x3)
            "outputs 16 18 19 20 21 22 23 17\n");
}

TEST(Golden, RoundTripOfGoldenNetworks) {
  for (const auto& net :
       {core::make_ladder(4), core::make_merging(4, 2),
        core::make_counting(4, 4), core::make_counting(4, 8)}) {
    EXPECT_TRUE(structurally_equal(net, from_text(to_text(net))));
  }
}

}  // namespace
}  // namespace cnet::topo
