// Shared helpers for the cnet test suite.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/topology/topology.hpp"
#include "cnet/util/prng.hpp"

namespace cnet::test {

// Random input distribution with per-wire counts in [0, max_per_wire].
inline seq::Sequence random_input(std::size_t w, seq::Value max_per_wire,
                                  util::Xoshiro256& rng) {
  seq::Sequence x(w);
  for (auto& v : x) {
    v = static_cast<seq::Value>(
        rng.below(static_cast<std::uint64_t>(max_per_wire) + 1));
  }
  return x;
}

// True iff `values` is a permutation of {0, 1, ..., values.size()-1}.
inline bool is_exact_range(std::vector<seq::Value> values) {
  std::sort(values.begin(), values.end());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != static_cast<seq::Value>(i)) return false;
  }
  return true;
}

}  // namespace cnet::test
