#include "cnet/topology/quiescent.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/seq/sequence.hpp"
#include "test_util.hpp"

namespace cnet::topo {
namespace {

Topology single22() {
  Builder b;
  const auto in = b.add_network_inputs(2);
  const auto [top, bottom] = b.add_balancer2(in[0], in[1]);
  const WireId outs[2] = {top, bottom};
  b.set_outputs(outs);
  return std::move(b).build();
}

Topology single2q(std::size_t q) {
  Builder b;
  const auto in = b.add_network_inputs(2);
  b.set_outputs(b.add_balancer(in, q));
  return std::move(b).build();
}

TEST(Quiescent, SingleBalancerMatchesFigureOne) {
  // Fig. 1 left: a (4,6)-balancer with inputs 3,1,2,4 emits 2,2,2,2,1,1.
  Builder b;
  const auto in = b.add_network_inputs(4);
  b.set_outputs(b.add_balancer(in, 6));
  const Topology t = std::move(b).build();
  const seq::Sequence x = {3, 1, 2, 4};
  EXPECT_EQ(evaluate(t, x), (seq::Sequence{2, 2, 2, 2, 1, 1}));
}

TEST(Quiescent, BalancerAlternates) {
  const Topology t = single22();
  EXPECT_EQ(evaluate(t, seq::Sequence{5, 0}), (seq::Sequence{3, 2}));
  EXPECT_EQ(evaluate(t, seq::Sequence{2, 3}), (seq::Sequence{3, 2}));
  EXPECT_EQ(evaluate(t, seq::Sequence{0, 0}), (seq::Sequence{0, 0}));
}

TEST(Quiescent, OutputDependsOnlyOnTotalForOneBalancer) {
  const Topology t = single2q(4);
  const auto a = evaluate(t, seq::Sequence{7, 0});
  const auto b = evaluate(t, seq::Sequence{3, 4});
  const auto c = evaluate(t, seq::Sequence{0, 7});
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(Quiescent, InitialStateRotatesOutputs) {
  const Topology t = single2q(4);
  const std::uint32_t init[1] = {2};
  const auto y = evaluate(t, seq::Sequence{3, 0}, init);
  // Tokens exit on wires 2, 3, 0.
  EXPECT_EQ(y, (seq::Sequence{1, 0, 1, 1}));
}

TEST(Quiescent, SumPreservationOnCascade) {
  // Chain three balancers and check token conservation on random inputs.
  Builder bld;
  const auto in = bld.add_network_inputs(2);
  auto [a0, a1] = bld.add_balancer2(in[0], in[1]);
  auto [b0, b1] = bld.add_balancer2(a0, a1);
  auto [c0, c1] = bld.add_balancer2(b0, b1);
  const WireId outs[2] = {c0, c1};
  bld.set_outputs(outs);
  const Topology t = std::move(bld).build();

  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto x = test::random_input(2, 50, rng);
    EXPECT_EQ(seq::sum(evaluate(t, x)), seq::sum(x));
  }
}

TEST(Quiescent, PassThroughNetworkIsIdentity) {
  Builder b;
  const auto in = b.add_network_inputs(3);
  b.set_outputs(in);
  const Topology t = std::move(b).build();
  const seq::Sequence x = {4, 0, 9};
  EXPECT_EQ(evaluate(t, x), x);
}

TEST(Quiescent, TracedCountsTokensThroughBalancers) {
  Builder bld;
  const auto in = bld.add_network_inputs(2);
  auto [a0, a1] = bld.add_balancer2(in[0], in[1]);
  auto [b0, b1] = bld.add_balancer2(a0, a1);
  const WireId outs[2] = {b0, b1};
  bld.set_outputs(outs);
  const Topology t = std::move(bld).build();
  const auto trace = evaluate_traced(t, seq::Sequence{3, 2});
  ASSERT_EQ(trace.tokens_through_balancer.size(), 2u);
  EXPECT_EQ(trace.tokens_through_balancer[0], 5);
  EXPECT_EQ(trace.tokens_through_balancer[1], 5);
  EXPECT_EQ(seq::sum(trace.outputs), 5);
}

TEST(Quiescent, RejectsBadArguments) {
  const Topology t = single22();
  EXPECT_THROW((void)evaluate(t, seq::Sequence{1}), std::invalid_argument);
  EXPECT_THROW((void)evaluate(t, seq::Sequence{-1, 0}),
               std::invalid_argument);
  const std::uint32_t bad_init[1] = {7};
  EXPECT_THROW((void)evaluate(t, seq::Sequence{1, 1}, bad_init),
               std::invalid_argument);
}

TEST(Quiescent, CheckCountingAcceptsSingleBalancer) {
  const Topology t = single22();
  util::Xoshiro256 rng(9);
  EXPECT_FALSE(check_counting_random(t, 50, 20, rng).has_value());
  EXPECT_FALSE(check_counting_exhaustive(t, 6).has_value());
}

TEST(Quiescent, CheckCountingCatchesNonCountingNetwork) {
  // Two stacked independent balancers (width 4, no mixing) do not count.
  Builder bld;
  const auto in = bld.add_network_inputs(4);
  const auto [a0, a1] = bld.add_balancer2(in[0], in[1]);
  const auto [b0, b1] = bld.add_balancer2(in[2], in[3]);
  const WireId outs[4] = {a0, a1, b0, b1};
  bld.set_outputs(outs);
  const Topology t = std::move(bld).build();
  EXPECT_TRUE(check_counting_exhaustive(t, 2).has_value());
  util::Xoshiro256 rng(10);
  EXPECT_TRUE(check_counting_random(t, 50, 20, rng).has_value());
}

TEST(Quiescent, SmoothnessProbeFindsSkew) {
  // The non-counting stacked network above can have smoothness >= 2.
  Builder bld;
  const auto in = bld.add_network_inputs(4);
  const auto [a0, a1] = bld.add_balancer2(in[0], in[1]);
  const auto [b0, b1] = bld.add_balancer2(in[2], in[3]);
  const WireId outs[4] = {a0, a1, b0, b1};
  bld.set_outputs(outs);
  const Topology t = std::move(bld).build();
  util::Xoshiro256 rng(11);
  EXPECT_GE(max_output_smoothness_random(t, 100, 20, rng), 2);
}

}  // namespace
}  // namespace cnet::topo
