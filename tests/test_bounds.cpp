// The analysis module's closed forms must agree with the constructions —
// i.e. the paper's counting arguments, re-derived by building the networks.
#include "cnet/analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/butterfly.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/core/merging.hpp"
#include "cnet/util/bitops.hpp"

namespace cnet::analysis {
namespace {

TEST(Bounds, CountingDepthMatchesConstruction) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u, 64u}) {
    EXPECT_EQ(counting_depth(w), core::make_counting(w, w).depth());
    EXPECT_EQ(counting_depth(w), baselines::make_bitonic(w).depth());
  }
}

TEST(Bounds, PeriodicDepthMatchesConstruction) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u}) {
    EXPECT_EQ(periodic_depth(w), baselines::make_periodic(w).depth());
  }
}

TEST(Bounds, MergingDepthMatchesConstruction) {
  for (const std::size_t t : {16u, 32u, 64u}) {
    for (std::size_t delta = 2; 2 * delta <= t; delta *= 2) {
      EXPECT_EQ(merging_depth(delta), core::make_merging(t, delta).depth());
      EXPECT_EQ(merging_balancers(t, delta),
                core::make_merging(t, delta).num_balancers());
    }
  }
}

TEST(Bounds, BalancerCountsMatchConstructions) {
  for (const std::size_t w : {4u, 8u, 16u, 32u}) {
    EXPECT_EQ(bitonic_balancers(w),
              baselines::make_bitonic(w).num_balancers());
    EXPECT_EQ(periodic_balancers(w),
              baselines::make_periodic(w).num_balancers());
    for (const std::size_t p : {1u, 2u, 3u, 4u}) {
      EXPECT_EQ(counting_balancers(w, p * w),
                core::make_counting(w, p * w).num_balancers())
          << "w=" << w << " p=" << p;
    }
  }
}

TEST(Bounds, PrefixSmoothnessMatchesCoreHelper) {
  for (const std::size_t w : {4u, 8u, 16u}) {
    for (const std::size_t p : {1u, 2u, 4u}) {
      EXPECT_EQ(prefix_smoothness(w, p * w),
                core::prefix_smoothness_bound(w, p * w));
    }
  }
}

TEST(Bounds, LayerContention) {
  // Corollary 6.4 with q=2, n=64, W=16, k=3: 2·64/16 + 2·4 = 16.
  EXPECT_DOUBLE_EQ(layer_contention_bound(2, 64, 16, 3), 16.0);
}

TEST(Bounds, ContentionBoundDecreasesInT) {
  const std::size_t w = 16, n = 512;
  double prev = counting_contention_bound(w, w, n);
  for (std::size_t t = 2 * w; t <= 64 * w; t *= 2) {
    const double cur = counting_contention_bound(w, t, n);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Bounds, ContentionBoundBeatsBitonicLeadingAtLargeT) {
  // For t = w·lgw and n = w·lgw the paper's bound is O(n·lgw/w) while the
  // bitonic leading term is n·lg²w/w — the gap must widen with w.
  double prev_ratio = 0;
  for (const std::size_t w : {256u, 1024u, 4096u, 16384u}) {
    const std::size_t lgw = util::ilog2(w);
    const std::size_t n = 64 * w;
    const double ours = counting_contention_bound(w, w * lgw, n);
    const double bitonic = bitonic_contention_leading(w, n);
    const double ratio = bitonic / ours;
    EXPECT_GT(ratio, prev_ratio) << w;
    prev_ratio = ratio;
  }
}

TEST(Bounds, PeriodicLeadingWorstOfTheThree) {
  for (const std::size_t w : {8u, 64u}) {
    const std::size_t n = 16 * w;
    EXPECT_GT(periodic_contention_leading(w, n),
              bitonic_contention_leading(w, n));
  }
}

TEST(Bounds, DomainChecks) {
  EXPECT_THROW((void)counting_depth(3), std::invalid_argument);
  EXPECT_THROW((void)counting_depth(0), std::invalid_argument);
  EXPECT_THROW((void)merging_depth(1), std::invalid_argument);
  EXPECT_THROW((void)counting_balancers(8, 12), std::invalid_argument);
  EXPECT_THROW((void)counting_contention_bound(8, 4, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cnet::analysis
