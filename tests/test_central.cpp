#include "cnet/runtime/central.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "test_util.hpp"

namespace cnet::rt {
namespace {

template <class C>
std::vector<seq::Value> hammer(C& counter, std::size_t threads,
                               std::size_t per_thread) {
  std::vector<std::vector<seq::Value>> got(threads);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = 0; i < per_thread; ++i) {
          got[t].push_back(counter.fetch_increment(t));
        }
      });
    }
  }
  std::vector<seq::Value> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  return all;
}

TEST(AtomicCounter, SequentialOrder) {
  AtomicCounter c;
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(c.fetch_increment(0), i);
  }
}

TEST(AtomicCounter, ConcurrentExactRange) {
  AtomicCounter c;
  EXPECT_TRUE(test::is_exact_range(hammer(c, 8, 5000)));
}

TEST(CasCounter, ConcurrentExactRange) {
  CasCounter c;
  EXPECT_TRUE(test::is_exact_range(hammer(c, 8, 5000)));
}

TEST(CasCounter, SequentialHasNoStalls) {
  CasCounter c;
  for (int i = 0; i < 1000; ++i) (void)c.fetch_increment(0);
  EXPECT_EQ(c.stall_count(), 0u);
}

TEST(MutexCounter, ConcurrentExactRange) {
  MutexCounter c;
  EXPECT_TRUE(test::is_exact_range(hammer(c, 8, 5000)));
}

TEST(Names, AreDistinct) {
  AtomicCounter a;
  CasCounter b;
  MutexCounter m;
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(a.name(), m.name());
  EXPECT_NE(b.name(), m.name());
}

}  // namespace
}  // namespace cnet::rt
