#include "cnet/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace cnet::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RejectsRowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  Table t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Format, FmtInt) { EXPECT_EQ(fmt_int(-42), "-42"); }

TEST(Format, FmtDouble) { EXPECT_EQ(fmt_double(3.14159, 2), "3.14"); }

TEST(Format, FmtRatioHandlesZeroDenominator) {
  EXPECT_EQ(fmt_ratio(1.0, 0.0), "n/a");
  EXPECT_EQ(fmt_ratio(3.0, 2.0, 1), "1.5");
}

}  // namespace
}  // namespace cnet::util
