#include "cnet/util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cnet::util {
namespace {

TEST(Accumulator, EmptyIsZeroed) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37 - 5;
    whole.add(v);
    (i < 40 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9, 3}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9, 3}, 100.0), 9.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25.0), 2.5);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

}  // namespace
}  // namespace cnet::util
