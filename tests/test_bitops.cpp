#include "cnet/util/bitops.hpp"

#include <gtest/gtest.h>

namespace cnet::util {
namespace {

TEST(Bitops, IsPow2RecognizesPowers) {
  for (unsigned k = 0; k < 63; ++k) {
    EXPECT_TRUE(is_pow2(1ULL << k)) << "2^" << k;
  }
}

TEST(Bitops, IsPow2RejectsZero) { EXPECT_FALSE(is_pow2(0)); }

TEST(Bitops, IsPow2RejectsComposites) {
  for (const std::uint64_t v : {3ULL, 5ULL, 6ULL, 7ULL, 12ULL, 100ULL,
                                (1ULL << 20) + 1}) {
    EXPECT_FALSE(is_pow2(v)) << v;
  }
}

TEST(Bitops, Ilog2ExactPowers) {
  for (unsigned k = 0; k < 63; ++k) {
    EXPECT_EQ(ilog2(1ULL << k), k);
  }
}

TEST(Bitops, Ilog2Floors) {
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(5), 2u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1025), 10u);
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
}

TEST(Bitops, BitReverseRoundTrips) {
  for (unsigned bits = 1; bits <= 10; ++bits) {
    for (std::uint64_t v = 0; v < (1ULL << bits); ++v) {
      EXPECT_EQ(bit_reverse(bit_reverse(v, bits), bits), v);
    }
  }
}

TEST(Bitops, BitReverseKnownValues) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b011, 3), 0b110u);
  EXPECT_EQ(bit_reverse(0b101, 3), 0b101u);
}

TEST(Bitops, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
}

}  // namespace
}  // namespace cnet::util
