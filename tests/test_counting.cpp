// C(w, t): Theorem 4.1 (depth), Theorem 4.2 (counting), block decomposition
// (§1.3.2 / Fig. 3), and the Fig. 1 worked example.
#include "cnet/core/counting.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"
#include "test_util.hpp"

namespace cnet::core {
namespace {

TEST(CountingParams, Validity) {
  EXPECT_TRUE(is_valid_counting_params(2, 2));
  EXPECT_TRUE(is_valid_counting_params(2, 6));
  EXPECT_TRUE(is_valid_counting_params(4, 4));
  EXPECT_TRUE(is_valid_counting_params(4, 8));
  EXPECT_TRUE(is_valid_counting_params(8, 24));
  EXPECT_FALSE(is_valid_counting_params(3, 6));   // w not a power of two
  EXPECT_FALSE(is_valid_counting_params(4, 6));   // t not a multiple of w
  EXPECT_FALSE(is_valid_counting_params(4, 2));   // t < w
  EXPECT_FALSE(is_valid_counting_params(1, 1));
}

TEST(CountingParams, ConstructorRejectsInvalid) {
  EXPECT_THROW((void)make_counting(3, 6), std::invalid_argument);
  EXPECT_THROW((void)make_counting(4, 6), std::invalid_argument);
  EXPECT_THROW((void)make_counting(4, 2), std::invalid_argument);
}

// Theorem 4.1: depth(C(w,t)) = (lg²w + lgw)/2 — independent of t.
TEST(Counting, DepthMatchesTheorem41) {
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u}) {
    const std::size_t k = util::ilog2(w);
    for (const std::size_t p : {1u, 2u, 3u, 4u}) {
      const auto net = make_counting(w, p * w);
      EXPECT_EQ(net.depth(), (k * k + k) / 2) << "w=" << w << " p=" << p;
      EXPECT_EQ(net.depth(), counting_depth(w));
    }
  }
}

TEST(Counting, WidthsAndRegularity) {
  const auto regular = make_counting(8, 8);
  EXPECT_EQ(regular.width_in(), 8u);
  EXPECT_EQ(regular.width_out(), 8u);
  EXPECT_TRUE(regular.is_regular());

  const auto irregular = make_counting(8, 16);
  EXPECT_EQ(irregular.width_in(), 8u);
  EXPECT_EQ(irregular.width_out(), 16u);
  EXPECT_FALSE(irregular.is_regular());
}

TEST(Counting, UsesOnlyTheTwoBalancerShapes) {
  // C(w, p·w) is built from (2,2)- and (2,2p)-balancers (paper §1.3.1).
  const auto net = make_counting(8, 24);  // p = 3
  for (const auto& row : net.census()) {
    EXPECT_EQ(row.fan_in, 2u);
    EXPECT_TRUE(row.fan_out == 2 || row.fan_out == 6)
        << "unexpected fanout " << row.fan_out;
  }
}

TEST(Counting, BaseCaseIsSingleBalancer) {
  const auto net = make_counting(2, 6);
  EXPECT_EQ(net.num_balancers(), 1u);
  EXPECT_EQ(net.depth(), 1u);
  const auto census = net.census();
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census[0].fan_out, 6u);
}

// Fig. 1 right: C(4,8) — reproduce the figure's token distribution. The
// figure shows 10 tokens entering; the outputs satisfy the step property
// with sums preserved.
TEST(Counting, FigureOneDistribution) {
  const auto net = make_counting(4, 8);
  const seq::Sequence x = {3, 1, 2, 4};
  const auto y = topo::evaluate(net, x);
  EXPECT_TRUE(seq::is_step(y));
  EXPECT_EQ(seq::sum(y), 10);
  EXPECT_EQ(y, (seq::Sequence{2, 2, 1, 1, 1, 1, 1, 1}));
}

// Theorem 4.2 — exhaustive for small networks.
class CountingExhaustive
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CountingExhaustive, StepOnEveryInput) {
  const auto [w, t] = GetParam();
  const auto net = make_counting(w, t);
  EXPECT_FALSE(topo::check_counting_exhaustive(net, 3).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Small, CountingExhaustive,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{2, 4},
                      std::pair<std::size_t, std::size_t>{2, 8},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{4, 8},
                      std::pair<std::size_t, std::size_t>{4, 12},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{8, 16}),
    [](const auto& pinfo) {
      return "w" + std::to_string(pinfo.param.first) + "_t" +
             std::to_string(pinfo.param.second);
    });

// Theorem 4.2 — randomized for larger networks.
class CountingRandom
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CountingRandom, StepOnRandomInputs) {
  const auto [w, t] = GetParam();
  const auto net = make_counting(w, t);
  util::Xoshiro256 rng(0xC0DE + w * 131 + t);
  const auto witness = topo::check_counting_random(net, 300, 50, rng);
  EXPECT_FALSE(witness.has_value())
      << "counter-example input found for C(" << w << "," << t << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountingRandom,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 24},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{16, 32},
                      std::pair<std::size_t, std::size_t>{16, 64},
                      std::pair<std::size_t, std::size_t>{32, 32},
                      std::pair<std::size_t, std::size_t>{32, 64},
                      std::pair<std::size_t, std::size_t>{32, 160},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{64, 384},
                      std::pair<std::size_t, std::size_t>{128, 128},
                      std::pair<std::size_t, std::size_t>{128, 896}),
    [](const auto& pinfo) {
      return "w" + std::to_string(pinfo.param.first) + "_t" +
             std::to_string(pinfo.param.second);
    });

// Block decomposition (Fig. 3): layer counts and widths.
TEST(Blocks, CensusMatchesStructuralInterpretation) {
  for (const std::size_t w : {4u, 8u, 16u, 32u}) {
    const std::size_t k = util::ilog2(w);
    for (const std::size_t p : {1u, 2u, 4u}) {
      const std::size_t t = p * w;
      const auto net = make_counting(w, t);
      const auto census = block_census(net, w);
      EXPECT_EQ(census.layers_na, k - 1);
      EXPECT_EQ(census.layers_nb, 1u);
      EXPECT_EQ(census.layers_nc, (k * k + k) / 2 - k);
      // N_a: (k-1) layers of w/2 balancers; N_b: w/2 irregular balancers.
      EXPECT_EQ(census.balancers_na, (k - 1) * w / 2);
      EXPECT_EQ(census.balancers_nb, w / 2);
      // N_c: (k²-k)/2 layers of t/2 balancers each.
      EXPECT_EQ(census.balancers_nc, ((k * k - k) / 2) * (t / 2));
      EXPECT_EQ(census.balancers_na + census.balancers_nb +
                    census.balancers_nc,
                net.num_balancers());
    }
  }
}

TEST(Blocks, ClassifierSplitsByDepth) {
  const std::size_t w = 8;
  const auto net = make_counting(w, 16);
  for (std::uint32_t b = 0; b < net.num_balancers(); ++b) {
    const auto id = topo::BalancerId{b};
    const auto block = classify_block(net, id, w);
    const std::size_t d = net.balancer_depth(id);
    if (d < 3) {
      EXPECT_EQ(block, Block::kNa);
    } else if (d == 3) {
      EXPECT_EQ(block, Block::kNb);
    } else {
      EXPECT_EQ(block, Block::kNc);
    }
    // N_b balancers are exactly the irregular ones here.
    const auto& bal = net.balancer(id);
    if (block == Block::kNb) {
      EXPECT_EQ(bal.fan_out(), 4u);  // (2, 2p) with p = 2
    } else {
      EXPECT_EQ(bal.fan_out(), 2u);
    }
  }
}

// The network counts regardless of which input wires carry the load
// (paper §4.1 notes input permutations do not affect the output).
TEST(Counting, InputPermutationInvariance) {
  const auto net = make_counting(8, 16);
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    auto x = test::random_input(8, 20, rng);
    const auto y1 = topo::evaluate(net, x);
    // Shuffle the input distribution; the output must stay identical
    // because it depends only on the total number of tokens... per wire
    // totals differ, but the *step* output of a counting network depends
    // only on the total (Eq. (1)).
    std::swap(x[0], x[7]);
    std::swap(x[2], x[5]);
    const auto y2 = topo::evaluate(net, x);
    EXPECT_EQ(y1, y2);
  }
}

}  // namespace
}  // namespace cnet::core
