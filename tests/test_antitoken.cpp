// Antitokens / Fetch&Decrement (paper §1.4.2, Aiello et al.): net-balance
// semantics at every layer of the stack — sequence formula, quiescent
// evaluator, and the concurrent runtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/prng.hpp"

namespace cnet {
namespace {

// --- sequence layer -------------------------------------------------------

TEST(NetBalancer, MatchesTokenFormulaForNonnegativeTotals) {
  for (std::size_t q = 1; q <= 6; ++q) {
    for (std::size_t init = 0; init < q; ++init) {
      for (seq::Value total = 0; total <= 25; ++total) {
        EXPECT_EQ(seq::balancer_output_net(total, q, init),
                  seq::balancer_output(total, q, init))
            << "q=" << q << " init=" << init << " total=" << total;
      }
    }
  }
}

TEST(NetBalancer, NegativeTotalsAreStepAndSumPreserving) {
  for (std::size_t q = 1; q <= 6; ++q) {
    for (seq::Value total = -30; total <= 30; ++total) {
      const auto y = seq::balancer_output_net(total, q);
      EXPECT_TRUE(seq::is_step(y)) << "q=" << q << " total=" << total;
      EXPECT_EQ(seq::sum(y), total);
    }
  }
}

TEST(NetBalancer, AntitokenExitsOnSteppedBackWire) {
  // One antitoken through a fresh (.,4)-balancer: state 0 -> -1, exits on
  // wire 3 (the wire a previous token would have used last).
  const auto y = seq::balancer_output_net(-1, 4);
  EXPECT_EQ(y, (seq::Sequence{0, 0, 0, -1}));
}

TEST(NetBalancer, TokenThenAntitokenCancels) {
  // Net zero leaves every wire at balance zero regardless of init.
  for (std::size_t q = 2; q <= 5; ++q) {
    for (std::size_t init = 0; init < q; ++init) {
      const auto y = seq::balancer_output_net(0, q, init);
      for (const auto v : y) EXPECT_EQ(v, 0);
    }
  }
}

// --- quiescent evaluator --------------------------------------------------

TEST(NetEvaluate, CountingNetworkStaysStepOnMixedBalances) {
  const auto nets = {core::make_counting(4, 8), core::make_counting(8, 8),
                     baselines::make_bitonic(8)};
  util::Xoshiro256 rng(0xA17);
  for (const auto& net : nets) {
    for (int trial = 0; trial < 300; ++trial) {
      seq::Sequence x(net.width_in());
      for (auto& v : x) v = rng.range(-10, 10);
      const auto y = topo::evaluate_net(net, x);
      ASSERT_TRUE(seq::is_step(y)) << "input balances not merged to step";
      ASSERT_EQ(seq::sum(y), seq::sum(x));
    }
  }
}

TEST(NetEvaluate, MatchesEvaluateOnNonnegativeInputs) {
  const auto net = core::make_counting(8, 16);
  util::Xoshiro256 rng(0xA18);
  for (int trial = 0; trial < 100; ++trial) {
    seq::Sequence x(8);
    for (auto& v : x) v = static_cast<seq::Value>(rng.below(20));
    EXPECT_EQ(topo::evaluate_net(net, x), topo::evaluate(net, x));
  }
}

TEST(NetEvaluate, PlainEvaluateStillRejectsNegatives) {
  const auto net = core::make_counting(4, 4);
  EXPECT_THROW((void)topo::evaluate(net, seq::Sequence{-1, 0, 0, 0}),
               std::invalid_argument);
}

// --- runtime ----------------------------------------------------------------

TEST(FetchDecrement, ReclaimsTheLastValueSequentially) {
  rt::NetworkCounter c(core::make_counting(4, 8), "C(4,8)");
  EXPECT_EQ(c.fetch_increment(0), 0);
  EXPECT_EQ(c.fetch_increment(1), 1);
  EXPECT_EQ(c.fetch_increment(2), 2);
  EXPECT_EQ(c.fetch_decrement(3), 2);  // reclaims 2
  EXPECT_EQ(c.fetch_increment(0), 2);  // hands 2 out again
  EXPECT_EQ(c.fetch_increment(1), 3);
}

// Sequential elimination property: after any prefix with c outstanding
// increments, the outstanding values are exactly {0..c-1}.
TEST(FetchDecrement, OutstandingSetIsAlwaysExactPrefix) {
  rt::NetworkCounter c(core::make_counting(8, 16), "C(8,16)");
  util::Xoshiro256 rng(0xDEC);
  std::vector<seq::Value> outstanding;  // sorted invariant: {0..c-1}
  for (int op = 0; op < 4000; ++op) {
    const bool inc = outstanding.empty() || rng.below(2) == 0;
    const std::size_t hint = rng.below(64);
    if (inc) {
      const auto v = c.fetch_increment(hint);
      ASSERT_EQ(v, static_cast<seq::Value>(outstanding.size()))
          << "increment must extend the prefix";
      outstanding.push_back(v);
    } else {
      const auto v = c.fetch_decrement(hint);
      ASSERT_EQ(v, outstanding.back())
          << "decrement must reclaim the top of the prefix";
      outstanding.pop_back();
    }
  }
}

// Concurrent phases: m increments (threads join), then m decrements
// (threads join). The multiset of reclaimed values must equal the multiset
// handed out, and the counter must be back at zero.
TEST(FetchDecrement, ConcurrentDrainRestoresInitialState) {
  rt::NetworkCounter c(core::make_counting(8, 24), "C(8,24)");
  constexpr std::size_t kThreads = 8, kPer = 1500;
  std::vector<std::vector<seq::Value>> inc_vals(kThreads), dec_vals(kThreads);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPer; ++i) {
          inc_vals[t].push_back(c.fetch_increment(t));
        }
      });
    }
  }
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPer; ++i) {
          dec_vals[t].push_back(c.fetch_decrement(t));
        }
      });
    }
  }
  std::vector<seq::Value> incs, decs;
  for (std::size_t t = 0; t < kThreads; ++t) {
    incs.insert(incs.end(), inc_vals[t].begin(), inc_vals[t].end());
    decs.insert(decs.end(), dec_vals[t].begin(), dec_vals[t].end());
  }
  std::sort(incs.begin(), incs.end());
  std::sort(decs.begin(), decs.end());
  EXPECT_EQ(incs, decs);
  // Fully drained: the next increment restarts from 0.
  EXPECT_EQ(c.fetch_increment(0), 0);
}

TEST(FetchDecrement, CasDisciplineAgreesWithFetchAdd) {
  rt::NetworkCounter fa(core::make_counting(4, 8), "fa");
  rt::NetworkCounter cas(core::make_counting(4, 8), "cas",
                         rt::BalancerMode::kCasRetry);
  util::Xoshiro256 rng(0xCA5D);
  std::int64_t outstanding = 0;
  for (int op = 0; op < 2000; ++op) {
    const bool inc = outstanding == 0 || rng.below(2) == 0;
    const std::size_t hint = rng.below(16);
    if (inc) {
      EXPECT_EQ(fa.fetch_increment(hint), cas.fetch_increment(hint));
      ++outstanding;
    } else {
      EXPECT_EQ(fa.fetch_decrement(hint), cas.fetch_decrement(hint));
      --outstanding;
    }
  }
}

}  // namespace
}  // namespace cnet
