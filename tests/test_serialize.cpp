#include "cnet/topology/serialize.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/core/merging.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/prng.hpp"
#include "test_util.hpp"

namespace cnet::topo {
namespace {

TEST(Serialize, RoundTripPreservesStructure) {
  for (const auto& net :
       {core::make_counting(4, 8), core::make_counting(8, 8),
        core::make_merging(16, 4), baselines::make_bitonic(8)}) {
    const auto restored = from_text(to_text(net));
    EXPECT_TRUE(structurally_equal(net, restored));
    // And the same text again (canonical form).
    EXPECT_EQ(to_text(net), to_text(restored));
  }
}

TEST(Serialize, RoundTripPreservesBehaviour) {
  const auto net = core::make_counting(8, 16);
  const auto restored = from_text(to_text(net));
  util::Xoshiro256 rng(0x5E1A);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = test::random_input(8, 25, rng);
    EXPECT_EQ(evaluate(net, x), evaluate(restored, x));
  }
}

TEST(Serialize, HandlesCommentsAndBlankLines) {
  const std::string text =
      "cnet-topology v1\n"
      "# a (2,2)-balancer\n"
      "\n"
      "inputs 2\n"
      "balancer 2 0 1   # consumes both inputs\n"
      "outputs 2 3\n";
  const auto net = from_text(text);
  EXPECT_EQ(net.width_in(), 2u);
  EXPECT_EQ(net.num_balancers(), 1u);
}

TEST(Serialize, RejectsMissingHeader) {
  EXPECT_THROW((void)from_text("inputs 2\noutputs 0 1\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsWrongVersion) {
  EXPECT_THROW((void)from_text("cnet-topology v2\ninputs 1\noutputs 0\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsUnknownWireReference) {
  EXPECT_THROW(
      (void)from_text("cnet-topology v1\ninputs 2\nbalancer 2 0 7\n"
                      "outputs 2 3\n"),
      std::invalid_argument);
}

TEST(Serialize, RejectsDoubleConsumption) {
  EXPECT_THROW(
      (void)from_text("cnet-topology v1\ninputs 2\nbalancer 2 0 1\n"
                      "balancer 2 0 1\noutputs 2 3 4 5\n"),
      std::invalid_argument);
}

TEST(Serialize, RejectsMissingOutputs) {
  EXPECT_THROW((void)from_text("cnet-topology v1\ninputs 2\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsDanglingWires) {
  EXPECT_THROW(
      (void)from_text("cnet-topology v1\ninputs 2\nbalancer 2 0 1\n"
                      "outputs 2\n"),
      std::invalid_argument);
}

TEST(Serialize, StructurallyEqualDistinguishesWiring) {
  // Same shapes, different wiring order: equal under isomorphism but not
  // structurally.
  const auto a = from_text(
      "cnet-topology v1\ninputs 2\nbalancer 2 0 1\noutputs 2 3\n");
  const auto b = from_text(
      "cnet-topology v1\ninputs 2\nbalancer 2 1 0\noutputs 2 3\n");
  EXPECT_FALSE(structurally_equal(a, b));
  EXPECT_TRUE(structurally_equal(a, a));
}

}  // namespace
}  // namespace cnet::topo
