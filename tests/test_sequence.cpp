// Sequence toolkit tests, including property checks of the paper's
// Lemmas 2.1–2.4 (which underpin the merging-network correctness proof).
#include "cnet/seq/sequence.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cnet/util/prng.hpp"

namespace cnet::seq {
namespace {

TEST(Sequence, SumOfEmptyIsZero) { EXPECT_EQ(sum({}), 0); }

TEST(Sequence, SumAddsUp) {
  const Sequence x = {1, 2, 3, 4};
  EXPECT_EQ(sum(x), 10);
}

TEST(Sequence, SmoothnessOfConstantIsZero) {
  const Sequence x = {5, 5, 5};
  EXPECT_EQ(smoothness(x), 0);
}

TEST(Sequence, SmoothnessIsMaxMinusMin) {
  const Sequence x = {3, 7, 5, 2};
  EXPECT_EQ(smoothness(x), 5);
}

TEST(Sequence, StepAcceptsFlatAndSingleDrop) {
  EXPECT_TRUE(is_step(Sequence{2, 2, 2}));
  EXPECT_TRUE(is_step(Sequence{3, 3, 2, 2}));
  EXPECT_TRUE(is_step(Sequence{1}));
  EXPECT_TRUE(is_step(Sequence{}));
}

TEST(Sequence, StepRejectsIncreaseAndBigDrop) {
  EXPECT_FALSE(is_step(Sequence{2, 3}));        // increases
  EXPECT_FALSE(is_step(Sequence{4, 2}));        // drops by 2
  EXPECT_FALSE(is_step(Sequence{3, 2, 3}));     // goes back up
  EXPECT_FALSE(is_step(Sequence{3, 3, 2, 3}));  // non-monotone
}

TEST(Sequence, StepRejectsTwoSeparateDrops) {
  // Non-increasing, adjacent drops of 1, but max-min == 2.
  EXPECT_FALSE(is_step(Sequence{3, 2, 1}));
}

TEST(Sequence, KSmooth) {
  EXPECT_TRUE(is_k_smooth(Sequence{3, 1, 2}, 2));
  EXPECT_FALSE(is_k_smooth(Sequence{3, 0, 2}, 2));
  EXPECT_TRUE(is_k_smooth(Sequence{}, 0));
}

TEST(Sequence, StepPointAllEqualIsWidth) {
  EXPECT_EQ(step_point(Sequence{4, 4, 4}), 3u);
}

TEST(Sequence, StepPointAtDrop) {
  EXPECT_EQ(step_point(Sequence{4, 4, 3}), 2u);
  EXPECT_EQ(step_point(Sequence{4, 3, 3}), 1u);
}

TEST(Sequence, StepPointRequiresStep) {
  EXPECT_THROW(step_point(Sequence{1, 2}), std::invalid_argument);
  EXPECT_THROW(step_point(Sequence{}), std::invalid_argument);
}

TEST(Sequence, MakeStepMatchesEquationOne) {
  // Eq. (1): x_i = ceil((sum - i)/w).
  for (std::size_t w = 1; w <= 8; ++w) {
    for (Value total = 0; total <= 40; ++total) {
      const Sequence x = make_step(w, total);
      ASSERT_TRUE(is_step(x)) << "w=" << w << " total=" << total;
      ASSERT_EQ(sum(x), total);
      for (std::size_t i = 0; i < w; ++i) {
        const Value expected =
            (total - static_cast<Value>(i) + static_cast<Value>(w) - 1) >=
                    static_cast<Value>(w)
                ? (total - static_cast<Value>(i) + static_cast<Value>(w) - 1) /
                      static_cast<Value>(w)
                : (total > static_cast<Value>(i) ? 1 : 0);
        EXPECT_EQ(x[i], expected) << "w=" << w << " total=" << total
                                  << " i=" << i;
      }
    }
  }
}

TEST(Sequence, EvenOddSubsequences) {
  const Sequence x = {0, 1, 2, 3, 4};
  EXPECT_EQ(even_subseq(x), (Sequence{0, 2, 4}));
  EXPECT_EQ(odd_subseq(x), (Sequence{1, 3}));
}

TEST(Sequence, Halves) {
  const Sequence x = {9, 8, 7, 6};
  EXPECT_EQ(first_half(x), (Sequence{9, 8}));
  EXPECT_EQ(second_half(x), (Sequence{7, 6}));
  EXPECT_THROW(first_half(Sequence{1, 2, 3}), std::invalid_argument);
}

TEST(Sequence, BalancerOutputIsStepFromZeroState) {
  for (std::size_t q = 1; q <= 7; ++q) {
    for (Value total = 0; total <= 30; ++total) {
      const Sequence y = balancer_output(total, q);
      EXPECT_TRUE(is_step(y)) << "q=" << q << " total=" << total;
      EXPECT_EQ(sum(y), total);
    }
  }
}

TEST(Sequence, BalancerOutputRespectsInitialState) {
  // 3 tokens through a (·,4)-balancer starting at state 2 exit on wires
  // 2, 3, 0.
  const Sequence y = balancer_output(3, 4, 2);
  EXPECT_EQ(y, (Sequence{1, 0, 1, 1}));
}

TEST(Sequence, BalancerOutputInitialStatePreservesSum) {
  for (std::size_t q = 2; q <= 5; ++q) {
    for (std::size_t s = 0; s < q; ++s) {
      for (Value total = 0; total <= 20; ++total) {
        EXPECT_EQ(sum(balancer_output(total, q, s)), total);
      }
    }
  }
}

TEST(Sequence, BalancerOutputRejectsBadArgs) {
  EXPECT_THROW(balancer_output(-1, 2), std::invalid_argument);
  EXPECT_THROW(balancer_output(1, 0), std::invalid_argument);
  EXPECT_THROW(balancer_output(1, 2, 2), std::invalid_argument);
}

// --- Lemma property tests ------------------------------------------------

// Lemma 2.1: any subsequence of a step sequence is step.
TEST(Lemmas, SubsequencesOfStepAreStep) {
  util::Xoshiro256 rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t w = 2 + rng.below(16);
    const auto x = make_step(w, static_cast<Value>(rng.below(200)));
    // Random subsequence via a random keep-mask.
    Sequence sub;
    for (std::size_t i = 0; i < w; ++i) {
      if (rng.below(2)) sub.push_back(x[i]);
    }
    EXPECT_TRUE(is_step(sub));
    EXPECT_TRUE(is_step(even_subseq(x)));
    EXPECT_TRUE(is_step(odd_subseq(x)));
  }
}

// Lemma 2.2: step sequences with sums differing by [0, delta] have maxima
// differing by [0, floor(delta/w) + 1].
TEST(Lemmas, MaximaBoundFromSumGap) {
  util::Xoshiro256 rng(22);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t w = 2 + rng.below(16);
    const Value delta = static_cast<Value>(rng.below(40));
    const Value sum_y = static_cast<Value>(rng.below(300));
    const Value sum_x = sum_y + static_cast<Value>(
        rng.below(static_cast<std::uint64_t>(delta) + 1));
    const auto x = make_step(w, sum_x);
    const auto y = make_step(w, sum_y);
    const Value a = *std::max_element(x.begin(), x.end());
    const Value b = *std::max_element(y.begin(), y.end());
    EXPECT_GE(a - b, 0);
    EXPECT_LE(a - b, delta / static_cast<Value>(w) + 1);
  }
}

// Lemma 2.3: even/odd subsequence sums of a step sequence differ by 0 or 1.
TEST(Lemmas, EvenOddSumGapAtMostOne) {
  for (std::size_t w = 2; w <= 16; w += 2) {
    for (Value total = 0; total <= 5 * static_cast<Value>(w); ++total) {
      const auto x = make_step(w, total);
      const Value gap = sum(even_subseq(x)) - sum(odd_subseq(x));
      EXPECT_GE(gap, 0);
      EXPECT_LE(gap, 1);
    }
  }
}

// Lemma 2.4: if step sums differ by an even delta, the even (and odd)
// subsequence sums differ by at most delta/2 (and at least 0).
TEST(Lemmas, EvenOddSubsequenceSumHalving) {
  for (std::size_t w = 2; w <= 12; w += 2) {
    for (Value delta = 0; delta <= 8; delta += 2) {
      for (Value sum_y = 0; sum_y <= 30; ++sum_y) {
        for (Value gap = 0; gap <= delta; ++gap) {
          const auto x = make_step(w, sum_y + gap);
          const auto y = make_step(w, sum_y);
          const Value even_gap = sum(even_subseq(x)) - sum(even_subseq(y));
          const Value odd_gap = sum(odd_subseq(x)) - sum(odd_subseq(y));
          EXPECT_GE(even_gap, 0);
          EXPECT_LE(even_gap, delta / 2);
          EXPECT_GE(odd_gap, 0);
          EXPECT_LE(odd_gap, delta / 2);
        }
      }
    }
  }
}

}  // namespace
}  // namespace cnet::seq
