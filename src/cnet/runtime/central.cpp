#include "cnet/runtime/central.hpp"

namespace cnet::rt {

std::int64_t CasCounter::fetch_increment(std::size_t thread_hint) {
  std::int64_t cur = value_.value.load(std::memory_order_relaxed);
  std::uint64_t retries = 0;
  while (!value_.value.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_relaxed)) {
    ++retries;
  }
  if (retries != 0) {
    stalls_[thread_hint % kStallSlots].value.fetch_add(
        retries, std::memory_order_relaxed);
  }
  return cur;
}

std::uint64_t CasCounter::stall_count() const {
  std::uint64_t total = 0;
  for (const auto& slot : stalls_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cnet::rt
