#include "cnet/runtime/central.hpp"

namespace cnet::rt {

namespace {

// Shared bounded-decrement loop for the atomic central counters: move the
// value back by one unless it is already zero. Failed CAS attempts count as
// stalls, symmetrically with the increment path.
bool bounded_decrement(std::atomic<std::int64_t>& value,
                       std::int64_t* reclaimed, util::StallSlots& stalls,
                       std::size_t thread_hint) {
  std::int64_t cur = value.load(std::memory_order_relaxed);
  std::uint64_t retries = 0;
  while (cur > 0) {
    if (value.compare_exchange_weak(cur, cur - 1,
                                    std::memory_order_relaxed)) {
      stalls.add(thread_hint, retries);
      if (reclaimed != nullptr) *reclaimed = cur - 1;
      return true;
    }
    ++retries;
  }
  stalls.add(thread_hint, retries);
  return false;
}

// Bulk form: one CAS takes a whole block of min(n, value) values.
std::uint64_t bounded_decrement_n(std::atomic<std::int64_t>& value,
                                  std::uint64_t n, util::StallSlots& stalls,
                                  std::size_t thread_hint) {
  std::int64_t cur = value.load(std::memory_order_relaxed);
  std::uint64_t retries = 0;
  while (cur > 0) {
    const auto m = std::min<std::uint64_t>(
        n, static_cast<std::uint64_t>(cur));
    if (value.compare_exchange_weak(cur,
                                    cur - static_cast<std::int64_t>(m),
                                    std::memory_order_relaxed)) {
      stalls.add(thread_hint, retries);
      return m;
    }
    ++retries;
  }
  stalls.add(thread_hint, retries);
  return 0;
}

}  // namespace

bool AtomicCounter::try_fetch_decrement(std::size_t thread_hint,
                                        std::int64_t* reclaimed) {
  return bounded_decrement(value_.value, reclaimed, stalls_, thread_hint);
}

std::uint64_t AtomicCounter::try_fetch_decrement_n(std::size_t thread_hint,
                                                   std::uint64_t n) {
  return bounded_decrement_n(value_.value, n, stalls_, thread_hint);
}

std::int64_t CasCounter::fetch_increment(std::size_t thread_hint) {
  std::int64_t cur = value_.value.load(std::memory_order_relaxed);
  std::uint64_t retries = 0;
  while (!value_.value.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_relaxed)) {
    ++retries;
  }
  stalls_.add(thread_hint, retries);
  return cur;
}

bool CasCounter::try_fetch_decrement(std::size_t thread_hint,
                                     std::int64_t* reclaimed) {
  return bounded_decrement(value_.value, reclaimed, stalls_, thread_hint);
}

std::uint64_t CasCounter::try_fetch_decrement_n(std::size_t thread_hint,
                                                std::uint64_t n) {
  return bounded_decrement_n(value_.value, n, stalls_, thread_hint);
}

}  // namespace cnet::rt
