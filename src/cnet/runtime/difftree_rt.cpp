#include "cnet/runtime/difftree_rt.hpp"

#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/sched_point.hpp"

namespace cnet::rt {

namespace {

// Exchanger states. Only the waiter ever resets to kEmpty, which rules out
// ABA without generation tags.
constexpr std::uint64_t kEmpty = 0;
constexpr std::uint64_t kWaiting = 1;
constexpr std::uint64_t kPaired = 2;

// Returns 0 if this token became the waiter and was paired (takes the top
// wire), 1 if it paired with a waiter (takes the bottom wire), -1 on miss.
int try_exchange(std::atomic<std::uint64_t>& state, std::size_t spins) {
  std::uint64_t s = state.load(std::memory_order_acquire);
  if (s == kEmpty) {
    std::uint64_t expected = kEmpty;
    if (!state.compare_exchange_strong(expected, kWaiting,
                                       std::memory_order_acq_rel)) {
      return -1;
    }
    for (std::size_t i = 0; i < spins; ++i) {
      if (state.load(std::memory_order_acquire) == kPaired) {
        state.store(kEmpty, std::memory_order_release);
        return 0;
      }
      if ((i & 15u) == 15u) util::sched_yield();
    }
    expected = kWaiting;
    if (state.compare_exchange_strong(expected, kEmpty,
                                      std::memory_order_acq_rel)) {
      return -1;  // withdrew before anyone arrived
    }
    // A partner slipped in between the timeout check and the withdrawal:
    // the state is now kPaired; complete the exchange.
    while (state.load(std::memory_order_acquire) != kPaired) {
      util::sched_yield();
    }
    state.store(kEmpty, std::memory_order_release);
    return 0;
  }
  if (s == kWaiting) {
    std::uint64_t expected = kWaiting;
    if (state.compare_exchange_strong(expected, kPaired,
                                      std::memory_order_acq_rel)) {
      return 1;
    }
  }
  return -1;
}

}  // namespace

DiffractingTreeCounter::DiffractingTreeCounter(const Config& config)
    : cfg_(config) {
  CNET_REQUIRE(cfg_.leaves >= 2 && util::is_pow2(cfg_.leaves),
               "diffracting tree needs 2^k >= 2 leaves");
  CNET_REQUIRE(cfg_.prism_slots >= 1, "need at least one prism slot");
  levels_ = util::ilog2(cfg_.leaves);
  nodes_ = std::vector<Node>(cfg_.leaves);  // heap slots 1..leaves-1 used
  prisms_ = std::vector<Exchanger>(cfg_.leaves * cfg_.prism_slots);
  cells_ = std::vector<util::Padded<std::atomic<std::int64_t>>>(cfg_.leaves);
  for (std::size_t i = 0; i < cfg_.leaves; ++i) {
    cells_[i].value.store(static_cast<std::int64_t>(i),
                          std::memory_order_relaxed);
  }
}

unsigned DiffractingTreeCounter::visit_node(std::size_t node,
                                            std::uint64_t& rng_state) {
  const std::size_t slot =
      node * cfg_.prism_slots +
      static_cast<std::size_t>(util::xorshift64_star(rng_state) %
                               cfg_.prism_slots);
  const int r = try_exchange(prisms_[slot].state, cfg_.partner_spins);
  if (r >= 0) {
    diffractions_.value.fetch_add(1, std::memory_order_relaxed);
    return static_cast<unsigned>(r);
  }
  toggles_.value.fetch_add(1, std::memory_order_relaxed);
  return static_cast<unsigned>(
      nodes_[node].toggle.fetch_add(1, std::memory_order_relaxed) & 1u);
}

std::int64_t DiffractingTreeCounter::fetch_increment(
    std::size_t thread_hint) {
  thread_local std::uint64_t rng_state = 0;
  if (rng_state == 0) {
    rng_state = 0x9e3779b97f4a7c15ULL * (thread_hint + 1) + 0x1998;
  }
  std::size_t node = 1;
  std::size_t leaf_bits = 0;
  for (std::size_t level = 0; level < levels_; ++level) {
    const unsigned bit = visit_node(node, rng_state);
    leaf_bits |= static_cast<std::size_t>(bit) << level;
    node = node * 2 + bit;
  }
  // Leaf j hands out j, j + w, j + 2w, ... — the k-th token overall gets k
  // once the structure is quiescent, exactly like a counting network.
  return cells_[leaf_bits].value.fetch_add(
      static_cast<std::int64_t>(cfg_.leaves), std::memory_order_relaxed);
}

std::string DiffractingTreeCounter::name() const {
  return "difftree(" + std::to_string(cfg_.leaves) + ")";
}

}  // namespace cnet::rt
