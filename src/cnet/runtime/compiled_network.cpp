#include "cnet/runtime/compiled_network.hpp"

#include "cnet/util/ensure.hpp"

namespace cnet::rt {

const char* balancer_mode_name(BalancerMode mode) noexcept {
  return mode == BalancerMode::kFetchAdd ? "fetch-add" : "cas-retry";
}

CompiledNetwork::CompiledNetwork(const topo::Topology& net) {
  num_nodes_ = net.num_balancers();
  width_out_ = net.width_out();
  nodes_ = std::make_unique<Node[]>(num_nodes_);

  std::size_t total_ports = 0;
  for (std::uint32_t b = 0; b < num_nodes_; ++b) {
    const auto& bal = net.balancer(topo::BalancerId{b});
    nodes_[b].fanout = static_cast<std::uint32_t>(bal.fan_out());
    nodes_[b].route_base = static_cast<std::uint32_t>(total_ports);
    total_ports += bal.fan_out();
  }
  route_.resize(total_ports);

  auto encode = [&](topo::WireId wire) -> std::int32_t {
    const auto& end = net.consumer(wire);
    if (end.kind == topo::WireEnd::Kind::kNetworkOutput) {
      return ~static_cast<std::int32_t>(end.port);
    }
    return static_cast<std::int32_t>(end.balancer.value);
  };
  for (std::uint32_t b = 0; b < num_nodes_; ++b) {
    const auto& bal = net.balancer(topo::BalancerId{b});
    for (std::size_t port = 0; port < bal.fan_out(); ++port) {
      route_[nodes_[b].route_base + port] = encode(bal.outputs[port]);
    }
  }
  entry_.reserve(net.width_in());
  for (const topo::WireId in : net.input_wires()) {
    entry_.push_back(encode(in));
  }
}

namespace {

// Euclidean modulo: result in [0, m) even for negative v.
std::uint32_t euclid_mod(std::int64_t v, std::uint32_t m) noexcept {
  const std::int64_t r = v % static_cast<std::int64_t>(m);
  return static_cast<std::uint32_t>(r >= 0 ? r
                                           : r + static_cast<std::int64_t>(m));
}

}  // namespace

std::size_t CompiledNetwork::traverse(std::size_t input_wire,
                                      BalancerMode mode,
                                      std::uint64_t* stalls) noexcept {
  std::int32_t at = entry_[input_wire];
  while (at >= 0) {
    Node& node = nodes_[static_cast<std::size_t>(at)];
    std::int64_t ticket;
    if (mode == BalancerMode::kFetchAdd) {
      // One wait-free atomic transition; memory order relaxed is enough —
      // the balancer state is the only datum and the RMW is atomic.
      ticket = node.state.fetch_add(1, std::memory_order_relaxed);
    } else {
      // CAS loop: every failure means another token slipped through first,
      // i.e. one stall in the Dwork-et-al. sense.
      ticket = node.state.load(std::memory_order_relaxed);
      while (!node.state.compare_exchange_weak(ticket, ticket + 1,
                                               std::memory_order_relaxed)) {
        ++*stalls;
      }
    }
    at = route_[node.route_base + euclid_mod(ticket, node.fanout)];
  }
  return static_cast<std::size_t>(~at);
}

std::size_t CompiledNetwork::traverse_anti(std::size_t input_wire,
                                           BalancerMode mode,
                                           std::uint64_t* stalls) noexcept {
  std::int32_t at = entry_[input_wire];
  while (at >= 0) {
    Node& node = nodes_[static_cast<std::size_t>(at)];
    std::int64_t landed;
    if (mode == BalancerMode::kFetchAdd) {
      landed = node.state.fetch_sub(1, std::memory_order_relaxed) - 1;
    } else {
      std::int64_t cur = node.state.load(std::memory_order_relaxed);
      while (!node.state.compare_exchange_weak(cur, cur - 1,
                                               std::memory_order_relaxed)) {
        ++*stalls;
      }
      landed = cur - 1;
    }
    // The antitoken leaves on the wire the state stepped back onto — the
    // wire the most recent (now cancelled) token transition used.
    at = route_[node.route_base + euclid_mod(landed, node.fanout)];
  }
  return static_cast<std::size_t>(~at);
}

void CompiledNetwork::reset() noexcept {
  for (std::size_t b = 0; b < num_nodes_; ++b) {
    nodes_[b].state.store(0, std::memory_order_relaxed);
  }
}

}  // namespace cnet::rt
