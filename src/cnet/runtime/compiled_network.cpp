#include "cnet/runtime/compiled_network.hpp"

#include "cnet/util/ensure.hpp"

namespace cnet::rt {

const char* balancer_mode_name(BalancerMode mode) noexcept {
  return mode == BalancerMode::kFetchAdd ? "fetch-add" : "cas-retry";
}

CompiledNetwork::CompiledNetwork(const topo::Topology& net) {
  num_nodes_ = net.num_balancers();
  width_out_ = net.width_out();
  nodes_ = std::make_unique<Node[]>(num_nodes_);

  std::size_t total_ports = 0;
  for (std::uint32_t b = 0; b < num_nodes_; ++b) {
    const auto& bal = net.balancer(topo::BalancerId{b});
    nodes_[b].fanout = static_cast<std::uint32_t>(bal.fan_out());
    nodes_[b].route_base = static_cast<std::uint32_t>(total_ports);
    total_ports += bal.fan_out();
  }
  route_.resize(total_ports);

  auto encode = [&](topo::WireId wire) -> std::int32_t {
    const auto& end = net.consumer(wire);
    if (end.kind == topo::WireEnd::Kind::kNetworkOutput) {
      return ~static_cast<std::int32_t>(end.port);
    }
    return static_cast<std::int32_t>(end.balancer.value);
  };
  for (std::uint32_t b = 0; b < num_nodes_; ++b) {
    const auto& bal = net.balancer(topo::BalancerId{b});
    for (std::size_t port = 0; port < bal.fan_out(); ++port) {
      const std::int32_t dest = encode(bal.outputs[port]);
      // Balancer creation order is topological (topology.hpp): batch
      // traversal propagates counts in index order and relies on it.
      CNET_ENSURE(dest < 0 || dest > static_cast<std::int32_t>(b),
                  "balancer indices must be topologically ordered");
      route_[nodes_[b].route_base + port] = dest;
    }
  }
  entry_.reserve(net.width_in());
  for (const topo::WireId in : net.input_wires()) {
    entry_.push_back(encode(in));
  }
}

namespace {

// Euclidean modulo: result in [0, m) even for negative v.
std::uint32_t euclid_mod(std::int64_t v, std::uint32_t m) noexcept {
  const std::int64_t r = v % static_cast<std::int64_t>(m);
  return static_cast<std::uint32_t>(r >= 0 ? r
                                           : r + static_cast<std::int64_t>(m));
}

}  // namespace

std::size_t CompiledNetwork::traverse(std::size_t input_wire,
                                      BalancerMode mode,
                                      std::uint64_t* stalls) noexcept {
  std::int32_t at = entry_[input_wire];
  while (at >= 0) {
    Node& node = nodes_[static_cast<std::size_t>(at)];
    std::int64_t ticket;
    if (mode == BalancerMode::kFetchAdd) {
      // One wait-free atomic transition; memory order relaxed is enough —
      // the balancer state is the only datum and the RMW is atomic.
      ticket = node.state.fetch_add(1, std::memory_order_relaxed);
    } else {
      // CAS loop: every failure means another token slipped through first,
      // i.e. one stall in the Dwork-et-al. sense.
      ticket = node.state.load(std::memory_order_relaxed);
      while (!node.state.compare_exchange_weak(ticket, ticket + 1,
                                               std::memory_order_relaxed)) {
        ++*stalls;
      }
    }
    at = route_[node.route_base + euclid_mod(ticket, node.fanout)];
  }
  return static_cast<std::size_t>(~at);
}

std::size_t CompiledNetwork::traverse_anti(std::size_t input_wire,
                                           BalancerMode mode,
                                           std::uint64_t* stalls) noexcept {
  std::int32_t at = entry_[input_wire];
  while (at >= 0) {
    Node& node = nodes_[static_cast<std::size_t>(at)];
    std::int64_t landed;
    if (mode == BalancerMode::kFetchAdd) {
      landed = node.state.fetch_sub(1, std::memory_order_relaxed) - 1;
    } else {
      std::int64_t cur = node.state.load(std::memory_order_relaxed);
      while (!node.state.compare_exchange_weak(cur, cur - 1,
                                               std::memory_order_relaxed)) {
        ++*stalls;
      }
      landed = cur - 1;
    }
    // The antitoken leaves on the wire the state stepped back onto — the
    // wire the most recent (now cancelled) token transition used.
    at = route_[node.route_base + euclid_mod(landed, node.fanout)];
  }
  return static_cast<std::size_t>(~at);
}

void CompiledNetwork::traverse_batch(std::size_t input_wire, std::uint64_t k,
                                     BalancerMode mode, std::uint64_t* stalls,
                                     BatchScratch& scratch,
                                     std::uint64_t* out_counts) noexcept {
  if (k == 0) return;
  const std::int32_t first = entry_[input_wire];
  if (first < 0) {
    out_counts[static_cast<std::size_t>(~first)] += k;
    return;
  }
  auto& pending = scratch.pending_;
  pending.assign(num_nodes_, 0);
  pending[static_cast<std::size_t>(first)] = k;

  // Node indices are topological, so a single forward sweep sees every
  // balancer after all of its in-batch predecessors; it stops as soon as
  // every token has reached an output wire.
  std::uint64_t in_flight = k;
  for (std::size_t b = static_cast<std::size_t>(first);
       b < num_nodes_ && in_flight != 0; ++b) {
    const std::uint64_t m = pending[b];
    if (m == 0) continue;
    Node& node = nodes_[b];
    std::int64_t ticket;
    if (mode == BalancerMode::kFetchAdd) {
      ticket = node.state.fetch_add(static_cast<std::int64_t>(m),
                                    std::memory_order_relaxed);
    } else {
      ticket = node.state.load(std::memory_order_relaxed);
      while (!node.state.compare_exchange_weak(
          ticket, ticket + static_cast<std::int64_t>(m),
          std::memory_order_relaxed)) {
        ++*stalls;
      }
    }
    // Tickets ticket..ticket+m-1 land round-robin on the fanout wires:
    // every wire gets m/f, and the m%f wires starting at ticket mod f
    // (cyclically) get one more.
    const std::uint32_t f = node.fanout;
    const std::uint64_t per_wire = m / f;
    const std::uint64_t extra = m % f;
    const std::uint32_t start = euclid_mod(ticket, f);
    for (std::uint32_t port = 0; port < f; ++port) {
      const std::uint32_t offset = (port + f - start) % f;
      const std::uint64_t count = per_wire + (offset < extra ? 1 : 0);
      if (count == 0) continue;
      const std::int32_t dest = route_[node.route_base + port];
      if (dest < 0) {
        out_counts[static_cast<std::size_t>(~dest)] += count;
        in_flight -= count;
      } else {
        pending[static_cast<std::size_t>(dest)] += count;
      }
    }
  }
}

void CompiledNetwork::reset() noexcept {
  for (std::size_t b = 0; b < num_nodes_; ++b) {
    nodes_[b].state.store(0, std::memory_order_relaxed);
  }
}

}  // namespace cnet::rt
