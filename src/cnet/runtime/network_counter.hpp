// A shared Fetch&Increment counter backed by a balancing network
// (paper §1.1): tokens traverse the network and the exit wire's cell v_i
// (initialized to i, stepped by the output width t) assigns the value.
// If the underlying network is a counting network, concurrent calls return
// exactly the values 0, 1, 2, ... with no gaps or duplicates once quiescent.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cnet/runtime/compiled_network.hpp"
#include "cnet/runtime/counter.hpp"
#include "cnet/util/cacheline.hpp"

namespace cnet::rt {

class NetworkCounter : public Counter {
 public:
  // `label` names the network family in benchmark output, e.g. "C(8,16)".
  NetworkCounter(const topo::Topology& net, std::string label,
                 BalancerMode mode = BalancerMode::kFetchAdd);

  std::int64_t fetch_increment(std::size_t thread_hint) override;

  // Fetch&Decrement via an antitoken (paper §1.4.2 / Aiello et al.):
  // returns the counter value it reclaims — i.e. the value the next
  // Fetch&Increment will hand out again. The caller must never let the
  // outstanding count (increments minus decrements) go negative, exactly
  // like a semaphore.
  std::int64_t fetch_decrement(std::size_t thread_hint);

  std::string name() const override { return label_; }
  std::uint64_t stall_count() const override;

  std::size_t width_in() const noexcept { return net_.width_in(); }
  std::size_t width_out() const noexcept { return net_.width_out(); }

 protected:
  // Shared with BatchedNetworkCounter, whose batch path claims values from
  // the same cells the per-token path does.
  CompiledNetwork net_;
  std::string label_;
  BalancerMode mode_;
  std::vector<util::Padded<std::atomic<std::int64_t>>> cells_;
  // Per-slot padded stall counters, indexed by thread hint modulo slots.
  std::vector<util::Padded<std::atomic<std::uint64_t>>> stalls_;

  void add_stalls(std::size_t thread_hint, std::uint64_t stalls);
};

// A NetworkCounter whose fetch_increment_batch shepherds all k tokens
// through the network in one traverse_batch pass and claims each exit
// wire's values with a single cell fetch_add(count · t) — handing out a
// contiguous-per-wire block base, base+t, ..., base+(count-1)·t. Per-value
// atomic traffic drops by up to k× versus the inherited per-token path,
// which NetworkCounter keeps as the comparison baseline.
class BatchedNetworkCounter final : public NetworkCounter {
 public:
  using NetworkCounter::NetworkCounter;

  void fetch_increment_batch(std::size_t thread_hint, std::size_t k,
                             std::int64_t* out_values) override;
};

}  // namespace cnet::rt
