// A shared Fetch&Increment counter backed by a balancing network
// (paper §1.1): tokens traverse the network and the exit wire's cell v_i
// (initialized to i, stepped by the output width t) assigns the value.
// If the underlying network is a counting network, concurrent calls return
// exactly the values 0, 1, 2, ... with no gaps or duplicates once quiescent.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cnet/runtime/compiled_network.hpp"
#include "cnet/runtime/counter.hpp"
#include "cnet/util/cacheline.hpp"
#include "cnet/util/stall_slots.hpp"

namespace cnet::rt {

class NetworkCounter : public Counter {
 public:
  // `label` names the network family in benchmark output, e.g. "C(8,16)".
  NetworkCounter(const topo::Topology& net, std::string label,
                 BalancerMode mode = BalancerMode::kFetchAdd);

  std::int64_t fetch_increment(std::size_t thread_hint) override;

  // Fetch&Decrement via an antitoken (paper §1.4.2 / Aiello et al.):
  // returns the counter value it reclaims — i.e. the value the next
  // Fetch&Increment will hand out again. The caller must never let the
  // outstanding count (increments minus decrements) go negative, exactly
  // like a semaphore.
  std::int64_t fetch_decrement(std::size_t thread_hint);

  // Bounded Fetch&Decrement: an antitoken traversal whose exit-cell claim
  // only succeeds while that wire has a net-positive handed-out count, so
  // the total of successful try-decrements can never exceed the total of
  // increments — no external semaphore discipline needed. When the exit
  // wire is drained the op falls back to one bounded round-robin sweep of
  // the other exit cells, so it only reports empty when every cell sat at
  // its floor during the pass (the pool is genuinely empty, or concurrent
  // consumers are emptying it). On failure the antitoken stays absorbed in
  // the balancer states and the next token through cancels it (paper
  // §1.4.2 token/antitoken duality): counts stay conserved and no value is
  // duplicated, but the quiescent outstanding set is no longer guaranteed
  // to be the exact prefix {0..c-1}. Use fetch_decrement when values are
  // identities (IDs); use this when they are pool tokens
  // (svc::NetTokenBucket).
  bool try_fetch_decrement(std::size_t thread_hint,
                           std::int64_t* reclaimed = nullptr) override;

  // Bulk form: one antitoken traversal, then block claims — each cell CAS
  // takes min(still needed, that wire's surplus) values at once, sweeping
  // wires from the traversal's exit. Same per-cell floor bound, so the
  // never-exceeds-increments guarantee is unchanged; cost drops from one
  // traversal per value to one traversal per call.
  std::uint64_t try_fetch_decrement_n(std::size_t thread_hint,
                                      std::uint64_t n) override;

  std::string name() const override { return label_; }
  std::uint64_t stall_count() const override { return stalls_.total(); }
  // Tokens + antitokens that entered the network: 1 per (fetch|try_fetch_)
  // increment/decrement, k per k-token batch pass, 1 antitoken per
  // try_fetch_decrement_n call. The number the elimination layer exists to
  // shrink relative to the op count.
  std::uint64_t traversal_count() const override {
    return traversals_.total();
  }
  // Batch passes taken by BatchedNetworkCounter's amortized path (0 on the
  // per-token base class): traversal_count() / batch_pass_count() is the
  // observed tokens-per-pass, the number that proves a shrunken batch
  // chunk reached the network.
  std::uint64_t batch_pass_count() const override {
    return batch_passes_.total();
  }

  std::size_t width_in() const noexcept { return net_.width_in(); }
  std::size_t width_out() const noexcept { return net_.width_out(); }

 protected:
  // Shared with BatchedNetworkCounter, whose batch path claims values from
  // the same cells the per-token path does.
  CompiledNetwork net_;
  std::string label_;
  BalancerMode mode_;
  std::vector<util::Padded<std::atomic<std::int64_t>>> cells_;
  util::StallSlots stalls_;
  util::StallSlots traversals_;
  util::StallSlots batch_passes_;

 private:
  bool try_claim_cell(std::size_t wire, std::size_t thread_hint,
                      std::int64_t* reclaimed);
  std::uint64_t try_claim_cell_n(std::size_t wire, std::size_t thread_hint,
                                 std::uint64_t n);
};

// A NetworkCounter whose fetch_increment_batch shepherds all k tokens
// through the network in one traverse_batch pass and claims each exit
// wire's values with a single cell fetch_add(count · t) — handing out a
// contiguous-per-wire block base, base+t, ..., base+(count-1)·t. Per-value
// atomic traffic drops by up to k× versus the inherited per-token path,
// which NetworkCounter keeps as the comparison baseline.
class BatchedNetworkCounter final : public NetworkCounter {
 public:
  using NetworkCounter::NetworkCounter;

  void fetch_increment_batch(std::size_t thread_hint, std::size_t k,
                             std::int64_t* out_values) override;
};

}  // namespace cnet::rt
