#include "cnet/runtime/barrier.hpp"

#include <thread>

#include "cnet/util/ensure.hpp"

namespace cnet::rt {

CountingBarrier::CountingBarrier(std::shared_ptr<Counter> counter,
                                 std::size_t parties)
    : counter_(std::move(counter)), parties_(parties) {
  CNET_REQUIRE(counter_ != nullptr, "barrier needs a counter");
  CNET_REQUIRE(parties_ >= 1, "barrier needs at least one party");
}

std::int64_t CountingBarrier::arrive_and_wait(std::size_t thread_hint) {
  const std::int64_t ticket = counter_->fetch_increment(thread_hint);
  const std::int64_t phase = ticket / static_cast<std::int64_t>(parties_);
  const bool last =
      ticket % static_cast<std::int64_t>(parties_) ==
      static_cast<std::int64_t>(parties_) - 1;
  if (last) {
    epoch_.value.store(phase + 1, std::memory_order_release);
    epoch_.value.notify_all();
  } else {
    std::int64_t seen = epoch_.value.load(std::memory_order_acquire);
    while (seen <= phase) {
      epoch_.value.wait(seen, std::memory_order_acquire);
      seen = epoch_.value.load(std::memory_order_acquire);
    }
  }
  return phase;
}

}  // namespace cnet::rt
