// The shared-counter abstraction (paper §1.1): concurrent objects that
// support Fetch&Increment, handing out successive integer values. Every
// implementation in this library — counting networks, diffracting tree,
// central counters — implements this interface, so examples and benchmarks
// can swap them freely.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "cnet/util/ensure.hpp"

namespace cnet::rt {

class Counter {
 public:
  virtual ~Counter() = default;

  // Returns the next counter value. `thread_hint` identifies the calling
  // process (used to pick the entry wire, l mod w, per paper §1.2); callers
  // should pass a stable per-thread index.
  virtual std::int64_t fetch_increment(std::size_t thread_hint) = 0;

  // Claims `k` counter values at once, writing them (in no particular
  // order) to out_values[0..k). The values are exactly those that k
  // back-to-back fetch_increment calls could have returned — no gaps, no
  // duplicates across concurrent callers. The default loops over
  // fetch_increment; batching backends override it to amortize the atomic
  // traffic (one RMW per balancer per batch instead of per token).
  virtual void fetch_increment_batch(std::size_t thread_hint, std::size_t k,
                                     std::int64_t* out_values) {
    for (std::size_t i = 0; i < k; ++i) {
      out_values[i] = fetch_increment(thread_hint);
    }
  }

  // Tries to take back one outstanding value, so that a later
  // fetch_increment hands it out again. On success returns true and, when
  // `reclaimed` is non-null, stores the reclaimed value. Returns false when
  // no value is observably available to take back — the counter then stays
  // semantically unchanged (net handed-out count is preserved). Unlike
  // NetworkCounter::fetch_decrement, callers need no external accounting:
  // the implementation itself bounds the net outstanding count at zero.
  //
  // This is the primitive the svc layer's token buckets consume through:
  // increments refill the pool, try-decrements drain it, and the bound at
  // zero is what makes "never over-admit" a local property. The default
  // says take-back is unsupported; backends that can bound the count
  // (central counters, network counters) override it.
  virtual bool try_fetch_decrement(std::size_t /*thread_hint*/,
                                   std::int64_t* /*reclaimed*/ = nullptr) {
    return false;
  }

  // Bulk form: takes back up to `n` outstanding values and returns how
  // many were actually taken (0 when none are observably available). Same
  // bound-at-zero guarantee as try_fetch_decrement; backends override to
  // amortize (one CAS for a whole block instead of one per value).
  virtual std::uint64_t try_fetch_decrement_n(std::size_t thread_hint,
                                              std::uint64_t n) {
    std::uint64_t got = 0;
    while (got < n && try_fetch_decrement(thread_hint)) ++got;
    return got;
  }

  // Returns `n` previously claimed values to the pool. Count-wise this is
  // exactly `n` increments with the values discarded — the default does
  // just that, in bounded chunks — but it is a distinct operation so
  // instrumentation layers can tell *refund* traffic (the un-consume of an
  // all-or-nothing shortfall, or a release of tokens granted earlier) from
  // organic refills: svc::AdaptiveCounter keeps refunds out of the
  // stall-rate window its switch decision samples, so a pure-reject storm
  // cannot masquerade as load.
  virtual void refund_n(std::size_t thread_hint, std::uint64_t n) {
    constexpr std::size_t kChunk = 256;
    std::int64_t scratch[kChunk];
    while (n > 0) {
      const auto k =
          static_cast<std::size_t>(std::min<std::uint64_t>(n, kChunk));
      fetch_increment_batch(thread_hint, k, scratch);
      n -= k;
    }
  }

  virtual std::string name() const = 0;

  // Total observed contention events (CAS retries / lock waits), if the
  // implementation tracks them; 0 otherwise.
  virtual std::uint64_t stall_count() const { return 0; }

  // Total tokens and antitokens that entered the backing structure: one per
  // fetch_increment / (try_)fetch_decrement traversal, k per k-token batch,
  // one antitoken per try_fetch_decrement_n call. Central counters have no
  // structure to traverse and report 0; the elimination layer's whole point
  // is keeping this number below the op count, so it is the denominator of
  // the "traversals per op" benches.
  virtual std::uint64_t traversal_count() const { return 0; }

  // Amortized batch passes taken through the structure (one per
  // fetch_increment_batch call that used a real batch traversal). Paired
  // with traversal_count this exposes the *effective* batch size —
  // traversals per pass — which is how an observer can tell that a smaller
  // batch chunk (the overload manager's shrink-batch action, or a staged
  // re-chunk through the reconfiguration engine) actually reached the
  // backend rather than stopping at a caller's loop arithmetic. Backends
  // without a batch path report 0.
  virtual std::uint64_t batch_pass_count() const { return 0; }
};

// Decorator base (GoF-style): owns an inner Counter and forwards every
// operation and telemetry read to it. Layers that intercept part of the
// protocol — svc::ElimCounter pairing increments with decrements before
// they reach the network, instrumentation shims — derive from this and
// override only the ops they change, so a stack of decorators still behaves
// as one Counter to every svc consumer.
class ForwardingCounter : public Counter {
 public:
  explicit ForwardingCounter(std::unique_ptr<Counter> inner)
      : inner_(std::move(inner)) {
    CNET_REQUIRE(inner_ != nullptr, "null inner counter");
  }

  std::int64_t fetch_increment(std::size_t thread_hint) override {
    return inner_->fetch_increment(thread_hint);
  }
  void fetch_increment_batch(std::size_t thread_hint, std::size_t k,
                             std::int64_t* out_values) override {
    inner_->fetch_increment_batch(thread_hint, k, out_values);
  }
  bool try_fetch_decrement(std::size_t thread_hint,
                           std::int64_t* reclaimed = nullptr) override {
    return inner_->try_fetch_decrement(thread_hint, reclaimed);
  }
  std::uint64_t try_fetch_decrement_n(std::size_t thread_hint,
                                      std::uint64_t n) override {
    return inner_->try_fetch_decrement_n(thread_hint, n);
  }
  // Refunds take the inner counter's fast path directly (an ElimCounter
  // does not route them through the exchange slots): give-backs should
  // land in the pool unconditionally, not wait for a partner.
  void refund_n(std::size_t thread_hint, std::uint64_t n) override {
    inner_->refund_n(thread_hint, n);
  }
  std::string name() const override { return inner_->name(); }
  std::uint64_t stall_count() const override { return inner_->stall_count(); }
  std::uint64_t traversal_count() const override {
    return inner_->traversal_count();
  }
  std::uint64_t batch_pass_count() const override {
    return inner_->batch_pass_count();
  }

  Counter& inner() noexcept { return *inner_; }
  const Counter& inner() const noexcept { return *inner_; }

 private:
  std::unique_ptr<Counter> inner_;
};

}  // namespace cnet::rt
