// Centralized counter baselines: the trivial single-location counters that
// counting networks are designed to outperform under contention (paper §1.1).
#pragma once

#include <algorithm>
#include <atomic>

#include "cnet/runtime/counter.hpp"
#include "cnet/util/cacheline.hpp"
#include "cnet/util/mutex.hpp"
#include "cnet/util/stall_slots.hpp"
#include "cnet/util/thread_annotations.hpp"

namespace cnet::rt {

// One shared cache line, advanced by fetch_add. Wait-free but a sequential
// bottleneck: every operation serializes on the same location.
class AtomicCounter final : public Counter {
 public:
  std::int64_t fetch_increment(std::size_t) override {
    return value_.value.fetch_add(1, std::memory_order_relaxed);
  }
  bool try_fetch_decrement(std::size_t thread_hint,
                           std::int64_t* reclaimed = nullptr) override;
  std::uint64_t try_fetch_decrement_n(std::size_t thread_hint,
                                      std::uint64_t n) override;
  std::string name() const override { return "central-atomic"; }
  std::uint64_t stall_count() const override { return stalls_.total(); }

 private:
  util::Padded<std::atomic<std::int64_t>> value_{};
  util::StallSlots stalls_;
};

// CAS-retry central counter: the canonical high-contention victim; retries
// are counted as stalls.
class CasCounter final : public Counter {
 public:
  std::int64_t fetch_increment(std::size_t thread_hint) override;
  bool try_fetch_decrement(std::size_t thread_hint,
                           std::int64_t* reclaimed = nullptr) override;
  std::uint64_t try_fetch_decrement_n(std::size_t thread_hint,
                                      std::uint64_t n) override;
  std::string name() const override { return "central-cas"; }
  std::uint64_t stall_count() const override { return stalls_.total(); }

 private:
  util::Padded<std::atomic<std::int64_t>> value_{};
  util::StallSlots stalls_;
};

// Lock-protected counter.
class MutexCounter final : public Counter {
 public:
  std::int64_t fetch_increment(std::size_t) override {
    const util::MutexLock lock(mu_);
    return value_++;
  }
  bool try_fetch_decrement(std::size_t,
                           std::int64_t* reclaimed = nullptr) override {
    const util::MutexLock lock(mu_);
    if (value_ <= 0) return false;
    --value_;
    if (reclaimed != nullptr) *reclaimed = value_;
    return true;
  }
  std::uint64_t try_fetch_decrement_n(std::size_t,
                                      std::uint64_t n) override {
    const util::MutexLock lock(mu_);
    const auto m = std::min<std::uint64_t>(
        n, value_ > 0 ? static_cast<std::uint64_t>(value_) : 0);
    value_ -= static_cast<std::int64_t>(m);
    return m;
  }
  std::string name() const override { return "central-mutex"; }

 private:
  util::Mutex mu_;
  std::int64_t value_ CNET_GUARDED_BY(mu_) = 0;
};

}  // namespace cnet::rt
