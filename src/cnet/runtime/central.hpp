// Centralized counter baselines: the trivial single-location counters that
// counting networks are designed to outperform under contention (paper §1.1).
#pragma once

#include <atomic>
#include <mutex>

#include "cnet/runtime/counter.hpp"
#include "cnet/util/cacheline.hpp"

namespace cnet::rt {

// One shared cache line, advanced by fetch_add. Wait-free but a sequential
// bottleneck: every operation serializes on the same location.
class AtomicCounter final : public Counter {
 public:
  std::int64_t fetch_increment(std::size_t) override {
    return value_.value.fetch_add(1, std::memory_order_relaxed);
  }
  std::string name() const override { return "central-atomic"; }

 private:
  util::Padded<std::atomic<std::int64_t>> value_{};
};

// CAS-retry central counter: the canonical high-contention victim; retries
// are counted as stalls.
class CasCounter final : public Counter {
 public:
  std::int64_t fetch_increment(std::size_t thread_hint) override;
  std::string name() const override { return "central-cas"; }
  std::uint64_t stall_count() const override;

 private:
  static constexpr std::size_t kStallSlots = 64;
  util::Padded<std::atomic<std::int64_t>> value_{};
  util::Padded<std::atomic<std::uint64_t>> stalls_[kStallSlots]{};
};

// Lock-protected counter.
class MutexCounter final : public Counter {
 public:
  std::int64_t fetch_increment(std::size_t) override {
    const std::scoped_lock lock(mu_);
    return value_++;
  }
  std::string name() const override { return "central-mutex"; }

 private:
  std::mutex mu_;
  std::int64_t value_ = 0;
};

}  // namespace cnet::rt
