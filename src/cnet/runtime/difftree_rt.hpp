// Diffracting-tree shared counter (Shavit & Zemach, TOCS'96) — the
// irregular randomized baseline of paper §1.4.1.
//
// Each internal tree node holds a toggle bit (a (1,2)-balancer) plus a
// "prism": an array of lock-free exchangers. An arriving token first tries
// to collide with a partner in a randomly chosen prism slot; a collided
// (diffracted) pair leaves on the two child wires without touching the
// toggle — correct because two toggle transitions would have sent them to
// the two children anyway. Tokens that find no partner fall through to the
// toggle. Leaf cells assign counter values exactly like counting-network
// output wires.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cnet/runtime/counter.hpp"
#include "cnet/util/cacheline.hpp"

namespace cnet::rt {

class DiffractingTreeCounter final : public Counter {
 public:
  struct Config {
    std::size_t leaves = 8;       // w = 2^k, k >= 1
    std::size_t prism_slots = 4;  // exchangers per node
    // How long a waiter holds a slot before withdrawing. Collisions only
    // pay off under heavy multiprogramming; keep this small on machines
    // with few cores (a waiter burns the full budget whenever no partner
    // shows up).
    std::size_t partner_spins = 16;
  };

  explicit DiffractingTreeCounter(const Config& config);

  std::int64_t fetch_increment(std::size_t thread_hint) override;
  std::string name() const override;

  // Telemetry: how many node visits were resolved by collision vs toggle.
  std::uint64_t diffractions() const noexcept {
    return diffractions_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t toggle_passes() const noexcept {
    return toggles_.value.load(std::memory_order_relaxed);
  }

 private:
  // Lock-free two-party exchanger; see try_exchange in the .cpp.
  struct alignas(util::kCacheLine) Exchanger {
    std::atomic<std::uint64_t> state{0};
  };
  struct alignas(util::kCacheLine) Node {
    std::atomic<std::uint64_t> toggle{0};
  };

  // Returns 0 (up) or 1 (down) for one node visit.
  unsigned visit_node(std::size_t node, std::uint64_t& rng_state);

  Config cfg_;
  std::size_t levels_ = 0;
  std::vector<Node> nodes_;           // heap order, node 1 is the root
  std::vector<Exchanger> prisms_;     // nodes_ x prism_slots
  std::vector<util::Padded<std::atomic<std::int64_t>>> cells_;
  util::Padded<std::atomic<std::uint64_t>> diffractions_{};
  util::Padded<std::atomic<std::uint64_t>> toggles_{};
};

}  // namespace cnet::rt
