#include "cnet/runtime/network_counter.hpp"

#include <algorithm>

#include "cnet/util/ensure.hpp"

namespace cnet::rt {

NetworkCounter::NetworkCounter(const topo::Topology& net, std::string label,
                               BalancerMode mode)
    : net_(net), label_(std::move(label)), mode_(mode),
      cells_(net.width_out()), stalls_(), traversals_() {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].value.store(static_cast<std::int64_t>(i),
                          std::memory_order_relaxed);
  }
}

std::int64_t NetworkCounter::fetch_increment(std::size_t thread_hint) {
  std::uint64_t local_stalls = 0;
  const std::size_t out =
      net_.traverse(thread_hint % net_.width_in(), mode_, &local_stalls);
  stalls_.add(thread_hint, local_stalls);
  traversals_.add(thread_hint, 1);
  // The exit cell assigns the value and advances by t (paper §1.1). One
  // atomic RMW makes the assignment linearizable per wire.
  return cells_[out].value.fetch_add(
      static_cast<std::int64_t>(net_.width_out()),
      std::memory_order_relaxed);
}

std::int64_t NetworkCounter::fetch_decrement(std::size_t thread_hint) {
  std::uint64_t local_stalls = 0;
  const std::size_t out =
      net_.traverse_anti(thread_hint % net_.width_in(), mode_, &local_stalls);
  stalls_.add(thread_hint, local_stalls);
  traversals_.add(thread_hint, 1);
  // Undo one cell step: the reclaimed value is the new cell content.
  return cells_[out].value.fetch_sub(
             static_cast<std::int64_t>(net_.width_out()),
             std::memory_order_relaxed) -
         static_cast<std::int64_t>(net_.width_out());
}

bool NetworkCounter::try_claim_cell(std::size_t wire, std::size_t thread_hint,
                                    std::int64_t* reclaimed) {
  // Bounded cell claim: wire `wire` starts at value `wire` and holds one
  // unreclaimed handed-out value per step of t above that floor. Only step
  // back while the wire is net-positive, so globally the number of
  // successful try-decrements can never exceed the number of increments at
  // any moment — each success is backed by a specific increment's cell
  // step on the same wire.
  const auto t = static_cast<std::int64_t>(net_.width_out());
  const auto floor = static_cast<std::int64_t>(wire);
  std::int64_t cur = cells_[wire].value.load(std::memory_order_relaxed);
  std::uint64_t retries = 0;
  while (cur >= floor + t) {
    if (cells_[wire].value.compare_exchange_weak(cur, cur - t,
                                                 std::memory_order_relaxed)) {
      stalls_.add(thread_hint, retries);
      if (reclaimed != nullptr) *reclaimed = cur - t;
      return true;
    }
    ++retries;
  }
  stalls_.add(thread_hint, retries);
  return false;
}

bool NetworkCounter::try_fetch_decrement(std::size_t thread_hint,
                                         std::int64_t* reclaimed) {
  std::uint64_t local_stalls = 0;
  const std::size_t out =
      net_.traverse_anti(thread_hint % net_.width_in(), mode_, &local_stalls);
  stalls_.add(thread_hint, local_stalls);
  traversals_.add(thread_hint, 1);
  // Fast path: the antitoken's own exit wire — under balanced traffic this
  // is exactly where the most recent token's value sits.
  if (try_claim_cell(out, thread_hint, reclaimed)) return true;
  // The exit wire is drained but tokens may sit on other wires (phantom
  // antitokens from earlier failures shift the routing). One round-robin
  // sweep over the remaining cells keeps the op lossless: it can only miss
  // when every cell is at its floor during the pass, i.e. the pool is
  // genuinely empty (or being emptied concurrently). The sweep is the
  // O(t) miss path; successful consumes stay on the traversal fast path.
  for (std::size_t i = 1; i < cells_.size(); ++i) {
    const std::size_t wire = (out + i) % cells_.size();
    if (try_claim_cell(wire, thread_hint, reclaimed)) return true;
  }
  return false;
}

std::uint64_t NetworkCounter::try_claim_cell_n(std::size_t wire,
                                               std::size_t thread_hint,
                                               std::uint64_t n) {
  // Block form of try_claim_cell: one CAS steps the cell back by
  // min(n, surplus) values while preserving the floor bound.
  const auto t = static_cast<std::int64_t>(net_.width_out());
  const auto floor = static_cast<std::int64_t>(wire);
  std::int64_t cur = cells_[wire].value.load(std::memory_order_relaxed);
  std::uint64_t retries = 0;
  while (cur >= floor + t) {
    const auto surplus = static_cast<std::uint64_t>((cur - floor) / t);
    const auto m = std::min<std::uint64_t>(n, surplus);
    if (cells_[wire].value.compare_exchange_weak(
            cur, cur - static_cast<std::int64_t>(m) * t,
            std::memory_order_relaxed)) {
      stalls_.add(thread_hint, retries);
      return m;
    }
    ++retries;
  }
  stalls_.add(thread_hint, retries);
  return 0;
}

std::uint64_t NetworkCounter::try_fetch_decrement_n(std::size_t thread_hint,
                                                    std::uint64_t n) {
  if (n == 0) return 0;
  std::uint64_t local_stalls = 0;
  const std::size_t out =
      net_.traverse_anti(thread_hint % net_.width_in(), mode_, &local_stalls);
  stalls_.add(thread_hint, local_stalls);
  traversals_.add(thread_hint, 1);
  std::uint64_t got = 0;
  for (std::size_t i = 0; i < cells_.size() && got < n; ++i) {
    const std::size_t wire = (out + i) % cells_.size();
    got += try_claim_cell_n(wire, thread_hint, n - got);
  }
  return got;
}

void BatchedNetworkCounter::fetch_increment_batch(std::size_t thread_hint,
                                                  std::size_t k,
                                                  std::int64_t* out_values) {
  if (k == 0) return;
  if (k == 1) {
    // The batch machinery costs Θ(balancers) in scratch resets per call;
    // a lone token is cheaper on the per-token path.
    out_values[0] = fetch_increment(thread_hint);
    return;
  }
  // One scratch per thread, shared across instances: traverse_batch resizes
  // it to the current network, and calls never nest.
  static thread_local BatchScratch scratch;
  static thread_local std::vector<std::uint64_t> wire_counts;
  wire_counts.assign(net_.width_out(), 0);

  std::uint64_t local_stalls = 0;
  net_.traverse_batch(thread_hint % net_.width_in(),
                      static_cast<std::uint64_t>(k), mode_, &local_stalls,
                      scratch, wire_counts.data());
  stalls_.add(thread_hint, local_stalls);
  traversals_.add(thread_hint, static_cast<std::uint64_t>(k));
  batch_passes_.add(thread_hint, 1);

  const auto t = static_cast<std::int64_t>(net_.width_out());
  std::size_t filled = 0;
  for (std::size_t wire = 0; wire < wire_counts.size(); ++wire) {
    const std::uint64_t count = wire_counts[wire];
    if (count == 0) continue;
    // One cell RMW claims the wire's whole contiguous block of values.
    const std::int64_t base = cells_[wire].value.fetch_add(
        static_cast<std::int64_t>(count) * t, std::memory_order_relaxed);
    for (std::uint64_t j = 0; j < count; ++j) {
      out_values[filled++] = base + static_cast<std::int64_t>(j) * t;
    }
  }
}

}  // namespace cnet::rt
