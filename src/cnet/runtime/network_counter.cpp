#include "cnet/runtime/network_counter.hpp"

#include "cnet/util/ensure.hpp"

namespace cnet::rt {

namespace {
constexpr std::size_t kStallSlots = 64;
}  // namespace

NetworkCounter::NetworkCounter(const topo::Topology& net, std::string label,
                               BalancerMode mode)
    : net_(net), label_(std::move(label)), mode_(mode),
      cells_(net.width_out()), stalls_(kStallSlots) {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].value.store(static_cast<std::int64_t>(i),
                          std::memory_order_relaxed);
  }
}

void NetworkCounter::add_stalls(std::size_t thread_hint,
                                std::uint64_t stalls) {
  if (stalls != 0) {
    stalls_[thread_hint % kStallSlots].value.fetch_add(
        stalls, std::memory_order_relaxed);
  }
}

std::int64_t NetworkCounter::fetch_increment(std::size_t thread_hint) {
  std::uint64_t local_stalls = 0;
  const std::size_t out =
      net_.traverse(thread_hint % net_.width_in(), mode_, &local_stalls);
  add_stalls(thread_hint, local_stalls);
  // The exit cell assigns the value and advances by t (paper §1.1). One
  // atomic RMW makes the assignment linearizable per wire.
  return cells_[out].value.fetch_add(
      static_cast<std::int64_t>(net_.width_out()),
      std::memory_order_relaxed);
}

std::int64_t NetworkCounter::fetch_decrement(std::size_t thread_hint) {
  std::uint64_t local_stalls = 0;
  const std::size_t out =
      net_.traverse_anti(thread_hint % net_.width_in(), mode_, &local_stalls);
  add_stalls(thread_hint, local_stalls);
  // Undo one cell step: the reclaimed value is the new cell content.
  return cells_[out].value.fetch_sub(
             static_cast<std::int64_t>(net_.width_out()),
             std::memory_order_relaxed) -
         static_cast<std::int64_t>(net_.width_out());
}

std::uint64_t NetworkCounter::stall_count() const {
  std::uint64_t total = 0;
  for (const auto& slot : stalls_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

void BatchedNetworkCounter::fetch_increment_batch(std::size_t thread_hint,
                                                  std::size_t k,
                                                  std::int64_t* out_values) {
  if (k == 0) return;
  if (k == 1) {
    // The batch machinery costs Θ(balancers) in scratch resets per call;
    // a lone token is cheaper on the per-token path.
    out_values[0] = fetch_increment(thread_hint);
    return;
  }
  // One scratch per thread, shared across instances: traverse_batch resizes
  // it to the current network, and calls never nest.
  static thread_local BatchScratch scratch;
  static thread_local std::vector<std::uint64_t> wire_counts;
  wire_counts.assign(net_.width_out(), 0);

  std::uint64_t local_stalls = 0;
  net_.traverse_batch(thread_hint % net_.width_in(),
                      static_cast<std::uint64_t>(k), mode_, &local_stalls,
                      scratch, wire_counts.data());
  add_stalls(thread_hint, local_stalls);

  const auto t = static_cast<std::int64_t>(net_.width_out());
  std::size_t filled = 0;
  for (std::size_t wire = 0; wire < wire_counts.size(); ++wire) {
    const std::uint64_t count = wire_counts[wire];
    if (count == 0) continue;
    // One cell RMW claims the wire's whole contiguous block of values.
    const std::int64_t base = cells_[wire].value.fetch_add(
        static_cast<std::int64_t>(count) * t, std::memory_order_relaxed);
    for (std::uint64_t j = 0; j < count; ++j) {
      out_values[filled++] = base + static_cast<std::int64_t>(j) * t;
    }
  }
}

}  // namespace cnet::rt
