#include "cnet/runtime/network_counter.hpp"

#include "cnet/util/ensure.hpp"

namespace cnet::rt {

namespace {
constexpr std::size_t kStallSlots = 64;
}  // namespace

NetworkCounter::NetworkCounter(const topo::Topology& net, std::string label,
                               BalancerMode mode)
    : net_(net), label_(std::move(label)), mode_(mode),
      cells_(net.width_out()), stalls_(kStallSlots) {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].value.store(static_cast<std::int64_t>(i),
                          std::memory_order_relaxed);
  }
}

std::int64_t NetworkCounter::fetch_increment(std::size_t thread_hint) {
  std::uint64_t local_stalls = 0;
  const std::size_t out =
      net_.traverse(thread_hint % net_.width_in(), mode_, &local_stalls);
  if (local_stalls != 0) {
    stalls_[thread_hint % kStallSlots].value.fetch_add(
        local_stalls, std::memory_order_relaxed);
  }
  // The exit cell assigns the value and advances by t (paper §1.1). One
  // atomic RMW makes the assignment linearizable per wire.
  return cells_[out].value.fetch_add(
      static_cast<std::int64_t>(net_.width_out()),
      std::memory_order_relaxed);
}

std::int64_t NetworkCounter::fetch_decrement(std::size_t thread_hint) {
  std::uint64_t local_stalls = 0;
  const std::size_t out =
      net_.traverse_anti(thread_hint % net_.width_in(), mode_, &local_stalls);
  if (local_stalls != 0) {
    stalls_[thread_hint % kStallSlots].value.fetch_add(
        local_stalls, std::memory_order_relaxed);
  }
  // Undo one cell step: the reclaimed value is the new cell content.
  return cells_[out].value.fetch_sub(
             static_cast<std::int64_t>(net_.width_out()),
             std::memory_order_relaxed) -
         static_cast<std::int64_t>(net_.width_out());
}

std::uint64_t NetworkCounter::stall_count() const {
  std::uint64_t total = 0;
  for (const auto& slot : stalls_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cnet::rt
