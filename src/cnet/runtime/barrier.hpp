// Barrier synchronization on top of a shared counter — one of the two
// motivating applications in paper §1.1 (the other, load balancing, is in
// examples/load_balancing.cpp).
//
// Each arrival performs one Fetch&Increment; the value determines the
// arrival's phase (value / parties). The last arriver of a phase publishes
// the next epoch; everyone else spins on the epoch word. Any Counter works;
// with a counting-network counter the hot spot is the epoch broadcast, not
// the arrival counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "cnet/runtime/counter.hpp"
#include "cnet/util/cacheline.hpp"

namespace cnet::rt {

class CountingBarrier {
 public:
  // `parties` threads must call arrive_and_wait per phase; takes shared
  // ownership of the counter (which must start at value 0).
  CountingBarrier(std::shared_ptr<Counter> counter, std::size_t parties);

  // Blocks (spin + yield) until all parties of the current phase arrived.
  // Returns the phase index that just completed (0-based).
  std::int64_t arrive_and_wait(std::size_t thread_hint);

 private:
  std::shared_ptr<Counter> counter_;
  std::size_t parties_;
  util::Padded<std::atomic<std::int64_t>> epoch_{};
};

}  // namespace cnet::rt
