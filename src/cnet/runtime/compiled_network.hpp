// Lock-free shared-memory realization of a balancing network (paper §1.2):
// each balancer is a shared memory word holding the index of the wire the
// next token leaves on; wires are routing-table entries. Tokens are threads
// traversing the structure.
//
// Two balancer disciplines are provided:
//   * kFetchAdd — the state advances with one atomic fetch_add (wait-free);
//   * kCasRetry — a CAS loop; every failed CAS is one observed stall, the
//     hardware analogue of the Dwork-et-al. stall measure.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cnet/topology/topology.hpp"
#include "cnet/util/cacheline.hpp"

namespace cnet::rt {

enum class BalancerMode { kFetchAdd, kCasRetry };

const char* balancer_mode_name(BalancerMode mode) noexcept;

// Caller-owned scratch space for CompiledNetwork::traverse_batch. Reuse one
// instance per thread across calls to avoid per-batch allocation; a single
// instance must not be shared by concurrent callers.
class BatchScratch {
 private:
  friend class CompiledNetwork;
  std::vector<std::uint64_t> pending_;
};

class CompiledNetwork {
 public:
  explicit CompiledNetwork(const topo::Topology& net);

  CompiledNetwork(const CompiledNetwork&) = delete;
  CompiledNetwork& operator=(const CompiledNetwork&) = delete;

  std::size_t width_in() const noexcept { return entry_.size(); }
  std::size_t width_out() const noexcept { return width_out_; }
  std::size_t num_balancers() const noexcept { return num_nodes_; }

  // Shepherds one token from `input_wire` (< width_in()) to an output wire,
  // whose index is returned. When `mode` is kCasRetry, the number of failed
  // CAS attempts is added to *stalls (which must be non-null in that mode).
  std::size_t traverse(std::size_t input_wire, BalancerMode mode,
                       std::uint64_t* stalls) noexcept;

  // Shepherds one *antitoken* (Aiello et al.; paper §1.4.2): each visited
  // balancer's state moves back by one and the antitoken leaves on the wire
  // the state lands on — exactly undoing one token transition. Used to
  // implement Fetch&Decrement.
  std::size_t traverse_anti(std::size_t input_wire, BalancerMode mode,
                            std::uint64_t* stalls) noexcept;

  // Shepherds `k` tokens from `input_wire` in one pass. Each visited
  // balancer advances its state by a single fetch_add(m) — m being the
  // number of batch tokens passing through it — and splits those m tokens
  // round-robin across its fanout exactly as m successive traverse() calls
  // would, so the result is equivalent to some legal interleaving of k
  // individual tokens (the per-balancer RMW is atomic, hence each batch
  // reads off a contiguous ticket block). On return, out_counts[i] has been
  // incremented by the number of tokens that left on output wire i;
  // out_counts must point at width_out() slots.
  //
  // Cuts atomic traffic from depth() RMWs per token to at most one RMW per
  // balancer per *batch* — up to k× fewer under wide batches.
  void traverse_batch(std::size_t input_wire, std::uint64_t k,
                      BalancerMode mode, std::uint64_t* stalls,
                      BatchScratch& scratch,
                      std::uint64_t* out_counts) noexcept;

  // Resets all balancer states to 0 (only call while quiescent).
  void reset() noexcept;

 private:
  struct alignas(util::kCacheLine) Node {
    // Signed: antitokens can drive the cumulative balance below zero.
    std::atomic<std::int64_t> state{0};
    std::uint32_t fanout = 0;
    std::uint32_t route_base = 0;
  };

  // Route entries: >= 0 is a balancer index, negative is ~output_position.
  std::size_t num_nodes_ = 0;
  std::size_t width_out_ = 0;
  std::unique_ptr<Node[]> nodes_;
  std::vector<std::int32_t> route_;
  std::vector<std::int32_t> entry_;
};

}  // namespace cnet::rt
