#include "cnet/sim/token_sim.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "cnet/util/ensure.hpp"

namespace cnet::sim {

namespace {

constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

// Routing target: either a balancer or a network output slot.
struct Target {
  bool is_output = false;
  std::uint32_t index = 0;  // balancer index or output position
};

struct Token {
  std::uint32_t process = 0;
  std::uint32_t record = 0;  // index into token_records when enabled
};

class Engine final : public EngineView {
 public:
  Engine(const topo::Topology& net, const SimConfig& cfg)
      : net_(net), cfg_(cfg) {
    CNET_REQUIRE(cfg.concurrency >= 1, "need at least one process");
    CNET_REQUIRE(cfg.total_tokens >= 1, "need at least one token");
    compile();
  }

  // --- EngineView ---
  std::size_t num_balancers() const override { return q_.size(); }
  std::uint32_t queue_size(std::uint32_t b) const override {
    return static_cast<std::uint32_t>(queues_[b].size());
  }
  std::uint32_t layer_of(std::uint32_t b) const override { return layer_[b]; }
  const std::vector<std::uint32_t>& nonempty() const override {
    return nonempty_;
  }

  SimResult run(Scheduler& sched) {
    sched.attach(*this);
    SimResult res;
    res.tokens = cfg_.total_tokens;
    if (cfg_.collect_per_balancer) {
      res.stalls_per_balancer.assign(q_.size(), 0);
      res.stalls_per_layer.assign(net_.depth(), 0);
    }
    if (cfg_.collect_counter_values) {
      res.counter_values.reserve(cfg_.total_tokens);
    }
    if (cfg_.collect_token_records) {
      res.token_records.reserve(cfg_.total_tokens);
    }
    res.input_counts.assign(net_.width_in(), 0);
    res.output_counts.assign(net_.width_out(), 0);

    // Counter cells v_i = i, stepped by t on each exit (paper §1.1).
    std::vector<seq::Value> cell(net_.width_out());
    for (std::size_t i = 0; i < cell.size(); ++i) {
      cell[i] = static_cast<seq::Value>(i);
    }
    const auto t_out = static_cast<seq::Value>(net_.width_out());

    // Inject the first token of every process (each process has at most one
    // token in flight; injection is eager).
    std::size_t injected = 0;
    std::size_t exited = 0;
    auto inject = [&](std::uint32_t process) {
      if (injected == cfg_.total_tokens) return;
      ++injected;
      const std::size_t wire_pos = process % net_.width_in();
      ++res.input_counts[wire_pos];
      Token tok{process, 0};
      if (cfg_.collect_token_records) {
        tok.record = static_cast<std::uint32_t>(res.token_records.size());
        res.token_records.push_back(
            TokenRecord{process, step_count_, 0, 0});
      }
      deliver(entry_[wire_pos], tok, sched, res, cell, t_out, exited);
    };
    const std::size_t first_wave =
        std::min(cfg_.concurrency, cfg_.total_tokens);
    for (std::uint32_t p = 0; p < first_wave; ++p) inject(p);

    // Main loop: fire scheduler-chosen balancers until all tokens exited.
    while (exited < cfg_.total_tokens) {
      CNET_ENSURE(!nonempty_.empty(),
                  "no waiting tokens but simulation not finished");
      const std::uint32_t b = sched.pick();
      CNET_ENSURE(b < q_.size() && !queues_[b].empty(),
                  "scheduler picked an empty balancer");
      ++step_count_;
      // One atomic transition: FIFO head passes, every other waiter stalls.
      const auto waiters =
          static_cast<std::uint64_t>(queues_[b].size()) - 1;
      res.total_stalls += waiters;
      if (cfg_.collect_per_balancer) {
        res.stalls_per_balancer[b] += waiters;
        res.stalls_per_layer[layer_[b] - 1] += waiters;
      }
      const Token tok = queues_[b].front();
      queues_[b].pop_front();
      if (queues_[b].empty()) remove_nonempty(b);
      const std::uint32_t port = state_[b];
      state_[b] = (state_[b] + 1) % q_[b];
      const Target& next = route_[route_base_[b] + port];
      if (next.is_output) {
        exit_token(tok, next.index, res, cell, t_out, exited);
        inject(tok.process);  // process immediately shepherds its next token
      } else {
        enqueue(next.index, tok, sched, res);
      }
    }
    res.stalls_per_token = static_cast<double>(res.total_stalls) /
                           static_cast<double>(res.tokens);
    return res;
  }

 private:
  void compile() {
    const std::size_t nb = net_.num_balancers();
    q_.resize(nb);
    state_.assign(nb, 0);
    layer_.resize(nb);
    route_base_.resize(nb);
    queues_.assign(nb, {});
    pos_in_nonempty_.assign(nb, kNone);
    std::size_t total_ports = 0;
    for (std::uint32_t b = 0; b < nb; ++b) {
      const auto& bal = net_.balancer(topo::BalancerId{b});
      q_[b] = static_cast<std::uint32_t>(bal.fan_out());
      layer_[b] = static_cast<std::uint32_t>(
          net_.balancer_depth(topo::BalancerId{b}));
      route_base_[b] = static_cast<std::uint32_t>(total_ports);
      total_ports += bal.fan_out();
    }
    route_.resize(total_ports);
    auto target_of = [&](topo::WireId wire) {
      const auto& end = net_.consumer(wire);
      if (end.kind == topo::WireEnd::Kind::kNetworkOutput) {
        return Target{true, end.port};
      }
      return Target{false, end.balancer.value};
    };
    for (std::uint32_t b = 0; b < nb; ++b) {
      const auto& bal = net_.balancer(topo::BalancerId{b});
      for (std::size_t port = 0; port < bal.fan_out(); ++port) {
        route_[route_base_[b] + port] = target_of(bal.outputs[port]);
      }
    }
    entry_.reserve(net_.width_in());
    for (const topo::WireId in : net_.input_wires()) {
      entry_.push_back(target_of(in));
    }
  }

  void deliver(const Target& target, Token tok, Scheduler& sched,
               SimResult& res, std::vector<seq::Value>& cell,
               seq::Value t_out, std::size_t& exited) {
    if (target.is_output) {
      // Degenerate wire straight to an output (e.g. width-1 networks).
      exit_token(tok, target.index, res, cell, t_out, exited);
    } else {
      enqueue(target.index, tok, sched, res);
    }
  }

  void exit_token(Token tok, std::uint32_t out_pos, SimResult& res,
                  std::vector<seq::Value>& cell, seq::Value t_out,
                  std::size_t& exited) {
    if (cfg_.collect_counter_values) {
      res.counter_values.push_back(cell[out_pos]);
    }
    if (cfg_.collect_token_records) {
      res.token_records[tok.record].exit_step = step_count_;
      res.token_records[tok.record].value = cell[out_pos];
    }
    cell[out_pos] += t_out;
    ++res.output_counts[out_pos];
    ++exited;
  }

  void enqueue(std::uint32_t b, Token tok, Scheduler& sched, SimResult& res) {
    queues_[b].push_back(tok);
    if (queues_[b].size() == 1) add_nonempty(b);
    res.max_queue = std::max(res.max_queue, queues_[b].size());
    sched.on_enqueue(b);
  }

  void add_nonempty(std::uint32_t b) {
    pos_in_nonempty_[b] = static_cast<std::uint32_t>(nonempty_.size());
    nonempty_.push_back(b);
  }

  void remove_nonempty(std::uint32_t b) {
    const std::uint32_t pos = pos_in_nonempty_[b];
    const std::uint32_t last = nonempty_.back();
    nonempty_[pos] = last;
    pos_in_nonempty_[last] = pos;
    nonempty_.pop_back();
    pos_in_nonempty_[b] = kNone;
  }

  const topo::Topology& net_;
  const SimConfig cfg_;
  std::vector<std::uint32_t> q_;           // fanout per balancer
  std::vector<std::uint32_t> state_;       // next output port per balancer
  std::vector<std::uint32_t> layer_;       // depth per balancer
  std::vector<std::uint32_t> route_base_;  // offset into route_
  std::vector<Target> route_;              // per output port
  std::vector<Target> entry_;              // per network input wire
  std::vector<std::deque<Token>> queues_;
  std::vector<std::uint32_t> nonempty_;
  std::vector<std::uint32_t> pos_in_nonempty_;
  std::uint64_t step_count_ = 0;  // global balancer transitions so far
};

}  // namespace

SimResult simulate(const topo::Topology& net, const SimConfig& cfg,
                   Scheduler& scheduler) {
  Engine engine(net, cfg);
  return engine.run(scheduler);
}

}  // namespace cnet::sim
