#include "cnet/sim/multicore.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/dist/policy.hpp"
#include "cnet/dist/topology.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/util/ensure.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/stats.hpp"

namespace cnet::sim {

namespace {

using Done = std::function<void()>;
using DoneN = std::function<void(std::uint64_t)>;

// ------------------------------------------------------------------ engine

// Minimal deterministic discrete-event executor: events fire in (time,
// insertion order), so equal-time events replay identically on every host.
class Engine {
 public:
  double now() const noexcept { return now_; }

  void at(double time, std::function<void()> fn) {
    events_.push(Event{std::max(time, now_), seq_++, std::move(fn)});
  }

  void run() {
    while (!events_.empty()) {
      // Move the handler out from under priority_queue's const top(). The
      // subsequent pop() re-heapifies by comparing only the trivially
      // copied time/seq fields, which the move leaves intact — nothing on
      // the pop path may ever inspect fn.
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.time;
      ev.fn();
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

// ------------------------------------------------------------- model base

// Virtual-time counterpart of rt::Counter's pool semantics: increments
// deposit tokens, decrements claim up to n bounded at zero, and both
// complete at a later virtual time determined by the backend's servers.
class CounterModel {
 public:
  virtual ~CounterModel() = default;

  virtual void increment_n(std::size_t core, std::uint64_t k, Done done) = 0;
  virtual void try_decrement_n(std::size_t core, std::uint64_t n,
                               DoneN done) = 0;
  // Refund traffic (shortfall un-consume, quota releases): count-wise the
  // same deposits as increment_n — the default — but a distinct entry
  // point so AdaptiveModel can keep it out of its switch window, exactly
  // mirroring rt::Counter::refund_n and AdaptiveCounter's override.
  virtual void refund_n(std::size_t core, std::uint64_t k, Done done) {
    increment_n(core, k, std::move(done));
  }

  virtual std::uint64_t stalls() const = 0;
  virtual std::int64_t pool() const = 0;
  virtual bool pool_ever_negative() const = 0;

  // Instantaneous pool bookkeeping, used for the initial fill and for the
  // adaptive model's exact migration at the switch instant.
  virtual std::uint64_t drain_pool_now() = 0;
  virtual void inject_pool_now(std::uint64_t k) = 0;
};

// Shared pool ledger: claims clamp at zero, so a negative balance is a
// model bug, not a workload outcome — tracked and surfaced as a check.
class PoolBase : public CounterModel {
 public:
  std::int64_t pool() const override { return pool_; }
  bool pool_ever_negative() const override { return ever_negative_; }

  std::uint64_t drain_pool_now() override {
    const auto moved = static_cast<std::uint64_t>(std::max<std::int64_t>(
        pool_, 0));
    pool_ = 0;
    return moved;
  }
  void inject_pool_now(std::uint64_t k) override {
    pool_ += static_cast<std::int64_t>(k);
  }

 protected:
  void deposit(std::uint64_t k) { pool_ += static_cast<std::int64_t>(k); }
  std::uint64_t claim(std::uint64_t n) {
    if (pool_ < 0) ever_negative_ = true;
    const auto avail =
        static_cast<std::uint64_t>(std::max<std::int64_t>(pool_, 0));
    const std::uint64_t got = std::min(n, avail);
    pool_ -= static_cast<std::int64_t>(got);
    return got;
  }

 private:
  std::int64_t pool_ = 0;
  bool ever_negative_ = false;
};

// Service-time draw: fixed, or exponential with the given mean (the same
// variance argument as bench_tab_throughput_sim — real memory access times
// are noisy, and the noise is what makes queue depth matter).
class ServiceDraw {
 public:
  ServiceDraw(double mean, bool exponential, util::Xoshiro256& rng)
      : mean_(mean), exponential_(exponential), rng_(rng) {}
  double operator()() {
    if (!exponential_) return mean_;
    return -mean_ * std::log1p(-rng_.uniform01());
  }

 private:
  double mean_;
  bool exponential_;
  util::Xoshiro256& rng_;
};

// ---------------------------------------------------------- central model

// The central word as a single FIFO server. Service time scales with the
// number of requests already in the system: every additional sharer adds a
// coherence hop before the RMW lands (for CAS kinds the slope is steeper —
// failed attempts resubmit). Each arrival that finds requests ahead of it
// is a stall event, the virtual analogue of Counter::stall_count.
class CentralModel final : public PoolBase {
 public:
  // empty_read_fast_path models the atomic/CAS bounded-decrement contract:
  // on an observably empty pool the real loop exits after a plain load — a
  // shared cache read that never takes exclusive line ownership — so it
  // neither queues behind the RMW stream nor counts as a stall. The mutex
  // kind always takes the lock and gets no fast path.
  CentralModel(Engine& eng, double slope, ServiceDraw draw,
               bool empty_read_fast_path = false)
      : eng_(eng),
        slope_(slope),
        draw_(draw),
        empty_read_fast_path_(empty_read_fast_path) {}

  void increment_n(std::size_t, std::uint64_t k, Done done) override {
    // A batch of k is k successive RMWs holding the line.
    const double t = schedule_rmw(static_cast<double>(k));
    eng_.at(t, [this, k, done = std::move(done)] {
      --pending_;
      deposit(k);
      done();
    });
  }

  void try_decrement_n(std::size_t, std::uint64_t n, DoneN done) override {
    if (empty_read_fast_path_ && pool() <= 0) {
      // Read-only miss: one uncontended service draw, in parallel with the
      // server. The op's linearization point is the issue-time load that
      // observed the empty pool, so it conclusively returns 0.
      eng_.at(eng_.now() + draw_(),
              [done = std::move(done)] { done(0); });
      return;
    }
    // One bounded CAS claims the whole remainder (rt::AtomicCounter /
    // CasCounter take the bulk path in a single word-sized claim).
    const double t = schedule_rmw(1.0);
    eng_.at(t, [this, n, done = std::move(done)] {
      --pending_;
      done(claim(n));
    });
  }

  std::uint64_t stalls() const override { return stalls_; }

 private:
  double schedule_rmw(double units) {
    stalls_ += pending_;  // every request ahead of us is a coherence stall
    const double start = std::max(eng_.now(), free_);
    // draw_() carries the kind's mean RMW time; the slope term lengthens it
    // by a fraction per request already contending for the line.
    const double service =
        units * draw_() * (1.0 + slope_ * static_cast<double>(pending_));
    ++pending_;
    free_ = start + service;
    return free_;
  }

  Engine& eng_;
  double slope_;
  ServiceDraw draw_;
  bool empty_read_fast_path_;
  std::uint64_t pending_ = 0;  // requests queued or in service
  double free_ = 0.0;          // time the server next goes idle
  std::uint64_t stalls_ = 0;
};

// ---------------------------------------------------------- network model

// The counting network as per-balancer FIFO servers over the real
// topology, exactly simulate_timed's machinery re-hosted behind the
// CounterModel interface: tokens (increments) and antitokens (bounded
// decrements) traverse balancer by balancer, queueing when a server is
// busy; each queued arrival is a stall event. A traversal carries a
// payload of up to batch_k tokens (1 for the per-token backend), which is
// the batched backend's whole advantage.
class NetworkModel final : public PoolBase {
 public:
  NetworkModel(Engine& eng, const topo::Topology& net, double wire_delay,
               std::size_t batch_k, ServiceDraw draw)
      : eng_(eng), wire_(wire_delay), batch_k_(batch_k), draw_(draw) {
    compile(net);
  }

  void increment_n(std::size_t core, std::uint64_t k, Done done) override {
    if (k == 0) {
      eng_.at(eng_.now(), std::move(done));
      return;
    }
    const auto chunk = static_cast<std::uint64_t>(
        std::min<std::uint64_t>(k, batch_k_));
    // Sequential chunked traversals: the issuing core's thread walks the
    // network once per chunk, exactly like the real batch loop.
    inject(core, [this, core, k, chunk, done = std::move(done)]() mutable {
      deposit(chunk);
      increment_n(core, k - chunk, std::move(done));
    });
  }

  void try_decrement_n(std::size_t core, std::uint64_t n,
                       DoneN done) override {
    // One antitoken traversal; the claim happens at the exit cell, bounded
    // by what the pool holds at that instant.
    inject(core, [this, n, done = std::move(done)] { done(claim(n)); });
  }

  std::uint64_t stalls() const override { return stalls_; }

 private:
  struct Target {
    bool is_output = false;
    std::uint32_t index = 0;
  };
  struct Balancer {
    bool busy = false;
    std::uint32_t state = 0;
    std::deque<Done> waiting;  // continuations of queued tokens
  };

  void compile(const topo::Topology& net) {
    const std::size_t nb = net.num_balancers();
    bals_.resize(nb);
    fanout_.resize(nb);
    route_base_.resize(nb);
    std::size_t total_ports = 0;
    for (std::uint32_t b = 0; b < nb; ++b) {
      const auto& bal = net.balancer(topo::BalancerId{b});
      fanout_[b] = static_cast<std::uint32_t>(bal.fan_out());
      route_base_[b] = static_cast<std::uint32_t>(total_ports);
      total_ports += bal.fan_out();
    }
    route_.resize(total_ports);
    auto target_of = [&](topo::WireId wire) {
      const auto& end = net.consumer(wire);
      if (end.kind == topo::WireEnd::Kind::kNetworkOutput) {
        return Target{true, end.port};
      }
      return Target{false, end.balancer.value};
    };
    for (std::uint32_t b = 0; b < nb; ++b) {
      const auto& bal = net.balancer(topo::BalancerId{b});
      for (std::size_t port = 0; port < bal.fan_out(); ++port) {
        route_[route_base_[b] + port] = target_of(bal.outputs[port]);
      }
    }
    entry_.reserve(net.width_in());
    for (const topo::WireId in : net.input_wires()) {
      entry_.push_back(target_of(in));
    }
  }

  // Launch one traversal from the core's entry wire; on_exit runs at the
  // virtual time the token leaves the network.
  void inject(std::size_t core, Done on_exit) {
    const Target& e = entry_[core % entry_.size()];
    if (e.is_output) {
      eng_.at(eng_.now(), std::move(on_exit));
      return;
    }
    arrive(e.index, std::move(on_exit));
  }

  void arrive(std::uint32_t b, Done on_exit) {
    Balancer& bal = bals_[b];
    if (bal.busy) {
      ++stalls_;
      bal.waiting.push_back(std::move(on_exit));
      return;
    }
    bal.busy = true;
    start_service(b, std::move(on_exit));
  }

  void start_service(std::uint32_t b, Done on_exit) {
    eng_.at(eng_.now() + draw_(),
            [this, b, on_exit = std::move(on_exit)]() mutable {
              complete(b, std::move(on_exit));
            });
  }

  void complete(std::uint32_t b, Done on_exit) {
    Balancer& bal = bals_[b];
    const std::uint32_t port = bal.state;
    bal.state = (bal.state + 1) % fanout_[b];
    const Target& next = route_[route_base_[b] + port];
    if (next.is_output) {
      eng_.at(eng_.now() + wire_, std::move(on_exit));
    } else {
      const std::uint32_t nb = next.index;
      eng_.at(eng_.now() + wire_,
              [this, nb, on_exit = std::move(on_exit)]() mutable {
                arrive(nb, std::move(on_exit));
              });
    }
    if (bal.waiting.empty()) {
      bal.busy = false;
    } else {
      Done waiter = std::move(bal.waiting.front());
      bal.waiting.pop_front();
      start_service(b, std::move(waiter));
    }
  }

  Engine& eng_;
  double wire_;
  std::size_t batch_k_;
  ServiceDraw draw_;
  std::vector<Balancer> bals_;
  std::vector<std::uint32_t> fanout_, route_base_;
  std::vector<Target> route_;
  std::vector<Target> entry_;
  std::uint64_t stalls_ = 0;
};

// ------------------------------------------------------- elimination model

// EliminationLayer in virtual time: the same slot state machine (empty /
// waiting-inc / waiting-dec, epoch bumped on every return to empty) run by
// the deterministic executor instead of CASes. Single-token ops deposit and
// wait elim_wait before withdrawing to the backend; bulk ops catch already-
// waiting partners only — the exact call-path split of the real
// ElimCounter. Pair values come from the shared svc::elimination_pair_value
// rule, so model and real multisets cancel identically.
class ElimModel final : public CounterModel {
 public:
  ElimModel(Engine& eng, std::unique_ptr<CounterModel> inner,
            std::size_t slots, double exchange_time, double inc_wait,
            double dec_wait, util::Xoshiro256& rng)
      : eng_(eng),
        inner_(std::move(inner)),
        slots_(slots),
        exchange_(exchange_time),
        inc_wait_(inc_wait),
        dec_wait_(dec_wait),
        rng_(rng) {
    CNET_REQUIRE(slots > 0, "at least one elimination slot");
  }

  void increment_n(std::size_t core, std::uint64_t k, Done done) override {
    // Catch pass (any k): hand tokens to already-waiting decrements.
    std::uint64_t remaining = k;
    while (remaining > 0 && catch_partner(Role::kDec)) --remaining;
    if (remaining == 0) {
      eng_.at(eng_.now() + exchange_, std::move(done));
      return;
    }
    if (remaining == 1 && k == 1) {
      // Single-op path: deposit and wait for a partner decrement. `done` is
      // passed as a copy so the fall-through below stays valid on a full
      // slot array.
      if (try_deposit(Role::kInc, core, /*k=*/1, done)) return;
    }
    inner_->increment_n(core, remaining, std::move(done));
  }

  void try_decrement_n(std::size_t core, std::uint64_t n,
                       DoneN done) override {
    std::uint64_t got = 0;
    while (got < n && catch_partner(Role::kInc)) ++got;
    if (got == n) {
      eng_.at(eng_.now() + exchange_,
              [got, done = std::move(done)] { done(got); });
      return;
    }
    if (n == 1 && got == 0) {
      // Single-op path: deposit; a catching increment completes us with one
      // token (the pairing continuation already runs exchange_time after
      // the catch), the withdrawal falls through to the backend.
      auto fulfilled = [done](std::int64_t /*pair value*/) { done(1); };
      auto withdrawn = [this, core, done] {
        inner_->try_decrement_n(core, 1, done);
      };
      if (deposit(Role::kDec, std::move(fulfilled), std::move(withdrawn))) {
        return;
      }
      inner_->try_decrement_n(core, 1, std::move(done));
      return;
    }
    const std::uint64_t caught = got;
    if (caught == 0) {
      inner_->try_decrement_n(core, n, std::move(done));
      return;
    }
    inner_->try_decrement_n(
        core, n - caught,
        [caught, done = std::move(done)](std::uint64_t inner_got) {
          done(caught + inner_got);
        });
  }

  // Refunds skip the exchange slots (rt::ForwardingCounter's default does
  // the same): give-backs land in the pool unconditionally.
  void refund_n(std::size_t core, std::uint64_t k, Done done) override {
    inner_->refund_n(core, k, std::move(done));
  }

  std::uint64_t stalls() const override { return inner_->stalls(); }
  std::int64_t pool() const override { return inner_->pool(); }
  bool pool_ever_negative() const override {
    return inner_->pool_ever_negative();
  }
  std::uint64_t drain_pool_now() override { return inner_->drain_pool_now(); }
  void inject_pool_now(std::uint64_t k) override {
    inner_->inject_pool_now(k);
  }

  std::uint64_t pairs() const { return pairs_; }
  std::uint64_t withdrawals() const { return withdrawals_; }
  std::int64_t value_sum() const { return value_sum_; }

 private:
  enum class Role : std::uint8_t { kInc, kDec };
  struct Slot {
    enum class State : std::uint8_t { kEmpty, kWaitInc, kWaitDec } state =
        State::kEmpty;
    std::uint64_t epoch = 0;
    // Waiter continuations: on_pair runs when an opposite role catches the
    // slot, on_withdraw when the deposit window expires first.
    std::function<void(std::int64_t)> on_pair;
  };

  // Finds a waiter of `role` and pairs with it: the waiter's continuation
  // fires exchange_ later, the slot returns to empty with a bumped epoch.
  bool catch_partner(Role role) {
    const auto want = role == Role::kInc ? Slot::State::kWaitInc
                                         : Slot::State::kWaitDec;
    const std::size_t start = static_cast<std::size_t>(
        rng_.below(static_cast<std::uint64_t>(slots_.size())));
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const std::size_t s = (start + i) % slots_.size();
      Slot& slot = slots_[s];
      if (slot.state != want) continue;
      const std::int64_t value = svc::elimination_pair_value(
          slots_.size(), s, slot.epoch);
      ++pairs_;
      value_sum_ += value;
      auto on_pair = std::move(slot.on_pair);
      slot.state = Slot::State::kEmpty;
      slot.on_pair = nullptr;
      ++slot.epoch;
      const double at = eng_.now() + exchange_;
      eng_.at(at, [value, on_pair = std::move(on_pair)] { on_pair(value); });
      return true;
    }
    return false;
  }

  // Deposits a waiter; schedules the withdrawal at the deposit window's
  // end (per-role windows mirror the real inc_spins/dec_spins asymmetry:
  // increments wait long, decrements only briefly). Returns false when
  // every slot is occupied (fall through).
  bool deposit(Role role, std::function<void(std::int64_t)> on_pair,
               Done on_withdraw) {
    const std::size_t start = static_cast<std::size_t>(
        rng_.below(static_cast<std::uint64_t>(slots_.size())));
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const std::size_t s = (start + i) % slots_.size();
      Slot& slot = slots_[s];
      if (slot.state != Slot::State::kEmpty) continue;
      slot.state = role == Role::kInc ? Slot::State::kWaitInc
                                      : Slot::State::kWaitDec;
      slot.on_pair = std::move(on_pair);
      const std::uint64_t epoch = slot.epoch;
      eng_.at(eng_.now() + (role == Role::kInc ? inc_wait_ : dec_wait_),
              [this, s, epoch, on_withdraw = std::move(on_withdraw)] {
                Slot& sl = slots_[s];
                if (sl.epoch != epoch ||
                    sl.state == Slot::State::kEmpty) {
                  return;  // already paired; the pairing continuation ran
                }
                sl.state = Slot::State::kEmpty;
                sl.on_pair = nullptr;
                ++sl.epoch;
                ++withdrawals_;
                on_withdraw();
              });
      return true;
    }
    return false;
  }

  // Single-increment deposit: on pairing the increment op completes (its
  // token went straight to the paired decrement); on withdrawal the token
  // goes to the backend.
  bool try_deposit(Role role, std::size_t core, std::uint64_t k,
                   const Done& done) {
    auto fulfilled = [done](std::int64_t) { done(); };
    auto withdrawn = [this, core, k, done] {
      inner_->increment_n(core, k, done);
    };
    return deposit(role, std::move(fulfilled), std::move(withdrawn));
  }

  Engine& eng_;
  std::unique_ptr<CounterModel> inner_;
  std::vector<Slot> slots_;
  double exchange_;
  double inc_wait_;
  double dec_wait_;
  util::Xoshiro256& rng_;
  std::uint64_t pairs_ = 0;
  std::uint64_t withdrawals_ = 0;
  std::int64_t value_sum_ = 0;
};

// --------------------------------------------------------- adaptive model

// AdaptiveCounter in virtual time: ops run on the cold central model until
// a sampled window of simulated stall events crosses the shared
// svc::should_switch rule; the switch migrates the remaining pool into the
// hot batched-network model at that exact virtual instant. Sampling
// mirrors LoadStats (boundary crossing on the op tally) with the
// single-threaded executor standing in for the sampler claim.
class AdaptiveModel final : public CounterModel {
 public:
  AdaptiveModel(std::unique_ptr<CounterModel> cold,
                std::unique_ptr<CounterModel> hot, Engine& eng,
                const svc::AdaptiveTuning& tuning)
      : cold_(std::move(cold)),
        hot_(std::move(hot)),
        eng_(eng),
        tuning_(tuning) {}

  void increment_n(std::size_t core, std::uint64_t k, Done done) override {
    active().increment_n(core, k, [this, k, done = std::move(done)] {
      after_ops(k);
      done();
    });
  }

  void try_decrement_n(std::size_t core, std::uint64_t n,
                       DoneN done) override {
    if (switched_) {
      // Sweep straggler deposits (pre-switch ops completing late on the
      // cold model) before taking: the real counter's reader quiescence
      // means a post-swap consumer can never miss a token that is only
      // "in the other pool".
      const std::uint64_t left = cold_->drain_pool_now();
      if (left > 0) hot_->inject_pool_now(left);
    }
    active().try_decrement_n(
        core, n, [this, done = std::move(done)](std::uint64_t got) {
          // Same charging rule as the fixed AdaptiveCounter: tokens
          // actually transferred, minimum one for the attempt.
          after_ops(std::max<std::uint64_t>(got, 1));
          done(got);
        });
  }

  void refund_n(std::size_t core, std::uint64_t k, Done done) override {
    // Mirror of AdaptiveCounter::refund_n: no op charge, and the stalls
    // the refund provokes on the cold model are banked for exclusion from
    // the switch window. The cold CentralModel tallies a stall at
    // scheduling time (inside the increment_n call), so the delta around
    // the call attributes exactly this refund's own stalls.
    const bool track = !switched_;
    const std::uint64_t before = track ? cold_->stalls() : 0;
    active().refund_n(core, k, [this, done = std::move(done)] {
      if (switched_) {
        // Same straggler sweep as after_ops: a refund that was in flight
        // on the cold model at the switch instant must not strand tokens.
        const std::uint64_t left = cold_->drain_pool_now();
        if (left > 0) hot_->inject_pool_now(left);
      }
      done();
    });
    if (track) refund_stalls_ += cold_->stalls() - before;
  }

  std::uint64_t stalls() const override {
    return cold_->stalls() + hot_->stalls();
  }
  std::int64_t pool() const override {
    return cold_->pool() + hot_->pool();
  }
  bool pool_ever_negative() const override {
    return cold_->pool_ever_negative() || hot_->pool_ever_negative();
  }
  std::uint64_t drain_pool_now() override {
    return cold_->drain_pool_now() + hot_->drain_pool_now();
  }
  void inject_pool_now(std::uint64_t k) override {
    active().inject_pool_now(k);
  }

  bool switched() const { return switched_; }
  double switch_time() const { return switch_time_; }
  std::uint64_t ops_at_switch() const { return ops_at_switch_; }

  // The force-eliminate actuation (AdaptiveCounter::force_switch's model
  // counterpart): take the cold→hot swap now regardless of the stall
  // window, with the same exact pool migration as the organic switch.
  void force_switch_now() {
    if (switched_) return;
    switched_ = true;
    switch_time_ = eng_.now();
    ops_at_switch_ = ops_;
    hot_->inject_pool_now(cold_->drain_pool_now());
  }

 private:
  CounterModel& active() { return switched_ ? *hot_ : *cold_; }

  void after_ops(std::uint64_t n) {
    if (switched_) {
      // Ops that were already in flight on the cold model at the switch
      // instant may still deposit there (a queued bulk refill completing
      // late). The real AdaptiveCounter waits for reader quiescence before
      // its one-shot drain; the event-driven analogue is to sweep any cold
      // remainder as each straggler completes — once the last in-flight
      // cold op lands, the cold pool is empty for good and no token is
      // stranded.
      const std::uint64_t left = cold_->drain_pool_now();
      if (left > 0) hot_->inject_pool_now(left);
      return;
    }
    const std::uint64_t before = ops_;
    ops_ += n;
    if (before / tuning_.sample_interval == ops_ / tuning_.sample_interval) {
      return;  // no sample boundary crossed
    }
    // Refund-attributed stalls are excluded, clamped like LoadStats: the
    // exclusion can make the adjusted total dip below the previous
    // window's high-water mark, which must read as an empty delta.
    const std::uint64_t total = cold_->stalls();
    const std::uint64_t events_now =
        total >= refund_stalls_ ? total - refund_stalls_ : 0;
    const svc::LoadWindow window{
        ops_ - last_ops_,
        events_now >= last_events_ ? events_now - last_events_ : 0};
    last_ops_ = ops_;
    last_events_ = std::max(last_events_, events_now);
    if (!svc::should_switch(window, tuning_)) return;
    switched_ = true;
    switch_time_ = eng_.now();
    ops_at_switch_ = ops_;
    hot_->inject_pool_now(cold_->drain_pool_now());  // exact migration
  }

  std::unique_ptr<CounterModel> cold_, hot_;
  Engine& eng_;
  svc::AdaptiveTuning tuning_;
  bool switched_ = false;
  double switch_time_ = -1.0;
  std::uint64_t ops_ = 0, ops_at_switch_ = 0;
  std::uint64_t last_ops_ = 0, last_events_ = 0;
  std::uint64_t refund_stalls_ = 0;
};

// ----------------------------------------------------------------- driver

struct ModelStack {
  std::unique_ptr<CounterModel> root;
  // Non-owning views into the stack for stats extraction.
  ElimModel* elim = nullptr;
  AdaptiveModel* adaptive = nullptr;
};

std::unique_ptr<CounterModel> make_backend_model(svc::BackendKind kind,
                                                 Engine& eng,
                                                 const MulticoreConfig& cfg,
                                                 util::Xoshiro256& rng,
                                                 AdaptiveModel** adaptive) {
  const auto draw = [&](double mean) {
    return ServiceDraw(mean, cfg.exponential_service, rng);
  };
  const auto network = [&](std::size_t batch_k) {
    return std::make_unique<NetworkModel>(
        eng, core::make_counting(cfg.net.width_in, cfg.net.width_out),
        cfg.wire_delay, batch_k, draw(cfg.balancer_service));
  };
  switch (kind) {
    case svc::BackendKind::kCentralAtomic:
      return std::make_unique<CentralModel>(eng, cfg.central_slope,
                                            draw(cfg.central_service),
                                            /*empty_read_fast_path=*/true);
    case svc::BackendKind::kCentralCas:
      return std::make_unique<CentralModel>(eng, cfg.cas_slope,
                                            draw(cfg.central_service),
                                            /*empty_read_fast_path=*/true);
    case svc::BackendKind::kCentralMutex:
      return std::make_unique<CentralModel>(eng, cfg.mutex_slope,
                                            draw(cfg.mutex_service));
    case svc::BackendKind::kNetwork:
      return network(1);
    case svc::BackendKind::kBatchedNetwork:
      return network(cfg.batch_k);
    case svc::BackendKind::kAdaptive: {
      auto cold = std::make_unique<CentralModel>(eng, cfg.central_slope,
                                                 draw(cfg.central_service),
                                                 /*empty_read_fast_path=*/
                                                 true);
      auto model = std::make_unique<AdaptiveModel>(
          std::move(cold), network(cfg.batch_k), eng, cfg.tuning);
      if (adaptive != nullptr) *adaptive = model.get();
      return model;
    }
  }
  return nullptr;
}

ModelStack make_model(const svc::BackendSpec& spec, Engine& eng,
                      const MulticoreConfig& cfg, util::Xoshiro256& rng) {
  ModelStack stack;
  stack.root =
      make_backend_model(spec.kind, eng, cfg, rng, &stack.adaptive);
  CNET_REQUIRE(stack.root != nullptr, "unknown backend kind");
  if (spec.elimination) {
    auto elim = std::make_unique<ElimModel>(
        eng, std::move(stack.root), cfg.elim_slots, cfg.exchange_time,
        cfg.elim_inc_wait, cfg.elim_dec_wait, rng);
    stack.elim = elim.get();
    stack.root = std::move(elim);
  }
  return stack;
}

}  // namespace

std::vector<svc::BackendSpec> multicore_sweep_specs() {
  std::vector<svc::BackendSpec> specs;
  for (const auto kind : svc::kPoolBackendKinds) {
    specs.push_back({kind, false});
  }
  specs.push_back({svc::BackendKind::kCentralAtomic, true});
  specs.push_back({svc::BackendKind::kBatchedNetwork, true});
  return specs;
}

MulticoreResult simulate_multicore(const svc::BackendSpec& spec,
                                   const MulticoreConfig& cfg) {
  CNET_REQUIRE(cfg.cores >= 1, "need at least one simulated core");
  CNET_REQUIRE(cfg.ops_per_core >= 1, "need at least one op per core");
  CNET_REQUIRE(cfg.refill_every >= 1, "refill cadence must be positive");
  CNET_REQUIRE(cfg.think_time >= 0.0 && cfg.wire_delay >= 0.0,
               "delays must be nonnegative");

  Engine eng;
  util::Xoshiro256 rng(cfg.seed);
  ModelStack stack = make_model(spec, eng, cfg, rng);
  CounterModel& model = *stack.root;

  MulticoreResult res;
  res.initial_tokens = cfg.initial_tokens_per_core * cfg.cores;
  model.inject_pool_now(res.initial_tokens);

  // The Table B workload, one closed loop per core: consume(1) through the
  // shared svc::bucket_consume plan, a bulk refill every refill_every
  // consumes, think_time between ops.
  struct CoreState {
    std::size_t ops_done = 0;
    std::size_t since_refill = 0;
  };
  std::vector<CoreState> cores(cfg.cores);
  double makespan = 0.0;

  // Declared std::function for self-reference (each completion schedules
  // the core's next op).
  std::function<void(std::size_t)> step = [&](std::size_t c) {
    CoreState& core = cores[c];
    if (core.ops_done == cfg.ops_per_core) return;
    // consume(1): the single-token plan degenerates to one bounded claim —
    // run through bucket_consume so the simulator exercises the identical
    // policy the real NetTokenBucket does.
    model.try_decrement_n(c, 1, [&, c](std::uint64_t got) {
      const std::uint64_t granted = svc::bucket_consume(
          1, svc::kPartialOk,
          [got](std::uint64_t) mutable {
            return std::exchange(got, std::uint64_t{0});
          },
          [](std::uint64_t) {});
      CoreState& me = cores[c];
      ++res.consume_ops;
      ++me.ops_done;
      res.consumed += granted;
      if (granted == 0) ++res.rejected;
      makespan = std::max(makespan, eng.now());
      const bool refill_due = ++me.since_refill == cfg.refill_every;
      if (refill_due) me.since_refill = 0;
      const double next_at = eng.now() + cfg.think_time;
      if (refill_due) {
        model.increment_n(c, cfg.refill_every, [&, c, next_at] {
          res.refilled += cfg.refill_every;
          makespan = std::max(makespan, eng.now());
          eng.at(std::max(next_at, eng.now()), [&, c] { step(c); });
        });
      } else {
        eng.at(next_at, [&, c] { step(c); });
      }
    });
  };

  for (std::size_t c = 0; c < cfg.cores; ++c) step(c);
  eng.run();

  res.makespan = makespan;
  res.ops_per_vtime =
      static_cast<double>(res.consume_ops) / std::max(makespan, 1e-12);
  res.stall_events = model.stalls();
  res.final_pool = model.pool();
  res.conserved =
      !model.pool_ever_negative() && res.final_pool >= 0 &&
      res.consumed + static_cast<std::uint64_t>(res.final_pool) ==
          res.refilled + res.initial_tokens;
  if (stack.elim != nullptr) {
    res.elim_pairs = stack.elim->pairs();
    res.elim_withdrawals = stack.elim->withdrawals();
    res.elim_value_sum = stack.elim->value_sum();
  }
  if (stack.adaptive != nullptr) {
    res.switched = stack.adaptive->switched();
    res.switch_time = stack.adaptive->switch_time();
    res.ops_at_switch = stack.adaptive->ops_at_switch();
  }

  // Every core must have completed its loop (the event queue drains only
  // when no completion is pending).
  for (const CoreState& core : cores) {
    CNET_ENSURE(core.ops_done == cfg.ops_per_core,
                "simulated core finished early");
  }
  return res;
}

QuotaSimConfig quota_sim_reference_config(std::size_t cores) {
  QuotaSimConfig cfg;
  cfg.cores = cores;
  cfg.tenants = 8;
  cfg.hot_tenants = 1;
  cfg.hot_core_share = 0.75;
  cfg.ops_per_core = 512;
  cfg.base.exponential_service = true;
  cfg.base.seed = 0xB10C0DE;
  return cfg;
}

QuotaSimResult simulate_quota(const svc::BackendSpec& parent_spec,
                              const QuotaSimConfig& cfg) {
  CNET_REQUIRE(cfg.cores >= 1, "need at least one simulated core");
  CNET_REQUIRE(cfg.tenants >= 1, "need at least one tenant");
  CNET_REQUIRE(cfg.hot_tenants <= cfg.tenants,
               "hot tenants cannot exceed tenants");
  CNET_REQUIRE(cfg.ops_per_core >= 1, "need at least one op per core");
  CNET_REQUIRE(cfg.acquire_cost >= 1, "acquire cost must be positive");
  CNET_REQUIRE(cfg.hot_weight > 0 && cfg.cold_weight > 0,
               "weights must be positive");
  CNET_REQUIRE(cfg.hold_time >= 0.0 && cfg.think_time >= 0.0,
               "delays must be nonnegative");

  Engine eng;
  util::Xoshiro256 rng(cfg.base.seed);
  ModelStack parent_stack = make_model(parent_spec, eng, cfg.base, rng);
  CounterModel& parent = *parent_stack.root;
  parent.inject_pool_now(cfg.parent_initial);

  // Per-tenant child pools: central-word models, matching the real
  // hierarchy's default child backend — cheap alone, and honestly a queue
  // when many hot cores share one tenant.
  std::vector<std::unique_ptr<CounterModel>> children;
  children.reserve(cfg.tenants);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    children.push_back(std::make_unique<CentralModel>(
        eng, cfg.base.central_slope,
        ServiceDraw(cfg.base.central_service, cfg.base.exponential_service,
                    rng),
        /*empty_read_fast_path=*/true));
    children.back()->inject_pool_now(cfg.child_initial);
  }

  // Core pinning: the first hot_core_share of the cores round-robin over
  // the hot tenants, the rest over the cold ones.
  const std::size_t cold_tenants = cfg.tenants - cfg.hot_tenants;
  std::size_t hot_cores =
      cfg.hot_tenants == 0
          ? 0
          : static_cast<std::size_t>(
                static_cast<double>(cfg.cores) * cfg.hot_core_share + 0.5);
  if (cfg.hot_tenants > 0 && hot_cores < cfg.hot_tenants) {
    hot_cores = cfg.hot_tenants;  // every hot tenant gets a core
  }
  if (cold_tenants == 0) hot_cores = cfg.cores;
  hot_cores = std::min(hot_cores, cfg.cores);
  std::vector<std::size_t> tenant_of(cfg.cores);
  for (std::size_t c = 0; c < cfg.cores; ++c) {
    tenant_of[c] = c < hot_cores
                       ? c % cfg.hot_tenants
                       : cfg.hot_tenants + (c - hot_cores) % cold_tenants;
  }

  // Weighted borrow limits, from the same shared rule the real hierarchy
  // applies at construction.
  std::uint64_t total_weight = 0;
  std::vector<std::uint64_t> weights(cfg.tenants);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    weights[t] = t < cfg.hot_tenants ? cfg.hot_weight : cfg.cold_weight;
    total_weight += weights[t];
  }

  QuotaSimResult res;
  res.attempts_per_tenant.assign(cfg.tenants, 0);
  res.admitted_per_tenant.assign(cfg.tenants, 0);
  res.limit_per_tenant.resize(cfg.tenants);
  res.peak_borrowed_per_tenant.assign(cfg.tenants, 0);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    res.limit_per_tenant[t] =
        svc::weighted_borrow_limit(cfg.borrow_budget, weights[t],
                                   total_weight);
  }

  std::vector<std::uint64_t> borrowed(cfg.tenants, 0);
  bool cap_violated = false;
  struct CoreState {
    std::size_t ops_done = 0;
  };
  std::vector<CoreState> cores(cfg.cores);
  double makespan = 0.0;
  const auto touch = [&] { makespan = std::max(makespan, eng.now()); };

  // The acquire flow is svc::quota_acquire's rule set driven in
  // continuation-passing form: the child take, the borrow_allowance
  // reservation, the parent take, and a quota_settle that either keeps
  // both parts or refunds each to its own level.
  std::function<void(std::size_t)> step;
  std::function<void(std::size_t, std::size_t, std::uint64_t, std::uint64_t,
                     std::uint64_t)>
      settle = [&](std::size_t c, std::size_t t, std::uint64_t got_child,
                   std::uint64_t got_parent, std::uint64_t reserved) {
        touch();
        ++res.acquire_ops;
        ++res.attempts_per_tenant[t];
        ++cores[c].ops_done;
        const svc::QuotaSettlement s =
            svc::quota_settle(cfg.acquire_cost, got_child, got_parent);
        const auto next = [&, c](double at) {
          eng.at(at, [&, c] { step(c); });
        };
        if (s.admitted) {
          ++res.admitted;
          ++res.admitted_per_tenant[t];
          res.granted_child_tokens += got_child;
          res.granted_parent_tokens += got_parent;
          // Hold the grant, then release each part to the level it came
          // from (child first, then parent pool, then the borrow headroom
          // — the real release's ordering); the next attempt follows the
          // release completion plus think time.
          eng.at(eng.now() + cfg.hold_time, [&, c, t, got_child, got_parent,
                                             next] {
            const auto release_parent = [&, c, t, got_parent, next] {
              if (got_parent == 0) {
                touch();
                next(eng.now() + cfg.think_time);
                return;
              }
              parent.refund_n(c, got_parent, [&, t, got_parent, next] {
                borrowed[t] -= got_parent;
                touch();
                next(eng.now() + cfg.think_time);
              });
            };
            if (got_child > 0) {
              children[t]->refund_n(c, got_child, release_parent);
            } else {
              release_parent();
            }
          });
          return;
        }
        ++res.rejected;
        if (t < cfg.hot_tenants) {
          ++res.hot_rejected;
        } else {
          ++res.cold_rejected;
        }
        const auto refund_child = [&, c, t, got_child, next] {
          if (got_child == 0) {
            next(eng.now() + cfg.think_time);
            return;
          }
          children[t]->refund_n(c, got_child, [&, next] {
            touch();
            next(eng.now() + cfg.think_time);
          });
        };
        // Pool before headroom (quota_acquire's reject ordering): the
        // reservation is released only once the parent refund has landed.
        if (s.refund_parent > 0) {
          parent.refund_n(c, s.refund_parent, [&, t, reserved,
                                               refund_child] {
            if (reserved > 0) borrowed[t] -= reserved;
            touch();
            refund_child();
          });
        } else {
          if (reserved > 0) borrowed[t] -= reserved;
          refund_child();
        }
      };

  step = [&](std::size_t c) {
    if (cores[c].ops_done == cfg.ops_per_core) return;
    const std::size_t t = tenant_of[c];
    children[t]->try_decrement_n(
        c, cfg.acquire_cost, [&, c, t](std::uint64_t got_child) {
          if (got_child == cfg.acquire_cost) {
            settle(c, t, got_child, 0, 0);
            return;
          }
          const std::uint64_t shortfall = cfg.acquire_cost - got_child;
          const std::uint64_t reserved = svc::borrow_allowance(
              shortfall, borrowed[t], res.limit_per_tenant[t]);
          if (reserved < shortfall) {
            settle(c, t, got_child, 0, 0);  // nothing committed
            return;
          }
          borrowed[t] += reserved;
          res.peak_borrowed_per_tenant[t] =
              std::max(res.peak_borrowed_per_tenant[t], borrowed[t]);
          if (borrowed[t] > res.limit_per_tenant[t]) cap_violated = true;
          parent.try_decrement_n(
              c, shortfall,
              [&, c, t, got_child, reserved](std::uint64_t got_parent) {
                settle(c, t, got_child, got_parent, reserved);
              });
        });
  };

  for (std::size_t c = 0; c < cfg.cores; ++c) step(c);
  eng.run();

  res.makespan = makespan;
  res.ops_per_vtime =
      static_cast<double>(res.acquire_ops) / std::max(makespan, 1e-12);
  res.goodput_per_vtime =
      static_cast<double>(res.admitted) / std::max(makespan, 1e-12);
  res.parent_stalls = parent.stalls();
  for (const auto& child : children) res.child_stalls += child->stalls();

  bool quiescent_exact = !parent.pool_ever_negative() &&
                         parent.pool() == static_cast<std::int64_t>(
                                              cfg.parent_initial);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    quiescent_exact =
        quiescent_exact && !children[t]->pool_ever_negative() &&
        children[t]->pool() ==
            static_cast<std::int64_t>(cfg.child_initial) &&
        borrowed[t] == 0;
  }
  res.conserved = quiescent_exact;
  res.isolation = !cap_violated && res.cold_rejected == 0;

  for (const CoreState& core : cores) {
    CNET_ENSURE(core.ops_done == cfg.ops_per_core,
                "simulated core finished early");
  }
  return res;
}

OverloadSimConfig overload_sim_reference_config() {
  OverloadSimConfig cfg;
  cfg.base.exponential_service = true;
  cfg.base.seed = 0xB10C0DE;
  return cfg;
}

OverloadSimResult simulate_overload(const svc::BackendSpec& parent_spec,
                                    const OverloadSimConfig& cfg) {
  CNET_REQUIRE(cfg.cores >= 1, "need at least one simulated core");
  CNET_REQUIRE(cfg.tenants >= 1, "need at least one tenant");
  CNET_REQUIRE(cfg.hot_tenants <= cfg.tenants,
               "hot tenants cannot exceed tenants");
  CNET_REQUIRE(cfg.ops_per_core >= 1, "need at least one op per core");
  CNET_REQUIRE(cfg.acquire_cost >= 1, "acquire cost must be positive");
  CNET_REQUIRE(cfg.hot_weight > 0 && cfg.cold_weight > 0,
               "weights must be positive");
  CNET_REQUIRE(cfg.hold_time >= 0.0 && cfg.think_time >= 0.0 &&
                   cfg.core_start_stagger >= 0.0,
               "delays must be nonnegative");
  CNET_REQUIRE(cfg.sample_every > 0.0, "sample cadence must be positive");
  CNET_REQUIRE(cfg.stall_saturation > 0.0,
               "stall saturation rate must be positive");
  CNET_REQUIRE(cfg.shed_fraction >= 0.0 && cfg.shed_fraction <= 1.0,
               "shed_fraction must be in [0, 1]");

  Engine eng;
  util::Xoshiro256 rng(cfg.base.seed);
  ModelStack parent_stack = make_model(parent_spec, eng, cfg.base, rng);
  CounterModel& parent = *parent_stack.root;
  parent.inject_pool_now(cfg.parent_initial);

  std::vector<std::unique_ptr<CounterModel>> children;
  children.reserve(cfg.tenants);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    children.push_back(std::make_unique<CentralModel>(
        eng, cfg.base.central_slope,
        ServiceDraw(cfg.base.central_service, cfg.base.exponential_service,
                    rng),
        /*empty_read_fast_path=*/true));
    children.back()->inject_pool_now(cfg.child_initial);
  }

  // Core pinning and weighted limits, exactly as simulate_quota.
  const std::size_t cold_tenants = cfg.tenants - cfg.hot_tenants;
  std::size_t hot_cores =
      cfg.hot_tenants == 0
          ? 0
          : static_cast<std::size_t>(
                static_cast<double>(cfg.cores) * cfg.hot_core_share + 0.5);
  if (cfg.hot_tenants > 0 && hot_cores < cfg.hot_tenants) {
    hot_cores = cfg.hot_tenants;
  }
  if (cold_tenants == 0) hot_cores = cfg.cores;
  hot_cores = std::min(hot_cores, cfg.cores);
  std::vector<std::size_t> tenant_of(cfg.cores);
  for (std::size_t c = 0; c < cfg.cores; ++c) {
    tenant_of[c] = c < hot_cores
                       ? c % cfg.hot_tenants
                       : cfg.hot_tenants + (c - hot_cores) % cold_tenants;
  }
  std::uint64_t total_weight = 0;
  std::vector<std::uint64_t> weights(cfg.tenants);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    weights[t] = t < cfg.hot_tenants ? cfg.hot_weight : cfg.cold_weight;
    total_weight += weights[t];
  }
  std::vector<std::uint64_t> limits(cfg.tenants);
  std::uint64_t total_limit = 0;
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    limits[t] = svc::weighted_borrow_limit(cfg.borrow_budget, weights[t],
                                           total_weight);
    total_limit += limits[t];
  }

  OverloadSimResult res;
  res.shed_rejects_per_tenant.assign(cfg.tenants, 0);

  std::vector<std::uint64_t> borrowed(cfg.tenants, 0);
  struct CoreState {
    std::size_t ops_done = 0;
  };
  std::vector<CoreState> cores(cfg.cores);
  std::size_t active_cores = cfg.cores;
  double makespan = 0.0;
  const auto touch = [&] { makespan = std::max(makespan, eng.now()); };

  // Manager state: the tier in force and its action table. Both are read
  // by the workload at decision points, exactly as the real components
  // read OverloadManager::actions().
  svc::OverloadTier tier = svc::OverloadTier::kNominal;
  svc::OverloadActions actions;  // defaults == nominal

  // Outstanding-grant registry for exact shed refunds. A grant is refunded
  // exactly once: either by its hold-expiry event or — if a shed sweep got
  // there first — by the force-refund, with the expiry finding `released`
  // set and doing nothing. (The engine cannot cancel scheduled events, so
  // the flag is the cancellation.) Deque: references stay valid across
  // push_back, which the in-flight continuations rely on.
  struct GrantRec {
    std::size_t tenant = 0;
    std::uint64_t from_child = 0;
    std::uint64_t from_parent = 0;
    bool released = false;
  };
  std::deque<GrantRec> grants;
  // Per-tenant indices of possibly-live grants, cleaned lazily (a shed
  // sweep skips entries whose grant was already released).
  std::vector<std::vector<std::size_t>> held(cfg.tenants);
  std::vector<char> shed_flag(cfg.tenants, 0);
  std::vector<std::size_t> currently_shed;

  // kShrinkBatch actuation: refunds return in chunks of
  // max(1, n / batch_divisor) — several short exclusive holds instead of
  // one bulk traversal. Divisor 1 (nominal) degenerates to a single call.
  std::function<void(CounterModel*, std::size_t, std::uint64_t, Done)>
      refund_chunked = [&](CounterModel* model, std::size_t c,
                           std::uint64_t n, Done done) {
        if (n == 0) {
          eng.at(eng.now(), std::move(done));
          return;
        }
        const std::uint64_t k = std::min(
            n, std::max<std::uint64_t>(1, n / actions.batch_divisor));
        model->refund_n(c, k,
                        [&, model, c, n, k, done = std::move(done)]() mutable {
                          refund_chunked(model, c, n - k, std::move(done));
                        });
      };

  // Refund a grant's parts to the level each came from: child first, then
  // parent pool, then the borrow headroom — the real release's ordering.
  const auto refund_grant = [&](std::size_t c, std::size_t idx, Done after) {
    const GrantRec g = grants[idx];  // parts are fixed at admit time
    const auto parent_part = [&, c, t = g.tenant, fp = g.from_parent,
                              after = std::move(after)] {
      if (fp == 0) {
        touch();
        after();
        return;
      }
      refund_chunked(&parent, c, fp, [&, t, fp, after] {
        borrowed[t] -= fp;
        touch();
        after();
      });
    };
    if (g.from_child > 0) {
      refund_chunked(children[g.tenant].get(), c, g.from_child, parent_part);
    } else {
      parent_part();
    }
  };

  std::function<void(std::size_t)> step;

  // Settlement through the shared rule, with the tier's degrade action
  // deciding partial_ok at the instant the takes complete — the same
  // point QuotaHierarchy::acquire reads OverloadManager::actions().
  const auto settle = [&](std::size_t c, std::size_t t,
                          std::uint64_t got_child, std::uint64_t got_parent,
                          std::uint64_t reserved) {
    touch();
    ++res.attempts;
    ++cores[c].ops_done;
    const svc::QuotaSettlement s = svc::quota_settle(
        cfg.acquire_cost, got_child, got_parent,
        actions.degrade_to_partial ? svc::kPartialOk : svc::kAllOrNothing);
    const auto next = [&, c](double at) {
      eng.at(at, [&, c] { step(c); });
    };
    if (s.admitted) {
      ++res.admitted;
      if (got_child + got_parent < cfg.acquire_cost) ++res.degraded_admits;
      // A degraded admit may hold a reservation larger than the parent
      // tokens it claimed; give the unused headroom back (quota_acquire's
      // partial-path unreserve) so outstanding borrow == from_parent.
      if (reserved > got_parent) borrowed[t] -= reserved - got_parent;
      const std::size_t idx = grants.size();
      grants.push_back({t, got_child, got_parent, false});
      held[t].push_back(idx);
      eng.at(eng.now() + cfg.hold_time, [&, c, idx, next] {
        GrantRec& g = grants[idx];
        if (g.released) {  // force-refunded by a shed sweep meanwhile
          touch();
          next(eng.now() + cfg.think_time);
          return;
        }
        g.released = true;
        refund_grant(c, idx,
                     [&, next] { next(eng.now() + cfg.think_time); });
      });
      return;
    }
    ++res.rejected;
    const auto refund_child = [&, c, t, got_child, next] {
      if (got_child == 0) {
        next(eng.now() + cfg.think_time);
        return;
      }
      refund_chunked(children[t].get(), c, got_child, [&, next] {
        touch();
        next(eng.now() + cfg.think_time);
      });
    };
    // Pool before headroom, as in simulate_quota.
    if (s.refund_parent > 0) {
      refund_chunked(&parent, c, s.refund_parent,
                     [&, t, reserved, refund_child] {
                       if (reserved > 0) borrowed[t] -= reserved;
                       touch();
                       refund_child();
                     });
    } else {
      if (reserved > 0) borrowed[t] -= reserved;
      refund_child();
    }
  };

  step = [&](std::size_t c) {
    if (cores[c].ops_done == cfg.ops_per_core) {
      --active_cores;
      return;
    }
    const std::size_t t = tenant_of[c];
    if (shed_flag[t] != 0) {
      // The shed fast path: rejected before any pool is touched, so there
      // is nothing to refund (QuotaHierarchy::acquire's shed check).
      ++res.attempts;
      ++res.shed_rejects;
      ++res.shed_rejects_per_tenant[t];
      ++cores[c].ops_done;
      touch();
      eng.at(eng.now() + cfg.think_time, [&, c] { step(c); });
      return;
    }
    children[t]->try_decrement_n(
        c, cfg.acquire_cost, [&, c, t](std::uint64_t got_child) {
          if (got_child == cfg.acquire_cost) {
            settle(c, t, got_child, 0, 0);
            return;
          }
          const std::uint64_t shortfall = cfg.acquire_cost - got_child;
          const std::uint64_t reserved =
              svc::borrow_allowance(shortfall, borrowed[t], limits[t]);
          if (reserved < shortfall) {
            // Commit-only-if-full, like reserve_borrow; the degraded path
            // still settles partially off the child part alone.
            settle(c, t, got_child, 0, 0);
            return;
          }
          borrowed[t] += reserved;
          parent.try_decrement_n(
              c, shortfall,
              [&, c, t, got_child, reserved](std::uint64_t got_parent) {
                settle(c, t, got_child, got_parent, reserved);
              });
        });
  };

  // A tier change takes effect here: the action table swaps, a forced
  // adaptive swap fires, and entering/leaving the shed tier runs the
  // shed_set sweep / the restore — the OverloadManager::apply_transition
  // sequence in virtual time.
  const auto apply_transition = [&](svc::OverloadTier to, double pressure) {
    res.transitions.push_back({eng.now(), tier, to, pressure});
    const bool was_shedding = actions.shed_tenants;
    tier = to;
    actions = svc::overload_actions(tier);
    if (tier > res.peak_tier) res.peak_tier = tier;
    if (actions.force_eliminate && parent_stack.adaptive != nullptr &&
        !parent_stack.adaptive->switched()) {
      parent_stack.adaptive->force_switch_now();
      res.forced_switch = true;
      res.forced_switch_time = eng.now();
    }
    if (actions.shed_tenants && !was_shedding) {
      ++res.shed_events;
      for (const std::size_t t : svc::shed_set(weights, cfg.shed_fraction)) {
        shed_flag[t] = 1;
        currently_shed.push_back(t);
        for (const std::size_t idx : held[t]) {
          GrantRec& g = grants[idx];
          if (g.released) continue;
          g.released = true;
          res.shed_refunded_tokens += g.from_child + g.from_parent;
          refund_grant(/*core=*/t, idx, [&] { touch(); });
        }
        held[t].clear();
      }
    } else if (!actions.shed_tenants && was_shedding) {
      ++res.restore_events;
      for (const std::size_t t : currently_shed) shed_flag[t] = 0;
      currently_shed.clear();
    }
  };

  // The manager's periodic evaluate(): window deltas over the driver's
  // counters feed the same three signals the real monitors produce — the
  // parent stall rate, the organic reject ratio (shed turn-aways are the
  // manager's own doing and never reach a bucket), and aggregate borrow
  // occupancy — through the same pure combining and tier rules. The
  // sampler keeps itself alive while cores run, then for at most
  // drain_samples more while the tier decays back to nominal.
  std::uint64_t last_ops = 0;
  std::uint64_t last_stalls = 0;
  std::uint64_t last_rejects = 0;
  std::size_t drain_budget = cfg.drain_samples;
  std::function<void()> sample = [&] {
    const std::uint64_t ops_now = res.attempts;
    const std::uint64_t stalls_now = parent.stalls();
    const std::uint64_t rejects_now = res.rejected;
    const svc::LoadWindow stall_win{ops_now - last_ops,
                                    stalls_now - last_stalls};
    const svc::LoadWindow reject_win{ops_now - last_ops,
                                     rejects_now - last_rejects};
    last_ops = ops_now;
    last_stalls = stalls_now;
    last_rejects = rejects_now;
    std::uint64_t borrowed_total = 0;
    for (std::size_t t = 0; t < cfg.tenants; ++t) borrowed_total += borrowed[t];
    const double pressure = svc::combine_pressure(
        {svc::window_pressure(stall_win, cfg.stall_saturation),
         svc::window_pressure(reject_win, 1.0),
         svc::occupancy_pressure(borrowed_total, total_limit)});
    const svc::OverloadTier to =
        svc::overload_tier(pressure, tier, cfg.thresholds);
    if (to != tier) apply_transition(to, pressure);
    if (active_cores > 0) {
      eng.at(eng.now() + cfg.sample_every, sample);
    } else if (tier != svc::OverloadTier::kNominal && drain_budget > 0) {
      --drain_budget;
      eng.at(eng.now() + cfg.sample_every, sample);
    }
  };

  for (std::size_t c = 0; c < cfg.cores; ++c) {
    eng.at(static_cast<double>(c) * cfg.core_start_stagger,
           [&, c] { step(c); });
  }
  eng.at(cfg.sample_every, sample);
  eng.run();

  res.makespan = makespan;
  res.final_tier = tier;

  bool quiescent_exact =
      !parent.pool_ever_negative() &&
      parent.pool() == static_cast<std::int64_t>(cfg.parent_initial);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    quiescent_exact = quiescent_exact && !children[t]->pool_ever_negative() &&
                      children[t]->pool() ==
                          static_cast<std::int64_t>(cfg.child_initial) &&
                      borrowed[t] == 0;
  }
  res.conserved = quiescent_exact;

  bool hysteresis_ok = true;
  for (const OverloadSimTransition& tr : res.transitions) {
    const auto from_i = static_cast<std::size_t>(tr.from);
    const auto to_i = static_cast<std::size_t>(tr.to);
    if (to_i > from_i) {
      hysteresis_ok =
          hysteresis_ok && tr.pressure >= cfg.thresholds.enter[to_i] - 1e-12;
    } else {
      hysteresis_ok = hysteresis_ok &&
                      tr.pressure <= cfg.thresholds.enter[from_i] -
                                         cfg.thresholds.hysteresis + 1e-12;
    }
  }
  res.hysteresis_respected = hysteresis_ok;
  res.recovered =
      res.final_tier == svc::OverloadTier::kNominal && currently_shed.empty();

  for (const CoreState& core : cores) {
    CNET_ENSURE(core.ops_done == cfg.ops_per_core,
                "simulated core finished early");
  }
  return res;
}

// --------------------------------------------------------------- reconfig

ReconfigSimConfig reconfig_sim_reference_config() {
  ReconfigSimConfig cfg;
  cfg.base.cores = 8;
  cfg.base.ops_per_core = 2048;
  cfg.base.refill_every = 128;
  cfg.base.initial_tokens_per_core = 64;
  cfg.base.exponential_service = true;
  cfg.base.seed = 0x5EC0AD;
  cfg.spec_to = {svc::BackendKind::kCentralAtomic, false};
  cfg.respec_at = 300.0;
  cfg.rechunk_divisor = 4;
  return cfg;
}

svc::BackendSpec reconfig_respec_target(const svc::BackendSpec& spec_from) {
  switch (spec_from.kind) {
    case svc::BackendKind::kCentralAtomic:
    case svc::BackendKind::kCentralCas:
    case svc::BackendKind::kCentralMutex:
      return {svc::BackendKind::kBatchedNetwork, false};
    default:
      return {svc::BackendKind::kCentralAtomic, false};
  }
}

ReconfigSimResult simulate_reconfig(const svc::BackendSpec& spec_from,
                                    const ReconfigSimConfig& cfg) {
  const MulticoreConfig& base = cfg.base;
  CNET_REQUIRE(base.cores >= 1, "need at least one simulated core");
  CNET_REQUIRE(base.ops_per_core >= 1, "need at least one op per core");
  CNET_REQUIRE(base.refill_every >= 1, "refill cadence must be positive");
  CNET_REQUIRE(cfg.respec_at >= 0.0, "respec instant must be nonnegative");
  // The same staging rules the live NetTokenBucket::respec enforces: the
  // re-divided chunk is computed by the shared policy function and must be
  // a legal chunk before anything is built.
  const std::size_t staged_chunk =
      svc::divided_chunk(base.batch_k, cfg.rechunk_divisor);
  CNET_REQUIRE(svc::respec_safe(staged_chunk),
               "staged batch chunk out of range");

  Engine eng;
  util::Xoshiro256 rng(base.seed);
  ModelStack old_stack = make_model(spec_from, eng, base, rng);
  ModelStack new_stack;  // built off to the side at the stage instant

  ReconfigSimResult res;
  res.staged_chunk = staged_chunk;
  res.initial_tokens = base.initial_tokens_per_core * base.cores;
  old_stack.root->inject_pool_now(res.initial_tokens);

  // The RCU mirror: `active` is the published pointer new ops load at
  // issue; ops already in flight on the old stack are the reader sections
  // the commit must wait out. outstanding_old counts them exactly.
  CounterModel* active = old_stack.root.get();
  std::uint64_t outstanding_old = 0;
  bool staged = false;
  bool committed = false;

  const auto maybe_commit = [&] {
    if (!staged || committed || outstanding_old != 0) return;
    // Quiescence: no in-flight op can touch the old stack again, so its
    // remaining count is well-defined — the paper's §2.2 argument run in
    // reverse — and the migration is one exact instantaneous transfer.
    committed = true;
    res.respec_commit_time = eng.now();
    res.migrated_tokens = old_stack.root->drain_pool_now();
    new_stack.root->inject_pool_now(res.migrated_tokens);
    res.config_version = 2;
  };

  eng.at(cfg.respec_at, [&] {
    // Stage: build the full replacement (new backend, re-divided chunk)
    // and publish it. From this event on, every newly issued op routes to
    // the new stack; the commit fires once the old drains.
    MulticoreConfig staged_cfg = base;
    staged_cfg.batch_k = staged_chunk;
    new_stack = make_model(cfg.spec_to, eng, staged_cfg, rng);
    active = new_stack.root.get();
    staged = true;
    res.respec_staged_time = eng.now();
    maybe_commit();
  });

  // The simulate_multicore workload, with each op's issue reading the
  // published pointer (and bumping the old stack's reader count when it
  // still routes there).
  struct CoreState {
    std::size_t ops_done = 0;
    std::size_t since_refill = 0;
  };
  std::vector<CoreState> cores(base.cores);
  double makespan = 0.0;

  std::function<void(std::size_t)> step = [&](std::size_t c) {
    CoreState& core = cores[c];
    if (core.ops_done == base.ops_per_core) return;
    CounterModel* m = active;
    const bool on_old = !staged;  // active flips exactly at the stage event
    if (on_old) ++outstanding_old;
    m->try_decrement_n(c, 1, [&, c, on_old](std::uint64_t got) {
      if (on_old) --outstanding_old;
      const std::uint64_t granted = svc::bucket_consume(
          1, svc::kPartialOk,
          [got](std::uint64_t) mutable {
            return std::exchange(got, std::uint64_t{0});
          },
          [](std::uint64_t) {});
      CoreState& me = cores[c];
      ++res.consume_ops;
      ++me.ops_done;
      res.consumed += granted;
      if (granted == 0) ++res.rejected;
      makespan = std::max(makespan, eng.now());
      maybe_commit();  // this may have been the last old-stack reader
      const bool refill_due = ++me.since_refill == base.refill_every;
      if (refill_due) me.since_refill = 0;
      const double next_at = eng.now() + base.think_time;
      if (refill_due) {
        CounterModel* rm = active;
        const bool refill_on_old = !staged;
        if (refill_on_old) ++outstanding_old;
        rm->increment_n(c, base.refill_every, [&, c, refill_on_old,
                                               next_at] {
          if (refill_on_old) --outstanding_old;
          res.refilled += base.refill_every;
          makespan = std::max(makespan, eng.now());
          maybe_commit();
          eng.at(std::max(next_at, eng.now()), [&, c] { step(c); });
        });
      } else {
        eng.at(next_at, [&, c] { step(c); });
      }
    });
  };

  for (std::size_t c = 0; c < base.cores; ++c) step(c);
  eng.run();

  res.makespan = makespan;
  res.old_stalls = old_stack.root->stalls();
  res.new_stalls = new_stack.root != nullptr ? new_stack.root->stalls() : 0;
  const std::int64_t old_pool = old_stack.root->pool();
  const std::int64_t new_pool =
      new_stack.root != nullptr ? new_stack.root->pool() : 0;
  res.final_pool = old_pool + new_pool;
  bool never_negative = !old_stack.root->pool_ever_negative();
  if (new_stack.root != nullptr) {
    never_negative = never_negative && !new_stack.root->pool_ever_negative();
  }
  res.conserved =
      never_negative && res.final_pool >= 0 &&
      (!committed || old_pool == 0) &&  // the retired pool stays drained
      res.consumed + static_cast<std::uint64_t>(res.final_pool) ==
          res.refilled + res.initial_tokens;

  for (const CoreState& core : cores) {
    CNET_ENSURE(core.ops_done == base.ops_per_core,
                "simulated core finished early");
  }
  return res;
}

ClusterSimConfig cluster_sim_reference_config(std::size_t nodes) {
  ClusterSimConfig cfg;
  CNET_REQUIRE(nodes >= 1, "need at least one node");
  // First half of the nodes in dc 0, second half in dc 1; within a dc,
  // adjacent node pairs share a rack — so almost every node has a
  // rack-mate to donate to, which is the whole locality story.
  const std::size_t per_dc = (nodes + 1) / 2;
  cfg.nodes.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    cfg.nodes[i].dc = static_cast<std::uint32_t>(i / per_dc);
    cfg.nodes[i].rack = static_cast<std::uint32_t>((i % per_dc) / 2);
  }
  cfg.cores_per_node = 3;
  cfg.ops_per_core = 160;
  // Supply-healthy: each node's account + borrow share covers its demand,
  // so the admission tail measures *renewal locality*, not global
  // starvation (scarcity variants layer on top of this in bench_tab_dist).
  cfg.parent_initial = 2048;
  cfg.account_initial = 256;
  cfg.borrow_budget = 2048;
  cfg.local_initial = 64;
  cfg.lease_chunk = 96;
  cfg.lease_cap = 384;
  cfg.lease_ttl = 600.0;
  cfg.peer_reserve = 24;
  cfg.reconcile_chunk = 192;
  cfg.base.exponential_service = true;
  cfg.base.seed = 0xD157C0DE;
  return cfg;
}

ClusterSimResult simulate_cluster(const svc::BackendSpec& parent_spec,
                                  const ClusterSimConfig& cfg) {
  const std::size_t n = cfg.nodes.size();
  CNET_REQUIRE(n >= 1, "need at least one node");
  CNET_REQUIRE(cfg.cores_per_node >= 1, "need at least one core per node");
  CNET_REQUIRE(cfg.ops_per_core >= 1, "need at least one op per core");
  CNET_REQUIRE(cfg.lease_chunk >= 1 && cfg.lease_cap >= 1,
               "lease sizing must be positive");
  CNET_REQUIRE(cfg.reconcile_chunk >= 1, "reconcile chunk must be positive");
  CNET_REQUIRE(cfg.lease_ttl > 0.0, "lease TTL must be positive");
  CNET_REQUIRE(cfg.link_same_rack >= 0.0 && cfg.link_same_dc >= 0.0 &&
                   cfg.link_remote >= 0.0 && cfg.local_service >= 0.0,
               "delays must be nonnegative");
  for (const ClusterPartition& p : cfg.partitions) {
    CNET_REQUIRE(p.node < n, "partition names a node outside the topology");
    CNET_REQUIRE(p.end > p.start && p.start >= 0.0,
                 "partition window must be a nonempty [start, end)");
  }

  std::vector<dist::NodeLocation> locs;
  locs.reserve(n);
  for (const ClusterNode& node : cfg.nodes) {
    locs.push_back({node.dc, node.rack});
  }
  const dist::Topology topo(std::move(locs));

  Engine eng;
  util::Xoshiro256 rng(cfg.base.seed);
  ModelStack parent_stack = make_model(parent_spec, eng, cfg.base, rng);
  CounterModel& parent = *parent_stack.root;

  ClusterSimResult res;
  res.initial_tokens =
      cfg.parent_initial +
      static_cast<std::uint64_t>(n) * (cfg.account_initial + cfg.local_initial);

  // In leased mode the hierarchy is real: parent pool + per-node lease
  // accounts at the coordinator, per-node local pools at the edge. In
  // central mode every token lives in the one global pool and every
  // admission round-trips to it — the baseline the locality claim beats.
  if (cfg.leased) {
    parent.inject_pool_now(cfg.parent_initial);
  } else {
    parent.inject_pool_now(res.initial_tokens);
  }
  std::vector<std::int64_t> account(
      n, cfg.leased ? static_cast<std::int64_t>(cfg.account_initial) : 0);
  std::vector<std::int64_t> local(
      n, cfg.leased ? static_cast<std::int64_t>(cfg.local_initial) : 0);
  std::vector<std::uint64_t> borrowed(n, 0);
  const std::uint64_t borrow_limit =
      svc::weighted_borrow_limit(cfg.borrow_budget, 1, n);

  // The coordinator sits with node 0: each node owns one FIFO uplink whose
  // one-way latency follows its proximity to node 0, and peer RPCs occupy
  // the requester's link for the round trip. A busy link queues — which is
  // exactly how central counting loses.
  const auto link_of = [&](dist::Proximity p) {
    switch (p) {
      case dist::Proximity::kSelf:
      case dist::Proximity::kSameRack:
        return cfg.link_same_rack;
      case dist::Proximity::kSameDc:
        return cfg.link_same_dc;
      case dist::Proximity::kRemote:
        return cfg.link_remote;
    }
    return cfg.link_remote;
  };
  std::vector<double> link_free(n, 0.0);
  const auto occupy = [&](std::size_t node, double service) {
    const double start = std::max(eng.now(), link_free[node]);
    link_free[node] = start + service;
    return link_free[node];
  };
  const auto uplat = [&](std::size_t node) {
    return link_of(topo.proximity(node, 0));
  };

  struct SimLease {
    std::size_t tenant;  // the account its refund settles to
    std::uint64_t from_child;
    std::uint64_t from_parent;
    double expiry;
    bool settled;
  };
  struct NodeLedger {
    std::deque<SimLease> leases;  // deque: stable refs across push_back
    std::deque<dist::CarvedParts> debts;  // tenant rides in debt_tenants
    std::deque<std::pair<std::size_t, std::uint64_t>> debt_meta;
    std::uint64_t escrow = 0;
    bool partitioned = false;
  };
  std::vector<NodeLedger> nodes(n);

  std::vector<double> admit_latency;
  admit_latency.reserve(static_cast<std::size_t>(cfg.ops_per_core) *
                        cfg.cores_per_node * n);
  double makespan = 0.0;
  const auto touch = [&] { makespan = std::max(makespan, eng.now()); };
  ServiceDraw local_draw(cfg.local_service, cfg.base.exponential_service,
                         rng);

  // One expiry/debt refund landing at the coordinator: the exact
  // lease_expiry_refund split the live ledger applies via settle_spent —
  // child part to the lease account, parent part home to the pool, the
  // whole borrow headroom freed.
  const auto apply_refund = [&](std::size_t tenant, std::uint64_t from_child,
                                std::uint64_t from_parent,
                                std::uint64_t recovered, bool is_debt) {
    const dist::ExpiryRefund split =
        dist::lease_expiry_refund(from_child, from_parent, recovered);
    account[tenant] += static_cast<std::int64_t>(split.refund_child);
    if (from_parent > 0) borrowed[tenant] -= from_parent;
    res.expiry_refunded += recovered;
    if (is_debt) res.debt_reconciled += recovered;
    touch();
    if (split.refund_parent > 0) {
      parent.refund_n(tenant, split.refund_parent, [&] { touch(); });
    }
  };

  // Lease expiry: events re-arm while renewals keep extending the expiry
  // field (the heartbeat), and settle exactly once via the settled flag —
  // same shape as the live ledger's expiry-vs-renewal race rule.
  std::function<void(std::size_t, SimLease*)> arm_expiry =
      [&](std::size_t node, SimLease* lease) {
        eng.at(lease->expiry, [&, node, lease] {
          if (lease->settled) return;
          if (lease->expiry > eng.now()) {
            arm_expiry(node, lease);  // renewed since; chase the new TTL
            return;
          }
          lease->settled = true;
          NodeLedger& ledger = nodes[node];
          const std::uint64_t tokens = lease->from_child + lease->from_parent;
          const auto avail = static_cast<std::uint64_t>(
              std::max<std::int64_t>(local[node], 0));
          const std::uint64_t recovered = std::min(tokens, avail);
          local[node] -= static_cast<std::int64_t>(recovered);
          ++res.expiries;
          res.expiry_recovered += recovered;
          touch();
          if (ledger.partitioned) {
            ledger.debts.push_back({lease->from_child, lease->from_parent});
            ledger.debt_meta.push_back({lease->tenant, recovered});
            ledger.escrow += recovered;
            res.debt_created += recovered;
            return;
          }
          const std::size_t tenant = lease->tenant;
          const std::uint64_t fc = lease->from_child;
          const std::uint64_t fp = lease->from_parent;
          eng.at(occupy(node, uplat(node)), [&, tenant, fc, fp, recovered] {
            apply_refund(tenant, fc, fp, recovered, /*is_debt=*/false);
          });
        });
      };

  const auto add_lease = [&](std::size_t node, std::size_t tenant,
                             std::uint64_t from_child,
                             std::uint64_t from_parent) {
    NodeLedger& ledger = nodes[node];
    ledger.leases.push_back({tenant, from_child, from_parent,
                             eng.now() + cfg.lease_ttl, false});
    arm_expiry(node, &ledger.leases.back());
  };

  // Lease renewal: heartbeat, then nearest-donor walk, then the global
  // two-level acquire — every decision through the shared dist/policy.hpp
  // and svc/policy.hpp rules. Donations and the global grant travel as
  // messages; `done(gained)` fires once the last of them lands.
  struct RenewOp {
    std::uint64_t gained = 0;
    int pending = 0;
    bool issued = false;
    DoneN done;
  };
  const auto renew_finish = [](const std::shared_ptr<RenewOp>& op) {
    if (op->issued && op->pending == 0) op->done(op->gained);
  };
  const auto renew = [&](std::size_t node, std::uint64_t want, DoneN done) {
    NodeLedger& ledger = nodes[node];
    if (ledger.partitioned) {
      done(0);
      return;
    }
    for (SimLease& lease : ledger.leases) {
      if (!lease.settled) {
        lease.expiry = std::max(lease.expiry, eng.now() + cfg.lease_ttl);
      }
    }
    auto op = std::make_shared<RenewOp>();
    op->done = std::move(done);
    std::uint64_t need = dist::lease_grant(want, cfg.lease_chunk,
                                           cfg.lease_cap);

    for (std::size_t attempt = 0; need > 0; ++attempt) {
      const std::optional<std::size_t> target =
          dist::renewal_target(topo, node, attempt);
      if (!target.has_value()) break;
      const std::size_t donor = *target;
      NodeLedger& from = nodes[donor];
      if (from.partitioned) continue;
      std::uint64_t leased_active = 0;
      for (const SimLease& lease : from.leases) {
        if (!lease.settled) {
          leased_active += lease.from_child + lease.from_parent;
        }
      }
      const auto balance = static_cast<std::uint64_t>(
          std::max<std::int64_t>(local[donor], 0));
      const std::uint64_t give =
          std::min({need, dist::peer_surplus(balance, cfg.peer_reserve),
                    leased_active});
      if (give == 0) continue;
      local[donor] -= static_cast<std::int64_t>(give);
      // Carve the donor's newest active leases, child parts first; the
      // transferred lease keeps the donor's tenant so its refund settles
      // to the account that granted it.
      auto carved = std::make_shared<
          std::vector<std::pair<std::size_t, dist::CarvedParts>>>();
      std::uint64_t remaining = give;
      for (auto it = from.leases.rbegin();
           it != from.leases.rend() && remaining > 0; ++it) {
        if (it->settled) continue;
        const dist::CarvedParts parts =
            dist::lease_carve(remaining, it->from_child, it->from_parent);
        if (parts.tokens() == 0) continue;
        it->from_child -= parts.from_child;
        it->from_parent -= parts.from_parent;
        if (it->from_child + it->from_parent == 0) it->settled = true;
        carved->push_back({it->tenant, parts});
        remaining -= parts.tokens();
      }
      CNET_ENSURE(remaining == 0,
                  "donated tokens exceeded donor lease parts");
      ++res.donations;
      res.donated_tokens += give;
      need -= give;
      ++op->pending;
      const double rtt = 2.0 * link_of(topo.proximity(node, donor));
      eng.at(occupy(node, rtt), [&, node, give, carved, op] {
        for (const auto& [tenant, parts] : *carved) {
          add_lease(node, tenant, parts.from_child, parts.from_parent);
        }
        local[node] += static_cast<std::int64_t>(give);
        op->gained += give;
        --op->pending;
        touch();
        renew_finish(op);
      });
    }

    if (need > 0) {
      const std::uint64_t ask = need;
      ++op->pending;
      eng.at(occupy(node, uplat(node)), [&, node, ask, op] {
        if (nodes[node].partitioned) {
          // Partition cut the request mid-flight: the coordinator drops
          // it, so the partitioned node gets (and spends) nothing global.
          --op->pending;
          renew_finish(op);
          return;
        }
        const auto avail = static_cast<std::uint64_t>(
            std::max<std::int64_t>(account[node], 0));
        const std::uint64_t got_child = std::min(ask, avail);
        account[node] -= static_cast<std::int64_t>(got_child);
        const std::uint64_t shortfall = ask - got_child;
        const std::uint64_t reserved =
            svc::borrow_allowance(shortfall, borrowed[node], borrow_limit);
        borrowed[node] += reserved;
        const auto granted = [&, node, ask, op](std::uint64_t got_child2,
                                                std::uint64_t got_parent,
                                                std::uint64_t reserved2) {
          borrowed[node] -= reserved2 - got_parent;
          const svc::QuotaSettlement s = svc::quota_settle(
              ask, got_child2, got_parent, svc::kPartialOk);
          CNET_ENSURE(s.refund_child == 0 && s.refund_parent == 0,
                      "partial-ok settle refunded");
          const std::uint64_t total = got_child2 + got_parent;
          eng.at(eng.now() + uplat(node), [&, node, got_child2, got_parent,
                                           total, op] {
            if (total > 0) {
              add_lease(node, node, got_child2, got_parent);
              local[node] += static_cast<std::int64_t>(total);
              ++res.renewals;
              res.renewal_tokens += total;
            }
            op->gained += total;
            --op->pending;
            touch();
            renew_finish(op);
          });
        };
        if (reserved > 0) {
          parent.try_decrement_n(
              node, reserved,
              [&, node, got_child, reserved, granted](std::uint64_t got) {
                granted(got_child, got, reserved);
              });
        } else {
          granted(got_child, 0, 0);
        }
      });
    }
    op->issued = true;
    renew_finish(op);
  };

  // Healed partitions replay their escrow in debt_reconcile-bounded
  // batches, one uplink round trip per batch.
  std::function<void(std::size_t)> reconcile = [&](std::size_t node) {
    NodeLedger& ledger = nodes[node];
    if (ledger.debts.empty()) {
      CNET_ENSURE(ledger.escrow == 0, "debt escrow left after reconcile");
      return;
    }
    const std::uint64_t budget =
        dist::debt_reconcile(ledger.escrow, cfg.reconcile_chunk);
    auto batch = std::make_shared<std::vector<
        std::tuple<std::size_t, std::uint64_t, std::uint64_t,
                   std::uint64_t>>>();
    std::uint64_t settled = 0;
    while (!ledger.debts.empty() && (settled < budget || budget == 0)) {
      const dist::CarvedParts parts = ledger.debts.front();
      const auto [tenant, recovered] = ledger.debt_meta.front();
      ledger.debts.pop_front();
      ledger.debt_meta.pop_front();
      batch->push_back({tenant, parts.from_child, parts.from_parent,
                        recovered});
      settled += recovered;
      if (budget == 0) break;  // zero-recovery entries still settle
    }
    ledger.escrow -= settled;
    eng.at(occupy(node, uplat(node)), [&, node, batch] {
      for (const auto& [tenant, fc, fp, recovered] : *batch) {
        apply_refund(tenant, fc, fp, recovered, /*is_debt=*/true);
      }
      eng.at(eng.now() + uplat(node), [&, node] { reconcile(node); });
    });
  };

  for (const ClusterPartition& p : cfg.partitions) {
    eng.at(p.start, [&, p] { nodes[p.node].partitioned = true; });
    eng.at(p.end, [&, p] {
      nodes[p.node].partitioned = false;
      touch();
      reconcile(p.node);
    });
  }

  // The workload: every node core runs a closed admit(1) loop. Leased
  // mode spends locally and renews on a miss (one retry); central mode
  // round-trips the uplink for every single admission.
  struct CoreState {
    std::size_t ops_done = 0;
  };
  const std::size_t total_cores = n * cfg.cores_per_node;
  std::vector<CoreState> cores(total_cores);
  std::function<void(std::size_t)> step;
  const auto finish_op = [&](std::size_t c, bool ok, double issue) {
    if (ok) {
      ++res.admitted;
      ++res.spent;
      admit_latency.push_back(eng.now() - issue);
    } else {
      ++res.rejected;
    }
    ++cores[c].ops_done;
    touch();
    eng.at(eng.now() + cfg.think_time, [&, c] { step(c); });
  };

  std::function<void(std::size_t, std::size_t, double, bool)> attempt =
      [&](std::size_t c, std::size_t node, double issue, bool retried) {
        if (local[node] >= 1) {
          local[node] -= 1;
          eng.at(eng.now() + local_draw(),
                 [&, c, issue] { finish_op(c, true, issue); });
          return;
        }
        if (!retried) {
          renew(node, cfg.lease_chunk, [&, c, node, issue](std::uint64_t) {
            attempt(c, node, issue, true);
          });
          return;
        }
        finish_op(c, false, issue);
      };

  step = [&](std::size_t c) {
    if (cores[c].ops_done == cfg.ops_per_core) return;
    const std::size_t node = c / cfg.cores_per_node;
    const double issue = eng.now();
    ++res.attempts;
    if (cfg.leased) {
      attempt(c, node, issue, false);
      return;
    }
    if (nodes[node].partitioned) {
      // Central counting has no local pool to fall back on: a partitioned
      // node admits nothing (and, crucially, touches nothing global).
      finish_op(c, false, issue);
      return;
    }
    eng.at(occupy(node, uplat(node)), [&, c, node, issue] {
      if (nodes[node].partitioned) {
        ++res.partition_global_touches;
      }
      parent.try_decrement_n(c, 1, [&, c, node, issue](std::uint64_t got) {
        eng.at(eng.now() + uplat(node),
               [&, c, issue, got] { finish_op(c, got == 1, issue); });
      });
    });
  };

  for (std::size_t c = 0; c < total_cores; ++c) step(c);
  eng.run();

  res.makespan = makespan;
  res.final_parent_pool = parent.pool();
  res.parent_stalls = parent.stalls();
  bool conserved = !parent.pool_ever_negative();
  std::int64_t held = res.final_parent_pool;
  for (std::size_t i = 0; i < n; ++i) {
    res.final_account_tokens += account[i];
    res.final_local_tokens += local[i];
    held += account[i] + local[i];
    conserved = conserved && account[i] >= 0 && local[i] >= 0 &&
                borrowed[i] == 0 && nodes[i].escrow == 0 &&
                nodes[i].debts.empty();
    for (const SimLease& lease : nodes[i].leases) {
      conserved = conserved && lease.settled;
    }
  }
  res.conserved =
      conserved &&
      res.spent + static_cast<std::uint64_t>(held) == res.initial_tokens;
  res.debt_settled = res.debt_created == res.debt_reconciled;

  if (!admit_latency.empty()) {
    res.p50_admission = util::percentile(admit_latency, 50.0);
    res.p99_admission = util::percentile(admit_latency, 99.0);
  }

  for (const CoreState& core : cores) {
    CNET_ENSURE(core.ops_done == cfg.ops_per_core,
                "simulated core finished early");
  }
  return res;
}

}  // namespace cnet::sim
