// Token-level execution simulator with Dwork–Herlihy–Waarts stall
// accounting (paper §1.2, §6.1).
//
// Model: n asynchronous processes each shepherd one token at a time through
// the network; the token of process l enters on input wire l mod w. An
// adversary scheduler decides, at every step, which balancer performs its
// next atomic transition. Every transition of a token through a balancer
// incurs one stall on each other token currently waiting at that balancer.
// The amortized contention is total stalls divided by the number of tokens,
// for m large — exactly the measure the paper's Theorem 6.7 bounds.
//
// Exiting tokens are assigned counter values from the per-output-wire cells
// v_i (initially i, incremented by t), so a simulation doubles as an
// end-to-end Fetch&Increment correctness check: with m tokens the multiset
// of assigned values must be exactly {0, ..., m-1}.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cnet/seq/sequence.hpp"
#include "cnet/topology/topology.hpp"

namespace cnet::sim {

struct SimConfig {
  std::size_t concurrency = 1;       // n: number of processes
  std::size_t total_tokens = 0;      // m: tokens to push through (>= 1)
  bool collect_counter_values = true;
  bool collect_per_balancer = true;
  bool collect_token_records = false;  // per-token intervals (see below)
};

// Interval record of one token: it was injected after `enter_step` balancer
// transitions had happened globally, exited at `exit_step`, and was
// assigned `value`. Two tokens with exit_i < enter_j are non-overlapping
// (j started strictly after i finished) — the raw material for
// linearizability analyses (paper §1.4.2: counting networks order
// concurrent tokens correctly at quiescence but are NOT linearizable).
struct TokenRecord {
  std::uint32_t process = 0;
  std::uint64_t enter_step = 0;
  std::uint64_t exit_step = 0;
  seq::Value value = 0;
};

struct SimResult {
  std::uint64_t total_stalls = 0;
  std::size_t tokens = 0;
  double stalls_per_token = 0.0;
  std::size_t max_queue = 0;  // worst instantaneous waiters at one balancer
  std::vector<std::uint64_t> stalls_per_balancer;  // if collect_per_balancer
  std::vector<std::uint64_t> stalls_per_layer;     // if collect_per_balancer
  std::vector<seq::Value> counter_values;  // if collect_counter_values
  std::vector<TokenRecord> token_records;  // if collect_token_records
  seq::Sequence input_counts;              // tokens injected per input wire
  seq::Sequence output_counts;             // tokens that left each output
};

// Read-only view of engine state offered to schedulers.
class EngineView {
 public:
  virtual ~EngineView() = default;
  virtual std::size_t num_balancers() const = 0;
  virtual std::uint32_t queue_size(std::uint32_t balancer) const = 0;
  virtual std::uint32_t layer_of(std::uint32_t balancer) const = 0;
  // Balancers with at least one waiting token (unordered).
  virtual const std::vector<std::uint32_t>& nonempty() const = 0;
};

// Adversary/fair scheduling policy. The engine calls on_enqueue for every
// token arrival (including re-arrivals at a nonempty queue) and pick() when
// it needs the next balancer to fire; pick() must return a balancer with a
// nonempty queue.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual void attach(const EngineView& view) { view_ = &view; }
  virtual void on_enqueue(std::uint32_t balancer) { (void)balancer; }
  virtual std::uint32_t pick() = 0;

 protected:
  const EngineView* view_ = nullptr;
};

// Runs the simulation to quiescence (all m tokens exited).
SimResult simulate(const topo::Topology& net, const SimConfig& cfg,
                   Scheduler& scheduler);

}  // namespace cnet::sim
