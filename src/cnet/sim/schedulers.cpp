#include "cnet/sim/schedulers.hpp"

#include "cnet/util/ensure.hpp"

namespace cnet::sim {

std::uint32_t RandomScheduler::pick() {
  const auto& ready = view_->nonempty();
  CNET_ENSURE(!ready.empty(), "pick() with no waiting tokens");
  return ready[rng_.below(ready.size())];
}

std::uint32_t RoundRobinScheduler::pick() {
  const auto& ready = view_->nonempty();
  CNET_ENSURE(!ready.empty(), "pick() with no waiting tokens");
  cursor_ = (cursor_ + 1) % ready.size();
  return ready[cursor_];
}

void WavefrontConvoyScheduler::attach(const EngineView& view) {
  Scheduler::attach(view);
  bucket_.clear();
  present_.assign(view.num_balancers(), false);
  lowest_ = 0;
  std::size_t max_layer = 0;
  for (std::uint32_t b = 0; b < view.num_balancers(); ++b) {
    max_layer = std::max<std::size_t>(max_layer, view.layer_of(b));
  }
  bucket_.resize(max_layer + 1);
}

void WavefrontConvoyScheduler::on_enqueue(std::uint32_t balancer) {
  if (present_[balancer]) return;
  present_[balancer] = true;
  const std::size_t layer = view_->layer_of(balancer);
  bucket_[layer].push_back(balancer);
  lowest_ = std::min(lowest_, layer);
}

std::uint32_t WavefrontConvoyScheduler::pick() {
  for (std::size_t layer = lowest_; layer < bucket_.size(); ++layer) {
    auto& b = bucket_[layer];
    while (!b.empty()) {
      const std::uint32_t candidate = b.back();
      if (view_->queue_size(candidate) == 0) {
        // Lazily drop balancers that drained since being enqueued.
        present_[candidate] = false;
        b.pop_back();
        continue;
      }
      lowest_ = layer;
      if (view_->queue_size(candidate) == 1) {
        // Its last waiter is about to fire; unregister so the slot is
        // re-added on the next arrival.
        present_[candidate] = false;
        b.pop_back();
      }
      return candidate;
    }
  }
  CNET_ENSURE(false, "pick() with no waiting tokens");
  return 0;  // unreachable
}

std::uint32_t GreedyMaxQueueScheduler::pick() {
  const auto& ready = view_->nonempty();
  CNET_ENSURE(!ready.empty(), "pick() with no waiting tokens");
  std::uint32_t best = ready.front();
  std::uint32_t best_queue = view_->queue_size(best);
  for (const std::uint32_t b : ready) {
    const std::uint32_t q = view_->queue_size(b);
    if (q > best_queue) {
      best = b;
      best_queue = q;
    }
  }
  return best;
}

std::uint32_t ScriptScheduler::pick() {
  CNET_REQUIRE(next_ < script_.size(), "scheduler script exhausted");
  return script_[next_++];
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>(seed);
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kWavefrontConvoy:
      return std::make_unique<WavefrontConvoyScheduler>();
    case SchedulerKind::kGreedyMaxQueue:
      return std::make_unique<GreedyMaxQueueScheduler>();
  }
  CNET_ENSURE(false, "unknown scheduler kind");
  return nullptr;  // unreachable
}

const char* scheduler_name(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kRandom: return "random";
    case SchedulerKind::kRoundRobin: return "round-robin";
    case SchedulerKind::kWavefrontConvoy: return "wavefront-convoy";
    case SchedulerKind::kGreedyMaxQueue: return "greedy-max-queue";
  }
  return "?";
}

}  // namespace cnet::sim
