// Scheduling policies for the token simulator.
//
// The amortized-contention measure is adversarial (paper §1.2): the bound of
// Theorem 6.7 holds for *every* schedule. We provide:
//   * RandomScheduler      — a neutral baseline (uniform over waiting work);
//   * RoundRobinScheduler  — fair rotation, minimal convoys;
//   * WavefrontConvoyScheduler — adversarial heuristic: always fire the
//     shallowest nonempty layer, draining one balancer at a time. Tokens
//     accumulate at the next layer while the current one drains, producing
//     the generation convoys of the paper's layer-contention analysis
//     (§6.2): a layer of width W hit by a wave of n tokens suffers ≈ n²/2W
//     stalls, i.e. n/2W per token per layer — the exact shape of the
//     Theorem 6.7 terms.
#pragma once

#include <vector>

#include "cnet/sim/token_sim.hpp"
#include "cnet/util/prng.hpp"

namespace cnet::sim {

class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::uint32_t pick() override;

 private:
  util::Xoshiro256 rng_;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  std::uint32_t pick() override;

 private:
  std::size_t cursor_ = 0;
};

class WavefrontConvoyScheduler final : public Scheduler {
 public:
  void attach(const EngineView& view) override;
  void on_enqueue(std::uint32_t balancer) override;
  std::uint32_t pick() override;

 private:
  std::vector<std::vector<std::uint32_t>> bucket_;  // per layer, LIFO
  std::vector<bool> present_;                       // balancer in a bucket?
  std::size_t lowest_ = 0;                          // scan hint
};

// Greedy adversary: always fires the balancer with the most waiters —
// maximizes the *immediate* stall count (a natural but weaker adversary
// than the wavefront convoy, which invests in building future queues).
class GreedyMaxQueueScheduler final : public Scheduler {
 public:
  std::uint32_t pick() override;
};

// Deterministic replay: fires the given balancer indices in order. For
// constructing exact executions in unit tests (each entry must name a
// balancer that has a waiting token at that point).
class ScriptScheduler final : public Scheduler {
 public:
  explicit ScriptScheduler(std::vector<std::uint32_t> script)
      : script_(std::move(script)) {}
  std::uint32_t pick() override;
  std::size_t consumed() const noexcept { return next_; }

 private:
  std::vector<std::uint32_t> script_;
  std::size_t next_ = 0;
};

enum class SchedulerKind {
  kRandom,
  kRoundRobin,
  kWavefrontConvoy,
  kGreedyMaxQueue,
};

// Factory used by benches/tests.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::uint64_t seed);

const char* scheduler_name(SchedulerKind kind) noexcept;

}  // namespace cnet::sim
