#include "cnet/sim/model_check.hpp"

#include <algorithm>
#include <vector>

#include "cnet/seq/sequence.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::sim {

namespace {

struct Target {
  bool is_output = false;
  std::uint32_t index = 0;
};

struct Routing {
  std::vector<std::uint32_t> fanout;
  std::vector<std::uint32_t> route_base;
  std::vector<Target> route;
  std::vector<Target> entry;
};

Routing compile(const topo::Topology& net) {
  Routing r;
  const std::size_t nb = net.num_balancers();
  r.fanout.resize(nb);
  r.route_base.resize(nb);
  std::size_t ports = 0;
  for (std::uint32_t b = 0; b < nb; ++b) {
    const auto& bal = net.balancer(topo::BalancerId{b});
    r.fanout[b] = static_cast<std::uint32_t>(bal.fan_out());
    r.route_base[b] = static_cast<std::uint32_t>(ports);
    ports += bal.fan_out();
  }
  r.route.resize(ports);
  auto target_of = [&](topo::WireId wire) {
    const auto& end = net.consumer(wire);
    if (end.kind == topo::WireEnd::Kind::kNetworkOutput) {
      return Target{true, end.port};
    }
    return Target{false, end.balancer.value};
  };
  for (std::uint32_t b = 0; b < nb; ++b) {
    const auto& bal = net.balancer(topo::BalancerId{b});
    for (std::size_t port = 0; port < bal.fan_out(); ++port) {
      r.route[r.route_base[b] + port] = target_of(bal.outputs[port]);
    }
  }
  for (const topo::WireId in : net.input_wires()) {
    r.entry.push_back(target_of(in));
  }
  return r;
}

struct TokenRec {
  std::uint32_t process = 0;
  std::uint64_t enter = 0;
  std::uint64_t exit = 0;
  seq::Value value = 0;
  bool done = false;
};

struct State {
  std::vector<std::vector<std::uint32_t>> queues;  // FIFO of token ids
  std::vector<std::uint32_t> bstate;
  std::vector<seq::Value> cells;
  std::vector<TokenRec> recs;
  std::size_t injected = 0;
  std::size_t exited = 0;
  std::uint64_t steps = 0;
  std::uint64_t stalls = 0;
};

class Explorer {
 public:
  Explorer(const topo::Topology& net, const ModelCheckConfig& cfg)
      : net_(net), cfg_(cfg), routing_(compile(net)) {}

  ModelCheckResult run() {
    CNET_REQUIRE(cfg_.concurrency >= 1, "need at least one process");
    CNET_REQUIRE(cfg_.total_tokens >= 1, "need at least one token");
    State s;
    s.queues.resize(net_.num_balancers());
    s.bstate.assign(net_.num_balancers(), 0);
    s.cells.resize(net_.width_out());
    for (std::size_t i = 0; i < s.cells.size(); ++i) {
      s.cells[i] = static_cast<seq::Value>(i);
    }
    s.recs.resize(cfg_.total_tokens);
    const std::size_t first_wave =
        std::min(cfg_.concurrency, cfg_.total_tokens);
    for (std::uint32_t p = 0; p < first_wave; ++p) inject(s, p);
    result_.min_total_stalls = ~0ULL;
    dfs(s);
    if (result_.executions == 0) result_.min_total_stalls = 0;
    return result_;
  }

 private:
  void inject(State& s, std::uint32_t process) {
    if (s.injected == cfg_.total_tokens) return;
    const auto token = static_cast<std::uint32_t>(s.injected++);
    s.recs[token] = TokenRec{process, s.steps, 0, 0, false};
    deliver(s, token, routing_.entry[process % net_.width_in()]);
  }

  void deliver(State& s, std::uint32_t token, const Target& target) {
    if (target.is_output) {
      exit_token(s, token, target.index);
    } else {
      s.queues[target.index].push_back(token);
    }
  }

  void exit_token(State& s, std::uint32_t token, std::uint32_t out) {
    s.recs[token].exit = s.steps;
    s.recs[token].value = s.cells[out];
    s.recs[token].done = true;
    s.cells[out] += static_cast<seq::Value>(net_.width_out());
    ++s.exited;
    inject(s, s.recs[token].process);  // eager reinjection
  }

  void fire(State& s, std::uint32_t b) {
    s.stalls += s.queues[b].size() - 1;
    ++s.steps;
    const std::uint32_t token = s.queues[b].front();
    s.queues[b].erase(s.queues[b].begin());
    const std::uint32_t port = s.bstate[b];
    s.bstate[b] = (s.bstate[b] + 1) % routing_.fanout[b];
    deliver(s, token, routing_.route[routing_.route_base[b] + port]);
  }

  void finalize(const State& s) {
    ++result_.executions;
    CNET_REQUIRE(result_.executions <= cfg_.max_executions,
                 "execution-space cap exceeded — instance too large");
    // Exactness: values must be exactly 0..m-1.
    std::vector<seq::Value> values;
    values.reserve(s.recs.size());
    for (const auto& rec : s.recs) values.push_back(rec.value);
    std::sort(values.begin(), values.end());
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] != static_cast<seq::Value>(i)) {
        result_.all_exact = false;
        break;
      }
    }
    result_.max_total_stalls =
        std::max(result_.max_total_stalls, s.stalls);
    result_.min_total_stalls =
        std::min(result_.min_total_stalls, s.stalls);
    if (!result_.inversion_possible) {
      for (const auto& i : s.recs) {
        for (const auto& j : s.recs) {
          if (i.exit < j.enter && i.value > j.value) {
            result_.inversion_possible = true;
          }
        }
      }
    }
  }

  void dfs(const State& s) {
    if (s.exited == cfg_.total_tokens) {
      finalize(s);
      return;
    }
    for (std::uint32_t b = 0; b < s.queues.size(); ++b) {
      if (s.queues[b].empty()) continue;
      State next = s;  // small states; copy is simpler than undo
      fire(next, b);
      dfs(next);
    }
  }

  const topo::Topology& net_;
  const ModelCheckConfig cfg_;
  const Routing routing_;
  ModelCheckResult result_;
};

}  // namespace

ModelCheckResult explore_all_executions(const topo::Topology& net,
                                        const ModelCheckConfig& cfg) {
  Explorer explorer(net, cfg);
  return explorer.run();
}

}  // namespace cnet::sim
