#include "cnet/sim/timed_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "cnet/util/ensure.hpp"
#include "cnet/util/prng.hpp"

namespace cnet::sim {

namespace {

struct Target {
  bool is_output = false;
  std::uint32_t index = 0;
};

struct TokenState {
  double inject_time = 0.0;
  double queue_wait = 0.0;
};

// Event kinds: a token arriving at a balancer (or exiting), and a balancer
// finishing a service.
struct Event {
  double time = 0.0;
  std::uint64_t order = 0;  // tie-break for determinism
  enum class Kind : std::uint8_t { kArrival, kCompletion } kind;
  std::uint32_t token = 0;
  std::uint32_t place = 0;  // balancer for both kinds
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return order > other.order;
  }
};

}  // namespace

TimedResult simulate_timed(const topo::Topology& net,
                           const TimedConfig& cfg) {
  CNET_REQUIRE(cfg.concurrency >= 1, "need at least one process");
  CNET_REQUIRE(cfg.total_tokens >= 1, "need at least one token");
  CNET_REQUIRE(cfg.service_time > 0.0, "service time must be positive");
  CNET_REQUIRE(cfg.wire_delay >= 0.0 && cfg.think_time >= 0.0,
               "delays must be nonnegative");

  util::Xoshiro256 rng(cfg.seed);
  auto service = [&]() {
    if (!cfg.exponential_service) return cfg.service_time;
    return -cfg.service_time * std::log1p(-rng.uniform01());
  };

  // Compile routing (same encoding as the token simulator).
  const std::size_t nb = net.num_balancers();
  std::vector<std::uint32_t> fanout(nb), state(nb, 0), route_base(nb);
  std::vector<Target> route;
  std::vector<Target> entry;
  {
    std::size_t total_ports = 0;
    for (std::uint32_t b = 0; b < nb; ++b) {
      const auto& bal = net.balancer(topo::BalancerId{b});
      fanout[b] = static_cast<std::uint32_t>(bal.fan_out());
      route_base[b] = static_cast<std::uint32_t>(total_ports);
      total_ports += bal.fan_out();
    }
    route.resize(total_ports);
    auto target_of = [&](topo::WireId wire) {
      const auto& end = net.consumer(wire);
      if (end.kind == topo::WireEnd::Kind::kNetworkOutput) {
        return Target{true, end.port};
      }
      return Target{false, end.balancer.value};
    };
    for (std::uint32_t b = 0; b < nb; ++b) {
      const auto& bal = net.balancer(topo::BalancerId{b});
      for (std::size_t port = 0; port < bal.fan_out(); ++port) {
        route[route_base[b] + port] = target_of(bal.outputs[port]);
      }
    }
    entry.reserve(net.width_in());
    for (const topo::WireId in : net.input_wires()) {
      entry.push_back(target_of(in));
    }
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t order = 0;
  std::vector<std::deque<std::uint32_t>> queue(nb);
  std::vector<bool> busy(nb, false);
  std::vector<double> queue_entry_time(cfg.total_tokens, 0.0);
  std::vector<TokenState> tokens(cfg.total_tokens);

  TimedResult res;
  std::size_t injected = 0;
  std::size_t exited = 0;
  double latency_sum = 0.0, wait_sum = 0.0;

  auto push = [&](Event e) {
    e.order = order++;
    events.push(e);
  };

  // Targets are packed into Event::place: balancer index, or ~output_index
  // for a direct exit.
  auto pack = [](const Target& t) {
    return t.is_output ? ~t.index : t.index;
  };

  std::function<void(std::uint32_t, const Target&, double)> arrive_fn =
      [&](std::uint32_t token, const Target& target, double now) {
        if (target.is_output) {
          const double latency = now - tokens[token].inject_time;
          latency_sum += latency;
          wait_sum += tokens[token].queue_wait;
          res.max_latency = std::max(res.max_latency, latency);
          res.makespan = std::max(res.makespan, now);
          ++exited;
          // Closed loop: the owning process injects its next token.
          if (injected < cfg.total_tokens) {
            const auto next = static_cast<std::uint32_t>(injected++);
            const auto proc = next % cfg.concurrency;
            tokens[next].inject_time = now + cfg.think_time;
            const Target& e = entry[proc % net.width_in()];
            push(Event{now + cfg.think_time, 0, Event::Kind::kArrival, next,
                       pack(e)});
          }
          return;
        }
        const std::uint32_t b = target.index;
        if (busy[b]) {
          queue[b].push_back(token);
          queue_entry_time[token] = now;
        } else {
          busy[b] = true;
          push(Event{now + service(), 0, Event::Kind::kCompletion, token, b});
        }
      };

  // Seed the first wave.
  const std::size_t first_wave =
      std::min(cfg.concurrency, cfg.total_tokens);
  for (std::uint32_t p = 0; p < first_wave; ++p) {
    const auto token = static_cast<std::uint32_t>(injected++);
    tokens[token].inject_time = 0.0;
    push(Event{0.0, 0, Event::Kind::kArrival, token,
               pack(entry[p % net.width_in()])});
  }

  while (exited < cfg.total_tokens) {
    CNET_ENSURE(!events.empty(), "event queue drained early");
    const Event ev = events.top();
    events.pop();
    if (ev.kind == Event::Kind::kArrival) {
      // `place` may encode a direct-to-output wire as ~output_index.
      if (static_cast<std::int32_t>(ev.place) < 0) {
        arrive_fn(ev.token, Target{true, ~ev.place}, ev.time);
      } else {
        arrive_fn(ev.token, Target{false, ev.place}, ev.time);
      }
    } else {
      const std::uint32_t b = ev.place;
      // The served token advances through the balancer.
      const std::uint32_t port = state[b];
      state[b] = (state[b] + 1) % fanout[b];
      const Target& next = route[route_base[b] + port];
      if (next.is_output) {
        arrive_fn(ev.token, next, ev.time + cfg.wire_delay);
      } else {
        push(Event{ev.time + cfg.wire_delay, 0, Event::Kind::kArrival,
                   ev.token, next.index});
      }
      // Start the next waiting token, if any.
      if (queue[b].empty()) {
        busy[b] = false;
      } else {
        const std::uint32_t waiting = queue[b].front();
        queue[b].pop_front();
        tokens[waiting].queue_wait += ev.time - queue_entry_time[waiting];
        push(Event{ev.time + service(), 0, Event::Kind::kCompletion,
                   waiting, b});
      }
    }
  }

  res.throughput = static_cast<double>(cfg.total_tokens) /
                   std::max(res.makespan, 1e-12);
  res.mean_latency =
      latency_sum / static_cast<double>(cfg.total_tokens);
  res.mean_queue_wait =
      wait_sum / static_cast<double>(cfg.total_tokens);
  return res;
}

}  // namespace cnet::sim
