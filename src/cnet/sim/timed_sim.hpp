// Discrete-event timed simulation of a balancing network as a closed
// queueing system — the model behind the experimental study the paper
// cites ([19,20]: simulation + a real 10-workstation system).
//
// Every balancer is a FIFO server that takes `service_time` to process one
// token (optionally exponentially distributed); wires add `wire_delay`;
// each of the n processes re-injects its next token `think_time` after the
// previous one exits. Throughput in a closed network is n divided by the
// mean cycle time, so shorter queues translate directly into higher
// sustained throughput: widening the N_c block of C(w,t) adds servers
// exactly where tokens spend most of their time, which is the mechanism
// behind the paper's §1.3.2 intuition and the crossover measured in the
// cited experiments.
#pragma once

#include <cstdint>

#include "cnet/topology/topology.hpp"

namespace cnet::sim {

struct TimedConfig {
  std::size_t concurrency = 1;   // n processes (closed loop)
  std::size_t total_tokens = 0;  // m tokens overall (>= 1)
  double service_time = 1.0;     // per balancer transition
  double wire_delay = 0.0;       // producer -> consumer travel time
  double think_time = 0.0;       // process pause between operations
  bool exponential_service = false;  // exp(service_time) instead of fixed
  std::uint64_t seed = 1998;
};

struct TimedResult {
  double makespan = 0.0;     // time when the last token exits
  double throughput = 0.0;   // total_tokens / makespan
  double mean_latency = 0.0; // mean token time from injection to exit
  double max_latency = 0.0;
  double mean_queue_wait = 0.0;  // mean total queueing time per token
};

TimedResult simulate_timed(const topo::Topology& net,
                           const TimedConfig& cfg);

}  // namespace cnet::sim
