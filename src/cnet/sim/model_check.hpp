// Exhaustive execution-space exploration for small networks.
//
// The paper's contention measure is a supremum over all executions induced
// by an adversary scheduler (§1.2). For figure-sized networks and a handful
// of tokens we can enumerate *every* execution by depth-first search over
// scheduler choices, which yields:
//   * a proof (for the instance) that the Fetch&Increment values are
//     exactly 0..m-1 in every maximal execution — Theorem 4.2 strengthened
//     from quiescent states to all interleavings;
//   * the exact worst-case stall count, i.e. cont(B, n, m) itself, against
//     which the wavefront-convoy heuristic can be calibrated;
//   * whether any execution contains a linearizability inversion.
//
// Cost is exponential in tokens x depth; intended for w <= 4-ish, m <= 4.
#pragma once

#include <cstdint>

#include "cnet/topology/topology.hpp"

namespace cnet::sim {

struct ModelCheckConfig {
  std::size_t concurrency = 2;
  std::size_t total_tokens = 2;
  // Hard cap on explored executions (throws if exceeded) so a mistaken
  // call on a large instance fails fast instead of hanging.
  std::uint64_t max_executions = 50'000'000;
};

struct ModelCheckResult {
  std::uint64_t executions = 0;        // maximal executions explored
  bool all_exact = true;               // every execution ended with 0..m-1
  std::uint64_t max_total_stalls = 0;  // exact cont(B, n, m)
  std::uint64_t min_total_stalls = 0;  // best-case schedule
  bool inversion_possible = false;     // non-linearizable witness exists
};

ModelCheckResult explore_all_executions(const topo::Topology& net,
                                        const ModelCheckConfig& cfg);

}  // namespace cnet::sim
