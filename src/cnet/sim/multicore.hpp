// Virtual-time multicore simulator for the service layer (the answer to
// "Table B needs real cores"): P simulated cores drive model counterparts
// of the svc-layer state machines through a discrete-event executor, so the
// paper's central-vs-network scaling claims — and PR 3's adaptive switch
// and elimination hit-rates — become deterministic, CI-checkable numbers on
// a 1-vCPU box. Same methodology as the simulation side of the study the
// paper cites ([19,20]) and as sim::simulate_timed, extended from bare
// token traversals up to the composed service stack.
//
// Model inventory (each is the virtual-time mirror of a real component,
// sharing its decision logic through svc/policy.hpp rather than
// reimplementing it):
//   - central atomic word  -> one FIFO server whose service time grows with
//     the number of requests already queued (cache-line ownership
//     migration: every extra sharer lengthens the RMW);
//   - counting network     -> simulate_timed's per-balancer FIFO servers
//     over the real topo::Topology, tokens and antitokens traversing wires
//     with delay; the batched backend carries up to batch_k tokens per
//     traversal;
//   - EliminationLayer     -> exchange slots in virtual time: a depositing
//     op waits elim_wait before withdrawing, an opposite-role arrival
//     pairs with it (value from svc::elimination_pair_value) and neither
//     touches the backend;
//   - NetTokenBucket       -> the pool count driven through
//     svc::bucket_consume, bounded at zero at every event;
//   - AdaptiveCounter      -> cold central / hot batched-network pair whose
//     switch fires off svc::should_switch over windows of simulated stall
//     events, migrating the pool exactly at the switch instant.
//
// The workload mirrors bench_tab_svc Table B: each core runs a closed loop
// of consume(1) ops, topping the pool up with a bulk refill every
// refill_every consumes. Everything is deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "cnet/svc/backend.hpp"
#include "cnet/svc/policy.hpp"

namespace cnet::sim {

struct MulticoreConfig {
  std::size_t cores = 8;            // P simulated cores
  std::size_t ops_per_core = 4096;  // consume(1) ops each core performs
  std::size_t refill_every = 256;   // bulk refill cadence (tokens per refill)
  std::uint64_t initial_tokens_per_core = 256;
  double think_time = 0.2;  // virtual pause between a core's ops

  // Central-word model parameters, per backend kind. service is the
  // uncontended RMW time; slope is the extra fraction per request already
  // queued on the line (atomic: coherence migration only; CAS: failed
  // retries resubmit; mutex: heavier base cost).
  double central_service = 1.0;
  double central_slope = 0.08;
  double cas_slope = 0.18;
  double mutex_service = 1.6;
  double mutex_slope = 0.10;

  // Network model: per-balancer service time and wire delay, applied to the
  // real C(width_in, width_out) topology from `net`.
  double balancer_service = 1.0;
  double wire_delay = 0.2;
  std::size_t batch_k = 64;  // tokens per batched-network traversal

  // Elimination model (mirrors EliminationLayer::Config in virtual time;
  // the per-role deposit windows mirror ElimCounter's inc_spins=512 /
  // dec_spins=64 asymmetry).
  std::size_t elim_slots = 8;
  double exchange_time = 0.5;   // paired completion cost
  double elim_inc_wait = 4.0;   // increment deposit window before withdrawal
  double elim_dec_wait = 0.5;   // decrement deposit window

  // Adaptive model: decided by svc::should_switch, same rule as the real
  // AdaptiveCounter. Defaults are smaller than the live-thread defaults so
  // modest simulated runs can still cross a window.
  svc::AdaptiveTuning tuning{/*sample_interval=*/512,
                             /*min_window_ops=*/512,
                             /*stall_rate_threshold=*/0.05};

  // Shape of the counting network behind the network-backed kinds.
  svc::BackendConfig net;

  bool exponential_service = false;  // exp-distributed service draws
  std::uint64_t seed = 1998;
};

struct MulticoreResult {
  double makespan = 0.0;       // virtual time when the last core finishes
  double ops_per_vtime = 0.0;  // consume ops per unit virtual time
  std::uint64_t consume_ops = 0;
  std::uint64_t consumed = 0;  // tokens actually granted
  std::uint64_t rejected = 0;  // consume ops that found the pool empty
  std::uint64_t refilled = 0;  // tokens pushed by refill ops
  std::uint64_t initial_tokens = 0;
  std::uint64_t stall_events = 0;  // queueing events across all servers
  std::int64_t final_pool = 0;
  // consumed + final_pool == refilled + initial_tokens, and no model pool
  // ever went negative — checked at every claim, reported here.
  bool conserved = false;

  // Elimination model outcome (zero unless the spec has the front-end).
  std::uint64_t elim_pairs = 0;
  std::uint64_t elim_withdrawals = 0;
  // Sum of the synthesized pair values (negative), from the shared
  // svc::elimination_pair_value rule — pins model/real value agreement.
  std::int64_t elim_value_sum = 0;

  // Adaptive model outcome (meaningful only for kAdaptive specs).
  bool switched = false;
  double switch_time = -1.0;       // virtual time of the organic switch
  std::uint64_t ops_at_switch = 0; // ops completed when the window crossed
};

// One-shot simulation of `spec` under `cfg`. Deterministic: the same spec,
// config, and seed produce bit-identical results on any host.
MulticoreResult simulate_multicore(const svc::BackendSpec& spec,
                                   const MulticoreConfig& cfg);

// ------------------------------------------------------------------ quota

// The svc::QuotaHierarchy workload in virtual time (Table D's model
// counterpart): `cores` simulated cores, each pinned to a tenant, run an
// acquire → hold → release loop against per-tenant child pool models and
// one shared parent pool model built from `parent_spec`. Hot/cold skew
// pins `hot_core_share` of the cores to the first `hot_tenants` tenants.
// The borrow decisions are the same pure rules the real hierarchy runs
// (svc::borrow_allowance / quota_settle from svc/policy.hpp), driven in
// continuation-passing form, and releases return each grant part to the
// level it came from through the models' probe-invisible refund path.
struct QuotaSimConfig {
  // Engine/model knobs (service times, slopes, network shape, adaptive
  // tuning, exponential draws, seed). base.cores / ops_per_core /
  // refill_every / initial_tokens_per_core are ignored here.
  MulticoreConfig base;

  std::size_t cores = 16;
  std::size_t tenants = 4;
  std::size_t hot_tenants = 1;   // tenants [0, hot_tenants) are hot
  double hot_core_share = 0.75;  // fraction of cores pinned to hot tenants
  std::size_t ops_per_core = 512;  // acquire attempts per core

  std::uint64_t acquire_cost = 1;
  std::uint64_t child_initial = 2;    // per-tenant child pool
  std::uint64_t parent_initial = 32;  // shared parent pool
  // Sum of weighted limits never exceeds this; keep it <= parent_initial -
  // acquire_cost so a won reservation always finds its parent tokens (the
  // isolation configuration svc/quota.hpp documents).
  std::uint64_t borrow_budget = 30;
  std::uint64_t hot_weight = 8;
  std::uint64_t cold_weight = 1;

  double hold_time = 4.0;   // virtual time a grant is held before release
  double think_time = 0.2;  // pause after a release or reject
};

struct QuotaSimResult {
  double makespan = 0.0;
  double ops_per_vtime = 0.0;  // acquire attempts per unit virtual time
  // Admitted grants per unit virtual time — the contention-ordering
  // metric. (Attempt rate rewards fast rejection; a reject storm must not
  // read as throughput.)
  double goodput_per_vtime = 0.0;
  std::uint64_t acquire_ops = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cold_rejected = 0;  // rejects on cold tenants
  std::uint64_t hot_rejected = 0;
  std::uint64_t granted_child_tokens = 0;   // grant parts by origin level
  std::uint64_t granted_parent_tokens = 0;
  std::uint64_t parent_stalls = 0;
  std::uint64_t child_stalls = 0;

  // Exact quiescent ledger: every child pool back at child_initial, the
  // parent back at parent_initial, no outstanding borrow, no pool ever
  // negative — each grant part returned to the level it came from.
  bool conserved = false;
  // borrowed(t) <= limit(t) at every instant AND no cold-tenant reject:
  // the weighted cap kept hot tenants from starving the cold ones.
  bool isolation = false;

  std::vector<std::uint64_t> attempts_per_tenant;
  std::vector<std::uint64_t> admitted_per_tenant;
  std::vector<std::uint64_t> limit_per_tenant;
  std::vector<std::uint64_t> peak_borrowed_per_tenant;
};

// Deterministic from (parent_spec, cfg, cfg.base.seed), like
// simulate_multicore.
QuotaSimResult simulate_quota(const svc::BackendSpec& parent_spec,
                              const QuotaSimConfig& cfg);

// The Table D′ reference workload at `cores` (8 tenants, 1 hot taking 75%
// of the cores, fixed seed) — shared by bench_tab_quota and the sim tests
// so the CI-gated crossover/determinism checks and the golden-seed tests
// can never drift onto different configs (the same pattern as
// multicore_sweep_specs).
QuotaSimConfig quota_sim_reference_config(std::size_t cores);

// --------------------------------------------------------------- overload

// The svc::OverloadManager control loop in virtual time (Table E′'s model
// counterpart): the quota workload above, but cores enter staggered — core
// c starts at c * core_start_stagger — so offered load ramps up past
// saturation and back down as cores finish. A periodic sampler event plays
// the manager: it reads the same three signals the real monitors read
// (parent-pool stall rate over a window, reject ratio over a window, peak
// borrow occupancy), runs them through the *same* pure rules
// (svc::window_pressure / occupancy_pressure / combine_pressure /
// overload_tier / overload_actions / shed_set from svc/policy.hpp), and
// actuates the resulting tier inside the model:
//   - kShrinkBatch      -> release/shed refunds go back in chunks of
//                          max(1, tokens / batch_divisor) instead of one
//                          bulk traversal;
//   - kForceEliminate   -> an adaptive parent takes its cold→hot swap at
//                          the next sample instant (exact pool migration);
//   - kDegradePartial   -> settles run with allow_partial: a grant may
//                          admit with fewer tokens than asked, parts
//                          recorded exactly for release;
//   - kShedTenants      -> svc::shed_set picks the lowest-weight tenants;
//                          their outstanding grants are force-refunded to
//                          the level each part came from, and their later
//                          attempts reject without touching any pool.
// Everything is deterministic given the seed; the tier-transition instants
// are part of the result so tests can pin them golden.
struct OverloadSimConfig {
  // Engine/model knobs (service times, slopes, network shape, adaptive
  // tuning, exponential draws, seed); base.cores / ops_per_core /
  // refill_every / initial_tokens_per_core are ignored here.
  MulticoreConfig base;

  std::size_t cores = 48;
  std::size_t tenants = 8;
  std::size_t hot_tenants = 1;
  double hot_core_share = 0.75;
  std::size_t ops_per_core = 192;   // acquire attempts per core
  double core_start_stagger = 24.0; // core c enters at c * stagger

  // Unlike QuotaSimConfig, the borrow budget deliberately *oversubscribes*
  // the parent (sum of limits > parent_initial): overload is exactly the
  // regime where admission promises exceed the shared pool, which is what
  // lets the parent run dry and the degrade-partial tier produce genuinely
  // short grants. The odd initial counts against the even acquire_cost
  // leave a 1-token residue when a pool drains, so bounded claims really
  // do come up short instead of alternating full/empty forever.
  std::uint64_t acquire_cost = 2;
  std::uint64_t child_initial = 3;
  std::uint64_t parent_initial = 47;
  std::uint64_t borrow_budget = 64;
  std::uint64_t hot_weight = 8;
  std::uint64_t cold_weight = 1;

  double hold_time = 6.0;
  double think_time = 0.2;

  // Manager loop: sample cadence in virtual time, the stall-rate reading
  // that maps to pressure 1.0, and how many post-drain samples the sampler
  // may take while decaying back to nominal before it stops.
  double sample_every = 32.0;
  double stall_saturation = 2.0;
  std::size_t drain_samples = 16;

  svc::OverloadThresholds thresholds;
  double shed_fraction = 0.25;
};

// One tier change, with the evaluation instant and the combined pressure
// that drove it — the golden-pinnable trace of the control loop.
struct OverloadSimTransition {
  double time = 0.0;
  svc::OverloadTier from = svc::OverloadTier::kNominal;
  svc::OverloadTier to = svc::OverloadTier::kNominal;
  double pressure = 0.0;
};

struct OverloadSimResult {
  double makespan = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;        // organic rejects (pool/cap), not shed
  std::uint64_t degraded_admits = 0; // admitted with fewer tokens than asked
  std::uint64_t shed_rejects = 0;    // attempts turned away while shed
  std::uint64_t shed_events = 0;     // times the manager entered shedding
  std::uint64_t restore_events = 0;  // times it left shedding
  std::uint64_t shed_refunded_tokens = 0;  // grant parts force-refunded
  svc::OverloadTier peak_tier = svc::OverloadTier::kNominal;
  svc::OverloadTier final_tier = svc::OverloadTier::kNominal;
  bool forced_switch = false;   // adaptive parent swapped via force path
  double forced_switch_time = -1.0;
  std::vector<OverloadSimTransition> transitions;
  std::vector<std::uint64_t> shed_rejects_per_tenant;

  // Quiescent ledger: parent and every child pool back at their initial
  // counts, zero outstanding borrow, no pool ever negative — every grant
  // part was returned exactly once, by release or by the shed refund.
  bool conserved = false;
  // Every downward transition happened at pressure <= enter[from] -
  // hysteresis, every upward one at pressure >= enter[to]: the shared tier
  // rule's hysteresis held over the whole trace.
  bool hysteresis_respected = false;
  // Tier recovered to nominal and every shed tenant was restored.
  bool recovered = false;
};

// Deterministic from (parent_spec, cfg, cfg.base.seed), like
// simulate_quota.
OverloadSimResult simulate_overload(const svc::BackendSpec& parent_spec,
                                    const OverloadSimConfig& cfg);

// The Table E′ reference workload (48 staggered cores, 8 tenants, 1 hot,
// fixed seed) — shared by bench_tab_overload and the sim tests so the
// CI-gated checks and the golden-seed tier-transition tests can never
// drift onto different configs.
OverloadSimConfig overload_sim_reference_config();

// --------------------------------------------------------------- reconfig

// The svc::ReconfigEngine staged-commit protocol in virtual time (Table
// F's model counterpart): the simulate_multicore workload runs against a
// pool built from `spec_from`, and at `respec_at` a full replacement stack
// — `spec_to`, with the batch chunk re-divided through the same
// svc::divided_chunk rule the live respec bakes in — is *staged*: new ops
// route to it immediately (the RCU publish), while ops already in flight
// on the old stack drain. The *commit* fires at the exact instant the last
// in-flight old op completes (the event-driven mirror of the engine's
// reader-quiescence wait): the old pool's remaining count migrates into
// the new stack in one instantaneous exact transfer and the config version
// bumps. Everything is deterministic given the seed, and the commit
// instant is part of the result so tests can pin it golden.
struct ReconfigSimConfig {
  // Engine/model knobs plus the workload shape (cores, ops_per_core,
  // refill_every, initial_tokens_per_core are all used, exactly as in
  // simulate_multicore).
  MulticoreConfig base;

  // The staged replacement: target spec, the virtual instant the stage
  // publishes, and the divisor folded into the staged batch chunk
  // (staged chunk = svc::divided_chunk(base.batch_k, rechunk_divisor),
  // validated by svc::respec_safe — the same rules the live
  // NetTokenBucket::respec applies).
  svc::BackendSpec spec_to{svc::BackendKind::kCentralAtomic, false};
  double respec_at = 300.0;
  std::size_t rechunk_divisor = 4;
};

struct ReconfigSimResult {
  double makespan = 0.0;
  std::uint64_t consume_ops = 0;
  std::uint64_t consumed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t refilled = 0;
  std::uint64_t initial_tokens = 0;

  // The staged-commit trace. staged: the publish instant (== respec_at
  // clamped to event order); commit: when the last in-flight old-stack op
  // drained and the migration ran — strictly the quiescence point.
  double respec_staged_time = -1.0;
  double respec_commit_time = -1.0;
  std::uint64_t migrated_tokens = 0;   // old pool's exact remainder
  std::size_t staged_chunk = 0;        // divided_chunk actually committed
  std::uint64_t config_version = 1;    // 2 once the commit fired

  std::uint64_t old_stalls = 0;  // queueing on the retired stack
  std::uint64_t new_stalls = 0;  // queueing on the staged stack
  std::int64_t final_pool = 0;   // old remainder (0 post-commit) + new pool
  // consumed + final_pool == refilled + initial_tokens, no model pool ever
  // negative, and the retired pool is empty once the commit has fired —
  // tokens were in one pool or the other at every event, never both.
  bool conserved = false;
};

// Deterministic from (spec_from, cfg, cfg.base.seed), like
// simulate_multicore.
ReconfigSimResult simulate_reconfig(const svc::BackendSpec& spec_from,
                                    const ReconfigSimConfig& cfg);

// The Table F reference workload (8 cores, mid-run respec, fixed seed) —
// shared by bench_tab_reconfig and the sim tests so the CI-gated
// conservation/determinism checks and the golden commit-instant tests can
// never drift onto different configs.
ReconfigSimConfig reconfig_sim_reference_config();

// The Table F pairing rule, shared for the same reason: central kinds
// re-spec up to the batched network (the escalation direction), every
// other kind re-specs down to the central word (the de-escalation
// direction). Both directions cross the batching boundary, which is what
// exercises the chunk re-division.
svc::BackendSpec reconfig_respec_target(const svc::BackendSpec& spec_from);

// The Table B' sweep axis, shared by bench_tab_svc_sim and the sim tests
// so they can never drift apart: every pool-capable kind plain, plus the
// elimination front-end on the two bookend backends (central word and
// batched network).
std::vector<svc::BackendSpec> multicore_sweep_specs();

// ---------------------------------------------------------------- cluster

// The dist::PeerCluster tier in virtual time (Table G′'s model
// counterpart): N nodes — each a simulated multicore machine with a local
// admission pool — joined to a global quota coordinator (per-node lease
// accounts over a shared parent pool built from `parent_spec`) by per-link
// FIFO latency servers whose service time depends on dc/rack proximity.
// Every decision runs the exact rules the live tier runs: lease_grant /
// lease_expiry_refund / debt_reconcile / renewal_target / peer_surplus /
// lease_carve from dist/policy.hpp over the real dist::Topology walk, and
// borrow_allowance / quota_settle from svc/policy.hpp for the coordinator's
// two-level grants.
//
// Workload: each node core runs a closed admit(1) loop against its node's
// local pool. In leased mode an empty pool triggers a lease renewal —
// donation from the nearest peer with surplus (one rack/dc round trip),
// else a global acquire (one uplink round trip) — and admissions otherwise
// complete at local service time. With leased=false the tier degenerates
// to naive central counting: every admission round-trips the uplink to the
// parent pool. The p50/p99 admission-latency gap between the two modes is
// the tier's locality claim. Failure is lease expiry; partitions (scripted
// [start, end) windows) block a node's control plane — it spends only its
// held leases, expiries escrow into debt, and heal replays the debt
// exactly in debt_reconcile-bounded batches. Deterministic given the seed.
struct ClusterNode {
  std::uint32_t dc = 0;
  std::uint32_t rack = 0;
};

struct ClusterPartition {
  std::size_t node = 0;
  double start = 0.0;
  double end = 0.0;  // heal instant (must be > start)
};

struct ClusterSimConfig {
  // Engine/model knobs (service times, slopes, network shape, exponential
  // draws, seed); base.cores / ops_per_core / refill_every /
  // initial_tokens_per_core are ignored here.
  MulticoreConfig base;

  std::vector<ClusterNode> nodes;  // the static dc/rack topology
  std::size_t cores_per_node = 4;
  std::uint64_t ops_per_core = 256;  // admit(1) attempts per core
  double think_time = 0.5;

  // The global hierarchy (node = tenant, cluster budget = parent).
  std::uint64_t parent_initial = 2048;
  std::uint64_t account_initial = 128;  // per-node lease account
  std::uint64_t borrow_budget = 1024;
  std::uint64_t local_initial = 0;  // per-node local pool at t=0

  // Lease machinery — the dist/policy.hpp knobs.
  std::uint64_t lease_chunk = 128;
  std::uint64_t lease_cap = 512;
  double lease_ttl = 600.0;  // virtual time until an unrenewed lease expires
  std::uint64_t peer_reserve = 32;
  std::uint64_t reconcile_chunk = 256;

  // true: lease-renewal tier. false: naive central counting — every admit
  // round-trips to the parent pool (the baseline the locality claim beats).
  bool leased = true;

  // One-way link latencies by proximity, and the local admit service time.
  double link_same_rack = 1.0;
  double link_same_dc = 4.0;
  double link_remote = 16.0;
  double local_service = 0.2;

  std::vector<ClusterPartition> partitions;
};

struct ClusterSimResult {
  double makespan = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t spent = 0;  // tokens consumed by admissions

  std::uint64_t renewals = 0;        // global-acquire renewals that landed
  std::uint64_t renewal_tokens = 0;  // tokens they granted
  std::uint64_t donations = 0;       // peer-to-peer lease transfers
  std::uint64_t donated_tokens = 0;
  std::uint64_t expiries = 0;
  std::uint64_t expiry_recovered = 0;  // unspent tokens recovered at expiry
  std::uint64_t expiry_refunded = 0;   // tokens refunded into the hierarchy
  std::uint64_t debt_created = 0;      // escrowed during partitions
  std::uint64_t debt_reconciled = 0;   // settled at heal
  // Coordinator/peer touches made on behalf of a partitioned node — the
  // partition contract says this is always zero.
  std::uint64_t partition_global_touches = 0;

  std::uint64_t initial_tokens = 0;
  std::int64_t final_parent_pool = 0;
  std::int64_t final_account_tokens = 0;  // Σ per-node lease accounts
  std::int64_t final_local_tokens = 0;    // Σ per-node local pools
  // spent + parent + accounts + locals == initials, no pool ever negative,
  // no outstanding borrow, no unreconciled escrow.
  bool conserved = false;
  // Every partition-escrowed token was reconciled exactly once.
  bool debt_settled = false;

  double p50_admission = 0.0;  // admission latency percentiles (admitted
  double p99_admission = 0.0;  // ops only), issue to completion
  std::uint64_t parent_stalls = 0;
};

// Deterministic from (parent_spec, cfg, cfg.base.seed), like the other
// simulators.
ClusterSimResult simulate_cluster(const svc::BackendSpec& parent_spec,
                                  const ClusterSimConfig& cfg);

// The Table G′ reference topology at `nodes` nodes — striped across 2 dcs
// of 2 racks each, fixed seed — shared by bench_tab_dist and the sim tests
// so the CI-gated conservation/partition/locality checks and the golden
// tests can never drift onto different configs.
ClusterSimConfig cluster_sim_reference_config(std::size_t nodes);

}  // namespace cnet::sim
