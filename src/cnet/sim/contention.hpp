// Amortized-contention measurement harness (paper §6).
//
// cont(B, n) is the limit supremum of stalls/m as m → ∞; we approximate it
// by running m = generations·n tokens (several full "waves" of concurrency)
// and discarding nothing — with eager re-injection the measure converges
// quickly because stalls are produced at a steady per-generation rate.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cnet/sim/schedulers.hpp"
#include "cnet/sim/token_sim.hpp"
#include "cnet/topology/topology.hpp"

namespace cnet::sim {

struct ContentionConfig {
  std::size_t concurrency = 1;  // n
  std::size_t generations = 32;  // m = max(generations * n, min_tokens)
  std::size_t min_tokens = 1024;
  SchedulerKind scheduler = SchedulerKind::kWavefrontConvoy;
  std::uint64_t seed = 1998;
};

struct ContentionReport {
  double stalls_per_token = 0.0;
  std::uint64_t total_stalls = 0;
  std::size_t tokens = 0;
  std::size_t max_queue = 0;
  // Stalls per token charged to each layer (index 0 = layer 1).
  std::vector<double> per_layer;
};

ContentionReport measure_contention(const topo::Topology& net,
                                    const ContentionConfig& cfg);

// Aggregates a per-layer breakdown into labelled groups; `layer_group[d]`
// names the group of layer d+1 (e.g. the N_a/N_b/N_c blocks of C(w,t)).
struct GroupStalls {
  std::string group;
  double stalls_per_token = 0.0;
};
std::vector<GroupStalls> group_stalls(std::span<const double> per_layer,
                                      std::span<const std::string> layer_group);

}  // namespace cnet::sim
