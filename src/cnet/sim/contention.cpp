#include "cnet/sim/contention.hpp"

#include <algorithm>

#include "cnet/util/ensure.hpp"

namespace cnet::sim {

ContentionReport measure_contention(const topo::Topology& net,
                                    const ContentionConfig& cfg) {
  CNET_REQUIRE(cfg.concurrency >= 1, "need at least one process");
  SimConfig sim_cfg;
  sim_cfg.concurrency = cfg.concurrency;
  sim_cfg.total_tokens =
      std::max(cfg.generations * cfg.concurrency, cfg.min_tokens);
  sim_cfg.collect_counter_values = false;
  sim_cfg.collect_per_balancer = true;

  auto sched = make_scheduler(cfg.scheduler, cfg.seed);
  const SimResult res = simulate(net, sim_cfg, *sched);

  ContentionReport report;
  report.total_stalls = res.total_stalls;
  report.tokens = res.tokens;
  report.stalls_per_token = res.stalls_per_token;
  report.max_queue = res.max_queue;
  report.per_layer.reserve(res.stalls_per_layer.size());
  for (const std::uint64_t s : res.stalls_per_layer) {
    report.per_layer.push_back(static_cast<double>(s) /
                               static_cast<double>(res.tokens));
  }
  return report;
}

std::vector<GroupStalls> group_stalls(
    std::span<const double> per_layer,
    std::span<const std::string> layer_group) {
  CNET_REQUIRE(per_layer.size() == layer_group.size(),
               "layer group labels must cover every layer");
  std::vector<GroupStalls> out;
  for (std::size_t d = 0; d < per_layer.size(); ++d) {
    auto it = std::find_if(out.begin(), out.end(), [&](const GroupStalls& g) {
      return g.group == layer_group[d];
    });
    if (it == out.end()) {
      out.push_back({layer_group[d], per_layer[d]});
    } else {
      it->stalls_per_token += per_layer[d];
    }
  }
  return out;
}

}  // namespace cnet::sim
