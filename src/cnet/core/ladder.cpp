#include "cnet/core/ladder.hpp"

#include "cnet/util/ensure.hpp"

namespace cnet::core {

std::vector<topo::WireId> wire_ladder(topo::Builder& builder,
                                      std::span<const topo::WireId> in) {
  const std::size_t w = in.size();
  CNET_REQUIRE(w >= 2 && w % 2 == 0, "ladder width must be even and >= 2");
  std::vector<topo::WireId> out(w);
  const std::size_t half = w / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const auto [top, bottom] = builder.add_balancer2(in[i], in[i + half]);
    out[i] = top;
    out[i + half] = bottom;
  }
  return out;
}

topo::Topology make_ladder(std::size_t w) {
  topo::Builder b;
  const auto in = b.add_network_inputs(w);
  const auto out = wire_ladder(b, in);
  b.set_outputs(out);
  return std::move(b).build();
}

}  // namespace cnet::core
