// Ablation of the paper's key design choice (§1.3.2, §3.3).
//
// The construction of C(w,t) merges the two recursive halves with the
// difference merging network M(t, w/2) of depth lg(w/2). The paper argues
// that substituting the classical bitonic merger (depth lg t) would make
// the total depth Θ(lg w · lg t) — a function of the *output* width — and
// that this is precisely what the ladder + difference-merger combination
// avoids. This module builds that hypothetical network so the claim can be
// measured: same counting behaviour, strictly worse depth whenever t > w.
#pragma once

#include <cstddef>

#include "cnet/topology/topology.hpp"

namespace cnet::core {

// C(w,t) with every M(t', w'/2) replaced by a bitonic merger of width t'.
// Valid parameters: the same as make_counting PLUS t/w a power of two
// (the bitonic merger requires power-of-two widths).
topo::Topology make_counting_bitonic_merge(std::size_t w, std::size_t t);

// Closed-form depth of the ablated network:
//   D(2) = 1;  D(w) = 1 + D(w/2) + lg t.
std::size_t counting_bitonic_merge_depth(std::size_t w,
                                         std::size_t t) noexcept;

}  // namespace cnet::core
