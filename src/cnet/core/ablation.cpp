#include "cnet/core/ablation.hpp"

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/core/ladder.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::core {

using topo::WireId;

namespace {

std::vector<WireId> wire_ablated(topo::Builder& builder,
                                 std::span<const WireId> in, std::size_t t) {
  const std::size_t w = in.size();
  if (w == 2) {
    return builder.add_balancer(in, t);
  }
  // Identical skeleton to wire_counting (ladder + two recursive halves),
  // but the final merge is the width-t bitonic merger. The merger accepts
  // *any* two step inputs, so the ladder's δ <= w/2 guarantee is unused —
  // and its depth lg t is paid on every recursion level.
  const auto ladder_out = wire_ladder(builder, in);
  const std::span<const WireId> lo(ladder_out);
  const auto g = wire_ablated(builder, lo.subspan(0, w / 2), t / 2);
  const auto h = wire_ablated(builder, lo.subspan(w / 2), t / 2);
  return baselines::wire_bitonic_merger(builder, g, h);
}

}  // namespace

topo::Topology make_counting_bitonic_merge(std::size_t w, std::size_t t) {
  CNET_REQUIRE(is_valid_counting_params(w, t),
               "invalid (w, t): need w = 2^k, t = p*w");
  CNET_REQUIRE(util::is_pow2(t),
               "bitonic-merge ablation needs a power-of-two t");
  topo::Builder b;
  const auto in = b.add_network_inputs(w);
  b.set_outputs(wire_ablated(b, in, t));
  return std::move(b).build();
}

std::size_t counting_bitonic_merge_depth(std::size_t w,
                                         std::size_t t) noexcept {
  if (w == 2) return 1;
  return 1 + counting_bitonic_merge_depth(w / 2, t / 2) + util::ilog2(t);
}

}  // namespace cnet::core
