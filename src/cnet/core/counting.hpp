// The paper's primary contribution: the irregular counting network C(w, t)
// (paper §4), with input width w = 2^k and output width t = p·w (k, p >= 1),
// built from (2,2)-balancers and (2,2p)-balancers.
//
//   * depth(C(w,t)) = (lg²w + lgw)/2, a function of w only (Theorem 4.1);
//   * every quiescent output sequence is step (Theorem 4.2);
//   * amortized contention O(n·lgw/w + n·lg²w/t + w·lg³w/t + lg²w)
//     (Theorem 6.7) — choosing t = w·lgw beats the bitonic network of equal
//     width and depth by a lg w factor at high concurrency.
//
// The construction (Fig. 10): a ladder L(w) feeds two recursive copies
// C(w/2, t/2), whose outputs a difference merging network M(t, w/2)
// combines; the recursion bottoms out at the single (2, 2p)-balancer C(2,2p).
//
// The unfolded network splits into three blocks (paper §1.3.2, Fig. 3):
//   N_a: layers 1..lgw-1 (width w, (2,2)-balancers),
//   N_b: layer lgw (the (2,2p) transition layer, width w -> t),
//   N_c: layers lgw+1..depth (width t, all the mergers).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cnet/topology/topology.hpp"

namespace cnet::core {

// True iff (w, t) is a valid parameter pair: w = 2^k, t = p·w, k,p >= 1.
bool is_valid_counting_params(std::size_t w, std::size_t t) noexcept;

// Closed-form depth (lg²w + lgw)/2 from Theorem 4.1.
std::size_t counting_depth(std::size_t w) noexcept;

// Wires C(w, t) onto `in` (size w) inside an ongoing build; returns the t
// output wires.
std::vector<topo::WireId> wire_counting(topo::Builder& builder,
                                        std::span<const topo::WireId> in,
                                        std::size_t t);

// Standalone C(w, t).
topo::Topology make_counting(std::size_t w, std::size_t t);

// Which block of the unfolded construction a balancer belongs to.
enum class Block : unsigned char { kNa, kNb, kNc };

struct BlockCensus {
  std::size_t balancers_na = 0;
  std::size_t balancers_nb = 0;
  std::size_t balancers_nc = 0;
  std::size_t layers_na = 0;   // lgw - 1
  std::size_t layers_nb = 0;   // 1
  std::size_t layers_nc = 0;   // (lg²w - lgw)/2
};

// Classifies a balancer of C(w, t) by depth: N_a for depth < lgw, N_b for
// depth == lgw, N_c beyond. `net` must be a network built by make_counting.
Block classify_block(const topo::Topology& net, topo::BalancerId id,
                     std::size_t w);

// Census of the three blocks of C(w, t).
BlockCensus block_census(const topo::Topology& net, std::size_t w);

}  // namespace cnet::core
