// Butterfly networks (paper §5).
//
// The forward-butterfly D(w) recursively places two D(w/2) networks before
// a ladder L(w); the backward-butterfly E(w) places the ladder first. Both
// are regular width-w networks of depth lg w; D(w) is lgw-smoothing
// (Lemma 5.2) and E(w) is isomorphic to D(w) (Lemma 5.3). The first lg w
// layers of C(w,t) — blocks N_a,N_b — are a backward butterfly whose last
// layer is widened to (2,2p)-balancers; this is what drives the contention
// analysis (§6.4, Lemma 6.6).
#pragma once

#include <span>
#include <vector>

#include "cnet/topology/topology.hpp"

namespace cnet::core {

// Wires D(w) / E(w) onto `in` (w a power of two, possibly 1) and returns the
// w output wires.
std::vector<topo::WireId> wire_forward_butterfly(
    topo::Builder& builder, std::span<const topo::WireId> in);
std::vector<topo::WireId> wire_backward_butterfly(
    topo::Builder& builder, std::span<const topo::WireId> in);

// Standalone networks.
topo::Topology make_forward_butterfly(std::size_t w);
topo::Topology make_backward_butterfly(std::size_t w);

// The network C'(w, t) of §6.4: the first lg w layers of C(w, t), i.e. a
// backward butterfly whose final layer consists of (2, 2t/w)-balancers.
// For t == w this is exactly E(w). Lemma 6.6: it is (⌊w·lgw/t⌋+2)-smoothing.
topo::Topology make_counting_prefix(std::size_t w, std::size_t t);

// The smoothness bound s = ⌊w·lgw/t⌋ + 2 of Lemma 6.6.
std::size_t prefix_smoothness_bound(std::size_t w, std::size_t t) noexcept;

}  // namespace cnet::core
