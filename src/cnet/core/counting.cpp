#include "cnet/core/counting.hpp"

#include "cnet/core/ladder.hpp"
#include "cnet/core/merging.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::core {

using topo::WireId;

bool is_valid_counting_params(std::size_t w, std::size_t t) noexcept {
  return w >= 2 && util::is_pow2(w) && t >= w && t % w == 0;
}

std::size_t counting_depth(std::size_t w) noexcept {
  const std::size_t k = util::ilog2(w);
  return (k * k + k) / 2;
}

std::vector<WireId> wire_counting(topo::Builder& builder,
                                  std::span<const WireId> in,
                                  std::size_t t) {
  const std::size_t w = in.size();
  CNET_REQUIRE(is_valid_counting_params(w, t),
               "invalid (w, t) for C(w, t): need w = 2^k, t = p*w");
  // Recursion basis C(2, t): a single (2, t)-balancer (a (2,2p)-balancer).
  if (w == 2) {
    return builder.add_balancer(in, t);
  }
  // Sub-step 1: ladder, then the two recursive halves on the ladder's
  // top/bottom output halves (Fig. 10).
  const auto ladder_out = wire_ladder(builder, in);
  const std::span<const WireId> lo(ladder_out);
  const auto g = wire_counting(builder, lo.subspan(0, w / 2), t / 2);
  const auto h = wire_counting(builder, lo.subspan(w / 2), t / 2);
  // Sub-step 2: merge with M(t, w/2); the ladder guarantees
  // 0 <= sum(g) - sum(h) <= w/2 in every quiescent state (Theorem 4.2).
  return wire_merging(builder, g, h, w / 2);
}

topo::Topology make_counting(std::size_t w, std::size_t t) {
  CNET_REQUIRE(is_valid_counting_params(w, t),
               "invalid (w, t) for C(w, t): need w = 2^k, t = p*w");
  topo::Builder b;
  const auto in = b.add_network_inputs(w);
  const auto out = wire_counting(b, in, t);
  b.set_outputs(out);
  return std::move(b).build();
}

Block classify_block(const topo::Topology& net, topo::BalancerId id,
                     std::size_t w) {
  CNET_REQUIRE(util::is_pow2(w) && w >= 2, "w must be a power of two >= 2");
  const std::size_t lgw = util::ilog2(w);
  const std::size_t d = net.balancer_depth(id);
  if (d < lgw) return Block::kNa;
  if (d == lgw) return Block::kNb;
  return Block::kNc;
}

BlockCensus block_census(const topo::Topology& net, std::size_t w) {
  CNET_REQUIRE(util::is_pow2(w) && w >= 2, "w must be a power of two >= 2");
  const std::size_t lgw = util::ilog2(w);
  BlockCensus census;
  census.layers_na = lgw - 1;
  census.layers_nb = 1;
  census.layers_nc = net.depth() > lgw ? net.depth() - lgw : 0;
  for (std::uint32_t b = 0; b < net.num_balancers(); ++b) {
    switch (classify_block(net, topo::BalancerId{b}, w)) {
      case Block::kNa: ++census.balancers_na; break;
      case Block::kNb: ++census.balancers_nb; break;
      case Block::kNc: ++census.balancers_nc; break;
    }
  }
  return census;
}

}  // namespace cnet::core
