// Difference merging network M(t, δ) (paper §3).
//
// A regular width-t network with merging parameter δ: if its two input
// halves x(t/2), y(t/2) are step sequences whose sums satisfy
// 0 <= Σx − Σy <= δ, the output is a step sequence (Lemma 3.3). Its depth is
// lg δ (Lemma 3.1) — crucially independent of t, unlike the bitonic merger
// of depth lg t, which is what keeps depth(C(w,t)) a function of w alone.
//
// Valid parameters (paper §3): t = p·2^i, δ = 2^j with p >= 1 and
// 1 <= j < i — i.e. δ is a power of two >= 2 and 2δ divides t.
#pragma once

#include <span>
#include <vector>

#include "cnet/topology/topology.hpp"

namespace cnet::core {

// True iff (t, δ) is a valid parameter pair for M(t, δ).
bool is_valid_merging_params(std::size_t t, std::size_t delta) noexcept;

// Wires M(t, δ) onto first input sequence `x` and second input sequence `y`
// (each of size t/2) inside an ongoing build; returns the t output wires.
std::vector<topo::WireId> wire_merging(topo::Builder& builder,
                                       std::span<const topo::WireId> x,
                                       std::span<const topo::WireId> y,
                                       std::size_t delta);

// Standalone M(t, δ): input wires 0..t/2-1 form x, t/2..t-1 form y.
topo::Topology make_merging(std::size_t t, std::size_t delta);

}  // namespace cnet::core
