#include "cnet/core/butterfly.hpp"

#include "cnet/core/ladder.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::core {

using topo::WireId;

namespace {

void require_pow2_width(std::size_t w) {
  CNET_REQUIRE(w >= 1 && util::is_pow2(w),
               "butterfly width must be a power of two");
}

// Backward-butterfly recursion with a parameterized base fanout: base
// balancers are (2, base_fanout). base_fanout == 2 gives E(w); 2p gives the
// C(w,t) prefix C'(w,t) of §6.4 (Fig. 16 left).
std::vector<WireId> wire_backward_generic(topo::Builder& builder,
                                          std::span<const WireId> in,
                                          std::size_t base_fanout) {
  const std::size_t w = in.size();
  if (w == 1) return {in[0]};
  if (w == 2) {
    return builder.add_balancer(in, base_fanout);
  }
  const auto ladder_out = wire_ladder(builder, in);
  const std::span<const WireId> lo(ladder_out);
  auto top = wire_backward_generic(builder, lo.subspan(0, w / 2),
                                   base_fanout);
  const auto bottom = wire_backward_generic(builder, lo.subspan(w / 2),
                                            base_fanout);
  top.insert(top.end(), bottom.begin(), bottom.end());
  return top;
}

}  // namespace

std::vector<WireId> wire_forward_butterfly(topo::Builder& builder,
                                           std::span<const WireId> in) {
  const std::size_t w = in.size();
  require_pow2_width(w);
  if (w == 1) return {in[0]};
  auto top = wire_forward_butterfly(builder, in.subspan(0, w / 2));
  const auto bottom = wire_forward_butterfly(builder, in.subspan(w / 2));
  top.insert(top.end(), bottom.begin(), bottom.end());
  return wire_ladder(builder, top);
}

std::vector<WireId> wire_backward_butterfly(topo::Builder& builder,
                                            std::span<const WireId> in) {
  require_pow2_width(in.size());
  return wire_backward_generic(builder, in, 2);
}

topo::Topology make_forward_butterfly(std::size_t w) {
  require_pow2_width(w);
  topo::Builder b;
  const auto in = b.add_network_inputs(w);
  b.set_outputs(wire_forward_butterfly(b, in));
  return std::move(b).build();
}

topo::Topology make_backward_butterfly(std::size_t w) {
  require_pow2_width(w);
  topo::Builder b;
  const auto in = b.add_network_inputs(w);
  b.set_outputs(wire_backward_butterfly(b, in));
  return std::move(b).build();
}

topo::Topology make_counting_prefix(std::size_t w, std::size_t t) {
  CNET_REQUIRE(w >= 2 && util::is_pow2(w), "w must be a power of two >= 2");
  CNET_REQUIRE(t >= w && t % w == 0, "t must be a positive multiple of w");
  const std::size_t base_fanout = 2 * (t / w);  // the (2, 2p)-balancers
  topo::Builder b;
  const auto in = b.add_network_inputs(w);
  b.set_outputs(wire_backward_generic(b, in, base_fanout));
  return std::move(b).build();
}

std::size_t prefix_smoothness_bound(std::size_t w, std::size_t t) noexcept {
  return (w * util::ilog2(w)) / t + 2;
}

}  // namespace cnet::core
