// Ladder network L(w) (paper §4.1).
//
// A single layer of w/2 (2,2)-balancers where balancer b_i connects input
// wires i and i + w/2 to output wires i and i + w/2. Placed before the two
// recursive halves of C(w,t), it bounds the difference of the token counts
// entering the halves by w/2 — the property the difference merging network
// M(t, w/2) then exploits.
#pragma once

#include <span>
#include <vector>

#include "cnet/topology/topology.hpp"

namespace cnet::core {

// Wires a ladder onto `in` (size w, even, >= 2) inside an ongoing build;
// returns the w output wires in ladder order (balancer b_i's top output at
// position i, bottom output at position i + w/2).
std::vector<topo::WireId> wire_ladder(topo::Builder& builder,
                                      std::span<const topo::WireId> in);

// Standalone L(w) network.
topo::Topology make_ladder(std::size_t w);

}  // namespace cnet::core
