#include "cnet/core/merging.hpp"

#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::core {

namespace {

using topo::WireId;

// Even/odd wire subsequences.
std::vector<WireId> evens(std::span<const WireId> v) {
  std::vector<WireId> out;
  out.reserve((v.size() + 1) / 2);
  for (std::size_t i = 0; i < v.size(); i += 2) out.push_back(v[i]);
  return out;
}

std::vector<WireId> odds(std::span<const WireId> v) {
  std::vector<WireId> out;
  out.reserve(v.size() / 2);
  for (std::size_t i = 1; i < v.size(); i += 2) out.push_back(v[i]);
  return out;
}

// Recursion basis M(t, 2) (paper §3.1, Fig. 5 top): a single layer of t/2
// (2,2)-balancers with a wrap-around balancer b_0.
std::vector<WireId> wire_merging_base(topo::Builder& builder,
                                      std::span<const WireId> x,
                                      std::span<const WireId> y) {
  const std::size_t half = x.size();  // t/2
  const std::size_t t = 2 * half;
  std::vector<WireId> z(t);
  // b_0: inputs (x_0, y_{t/2-1}) -> outputs (z_0, z_{t-1}).
  {
    const auto [first, second] = builder.add_balancer2(x[0], y[half - 1]);
    z[0] = first;
    z[t - 1] = second;
  }
  // b_i (1 <= i < t/2): inputs (y_{i-1}, x_i) -> outputs (z_{2i-1}, z_{2i}).
  for (std::size_t i = 1; i < half; ++i) {
    const auto [first, second] = builder.add_balancer2(y[i - 1], x[i]);
    z[2 * i - 1] = first;
    z[2 * i] = second;
  }
  return z;
}

}  // namespace

bool is_valid_merging_params(std::size_t t, std::size_t delta) noexcept {
  return delta >= 2 && util::is_pow2(delta) && t % (2 * delta) == 0 && t > 0;
}

std::vector<WireId> wire_merging(topo::Builder& builder,
                                 std::span<const WireId> x,
                                 std::span<const WireId> y,
                                 std::size_t delta) {
  CNET_REQUIRE(x.size() == y.size(), "merging halves must have equal width");
  const std::size_t t = x.size() + y.size();
  CNET_REQUIRE(is_valid_merging_params(t, delta),
               "invalid (t, delta) for M(t, delta)");
  if (delta == 2) {
    return wire_merging_base(builder, x, y);
  }
  // Sub-step 1: M0(t/2, δ/2) on the even subsequences, M1(t/2, δ/2) on the
  // odd subsequences (paper §3.1, Fig. 5 bottom).
  const auto g = wire_merging(builder, evens(x), evens(y), delta / 2);
  const auto h = wire_merging(builder, odds(x), odds(y), delta / 2);
  // Sub-step 2: combine with the single layer M(t, 2).
  return wire_merging_base(builder, g, h);
}

topo::Topology make_merging(std::size_t t, std::size_t delta) {
  CNET_REQUIRE(is_valid_merging_params(t, delta),
               "invalid (t, delta) for M(t, delta)");
  topo::Builder b;
  const auto in = b.add_network_inputs(t);
  const std::span<const WireId> all(in);
  const auto out = wire_merging(b, all.subspan(0, t / 2),
                                all.subspan(t / 2), delta);
  b.set_outputs(out);
  return std::move(b).build();
}

}  // namespace cnet::core
