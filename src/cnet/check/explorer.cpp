#include "cnet/check/explorer.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "cnet/util/ensure.hpp"
#include "cnet/util/sched_point.hpp"

// Implementation notes.
//
// Control model: all controlled threads are real std::threads, serialized
// by direct baton handoff. Exactly one thread runs at a time; when it
// reaches a sched point it announces its pending operation, *decides* (as
// the scheduler) which thread performs the next global step, wakes that
// thread if it is not itself, and parks. The woken thread executes its
// announced operation and runs undisturbed to its own next point. There is
// no central controller thread in the loop — continuing the current thread
// costs no context switch at all, which is what keeps executions cheap.
//
// The real std::mutex inside util::Mutex is never locked on controlled
// threads (kernel blocking would wedge the handoff); ownership lives in
// this scheduler's map and lock-waiters are simply not enabled.
//
// Teardown discipline: a failure (driver invariant throw) flips the run
// into free mode — no more tree extension, remaining threads are scheduled
// round-robin until everything finishes, so locks release and the body
// completes. Only a true deadlock (no enabled thread) needs unwinding
// parked threads, and every parked-disabled thread is by construction
// inside a throwing-safe frame (mutex lock / join / yield — atomic points
// are always enabled), so aborting them with an exception is safe.
namespace cnet::check {

namespace {

using util::SchedOp;
using util::SchedOpKind;

constexpr std::uint32_t kNoThread = 0xffffffffu;
constexpr const char* kScheduleTag = "cnet-sched-v1;";

// Internal unwinder for threads that can never be scheduled again
// (deadlock teardown). Deliberately not derived from std::exception so
// driver-level `catch (const std::exception&)` invariant handling cannot
// swallow it.
struct ExecutionAborted {};

// Conservative commutativity: dependent unless provably order-free. The
// sleep-set machinery stays sound as long as this over-approximates.
bool ops_dependent(const SchedOp& a, const SchedOp& b) {
  auto lifecycle = [](SchedOpKind k) {
    return k == SchedOpKind::kThreadStart || k == SchedOpKind::kJoin;
  };
  if (lifecycle(a.kind) || lifecycle(b.kind)) return true;  // rare; be safe
  if (a.kind == SchedOpKind::kYield || b.kind == SchedOpKind::kYield) {
    return false;  // a yield step touches no shared state
  }
  if (a.addr != b.addr) return false;
  // Same operand: two plain loads commute, everything else conflicts
  // (all mutex operations on one mutex order against each other).
  return !(a.kind == SchedOpKind::kAtomicLoad &&
           b.kind == SchedOpKind::kAtomicLoad);
}

struct Node {
  std::uint32_t chosen = 0;
  std::uint32_t running = 0;     // thread that was current at this decision
  bool running_enabled = false;  // preemption-cost basis for alternatives
  std::size_t preempts_before = 0;
  std::vector<std::pair<std::uint32_t, SchedOp>> enabled;
  std::vector<std::pair<std::uint32_t, SchedOp>> sleep_init;
  std::vector<std::pair<std::uint32_t, SchedOp>> explored;
};

struct Tree {
  std::vector<Node> stack;
};

// Picks the next branch to explore: deepest node first, alternatives in
// thread-id order, skipping sleeping/explored threads and alternatives
// whose preemption cost would exceed the bound. Returns false when the
// bounded, pruned schedule space is exhausted.
bool advance_tree(Tree& tree, const Options& opts) {
  while (!tree.stack.empty()) {
    Node& n = tree.stack.back();
    const SchedOp* chosen_op = nullptr;
    for (const auto& [id, op] : n.enabled) {
      if (id == n.chosen) chosen_op = &op;
    }
    CNET_ENSURE(chosen_op != nullptr, "explored branch missing from node");
    n.explored.push_back({n.chosen, *chosen_op});
    auto blocked = [&n](std::uint32_t id) {
      for (const auto& e : n.sleep_init) {
        if (e.first == id) return true;
      }
      for (const auto& e : n.explored) {
        if (e.first == id) return true;
      }
      return false;
    };
    for (const auto& [id, op] : n.enabled) {
      if (blocked(id)) continue;
      const std::size_t cost =
          (id != n.running && n.running_enabled) ? 1 : 0;
      if (n.preempts_before + cost > opts.preemption_bound) continue;
      n.chosen = id;
      return true;
    }
    tree.stack.pop_back();
  }
  return false;
}

enum class Mode { kExplore, kReplay, kFree };

// One maximal execution: scheduler, hook implementation, and test context
// in one object. Fresh per execution — protocol state is rebuilt by the
// driver body, scheduler state here.
class Run final : public util::SchedHooks, public TestContext {
 public:
  Run(const Options& opts, Mode mode, Tree* tree,
      std::vector<ScheduleSwitch> replay)
      : opts_(opts), mode_(mode), tree_(tree), replay_(std::move(replay)) {}

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  void execute(const Body& body) {
    {
      std::unique_lock<std::mutex> l(mu_);
      ThreadRec* r0 = add_thread_locked([this, &body] { body(*this); });
      r0->go = true;
      r0->cv.notify_one();
      main_cv_.wait(l, [this] { return all_done_; });
    }
    for (auto& rec : threads_) {
      if (rec->sys.joinable()) rec->sys.join();
    }
  }

  bool failed() const { return failed_; }
  const std::string& failure_message() const { return fail_msg_; }
  const std::string& failure_schedule() const { return fail_schedule_; }
  std::uint64_t failure_step() const { return fail_step_; }
  std::uint64_t steps() const { return step_; }
  bool pruned() const { return pruned_; }

  // ------------------------------------------------------------ TestContext
  void spawn(std::function<void()> fn) override {
    std::unique_lock<std::mutex> l(mu_);
    add_thread_locked(std::move(fn));
  }

  void join_all() override {
    ThreadRec* rec = self();
    CNET_ENSURE(rec != nullptr, "join_all outside a controlled thread");
    std::unique_lock<std::mutex> l(mu_);
    if (rec->aborting) return;
    arrive_and_wait(l, rec, SchedOp{SchedOpKind::kJoin, nullptr});
  }

  // ------------------------------------------------------------- SchedHooks
  void sched_point(const SchedOp& op) override {
    ThreadRec* rec = self();
    std::unique_lock<std::mutex> l(mu_);
    if (rec->aborting) return;
    arrive_and_wait(l, rec, op);
  }

  void mutex_acquire(const void* mu) override {
    ThreadRec* rec = self();
    std::unique_lock<std::mutex> l(mu_);
    if (!rec->aborting) {
      arrive_and_wait(l, rec, SchedOp{SchedOpKind::kMutexLock, mu});
    }
    mutex_owner_[mu] = rec->id;
  }

  bool mutex_try_acquire(const void* mu) override {
    ThreadRec* rec = self();
    std::unique_lock<std::mutex> l(mu_);
    if (!rec->aborting) {
      arrive_and_wait(l, rec, SchedOp{SchedOpKind::kMutexTryLock, mu});
    }
    if (mutex_owner_.count(mu) != 0) return false;
    mutex_owner_[mu] = rec->id;
    return true;
  }

  void mutex_release(const void* mu) override {
    ThreadRec* rec = self();
    std::unique_lock<std::mutex> l(mu_);
    if (!rec->aborting) {
      arrive_and_wait(l, rec, SchedOp{SchedOpKind::kMutexUnlock, mu});
    }
    auto it = mutex_owner_.find(mu);
    if (it != mutex_owner_.end() && it->second == rec->id) {
      mutex_owner_.erase(it);
    }
  }

  std::uint64_t mutex_created(const void*) override {
    std::unique_lock<std::mutex> l(mu_);
    return next_mutex_id_++;
  }

  void yield() override {
    ThreadRec* rec = self();
    std::unique_lock<std::mutex> l(mu_);
    if (rec->aborting) return;
    rec->arrival_step = step_;
    arrive_and_wait(l, rec, SchedOp{SchedOpKind::kYield, nullptr});
  }

 private:
  enum class St { kFresh, kRunning, kAtPoint, kDone };

  struct ThreadRec {
    std::uint32_t id = 0;
    std::thread sys;
    std::function<void()> fn;
    St st = St::kFresh;
    SchedOp pending{SchedOpKind::kThreadStart, nullptr};
    std::uint64_t arrival_step = 0;  // of the pending kYield
    bool go = false;
    bool abort_on_wake = false;
    bool aborting = false;
    std::condition_variable cv;
  };

  ThreadRec* self() {
    // The per-thread rec: hooks are installed per controlled thread, so
    // the current thread id is recovered from a thread_local set in
    // thread_main.
    return t_self_;
  }

  static thread_local ThreadRec* t_self_;

  ThreadRec* add_thread_locked(std::function<void()> fn) {
    auto rec = std::make_unique<ThreadRec>();
    rec->id = static_cast<std::uint32_t>(threads_.size());
    rec->fn = std::move(fn);
    ThreadRec* raw = rec.get();
    threads_.push_back(std::move(rec));
    raw->sys = std::thread([this, raw] { thread_main(raw); });
    return raw;
  }

  void thread_main(ThreadRec* rec) {
    util::set_sched_hooks(this);
    t_self_ = rec;
    {
      std::unique_lock<std::mutex> l(mu_);
      rec->cv.wait(l, [rec] { return rec->go; });
      rec->go = false;
      rec->st = St::kRunning;
      if (rec->abort_on_wake) rec->aborting = true;
    }
    if (!rec->aborting) {
      try {
        rec->fn();
      } catch (const ExecutionAborted&) {
        // Unwound during deadlock teardown; already accounted for.
      } catch (const std::exception& e) {
        on_failure(e.what());
      } catch (...) {
        on_failure("unknown exception escaped a controlled thread");
      }
    }
    util::set_sched_hooks(nullptr);
    t_self_ = nullptr;
    std::unique_lock<std::mutex> l(mu_);
    rec->st = St::kDone;
    bool done = true;
    for (const auto& t : threads_) {
      if (t->st != St::kDone) done = false;
    }
    if (done) {
      all_done_ = true;
      main_cv_.notify_all();
      return;
    }
    if (rec->aborting) return;  // teardown peers wake themselves
    decide(l, rec);  // forced switch: someone else performs the next step
  }

  void on_failure(const std::string& what) {
    std::unique_lock<std::mutex> l(mu_);
    record_failure_locked(what);
  }

  void record_failure_locked(const std::string& what) {
    if (!failed_) {
      failed_ = true;
      fail_msg_ = what;
      fail_step_ = step_;
      fail_schedule_ = encode_schedule(switches_);
    }
    mode_ = Mode::kFree;
  }

  // Announce `op` as this thread's pending operation, decide the next
  // step, park if another thread was chosen, and return ready to execute
  // `op` (serialized). Called with mu_ held.
  void arrive_and_wait(std::unique_lock<std::mutex>& l, ThreadRec* rec,
                       const SchedOp& op) {
    rec->pending = op;
    rec->st = St::kAtPoint;
    const std::uint32_t chosen = decide(l, rec);
    if (chosen == rec->id) {
      rec->st = St::kRunning;
      return;
    }
    rec->cv.wait(l, [rec] { return rec->go; });
    rec->go = false;
    rec->st = St::kRunning;
    if (rec->abort_on_wake) {
      rec->aborting = true;
      throw ExecutionAborted{};
    }
  }

  bool op_enabled(const ThreadRec& t, bool relax_yield) const {
    switch (t.pending.kind) {
      case SchedOpKind::kMutexLock:
        return mutex_owner_.count(t.pending.addr) == 0;
      case SchedOpKind::kYield:
        return relax_yield || step_ > t.arrival_step;
      case SchedOpKind::kJoin:
        for (const auto& other : threads_) {
          if (other->id != t.id && other->st != St::kDone) return false;
        }
        return true;
      default:
        return true;  // atomics, try-lock, unlock, thread start
    }
  }

  std::vector<std::pair<std::uint32_t, SchedOp>> enabled_snapshot() const {
    std::vector<std::pair<std::uint32_t, SchedOp>> out;
    for (const auto& t : threads_) {
      if (t->st == St::kDone || t->st == St::kRunning) {
        if (t->st == St::kRunning) {
          // Only the deciding thread can be kRunning here, and it always
          // moves to kAtPoint/kDone before deciding.
          CNET_ENSURE(false, "running thread during scheduling decision");
        }
        continue;
      }
      if (t->st == St::kFresh ||
          op_enabled(*t, /*relax_yield=*/false)) {
        out.push_back({t->id, t->pending});
      }
    }
    if (out.empty()) {
      // Everyone parked is yielding (or blocked): re-arm yields as
      // spurious wakeups rather than calling it a deadlock.
      for (const auto& t : threads_) {
        if (t->st == St::kAtPoint &&
            t->pending.kind == SchedOpKind::kYield) {
          out.push_back({t->id, t->pending});
        }
      }
    }
    return out;
  }

  static bool contains(
      const std::vector<std::pair<std::uint32_t, SchedOp>>& v,
      std::uint32_t id) {
    for (const auto& e : v) {
      if (e.first == id) return true;
    }
    return false;
  }

  static const SchedOp& op_of(
      const std::vector<std::pair<std::uint32_t, SchedOp>>& v,
      std::uint32_t id) {
    for (const auto& e : v) {
      if (e.first == id) return e.second;
    }
    CNET_ENSURE(false, "thread missing from enabled snapshot");
    return v.front().second;  // unreachable
  }

  void sleep_after_step(std::uint32_t chosen, const SchedOp& chosen_op) {
    cur_sleep_.erase(chosen);
    for (auto it = cur_sleep_.begin(); it != cur_sleep_.end();) {
      if (ops_dependent(it->second, chosen_op)) {
        it = cur_sleep_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::uint32_t free_pick(
      const std::vector<std::pair<std::uint32_t, SchedOp>>& enabled) const {
    // Round-robin from the thread after current_: guarantees progress in
    // teardown even when the current thread is mid spin-loop.
    std::uint32_t best = kNoThread;
    for (const auto& [id, op] : enabled) {
      if (id > current_) {
        best = id;
        break;
      }
    }
    if (best == kNoThread) best = enabled.front().first;
    return best;
  }

  // The scheduling decision: exactly one global step is dispatched per
  // call. Returns the chosen thread (which may be the caller). Called
  // with mu_ held by a thread that just parked itself (kAtPoint) or
  // finished (kDone).
  std::uint32_t decide(std::unique_lock<std::mutex>& l, ThreadRec* rec) {
    if (step_ >= opts_.hard_step_limit) {
      if (step_ >= opts_.hard_step_limit * 4) {
        std::fprintf(stderr,
                     "cnet::check: execution exceeded %llu steps even in "
                     "free-run teardown; genuine livelock — aborting\n",
                     static_cast<unsigned long long>(step_));
        std::abort();
      }
      record_failure_locked(
          "execution exceeded hard_step_limit (suspected livelock)");
    } else if (mode_ == Mode::kExplore && step_ >= opts_.max_steps) {
      mode_ = Mode::kFree;  // too deep to keep branching; finish cheaply
    }

    auto enabled = enabled_snapshot();
    if (enabled.empty()) return handle_deadlock(rec);

    std::uint32_t chosen = kNoThread;
    switch (mode_) {
      case Mode::kReplay:
        chosen = replay_pick(enabled, rec);
        break;
      case Mode::kFree:
        chosen = free_pick(enabled);
        break;
      case Mode::kExplore:
        chosen = explore_pick(enabled, rec);
        break;
    }
    CNET_ENSURE(chosen != kNoThread, "scheduler failed to choose a thread");

    // Dispatch: this is global step step_, performed by `chosen`.
    if (chosen != current_) switches_.push_back({step_, chosen});
    ++step_;
    current_ = chosen;
    if (chosen != rec->id) {
      ThreadRec* c = threads_[chosen].get();
      c->go = true;
      c->cv.notify_one();
    }
    (void)l;
    return chosen;
  }

  std::uint32_t replay_pick(
      const std::vector<std::pair<std::uint32_t, SchedOp>>& enabled,
      ThreadRec* rec) {
    if (replay_cursor_ < replay_.size() &&
        replay_[replay_cursor_].step == step_) {
      const std::uint32_t target = replay_[replay_cursor_].thread;
      ++replay_cursor_;
      if (target < threads_.size() && contains(enabled, target)) {
        return target;
      }
      record_failure_locked(
          "replay schedule names a thread that is not enabled at its step "
          "(stale or corrupt schedule string)");
      return free_pick(enabled);
    }
    if (rec->st == St::kAtPoint && contains(enabled, rec->id)) {
      return rec->id;  // between switches: continue the current thread
    }
    // A forced switch the schedule does not cover: every switch is
    // recorded at exploration time, so this means the string does not
    // match this body.
    record_failure_locked(
        "replay schedule missing a forced switch (schedule does not match "
        "this scenario)");
    return free_pick(enabled);
  }

  std::uint32_t explore_pick(
      const std::vector<std::pair<std::uint32_t, SchedOp>>& enabled,
      ThreadRec* rec) {
    const bool self_enabled =
        rec->st == St::kAtPoint && contains(enabled, rec->id);
    if (step_ < tree_->stack.size()) {
      // Replaying the tree prefix into the next branch.
      Node& n = tree_->stack[static_cast<std::size_t>(step_)];
      cur_sleep_.clear();
      for (const auto& e : n.sleep_init) cur_sleep_.insert(e);
      for (const auto& e : n.explored) cur_sleep_.insert(e);
      if (!contains(enabled, n.chosen)) {
        record_failure_locked(
            "internal: nondeterministic prefix (enabled set changed "
            "between executions) — protocol code performs uncontrolled "
            "synchronization");
        return free_pick(enabled);
      }
      cur_preempts_ = n.preempts_before +
                      ((n.chosen != n.running && n.running_enabled) ? 1 : 0);
      sleep_after_step(n.chosen, op_of(n.enabled, n.chosen));
      return n.chosen;
    }

    // Fresh node.
    std::vector<std::uint32_t> candidates;
    for (const auto& [id, op] : enabled) {
      if (!opts_.sleep_sets || cur_sleep_.count(id) == 0) {
        candidates.push_back(id);
      }
    }
    if (candidates.empty()) {
      // Every enabled thread sleeps: any continuation only reorders
      // independent steps of already-explored executions.
      pruned_ = true;
      mode_ = Mode::kFree;
      return free_pick(enabled);
    }
    std::uint32_t chosen = kNoThread;
    if (self_enabled &&
        std::find(candidates.begin(), candidates.end(), rec->id) !=
            candidates.end()) {
      chosen = rec->id;
    } else {
      chosen = candidates.front();
    }
    Node n;
    n.chosen = chosen;
    n.running = rec->id;
    n.running_enabled = self_enabled;
    n.preempts_before = cur_preempts_;
    n.enabled = enabled;
    n.sleep_init.assign(cur_sleep_.begin(), cur_sleep_.end());
    tree_->stack.push_back(std::move(n));
    cur_preempts_ += (chosen != rec->id && self_enabled) ? 1 : 0;
    sleep_after_step(chosen, op_of(enabled, chosen));
    return chosen;
  }

  std::uint32_t handle_deadlock(ThreadRec* rec) {
    std::ostringstream os;
    os << "deadlock: no controlled thread is enabled (";
    bool first = true;
    for (const auto& t : threads_) {
      if (t->st == St::kDone) continue;
      if (!first) os << ", ";
      first = false;
      os << "t" << t->id << " blocked";
    }
    os << ")";
    record_failure_locked(os.str());
    for (auto& t : threads_) {
      if (t.get() != rec && t->st == St::kAtPoint) {
        // Parked-disabled threads sit in throwing-safe frames (mutex
        // lock / join / yield); unwind them.
        t->abort_on_wake = true;
        t->go = true;
        t->cv.notify_one();
      }
    }
    if (rec->st == St::kAtPoint) {
      rec->aborting = true;
      throw ExecutionAborted{};
    }
    return kNoThread;  // rec finished; aborted peers complete teardown
  }

  const Options& opts_;
  Mode mode_;
  Tree* tree_;  // shared across executions; null in replay/free
  std::vector<ScheduleSwitch> replay_;
  std::size_t replay_cursor_ = 0;

  std::mutex mu_;
  std::condition_variable main_cv_;
  bool all_done_ = false;
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  std::unordered_map<const void*, std::uint32_t> mutex_owner_;
  std::uint64_t next_mutex_id_ = 1;
  std::uint32_t current_ = 0;
  std::uint64_t step_ = 0;
  std::size_t cur_preempts_ = 0;
  std::map<std::uint32_t, SchedOp> cur_sleep_;
  std::vector<ScheduleSwitch> switches_;

  bool failed_ = false;
  bool pruned_ = false;
  std::string fail_msg_;
  std::string fail_schedule_;
  std::uint64_t fail_step_ = 0;
};

thread_local Run::ThreadRec* Run::t_self_ = nullptr;

}  // namespace

std::string encode_schedule(const std::vector<ScheduleSwitch>& switches) {
  std::ostringstream os;
  os << kScheduleTag;
  bool first = true;
  for (const auto& s : switches) {
    if (!first) os << ',';
    first = false;
    os << s.step << '@' << s.thread;
  }
  return os.str();
}

std::vector<ScheduleSwitch> parse_schedule(const std::string& text) {
  const std::string tag(kScheduleTag);
  CNET_REQUIRE(text.compare(0, tag.size(), tag) == 0,
               "schedule string must start with '" + tag + "'");
  std::vector<ScheduleSwitch> out;
  std::string rest = text.substr(tag.size());
  if (rest.empty()) return out;
  std::istringstream is(rest);
  std::string item;
  std::uint64_t prev_step = 0;
  bool have_prev = false;
  while (std::getline(is, item, ',')) {
    const auto at = item.find('@');
    CNET_REQUIRE(at != std::string::npos && at > 0 && at + 1 < item.size(),
                 "schedule entry must be <step>@<thread>: '" + item + "'");
    std::size_t used = 0;
    std::uint64_t step = 0;
    std::uint64_t thread = 0;
    try {
      step = std::stoull(item.substr(0, at), &used);
      CNET_REQUIRE(used == at, "non-numeric step in '" + item + "'");
      thread = std::stoull(item.substr(at + 1), &used);
      CNET_REQUIRE(used == item.size() - at - 1,
                   "non-numeric thread in '" + item + "'");
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      CNET_REQUIRE(false, "malformed schedule entry '" + item + "'");
    }
    CNET_REQUIRE(!have_prev || step > prev_step,
                 "schedule steps must be strictly increasing");
    prev_step = step;
    have_prev = true;
    out.push_back(ScheduleSwitch{step, static_cast<std::uint32_t>(thread)});
  }
  return out;
}

Explorer::Explorer(const Options& opts) : opts_(opts) {
  CNET_REQUIRE(opts_.max_executions > 0, "max_executions must be positive");
  CNET_REQUIRE(opts_.hard_step_limit >= opts_.max_steps,
               "hard_step_limit must be at least max_steps");
}

Result Explorer::explore(const Body& body) {
  CNET_REQUIRE(body != nullptr, "null body");
  CNET_REQUIRE(util::kSchedCheckEnabled,
               "Explorer::explore requires a CNET_SCHED_CHECK build (the "
               "sched-point seam is compiled out of this binary)");
  Result result;
  Tree tree;
  for (;;) {
    Run run(opts_, Mode::kExplore, &tree, {});
    run.execute(body);
    ++result.executions;
    result.steps += run.steps();
    result.max_execution_steps =
        std::max(result.max_execution_steps, run.steps());
    if (run.pruned()) ++result.pruned;
    if (run.failed()) {
      result.failed = true;
      result.message = run.failure_message();
      result.schedule = run.failure_schedule();
      result.failure_step = run.failure_step();
      return result;
    }
    if (result.executions >= opts_.max_executions) return result;
    if (!advance_tree(tree, opts_)) return result;
  }
}

Result Explorer::replay(const std::string& schedule, const Body& body) {
  CNET_REQUIRE(body != nullptr, "null body");
  CNET_REQUIRE(util::kSchedCheckEnabled,
               "Explorer::replay requires a CNET_SCHED_CHECK build (the "
               "sched-point seam is compiled out of this binary)");
  Result result;
  Run run(opts_, Mode::kReplay, nullptr, parse_schedule(schedule));
  run.execute(body);
  result.executions = 1;
  result.steps = run.steps();
  result.max_execution_steps = run.steps();
  if (run.failed()) {
    result.failed = true;
    result.message = run.failure_message();
    result.schedule = run.failure_schedule();
    result.failure_step = run.failure_step();
  }
  return result;
}

}  // namespace cnet::check
