// Shared main() for schedule-checker drivers (tests/schedcheck/check_*).
//
// A driver is a list of named scenarios, each a check::Body plus an
// expectation:
//
//   kClean     — exploration must finish with no failure. Any violation
//                prints the message and the replay string and fails the
//                test; `driver --scenario <name> --replay <string>`
//                re-executes that exact interleaving under a debugger.
//   kViolation — the scenario *seeds* a bug (e.g. the pre-PR-9 unlocked
//                monitor registration) and exploration must find it. The
//                driver then immediately replays the reported schedule
//                string and requires the failure to reproduce bit-
//                identically (same message, same global step) — the
//                determinism contract is re-proven on every CI run.
//
// Command line:
//   --list             print scenario names and expectations, exit 0
//   --scenario NAME    run only NAME (default: all)
//   --bound N          preemption bound (default Options{}.preemption_bound)
//   --max-executions N cap explored schedules per scenario
//   --replay STRING    with --scenario: re-execute one schedule, report,
//                      exit 0 iff the scenario's expectation is met
#pragma once

#include <string>
#include <vector>

#include "cnet/check/explorer.hpp"

namespace cnet::check {

enum class Expect { kClean, kViolation };

struct Scenario {
  std::string name;
  Expect expect = Expect::kClean;
  Body body;
};

// Runs scenarios per the command line above; returns the process exit code
// (0 = all expectations met). Output goes to stdout/stderr.
int run_scenarios(const std::vector<Scenario>& scenarios, int argc,
                  char** argv);

}  // namespace cnet::check
