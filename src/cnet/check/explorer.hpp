// cnet::check — systematic concurrency testing for the real protocol code.
//
// The simulator's sim/model_check.{hpp,cpp} already runs the paper's
// adversary scheduler exhaustively, but only against the *model* of the
// core network. This explorer runs the adversary against the shipped
// implementations: real threads executing real EliminationLayer /
// ReconfigEngine / QuotaHierarchy / dist-ledger code, serialized through
// the util::SchedPoint seam (CNET_SCHED_CHECK) so that exactly one thread
// runs at a time and every synchronization operation is one schedulable
// step. The explorer then enumerates interleavings by depth-first search:
//
//   - default schedule: keep running the current thread until it blocks,
//     finishes, or yields (forced switches are free);
//   - branching: at every step, switching away from a still-runnable
//     thread costs one *preemption*; schedules with more than
//     Options::preemption_bound preemptions are not explored (CHESS-style
//     iterative context bounding — most real bugs need very few);
//   - pruning: sleep sets (Godefroid) skip schedules that only reorder
//     independent operations — two ops are dependent only if they touch
//     the same atomic word with at least one write, or the same mutex;
//   - invariants: the driver body runs to completion on every explored
//     schedule and asserts its protocol invariants (token conservation,
//     exactly-once settlement, ...) with CNET_ENSURE/CNET_REQUIRE — any
//     exception is a caught failure;
//   - replay: every failure carries a compact schedule string; feeding it
//     back via Explorer::replay() (or a driver's --replay flag)
//     re-executes that exact interleaving bit-identically.
//
// Exploration requires a CNET_SCHED_CHECK build (Explorer::explore throws
// otherwise); the schedule codec below is build-independent and unit
// tested in the normal suite.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cnet::check {

// One recorded scheduling switch: at global step `step`, thread `thread`
// was activated (all steps between switches continue the same thread).
// Every switch is recorded — forced and preemptive alike — so a schedule
// string alone determines the whole interleaving with no replayer policy.
struct ScheduleSwitch {
  std::uint64_t step = 0;
  std::uint32_t thread = 0;
};

// "cnet-sched-v1;3@1,9@0,..." — the compact failure/replay format.
std::string encode_schedule(const std::vector<ScheduleSwitch>& switches);
// Inverse of encode_schedule; throws std::invalid_argument on malformed
// input (bad prefix, non-numeric fields, unsorted steps).
std::vector<ScheduleSwitch> parse_schedule(const std::string& text);

struct Options {
  // Maximum preemptive (non-forced) context switches per explored
  // schedule. 2 reaches most real concurrency bugs; raise it for tiny
  // state spaces to approach exhaustiveness.
  std::size_t preemption_bound = 2;
  // Sleep-set pruning of equivalent interleavings. Only ever disabled for
  // debugging the explorer itself; replay never uses sleep sets.
  bool sleep_sets = true;
  // Stop exploring after this many executions (stats still reported).
  std::uint64_t max_executions = 1'000'000;
  // Soft per-execution step cap: past it the execution stops branching
  // and free-runs to completion (keeps pathological schedules cheap).
  std::uint64_t max_steps = 20'000;
  // Hard per-execution step cap: past it the execution is failed as a
  // suspected livelock (and past 4x, the process aborts — a thread
  // spinning inside noexcept code cannot be unwound safely).
  std::uint64_t hard_step_limit = 200'000;
};

struct Result {
  bool failed = false;
  std::string message;        // first failure, verbatim
  std::string schedule;       // replay string of the failing execution
  std::uint64_t failure_step = 0;  // global step at which the failure threw
  std::uint64_t executions = 0;    // maximal executions run (incl. pruned)
  std::uint64_t pruned = 0;        // executions cut short by sleep sets
  std::uint64_t steps = 0;         // total scheduled steps, all executions
  std::uint64_t max_execution_steps = 0;  // longest single execution
};

// Handed to the driver body: spawn controlled threads, then join them all
// before asserting end-state invariants. join_all() is a scheduling point
// (enabled once every other controlled thread finished); two threads
// calling it concurrently deadlock by construction — call it from the
// body thread only.
class TestContext {
 public:
  virtual ~TestContext() = default;
  virtual void spawn(std::function<void()> fn) = 0;
  virtual void join_all() = 0;
};

// The driver body: runs once per explored schedule on controlled thread 0,
// constructs the protocol objects fresh (determinism across executions),
// spawns the racing threads, joins, and asserts invariants by throwing.
using Body = std::function<void(TestContext&)>;

class Explorer {
 public:
  explicit Explorer(const Options& opts = {});

  // Explores bounded-preemption schedules of `body` until a failure, the
  // execution cap, or exhaustion of the (pruned) schedule space.
  Result explore(const Body& body);

  // Re-executes exactly the interleaving `schedule` encodes (sleep sets
  // off, no branching). A failure reproduces with the same message at the
  // same step as the exploration that produced the string.
  Result replay(const std::string& schedule, const Body& body);

 private:
  Options opts_;
};

}  // namespace cnet::check
