#include "cnet/check/driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cnet/util/ensure.hpp"

namespace cnet::check {

namespace {

struct Cli {
  bool list = false;
  std::string scenario;  // empty = all
  std::string replay;    // empty = explore
  Options opts;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: driver [--list] [--scenario NAME] [--bound N]\n"
               "              [--max-executions N] [--replay STRING]\n",
               msg.c_str());
  std::exit(2);
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--scenario") {
      cli.scenario = value(i, "--scenario");
    } else if (arg == "--replay") {
      cli.replay = value(i, "--replay");
    } else if (arg == "--bound") {
      cli.opts.preemption_bound =
          static_cast<std::size_t>(std::stoull(value(i, "--bound")));
    } else if (arg == "--max-executions") {
      cli.opts.max_executions = std::stoull(value(i, "--max-executions"));
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }
  if (!cli.replay.empty() && cli.scenario.empty()) {
    usage_error("--replay requires --scenario");
  }
  return cli;
}

void print_stats(const Result& r) {
  std::printf(
      "    executions=%llu pruned=%llu steps=%llu max_execution_steps=%llu\n",
      static_cast<unsigned long long>(r.executions),
      static_cast<unsigned long long>(r.pruned),
      static_cast<unsigned long long>(r.steps),
      static_cast<unsigned long long>(r.max_execution_steps));
}

// One scenario, explore mode. Returns true iff the expectation was met.
bool run_explore(const Scenario& s, const Options& opts) {
  std::printf("[ RUN  ] %s (expect %s, bound %zu)\n", s.name.c_str(),
              s.expect == Expect::kClean ? "clean" : "violation",
              opts.preemption_bound);
  std::fflush(stdout);
  Explorer explorer(opts);
  const Result r = explorer.explore(s.body);
  print_stats(r);
  if (s.expect == Expect::kClean) {
    if (!r.failed) {
      std::printf("[ PASS ] %s: no violation in %llu schedules\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(r.executions));
      return true;
    }
    std::printf(
        "[ FAIL ] %s: violation at step %llu\n"
        "    message:  %s\n"
        "    schedule: %s\n"
        "    replay:   --scenario %s --replay '%s'\n",
        s.name.c_str(), static_cast<unsigned long long>(r.failure_step),
        r.message.c_str(), r.schedule.c_str(), s.name.c_str(),
        r.schedule.c_str());
    return false;
  }
  // Expect::kViolation: the seeded bug must be found...
  if (!r.failed) {
    std::printf(
        "[ FAIL ] %s: seeded violation NOT found in %llu schedules "
        "(checker lost its teeth)\n",
        s.name.c_str(), static_cast<unsigned long long>(r.executions));
    return false;
  }
  std::printf(
      "    found seeded violation at step %llu after %llu schedules\n"
      "    message:  %s\n"
      "    schedule: %s\n",
      static_cast<unsigned long long>(r.failure_step),
      static_cast<unsigned long long>(r.executions), r.message.c_str(),
      r.schedule.c_str());
  // ...and must reproduce bit-identically from the schedule string alone.
  Explorer replayer(opts);
  const Result rr = replayer.replay(r.schedule, s.body);
  if (!rr.failed || rr.message != r.message ||
      rr.failure_step != r.failure_step) {
    std::printf(
        "[ FAIL ] %s: replay diverged from exploration\n"
        "    explore: failed=1 step=%llu message='%s'\n"
        "    replay:  failed=%d step=%llu message='%s'\n",
        s.name.c_str(), static_cast<unsigned long long>(r.failure_step),
        r.message.c_str(), rr.failed ? 1 : 0,
        static_cast<unsigned long long>(rr.failure_step),
        rr.message.c_str());
    return false;
  }
  std::printf("[ PASS ] %s: violation found and replay reproduced it "
              "bit-identically (step %llu)\n",
              s.name.c_str(),
              static_cast<unsigned long long>(rr.failure_step));
  return true;
}

// One scenario, replay mode (--replay STRING).
bool run_replay(const Scenario& s, const Options& opts,
                const std::string& schedule) {
  std::printf("[REPLAY] %s\n    schedule: %s\n", s.name.c_str(),
              schedule.c_str());
  Explorer explorer(opts);
  const Result r = explorer.replay(schedule, s.body);
  if (r.failed) {
    std::printf("    violation at step %llu\n    message: %s\n",
                static_cast<unsigned long long>(r.failure_step),
                r.message.c_str());
  } else {
    std::printf("    clean execution (%llu steps)\n",
                static_cast<unsigned long long>(r.steps));
  }
  const bool met = (s.expect == Expect::kViolation) == r.failed;
  std::printf("[ %s ] %s\n", met ? "PASS" : "FAIL", s.name.c_str());
  return met;
}

}  // namespace

int run_scenarios(const std::vector<Scenario>& scenarios, int argc,
                  char** argv) {
  const Cli cli = parse_cli(argc, argv);
  if (cli.list) {
    for (const auto& s : scenarios) {
      std::printf("%s\t%s\n", s.name.c_str(),
                  s.expect == Expect::kClean ? "clean" : "violation");
    }
    return 0;
  }
  bool matched_any = false;
  bool all_met = true;
  for (const auto& s : scenarios) {
    if (!cli.scenario.empty() && s.name != cli.scenario) continue;
    matched_any = true;
    const bool met = cli.replay.empty()
                         ? run_explore(s, cli.opts)
                         : run_replay(s, cli.opts, cli.replay);
    all_met = all_met && met;
    std::fflush(stdout);
  }
  if (!matched_any) {
    std::fprintf(stderr, "error: no scenario named '%s'\n",
                 cli.scenario.c_str());
    return 2;
  }
  return all_met ? 0 : 1;
}

}  // namespace cnet::check
