// Pure decision rules of the distributed counting tier, in the same mold
// as svc/policy.hpp: everything a lease-ledger operation must *decide* —
// how big a renewal grant is, how an expired lease's unspent tokens split
// back across the quota levels, how healed debt settles, which peer a
// renewal asks first — lives here, shared verbatim by the live
// dist::PeerCluster accounting and the virtual-time cluster simulator
// (sim::simulate_cluster). No atomics, no time, no I/O.
#pragma once

#include <cstdint>
#include <optional>

#include "cnet/dist/topology.hpp"

namespace cnet::dist {

// How many tokens one lease renewal requests: at least the configured
// chunk (renewals are deliberately coarse — one round trip should buy many
// local admissions), capped so a single node can never hold more than
// `cap` in one lease. want == 0 asks for a full chunk top-up.
constexpr std::uint64_t lease_grant(std::uint64_t want, std::uint64_t chunk,
                                    std::uint64_t cap) noexcept {
  const std::uint64_t ask = want > chunk ? want : chunk;
  return ask < cap ? ask : cap;
}

// The split of an expired lease's refund across the two quota levels. The
// lease was granted as (from_child, from_parent); `recovered` is what the
// node's local pool still held of it at expiry (<= from_child +
// from_parent — everything else was spent on admissions and has left the
// system for good). Spend attributes child-first — the node burns its own
// account's tokens before borrowed ones — so the recovery refunds
// parent-first: borrowed tokens go home before own-account tokens.
// refund_child + refund_parent == recovered always, which is what makes
// the expiry path exactly-once conservation-neutral.
struct ExpiryRefund {
  std::uint64_t refund_child = 0;
  std::uint64_t refund_parent = 0;
};

constexpr ExpiryRefund lease_expiry_refund(std::uint64_t from_child,
                                           std::uint64_t from_parent,
                                           std::uint64_t recovered) noexcept {
  const std::uint64_t total = from_child + from_parent;
  const std::uint64_t capped = recovered < total ? recovered : total;
  const std::uint64_t spent = total - capped;
  const std::uint64_t spent_child = spent < from_child ? spent : from_child;
  const std::uint64_t spent_parent = spent - spent_child;
  return {from_child - spent_child, from_parent - spent_parent};
}

// How much of a healed partition's outstanding debt settles in one
// reconcile step: debts replay in bounded chunks (one chunk per virtual
// round trip in the simulator, one bounded batch in the live ledger) so a
// long partition's backlog cannot monopolize the global pool's servers at
// the heal instant.
constexpr std::uint64_t debt_reconcile(std::uint64_t outstanding,
                                       std::uint64_t chunk) noexcept {
  return outstanding < chunk ? outstanding : chunk;
}

// How much of its local balance a peer may donate to a neighbor's renewal:
// everything above its own reserve. The reserve is what keeps donation
// from turning one node's burst into its rack-mates' starvation.
constexpr std::uint64_t peer_surplus(std::uint64_t balance,
                                     std::uint64_t reserve) noexcept {
  return balance > reserve ? balance - reserve : 0;
}

// The split of a peer donation across the donor lease's levels,
// child-first (mirroring lease_expiry_refund's spend attribution: own
// tokens move first, borrowed ones only when the own part is exhausted).
struct CarvedParts {
  std::uint64_t from_child = 0;
  std::uint64_t from_parent = 0;
  constexpr std::uint64_t tokens() const noexcept {
    return from_child + from_parent;
  }
};

constexpr CarvedParts lease_carve(std::uint64_t want,
                                  std::uint64_t avail_child,
                                  std::uint64_t avail_parent) noexcept {
  const std::uint64_t give_child = want < avail_child ? want : avail_child;
  const std::uint64_t rest = want - give_child;
  const std::uint64_t give_parent = rest < avail_parent ? rest : avail_parent;
  return {give_child, give_parent};
}

// The topology walk behind lease renewal: the `attempt`-th candidate node
// to ask, nearest-first (same rack, then same dc, then remote — the
// precomputed Topology::peers_by_proximity order). Exhausting the walk
// (nullopt) means "go to the global hierarchy yourself". Both the live
// PeerCluster and the simulator drive their renewal loops off this one
// function, so "rack-local renewal" means the same thing in Table G and
// Table G′.
inline std::optional<std::size_t> renewal_target(const Topology& topo,
                                                 std::size_t node,
                                                 std::size_t attempt) {
  const auto& order = topo.peers_by_proximity(node);
  if (attempt >= order.size()) return std::nullopt;
  return order[attempt];
}

}  // namespace cnet::dist
