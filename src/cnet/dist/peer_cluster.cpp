#include "cnet/dist/peer_cluster.hpp"

#include <algorithm>
#include <utility>

#include "cnet/util/ensure.hpp"

namespace cnet::dist {

PeerCluster::PeerCluster(Topology topo, const ClusterConfig& cfg)
    : topo_(std::move(topo)), cfg_(cfg) {
  CNET_REQUIRE(cfg.lease_chunk > 0, "lease_chunk must be positive");
  CNET_REQUIRE(cfg.lease_cap >= cfg.lease_chunk,
               "lease_cap must cover at least one chunk");
  CNET_REQUIRE(cfg.lease_ttl > 0, "lease_ttl must be positive");
  CNET_REQUIRE(cfg.reconcile_chunk > 0, "reconcile_chunk must be positive");
  const std::size_t n = topo_.num_nodes();

  svc::QuotaHierarchy::Config qcfg;
  qcfg.parent = cfg.parent_spec;
  qcfg.net = cfg.net;
  qcfg.bucket.refill_chunk = cfg.refill_chunk;
  qcfg.parent_initial_tokens = cfg.parent_initial;
  qcfg.borrow_budget = cfg.borrow_budget;
  std::vector<svc::QuotaHierarchy::TenantConfig> accounts(
      n, {cfg.node_account_initial, cfg.node_weight});
  global_ = std::make_unique<svc::QuotaHierarchy>(qcfg, std::move(accounts));

  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto ns = std::make_unique<NodeState>();
    // The local admission pool sees only this node's traffic, so the cheap
    // central word is the right backend (same reasoning as the hierarchy's
    // child buckets).
    ns->local = std::make_unique<svc::NetTokenBucket>(
        svc::make_counter(svc::BackendKind::kCentralAtomic),
        svc::NetTokenBucket::Config{cfg.local_initial, cfg.refill_chunk});
    ns->balance.store(static_cast<std::int64_t>(cfg.local_initial),
                      std::memory_order_relaxed);
    ns->overload = std::make_unique<svc::OverloadManager>();
    ns->overload->add_monitor(svc::make_reject_ratio_monitor(*ns->local));
    ns->local->attach_overload(ns->overload.get());
    nodes_.push_back(std::move(ns));
  }
  total_initial_ =
      cfg.parent_initial +
      static_cast<std::uint64_t>(n) *
          (cfg.node_account_initial + cfg.local_initial);

  // SDS-style watch instead of polling: every reweigh commit is pushed to
  // the nodes from the hierarchy's commit path. A partitioned node misses
  // the push (its control plane is down) and catches up at heal().
  global_->subscribe([this](std::uint64_t version) {
    for (auto& ns : nodes_) {
      if (!ns->partitioned.load(std::memory_order_acquire)) {
        ns->observed_version.store(version, std::memory_order_release);
      }
    }
  });
}

PeerCluster::NodeState& PeerCluster::node_state(std::size_t node) const {
  CNET_REQUIRE(node < nodes_.size(), "node index out of range");
  return *nodes_[node];
}

std::uint64_t PeerCluster::admit(std::size_t thread_hint, std::size_t node,
                                 std::uint64_t cost) {
  NodeState& ns = node_state(node);
  // Degrade is decided here, per node, so the caller learns the exact
  // partial charge — the same contract as AdmissionController::admit.
  const bool degrade = ns.overload->actions().degrade_to_partial;
  const std::uint64_t got = ns.local->consume(
      thread_hint, cost, degrade ? svc::kPartialOk : svc::kAllOrNothing);
  if (got > 0) {
    ns.spent.fetch_add(got, std::memory_order_relaxed);
    ns.balance.fetch_sub(static_cast<std::int64_t>(got),
                         std::memory_order_relaxed);
  }
  return got;
}

std::uint64_t PeerCluster::donate(std::size_t thread_hint, std::size_t donor,
                                  std::size_t to, std::uint64_t want) {
  NodeState& from = node_state(donor);
  NodeState& dest = node_state(to);
  if (from.partitioned.load(std::memory_order_acquire)) return 0;
  // Both ledgers lock together (std::lock's deadlock-avoiding order);
  // the carve and the recipient's new lease records are one atomic step.
  const util::DualMutexLock lock(from.ledger, dest.ledger);
  // A donation moves *leased* tokens only: every donated token keeps its
  // hierarchy grant parts, so its eventual expiry still settles against
  // the donor's account exactly. Surplus above the reserve is the shared
  // peer_surplus rule over the advisory balance.
  std::uint64_t leased_active = 0;
  for (const Lease& lease : from.leases) {
    if (!lease.settled) leased_active += lease.grant.tokens();
  }
  const auto balance = from.balance.load(std::memory_order_relaxed);
  const std::uint64_t surplus = peer_surplus(
      balance > 0 ? static_cast<std::uint64_t>(balance) : 0,
      cfg_.peer_reserve);
  const std::uint64_t give =
      std::min({want, surplus, leased_active});
  if (give == 0) return 0;
  // Drain the actual tokens first (the pool is the ground truth; the
  // advisory balance may run ahead of it), then carve exactly that many
  // grant parts out of the donor's newest active leases, child-first.
  const std::uint64_t drained =
      from.local->consume(thread_hint, give, svc::kPartialOk);
  if (drained == 0) return 0;
  from.balance.fetch_sub(static_cast<std::int64_t>(drained),
                         std::memory_order_relaxed);
  const std::uint64_t expiry = now_.load(std::memory_order_acquire) +
                               cfg_.lease_ttl;
  std::uint64_t remaining = drained;
  for (auto it = from.leases.rbegin();
       it != from.leases.rend() && remaining > 0; ++it) {
    Lease& lease = *it;
    if (lease.settled) continue;
    const CarvedParts parts = lease_carve(remaining, lease.grant.from_child,
                                          lease.grant.from_parent);
    if (parts.tokens() == 0) continue;
    lease.grant.from_child -= parts.from_child;
    lease.grant.from_parent -= parts.from_parent;
    if (lease.grant.tokens() == 0) lease.settled = true;  // fully carved away
    Lease transferred;
    transferred.grant.admitted = true;
    transferred.grant.tenant = lease.grant.tenant;  // settles to the donor
    transferred.grant.from_child = parts.from_child;
    transferred.grant.from_parent = parts.from_parent;
    transferred.expiry = expiry;
    dest.leases.push_back(transferred);
    remaining -= parts.tokens();
  }
  CNET_ENSURE(remaining == 0, "donated tokens exceeded donor lease parts");
  dest.local->refill(thread_hint, drained);
  dest.balance.fetch_add(static_cast<std::int64_t>(drained),
                         std::memory_order_relaxed);
  donations_.fetch_add(1, std::memory_order_relaxed);
  donated_tokens_.fetch_add(drained, std::memory_order_relaxed);
  return drained;
}

std::uint64_t PeerCluster::renew(std::size_t thread_hint, std::size_t node,
                                 std::uint64_t want) {
  NodeState& ns = node_state(node);
  if (ns.partitioned.load(std::memory_order_acquire)) return 0;
  const std::uint64_t current = now_.load(std::memory_order_acquire);
  const std::uint64_t fresh_expiry = current + cfg_.lease_ttl;
  {
    // The heartbeat half: extend every active lease. The settled flag is
    // the exactly-once guard — a lease the expiry sweep already settled
    // (possibly racing this renewal on another thread) is never revived.
    const util::MutexLock lock(ns.ledger);
    for (Lease& lease : ns.leases) {
      if (!lease.settled) lease.expiry = std::max(lease.expiry, fresh_expiry);
    }
  }
  const std::uint64_t ask =
      lease_grant(want, cfg_.lease_chunk, cfg_.lease_cap);
  std::uint64_t gained = 0;
  // Nearest-first donation walk; the shared renewal_target rule decides
  // the order, the shared peer_surplus/lease_carve rules decide the size.
  for (std::size_t attempt = 0; gained < ask; ++attempt) {
    const auto target = renewal_target(topo_, node, attempt);
    if (!target.has_value()) break;
    gained += donate(thread_hint, *target, node, ask - gained);
  }
  if (gained < ask) {
    // Global fallback: a two-level acquire against the node's own account,
    // partial so a low parent still grants what it can.
    const svc::QuotaHierarchy::Grant grant =
        global_->acquire(thread_hint, node, ask - gained, svc::kPartialOk);
    if (grant.admitted && grant.tokens() > 0) {
      ns.local->refill(thread_hint, grant.tokens());
      ns.balance.fetch_add(static_cast<std::int64_t>(grant.tokens()),
                           std::memory_order_relaxed);
      const util::MutexLock lock(ns.ledger);
      ns.leases.push_back(Lease{grant, fresh_expiry, false});
      gained += grant.tokens();
    }
  }
  if (gained > 0) renewals_.fetch_add(1, std::memory_order_relaxed);
  return gained;
}

void PeerCluster::refund_expired(std::size_t thread_hint, NodeState& ns,
                                 const Lease& lease, std::uint64_t recovered) {
  static_cast<void>(ns);  // present for the CNET_REQUIRES(ns.ledger) capability
  const ExpiryRefund split = lease_expiry_refund(
      lease.grant.from_child, lease.grant.from_parent, recovered);
  global_->settle_spent(thread_hint, lease.grant, split.refund_child,
                        split.refund_parent);
  expiry_refunded_.fetch_add(recovered, std::memory_order_relaxed);
}

void PeerCluster::advance(std::size_t thread_hint, std::uint64_t now) {
  // Monotone clock: concurrent advances race to the max.
  std::uint64_t cur = now_.load(std::memory_order_relaxed);
  while (cur < now && !now_.compare_exchange_weak(
                          cur, now, std::memory_order_acq_rel)) {
  }
  const std::uint64_t sweep_at = now_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& ns = *nodes_[i];
    const util::MutexLock lock(ns.ledger);
    const bool partitioned = ns.partitioned.load(std::memory_order_acquire);
    for (Lease& lease : ns.leases) {
      if (lease.settled || lease.expiry > sweep_at) continue;
      // Exactly-once: settled flips under the ledger lock before any token
      // moves, so a renewal racing this sweep can never extend (and a
      // second sweep can never re-refund) a lease being settled.
      lease.settled = true;
      const std::uint64_t recovered = ns.local->consume(
          thread_hint, lease.grant.tokens(), svc::kPartialOk);
      ns.balance.fetch_sub(static_cast<std::int64_t>(recovered),
                           std::memory_order_relaxed);
      expiries_.fetch_add(1, std::memory_order_relaxed);
      expiry_recovered_.fetch_add(recovered, std::memory_order_relaxed);
      if (partitioned) {
        // Control plane down: the recovery sits in debt escrow — counted,
        // held out of every pool — until heal() replays it exactly once.
        ns.debts.push_back(Debt{lease.grant, recovered});
        ns.debt_escrow += recovered;
        debt_created_.fetch_add(recovered, std::memory_order_relaxed);
      } else {
        refund_expired(thread_hint, ns, lease, recovered);
      }
    }
    ns.leases.erase(
        std::remove_if(ns.leases.begin(), ns.leases.end(),
                       [](const Lease& l) { return l.settled; }),
        ns.leases.end());
  }
}

void PeerCluster::partition(std::size_t node) {
  node_state(node).partitioned.store(true, std::memory_order_release);
}

std::uint64_t PeerCluster::reconcile_step(std::size_t thread_hint,
                                          NodeState& ns) {
  // One bounded batch: settle whole debt entries until the chunk's worth
  // of escrowed tokens has been refunded. Zero-recovery entries (fully
  // spent leases) still settle — their settle_spent closes the borrow.
  const std::uint64_t budget =
      debt_reconcile(ns.debt_escrow, cfg_.reconcile_chunk);
  std::uint64_t settled = 0;
  while (!ns.debts.empty()) {
    const Debt debt = ns.debts.front();
    ns.debts.pop_front();
    const ExpiryRefund split = lease_expiry_refund(
        debt.grant.from_child, debt.grant.from_parent, debt.recovered);
    global_->settle_spent(thread_hint, debt.grant, split.refund_child,
                          split.refund_parent);
    settled += debt.recovered;
    debt_reconciled_.fetch_add(debt.recovered, std::memory_order_relaxed);
    expiry_refunded_.fetch_add(debt.recovered, std::memory_order_relaxed);
    if (settled >= budget) break;
  }
  ns.debt_escrow -= settled;
  return settled;
}

void PeerCluster::heal(std::size_t thread_hint, std::size_t node) {
  NodeState& ns = node_state(node);
  const util::MutexLock lock(ns.ledger);
  ns.partitioned.store(false, std::memory_order_release);
  while (!ns.debts.empty()) reconcile_step(thread_hint, ns);
  CNET_ENSURE(ns.debt_escrow == 0, "healed node left escrowed debt");
  // Catch up on reconfiguration commits pushed while the node was dark.
  ns.observed_version.store(global_->config_version(),
                            std::memory_order_release);
}

bool PeerCluster::is_partitioned(std::size_t node) const {
  return node_state(node).partitioned.load(std::memory_order_acquire);
}

void PeerCluster::expire_all(std::size_t thread_hint) {
  // Force every active lease's expiry to "now", then run a normal sweep.
  for (auto& ns : nodes_) {
    const util::MutexLock lock(ns->ledger);
    const std::uint64_t current = now_.load(std::memory_order_acquire);
    for (Lease& lease : ns->leases) {
      if (!lease.settled) lease.expiry = current;
    }
  }
  advance(thread_hint, now_.load(std::memory_order_acquire));
}

std::uint64_t PeerCluster::drain_local(std::size_t thread_hint,
                                       std::size_t node) {
  NodeState& ns = node_state(node);
  const std::uint64_t drained = ns.local->consume(
      thread_hint, total_initial_ + 1, svc::kPartialOk);
  ns.balance.fetch_sub(static_cast<std::int64_t>(drained),
                       std::memory_order_relaxed);
  return drained;
}

std::uint64_t PeerCluster::drain_global(std::size_t thread_hint) {
  std::uint64_t drained =
      global_->parent().consume(thread_hint, total_initial_ + 1,
                                svc::kPartialOk);
  for (std::size_t i = 0; i < global_->num_tenants(); ++i) {
    drained += global_->child(i).consume(thread_hint, total_initial_ + 1,
                                         svc::kPartialOk);
  }
  return drained;
}

svc::OverloadManager& PeerCluster::overload(std::size_t node) {
  return *node_state(node).overload;
}

void PeerCluster::evaluate_overload() {
  for (auto& ns : nodes_) ns->overload->evaluate();
}

std::int64_t PeerCluster::local_balance(std::size_t node) const {
  return node_state(node).balance.load(std::memory_order_acquire);
}

std::uint64_t PeerCluster::leased_tokens(std::size_t node) const {
  NodeState& ns = node_state(node);
  const util::MutexLock lock(ns.ledger);
  std::uint64_t total = 0;
  for (const Lease& lease : ns.leases) {
    if (!lease.settled) total += lease.grant.tokens();
  }
  return total;
}

std::uint64_t PeerCluster::active_leases(std::size_t node) const {
  NodeState& ns = node_state(node);
  const util::MutexLock lock(ns.ledger);
  std::uint64_t count = 0;
  for (const Lease& lease : ns.leases) {
    if (!lease.settled) ++count;
  }
  return count;
}

std::uint64_t PeerCluster::debt_tokens(std::size_t node) const {
  NodeState& ns = node_state(node);
  const util::MutexLock lock(ns.ledger);
  return ns.debt_escrow;
}

std::uint64_t PeerCluster::spent(std::size_t node) const {
  return node_state(node).spent.load(std::memory_order_acquire);
}

std::uint64_t PeerCluster::total_spent() const {
  std::uint64_t total = 0;
  for (const auto& ns : nodes_) {
    total += ns->spent.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t PeerCluster::observed_reweigh_version(std::size_t node) const {
  return node_state(node).observed_version.load(std::memory_order_acquire);
}

}  // namespace cnet::dist
