// Static dc/rack-aware peer map for the distributed counting tier — the
// gossip-free first cut of the dynomite datacenter → rack → node shape: the
// node set is fixed at construction, and the only question the map answers
// is "how far is peer b from node a", in the three buckets that matter for
// lease-renewal routing (same rack, same datacenter, remote). Failure and
// membership churn are not modeled here: a dead or partitioned node simply
// stops renewing and its leases expire (see dist/peer_cluster.hpp).
//
// Everything is pure and immutable after construction — no atomics, no
// time, no I/O — so the virtual-time cluster simulator walks the exact
// same map as the live PeerCluster.
#pragma once

#include <cstdint>
#include <vector>

namespace cnet::dist {

// Where a node sits. Ids are opaque labels; equality is all that matters.
struct NodeLocation {
  std::uint32_t dc = 0;
  std::uint32_t rack = 0;
};

// Distance buckets, nearest first. The renewal_target walk (dist/policy.hpp)
// tries candidates in this order.
enum class Proximity : std::uint8_t {
  kSelf = 0,
  kSameRack = 1,  // same dc, same rack
  kSameDc = 2,    // same dc, different rack
  kRemote = 3,    // different dc
};

const char* proximity_name(Proximity p) noexcept;

class Topology {
 public:
  explicit Topology(std::vector<NodeLocation> nodes);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  const NodeLocation& location(std::size_t node) const;

  Proximity proximity(std::size_t a, std::size_t b) const;

  // Peers of `node` (never `node` itself), ordered nearest-first: all
  // same-rack peers, then same-dc, then remote, index-ascending within each
  // bucket. This is the deterministic candidate order the renewal_target
  // walk consumes — precomputed at construction so the walk is one vector
  // index in both the live ledger and the simulator.
  const std::vector<std::size_t>& peers_by_proximity(std::size_t node) const;

 private:
  std::vector<NodeLocation> nodes_;
  std::vector<std::vector<std::size_t>> peer_order_;
};

}  // namespace cnet::dist
