#include "cnet/dist/topology.hpp"

#include <utility>

#include "cnet/util/ensure.hpp"

namespace cnet::dist {

const char* proximity_name(Proximity p) noexcept {
  switch (p) {
    case Proximity::kSelf: return "self";
    case Proximity::kSameRack: return "same-rack";
    case Proximity::kSameDc: return "same-dc";
    case Proximity::kRemote: return "remote";
  }
  return "?";
}

Topology::Topology(std::vector<NodeLocation> nodes)
    : nodes_(std::move(nodes)) {
  CNET_REQUIRE(!nodes_.empty(), "topology needs at least one node");
  peer_order_.resize(nodes_.size());
  for (std::size_t a = 0; a < nodes_.size(); ++a) {
    auto& order = peer_order_[a];
    order.reserve(nodes_.size() - 1);
    // Three index-ascending passes give the nearest-first bucket order
    // without a sort — determinism by construction.
    for (const Proximity bucket :
         {Proximity::kSameRack, Proximity::kSameDc, Proximity::kRemote}) {
      for (std::size_t b = 0; b < nodes_.size(); ++b) {
        if (b != a && proximity(a, b) == bucket) order.push_back(b);
      }
    }
  }
}

const NodeLocation& Topology::location(std::size_t node) const {
  CNET_REQUIRE(node < nodes_.size(), "node index out of range");
  return nodes_[node];
}

Proximity Topology::proximity(std::size_t a, std::size_t b) const {
  CNET_REQUIRE(a < nodes_.size() && b < nodes_.size(),
               "node index out of range");
  if (a == b) return Proximity::kSelf;
  const NodeLocation& la = nodes_[a];
  const NodeLocation& lb = nodes_[b];
  if (la.dc != lb.dc) return Proximity::kRemote;
  return la.rack == lb.rack ? Proximity::kSameRack : Proximity::kSameDc;
}

const std::vector<std::size_t>& Topology::peers_by_proximity(
    std::size_t node) const {
  CNET_REQUIRE(node < nodes_.size(), "node index out of range");
  return peer_order_[node];
}

}  // namespace cnet::dist
