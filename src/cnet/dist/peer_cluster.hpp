// dist::PeerCluster — the distributed counting tier's single-process
// reference implementation: N nodes, each running the existing svc stack
// locally (a NetTokenBucket admission pool plus a per-node
// OverloadManager), exchanging *token leases* against per-node lease
// accounts layered on one svc::QuotaHierarchy (node = tenant, cluster
// budget = parent pool), under a static dc/rack Topology.
//
// The shape is the ROADMAP's gossip-free first cut of the dynomite peer
// tier, built so every claim is checkable before any socket exists:
//
//   admit      data plane. Spends from the node's local pool only — never
//              a global round trip. Under the node's overload manager the
//              degrade-partial tier applies, exactly as in the single-node
//              stack.
//   renew      control plane. Tops a node's local pool up with a lease:
//              first by *donation* from the nearest peer with surplus
//              (renewal_target walk: same rack, then same dc, then
//              remote — a donated lease carries the donor's hierarchy
//              grant parts, carved child-first), falling back to a global
//              QuotaHierarchy::acquire sized by lease_grant. Renewing also
//              extends the TTL of the node's active leases (the
//              heartbeat).
//   advance    the cluster's logical clock. Failure is modeled as silence:
//              a node that stops renewing has its leases expire, and each
//              expired lease refunds its *unspent* tokens to the global
//              hierarchy exactly once (lease_expiry_refund splits the
//              refund across the quota levels; QuotaHierarchy::settle_spent
//              closes the whole borrow). The settled flag under the node's
//              ledger mutex is what makes an expiry racing a renewal
//              settle exactly once, never twice.
//   partition  blocks a node's control plane (no renewals, no donations in
//              or out, no global refunds): the node can spend only the
//              leases it already holds. Expiries while partitioned recover
//              tokens into *debt escrow* — counted, held, refunded to the
//              global pool only at heal(), which replays each entry's
//              settle_spent exactly once in debt_reconcile-bounded
//              batches.
//
// Conservation contract, checked end-to-end by test_dist_leases and
// bench_tab_dist Table G: at any quiescent point,
//   global pools + Σ local pools + Σ spent + Σ debt escrow
// equals the constructed total, and after heal + expire_all the escrow
// term is zero. All decision rules live in dist/policy.hpp, shared
// verbatim with the virtual-time mirror (sim::simulate_cluster).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cnet/dist/policy.hpp"
#include "cnet/dist/topology.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/overload.hpp"
#include "cnet/svc/quota.hpp"
#include "cnet/util/mutex.hpp"
#include "cnet/util/thread_annotations.hpp"

namespace cnet::dist {

struct ClusterConfig {
  // The global hierarchy: per-node lease accounts (children) over the
  // shared cluster budget (parent). Any backend spec for the parent —
  // the contended structure — including elim+ fronts and adaptive.
  svc::BackendSpec parent_spec{svc::BackendKind::kBatchedNetwork, false};
  svc::BackendConfig net;
  std::uint64_t parent_initial = 4096;
  std::uint64_t node_account_initial = 256;  // per-node child pool
  std::uint64_t borrow_budget = 2048;
  std::uint64_t node_weight = 1;  // uniform; reweigh via global().reweigh

  // Per-node local admission pool (the data-plane bucket leases feed).
  std::uint64_t local_initial = 0;
  std::size_t refill_chunk = 64;

  // Lease machinery — all decided through dist/policy.hpp rules.
  std::uint64_t lease_chunk = 128;  // minimum renewal grant
  std::uint64_t lease_cap = 1024;   // max tokens one lease may carry
  std::uint64_t lease_ttl = 8;      // logical-clock ticks until expiry
  std::uint64_t peer_reserve = 64;  // donor keeps this much local balance
  std::uint64_t reconcile_chunk = 256;  // debt settled per heal batch
};

class PeerCluster {
 public:
  PeerCluster(Topology topo, const ClusterConfig& cfg);
  PeerCluster(const PeerCluster&) = delete;
  PeerCluster& operator=(const PeerCluster&) = delete;

  // ------------------------------------------------------------ data plane
  // Admits `cost` tokens on `node` from its local pool only; returns the
  // tokens actually charged (0 = rejected). Under the node's overload
  // manager the degrade-partial tier turns all-or-nothing into partial,
  // with the exact charge reported — same contract as AdmissionController.
  std::uint64_t admit(std::size_t thread_hint, std::size_t node,
                      std::uint64_t cost);

  // --------------------------------------------------------- lease control
  // Extends the node's active lease TTLs to now + lease_ttl and tops its
  // local pool up by at least `want` fresh tokens (0 = one lease_chunk),
  // peer donation first, global acquire as fallback. Returns tokens
  // gained; 0 for a partitioned node (its control plane is down).
  std::uint64_t renew(std::size_t thread_hint, std::size_t node,
                      std::uint64_t want);

  // Advances the logical clock (monotone) and sweeps every node's expired
  // leases. Each expiry recovers the lease's unspent tokens from the local
  // pool and refunds them to the hierarchy via lease_expiry_refund /
  // settle_spent — or into debt escrow if the node is partitioned.
  void advance(std::size_t thread_hint, std::uint64_t now);
  std::uint64_t now() const noexcept {
    return now_.load(std::memory_order_acquire);
  }

  // -------------------------------------------------------- failure model
  void partition(std::size_t node);
  // Reopens the control plane and reconciles the node's debt escrow
  // exactly, in reconcile_chunk-bounded batches; also catches the node up
  // on reconfiguration commits it missed while partitioned.
  void heal(std::size_t thread_hint, std::size_t node);
  bool is_partitioned(std::size_t node) const;

  // --------------------------------------- end-of-run settlement (tests)
  // Force-expires every active lease at the current instant (partitioned
  // nodes accrue debt as usual — heal first for a clean ledger).
  void expire_all(std::size_t thread_hint);
  // Drains what's left of a node's local pool / the whole global
  // hierarchy, for the conservation ledger. Destructive; not data-plane
  // spend (does not count toward spent()).
  std::uint64_t drain_local(std::size_t thread_hint, std::size_t node);
  std::uint64_t drain_global(std::size_t thread_hint);

  // ------------------------------------------------------- observability
  svc::QuotaHierarchy& global() noexcept { return *global_; }
  svc::OverloadManager& overload(std::size_t node);
  const Topology& topology() const noexcept { return topo_; }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }

  // Samples every node's overload manager (pull-based, like the single-node
  // control loop — call from a maintenance tick).
  void evaluate_overload();

  std::int64_t local_balance(std::size_t node) const;   // advisory ledger
  std::uint64_t leased_tokens(std::size_t node) const;  // active lease parts
  std::uint64_t active_leases(std::size_t node) const;
  std::uint64_t debt_tokens(std::size_t node) const;    // escrow outstanding
  std::uint64_t spent(std::size_t node) const;
  std::uint64_t total_spent() const;
  std::uint64_t total_initial_tokens() const noexcept { return total_initial_; }

  // Lifetime counters for the Table G invariants.
  std::uint64_t renewals() const noexcept { return renewals_.load(); }
  std::uint64_t donations() const noexcept { return donations_.load(); }
  std::uint64_t donated_tokens() const noexcept {
    return donated_tokens_.load();
  }
  std::uint64_t expiries() const noexcept { return expiries_.load(); }
  std::uint64_t expiry_recovered() const noexcept {
    return expiry_recovered_.load();
  }
  std::uint64_t expiry_refunded() const noexcept {
    return expiry_refunded_.load();
  }
  std::uint64_t debt_created() const noexcept { return debt_created_.load(); }
  std::uint64_t debt_reconciled() const noexcept {
    return debt_reconciled_.load();
  }

  // The reweigh commit version this node has *observed* — pushed by the
  // hierarchy's subscribe callback (no polling), except while partitioned
  // (a partitioned node misses pushes and catches up at heal()).
  std::uint64_t observed_reweigh_version(std::size_t node) const;

 private:
  struct Lease {
    svc::QuotaHierarchy::Grant grant;  // tenant = the account it settles to
    std::uint64_t expiry = 0;
    bool settled = false;
  };
  struct Debt {
    svc::QuotaHierarchy::Grant grant;
    std::uint64_t recovered = 0;  // escrowed tokens awaiting the refund
  };
  struct NodeState {
    std::unique_ptr<svc::NetTokenBucket> local;
    std::unique_ptr<svc::OverloadManager> overload;
    // The lease/debt ledger mutex. Everything the exactly-once settlement
    // argument rests on — the settled flags, the escrowed debts, the
    // escrow balance — is annotated against it, so "discipline in prose"
    // is now a compile error under -Wthread-safety.
    mutable util::Mutex ledger;
    std::vector<Lease> leases CNET_GUARDED_BY(ledger);
    std::deque<Debt> debts CNET_GUARDED_BY(ledger);
    std::uint64_t debt_escrow CNET_GUARDED_BY(ledger) = 0;
    std::atomic<bool> partitioned{false};
    std::atomic<std::int64_t> balance{0};  // advisory local-pool ledger
    std::atomic<std::uint64_t> spent{0};
    std::atomic<std::uint64_t> observed_version{1};
  };

  NodeState& node_state(std::size_t node) const;
  // Settles one lease against the hierarchy. The caller holds ns's ledger
  // lock and has already marked the lease settled and recovered the
  // tokens — enforced, not assumed: ns is passed for the capability.
  void refund_expired(std::size_t thread_hint, NodeState& ns,
                      const Lease& lease, std::uint64_t recovered)
      CNET_REQUIRES(ns.ledger);
  // One bounded batch of debt reconciliation; returns tokens settled.
  std::uint64_t reconcile_step(std::size_t thread_hint, NodeState& ns)
      CNET_REQUIRES(ns.ledger);
  std::uint64_t donate(std::size_t thread_hint, std::size_t donor,
                       std::size_t to, std::uint64_t want);

  Topology topo_;
  ClusterConfig cfg_;
  std::unique_ptr<svc::QuotaHierarchy> global_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::atomic<std::uint64_t> now_{0};
  std::uint64_t total_initial_ = 0;

  std::atomic<std::uint64_t> renewals_{0};
  std::atomic<std::uint64_t> donations_{0};
  std::atomic<std::uint64_t> donated_tokens_{0};
  std::atomic<std::uint64_t> expiries_{0};
  std::atomic<std::uint64_t> expiry_recovered_{0};
  std::atomic<std::uint64_t> expiry_refunded_{0};
  std::atomic<std::uint64_t> debt_created_{0};
  std::atomic<std::uint64_t> debt_reconciled_{0};
};

}  // namespace cnet::dist
