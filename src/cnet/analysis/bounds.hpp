// Closed-form bounds and identities from the paper (and the cited
// analyses), in one place so benches, tests and downstream users compute
// them consistently.
//
// All widths are exact powers of two where the respective construction
// requires it; functions validate their domains.
#pragma once

#include <cstddef>

namespace cnet::analysis {

// Theorem 4.1: depth(C(w,t)) = (lg²w + lgw)/2 — also the bitonic depth.
std::size_t counting_depth(std::size_t w);

// Periodic network depth: lg²w (AHS §4).
std::size_t periodic_depth(std::size_t w);

// Lemma 3.1: depth(M(t,δ)) = lg δ.
std::size_t merging_depth(std::size_t delta);

// Balancer counts.
std::size_t counting_balancers(std::size_t w, std::size_t t);   // C(w,t)
std::size_t bitonic_balancers(std::size_t w);                   // = C(w,w)
std::size_t periodic_balancers(std::size_t w);
std::size_t merging_balancers(std::size_t t, std::size_t delta);

// Lemma 6.6: smoothness bound s = ⌊w·lgw/t⌋ + 2 of the prefix N_a,b.
std::size_t prefix_smoothness(std::size_t w, std::size_t t);

// Corollary 6.4: amortized layer-contention bound q·n/W + q·(k+1) for a
// layer of output width W built from balancers of fanout <= q whose input
// is k-smooth.
double layer_contention_bound(std::size_t q, std::size_t n, std::size_t W,
                              std::size_t k);

// Theorem 6.7: cont(C(w,t), n) < 4n·lgw/w + n·lg²w/t + w·lg³w/t
//              + 4lg²w + lgw.
double counting_contention_bound(std::size_t w, std::size_t t,
                                 std::size_t n);

// Dwork–Herlihy–Waarts: bitonic amortized contention Θ(n·lg²w/w); we
// return the leading term n·lg²w/w (constant 1) for shape comparisons.
double bitonic_contention_leading(std::size_t w, std::size_t n);

// Periodic amortized contention leading term n·lg³w/w.
double periodic_contention_leading(std::size_t w, std::size_t n);

}  // namespace cnet::analysis
