#include "cnet/analysis/bounds.hpp"

#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::analysis {

namespace {

std::size_t require_pow2(std::size_t w, const char* what) {
  CNET_REQUIRE(w >= 2 && util::is_pow2(w), what);
  return util::ilog2(w);
}

}  // namespace

std::size_t counting_depth(std::size_t w) {
  const std::size_t k = require_pow2(w, "width must be a power of two >= 2");
  return (k * k + k) / 2;
}

std::size_t periodic_depth(std::size_t w) {
  const std::size_t k = require_pow2(w, "width must be a power of two >= 2");
  return k * k;
}

std::size_t merging_depth(std::size_t delta) {
  return require_pow2(delta, "delta must be a power of two >= 2");
}

std::size_t counting_balancers(std::size_t w, std::size_t t) {
  const std::size_t k = require_pow2(w, "width must be a power of two >= 2");
  CNET_REQUIRE(t >= w && t % w == 0, "t must be a positive multiple of w");
  // N_a: (k-1)·w/2, N_b: w/2, N_c: ((k²-k)/2)·(t/2)  (see block census).
  return (k - 1) * w / 2 + w / 2 + (k * k - k) / 2 * (t / 2);
}

std::size_t bitonic_balancers(std::size_t w) {
  // (lg²w+lgw)/2 layers of w/2 balancers.
  return counting_depth(w) * w / 2;
}

std::size_t periodic_balancers(std::size_t w) {
  return periodic_depth(w) * w / 2;
}

std::size_t merging_balancers(std::size_t t, std::size_t delta) {
  CNET_REQUIRE(t >= 2 && t % 2 == 0, "t must be even");
  return merging_depth(delta) * t / 2;
}

std::size_t prefix_smoothness(std::size_t w, std::size_t t) {
  const std::size_t k = require_pow2(w, "width must be a power of two >= 2");
  CNET_REQUIRE(t >= w && t % w == 0, "t must be a positive multiple of w");
  return (w * k) / t + 2;
}

double layer_contention_bound(std::size_t q, std::size_t n, std::size_t W,
                              std::size_t k) {
  CNET_REQUIRE(q >= 1 && W >= 1, "bad layer shape");
  return static_cast<double>(q) * static_cast<double>(n) /
             static_cast<double>(W) +
         static_cast<double>(q) * static_cast<double>(k + 1);
}

double counting_contention_bound(std::size_t w, std::size_t t,
                                 std::size_t n) {
  const std::size_t k = require_pow2(w, "width must be a power of two >= 2");
  CNET_REQUIRE(t >= w && t % w == 0, "t must be a positive multiple of w");
  const auto lgw = static_cast<double>(k);
  const auto wd = static_cast<double>(w);
  const auto td = static_cast<double>(t);
  const auto nd = static_cast<double>(n);
  return 4.0 * nd * lgw / wd + nd * lgw * lgw / td +
         wd * lgw * lgw * lgw / td + 4.0 * lgw * lgw + lgw;
}

double bitonic_contention_leading(std::size_t w, std::size_t n) {
  const auto lgw = static_cast<double>(
      require_pow2(w, "width must be a power of two >= 2"));
  return static_cast<double>(n) * lgw * lgw / static_cast<double>(w);
}

double periodic_contention_leading(std::size_t w, std::size_t n) {
  const auto lgw = static_cast<double>(
      require_pow2(w, "width must be a power of two >= 2"));
  return static_cast<double>(n) * lgw * lgw * lgw / static_cast<double>(w);
}

}  // namespace cnet::analysis
