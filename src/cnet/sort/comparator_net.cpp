#include "cnet/sort/comparator_net.hpp"

#include <algorithm>
#include <numeric>

#include "cnet/util/prng.hpp"

namespace cnet::sort {

ComparatorSchedule schedule_from_topology(const topo::Topology& net) {
  CNET_REQUIRE(net.width_in() == net.width_out(),
               "comparator networks need equal input/output width");
  ComparatorSchedule s;
  s.lanes = net.width_in();
  s.depth = net.depth();
  s.comparators.reserve(net.num_balancers());

  // lane_of[wire] — assigned as wires are produced, in topological order.
  std::vector<std::uint32_t> lane_of(net.num_wires(),
                                     ~static_cast<std::uint32_t>(0));
  for (std::uint32_t i = 0; i < net.width_in(); ++i) {
    lane_of[net.input_wires()[i].value] = i;
  }
  for (std::uint32_t b = 0; b < net.num_balancers(); ++b) {
    const auto& bal = net.balancer(topo::BalancerId{b});
    CNET_REQUIRE(bal.fan_in() == 2 && bal.fan_out() == 2,
                 "comparator substitution needs (2,2)-balancers only");
    const std::uint32_t top = lane_of[bal.inputs[0].value];
    const std::uint32_t bottom = lane_of[bal.inputs[1].value];
    CNET_ENSURE(top != ~0u && bottom != ~0u, "unassigned input lane");
    // Balancer output port 0 is the "upper" wire: excess tokens (and hence
    // the larger value) go there.
    s.comparators.push_back({top, bottom});
    lane_of[bal.outputs[0].value] = top;
    lane_of[bal.outputs[1].value] = bottom;
  }
  s.output_perm.reserve(net.width_out());
  for (const topo::WireId out : net.output_wires()) {
    CNET_ENSURE(lane_of[out.value] != ~0u, "unassigned output lane");
    s.output_perm.push_back(lane_of[out.value]);
  }
  // The output map must be a permutation of the lanes.
  std::vector<std::uint32_t> check = s.output_perm;
  std::sort(check.begin(), check.end());
  for (std::uint32_t i = 0; i < check.size(); ++i) {
    CNET_ENSURE(check[i] == i, "output lanes are not a permutation");
  }
  return s;
}

namespace {

bool is_descending(std::span<const int> v) {
  return std::is_sorted(v.begin(), v.end(), std::greater<>());
}

}  // namespace

bool sorts_all_01(const ComparatorSchedule& s) {
  CNET_REQUIRE(s.lanes <= 22, "0-1 exhaustion limited to 22 lanes");
  const std::size_t limit = std::size_t{1} << s.lanes;
  for (std::size_t mask = 0; mask < limit; ++mask) {
    std::vector<int> v(s.lanes);
    for (std::size_t i = 0; i < s.lanes; ++i) {
      v[i] = (mask >> i) & 1u ? 1 : 0;
    }
    if (!is_descending(apply(s, std::move(v)))) return false;
  }
  return true;
}

bool sorts_random(const ComparatorSchedule& s, std::size_t trials,
                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<int> v(s.lanes);
    std::iota(v.begin(), v.end(), 0);
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng.below(i)]);
    }
    if (!is_descending(apply(s, std::move(v)))) return false;
  }
  return true;
}

}  // namespace cnet::sort
