// Batcher's bitonic sorting network (Batcher, AFIPS'68) as a
// ComparatorSchedule — the classical depth-(lg²w+lgw)/2 sorter we compare
// the C(w,w)-derived sorter against (paper §7 makes the connection: the
// bitonic *counting* network is the balancing analogue of this sorter).
#pragma once

#include "cnet/sort/comparator_net.hpp"

namespace cnet::sort {

// Descending bitonic sorter for w = 2^k lanes (identity output permutation).
ComparatorSchedule make_batcher_bitonic(std::size_t w);

}  // namespace cnet::sort
