// Comparator networks from balancing networks (paper §7).
//
// Replacing every (2,2)-balancer of a regular balancing network by a
// comparator (max on the top output, min on the bottom — mirroring "excess
// tokens emerge on the upper wires") yields a comparator network, and if
// the balancing network counts, the comparator network sorts [AHS'94].
// Hence C(w,w) gives a novel O(lg²w)-depth sorting network (descending).
//
// A Topology is lowered to a flat ComparatorSchedule: input wire i starts
// on lane i, each balancer compares its two lanes in place, and the output
// permutation says which lane ends up at each output position.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cnet/topology/topology.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::sort {

struct Comparator {
  std::uint32_t max_lane = 0;  // receives the larger value
  std::uint32_t min_lane = 0;  // receives the smaller value
};

struct ComparatorSchedule {
  std::size_t lanes = 0;
  std::size_t depth = 0;  // number of comparator layers
  std::vector<Comparator> comparators;    // in topological order
  std::vector<std::uint32_t> output_perm; // output position -> lane
};

// Lowers a regular, (2,2)-balancer-only topology. Throws on any other shape.
ComparatorSchedule schedule_from_topology(const topo::Topology& net);

// Runs the comparators in place over `lanes` values (no output permutation).
template <class T>
void apply_in_place(const ComparatorSchedule& s, std::span<T> values) {
  CNET_REQUIRE(values.size() == s.lanes, "value count != lane count");
  for (const Comparator& c : s.comparators) {
    T& hi = values[c.max_lane];
    T& lo = values[c.min_lane];
    if (hi < lo) std::swap(hi, lo);
  }
}

// Full application including the output permutation.
template <class T>
std::vector<T> apply(const ComparatorSchedule& s, std::vector<T> values) {
  apply_in_place(s, std::span<T>(values));
  std::vector<T> out;
  out.reserve(values.size());
  for (const std::uint32_t lane : s.output_perm) {
    out.push_back(values[lane]);
  }
  return out;
}

// 0-1 principle check: the schedule sorts every input iff it sorts all 2^w
// 0-1 inputs into descending order. Exhaustive; use only for lanes <= ~22.
bool sorts_all_01(const ComparatorSchedule& s);

// Spot check on random permutations (for widths too large for 0-1
// exhaustion); returns true when all trials come out descending.
bool sorts_random(const ComparatorSchedule& s, std::size_t trials,
                  std::uint64_t seed);

}  // namespace cnet::sort
