#include "cnet/sort/batcher.hpp"

#include <numeric>

#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::sort {

ComparatorSchedule make_batcher_bitonic(std::size_t w) {
  CNET_REQUIRE(w >= 2 && util::is_pow2(w),
               "bitonic sorter width must be a power of two >= 2");
  ComparatorSchedule s;
  s.lanes = w;
  s.output_perm.resize(w);
  std::iota(s.output_perm.begin(), s.output_perm.end(), 0);
  // Standard bitonic stages, with directions flipped so the result is
  // descending (to match the balancing-network convention of excess on
  // upper wires).
  for (std::size_t k = 2; k <= w; k *= 2) {
    for (std::size_t j = k / 2; j > 0; j /= 2) {
      ++s.depth;
      for (std::size_t i = 0; i < w; ++i) {
        const std::size_t l = i ^ j;
        if (l <= i) continue;
        if ((i & k) == 0) {
          // descending pair: larger value to the lower index
          s.comparators.push_back({static_cast<std::uint32_t>(i),
                                   static_cast<std::uint32_t>(l)});
        } else {
          s.comparators.push_back({static_cast<std::uint32_t>(l),
                                   static_cast<std::uint32_t>(i)});
        }
      }
    }
  }
  return s;
}

}  // namespace cnet::sort
