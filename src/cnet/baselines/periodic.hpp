// The periodic counting network of Aspnes, Herlihy & Shavit (JACM'94, §4):
// lg w cascaded copies of the Block[w] network. Width w = 2^k, depth lg²w,
// amortized contention O(n·lg³w / w) [Dwork-Herlihy-Waarts §3.4]. The
// paper's second regular baseline (§1.3.1).
#pragma once

#include <span>
#include <vector>

#include "cnet/topology/topology.hpp"

namespace cnet::baselines {

// Wires one Block[w] onto `in` (w a power of two >= 1).
std::vector<topo::WireId> wire_block(topo::Builder& builder,
                                     std::span<const topo::WireId> in);

// Standalone Block[w] (depth lg w).
topo::Topology make_block(std::size_t w);

// The periodic network: lg w cascaded blocks (depth lg²w).
topo::Topology make_periodic(std::size_t w);

}  // namespace cnet::baselines
