// Diffracting-tree topology (Shavit & Zemach, TOCS'96) — the irregular
// baseline discussed in paper §1.4.1: a binary tree of (1,2)-balancers with
// 1 input wire, w output wires and depth lg w. Its amortized contention is
// Θ(n) (an adversary can pile every token onto the root), which is what the
// paper contrasts with C(w,t)'s bounds.
//
// Output wires are ordered so that the quiescent output sequence satisfies
// the step property: token number i (0-based) reaches leaf bitrev(i mod w),
// so leaves are emitted in bit-reversed path order.
#pragma once

#include "cnet/topology/topology.hpp"

namespace cnet::baselines {

// Builds the (1,2)-balancer tree with w = 2^k leaves (k >= 1). The network
// has a single input wire.
topo::Topology make_diffracting_tree(std::size_t w);

}  // namespace cnet::baselines
