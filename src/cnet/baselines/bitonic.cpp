#include "cnet/baselines/bitonic.hpp"

#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::baselines {

using topo::WireId;

namespace {

std::vector<WireId> evens(std::span<const WireId> v) {
  std::vector<WireId> out;
  out.reserve((v.size() + 1) / 2);
  for (std::size_t i = 0; i < v.size(); i += 2) out.push_back(v[i]);
  return out;
}

std::vector<WireId> odds(std::span<const WireId> v) {
  std::vector<WireId> out;
  out.reserve(v.size() / 2);
  for (std::size_t i = 1; i < v.size(); i += 2) out.push_back(v[i]);
  return out;
}

}  // namespace

std::vector<WireId> wire_bitonic_merger(topo::Builder& builder,
                                        std::span<const WireId> x,
                                        std::span<const WireId> y) {
  CNET_REQUIRE(x.size() == y.size(), "merger halves must have equal width");
  CNET_REQUIRE(util::is_pow2(x.size()), "merger width must be a power of two");
  const std::size_t k = x.size();
  if (k == 1) {
    const auto [top, bottom] = builder.add_balancer2(x[0], y[0]);
    return {top, bottom};
  }
  // AHS: merger A gets x's evens and y's odds; merger B gets x's odds and
  // y's evens; a final layer of balancers combines A_i and B_i.
  const auto a = wire_bitonic_merger(builder, evens(x), odds(y));
  const auto b = wire_bitonic_merger(builder, odds(x), evens(y));
  std::vector<WireId> z(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto [top, bottom] = builder.add_balancer2(a[i], b[i]);
    z[2 * i] = top;
    z[2 * i + 1] = bottom;
  }
  return z;
}

std::vector<WireId> wire_bitonic(topo::Builder& builder,
                                 std::span<const WireId> in) {
  const std::size_t w = in.size();
  CNET_REQUIRE(w >= 1 && util::is_pow2(w),
               "bitonic width must be a power of two");
  if (w == 1) return {in[0]};
  const auto top = wire_bitonic(builder, in.subspan(0, w / 2));
  const auto bottom = wire_bitonic(builder, in.subspan(w / 2));
  return wire_bitonic_merger(builder, top, bottom);
}

topo::Topology make_bitonic(std::size_t w) {
  CNET_REQUIRE(w >= 2 && util::is_pow2(w),
               "bitonic width must be a power of two >= 2");
  topo::Builder b;
  const auto in = b.add_network_inputs(w);
  b.set_outputs(wire_bitonic(b, in));
  return std::move(b).build();
}

topo::Topology make_bitonic_merger(std::size_t width) {
  CNET_REQUIRE(width >= 2 && width % 2 == 0 && util::is_pow2(width),
               "merger width must be an even power of two");
  topo::Builder b;
  const auto in = b.add_network_inputs(width);
  const std::span<const WireId> all(in);
  b.set_outputs(wire_bitonic_merger(b, all.subspan(0, width / 2),
                                    all.subspan(width / 2)));
  return std::move(b).build();
}

}  // namespace cnet::baselines
