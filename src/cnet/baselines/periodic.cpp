#include "cnet/baselines/periodic.hpp"

#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::baselines {

using topo::WireId;

std::vector<WireId> wire_block(topo::Builder& builder,
                               std::span<const WireId> in) {
  const std::size_t w = in.size();
  CNET_REQUIRE(w >= 1 && util::is_pow2(w),
               "block width must be a power of two");
  if (w == 1) return {in[0]};
  // The balanced block of Dowd–Perl–Rudolph–Saks, which AHS's Block[w]
  // realizes: a "mirror" layer pairing wire i with wire w-1-i, followed by
  // two recursive blocks on the top and bottom halves.
  std::vector<WireId> mirrored(w);
  for (std::size_t i = 0; i < w / 2; ++i) {
    const auto [top, bottom] = builder.add_balancer2(in[i], in[w - 1 - i]);
    mirrored[i] = top;
    mirrored[w - 1 - i] = bottom;
  }
  const std::span<const WireId> m(mirrored);
  auto top_half = wire_block(builder, m.subspan(0, w / 2));
  const auto bottom_half = wire_block(builder, m.subspan(w / 2));
  top_half.insert(top_half.end(), bottom_half.begin(), bottom_half.end());
  return top_half;
}

topo::Topology make_block(std::size_t w) {
  CNET_REQUIRE(w >= 2 && util::is_pow2(w),
               "block width must be a power of two >= 2");
  topo::Builder b;
  const auto in = b.add_network_inputs(w);
  b.set_outputs(wire_block(b, in));
  return std::move(b).build();
}

topo::Topology make_periodic(std::size_t w) {
  CNET_REQUIRE(w >= 2 && util::is_pow2(w),
               "periodic width must be a power of two >= 2");
  topo::Builder b;
  std::vector<WireId> wires = b.add_network_inputs(w);
  const std::size_t rounds = util::ilog2(w);
  for (std::size_t r = 0; r < rounds; ++r) {
    wires = wire_block(b, wires);
  }
  b.set_outputs(wires);
  return std::move(b).build();
}

}  // namespace cnet::baselines
