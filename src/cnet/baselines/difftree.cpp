#include "cnet/baselines/difftree.hpp"

#include <span>

#include "cnet/util/bitops.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::baselines {

using topo::WireId;

topo::Topology make_diffracting_tree(std::size_t w) {
  CNET_REQUIRE(w >= 2 && util::is_pow2(w),
               "diffracting tree needs w = 2^k >= 2 leaves");
  topo::Builder b;
  const WireId root = b.add_network_input();

  // Recursive lambda: splits `wire` through `levels` more tree levels and
  // returns the leaf wires in step order (token i mod 2^levels lands on
  // returned leaf i, which is bit-reversed path order).
  auto rec = [&b](auto&& self, WireId wire,
                  std::size_t levels) -> std::vector<WireId> {
    if (levels == 0) return {wire};
    const WireId in[1] = {wire};
    const auto out = b.add_balancer(in, 2);
    const auto top = self(self, out[0], levels - 1);
    const auto bottom = self(self, out[1], levels - 1);
    // Token i mod 2 == 0 goes to the top subtree, == 1 to the bottom; the
    // interleaving makes the concatenated leaf sequence step.
    std::vector<WireId> leaves;
    leaves.reserve(top.size() * 2);
    for (std::size_t i = 0; i < top.size(); ++i) {
      leaves.push_back(top[i]);
      leaves.push_back(bottom[i]);
    }
    return leaves;
  };
  const auto leaves = rec(rec, root, util::ilog2(w));
  b.set_outputs(leaves);
  return std::move(b).build();
}

}  // namespace cnet::baselines
