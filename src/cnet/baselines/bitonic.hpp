// The bitonic counting network of Aspnes, Herlihy & Shavit (JACM'94, §3) —
// the paper's principal regular baseline (§1.3). Width w = 2^k, built from
// (2,2)-balancers, depth (lg²w + lgw)/2, amortized contention
// Θ(n·lg²w / w) [Dwork-Herlihy-Waarts §3.2].
#pragma once

#include <span>
#include <vector>

#include "cnet/topology/topology.hpp"

namespace cnet::baselines {

// Wires the bitonic Merger[2k] onto two width-k step inputs; returns 2k
// output wires.
std::vector<topo::WireId> wire_bitonic_merger(
    topo::Builder& builder, std::span<const topo::WireId> x,
    std::span<const topo::WireId> y);

// Wires Bitonic[w] onto `in` (w a power of two >= 1).
std::vector<topo::WireId> wire_bitonic(topo::Builder& builder,
                                       std::span<const topo::WireId> in);

// Standalone networks.
topo::Topology make_bitonic(std::size_t w);
topo::Topology make_bitonic_merger(std::size_t width);  // width = 2k

}  // namespace cnet::baselines
