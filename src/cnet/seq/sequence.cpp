#include "cnet/seq/sequence.hpp"

#include <algorithm>

#include "cnet/util/ensure.hpp"

namespace cnet::seq {

Value sum(std::span<const Value> x) noexcept {
  Value s = 0;
  for (const Value v : x) s += v;
  return s;
}

Value smoothness(std::span<const Value> x) noexcept {
  if (x.size() < 2) return 0;
  const auto [lo, hi] = std::minmax_element(x.begin(), x.end());
  return *hi - *lo;
}

bool is_step(std::span<const Value> x) noexcept {
  // Equivalent to the pairwise definition: the sequence is non-increasing
  // and max - min <= 1.
  for (std::size_t i = 1; i < x.size(); ++i) {
    const Value d = x[i - 1] - x[i];
    if (d < 0 || d > 1) return false;
  }
  return x.empty() || x.front() - x.back() <= 1;
}

bool is_k_smooth(std::span<const Value> x, Value k) noexcept {
  return smoothness(x) <= k;
}

std::size_t step_point(std::span<const Value> x) {
  CNET_REQUIRE(!x.empty(), "step point of empty sequence");
  CNET_REQUIRE(is_step(x), "step point requires a step sequence");
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] < x[i - 1]) return i;
  }
  return x.size();
}

Sequence make_step(std::size_t w, Value total) {
  CNET_REQUIRE(w >= 1, "width must be positive");
  CNET_REQUIRE(total >= 0, "token count must be nonnegative");
  Sequence x(w);
  const auto width = static_cast<Value>(w);
  for (std::size_t i = 0; i < w; ++i) {
    // ceil((total - i)/w) for total >= 0, 0 <= i < w.
    const Value numer = total - static_cast<Value>(i);
    x[i] = numer <= 0 ? 0 : (numer + width - 1) / width;
  }
  return x;
}

Sequence even_subseq(std::span<const Value> x) {
  Sequence out;
  out.reserve((x.size() + 1) / 2);
  for (std::size_t i = 0; i < x.size(); i += 2) out.push_back(x[i]);
  return out;
}

Sequence odd_subseq(std::span<const Value> x) {
  Sequence out;
  out.reserve(x.size() / 2);
  for (std::size_t i = 1; i < x.size(); i += 2) out.push_back(x[i]);
  return out;
}

Sequence first_half(std::span<const Value> x) {
  CNET_REQUIRE(x.size() % 2 == 0, "half of odd-length sequence");
  return Sequence(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(x.size() / 2));
}

Sequence second_half(std::span<const Value> x) {
  CNET_REQUIRE(x.size() % 2 == 0, "half of odd-length sequence");
  return Sequence(x.begin() + static_cast<std::ptrdiff_t>(x.size() / 2), x.end());
}

Sequence balancer_output(Value total, std::size_t q,
                         std::size_t initial_state) {
  CNET_REQUIRE(total >= 0, "token count must be nonnegative");
  CNET_REQUIRE(q >= 1, "balancer fanout must be positive");
  CNET_REQUIRE(initial_state < q, "initial state must be a valid output wire");
  Sequence y(q, 0);
  const auto qv = static_cast<Value>(q);
  const Value base = total / qv;
  const Value rem = total % qv;
  // The first `rem` wires in rotation order starting at initial_state get
  // one extra token.
  for (std::size_t i = 0; i < q; ++i) {
    const auto offset = static_cast<Value>((i + q - initial_state) % q);
    y[i] = base + (offset < rem ? 1 : 0);
  }
  return y;
}

namespace {

// Ceiling division for positive divisor and any dividend.
seq::Value ceil_div_signed(seq::Value a, seq::Value b) {
  return a / b + (a % b > 0 ? 1 : 0);
}

}  // namespace

Sequence balancer_output_net(Value total, std::size_t q,
                             std::size_t initial_state) {
  CNET_REQUIRE(q >= 1, "balancer fanout must be positive");
  CNET_REQUIRE(initial_state < q, "initial state must be a valid output wire");
  Sequence y(q);
  const auto qv = static_cast<Value>(q);
  for (std::size_t i = 0; i < q; ++i) {
    const auto off = static_cast<Value>((i + q - initial_state) % q);
    y[i] = ceil_div_signed(total - off, qv);
  }
  return y;
}

}  // namespace cnet::seq
