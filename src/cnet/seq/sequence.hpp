// Integer-sequence toolkit (paper §2.1).
//
// Token distributions across wires are integer sequences x(w). The paper's
// analysis rests on two structural properties:
//   * step property (Def. §2.1): 0 <= x_i - x_j <= 1 for all i < j;
//   * k-smooth property: |x_i - x_j| <= k for all i, j.
// This module provides predicates, constructors and the even/odd/half
// decompositions used by the recursive network constructions, together with
// the closed forms of Eq. (1) and the balancer output rule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cnet::seq {

using Value = std::int64_t;
using Sequence = std::vector<Value>;

// Sum of all elements.
Value sum(std::span<const Value> x) noexcept;

// Max - min; 0 for empty or singleton sequences.
Value smoothness(std::span<const Value> x) noexcept;

// Step property: 0 <= x_i - x_j <= 1 for every i < j.
bool is_step(std::span<const Value> x) noexcept;

// k-smooth property: |x_i - x_j| <= k for all i, j.
bool is_k_smooth(std::span<const Value> x, Value k) noexcept;

// Step point of a step sequence (paper §2.1): the unique index i with
// x_i < x_{i-1}, or w if all elements are equal. Requires is_step(x) and a
// nonempty sequence.
std::size_t step_point(std::span<const Value> x);

// The unique step sequence of length w with the given sum (Eq. (1)):
// x_i = ceil((total - i) / w). Requires w >= 1 and total >= 0.
Sequence make_step(std::size_t w, Value total);

// Even-index / odd-index subsequences (x_0,x_2,... and x_1,x_3,...).
Sequence even_subseq(std::span<const Value> x);
Sequence odd_subseq(std::span<const Value> x);

// First/second half; require even length.
Sequence first_half(std::span<const Value> x);
Sequence second_half(std::span<const Value> x);

// Output of a (p,q)-balancer that has processed `total` tokens starting
// from `initial_state` (the output wire the next token would leave on):
// output wire i receives |{ j in [0,total) : (initial_state + j) mod q == i }|.
// With initial_state == 0 this is the step sequence of Eq. (1).
Sequence balancer_output(Value total, std::size_t q,
                         std::size_t initial_state = 0);

// Net balancer output for a possibly negative token balance (tokens minus
// antitokens; Aiello et al., "Supporting increment and decrement operations
// in balancing networks"). An antitoken reverses one balancer transition:
// it moves the state back by one and exits on the wire it lands on. The net
// count on output wire i is ceil((total - off_i)/q) with
// off_i = (i - initial_state) mod q — Eq. (1) extended to negative totals.
// Equals balancer_output when total >= 0.
Sequence balancer_output_net(Value total, std::size_t q,
                             std::size_t initial_state = 0);

}  // namespace cnet::seq
