// An envoy-style token-bucket rate limiter (consume(k, ConsumeOptions), cf.
// envoy/common/token_bucket.h) whose token pool is a shared counter:
// increments refill the pool, bounded antitoken decrements consume it. With
// a counting-network backend the admission decisions spread across the
// network's wires and exit cells instead of serializing on one atomic, and
// refills ride the batched traversal path.
//
// The never-over-admit guarantee is local to the backend: Counter::
// try_fetch_decrement only succeeds against a specific prior increment
// (central backends bound one value at zero; network backends bound each
// exit cell at its floor, sweeping the other cells when the antitoken's
// exit wire is drained), so at every moment the number of tokens handed
// out by consume() is at most the number pushed in by refill(), and a
// failed consume means the pool was observably empty.
//
// The pool configuration is hot-reconfigurable (svc::ReconfigEngine): a
// respec() stages a whole replacement — new backend spec, new network
// shape, new refill chunk — and commits it mid-traffic with the remaining
// pool count migrated exactly into the new backend. This is what finally
// lets the overload manager's batch_divisor reach a backend's own batch
// size instead of stopping at per-call chunk arithmetic: a re-spec under
// tier >= 1 bakes the divided chunk into the published configuration.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cnet/runtime/counter.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/svc/reconfig.hpp"
#include "cnet/util/stall_slots.hpp"

namespace cnet::svc {

class OverloadManager;

class NetTokenBucket : public Reconfigurable {
 public:
  struct Config {
    std::uint64_t initial_tokens = 0;
    // Tokens pushed per backend batch call during refill (1..256).
    std::size_t refill_chunk = 64;
  };

  // A staged pool replacement: the backend to build, its network shape,
  // and the refill chunking the new configuration adopts. Validated by the
  // pure respec_safe rule before anything is constructed.
  struct Respec {
    BackendSpec spec{BackendKind::kBatchedNetwork, false};
    BackendConfig net;
    std::size_t refill_chunk = 64;
  };

  // Takes ownership of the pool counter. The backend must support
  // try_fetch_decrement (central and network counters do); on one that
  // does not, consume() always reports an empty pool.
  NetTokenBucket(std::unique_ptr<rt::Counter> pool, Config cfg);
  explicit NetTokenBucket(std::unique_ptr<rt::Counter> pool);

  // Takes up to `tokens` from the pool and returns how many were actually
  // consumed. With opts.partial_ok, a short pool yields a partial grab
  // (possibly 0); without, the call is all-or-nothing — on shortfall the
  // partial grab is returned to the pool and 0 is reported. A failed
  // single-token consume means the pool was observably empty; multi-token
  // all-or-nothing grabs are not atomic (grab then refund), so concurrent
  // callers racing for the last tokens can mutually false-reject even
  // when the pool briefly held enough for one of them.
  //
  // tokens == 0 is a defined, trivially successful no-op returning 0 on
  // every backend: the pool is never touched and the call must not be
  // read as a rejection (the bucket_consume plan pins the same contract).
  std::uint64_t consume(std::size_t thread_hint, std::uint64_t tokens,
                        ConsumeOptions opts = kAllOrNothing);
  [[deprecated("pass svc::ConsumeOptions (kPartialOk / kAllOrNothing)")]]
  std::uint64_t consume(std::size_t thread_hint, std::uint64_t tokens,
                        bool allow_partial) {
    return consume(thread_hint, tokens, ConsumeOptions{allow_partial});
  }

  // Adds `tokens` to the pool via the backend's batched increment path.
  void refill(std::size_t thread_hint, std::uint64_t tokens);

  // Returns previously consumed tokens to the pool. Count-wise identical
  // to refill(), but routed through Counter::refund_n so give-backs — the
  // all-or-nothing shortfall un-consume above, or a QuotaHierarchy release
  // — are never charged to an adaptive backend's load probe as organic
  // refill traffic.
  void refund(std::size_t thread_hint, std::uint64_t tokens);

  // Applies a staged pool replacement mid-traffic (ReconfigEngine commit):
  // the new backend is built and wired to any attached overload manager,
  // published, and — after reader quiescence — the old pool's remaining
  // tokens are drained and re-injected into it exactly. Consumers racing
  // the commit see tokens in one pool or the other, never both; a consume
  // against the new pool during the drain window can transiently
  // under-admit, never over-admit. Concurrent respecs serialize; consume/
  // refill/refund never block. Returns the new config version. Requires
  // respec_safe(r.refill_chunk).
  std::uint64_t respec(std::size_t thread_hint, const Respec& r);

  // Version stamp: bumped once per committed respec (starts at 1).
  std::uint64_t config_version() const noexcept override {
    return engine_.config_version();
  }
  // Watch respec commits (Reconfigurable contract; delivered by the engine
  // on the committing thread, under the commit lock).
  void subscribe(CommitCallback on_commit) override {
    engine_.subscribe(std::move(on_commit));
  }
  // The refill chunk of the currently published configuration.
  std::size_t refill_chunk() const noexcept {
    return engine_.current().refill_chunk;
  }

  // Puts the bucket under an overload manager: refills shrink their chunk
  // size by the tier's batch divisor (count-conserving — the same tokens in
  // smaller exclusive holds), and every OverloadAware layer in the pool's
  // decorator chain (elimination front-end, adaptive backend) is attached
  // too — including the chains of pools a later respec() installs. The
  // manager never changes *whether* tokens are admitted here — consume()
  // stays exact; degrading to partial grants is the caller's
  // (AdmissionController's / QuotaHierarchy's) decision, because only the
  // caller can record the partial charge for a later exact refund. The
  // manager must outlive the bucket; nullptr detaches.
  void attach_overload(const OverloadManager* manager) noexcept;
  const OverloadManager* overload() const noexcept { return overload_; }

  // Contention events observed by the pool backends (CAS retries / lock
  // waits), cumulative across respecs — retired pools' totals roll up so
  // windowed monitors never see the count regress; the numerator of the
  // stall-rate overload monitor.
  std::uint64_t stall_count() const {
    return retired_stalls_.load(std::memory_order_relaxed) +
           engine_.current().pool->stall_count();
  }
  std::uint64_t traversal_count() const {
    return retired_traversals_.load(std::memory_order_relaxed) +
           engine_.current().pool->traversal_count();
  }
  std::uint64_t batch_pass_count() const {
    return retired_batch_passes_.load(std::memory_order_relaxed) +
           engine_.current().pool->batch_pass_count();
  }
  // consume() calls with tokens > 0 / those that returned 0 ("observably
  // empty pool"). Their windowed ratio is the reject-ratio overload signal:
  // rejections per attempt, saturation at 1.0.
  std::uint64_t consume_attempts() const noexcept { return attempts_.total(); }
  std::uint64_t consume_rejects() const noexcept { return rejects_.total(); }
  std::string name() const { return "bucket·" + engine_.current().pool->name(); }
  // The currently published pool. With live respecs the reference can go
  // stale (it stays valid — retired pools live as long as the bucket — but
  // no longer receives traffic); prefer the telemetry accessors above.
  rt::Counter& pool() noexcept { return *engine_.current().pool; }
  const rt::Counter& pool() const noexcept { return *engine_.current().pool; }

 private:
  // The unit the engine swaps: the pool and the chunking that feeds it are
  // one configuration — a respec replaces both atomically, so no refill
  // ever pairs an old chunk with a new backend or vice versa.
  struct PoolState {
    std::unique_ptr<rt::Counter> pool;
    std::size_t refill_chunk = 64;
  };

  static std::unique_ptr<PoolState> make_state(std::unique_ptr<rt::Counter> pool,
                                               std::size_t refill_chunk);
  static void attach_chain(rt::Counter* layer,
                           const OverloadManager* manager) noexcept;

  ReconfigEngine<PoolState> engine_;
  const OverloadManager* overload_ = nullptr;
  std::atomic<std::uint64_t> retired_stalls_{0};
  std::atomic<std::uint64_t> retired_traversals_{0};
  std::atomic<std::uint64_t> retired_batch_passes_{0};
  util::StallSlots attempts_;
  util::StallSlots rejects_;
};

}  // namespace cnet::svc
