// An envoy-style token-bucket rate limiter (consume(k, allow_partial), cf.
// envoy/common/token_bucket.h) whose token pool is a shared counter:
// increments refill the pool, bounded antitoken decrements consume it. With
// a counting-network backend the admission decisions spread across the
// network's wires and exit cells instead of serializing on one atomic, and
// refills ride the batched traversal path.
//
// The never-over-admit guarantee is local to the backend: Counter::
// try_fetch_decrement only succeeds against a specific prior increment
// (central backends bound one value at zero; network backends bound each
// exit cell at its floor, sweeping the other cells when the antitoken's
// exit wire is drained), so at every moment the number of tokens handed
// out by consume() is at most the number pushed in by refill(), and a
// failed consume means the pool was observably empty.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cnet/runtime/counter.hpp"
#include "cnet/util/stall_slots.hpp"

namespace cnet::svc {

class OverloadManager;

class NetTokenBucket {
 public:
  struct Config {
    std::uint64_t initial_tokens = 0;
    // Tokens pushed per backend batch call during refill (1..256).
    std::size_t refill_chunk = 64;
  };

  // Takes ownership of the pool counter. The backend must support
  // try_fetch_decrement (central and network counters do); on one that
  // does not, consume() always reports an empty pool.
  NetTokenBucket(std::unique_ptr<rt::Counter> pool, Config cfg);
  explicit NetTokenBucket(std::unique_ptr<rt::Counter> pool);

  // Takes up to `tokens` from the pool and returns how many were actually
  // consumed. With allow_partial, a short pool yields a partial grab
  // (possibly 0); without, the call is all-or-nothing — on shortfall the
  // partial grab is returned to the pool and 0 is reported. A failed
  // single-token consume means the pool was observably empty; multi-token
  // all-or-nothing grabs are not atomic (grab then refund), so concurrent
  // callers racing for the last tokens can mutually false-reject even
  // when the pool briefly held enough for one of them.
  //
  // tokens == 0 is a defined, trivially successful no-op returning 0 on
  // every backend: the pool is never touched and the call must not be
  // read as a rejection (the bucket_consume plan pins the same contract).
  std::uint64_t consume(std::size_t thread_hint, std::uint64_t tokens,
                        bool allow_partial);

  // Adds `tokens` to the pool via the backend's batched increment path.
  void refill(std::size_t thread_hint, std::uint64_t tokens);

  // Returns previously consumed tokens to the pool. Count-wise identical
  // to refill(), but routed through Counter::refund_n so give-backs — the
  // all-or-nothing shortfall un-consume above, or a QuotaHierarchy release
  // — are never charged to an adaptive backend's load probe as organic
  // refill traffic.
  void refund(std::size_t thread_hint, std::uint64_t tokens) {
    pool_->refund_n(thread_hint, tokens);
  }

  // Puts the bucket under an overload manager: refills shrink their chunk
  // size by the tier's batch divisor (count-conserving — the same tokens in
  // smaller exclusive holds), and every OverloadAware layer in the pool's
  // decorator chain (elimination front-end, adaptive backend) is attached
  // too. The manager never changes *whether* tokens are admitted here —
  // consume() stays exact; degrading to partial grants is the caller's
  // (AdmissionController's / QuotaHierarchy's) decision, because only the
  // caller can record the partial charge for a later exact refund. The
  // manager must outlive the bucket; nullptr detaches.
  void attach_overload(const OverloadManager* manager) noexcept;
  const OverloadManager* overload() const noexcept { return overload_; }

  // Contention events observed by the pool backend (CAS retries / lock
  // waits); the numerator of the stall-rate overload monitor.
  std::uint64_t stall_count() const { return pool_->stall_count(); }
  // consume() calls with tokens > 0 / those that returned 0 ("observably
  // empty pool"). Their windowed ratio is the reject-ratio overload signal:
  // rejections per attempt, saturation at 1.0.
  std::uint64_t consume_attempts() const noexcept { return attempts_.total(); }
  std::uint64_t consume_rejects() const noexcept { return rejects_.total(); }
  std::string name() const { return "bucket·" + pool_->name(); }
  rt::Counter& pool() noexcept { return *pool_; }
  const rt::Counter& pool() const noexcept { return *pool_; }

 private:
  std::unique_ptr<rt::Counter> pool_;
  Config cfg_;
  const OverloadManager* overload_ = nullptr;
  util::StallSlots attempts_;
  util::StallSlots rejects_;
};

}  // namespace cnet::svc
