#include "cnet/svc/admission.hpp"

#include <utility>
#include <vector>

#include "cnet/svc/overload.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::svc {

namespace {

std::vector<std::unique_ptr<rt::Counter>> make_shards(
    const AdmissionConfig& cfg) {
  CNET_REQUIRE(cfg.shards > 0, "at least one shard");
  // IDs are identities: shards never take the elimination wrapper (an
  // eliminated increment's value is reclaimed on the spot, not unique) nor
  // the adaptive kind (the swap restarts the value sequence).
  const BackendKind id_kind = cfg.backend == BackendKind::kAdaptive
                                  ? BackendKind::kCentralAtomic
                                  : cfg.backend;
  std::vector<std::unique_ptr<rt::Counter>> shards;
  shards.reserve(cfg.shards);
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    shards.push_back(make_counter(id_kind, cfg.net));
  }
  return shards;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& cfg)
    : bucket_(make_counter(BackendSpec{cfg.backend, cfg.elimination},
                           cfg.net),
              cfg.bucket),
      ids_(make_shards(cfg), cfg.ids) {}

AdmissionController::Ticket AdmissionController::admit(
    std::size_t thread_hint, std::uint64_t cost) {
  CNET_REQUIRE(cost > 0, "admission cost must be positive");
  // Validate before charging: a bad hint must not consume tokens the
  // caller can never get a ticket (or a refund) for.
  CNET_REQUIRE(thread_hint < ids_.max_threads(),
               "thread_hint must be < max_threads");
  Ticket ticket;
  // The degrade decision is made here, not inside the bucket: only the
  // admission layer can hand the caller the exact partial charge, and a
  // silently partial bucket would leak tokens through every all-or-nothing
  // caller that compares the result against `cost`.
  const bool degrade =
      overload_ != nullptr && overload_->actions().degrade_to_partial;
  const std::uint64_t charged = bucket_.consume(
      thread_hint, cost, degrade ? kPartialOk : kAllOrNothing);
  if (degrade ? charged == 0 : charged != cost) {
    return ticket;  // rejected, nothing charged, no ID burned
  }
  ticket.admitted = true;
  ticket.charged = charged;
  ticket.request_id = ids_.allocate(thread_hint);
  return ticket;
}

std::string AdmissionController::name() const {
  return "admission·" + bucket_.pool().name();
}

}  // namespace cnet::svc
