#include "cnet/svc/sharded_id_allocator.hpp"

#include <algorithm>

#include "cnet/util/ensure.hpp"

namespace cnet::svc {

ShardedIdAllocator::ShardedIdAllocator(
    std::vector<std::unique_ptr<rt::Counter>> shards)
    : ShardedIdAllocator(std::move(shards), Config()) {}

ShardedIdAllocator::ShardedIdAllocator(
    std::vector<std::unique_ptr<rt::Counter>> shards, Config cfg)
    : shards_(std::move(shards)), cfg_(cfg), caches_(cfg.max_threads) {
  CNET_REQUIRE(!shards_.empty(), "at least one shard counter");
  CNET_REQUIRE(cfg_.max_threads > 0, "max_threads must be positive");
  CNET_REQUIRE(cfg_.refill_batch > 0, "refill_batch must be positive");
  for (const auto& shard : shards_) {
    CNET_REQUIRE(shard != nullptr, "null shard counter");
  }
  for (auto& cache : caches_) cache.ids.reserve(cfg_.refill_batch);
}

void ShardedIdAllocator::refill_cache(std::size_t thread_hint, Cache& cache) {
  const std::size_t shard = shard_of(thread_hint);
  const std::size_t old_size = cache.ids.size();
  cache.ids.resize(old_size + cfg_.refill_batch);
  std::int64_t* block = cache.ids.data() + old_size;
  shards_[shard]->fetch_increment_batch(thread_hint, cfg_.refill_batch,
                                        block);
  for (std::size_t i = 0; i < cfg_.refill_batch; ++i) {
    block[i] = to_global(shard, block[i]);
  }
}

std::int64_t ShardedIdAllocator::allocate(std::size_t thread_hint) {
  CNET_REQUIRE(thread_hint < cfg_.max_threads,
               "thread_hint must be < max_threads");
  Cache& cache = caches_[thread_hint];
  if (cache.ids.empty()) refill_cache(thread_hint, cache);
  const std::int64_t id = cache.ids.back();
  cache.ids.pop_back();
  return id;
}

void ShardedIdAllocator::allocate_batch(std::size_t thread_hint,
                                        std::size_t k,
                                        std::int64_t* out_ids) {
  CNET_REQUIRE(thread_hint < cfg_.max_threads,
               "thread_hint must be < max_threads");
  Cache& cache = caches_[thread_hint];
  std::size_t filled = 0;
  // Drain the cache first so cached IDs are never stranded behind direct
  // claims.
  while (filled < k && !cache.ids.empty()) {
    out_ids[filled++] = cache.ids.back();
    cache.ids.pop_back();
  }
  const std::size_t remaining = k - filled;
  if (remaining == 0) return;
  if (remaining >= cfg_.refill_batch) {
    // Big request: one direct batched claim, no cache round trip.
    const std::size_t shard = shard_of(thread_hint);
    shards_[shard]->fetch_increment_batch(thread_hint, remaining,
                                          out_ids + filled);
    for (std::size_t i = 0; i < remaining; ++i) {
      out_ids[filled + i] = to_global(shard, out_ids[filled + i]);
    }
    return;
  }
  refill_cache(thread_hint, cache);
  for (std::size_t i = 0; i < remaining; ++i) {
    out_ids[filled + i] = cache.ids.back();
    cache.ids.pop_back();
  }
}

std::uint64_t ShardedIdAllocator::stall_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->stall_count();
  return total;
}

std::string ShardedIdAllocator::name() const {
  return "sharded[" + std::to_string(shards_.size()) + "]·" +
         shards_.front()->name();
}

}  // namespace cnet::svc
