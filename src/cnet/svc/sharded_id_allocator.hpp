// Dynomite-style sharded ID allocation on top of the Counter abstraction:
// N independent counters (any backend) composed via a modular shard map.
// Shard s with local counter value v owns the global ID v·N + s, so the
// shards partition the ID space into disjoint residue classes and global
// uniqueness reduces to each backend's per-counter no-duplicate guarantee.
//
// Two amortization layers sit above the raw counters:
//   * per-thread shard affinity — thread_hint % N — keeps each thread on
//     one shard's wires (and one entry-wire class within a network shard);
//   * a per-thread ID cache refilled through fetch_increment_batch, so the
//     common allocate() is a cache pop with zero shared-memory traffic and
//     the backend sees one batched claim per refill_batch IDs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cnet/runtime/counter.hpp"
#include "cnet/util/cacheline.hpp"

namespace cnet::svc {

class ShardedIdAllocator {
 public:
  struct Config {
    // Number of per-thread cache slots; thread hints must stay below this
    // (slots are unsynchronized, one owner thread each).
    std::size_t max_threads = 64;
    // IDs claimed from the shard counter per cache refill. 1 disables
    // caching in effect (every allocate hits the backend).
    std::size_t refill_batch = 16;
  };

  // Takes ownership of one Counter per shard; stride = shards.size().
  ShardedIdAllocator(std::vector<std::unique_ptr<rt::Counter>> shards,
                     Config cfg);
  explicit ShardedIdAllocator(
      std::vector<std::unique_ptr<rt::Counter>> shards);

  // Returns an ID no other allocate/allocate_batch call ever returns.
  // `thread_hint` must be a stable per-thread index < max_threads.
  std::int64_t allocate(std::size_t thread_hint);

  // Claims k unique IDs into out_ids[0..k). Large requests (>= refill_batch
  // beyond what the cache holds) go straight through the backend's batch
  // path instead of round-tripping the cache.
  void allocate_batch(std::size_t thread_hint, std::size_t k,
                      std::int64_t* out_ids);

  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t max_threads() const noexcept { return cfg_.max_threads; }
  std::size_t shard_of(std::size_t thread_hint) const noexcept {
    return thread_hint % shards_.size();
  }

  std::uint64_t stall_count() const;
  std::string name() const;

 private:
  // One thread's stash of pre-claimed IDs, served LIFO.
  struct alignas(util::kCacheLine) Cache {
    std::vector<std::int64_t> ids;
  };

  std::int64_t to_global(std::size_t shard, std::int64_t local) const noexcept {
    return local * static_cast<std::int64_t>(shards_.size()) +
           static_cast<std::int64_t>(shard);
  }
  void refill_cache(std::size_t thread_hint, Cache& cache);

  std::vector<std::unique_ptr<rt::Counter>> shards_;
  Config cfg_;
  std::vector<Cache> caches_;
};

}  // namespace cnet::svc
