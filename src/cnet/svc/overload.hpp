// svc::OverloadManager — an envoy-style overload manager (cf. envoy's
// overload manager / resource-monitor registry) over the counting-network
// service layer: a registry of pluggable load monitors, each producing a
// normalized 0–1 pressure reading (stall rate from LoadStats-style probes,
// bucket reject ratio, admission queue depth, per-tenant borrow pressure
// from QuotaHierarchy), combined by the pure rules in svc/policy.hpp
// (combine_pressure → overload_tier → overload_actions) into a tiered
// response:
//
//   tier 1  shrink-batch      refill/batch chunks divide by 4 — bounds the
//                             latency one exclusive bulk hold can impose
//   tier 2  force-eliminate   elimination front-ends widen their pairing
//                             window; adaptive backends take the cold→hot
//                             swap immediately
//   tier 3  degrade-partial   all-or-nothing consumes/acquires degrade to
//                             allow_partial grants (callers are told the
//                             exact charged amount, so conservation holds)
//   tier 4  shed-tenants      whole tenants shed by weight (policy
//                             shed_set), already-held grant parts refunded
//                             exactly to the level they came from
//
// Sampling is explicit and pull-based: someone — a bench loop, a
// maintenance thread, the simulator's virtual clock — calls evaluate()
// periodically. There is no background thread, so tier transitions are
// deterministic functions of the monitor readings at each evaluate(), which
// is exactly what lets sim::simulate_overload replay the same ladder in
// virtual time and pin the transition instants in CI.
//
// Conservation contract: no action ever creates or destroys tokens. Shrink
// only re-chunks; force-eliminate only re-routes pairs; degrade admits a
// partial grant whose exact parts the caller receives and must release;
// shed refunds every held part to the level it was taken from. The bench's
// shed-conservation check drains every pool after a full
// escalate-shed-recover cycle and requires the exact initial totals.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cnet/svc/policy.hpp"
#include "cnet/util/atomic.hpp"
#include "cnet/util/mutex.hpp"
#include "cnet/util/thread_annotations.hpp"

namespace cnet::svc {

class QuotaHierarchy;
class NetTokenBucket;

// A pluggable load signal. Implementations turn some raw observation into
// a normalized pressure reading in [0, 1] (the manager clamps anyway); 0
// means idle, 1 means saturated. sample_pressure() is only ever called
// under the manager's sampler claim — implementations need not be
// re-entrant against themselves, but must tolerate concurrent hot-path
// writers feeding whatever totals they read.
class LoadMonitor {
 public:
  virtual ~LoadMonitor() = default;
  // Registry key; unique per manager (duplicate registration throws).
  virtual const std::string& name() const noexcept = 0;
  virtual double sample_pressure() = 0;
};

// Windowed rate signal: between two samples, Δevents/Δops normalized
// against `saturation_rate` (the rate that counts as pressure 1.0). Covers
// the stall-rate monitor (ops = bucket ops, events = backend stalls) and
// the reject-ratio monitor (ops = consume attempts, events = rejections,
// saturation 1.0). Deltas are clamped at zero, mirroring LoadStats: totals
// read from concurrently-written slots may be momentarily stale, and a
// stale read must yield an empty window, never an underflowed one. An
// empty window (no ops since the last sample) reads as zero pressure — an
// idle system decays to nominal (policy window_pressure rule).
class WindowedRateMonitor final : public LoadMonitor {
 public:
  using TotalFn = std::function<std::uint64_t()>;

  WindowedRateMonitor(std::string name, TotalFn ops_total, TotalFn events_total,
                      double saturation_rate);

  const std::string& name() const noexcept override { return name_; }
  double sample_pressure() override;

 private:
  std::string name_;
  TotalFn ops_total_;
  TotalFn events_total_;
  double saturation_rate_;
  // Touched only from sample_pressure(), which the manager calls under its
  // registry mutex (the LoadMonitor contract above) — the discipline the
  // manager's own CNET_GUARDED_BY fields make compiler-checked. Primed at
  // construction to the totals as of attachment, so the first window never
  // spans the counters' whole pre-attachment lifetime.
  std::uint64_t last_ops_ = 0;
  std::uint64_t last_events_ = 0;
};

// Level signal: an externally maintained gauge (admission queue depth,
// in-flight requests) over its capacity (policy occupancy_pressure). set()
// is a relaxed store, callable from any thread at any time. Capacity 0 is
// legal and means "no budget": any nonzero value reads as full saturation
// — the state a live reweigh can produce when a tenant's share is divided
// away while holders are still outstanding.
class GaugeMonitor final : public LoadMonitor {
 public:
  GaugeMonitor(std::string name, std::uint64_t capacity);

  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  std::uint64_t capacity() const noexcept { return capacity_; }

  const std::string& name() const noexcept override { return name_; }
  double sample_pressure() override;

 private:
  std::string name_;
  std::uint64_t capacity_;
  std::atomic<std::uint64_t> value_{0};
};

// Aggregate borrow pressure: total outstanding parent borrow across all
// tenants against the total of their weighted limits (policy
// occupancy_pressure over the sums). A single tenant pinned at its own cap
// is isolation *working*, not overload; what signals parent contention is
// the whole borrow budget filling up.
class BorrowPressureMonitor final : public LoadMonitor {
 public:
  explicit BorrowPressureMonitor(const QuotaHierarchy& quota);

  const std::string& name() const noexcept override { return name_; }
  double sample_pressure() override;

 private:
  std::string name_;
  const QuotaHierarchy* quota_;
};

// Convenience factories for the two standard counter-backed monitors.
// Stall rate: backend stalls per bucket op, against the stall rate that
// counts as saturation. Reject ratio: rejected consumes per attempt.
std::unique_ptr<LoadMonitor> make_stall_rate_monitor(
    const NetTokenBucket& bucket, double saturation_stall_rate);
std::unique_ptr<LoadMonitor> make_reject_ratio_monitor(
    const NetTokenBucket& bucket);

struct OverloadConfig {
  OverloadThresholds thresholds;
  // Weight fraction shed at the top tier (policy shed_set).
  double shed_fraction = 0.25;
};

// Counters that can act on overload tiers implement this (ElimCounter,
// AdaptiveCounter); NetTokenBucket::attach_overload walks its pool's
// decorator chain and attaches every aware layer.
class OverloadManager;
class OverloadAware {
 public:
  virtual ~OverloadAware() = default;
  // The manager must outlive the component; nullptr detaches.
  virtual void attach_overload(const OverloadManager* manager) noexcept = 0;
};

class OverloadManager {
 public:
  // One recorded tier transition (evaluate() that changed the tier).
  struct TierChange {
    OverloadTier from = OverloadTier::kNominal;
    OverloadTier to = OverloadTier::kNominal;
    double pressure = 0.0;
    std::uint64_t sample_seq = 0;  // 1-based index of the evaluate() call
  };

  explicit OverloadManager(const OverloadConfig& cfg = {});

  // Registers a monitor. Names are the registry keys: registering two
  // monitors with the same name throws (a silently shadowed signal is a
  // blind spot exactly where visibility matters most). Returns the stored
  // monitor for caller-side wiring (e.g. keeping a GaugeMonitor* to set).
  // Safe against a concurrent evaluate(): the registry is mutated under
  // the same mutex the sampler iterates it under.
  LoadMonitor& add_monitor(std::unique_ptr<LoadMonitor> monitor)
      CNET_EXCLUDES(mutex_);
  std::size_t num_monitors() const CNET_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    return monitors_.size();
  }

#if defined(CNET_SCHED_CHECK)
  // TEST-ONLY SEAM for the schedule checker's seeded-race fixture: performs
  // the registration the way the pre-PR-9 code did — mutating the registry
  // with NO lock held — so tests/schedcheck/check_seeded_race.cpp can prove
  // the checker rediscovers that race deterministically. In the real bug
  // the damage was a sampler walking a vector mid-growth (memory-unsafe);
  // here the oracle below turns the same interleaving into a clean
  // invariant throw: the method CNET_ENSUREs that no evaluate() walk is in
  // progress at either of its two registry mutations, and evaluate() marks
  // its locked walk in registry_walkers_. With the correct (locked)
  // add_monitor the mutex makes the overlap impossible; with this seam the
  // checker finds the overlapping schedule in milliseconds. Never compiled
  // into production builds.
  LoadMonitor& testonly_add_monitor_unlocked(
      std::unique_ptr<LoadMonitor> monitor);
#endif

  // Puts a quota hierarchy under management: the shed-tenants tier sheds
  // its lowest-weight tenants (policy shed_set, cfg.shed_fraction) with
  // exact refund of held grant parts (QuotaHierarchy::shed), and leaving
  // the tier restores them. Also attaches this manager to the hierarchy so
  // its acquires see the degrade-partial action. At most one hierarchy;
  // the manager must outlive it being governed.
  void govern(QuotaHierarchy& quota);

  // Samples every monitor, combines (max), and applies the tier rule with
  // hysteresis. Thread-safe via a claim: concurrent callers skip (the tier
  // they read is at most one sample stale). Returns the tier now in force.
  OverloadTier evaluate() CNET_EXCLUDES(mutex_);

  // The current tier / action set, cheap enough for hot paths (one acquire
  // load; the action table is a pure function of the tier).
  OverloadTier tier() const noexcept {
    return static_cast<OverloadTier>(tier_.load(std::memory_order_acquire));
  }
  OverloadActions actions() const noexcept { return overload_actions(tier()); }

  // Last combined pressure and per-monitor reading (post-clamp), for
  // reporting. pressure_of throws on an unknown name.
  double pressure() const noexcept {
    return pressure_.load(std::memory_order_acquire);
  }
  double pressure_of(std::string_view name) const CNET_EXCLUDES(mutex_);

  // Every tier transition so far, in order. (Copies under a lock; meant
  // for end-of-run reporting and tests, not hot paths.)
  std::vector<TierChange> history() const CNET_EXCLUDES(mutex_);
  // Tenants currently shed by this manager (empty below the shed tier).
  std::vector<std::size_t> shed_tenants() const CNET_EXCLUDES(mutex_);

  const OverloadConfig& config() const noexcept { return cfg_; }

 private:
  void apply_transition(OverloadTier from, OverloadTier to, double pressure)
      CNET_EXCLUDES(mutex_);

  OverloadConfig cfg_;
  std::atomic<bool> evaluating_{false};
  std::atomic<std::uint8_t> tier_{0};
  std::atomic<double> pressure_{0.0};
  // Set once by govern() before sampling traffic starts (the manager/
  // hierarchy attachment contract); never flips between hierarchies.
  QuotaHierarchy* governed_ = nullptr;
  // The registry mutex. Everything the sampler walks or the reporting
  // accessors copy lives under it — including the registry itself, so a
  // monitor registered while an evaluate() is mid-sample is either in
  // this sample or the next, never torn. last_pressures_[i] pairs with
  // monitors_[i].
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<LoadMonitor>> monitors_ CNET_GUARDED_BY(mutex_);
  std::vector<double> last_pressures_ CNET_GUARDED_BY(mutex_);
  std::vector<TierChange> history_ CNET_GUARDED_BY(mutex_);
  std::vector<std::size_t> shed_ CNET_GUARDED_BY(mutex_);
  std::uint64_t samples_ CNET_GUARDED_BY(mutex_) = 0;
#if defined(CNET_SCHED_CHECK)
  // Oracle for the seeded-race fixture: nonzero exactly while evaluate()'s
  // locked registry walk is running. util::Atomic so both the marker
  // stores and the seam's probes are schedulable checker steps.
  util::Atomic<std::uint32_t> registry_walkers_{0};
#endif
};

}  // namespace cnet::svc
