#include "cnet/svc/quota.hpp"

#include <utility>

#include "cnet/svc/overload.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::svc {

std::unique_ptr<QuotaHierarchy::WeightState> QuotaHierarchy::make_weights(
    std::uint64_t borrow_budget, std::size_t tenants,
    const std::vector<std::uint64_t>& weights) {
  CNET_REQUIRE(reweigh_safe(tenants, weights),
               "weight vector must cover every tenant with positive weights");
  auto state = std::make_unique<WeightState>();
  state->weights = weights;
  state->limits = reweigh_limits(borrow_budget, weights);
  return state;
}

namespace {
std::vector<std::uint64_t> initial_weights(
    const std::vector<QuotaHierarchy::TenantConfig>& tenants) {
  std::vector<std::uint64_t> weights;
  weights.reserve(tenants.size());
  for (const auto& t : tenants) weights.push_back(t.weight);
  return weights;
}
}  // namespace

QuotaHierarchy::QuotaHierarchy(const Config& cfg,
                               std::vector<TenantConfig> tenants)
    : parent_(make_counter(cfg.parent, cfg.net),
              NetTokenBucket::Config{cfg.parent_initial_tokens,
                                     cfg.bucket.refill_chunk}),
      tenants_(tenants.size()),
      weights_(make_weights(cfg.borrow_budget, tenants.size(),
                            initial_weights(tenants))),
      borrow_budget_(cfg.borrow_budget) {
  CNET_REQUIRE(!tenants.empty(), "at least one tenant");
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    tenants_[i].bucket = std::make_unique<NetTokenBucket>(
        make_counter(cfg.child, cfg.net),
        NetTokenBucket::Config{tenants[i].initial_tokens,
                               cfg.bucket.refill_chunk});
  }
}

std::uint64_t QuotaHierarchy::reserve_borrow(std::size_t thread_hint,
                                             std::size_t tenant,
                                             TenantState& state,
                                             std::uint64_t want) {
  return weights_.read(thread_hint, [&](const WeightState& ws) -> std::uint64_t {
    const std::uint64_t limit = ws.limits[tenant];
    std::uint64_t cur = state.borrowed.load(std::memory_order_relaxed);
    for (;;) {
      // All-or-nothing, like the acquire plan that consumes it: a partial
      // reservation is doomed to be returned, and committing it would hold
      // cap headroom hostage for the whole refund window — long enough to
      // falsely reject a sibling thread's genuinely in-cap borrow. (The
      // simulator's quota model makes the same commit-only-if-full
      // decision.) After a reweigh shrinks the limit below the outstanding
      // borrow, borrow_allowance is 0 here until releases drain the
      // overage — the new cap binds without any claw-back.
      if (borrow_allowance(want, cur, limit) < want) return 0;
      // acq_rel: a winning reservation must observe the parent-pool refund
      // that preceded the release which freed this headroom (release puts
      // the tokens back *before* shrinking borrowed).
      if (state.borrowed.compare_exchange_weak(cur, cur + want,
                                               std::memory_order_acq_rel)) {
        return want;
      }
    }
  });
}

QuotaHierarchy::Grant QuotaHierarchy::acquire(std::size_t thread_hint,
                                              std::size_t tenant,
                                              std::uint64_t tokens,
                                              ConsumeOptions opts) {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  TenantState& state = tenants_[tenant];
  if (state.shed.load(std::memory_order_acquire)) {
    // A shed tenant is rejected before any pool is touched: no tokens
    // move, so there is nothing to refund and conservation is trivial.
    Grant rejected;
    rejected.tenant = static_cast<std::uint32_t>(tenant);
    return rejected;
  }
  // Degrade-partial is decided here (not in the buckets) so the grant's
  // parts record exactly what was taken — release() stays an exact undo.
  // The overload action forces partial settlement on top of whatever the
  // caller asked for; it never forces all-or-nothing.
  if (overload_ != nullptr && overload_->actions().degrade_to_partial) {
    opts.partial_ok = true;
  }
  // The whole flow is the shared svc::quota_acquire plan; only the
  // concrete take/refund/reserve mechanics live here. The level takes are
  // always partial — the settlement rule, not the pools, decides whether a
  // short yield admits under opts.
  const QuotaGrantPlan plan = quota_acquire(
      tokens,
      [&](std::uint64_t n) {
        return state.bucket->consume(thread_hint, n, kPartialOk);
      },
      [&](std::uint64_t n) {
        return reserve_borrow(thread_hint, tenant, state, n);
      },
      [&](std::uint64_t n) {
        state.borrowed.fetch_sub(n, std::memory_order_release);
      },
      [&](std::uint64_t n) {
        return parent_.consume(thread_hint, n, kPartialOk);
      },
      [&](std::uint64_t n) { state.bucket->refund(thread_hint, n); },
      [&](std::uint64_t n) { parent_.refund(thread_hint, n); },
      opts);
  Grant grant;
  grant.admitted = plan.admitted;
  grant.tenant = static_cast<std::uint32_t>(tenant);
  grant.from_child = plan.from_child;
  grant.from_parent = plan.from_parent;
  return grant;
}

void QuotaHierarchy::release(std::size_t thread_hint, const Grant& grant) {
  CNET_REQUIRE(grant.admitted, "release of a rejected grant");
  CNET_REQUIRE(grant.tenant < tenants_.size(), "grant tenant out of range");
  TenantState& state = tenants_[grant.tenant];
  if (grant.from_child > 0) {
    state.bucket->refund(thread_hint, grant.from_child);
  }
  if (grant.from_parent > 0) {
    // Pool before headroom: once the borrowed tokens are observable in the
    // parent again, shrinking `borrowed` may let a waiting reservation win
    // — and it will find what it reserved. Reweigh-independent: the grant
    // records what was borrowed under whatever limits then held, so this
    // undo is exact under any current weight generation.
    parent_.refund(thread_hint, grant.from_parent);
    state.borrowed.fetch_sub(grant.from_parent, std::memory_order_release);
  }
}

void QuotaHierarchy::settle_spent(std::size_t thread_hint, const Grant& grant,
                                  std::uint64_t refund_child,
                                  std::uint64_t refund_parent) {
  CNET_REQUIRE(grant.admitted, "settlement of a rejected grant");
  CNET_REQUIRE(grant.tenant < tenants_.size(), "grant tenant out of range");
  CNET_REQUIRE(refund_child <= grant.from_child,
               "child refund exceeds the grant's child part");
  CNET_REQUIRE(refund_parent <= grant.from_parent,
               "parent refund exceeds the grant's parent part");
  TenantState& state = tenants_[grant.tenant];
  if (refund_child > 0) {
    state.bucket->refund(thread_hint, refund_child);
  }
  // Pool before headroom, as in release(). The headroom freed is the whole
  // from_parent — the spent remainder left the system for good and must not
  // keep occupying the tenant's weighted limit — but only the unspent part
  // goes back to the pool, so the parent's count stays exact.
  if (refund_parent > 0) {
    parent_.refund(thread_hint, refund_parent);
  }
  if (grant.from_parent > 0) {
    state.borrowed.fetch_sub(grant.from_parent, std::memory_order_release);
  }
}

std::uint64_t QuotaHierarchy::reweigh(
    std::size_t thread_hint, const std::vector<std::uint64_t>& weights) {
  (void)thread_hint;
  auto next = make_weights(borrow_budget_, tenants_.size(), weights);
  // No migration: outstanding borrows carry over untouched. The commit's
  // quiescence wait is what guarantees no reservation CAS-loop straddles
  // the generations — each loop ran wholly against old limits or runs
  // wholly against new ones.
  return weights_.commit(std::move(next),
                         [](WeightState&, WeightState&) {});
}

void QuotaHierarchy::refill_tenant(std::size_t thread_hint,
                                   std::size_t tenant, std::uint64_t tokens) {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  tenants_[tenant].bucket->refill(thread_hint, tokens);
}

void QuotaHierarchy::shed(std::size_t tenant) {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  tenants_[tenant].shed.store(true, std::memory_order_release);
}

void QuotaHierarchy::restore(std::size_t tenant) {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  tenants_[tenant].shed.store(false, std::memory_order_release);
}

bool QuotaHierarchy::is_shed(std::size_t tenant) const {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  return tenants_[tenant].shed.load(std::memory_order_acquire);
}

void QuotaHierarchy::attach_overload(const OverloadManager* manager) noexcept {
  overload_ = manager;
  parent_.attach_overload(manager);
  for (TenantState& state : tenants_) state.bucket->attach_overload(manager);
}

std::uint64_t QuotaHierarchy::borrowed(std::size_t tenant) const {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  return tenants_[tenant].borrowed.load(std::memory_order_acquire);
}

std::uint64_t QuotaHierarchy::borrow_limit(std::size_t tenant) const {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  return weights_.current().limits[tenant];
}

std::uint64_t QuotaHierarchy::weight(std::size_t tenant) const {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  return weights_.current().weights[tenant];
}

NetTokenBucket& QuotaHierarchy::child(std::size_t tenant) {
  CNET_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  return *tenants_[tenant].bucket;
}

std::uint64_t QuotaHierarchy::stall_count() const {
  std::uint64_t total = parent_.stall_count();
  for (const TenantState& state : tenants_) {
    total += state.bucket->stall_count();
  }
  return total;
}

}  // namespace cnet::svc
