// Backend-independent *decision* logic of the service layer, factored out
// of the concurrent implementations so the virtual-time multicore simulator
// (sim::MulticoreModel) runs the exact same rules as the real machinery —
// when an adaptive counter switches, what value an eliminated pair agrees
// on, how a bucket consume grabs and refunds — instead of a drifting
// reimplementation. Everything here is pure: no atomics, no time, no I/O.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cnet::svc {

// Switch tuning for the adaptive backend (svc::AdaptiveCounter and the
// simulator's adaptive model both decide through should_switch below).
struct AdaptiveTuning {
  // Per-slot ops between LoadStats probes.
  std::uint64_t sample_interval = 2048;
  // Windows smaller than this never trigger (startup noise guard).
  std::uint64_t min_window_ops = 4096;
  // Stalls per op in one window that trigger the central→network swap.
  double stall_rate_threshold = 0.05;
};

// One observation window: ops completed and contention events (stalls, CAS
// retries — whatever total the observer feeds in) since the previous
// sample. svc::LoadStats produces these from live threads; the simulator
// produces them from virtual-time stall events.
struct LoadWindow {
  std::uint64_t ops = 0;
  std::uint64_t events = 0;
  double event_rate() const noexcept {
    return ops == 0 ? 0.0
                    : static_cast<double>(events) / static_cast<double>(ops);
  }
};

// The central→network switch rule: a window big enough to trust whose
// stall rate crosses the threshold.
inline bool should_switch(const LoadWindow& window,
                          const AdaptiveTuning& tuning) noexcept {
  if (window.ops < tuning.min_window_ops) return false;
  return window.event_rate() >= tuning.stall_rate_threshold;
}

// The elimination pairing name: the value both sides of a collision agree
// on, derived from the slot index and the slot's epoch at pairing time.
// Always negative, unique per collision, never collides with the
// non-negative values real backends assign — so paired inc/dec cancel
// exactly in any inc-minus-dec multiset.
constexpr std::int64_t elimination_pair_value(std::size_t num_slots,
                                              std::size_t slot,
                                              std::uint64_t epoch) noexcept {
  return -1 - static_cast<std::int64_t>(epoch * num_slots + slot);
}

// How a consume/acquire settles a short pool, as one options struct rather
// than the historic bare `bool allow_partial` positional argument (which
// read as line noise at call sites and left no room to grow). Passed by
// value through every consume-shaped call in the service layer —
// NetTokenBucket::consume, QuotaHierarchy::acquire, and the shared rules
// below — and by the simulator's pool models, so live code and model agree
// on the same struct.
struct ConsumeOptions {
  // A short pool yields a partial grab (possibly 0) instead of the
  // all-or-nothing refund-and-reject.
  bool partial_ok = false;
  // Reserved for the admission-latency roadmap items; carried through the
  // call chain but not yet acted on anywhere. deadline is a caller clock
  // instant (0 = none); priority classes order shedding, 0 = highest.
  double deadline = 0.0;
  std::uint8_t priority = 0;
};

// The two common settlements, named so call sites read as intent.
inline constexpr ConsumeOptions kAllOrNothing{};
inline constexpr ConsumeOptions kPartialOk{/*partial_ok=*/true};

// The token-bucket consume plan: grab up to `tokens` through `take_n`
// (which returns how many it claimed; zero is conclusive — the pool was
// observably empty), and on an all-or-nothing shortfall refund the partial
// grab through `put_n`. Returns tokens actually consumed. NetTokenBucket
// runs this against a live rt::Counter; the simulator runs it against its
// virtual-time pool models.
//
// tokens == 0 is a defined, trivially successful no-op: neither take_n nor
// put_n is ever invoked and 0 is returned. (A zero-token request is vacuous
// in both partial and all-or-nothing modes — "all of nothing" is nothing —
// so it must not be reported or treated as a rejection.)
template <class TakeN, class PutN>
std::uint64_t bucket_consume(std::uint64_t tokens, ConsumeOptions opts,
                             TakeN&& take_n, PutN&& put_n) {
  if (tokens == 0) return 0;  // the defined no-op, never a backend touch
  std::uint64_t got = 0;
  while (got < tokens) {
    const std::uint64_t grabbed = take_n(tokens - got);
    if (grabbed == 0) break;
    got += grabbed;
  }
  if (!opts.partial_ok && got < tokens && got > 0) {
    put_n(got);
    got = 0;
  }
  return got;
}

template <class TakeN, class PutN>
[[deprecated("pass svc::ConsumeOptions (kPartialOk / kAllOrNothing)")]]
std::uint64_t bucket_consume(std::uint64_t tokens, bool allow_partial,
                             TakeN&& take_n, PutN&& put_n) {
  return bucket_consume(tokens, ConsumeOptions{allow_partial},
                        std::forward<TakeN>(take_n),
                        std::forward<PutN>(put_n));
}

// ---------------------------------------------------------------------------
// Quota-hierarchy decision rules (svc::QuotaHierarchy and the simulator's
// quota model share these; see sim/multicore.cpp, which drives the same
// rules in continuation-passing form).

// A tenant's parent-borrow cap under the weighted max-borrow policy: its
// weight's share of the hierarchy's borrow budget, rounded down. The sum
// over all tenants never exceeds `budget`, so sizing the budget at most
// (parent capacity - largest single cost) guarantees a successful
// reservation always finds its tokens in the parent pool — the isolation
// property the hierarchy's checks gate on.
constexpr std::uint64_t weighted_borrow_limit(
    std::uint64_t budget, std::uint64_t weight,
    std::uint64_t total_weight) noexcept {
  if (total_weight == 0) return 0;
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(budget) * weight / total_weight);
}

// How much more a tenant may draw from the parent right now: with
// `outstanding` tokens already borrowed against `limit`, at most this much
// of `want` is grantable. Pure arithmetic; the concurrent reservation in
// QuotaHierarchy CAS-loops over it so `outstanding` can never overshoot the
// limit, even transiently.
constexpr std::uint64_t borrow_allowance(std::uint64_t want,
                                         std::uint64_t outstanding,
                                         std::uint64_t limit) noexcept {
  if (outstanding >= limit) return 0;
  return want < limit - outstanding ? want : limit - outstanding;
}

// The settlement of a two-level grab: given what the child and parent takes
// actually yielded, either the request is covered (admitted, keep both
// parts) or every token goes back to the level it was taken from. By
// default the settlement is all-or-nothing; with opts.partial_ok (the
// overload manager's kDegradePartial action) any nonzero yield settles as
// admitted — the caller keeps exactly from_child + from_parent tokens and
// must release exactly those parts later, so conservation stays level-exact
// either way. tokens == 0 settles as admitted with empty parts — the same
// defined no-op as bucket_consume's.
struct QuotaSettlement {
  bool admitted = false;
  std::uint64_t refund_child = 0;
  std::uint64_t refund_parent = 0;
};

constexpr QuotaSettlement quota_settle(std::uint64_t tokens,
                                       std::uint64_t from_child,
                                       std::uint64_t from_parent,
                                       ConsumeOptions opts = {}) noexcept {
  if (from_child + from_parent == tokens) return {true, 0, 0};
  if (opts.partial_ok && from_child + from_parent > 0) return {true, 0, 0};
  return {false, from_child, from_parent};
}

[[deprecated("pass svc::ConsumeOptions (kPartialOk / kAllOrNothing)")]]
constexpr QuotaSettlement quota_settle(std::uint64_t tokens,
                                       std::uint64_t from_child,
                                       std::uint64_t from_parent,
                                       bool allow_partial) noexcept {
  return quota_settle(tokens, from_child, from_parent,
                      ConsumeOptions{allow_partial});
}

// Composition of a successful (or rejected) two-level acquire.
struct QuotaGrantPlan {
  bool admitted = false;
  std::uint64_t from_child = 0;   // tokens covered by the tenant's bucket
  std::uint64_t from_parent = 0;  // tokens borrowed from the shared parent
};

// The two-level acquire plan: take from the tenant's child bucket first
// (partial), cover any shortfall from the shared parent only after a
// successful reservation against the tenant's borrow limit, and on failure
// refund every token to the level it came from and return the reservation.
// take_child/take_parent claim up to n and return what they got; reserve(n)
// returns how much borrow headroom was secured (all-or-nothing decisions
// need exactly n); unreserve(n) gives headroom back when the grant fails.
// On success the reservation is kept — it *is* the tenant's outstanding
// borrow until release().
//
// With opts.partial_ok (the overload manager's kDegradePartial action) a
// short yield still admits: the plan keeps whatever the child plus parent
// actually produced, and any reserved headroom beyond the parent tokens
// actually claimed is unreserved before returning — so the outstanding
// borrow equals from_parent exactly, and releasing (from_child,
// from_parent) restores both pools and the headroom to the token.
template <class TakeChild, class Reserve, class Unreserve, class TakeParent,
          class PutChild, class PutParent>
QuotaGrantPlan quota_acquire(std::uint64_t tokens, TakeChild&& take_child,
                             Reserve&& reserve, Unreserve&& unreserve,
                             TakeParent&& take_parent, PutChild&& put_child,
                             PutParent&& put_parent,
                             ConsumeOptions opts = {}) {
  QuotaGrantPlan plan;
  if (tokens == 0) {  // the defined no-op, as in bucket_consume
    plan.admitted = true;
    return plan;
  }
  const std::uint64_t from_child = take_child(tokens);
  std::uint64_t from_parent = 0;
  std::uint64_t reserved = 0;
  if (from_child < tokens) {
    const std::uint64_t shortfall = tokens - from_child;
    reserved = reserve(shortfall);
    if (reserved == shortfall) {
      from_parent = take_parent(shortfall);
    } else if (opts.partial_ok && reserved > 0) {
      // Degraded mode accepts a partial reservation and borrows only what
      // was secured; the all-or-nothing path must not (a short borrow
      // would turn into a short grant and a spurious rejection).
      from_parent = take_parent(reserved);
    }
  }
  const QuotaSettlement settle =
      quota_settle(tokens, from_child, from_parent, opts);
  if (settle.admitted) {
    // A degraded (partial) admit may hold a reservation larger than the
    // parent tokens it actually claimed; give the unused headroom back so
    // outstanding borrow == from_parent, the amount release() will return.
    if (reserved > from_parent) unreserve(reserved - from_parent);
    plan.admitted = true;
    plan.from_child = from_child;
    plan.from_parent = from_parent;
    return plan;
  }
  // Pool before headroom, the same ordering release() documents: the
  // parent grab must be observable in the pool again before the
  // reservation frees, or a racing reservation could win headroom whose
  // tokens are still in flight back and falsely reject.
  if (settle.refund_parent > 0) put_parent(settle.refund_parent);
  if (settle.refund_child > 0) put_child(settle.refund_child);
  if (reserved > 0) unreserve(reserved);
  return plan;
}

template <class TakeChild, class Reserve, class Unreserve, class TakeParent,
          class PutChild, class PutParent>
[[deprecated("pass svc::ConsumeOptions (kPartialOk / kAllOrNothing)")]]
QuotaGrantPlan quota_acquire(std::uint64_t tokens, TakeChild&& take_child,
                             Reserve&& reserve, Unreserve&& unreserve,
                             TakeParent&& take_parent, PutChild&& put_child,
                             PutParent&& put_parent, bool allow_partial) {
  return quota_acquire(tokens, std::forward<TakeChild>(take_child),
                       std::forward<Reserve>(reserve),
                       std::forward<Unreserve>(unreserve),
                       std::forward<TakeParent>(take_parent),
                       std::forward<PutChild>(put_child),
                       std::forward<PutParent>(put_parent),
                       ConsumeOptions{allow_partial});
}

// ---------------------------------------------------------------------------
// Overload-manager decision rules (svc::OverloadManager and the simulator's
// sim::simulate_overload drive the exact same ladder; see svc/overload.hpp).
// Signals arrive as normalized 0–1 "pressure" readings, are combined by
// combine_pressure, and map to a tier through overload_tier; each tier's
// interventions come from the monotone action table overload_actions.

// The escalation ladder. Tiers are ordered by severity and the action table
// below is monotone — every tier keeps the interventions of the tiers under
// it — so operators can reason in "at least" terms: a system at
// kDegradePartial already has shrunken batches and forced elimination.
enum class OverloadTier : std::uint8_t {
  kNominal = 0,         // no intervention
  kShrinkBatch = 1,     // shrink batch/refill chunks (bound exclusive holds)
  kForceEliminate = 2,  // force elimination pairing and the adaptive swap
  kDegradePartial = 3,  // all-or-nothing consumes degrade to partial grants
  kShedTenants = 4,     // shed whole tenants by weight, refund held grants
};

inline constexpr std::size_t kNumOverloadTiers = 5;

constexpr const char* overload_tier_name(OverloadTier tier) noexcept {
  switch (tier) {
    case OverloadTier::kNominal:
      return "nominal";
    case OverloadTier::kShrinkBatch:
      return "shrink-batch";
    case OverloadTier::kForceEliminate:
      return "force-eliminate";
    case OverloadTier::kDegradePartial:
      return "degrade-partial";
    case OverloadTier::kShedTenants:
      return "shed-tenants";
  }
  return "?";
}

// Escalation thresholds with recovery hysteresis. enter[i] is the combined
// pressure at or above which tier i engages; enter[0] is unused (nominal
// needs no entry). A tier, once entered, is only left when pressure drops
// to or below its *exit* threshold enter[i] - hysteresis — the gap is what
// keeps a signal oscillating around a boundary from flapping actions on
// and off every sample.
struct OverloadThresholds {
  double enter[kNumOverloadTiers] = {0.0, 0.50, 0.70, 0.85, 0.95};
  double hysteresis = 0.10;
};

// The tier rule. Escalation is immediate: the result is at least the
// highest tier whose enter threshold the pressure meets. De-escalation is
// hysteretic: from `current`, the tier only drops to the highest tier
// still *held* — one whose exit threshold (enter - hysteresis) the
// pressure still exceeds — so recovery retraces the ladder without
// re-triggering on boundary noise. Pure and total: any pressure, any
// current tier.
constexpr OverloadTier overload_tier(double pressure, OverloadTier current,
                                     const OverloadThresholds& th) noexcept {
  std::size_t up = 0;
  for (std::size_t i = 1; i < kNumOverloadTiers; ++i) {
    if (pressure >= th.enter[i]) up = i;
  }
  const auto cur = static_cast<std::size_t>(current);
  if (up >= cur) return static_cast<OverloadTier>(up);
  std::size_t held = 0;
  for (std::size_t i = 1; i <= cur; ++i) {
    if (pressure > th.enter[i] - th.hysteresis) held = i;
  }
  return static_cast<OverloadTier>(held > up ? held : up);
}

// What each tier actually does to the service layer. The table is monotone
// in the tier (checked by test_svc_policy and the bench's monotone-tiers
// gate): batch_divisor never shrinks back and the booleans never turn off
// as the tier climbs.
struct OverloadActions {
  // Batched refills/traversals divide their chunk size by this (floor 1):
  // smaller exclusive holds bound the latency a single batch can impose.
  std::size_t batch_divisor = 1;
  // Force the elimination front-end to pair aggressively and the adaptive
  // backend to take its cold→hot swap immediately.
  bool force_eliminate = false;
  // Degrade all-or-nothing consumes/acquires to allow_partial grants.
  bool degrade_to_partial = false;
  // Shed whole tenants (shed_set below) with exact refund of held grants.
  bool shed_tenants = false;
};

inline constexpr std::size_t kOverloadBatchDivisor = 4;

constexpr OverloadActions overload_actions(OverloadTier tier) noexcept {
  OverloadActions a;
  if (tier >= OverloadTier::kShrinkBatch) a.batch_divisor = kOverloadBatchDivisor;
  if (tier >= OverloadTier::kForceEliminate) a.force_eliminate = true;
  if (tier >= OverloadTier::kDegradePartial) a.degrade_to_partial = true;
  if (tier >= OverloadTier::kShedTenants) a.shed_tenants = true;
  return a;
}

// Pressure readings live in [0, 1]; everything a monitor produces is
// clamped through this before combining.
constexpr double clamp_pressure(double p) noexcept {
  return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
}

// A windowed rate signal normalized against the rate that counts as
// saturation: stalls/op against the stall rate considered fully saturated,
// rejects/attempt against 1.0, and so on. The empty window reads as zero
// pressure — an idle system must decay toward nominal, not hold its last
// tier forever.
inline double window_pressure(const LoadWindow& window,
                              double saturation_rate) noexcept {
  if (window.ops == 0 || saturation_rate <= 0.0) return 0.0;
  return clamp_pressure(window.event_rate() / saturation_rate);
}

// A level signal: current occupancy over capacity (admission queue depth,
// per-tenant outstanding borrow against its limit). Capacity 0 means "no
// budget at all": any occupancy against it is full saturation (1.0), and
// an empty gauge is idle (0.0). The earlier reading of capacity-0 as
// always-zero pressure silently blinded the tier ladder to a resource
// whose budget had been reconfigured away while holders were still
// outstanding — exactly the state a reweigh can now produce live.
constexpr double occupancy_pressure(std::uint64_t value,
                                    std::uint64_t capacity) noexcept {
  if (capacity == 0) return value > 0 ? 1.0 : 0.0;
  return clamp_pressure(static_cast<double>(value) /
                        static_cast<double>(capacity));
}

// Combining rule: the worst signal wins. Max (not sum or mean) because
// pressure readings are not commensurable — a saturated borrow cap is a
// real overload even when every other signal is idle, and averaging it
// away would be exactly the failure mode an overload manager exists to
// prevent.
inline double combine_pressure(const std::vector<double>& readings) noexcept {
  double worst = 0.0;
  for (const double r : readings) {
    const double p = clamp_pressure(r);
    if (p > worst) worst = p;
  }
  return worst;
}

// The shed selection: lowest-weight tenants go first (weight is the same
// importance signal the borrow limits divide by), ties broken toward the
// higher index so tenant 0 — conventionally the most important — is shed
// last. Tenants are added until the shed weight reaches `fraction` of the
// total; at least one tenant is shed for any positive fraction, and the
// rule never sheds *every* tenant (a manager that sheds 100% of its load
// has just failed differently). Deterministic; returns ascending indices.
inline std::vector<std::size_t> shed_set(
    const std::vector<std::uint64_t>& weights, double fraction) {
  if (weights.size() <= 1 || fraction <= 0.0) return {};
  std::vector<std::size_t> order(weights.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (weights[a] != weights[b]) return weights[a] < weights[b];
              return a > b;
            });
  double total = 0.0;
  for (const std::uint64_t w : weights) total += static_cast<double>(w);
  const double target = total * (fraction > 1.0 ? 1.0 : fraction);
  std::vector<std::size_t> shed;
  double shed_weight = 0.0;
  for (const std::size_t t : order) {
    if (shed.size() + 1 >= weights.size()) break;  // never shed everyone
    shed.push_back(t);
    shed_weight += static_cast<double>(weights[t]);
    if (shed_weight >= target) break;
  }
  std::sort(shed.begin(), shed.end());
  return shed;
}

// ---------------------------------------------------------------------------
// Hot-reconfiguration decision rules (svc::ReconfigEngine consumers and the
// simulator's sim::simulate_reconfig mirror share these; see svc/reconfig.hpp
// for the staged-commit protocol itself).

// Batch/refill chunking under a divisor — the shrink-batch action's
// arithmetic, and the chunk a staged bucket re-spec adopts when it folds the
// current overload tier into its configuration. Floor 1: a divided chunk
// still makes progress.
constexpr std::size_t divided_chunk(std::size_t chunk,
                                    std::size_t divisor) noexcept {
  if (divisor <= 1) return chunk < 1 ? 1 : chunk;
  const std::size_t divided = chunk / divisor;
  return divided < 1 ? 1 : divided;
}

// Refill/batch chunks live in 1..256 everywhere (NetTokenBucket's refill
// scratch block is sized to this); a staged re-spec outside the range is
// rejected before anything is built.
inline constexpr std::size_t kMaxRefillChunk = 256;

// When a staged bucket re-spec is safe to commit: the chunk must be a legal
// refill chunk. (The backend spec itself needs no rule — every pool kind
// migrates by drain/re-inject, conserving the count exactly.)
constexpr bool respec_safe(std::size_t refill_chunk) noexcept {
  return refill_chunk >= 1 && refill_chunk <= kMaxRefillChunk;
}

// When a staged weight vector is safe to commit against a live hierarchy:
// same tenant count (weights are positional — a resize would orphan
// outstanding borrows), every weight positive (a zero weight is a shed, not
// a share, and would make the tenant's limit permanently zero while its
// borrows stay outstanding).
inline bool reweigh_safe(std::size_t tenants,
                         const std::vector<std::uint64_t>& weights) noexcept {
  if (weights.size() != tenants || tenants == 0) return false;
  for (const std::uint64_t w : weights) {
    if (w == 0) return false;
  }
  return true;
}

// The whole-vector re-division of a borrow budget: every tenant's limit
// recomputed from the *same* staged vector, so the sum-never-exceeds-budget
// sizing rule holds for the published vector as a unit. This is why a
// reweigh goes through the reconfig engine rather than storing per-tenant
// atomics one at a time: a reader mixing limits from two generations could
// see a vector whose limit sum exceeds the budget, and two tenants could
// then reserve more parent headroom than the pool was sized for.
inline std::vector<std::uint64_t> reweigh_limits(
    std::uint64_t budget, const std::vector<std::uint64_t>& weights) {
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  std::vector<std::uint64_t> limits(weights.size());
  for (std::size_t t = 0; t < weights.size(); ++t) {
    limits[t] = weighted_borrow_limit(budget, weights[t], total);
  }
  return limits;
}

// How a re-divided limit meets outstanding borrows: tokens already on loan
// above the new limit are never clawed back — the grant holders release
// exactly what they hold, in their own time. The overage merely blocks new
// reservations (borrow_allowance yields 0 while outstanding >= limit) until
// releases drain it. Pure bookkeeping for monitors and the simulator.
constexpr std::uint64_t borrow_overage(std::uint64_t outstanding,
                                       std::uint64_t limit) noexcept {
  return outstanding > limit ? outstanding - limit : 0;
}

}  // namespace cnet::svc
