// Backend-independent *decision* logic of the service layer, factored out
// of the concurrent implementations so the virtual-time multicore simulator
// (sim::MulticoreModel) runs the exact same rules as the real machinery —
// when an adaptive counter switches, what value an eliminated pair agrees
// on, how a bucket consume grabs and refunds — instead of a drifting
// reimplementation. Everything here is pure: no atomics, no time, no I/O.
#pragma once

#include <cstdint>
#include <utility>

namespace cnet::svc {

// Switch tuning for the adaptive backend (svc::AdaptiveCounter and the
// simulator's adaptive model both decide through should_switch below).
struct AdaptiveTuning {
  // Per-slot ops between LoadStats probes.
  std::uint64_t sample_interval = 2048;
  // Windows smaller than this never trigger (startup noise guard).
  std::uint64_t min_window_ops = 4096;
  // Stalls per op in one window that trigger the central→network swap.
  double stall_rate_threshold = 0.05;
};

// One observation window: ops completed and contention events (stalls, CAS
// retries — whatever total the observer feeds in) since the previous
// sample. svc::LoadStats produces these from live threads; the simulator
// produces them from virtual-time stall events.
struct LoadWindow {
  std::uint64_t ops = 0;
  std::uint64_t events = 0;
  double event_rate() const noexcept {
    return ops == 0 ? 0.0
                    : static_cast<double>(events) / static_cast<double>(ops);
  }
};

// The central→network switch rule: a window big enough to trust whose
// stall rate crosses the threshold.
inline bool should_switch(const LoadWindow& window,
                          const AdaptiveTuning& tuning) noexcept {
  if (window.ops < tuning.min_window_ops) return false;
  return window.event_rate() >= tuning.stall_rate_threshold;
}

// The elimination pairing name: the value both sides of a collision agree
// on, derived from the slot index and the slot's epoch at pairing time.
// Always negative, unique per collision, never collides with the
// non-negative values real backends assign — so paired inc/dec cancel
// exactly in any inc-minus-dec multiset.
constexpr std::int64_t elimination_pair_value(std::size_t num_slots,
                                              std::size_t slot,
                                              std::uint64_t epoch) noexcept {
  return -1 - static_cast<std::int64_t>(epoch * num_slots + slot);
}

// The token-bucket consume plan: grab up to `tokens` through `take_n`
// (which returns how many it claimed; zero is conclusive — the pool was
// observably empty), and on an all-or-nothing shortfall refund the partial
// grab through `put_n`. Returns tokens actually consumed. NetTokenBucket
// runs this against a live rt::Counter; the simulator runs it against its
// virtual-time pool models.
//
// tokens == 0 is a defined, trivially successful no-op: neither take_n nor
// put_n is ever invoked and 0 is returned. (A zero-token request is vacuous
// in both partial and all-or-nothing modes — "all of nothing" is nothing —
// so it must not be reported or treated as a rejection.)
template <class TakeN, class PutN>
std::uint64_t bucket_consume(std::uint64_t tokens, bool allow_partial,
                             TakeN&& take_n, PutN&& put_n) {
  if (tokens == 0) return 0;  // the defined no-op, never a backend touch
  std::uint64_t got = 0;
  while (got < tokens) {
    const std::uint64_t grabbed = take_n(tokens - got);
    if (grabbed == 0) break;
    got += grabbed;
  }
  if (!allow_partial && got < tokens && got > 0) {
    put_n(got);
    got = 0;
  }
  return got;
}

// ---------------------------------------------------------------------------
// Quota-hierarchy decision rules (svc::QuotaHierarchy and the simulator's
// quota model share these; see sim/multicore.cpp, which drives the same
// rules in continuation-passing form).

// A tenant's parent-borrow cap under the weighted max-borrow policy: its
// weight's share of the hierarchy's borrow budget, rounded down. The sum
// over all tenants never exceeds `budget`, so sizing the budget at most
// (parent capacity - largest single cost) guarantees a successful
// reservation always finds its tokens in the parent pool — the isolation
// property the hierarchy's checks gate on.
constexpr std::uint64_t weighted_borrow_limit(
    std::uint64_t budget, std::uint64_t weight,
    std::uint64_t total_weight) noexcept {
  if (total_weight == 0) return 0;
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(budget) * weight / total_weight);
}

// How much more a tenant may draw from the parent right now: with
// `outstanding` tokens already borrowed against `limit`, at most this much
// of `want` is grantable. Pure arithmetic; the concurrent reservation in
// QuotaHierarchy CAS-loops over it so `outstanding` can never overshoot the
// limit, even transiently.
constexpr std::uint64_t borrow_allowance(std::uint64_t want,
                                         std::uint64_t outstanding,
                                         std::uint64_t limit) noexcept {
  if (outstanding >= limit) return 0;
  return want < limit - outstanding ? want : limit - outstanding;
}

// The all-or-nothing settlement of a two-level grab: given what the child
// and parent takes actually yielded, either the request is fully covered
// (admitted, keep both parts) or every token goes back to the level it was
// taken from. tokens == 0 settles as admitted with empty parts — the same
// defined no-op as bucket_consume's.
struct QuotaSettlement {
  bool admitted = false;
  std::uint64_t refund_child = 0;
  std::uint64_t refund_parent = 0;
};

constexpr QuotaSettlement quota_settle(std::uint64_t tokens,
                                       std::uint64_t from_child,
                                       std::uint64_t from_parent) noexcept {
  if (from_child + from_parent == tokens) return {true, 0, 0};
  return {false, from_child, from_parent};
}

// Composition of a successful (or rejected) two-level acquire.
struct QuotaGrantPlan {
  bool admitted = false;
  std::uint64_t from_child = 0;   // tokens covered by the tenant's bucket
  std::uint64_t from_parent = 0;  // tokens borrowed from the shared parent
};

// The two-level acquire plan: take from the tenant's child bucket first
// (partial), cover any shortfall from the shared parent only after a
// successful reservation against the tenant's borrow limit, and on failure
// refund every token to the level it came from and return the reservation.
// take_child/take_parent claim up to n and return what they got; reserve(n)
// returns how much borrow headroom was secured (all-or-nothing decisions
// need exactly n); unreserve(n) gives headroom back when the grant fails.
// On success the reservation is kept — it *is* the tenant's outstanding
// borrow until release().
template <class TakeChild, class Reserve, class Unreserve, class TakeParent,
          class PutChild, class PutParent>
QuotaGrantPlan quota_acquire(std::uint64_t tokens, TakeChild&& take_child,
                             Reserve&& reserve, Unreserve&& unreserve,
                             TakeParent&& take_parent, PutChild&& put_child,
                             PutParent&& put_parent) {
  QuotaGrantPlan plan;
  if (tokens == 0) {  // the defined no-op, as in bucket_consume
    plan.admitted = true;
    return plan;
  }
  const std::uint64_t from_child = take_child(tokens);
  std::uint64_t from_parent = 0;
  std::uint64_t reserved = 0;
  if (from_child < tokens) {
    const std::uint64_t shortfall = tokens - from_child;
    reserved = reserve(shortfall);
    if (reserved == shortfall) from_parent = take_parent(shortfall);
  }
  const QuotaSettlement settle = quota_settle(tokens, from_child, from_parent);
  if (settle.admitted) {
    plan.admitted = true;
    plan.from_child = from_child;
    plan.from_parent = from_parent;
    return plan;
  }
  // Pool before headroom, the same ordering release() documents: the
  // parent grab must be observable in the pool again before the
  // reservation frees, or a racing reservation could win headroom whose
  // tokens are still in flight back and falsely reject.
  if (settle.refund_parent > 0) put_parent(settle.refund_parent);
  if (settle.refund_child > 0) put_child(settle.refund_child);
  if (reserved > 0) unreserve(reserved);
  return plan;
}

}  // namespace cnet::svc
