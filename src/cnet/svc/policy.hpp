// Backend-independent *decision* logic of the service layer, factored out
// of the concurrent implementations so the virtual-time multicore simulator
// (sim::MulticoreModel) runs the exact same rules as the real machinery —
// when an adaptive counter switches, what value an eliminated pair agrees
// on, how a bucket consume grabs and refunds — instead of a drifting
// reimplementation. Everything here is pure: no atomics, no time, no I/O.
#pragma once

#include <cstdint>
#include <utility>

namespace cnet::svc {

// Switch tuning for the adaptive backend (svc::AdaptiveCounter and the
// simulator's adaptive model both decide through should_switch below).
struct AdaptiveTuning {
  // Per-slot ops between LoadStats probes.
  std::uint64_t sample_interval = 2048;
  // Windows smaller than this never trigger (startup noise guard).
  std::uint64_t min_window_ops = 4096;
  // Stalls per op in one window that trigger the central→network swap.
  double stall_rate_threshold = 0.05;
};

// One observation window: ops completed and contention events (stalls, CAS
// retries — whatever total the observer feeds in) since the previous
// sample. svc::LoadStats produces these from live threads; the simulator
// produces them from virtual-time stall events.
struct LoadWindow {
  std::uint64_t ops = 0;
  std::uint64_t events = 0;
  double event_rate() const noexcept {
    return ops == 0 ? 0.0
                    : static_cast<double>(events) / static_cast<double>(ops);
  }
};

// The central→network switch rule: a window big enough to trust whose
// stall rate crosses the threshold.
inline bool should_switch(const LoadWindow& window,
                          const AdaptiveTuning& tuning) noexcept {
  if (window.ops < tuning.min_window_ops) return false;
  return window.event_rate() >= tuning.stall_rate_threshold;
}

// The elimination pairing name: the value both sides of a collision agree
// on, derived from the slot index and the slot's epoch at pairing time.
// Always negative, unique per collision, never collides with the
// non-negative values real backends assign — so paired inc/dec cancel
// exactly in any inc-minus-dec multiset.
constexpr std::int64_t elimination_pair_value(std::size_t num_slots,
                                              std::size_t slot,
                                              std::uint64_t epoch) noexcept {
  return -1 - static_cast<std::int64_t>(epoch * num_slots + slot);
}

// The token-bucket consume plan: grab up to `tokens` through `take_n`
// (which returns how many it claimed; zero is conclusive — the pool was
// observably empty), and on an all-or-nothing shortfall refund the partial
// grab through `put_n`. Returns tokens actually consumed. NetTokenBucket
// runs this against a live rt::Counter; the simulator runs it against its
// virtual-time pool models.
template <class TakeN, class PutN>
std::uint64_t bucket_consume(std::uint64_t tokens, bool allow_partial,
                             TakeN&& take_n, PutN&& put_n) {
  std::uint64_t got = 0;
  while (got < tokens) {
    const std::uint64_t grabbed = take_n(tokens - got);
    if (grabbed == 0) break;
    got += grabbed;
  }
  if (!allow_partial && got < tokens && got > 0) {
    put_n(got);
    got = 0;
  }
  return got;
}

}  // namespace cnet::svc
