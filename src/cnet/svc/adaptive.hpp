// Adaptive backend switching: a Counter that starts on the cheap central
// backend — on an idle or lightly loaded deployment the single fetch_add
// word beats any network — and hot-swaps to the counting-network backend
// once a svc::LoadStats probe sees the stall rate (CAS retries per op)
// cross a threshold, the point where the central cache line has become the
// bottleneck the paper's networks exist to break (envoy's adaptive
// admission filters make the same move between cheap and resilient modes).
//
// The swap is the svc::ReconfigEngine staged-commit protocol — this class
// was the machinery's original home and is now its first client: ops run
// in engine reader sections, the switch stages the hot backend and commits
// it, and the engine's quiescence wait (the runtime analogue of the
// quiescent states of paper §2.2 / topology/quiescent, where the old
// structure's outstanding token count is a well-defined function of what
// entered it) is what makes the exact pool-token migration provable.
//
// Pool semantics only: the value sequence restarts on the new backend, so
// counts (token buckets, semaphore pools) are conserved and bound at zero,
// but values must not be used as identities. During the brief drain window
// consumers may observe an emptier pool than the true total (transient
// under-admission); over-admission is impossible at every interleaving.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cnet/runtime/counter.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/load_stats.hpp"
#include "cnet/svc/overload.hpp"
#include "cnet/svc/reconfig.hpp"

namespace cnet::svc {

class AdaptiveCounter final : public rt::Counter,
                              public OverloadAware,
                              public Reconfigurable {
 public:
  struct Config {
    BackendKind cold = BackendKind::kCentralAtomic;
    BackendKind hot = BackendKind::kBatchedNetwork;
    // Network shape for the hot backend (elim/adaptive sub-knobs unused).
    BackendConfig net;
    AdaptiveTuning tuning;
  };

  explicit AdaptiveCounter(const Config& cfg);
  AdaptiveCounter() : AdaptiveCounter(Config{}) {}

  std::int64_t fetch_increment(std::size_t thread_hint) override;
  void fetch_increment_batch(std::size_t thread_hint, std::size_t k,
                             std::int64_t* out_values) override;
  bool try_fetch_decrement(std::size_t thread_hint,
                           std::int64_t* reclaimed = nullptr) override;
  std::uint64_t try_fetch_decrement_n(std::size_t thread_hint,
                                      std::uint64_t n) override;
  // Refund traffic is deliberately invisible to the switch probe: the
  // tokens go back through the active backend, but no ops are charged to
  // LoadStats and the stalls the refund batch itself causes are excluded
  // from the sampled window. Without this a pure-reject storm — all-or-
  // nothing consumes that grab a partial pool and immediately un-consume
  // it — inflates the window with traffic that admitted nothing and its
  // own CAS contention, forcing a spurious central→network swap.
  void refund_n(std::size_t thread_hint, std::uint64_t n) override;

  std::string name() const override;
  // Lifetime contention total minus the stalls banked against refund
  // batches — the same refund-adjusted view the internal switch probe
  // windows over. Reporting the raw cold+hot total here resurfaced the
  // refund-storm bug externally: a stall-rate overload monitor windowing
  // this count saw the very stalls the probe deliberately excludes and
  // could escalate on a storm that admitted nothing.
  std::uint64_t stall_count() const override {
    const std::uint64_t raw = cold_->stall_count() + hot_->stall_count();
    const std::uint64_t excluded =
        refund_stalls_.load(std::memory_order_relaxed);
    return raw >= excluded ? raw - excluded : 0;
  }
  // Diagnostics for the adjustment above: the unadjusted backend total and
  // the banked refund exclusion. stall_count() == max(0,
  // backend_stall_count() - refund_stall_count()) at every instant.
  std::uint64_t backend_stall_count() const {
    return cold_->stall_count() + hot_->stall_count();
  }
  std::uint64_t refund_stall_count() const noexcept {
    return refund_stalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t traversal_count() const override {
    return cold_->traversal_count() + hot_->traversal_count();
  }
  std::uint64_t batch_pass_count() const override {
    return cold_->batch_pass_count() + hot_->batch_pass_count();
  }

  // True once the hot backend serves all new ops (the swap and token
  // migration have completed).
  bool switched() const noexcept {
    return switched_.load(std::memory_order_acquire);
  }
  // Forces the swap regardless of observed load; blocks until the swap
  // (whoever performs it) has completed. Deterministic-test and
  // operator-escape hatch.
  void force_switch(std::size_t thread_hint);

  // The version stamp: 1 while cold, 2 once the swap has committed.
  std::uint64_t config_version() const noexcept override {
    return engine_.config_version();
  }
  // Watch the swap commit (Reconfigurable contract; fires once, with
  // version 2, on whichever thread performs the swap).
  void subscribe(CommitCallback on_commit) override {
    engine_.subscribe(std::move(on_commit));
  }

  // Overload hook: once attached, a tier carrying force_eliminate makes
  // the next sample boundary take the cold→hot swap immediately instead of
  // waiting for the stall-rate rule. Checked only at sample boundaries so
  // the hot path stays one relaxed fetch_add; token conservation across
  // the forced swap is the same exact migration as the organic one.
  void attach_overload(const OverloadManager* manager) noexcept override {
    overload_.store(manager, std::memory_order_release);
  }

  const LoadStats& stats() const noexcept { return stats_; }

 private:
  // Post-op bookkeeping: sample the load probe and switch when warranted.
  void after_ops(std::size_t thread_hint, std::uint64_t n);
  void do_switch(std::size_t thread_hint);

  Config cfg_;
  // Owns the active backend (the cold one until the switch commits) and
  // keeps the retired cold backend alive afterwards, so the observation
  // pointers below stay valid for telemetry across the swap.
  ReconfigEngine<rt::Counter> engine_;
  std::unique_ptr<rt::Counter> hot_staged_;  // owned here until the commit
  rt::Counter* cold_;  // observation pointers; storage lives in engine_ /
  rt::Counter* hot_;   // hot_staged_ (then engine_ after the commit)
  std::atomic<bool> switch_claimed_{false};
  std::atomic<bool> switched_{false};
  // True when the cold kind's *increment* path can record stalls (the CAS
  // word); only then do refund batches bank exclusions (see refund_n).
  bool cold_increments_stall_ = false;
  // Stalls attributed to refund batches, subtracted from the cold
  // backend's lifetime total when a window is sampled. The bracket can
  // pick up concurrent ops' stalls, so each refund banks at most its
  // token count, and the sampler's clamp turns any residual
  // over-exclusion into a smaller window, never an underflowed one.
  std::atomic<std::uint64_t> refund_stalls_{0};
  LoadStats stats_;
  std::atomic<const OverloadManager*> overload_{nullptr};
};

}  // namespace cnet::svc
