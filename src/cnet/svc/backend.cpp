#include "cnet/svc/backend.hpp"

#include <string>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/svc/adaptive.hpp"

namespace cnet::svc {

namespace {
constexpr std::string_view kElimPrefix = "elim+";
}  // namespace

const char* backend_kind_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kCentralAtomic: return "central-atomic";
    case BackendKind::kCentralCas: return "central-cas";
    case BackendKind::kCentralMutex: return "central-mutex";
    case BackendKind::kNetwork: return "network";
    case BackendKind::kBatchedNetwork: return "batched-network";
    case BackendKind::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) noexcept {
  for (const BackendKind kind : kPoolBackendKinds) {
    if (name == backend_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

std::string backend_spec_name(const BackendSpec& spec) {
  return spec.elimination
             ? std::string(kElimPrefix) + backend_kind_name(spec.kind)
             : std::string(backend_kind_name(spec.kind));
}

std::optional<BackendSpec> parse_backend_spec(std::string_view name) noexcept {
  BackendSpec spec;
  if (name.substr(0, kElimPrefix.size()) == kElimPrefix) {
    spec.elimination = true;
    name.remove_prefix(kElimPrefix.size());
  }
  const auto kind = parse_backend_kind(name);
  if (!kind) return std::nullopt;
  spec.kind = *kind;
  return spec;
}

std::unique_ptr<rt::Counter> make_counter(BackendKind kind,
                                          const BackendConfig& cfg) {
  const auto label = [&cfg](const char* prefix) {
    return std::string(prefix) + "C(" + std::to_string(cfg.width_in) + "," +
           std::to_string(cfg.width_out) + ")";
  };
  switch (kind) {
    case BackendKind::kCentralAtomic:
      return std::make_unique<rt::AtomicCounter>();
    case BackendKind::kCentralCas:
      return std::make_unique<rt::CasCounter>();
    case BackendKind::kCentralMutex:
      return std::make_unique<rt::MutexCounter>();
    case BackendKind::kNetwork:
      return std::make_unique<rt::NetworkCounter>(
          core::make_counting(cfg.width_in, cfg.width_out), label(""),
          cfg.mode);
    case BackendKind::kBatchedNetwork:
      return std::make_unique<rt::BatchedNetworkCounter>(
          core::make_counting(cfg.width_in, cfg.width_out),
          label("batched "), cfg.mode);
    case BackendKind::kAdaptive: {
      AdaptiveCounter::Config acfg;
      acfg.net = cfg;
      acfg.tuning = cfg.adaptive;
      return std::make_unique<AdaptiveCounter>(acfg);
    }
  }
  return nullptr;
}

std::unique_ptr<rt::Counter> make_counter(const BackendSpec& spec,
                                          const BackendConfig& cfg) {
  auto counter = make_counter(spec.kind, cfg);
  if (spec.elimination) {
    counter = std::make_unique<ElimCounter>(std::move(counter), cfg.elim);
  }
  return counter;
}

}  // namespace cnet::svc
