#include "cnet/svc/backend.hpp"

#include <string>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/network_counter.hpp"

namespace cnet::svc {

const char* backend_kind_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kCentralAtomic: return "central-atomic";
    case BackendKind::kCentralCas: return "central-cas";
    case BackendKind::kCentralMutex: return "central-mutex";
    case BackendKind::kNetwork: return "network";
    case BackendKind::kBatchedNetwork: return "batched-network";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) noexcept {
  for (const BackendKind kind : kAllBackendKinds) {
    if (name == backend_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<rt::Counter> make_counter(BackendKind kind,
                                          const BackendConfig& cfg) {
  const auto label = [&cfg](const char* prefix) {
    return std::string(prefix) + "C(" + std::to_string(cfg.width_in) + "," +
           std::to_string(cfg.width_out) + ")";
  };
  switch (kind) {
    case BackendKind::kCentralAtomic:
      return std::make_unique<rt::AtomicCounter>();
    case BackendKind::kCentralCas:
      return std::make_unique<rt::CasCounter>();
    case BackendKind::kCentralMutex:
      return std::make_unique<rt::MutexCounter>();
    case BackendKind::kNetwork:
      return std::make_unique<rt::NetworkCounter>(
          core::make_counting(cfg.width_in, cfg.width_out), label(""),
          cfg.mode);
    case BackendKind::kBatchedNetwork:
      return std::make_unique<rt::BatchedNetworkCounter>(
          core::make_counting(cfg.width_in, cfg.width_out),
          label("batched "), cfg.mode);
  }
  return nullptr;
}

}  // namespace cnet::svc
