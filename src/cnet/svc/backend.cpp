#include "cnet/svc/backend.hpp"

#include <string>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/svc/adaptive.hpp"

namespace cnet::svc {

namespace {
constexpr std::string_view kElimPrefix = "elim+";
}  // namespace

const char* backend_kind_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kCentralAtomic: return "central-atomic";
    case BackendKind::kCentralCas: return "central-cas";
    case BackendKind::kCentralMutex: return "central-mutex";
    case BackendKind::kNetwork: return "network";
    case BackendKind::kBatchedNetwork: return "batched-network";
    case BackendKind::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) noexcept {
  for (const BackendKind kind : kPoolBackendKinds) {
    if (name == backend_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

std::string backend_spec_name(const BackendSpec& spec) {
  return spec.elimination
             ? std::string(kElimPrefix) + backend_kind_name(spec.kind)
             : std::string(backend_kind_name(spec.kind));
}

namespace {
std::string known_kinds_list() {
  std::string list;
  for (const BackendKind kind : kPoolBackendKinds) {
    if (!list.empty()) list += ", ";
    list += backend_kind_name(kind);
  }
  return list;
}
}  // namespace

ParseResult parse_backend_spec(std::string_view name) {
  ParseResult result;
  BackendSpec spec;
  std::string_view rest = name;
  if (rest.substr(0, kElimPrefix.size()) == kElimPrefix) {
    spec.elimination = true;
    rest.remove_prefix(kElimPrefix.size());
    if (rest.empty()) {
      result.error = "bare \"elim+\" prefix in \"" + std::string(name) +
                     "\": expected elim+<kind>";
      return result;
    }
  }
  const auto kind = parse_backend_kind(rest);
  if (!kind) {
    // Distinguish "right kind, junk appended" from "no such kind": the
    // former is usually a typo'd suffix worth pointing at directly.
    for (const BackendKind k : kPoolBackendKinds) {
      const std::string_view kind_name = backend_kind_name(k);
      if (rest.size() > kind_name.size() &&
          rest.substr(0, kind_name.size()) == kind_name) {
        result.error = "trailing garbage \"" +
                       std::string(rest.substr(kind_name.size())) +
                       "\" after backend kind \"" + std::string(kind_name) +
                       "\" in \"" + std::string(name) + "\"";
        return result;
      }
    }
    result.error = "unknown backend kind \"" + std::string(rest) + "\" in \"" +
                   std::string(name) + "\" (known: " + known_kinds_list() +
                   "; prefix with \"elim+\" for the elimination front-end)";
    return result;
  }
  spec.kind = *kind;
  result.spec = spec;
  return result;
}

std::unique_ptr<rt::Counter> make_counter(BackendKind kind,
                                          const BackendConfig& cfg) {
  const auto label = [&cfg](const char* prefix) {
    return std::string(prefix) + "C(" + std::to_string(cfg.width_in) + "," +
           std::to_string(cfg.width_out) + ")";
  };
  switch (kind) {
    case BackendKind::kCentralAtomic:
      return std::make_unique<rt::AtomicCounter>();
    case BackendKind::kCentralCas:
      return std::make_unique<rt::CasCounter>();
    case BackendKind::kCentralMutex:
      return std::make_unique<rt::MutexCounter>();
    case BackendKind::kNetwork:
      return std::make_unique<rt::NetworkCounter>(
          core::make_counting(cfg.width_in, cfg.width_out), label(""),
          cfg.mode);
    case BackendKind::kBatchedNetwork:
      return std::make_unique<rt::BatchedNetworkCounter>(
          core::make_counting(cfg.width_in, cfg.width_out),
          label("batched "), cfg.mode);
    case BackendKind::kAdaptive: {
      AdaptiveCounter::Config acfg;
      acfg.net = cfg;
      acfg.tuning = cfg.adaptive;
      return std::make_unique<AdaptiveCounter>(acfg);
    }
  }
  return nullptr;
}

std::unique_ptr<rt::Counter> make_counter(const BackendSpec& spec,
                                          const BackendConfig& cfg) {
  auto counter = make_counter(spec.kind, cfg);
  if (spec.elimination) {
    counter = std::make_unique<ElimCounter>(std::move(counter), cfg.elim);
  }
  return counter;
}

}  // namespace cnet::svc
