// Counter-backend selection for the service layer: one factory that every
// svc consumer, bench driver, and property test goes through, so "compare
// central vs. network vs. batched" is a loop over BackendKind instead of
// five hand-rolled constructions. The factory also composes the two
// pool-oriented layers this file's consumers opt into: the elimination
// front-end (BackendSpec::elimination wraps any kind in svc::ElimCounter)
// and the adaptive kind (kAdaptive starts central and hot-swaps to the
// batched network once observed stall rates cross a threshold).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "cnet/runtime/compiled_network.hpp"
#include "cnet/runtime/counter.hpp"
#include "cnet/svc/elimination.hpp"
#include "cnet/svc/policy.hpp"

namespace cnet::svc {

enum class BackendKind {
  kCentralAtomic,   // fetch_add on one cache line
  kCentralCas,      // CAS-retry on one cache line
  kCentralMutex,    // lock-protected
  kNetwork,         // NetworkCounter on C(w,t), per-token traversal
  kBatchedNetwork,  // BatchedNetworkCounter on C(w,t), amortized batches
  kAdaptive,        // starts kCentralAtomic, swaps to kBatchedNetwork under
                    // contention — pool semantics only (see AdaptiveCounter)
};

// The value-faithful kinds, in display order — the iteration axis for tests
// and benches that rely on exact fetch_increment identities (allocators,
// prefix properties). kAdaptive is deliberately absent: its backend swap
// restarts the value sequence, so it conserves *counts* (pools, buckets)
// but not identities.
inline constexpr BackendKind kAllBackendKinds[] = {
    BackendKind::kCentralAtomic, BackendKind::kCentralCas,
    BackendKind::kCentralMutex, BackendKind::kNetwork,
    BackendKind::kBatchedNetwork,
};

// Every kind usable as a token pool, value-faithful or not.
inline constexpr BackendKind kPoolBackendKinds[] = {
    BackendKind::kCentralAtomic,  BackendKind::kCentralCas,
    BackendKind::kCentralMutex,   BackendKind::kNetwork,
    BackendKind::kBatchedNetwork, BackendKind::kAdaptive,
};

// AdaptiveTuning (the kAdaptive switch knobs) lives in svc/policy.hpp with
// the rest of the shared decision logic.

// Shape of the counting network behind the network-backed kinds; ignored by
// the central ones. Defaults to the repo's workhorse C(8,24) = C(w, w·lg w).
struct BackendConfig {
  std::size_t width_in = 8;
  std::size_t width_out = 24;
  rt::BalancerMode mode = rt::BalancerMode::kFetchAdd;
  // Knobs for the composed layers; used only where the spec or kind asks
  // for them.
  ElimCounter::Config elim;
  AdaptiveTuning adaptive;
};

// A backend choice plus the composable elimination front-end: parsed from
// specs like "batched-network" or "elim+central-atomic".
struct BackendSpec {
  BackendKind kind = BackendKind::kBatchedNetwork;
  bool elimination = false;
};

const char* backend_kind_name(BackendKind kind) noexcept;
std::optional<BackendKind> parse_backend_kind(std::string_view name) noexcept;

// "elim+<kind>" or "<kind>"; round-trips with backend_spec_name.
std::string backend_spec_name(const BackendSpec& spec);

// Outcome of parsing a backend spec string: on success `spec` is set and
// `error` empty; on failure `spec` is empty and `error` carries the
// human-readable reason (unknown kind, bare/bad "elim+" prefix, trailing
// garbage after a known kind) so benches and examples can report *why* a
// --backend argument was rejected instead of silently falling back. The
// optional-style accessors keep `if (parsed)` / `*parsed` call sites
// reading naturally.
struct ParseResult {
  std::optional<BackendSpec> spec;
  std::string error;

  bool has_value() const noexcept { return spec.has_value(); }
  explicit operator bool() const noexcept { return spec.has_value(); }
  const BackendSpec& operator*() const { return *spec; }
  const BackendSpec* operator->() const { return &*spec; }
};

ParseResult parse_backend_spec(std::string_view name);

std::unique_ptr<rt::Counter> make_counter(BackendKind kind,
                                          const BackendConfig& cfg = {});
std::unique_ptr<rt::Counter> make_counter(const BackendSpec& spec,
                                          const BackendConfig& cfg = {});

}  // namespace cnet::svc
