// Counter-backend selection for the service layer: one factory that every
// svc consumer, bench driver, and property test goes through, so "compare
// central vs. network vs. batched" is a loop over BackendKind instead of
// five hand-rolled constructions.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "cnet/runtime/compiled_network.hpp"
#include "cnet/runtime/counter.hpp"

namespace cnet::svc {

enum class BackendKind {
  kCentralAtomic,   // fetch_add on one cache line
  kCentralCas,      // CAS-retry on one cache line
  kCentralMutex,    // lock-protected
  kNetwork,         // NetworkCounter on C(w,t), per-token traversal
  kBatchedNetwork,  // BatchedNetworkCounter on C(w,t), amortized batches
};

// All kinds, in display order — the iteration axis for tests and benches.
inline constexpr BackendKind kAllBackendKinds[] = {
    BackendKind::kCentralAtomic, BackendKind::kCentralCas,
    BackendKind::kCentralMutex, BackendKind::kNetwork,
    BackendKind::kBatchedNetwork,
};

// Shape of the counting network behind the network-backed kinds; ignored by
// the central ones. Defaults to the repo's workhorse C(8,24) = C(w, w·lg w).
struct BackendConfig {
  std::size_t width_in = 8;
  std::size_t width_out = 24;
  rt::BalancerMode mode = rt::BalancerMode::kFetchAdd;
};

const char* backend_kind_name(BackendKind kind) noexcept;
std::optional<BackendKind> parse_backend_kind(std::string_view name) noexcept;

std::unique_ptr<rt::Counter> make_counter(BackendKind kind,
                                          const BackendConfig& cfg = {});

}  // namespace cnet::svc
