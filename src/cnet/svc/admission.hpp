// The service-layer facade: one header wiring the token-bucket rate
// limiter and the sharded ID allocator behind a single admission call, the
// shape a front-end request path actually wants — "may this request run,
// and if so, under which globally-unique request ID?". Both components
// share one Counter backend kind chosen by AdmissionConfig, so swapping a
// whole deployment between central and counting-network admission is a
// one-field change.
#pragma once

#include <cstdint>
#include <string>

#include "cnet/svc/backend.hpp"
#include "cnet/svc/net_token_bucket.hpp"
#include "cnet/svc/sharded_id_allocator.hpp"

namespace cnet::svc {

struct AdmissionConfig {
  BackendKind backend = BackendKind::kBatchedNetwork;
  BackendConfig net;  // network shape for the network-backed kinds
  std::size_t shards = 4;
  ShardedIdAllocator::Config ids;
  NetTokenBucket::Config bucket;
  // Places an ElimCounter in front of the bucket pool, so colliding
  // refill/consume pairs cancel before touching the backend. Pool-only: the
  // ID shards always stay on a value-faithful backend (and when `backend`
  // is kAdaptive — pool semantics only — they fall back to central-atomic,
  // since a mid-run swap would restart the shard value sequences).
  bool elimination = false;
};

class OverloadManager;

class AdmissionController {
 public:
  struct Ticket {
    bool admitted = false;
    std::int64_t request_id = -1;  // valid iff admitted
    // Tokens actually charged: == cost on a normal admission, possibly
    // less under the overload manager's degrade-partial action, always 0
    // on rejection. Conservation contract: whatever a caller undoes, it
    // must refund exactly `charged` (never `cost`) through the bucket.
    std::uint64_t charged = 0;
  };

  explicit AdmissionController(const AdmissionConfig& cfg);

  // Charges `cost` tokens and on admission tags the request with a unique
  // ID from the sharded allocator. The charge is all-or-nothing — never
  // over-admitting is the bucket backend's bound-at-zero guarantee —
  // unless an attached overload manager's tier carries degrade_to_partial,
  // in which case a short pool still admits with Ticket::charged set to
  // the partial grab (at least 1). Either way no tokens are ever created:
  // charged tokens came out of the pool exactly once and a rejected call
  // leaves the pool untouched.
  Ticket admit(std::size_t thread_hint, std::uint64_t cost = 1);

  // Capacity addition via the pool's batched increment path (this *is*
  // load, unlike refunds of previously charged tokens).
  void refill(std::size_t thread_hint, std::uint64_t tokens) {
    bucket_.refill(thread_hint, tokens);
  }

  // Puts the admission path under an overload manager: the bucket (and its
  // pool's aware layers) get the shrink/force actions, and admit() starts
  // honoring degrade_to_partial as described above. The manager must
  // outlive this controller; nullptr detaches.
  void attach_overload(const OverloadManager* manager) noexcept {
    overload_ = manager;
    bucket_.attach_overload(manager);
  }

  NetTokenBucket& bucket() noexcept { return bucket_; }
  ShardedIdAllocator& ids() noexcept { return ids_; }
  // Total backend contention events across the bucket pool and ID shards.
  std::uint64_t stall_count() const {
    return bucket_.stall_count() + ids_.stall_count();
  }
  std::string name() const;

 private:
  NetTokenBucket bucket_;
  ShardedIdAllocator ids_;
  const OverloadManager* overload_ = nullptr;
};

}  // namespace cnet::svc
