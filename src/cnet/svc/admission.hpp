// The service-layer facade: one header wiring the token-bucket rate
// limiter and the sharded ID allocator behind a single admission call, the
// shape a front-end request path actually wants — "may this request run,
// and if so, under which globally-unique request ID?". Both components
// share one Counter backend kind chosen by AdmissionConfig, so swapping a
// whole deployment between central and counting-network admission is a
// one-field change.
#pragma once

#include <cstdint>
#include <string>

#include "cnet/svc/backend.hpp"
#include "cnet/svc/net_token_bucket.hpp"
#include "cnet/svc/sharded_id_allocator.hpp"

namespace cnet::svc {

struct AdmissionConfig {
  BackendKind backend = BackendKind::kBatchedNetwork;
  BackendConfig net;  // network shape for the network-backed kinds
  std::size_t shards = 4;
  ShardedIdAllocator::Config ids;
  NetTokenBucket::Config bucket;
  // Places an ElimCounter in front of the bucket pool, so colliding
  // refill/consume pairs cancel before touching the backend. Pool-only: the
  // ID shards always stay on a value-faithful backend (and when `backend`
  // is kAdaptive — pool semantics only — they fall back to central-atomic,
  // since a mid-run swap would restart the shard value sequences).
  bool elimination = false;
};

class AdmissionController {
 public:
  struct Ticket {
    bool admitted = false;
    std::int64_t request_id = -1;  // valid iff admitted
  };

  explicit AdmissionController(const AdmissionConfig& cfg);

  // Charges `cost` tokens all-or-nothing; on admission tags the request
  // with a unique ID from the sharded allocator.
  Ticket admit(std::size_t thread_hint, std::uint64_t cost = 1);

  void refill(std::size_t thread_hint, std::uint64_t tokens) {
    bucket_.refill(thread_hint, tokens);
  }

  NetTokenBucket& bucket() noexcept { return bucket_; }
  ShardedIdAllocator& ids() noexcept { return ids_; }
  std::uint64_t stall_count() const {
    return bucket_.stall_count() + ids_.stall_count();
  }
  std::string name() const;

 private:
  NetTokenBucket bucket_;
  ShardedIdAllocator ids_;
};

}  // namespace cnet::svc
