// Multi-tenant quota hierarchy over counting-network pools: each tenant
// owns a NetTokenBucket child, and a shortfall at the child borrows from a
// shared parent pool (any Counter backend spec, including elim+ fronts and
// the adaptive kind) under a weighted max-borrow policy — the two-level
// shape real rate-limit deployments run (per-tenant buckets over a shared
// cluster budget), and exactly the workload a counting network exists for:
// many cold tenants and a few hot ones all contending on one parent pool.
//
//            ┌────────────── parent pool (shared, any spec) ─────────────┐
//            │   borrow ≤ weighted limit   ▲ release returns the borrow  │
//            └───────▲──────────▲──────────┼──────────▲──────────────────┘
//                    │          │          │          │
//               child[0]   child[1]      ...     child[T-1]
//              (NetTokenBucket per tenant; acquire drains child first)
//
// Conservation is exact and level-local: every token in a grant is
// traceable to the tenant's child bucket or to a parent borrow
// (Grant::from_child / from_parent), and release() returns each part to
// the level it came from — the parent can never absorb a child's tokens or
// vice versa, so at quiescence each pool holds exactly its refills minus
// its outstanding grants.
//
// Isolation comes from the reservation: a tenant's outstanding parent
// borrow can never exceed its weighted limit, not even transiently (the
// reservation CAS-loops over svc::borrow_allowance rather than
// add-then-correct). Size the borrow budget at most the parent's capacity
// minus the largest single acquire cost and a successful reservation is
// guaranteed to find its tokens in the parent — a hot tenant saturating
// its cap cannot make a cold tenant's in-cap borrow fail.
//
// The decision rules (weighted_borrow_limit, borrow_allowance,
// quota_acquire/quota_settle, reweigh_limits) live in svc/policy.hpp and
// are shared with the virtual-time simulator's quota model
// (sim::simulate_quota), so tenant-isolation and parent-contention claims
// are reproducible deterministically on any host.
//
// The weight vector is hot-reconfigurable: reweigh() stages a whole new
// per-tenant limit vector (svc::ReconfigEngine) and publishes it as a
// unit. Atomicity of the vector matters — mixed-generation per-tenant
// limits could sum above the borrow budget and silently void the
// parent-sizing isolation guarantee. In-flight grants are unaffected:
// outstanding borrows above a shrunken limit are never clawed back
// (borrow_overage names the quantity); borrow_allowance simply returns 0
// until releases drain the overage, and release() stays an exact undo
// throughout.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cnet/svc/backend.hpp"
#include "cnet/svc/net_token_bucket.hpp"
#include "cnet/svc/reconfig.hpp"
#include "cnet/util/atomic.hpp"
#include "cnet/util/cacheline.hpp"

namespace cnet::svc {

class OverloadManager;

class QuotaHierarchy : public Reconfigurable {
 public:
  struct TenantConfig {
    std::uint64_t initial_tokens = 0;  // child bucket's starting pool
    std::uint64_t weight = 1;          // share of the parent borrow budget
  };

  struct Config {
    // Parent pool backend — the shared, contended structure. Any spec,
    // including "elim+..." and "adaptive".
    BackendSpec parent{BackendKind::kBatchedNetwork, false};
    // Per-tenant child bucket backend. Children see only their own
    // tenant's traffic, so the cheap central word is the right default.
    BackendSpec child{BackendKind::kCentralAtomic, false};
    BackendConfig net;               // network shape for network kinds
    NetTokenBucket::Config bucket;   // refill chunking for every bucket
    std::uint64_t parent_initial_tokens = 0;
    // Total parent tokens that may be out on loan at once, divided among
    // tenants by weight (weighted_borrow_limit). For the isolation
    // guarantee, keep it <= parent capacity - largest single acquire.
    std::uint64_t borrow_budget = 0;
  };

  // One admission outcome. A grant's parts record which level covered it;
  // release() needs the whole struct back to undo it exactly.
  struct Grant {
    bool admitted = false;
    std::uint32_t tenant = 0;
    std::uint64_t from_child = 0;
    std::uint64_t from_parent = 0;
    std::uint64_t tokens() const noexcept { return from_child + from_parent; }
  };

  QuotaHierarchy(const Config& cfg, std::vector<TenantConfig> tenants);

  // All-or-nothing by default: `tokens` from the tenant's child bucket
  // first, the shortfall borrowed from the parent within the tenant's
  // weighted limit; on any shortfall everything is refunded to the level it
  // came from and the grant is rejected. With opts.partial_ok a short yield
  // still admits, Grant parts recording exactly what was taken. tokens == 0
  // is a defined no-op that admits with empty parts (same contract as
  // NetTokenBucket::consume). Two overload interventions apply: a shed
  // tenant is rejected up front without touching any pool, and the
  // degrade-partial action forces partial_ok regardless of opts (so
  // release() remains an exact undo — conservation is level-local in every
  // mode). Over-admission is impossible in every mode: each granted token
  // was decremented from a pool bounded at zero.
  Grant acquire(std::size_t thread_hint, std::size_t tenant,
                std::uint64_t tokens, ConsumeOptions opts = kAllOrNothing);

  // Returns a grant's tokens: the child part to the tenant's bucket, the
  // parent part to the parent pool (pool first, then the borrow headroom,
  // so a concurrent reservation that wins the freed headroom always finds
  // the tokens already back in the pool). Both go through the refund path,
  // invisible to an adaptive backend's load probe.
  void release(std::size_t thread_hint, const Grant& grant);

  // Partially-spent settlement of a grant, for callers that consumed some
  // of a grant's tokens for good and hand back only the remainder (the
  // dist layer's lease ledger: an expired lease refunds its unspent part
  // exactly once). Refunds refund_child to the tenant's bucket and
  // refund_parent to the parent pool, while the borrow headroom is freed
  // for the grant's *entire* from_parent — spent parent tokens have left
  // the system for good and must stop occupying the tenant's weighted
  // limit, or spend would permanently leak reservation headroom. Requires
  // refund_child <= grant.from_child and refund_parent <= grant.from_parent;
  // call at most once per grant (it settles the whole grant — release() is
  // the refund_child == from_child, refund_parent == from_parent special
  // case). Conservation stays level-exact: each pool receives exactly the
  // unspent part of what it granted.
  void settle_spent(std::size_t thread_hint, const Grant& grant,
                    std::uint64_t refund_child, std::uint64_t refund_parent);

  // Capacity additions (these *are* load, unlike release's give-backs).
  void refill_tenant(std::size_t thread_hint, std::size_t tenant,
                     std::uint64_t tokens);
  void refill_parent(std::size_t thread_hint, std::uint64_t tokens) {
    parent_.refill(thread_hint, tokens);
  }

  // Shedding (the overload manager's top tier, but callable directly):
  // while shed, every acquire for the tenant is rejected before touching
  // any pool — held grants stay valid and release() keeps working, so
  // tokens already out are returned exactly as usual and conservation is
  // unaffected. restore() re-admits; both are idempotent.
  void shed(std::size_t tenant);
  void restore(std::size_t tenant);
  bool is_shed(std::size_t tenant) const;

  // Re-divides the parent borrow budget among tenants under a new weight
  // vector, mid-traffic (ReconfigEngine commit). The whole limit vector
  // publishes as one unit after reader quiescence; acquires racing the
  // commit reserve against the old limits or the new, never a mix. No
  // migration step runs — borrows already out stay out (see borrow_overage
  // in svc/policy.hpp): a tenant whose limit shrank below its outstanding
  // borrow simply gets no new allowance until releases drain the overage,
  // and every release() remains an exact undo of its grant. Requires
  // reweigh_safe(num_tenants(), weights). Returns the new config version.
  std::uint64_t reweigh(std::size_t thread_hint,
                        const std::vector<std::uint64_t>& weights);

  // Version stamp: bumped once per committed reweigh (starts at 1).
  std::uint64_t config_version() const noexcept override {
    return weights_.config_version();
  }
  // Watch reweigh commits (Reconfigurable contract; delivered by the engine
  // on the committing thread, under the commit lock).
  void subscribe(CommitCallback on_commit) override {
    weights_.subscribe(std::move(on_commit));
  }

  // Puts the hierarchy under an overload manager (usually via
  // OverloadManager::govern): acquires honor the degrade-partial action,
  // and the parent and child buckets (plus their aware pool layers) get
  // the shrink/force actions. The manager must outlive the hierarchy;
  // nullptr detaches.
  void attach_overload(const OverloadManager* manager) noexcept;

  std::size_t num_tenants() const noexcept { return tenants_.size(); }
  // Tokens tenant `t` currently has on loan from the parent. Bounded by
  // borrow_limit(t) at every instant.
  std::uint64_t borrowed(std::size_t tenant) const;
  std::uint64_t borrow_limit(std::size_t tenant) const;
  std::uint64_t weight(std::size_t tenant) const;

  NetTokenBucket& parent() noexcept { return parent_; }
  NetTokenBucket& child(std::size_t tenant);
  std::uint64_t stall_count() const;
  std::string name() const { return "quota·" + parent_.pool().name(); }

 private:
  struct alignas(util::kCacheLine) TenantState {
    std::unique_ptr<NetTokenBucket> bucket;
    // util::Atomic: the reservation CAS loop over this word (inside a
    // weights_ read section) is one of the schedule checker's protocols.
    util::Atomic<std::uint64_t> borrowed{0};
    std::atomic<bool> shed{false};
  };

  // The unit reweigh() swaps: weights and the limits derived from them are
  // published together so limits[i] always reflects weights' own total.
  struct WeightState {
    std::vector<std::uint64_t> weights;
    std::vector<std::uint64_t> limits;
  };

  static std::unique_ptr<WeightState> make_weights(
      std::uint64_t borrow_budget, std::size_t tenants,
      const std::vector<std::uint64_t>& weights);

  // Secures up to `want` borrow headroom for the tenant; the CAS loop over
  // borrow_allowance keeps borrowed <= limit an always-true invariant. The
  // limit is read inside one engine read section, so the whole loop runs
  // against a single weight generation.
  std::uint64_t reserve_borrow(std::size_t thread_hint, std::size_t tenant,
                               TenantState& state, std::uint64_t want);

  NetTokenBucket parent_;
  std::vector<TenantState> tenants_;
  ReconfigEngine<WeightState> weights_;
  std::uint64_t borrow_budget_ = 0;
  const OverloadManager* overload_ = nullptr;
};

}  // namespace cnet::svc
