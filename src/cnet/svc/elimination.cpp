#include "cnet/svc/elimination.hpp"

#include "cnet/util/ensure.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/sched_point.hpp"

namespace cnet::svc {

namespace {

// Slot states (low 2 bits of the slot word). Only the depositing waiter
// ever returns a slot to kEmpty, and every return bumps the epoch in the
// high bits, so a stale catcher's CAS can never land on a successor
// occupant (no ABA without a separate generation word).
constexpr std::uint64_t kEmpty = 0;
constexpr std::uint64_t kWaitInc = 1;
constexpr std::uint64_t kWaitDec = 2;
constexpr std::uint64_t kPaired = 3;

constexpr std::uint64_t pack(std::uint64_t epoch, std::uint64_t state) {
  return (epoch << 2) | state;
}

std::uint64_t& thread_rng_state(std::size_t thread_hint) noexcept {
  thread_local std::uint64_t state = 0;
  if (state == 0) {
    state = 0x9e3779b97f4a7c15ULL * (thread_hint + 1) + 0x1995;
  }
  return state;
}

}  // namespace

EliminationLayer::EliminationLayer(const Config& cfg)
    : cfg_(cfg), slots_(cfg.slots), pairs_(), withdrawals_() {
  CNET_REQUIRE(cfg_.slots > 0, "at least one elimination slot");
}

bool EliminationLayer::try_exchange(Role role, std::size_t thread_hint,
                                    std::size_t spins, std::int64_t* value) {
  CNET_REQUIRE(value != nullptr, "null value out-parameter");
  const std::uint64_t wait_state = role == Role::kInc ? kWaitInc : kWaitDec;
  const std::uint64_t partner_state =
      role == Role::kInc ? kWaitDec : kWaitInc;
  std::uint64_t& rng = thread_rng_state(thread_hint);
  const std::size_t start =
      static_cast<std::size_t>(util::xorshift64_star(rng) % cfg_.slots);

  // Catch pass: one sweep over the slots (random start) looking for an
  // already-waiting partner. A successful CAS keeps the partner's epoch, so
  // both sides derive the same pair value from it.
  for (std::size_t i = 0; i < cfg_.slots; ++i) {
    const std::size_t slot = (start + i) % cfg_.slots;
    std::uint64_t w = slots_[slot].word.load(std::memory_order_acquire);
    if ((w & 3) != partner_state) continue;
    const std::uint64_t epoch = w >> 2;
    if (slots_[slot].word.compare_exchange_strong(
            w, pack(epoch, kPaired), std::memory_order_acq_rel)) {
      pairs_.add(thread_hint, 1);
      *value = pair_value(slot, epoch);
      return true;
    }
  }
  if (spins == 0) return false;  // catch-only mode (batch/bulk paths)

  // Deposit pass: claim the first empty slot from the same random start and
  // wait for a partner within the spin budget.
  for (std::size_t i = 0; i < cfg_.slots; ++i) {
    const std::size_t slot = (start + i) % cfg_.slots;
    std::uint64_t w = slots_[slot].word.load(std::memory_order_acquire);
    if ((w & 3) != kEmpty) continue;
    const std::uint64_t epoch = w >> 2;
    if (!slots_[slot].word.compare_exchange_strong(
            w, pack(epoch, wait_state), std::memory_order_acq_rel)) {
      continue;
    }
    for (std::size_t spin = 0; spin < spins; ++spin) {
      if ((slots_[slot].word.load(std::memory_order_acquire) & 3) ==
          kPaired) {
        slots_[slot].word.store(pack(epoch + 1, kEmpty),
                                std::memory_order_release);
        *value = pair_value(slot, epoch);
        return true;
      }
      if ((spin & 15u) == 15u) util::sched_yield();
    }
    std::uint64_t expected = pack(epoch, wait_state);
    if (slots_[slot].word.compare_exchange_strong(
            expected, pack(epoch + 1, kEmpty), std::memory_order_acq_rel)) {
      withdrawals_.add(thread_hint, 1);
      return false;
    }
    // A partner slipped in between the timeout check and the withdrawal.
    // The only transition another thread can make from our wait state is
    // the catcher's single CAS to kPaired, so the exchange is already
    // complete — reset the slot and take the pairing.
    slots_[slot].word.store(pack(epoch + 1, kEmpty),
                            std::memory_order_release);
    *value = pair_value(slot, epoch);
    return true;
  }
  return false;  // every slot busy with same-role waiters or mid-pairing
}

ElimCounter::ElimCounter(std::unique_ptr<rt::Counter> inner,
                         const Config& cfg)
    : ForwardingCounter(std::move(inner)), cfg_(cfg), layer_(cfg.layer) {}

std::size_t ElimCounter::spin_budget(std::size_t base) const noexcept {
  const OverloadManager* mgr = overload_.load(std::memory_order_acquire);
  if (mgr == nullptr || !mgr->actions().force_eliminate) return base;
  return base * cfg_.overload_spin_boost;
}

std::int64_t ElimCounter::fetch_increment(std::size_t thread_hint) {
  std::int64_t v = 0;
  if (layer_.try_exchange(EliminationLayer::Role::kInc, thread_hint,
                          spin_budget(cfg_.inc_spins), &v)) {
    return v;
  }
  return inner().fetch_increment(thread_hint);
}

void ElimCounter::fetch_increment_batch(std::size_t thread_hint,
                                        std::size_t k,
                                        std::int64_t* out_values) {
  // Catch-only: hand tokens directly to already-waiting decrements, but
  // never deposit — per-token spin budgets would serialize the batch and
  // defeat the amortized traversal the batched backends provide.
  std::size_t filled = 0;
  std::int64_t v = 0;
  while (filled < k && layer_.try_exchange(EliminationLayer::Role::kInc,
                                           thread_hint, 0, &v)) {
    out_values[filled++] = v;
  }
  if (filled < k) {
    inner().fetch_increment_batch(thread_hint, k - filled,
                                  out_values + filled);
  }
}

bool ElimCounter::try_fetch_decrement(std::size_t thread_hint,
                                      std::int64_t* reclaimed) {
  std::int64_t v = 0;
  if (layer_.try_exchange(EliminationLayer::Role::kDec, thread_hint,
                          spin_budget(cfg_.dec_spins), &v)) {
    if (reclaimed != nullptr) *reclaimed = v;
    return true;
  }
  return inner().try_fetch_decrement(thread_hint, reclaimed);
}

std::uint64_t ElimCounter::try_fetch_decrement_n(std::size_t thread_hint,
                                                 std::uint64_t n) {
  std::uint64_t got = 0;
  std::int64_t v = 0;
  while (got < n && layer_.try_exchange(EliminationLayer::Role::kDec,
                                        thread_hint, 0, &v)) {
    ++got;
  }
  if (got < n) got += inner().try_fetch_decrement_n(thread_hint, n - got);
  return got;
}

}  // namespace cnet::svc
