// Lightweight load probe for adaptive backend selection: per-slot padded op
// tallies (util::StallSlots) plus a claim-one sampler that turns "every Nth
// op on my slot" into a contention-free trigger. The hot path is one
// relaxed fetch_add on the caller's own cache line; the cross-slot sums
// only run on the sampled (1/N) calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "cnet/util/ensure.hpp"
#include "cnet/util/stall_slots.hpp"

namespace cnet::svc {

class LoadStats {
 public:
  explicit LoadStats(std::uint64_t sample_interval)
      : interval_(sample_interval) {
    CNET_REQUIRE(sample_interval > 0, "sample interval must be positive");
  }

  // Records `n` completed ops against the caller's slot; returns true when
  // the slot's tally crossed a sample boundary, i.e. roughly once per
  // `sample_interval` ops per slot — the caller should then call sample().
  bool record_ops(std::size_t thread_hint, std::uint64_t n = 1) noexcept {
    const std::uint64_t now = ops_.add_and_get(thread_hint, n);
    return now / interval_ != (now - n) / interval_;
  }

  std::uint64_t ops() const noexcept { return ops_.total(); }

  // One observation window: ops completed and contention events (stalls,
  // CAS retries — whatever total the caller feeds in) since the previous
  // successful sample.
  struct Window {
    std::uint64_t ops = 0;
    std::uint64_t events = 0;
    double event_rate() const noexcept {
      return ops == 0 ? 0.0 : static_cast<double>(events) /
                                  static_cast<double>(ops);
    }
  };

  // Claims the sampler and returns the delta window against
  // `total_events_now` (the caller's current lifetime event total, e.g.
  // Counter::stall_count()). Returns nullopt when another thread holds the
  // sampler — concurrent triggers just skip, the next boundary retries.
  std::optional<Window> sample(std::uint64_t total_events_now) noexcept {
    bool expected = false;
    if (!sampling_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      return std::nullopt;
    }
    const std::uint64_t ops_now = ops_.total();
    Window window{ops_now - last_ops_, total_events_now - last_events_};
    last_ops_ = ops_now;
    last_events_ = total_events_now;
    sampling_.store(false, std::memory_order_release);
    return window;
  }

 private:
  std::uint64_t interval_;
  util::StallSlots ops_;
  std::atomic<bool> sampling_{false};
  // Guarded by sampling_ (only the claim holder reads or writes them).
  std::uint64_t last_ops_ = 0;
  std::uint64_t last_events_ = 0;
};

}  // namespace cnet::svc
