// Lightweight load probe for adaptive backend selection: per-slot padded op
// tallies (util::StallSlots) plus a claim-one sampler that turns "every Nth
// op on my slot" into a contention-free trigger. The hot path is one
// relaxed fetch_add on the caller's own cache line; the cross-slot sums
// only run on the sampled (1/N) calls.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "cnet/svc/policy.hpp"
#include "cnet/util/ensure.hpp"
#include "cnet/util/stall_slots.hpp"

namespace cnet::svc {

class LoadStats {
 public:
  explicit LoadStats(std::uint64_t sample_interval)
      : interval_(sample_interval) {
    CNET_REQUIRE(sample_interval > 0, "sample interval must be positive");
  }

  // Records `n` completed ops against the caller's slot; returns true when
  // the slot's tally crossed a sample boundary, i.e. roughly once per
  // `sample_interval` ops per slot — the caller should then call sample().
  bool record_ops(std::size_t thread_hint, std::uint64_t n = 1) noexcept {
    const std::uint64_t now = ops_.add_and_get(thread_hint, n);
    return now / interval_ != (now - n) / interval_;
  }

  std::uint64_t ops() const noexcept { return ops_.total(); }

  // One observation window (shared with the simulator's policy layer):
  // ops completed and contention events since the previous sample.
  using Window = LoadWindow;

  // Claims the sampler, reads the caller's lifetime event total *after* the
  // claim is won (via `total_events_fn`, e.g. Counter::stall_count), and
  // returns the delta window. Returns nullopt when another thread holds the
  // sampler — concurrent triggers just skip, the next boundary retries.
  //
  // Reading the total only after winning the claim is what makes the window
  // sound: a total captured before the claim can predate another sampler's
  // update of last_events_, and the stale delta would wrap to ~2^64.
  template <class EventTotalFn,
            std::enable_if_t<std::is_invocable_v<EventTotalFn>, int> = 0>
  std::optional<Window> sample(EventTotalFn&& total_events_fn) noexcept {
    bool expected = false;
    if (!sampling_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      return std::nullopt;
    }
    const std::uint64_t ops_now = ops_.total();
    const std::uint64_t events_now = total_events_fn();
    Window window{ops_now >= last_ops_ ? ops_now - last_ops_ : 0,
                  events_now >= last_events_ ? events_now - last_events_ : 0};
    last_ops_ = std::max(last_ops_, ops_now);
    last_events_ = std::max(last_events_, events_now);
    sampling_.store(false, std::memory_order_release);
    return window;
  }

  // Pre-captured-total form. The caller read its event total before (or
  // without) claiming the sampler, so the total may be stale relative to
  // last_events_; the clamp above turns that staleness into an empty window
  // instead of an underflowed one. Prefer the callable form when the total
  // is cheap to re-read.
  std::optional<Window> sample(std::uint64_t total_events_now) noexcept {
    return sample([total_events_now] { return total_events_now; });
  }

 private:
  std::uint64_t interval_;
  util::StallSlots ops_;
  std::atomic<bool> sampling_{false};
  // Guarded by sampling_ (only the claim holder reads or writes them).
  std::uint64_t last_ops_ = 0;
  std::uint64_t last_events_ = 0;
};

}  // namespace cnet::svc
