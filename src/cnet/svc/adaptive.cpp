#include "cnet/svc/adaptive.hpp"

#include <algorithm>

#include "cnet/util/ensure.hpp"
#include "cnet/util/sched_point.hpp"

namespace cnet::svc {

AdaptiveCounter::AdaptiveCounter(const Config& cfg)
    : cfg_(cfg),
      engine_(make_counter(cfg.cold, cfg.net)),
      hot_staged_(make_counter(cfg.hot, cfg.net)),
      cold_(&engine_.current()),
      hot_(hot_staged_.get()),
      // Of the central kinds only the CAS word records stalls on its
      // increment path (atomic is fetch_add, mutex does not track), so
      // only there can a refund batch pollute the window (see refund_n).
      cold_increments_stall_(cfg.cold == BackendKind::kCentralCas),
      stats_(cfg.tuning.sample_interval) {
  CNET_REQUIRE(cfg.cold != BackendKind::kAdaptive &&
                   cfg.hot != BackendKind::kAdaptive,
               "adaptive backends do not nest");
}

std::int64_t AdaptiveCounter::fetch_increment(std::size_t thread_hint) {
  const std::int64_t v = engine_.read(thread_hint, [&](rt::Counter& c) {
    return c.fetch_increment(thread_hint);
  });
  after_ops(thread_hint, 1);
  return v;
}

void AdaptiveCounter::fetch_increment_batch(std::size_t thread_hint,
                                            std::size_t k,
                                            std::int64_t* out_values) {
  engine_.read(thread_hint, [&](rt::Counter& c) {
    c.fetch_increment_batch(thread_hint, k, out_values);
    return 0;
  });
  after_ops(thread_hint, static_cast<std::uint64_t>(k));
}

bool AdaptiveCounter::try_fetch_decrement(std::size_t thread_hint,
                                          std::int64_t* reclaimed) {
  const bool ok = engine_.read(thread_hint, [&](rt::Counter& c) {
    return c.try_fetch_decrement(thread_hint, reclaimed);
  });
  after_ops(thread_hint, 1);
  return ok;
}

std::uint64_t AdaptiveCounter::try_fetch_decrement_n(std::size_t thread_hint,
                                                     std::uint64_t n) {
  const std::uint64_t got = engine_.read(thread_hint, [&](rt::Counter& c) {
    return c.try_fetch_decrement_n(thread_hint, n);
  });
  // Charge the tokens actually transferred (minimum one for the attempt),
  // mirroring the batch-increment path's per-token charge: a bulk consume
  // of 64 is 64 ops of load, not one, and undercounting it inflates the
  // observed stall rate into spurious switches.
  after_ops(thread_hint, std::max<std::uint64_t>(got, 1));
  return got;
}

void AdaptiveCounter::refund_n(std::size_t thread_hint, std::uint64_t n) {
  // Pre-switch, the stalls this refund provokes on the cold word would
  // land in the very total the probe windows over — so they are banked
  // for exclusion. Attribution is exact for the atomic (and mutex) cold
  // kinds, whose increments are wait-free (lock-silent) and provoke no
  // stalls at all: nothing is banked. Only a CAS cold word stalls on the
  // refund increments; its bracket reads the shared lifetime total, which
  // can pick up other threads' concurrent stalls, so the banked delta is
  // capped at the refunded token count — the over-exclusion stays
  // proportional to refund volume instead of tiling wall time, and steady
  // release traffic cannot indefinitely suppress a legitimate switch.
  // (Post-switch the probe is dead, so no tracking is needed.)
  const bool track = cold_increments_stall_ &&
                     !switched_.load(std::memory_order_relaxed);
  const std::uint64_t total = n;
  const std::uint64_t before = track ? cold_->stall_count() : 0;
  constexpr std::uint64_t kChunk = 256;
  std::int64_t scratch[kChunk];
  while (n > 0) {
    const auto k = static_cast<std::size_t>(std::min(n, kChunk));
    engine_.read(thread_hint, [&](rt::Counter& c) {
      c.fetch_increment_batch(thread_hint, k, scratch);
      return 0;
    });
    n -= k;
  }
  if (track) {
    refund_stalls_.fetch_add(std::min(cold_->stall_count() - before, total),
                             std::memory_order_relaxed);
  }
  // Deliberately no after_ops(): refunds are not load.
}

std::string AdaptiveCounter::name() const {
  return "adaptive·" + engine_.current().name();
}

void AdaptiveCounter::after_ops(std::size_t thread_hint, std::uint64_t n) {
  if (switched_.load(std::memory_order_relaxed)) return;  // one-way switch
  if (!stats_.record_ops(thread_hint, n)) return;
  // Overload override, checked only at sample boundaries: the manager's
  // force-eliminate tier takes the swap now rather than waiting for the
  // stall-rate window to fill.
  if (const OverloadManager* mgr = overload_.load(std::memory_order_acquire);
      mgr != nullptr && mgr->actions().force_eliminate) {
    do_switch(thread_hint);
    return;
  }
  // The stall total is read *inside* sample(), after the sampler claim is
  // won — a total captured out here could predate a concurrent sampler's
  // window and underflow into a spurious switch. Refund-attributed stalls
  // are excluded (clamped at zero: concurrent refunds can over-attribute).
  const auto window = stats_.sample([this] {
    const std::uint64_t total = cold_->stall_count();
    const std::uint64_t excluded =
        refund_stalls_.load(std::memory_order_relaxed);
    return total >= excluded ? total - excluded : 0;
  });
  if (!window) return;  // another thread holds the sampler
  if (!should_switch(*window, cfg_.tuning)) return;
  do_switch(thread_hint);
}

void AdaptiveCounter::force_switch(std::size_t thread_hint) {
  do_switch(thread_hint);
  while (!switched_.load(std::memory_order_acquire)) {
    util::sched_yield();  // lost the claim race: wait for the winner
  }
}

void AdaptiveCounter::do_switch(std::size_t thread_hint) {
  bool expected = false;
  if (!switch_claimed_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
    return;  // someone else is (or was) the switcher
  }
  // The engine publishes the hot backend and waits for reader quiescence;
  // the migration then runs against a cold backend no op can touch again,
  // so its remaining pool count is exactly what try_fetch_decrement_n can
  // reclaim. Values are pool tokens (no identity), so only the count must
  // be conserved — and it is, exactly: consumers racing with the drain see
  // tokens in one pool or the other, never in both.
  engine_.commit(std::move(hot_staged_),
                 [&](rt::Counter& cold, rt::Counter& hot) {
                   std::uint64_t moved = 0;
                   constexpr std::uint64_t kChunk = 256;
                   std::int64_t scratch[kChunk];
                   for (std::uint64_t got; (got = cold.try_fetch_decrement_n(
                                                thread_hint, kChunk)) != 0;) {
                     moved += got;
                   }
                   for (std::uint64_t left = moved; left > 0;) {
                     const auto k =
                         static_cast<std::size_t>(std::min(left, kChunk));
                     hot.fetch_increment_batch(thread_hint, k, scratch);
                     left -= k;
                   }
                 });
  switched_.store(true, std::memory_order_release);
}

}  // namespace cnet::svc
