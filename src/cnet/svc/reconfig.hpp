// svc::ReconfigEngine — hot reconfiguration without draining, the
// generalization of AdaptiveCounter's one-shot cold→hot swap into a
// reusable staged-commit protocol (SDS-style watch/update semantics: a
// version-stamped config is prepared off to the side and published to live
// consumers with no drain, cf. envoy's secret-discovery updates).
//
// The protocol is the paper's quiescence argument (§2.2) run in reverse:
// because a structure's outstanding token count is a well-defined function
// of what entered it, a *quiescent* structure can be replaced and its
// remaining count migrated exactly. The engine makes any config swappable
// under that argument:
//
//   readers   enter a padded per-slot reader count, load the active-state
//             pointer, run against it, and leave (RCU-style; two atomics
//             on the hot path, no locks);
//   stage     a full replacement state is built off to the side — new
//             backend, new network width, new batch chunking, new weight
//             vector — while traffic continues on the old one;
//   commit    publishes the new pointer (seq_cst, pairing with the reader
//             protocol), waits until every reader slot drains to zero —
//             after which no op can touch the old state — then runs the
//             caller's migration against the now-quiescent old state
//             (e.g. drain its pool and re-inject the exact count into the
//             new one) and bumps the config version.
//
// Commits serialize on a mutex (reconfiguration is a control-plane event;
// readers never block). Retired states are kept alive for the engine's
// lifetime: long-lived references handed out earlier (telemetry reads,
// `pool()` accessors) stay valid, merely stale — the same lifetime rule
// AdaptiveCounter always applied to its cold backend. The memory cost is
// one retired state per commit, paid only by reconfiguring consumers.
//
// Consumers expose the stamp through the Reconfigurable protocol below;
// validity rules for *what* may be staged (chunk bounds, weight vectors)
// are pure functions in svc/policy.hpp (respec_safe / reweigh_safe),
// shared with the virtual-time simulator's sim::simulate_reconfig mirror.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cnet/util/atomic.hpp"
#include "cnet/util/cacheline.hpp"
#include "cnet/util/ensure.hpp"
#include "cnet/util/mutex.hpp"
#include "cnet/util/sched_point.hpp"
#include "cnet/util/thread_annotations.hpp"

namespace cnet::svc {

// The version-stamp protocol: anything that can be re-specced mid-traffic
// reports a monotone config version, bumped once per committed staged
// config. Observers (benches, operators, the simulator's golden traces)
// use the stamp to tell which configuration an observation belongs to.
class Reconfigurable {
 public:
  // Invoked once per committed reconfiguration with the freshly bumped
  // version (SDS-style watch: push on update instead of polling).
  using CommitCallback = std::function<void(std::uint64_t version)>;

  virtual ~Reconfigurable() = default;
  // Starts at 1; each committed reconfiguration increments it by one. A
  // reader that sees the same version before and after an observation knows
  // no commit landed in between. Kept alongside subscribe() — a one-shot
  // stamp read is still the right tool for bracketing an observation.
  virtual std::uint64_t config_version() const noexcept = 0;
  // Registers a callback fired after each commit completes (migration done,
  // version bumped), on the committing thread and under the commit lock —
  // so callbacks see a fully consistent new state, must stay cheap, and
  // must not re-enter commit()/subscribe() on the same engine. Callbacks
  // cannot be unregistered and must outlive the engine; distinct commits
  // are delivered in order with strictly increasing versions.
  virtual void subscribe(CommitCallback on_commit) = 0;
};

template <class State>
class ReconfigEngine final : public Reconfigurable {
 public:
  explicit ReconfigEngine(std::unique_ptr<State> initial)
      : slots_(kReaderSlots),
        current_(std::move(initial)),
        active_(current_.get()) {
    CNET_REQUIRE(current_ != nullptr, "null initial state");
  }

  ReconfigEngine(const ReconfigEngine&) = delete;
  ReconfigEngine& operator=(const ReconfigEngine&) = delete;

  // Runs fn against the currently published state inside a reader section.
  // seq_cst on the enter RMW and the pointer load pairs with commit()'s
  // seq_cst publish + slot scan: in the single total order, either this
  // enter precedes the scan (the committer waits for us) or the publish
  // precedes our load (we already run on the new state). Either way no
  // reader touches the old state after the committer starts migrating it.
  template <class Fn>
  auto read(std::size_t thread_hint, Fn&& fn) {
    auto& slot = slots_[thread_hint % kReaderSlots].value;
    slot.fetch_add(1, std::memory_order_seq_cst);
    State* active = active_.load(std::memory_order_seq_cst);
    struct Exit {
      util::Atomic<std::uint64_t>& slot;
      ~Exit() { slot.fetch_sub(1, std::memory_order_release); }
    } exit{slot};
    return fn(*active);
  }

  // The currently published state, outside any reader section. Safe to
  // dereference at any time (retired states stay alive), but a concurrent
  // commit can make the snapshot stale — use read() when the op must land
  // entirely on one configuration.
  State& current() noexcept { return *active_.load(std::memory_order_acquire); }
  const State& current() const noexcept {
    return *active_.load(std::memory_order_acquire);
  }

  std::uint64_t config_version() const noexcept override {
    return version_.load(std::memory_order_acquire);
  }

  void subscribe(CommitCallback on_commit) override CNET_EXCLUDES(commit_mutex_) {
    CNET_REQUIRE(on_commit != nullptr, "null commit callback");
    const util::MutexLock lock(commit_mutex_);
    subscribers_.push_back(std::move(on_commit));
  }

  // Applies a staged state: publish, wait for reader quiescence, then run
  // `migrate(old_state, new_state)` against the quiescent old state (move
  // pool tokens, roll up telemetry — whatever the consumer's conservation
  // argument needs), retire the old state, and bump the version. Returns
  // the new version. Concurrent commits serialize; readers never wait.
  template <class Migrate>
  std::uint64_t commit(std::unique_ptr<State> next, Migrate&& migrate)
      CNET_EXCLUDES(commit_mutex_) {
    CNET_REQUIRE(next != nullptr, "null staged state");
    const util::MutexLock lock(commit_mutex_);
    State* const fresh = next.get();
    State* const old = current_.get();
    active_.store(fresh, std::memory_order_seq_cst);
    for (auto& slot : slots_) {
      while (slot.value.load(std::memory_order_seq_cst) != 0) {
        // sched_yield rather than std::this_thread::yield: under the
        // schedule checker this unbounded wait must deschedule the
        // committer until a reader makes a step, or the explorer's
        // continue-current default would spin here forever.
        util::sched_yield();
      }
    }
    migrate(*old, *fresh);
    retired_.push_back(std::move(current_));
    current_ = std::move(next);
    const std::uint64_t version =
        version_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Notify under the commit lock: subscribers see commits in order with
    // strictly increasing versions, and never concurrently with the next
    // migration. The contract (Reconfigurable::subscribe) forbids
    // re-entering commit() from a callback.
    for (const auto& on_commit : subscribers_) on_commit(version);
    return version;
  }

  // Retired states, oldest first, for telemetry rollups. Only grows; safe
  // to call concurrently with readers but serializes against commits.
  std::size_t num_retired() const CNET_EXCLUDES(commit_mutex_) {
    const util::MutexLock lock(commit_mutex_);
    return retired_.size();
  }

 private:
  // Under the schedule checker the commit's quiescence scan reads every
  // slot (one explored step each), so the scatter width shrinks to keep
  // driver state spaces tractable; production keeps the full spread.
#if defined(CNET_SCHED_CHECK)
  static constexpr std::size_t kReaderSlots = 2;
#else
  static constexpr std::size_t kReaderSlots = 64;
#endif

  // util::Atomic on the reader slots and the active pointer: the
  // enter-RMW / publish / scan triangle *is* the protocol the checker
  // explores — every one of those operations must be a schedulable step.
  std::vector<util::Padded<util::Atomic<std::uint64_t>>> slots_;
  mutable util::Mutex commit_mutex_;
  std::unique_ptr<State> current_ CNET_GUARDED_BY(commit_mutex_);
  std::vector<std::unique_ptr<State>> retired_ CNET_GUARDED_BY(commit_mutex_);
  std::vector<CommitCallback> subscribers_ CNET_GUARDED_BY(commit_mutex_);
  util::Atomic<State*> active_;
  std::atomic<std::uint64_t> version_{1};
};

}  // namespace cnet::svc
