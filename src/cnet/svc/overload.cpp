#include "cnet/svc/overload.hpp"

#include <utility>

#include "cnet/svc/net_token_bucket.hpp"
#include "cnet/svc/quota.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::svc {

WindowedRateMonitor::WindowedRateMonitor(std::string name, TotalFn ops_total,
                                         TotalFn events_total,
                                         double saturation_rate)
    : name_(std::move(name)),
      ops_total_(std::move(ops_total)),
      events_total_(std::move(events_total)),
      saturation_rate_(saturation_rate) {
  CNET_REQUIRE(ops_total_ && events_total_, "both total callables required");
  CNET_REQUIRE(saturation_rate_ > 0.0, "saturation rate must be positive");
  // Prime the baselines at the totals as of attachment: the first sampled
  // window starts *now*, not at the counters' birth. Without this, a
  // monitor attached to a pre-warmed bucket read the entire lifetime
  // history as one instantaneous window and could spuriously escalate on
  // the very first evaluate().
  last_ops_ = ops_total_();
  last_events_ = events_total_();
}

double WindowedRateMonitor::sample_pressure() {
  const std::uint64_t ops_now = ops_total_();
  const std::uint64_t events_now = events_total_();
  // Clamped deltas, the LoadStats discipline: slot-summed totals read under
  // concurrent writers can regress between samples; a stale read must
  // produce an empty window, never a wrapped one.
  const LoadWindow window{
      ops_now >= last_ops_ ? ops_now - last_ops_ : 0,
      events_now >= last_events_ ? events_now - last_events_ : 0};
  if (ops_now > last_ops_) last_ops_ = ops_now;
  if (events_now > last_events_) last_events_ = events_now;
  return window_pressure(window, saturation_rate_);
}

GaugeMonitor::GaugeMonitor(std::string name, std::uint64_t capacity)
    : name_(std::move(name)), capacity_(capacity) {}

double GaugeMonitor::sample_pressure() {
  return occupancy_pressure(value_.load(std::memory_order_relaxed), capacity_);
}

BorrowPressureMonitor::BorrowPressureMonitor(const QuotaHierarchy& quota)
    : name_("borrow_pressure"), quota_(&quota) {}

double BorrowPressureMonitor::sample_pressure() {
  std::uint64_t borrowed = 0;
  std::uint64_t limit = 0;
  for (std::size_t t = 0; t < quota_->num_tenants(); ++t) {
    borrowed += quota_->borrowed(t);
    limit += quota_->borrow_limit(t);
  }
  return occupancy_pressure(borrowed, limit);
}

std::unique_ptr<LoadMonitor> make_stall_rate_monitor(
    const NetTokenBucket& bucket, double saturation_stall_rate) {
  return std::make_unique<WindowedRateMonitor>(
      "stall_rate", [&bucket] { return bucket.consume_attempts(); },
      [&bucket] { return bucket.stall_count(); }, saturation_stall_rate);
}

std::unique_ptr<LoadMonitor> make_reject_ratio_monitor(
    const NetTokenBucket& bucket) {
  // Every attempt rejected is saturation by definition: rate 1.0 maps to
  // pressure 1.0.
  return std::make_unique<WindowedRateMonitor>(
      "reject_ratio", [&bucket] { return bucket.consume_attempts(); },
      [&bucket] { return bucket.consume_rejects(); }, 1.0);
}

OverloadManager::OverloadManager(const OverloadConfig& cfg) : cfg_(cfg) {
  CNET_REQUIRE(cfg_.thresholds.hysteresis >= 0.0,
               "hysteresis must be non-negative");
  for (std::size_t i = 2; i < kNumOverloadTiers; ++i) {
    CNET_REQUIRE(cfg_.thresholds.enter[i] >= cfg_.thresholds.enter[i - 1],
                 "tier enter thresholds must be non-decreasing");
  }
  CNET_REQUIRE(cfg_.shed_fraction >= 0.0 && cfg_.shed_fraction <= 1.0,
               "shed_fraction must be in [0, 1]");
}

LoadMonitor& OverloadManager::add_monitor(
    std::unique_ptr<LoadMonitor> monitor) {
  CNET_REQUIRE(monitor != nullptr, "null monitor");
  LoadMonitor* const stored = monitor.get();
  // Registry and pressure vector mutate together under the mutex: a
  // concurrent evaluate() samples either the pre- or post-registration
  // registry, never a torn pair. (The registry itself used to be pushed
  // outside the lock — a racing sampler could walk a vector mid-growth.)
  const util::MutexLock lock(mutex_);
  for (const auto& existing : monitors_) {
    CNET_REQUIRE(existing->name() != stored->name(),
                 "duplicate load-monitor name: " + stored->name());
  }
  monitors_.push_back(std::move(monitor));
  last_pressures_.push_back(0.0);
  return *stored;
}

#if defined(CNET_SCHED_CHECK)
LoadMonitor& OverloadManager::testonly_add_monitor_unlocked(
    std::unique_ptr<LoadMonitor> monitor) {
  CNET_REQUIRE(monitor != nullptr, "null monitor");
  LoadMonitor* const stored = monitor.get();
  // Deliberately NO MutexLock here — this is the pre-PR-9 registration
  // order the seeded-race fixture re-introduces. The registry_walkers_
  // probes stand in for the original memory-unsafety: if an evaluate()
  // walk can be scheduled between (or during) these two unlocked vector
  // growths, the walk was traversing a vector mid-mutation. The probes
  // are util::Atomic loads, so the checker can preempt at exactly the
  // gap the real race needed. last_pressures_ grows before monitors_ so
  // the interleaved walk stays index-safe while still being detected.
  CNET_ENSURE(registry_walkers_.load(std::memory_order_seq_cst) == 0,
              "unlocked monitor registration overlapped an in-progress "
              "evaluate() registry walk (pre-PR-9 race)");
  last_pressures_.push_back(0.0);
  CNET_ENSURE(registry_walkers_.load(std::memory_order_seq_cst) == 0,
              "unlocked monitor registration overlapped an in-progress "
              "evaluate() registry walk (pre-PR-9 race)");
  monitors_.push_back(std::move(monitor));
  return *stored;
}
#endif

void OverloadManager::govern(QuotaHierarchy& quota) {
  CNET_REQUIRE(governed_ == nullptr || governed_ == &quota,
               "manager already governs a different hierarchy");
  governed_ = &quota;
  quota.attach_overload(this);
}

OverloadTier OverloadManager::evaluate() {
  bool expected = false;
  if (!evaluating_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
    return tier();  // a concurrent evaluate() is already sampling
  }
  double combined = 0.0;
  {
    const util::MutexLock lock(mutex_);
    ++samples_;
#if defined(CNET_SCHED_CHECK)
    // Seeded-race oracle (see testonly_add_monitor_unlocked): mark the
    // locked walk so an unlocked registration overlapping it is a caught
    // invariant violation instead of silent vector corruption.
    registry_walkers_.store(1, std::memory_order_seq_cst);
#endif
    for (std::size_t i = 0; i < monitors_.size(); ++i) {
      const double p = clamp_pressure(monitors_[i]->sample_pressure());
      last_pressures_[i] = p;
      if (p > combined) combined = p;
    }
#if defined(CNET_SCHED_CHECK)
    registry_walkers_.store(0, std::memory_order_seq_cst);
#endif
  }
  const OverloadTier from = tier();
  const OverloadTier to = overload_tier(combined, from, cfg_.thresholds);
  pressure_.store(combined, std::memory_order_release);
  if (to != from) {
    apply_transition(from, to, combined);
    // Publish the tier only after shed/restore took effect, so a hot path
    // that reads the new tier never races a half-applied transition.
    tier_.store(static_cast<std::uint8_t>(to), std::memory_order_release);
  }
  evaluating_.store(false, std::memory_order_release);
  return to;
}

void OverloadManager::apply_transition(OverloadTier from, OverloadTier to,
                                       double pressure) {
  const bool was_shedding = overload_actions(from).shed_tenants;
  const bool now_shedding = overload_actions(to).shed_tenants;
  std::vector<std::size_t> shed_now;
  if (governed_ != nullptr && now_shedding && !was_shedding) {
    std::vector<std::uint64_t> weights(governed_->num_tenants());
    for (std::size_t t = 0; t < weights.size(); ++t) {
      weights[t] = governed_->weight(t);
    }
    shed_now = shed_set(weights, cfg_.shed_fraction);
    for (const std::size_t t : shed_now) governed_->shed(t);
  }
  const util::MutexLock lock(mutex_);
  if (governed_ != nullptr && was_shedding && !now_shedding) {
    for (const std::size_t t : shed_) governed_->restore(t);
    shed_.clear();
  }
  if (!shed_now.empty()) shed_ = std::move(shed_now);
  history_.push_back(TierChange{from, to, pressure, samples_});
}

double OverloadManager::pressure_of(std::string_view name) const {
  const util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    if (monitors_[i]->name() == name) return last_pressures_[i];
  }
  CNET_REQUIRE(false, "unknown monitor name: " + std::string(name));
  return 0.0;  // unreachable
}

std::vector<OverloadManager::TierChange> OverloadManager::history() const {
  const util::MutexLock lock(mutex_);
  return history_;
}

std::vector<std::size_t> OverloadManager::shed_tenants() const {
  const util::MutexLock lock(mutex_);
  return shed_;
}

}  // namespace cnet::svc
