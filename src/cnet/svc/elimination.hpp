// Elimination front-end for shared counters (Shavit & Touitou, SPAA'95 —
// the same collision idea as the diffracting tree's prisms in
// runtime/difftree_rt.hpp, applied to cancellation instead of diffraction):
// an increment and a decrement that meet in an exchange slot annihilate
// *locally*. The pair linearizes as inc-immediately-before-dec at the
// collision CAS, so neither token ever enters the backing structure — under
// a mixed inc/dec workload the network sees only the imbalance between the
// two streams, not their sum.
//
// EliminationLayer is the raw slot array; ElimCounter is the composable
// rt::Counter decorator that places it in front of any backend (the svc
// factory wires it up via BackendSpec::elimination).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cnet/runtime/counter.hpp"
#include "cnet/svc/overload.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/util/atomic.hpp"
#include "cnet/util/cacheline.hpp"
#include "cnet/util/stall_slots.hpp"

namespace cnet::svc {

// A padded array of exchange slots. An op arrives with a role (increment or
// decrement); if the randomly probed slot holds a waiting op of the
// *opposite* role the two pair up and both succeed locally, otherwise the
// arriver may deposit itself and spin for a partner within a bounded
// budget. Misses fall through to whatever backing path the caller has.
//
// Paired ops agree on a synthesized negative value (unique per pairing,
// derived from the slot's epoch), so multiset accounting stays exact — the
// inc hands out exactly the value the dec reclaims — while never colliding
// with the non-negative values real backends assign.
class EliminationLayer {
 public:
  struct Config {
    // Exchange slots. Arrivals sweep every slot for a partner, so extra
    // slots don't hurt the hit-rate — size this at or above the expected
    // mixed-op thread count. Undersizing is what hurts: on an
    // oversubscribed machine a descheduled waiter parks in its slot for a
    // whole timeslice, and once every slot is parked, running threads fall
    // straight through to the backend and the hit-rate collapses.
    std::size_t slots = 8;
    // Spin budget a deposited waiter burns before withdrawing (with a yield
    // every 16 spins so single-core boxes still collide).
    std::size_t max_spins = 512;
  };

  enum class Role : std::uint8_t { kInc, kDec };

  explicit EliminationLayer(const Config& cfg);

  // Tries to eliminate one op of `role`. Returns true on a pairing and
  // stores the pair's agreed value in *value (always negative). With
  // spins == 0 the op only *catches* an already-waiting partner and never
  // deposits itself — the mode batch refills use, where per-token waiting
  // would serialize the batch.
  bool try_exchange(Role role, std::size_t thread_hint, std::size_t spins,
                    std::int64_t* value);
  bool try_exchange(Role role, std::size_t thread_hint, std::int64_t* value) {
    return try_exchange(role, thread_hint, cfg_.max_spins, value);
  }

  std::size_t num_slots() const noexcept { return cfg_.slots; }
  // Pairs completed (each pair is one eliminated inc AND one eliminated
  // dec); counted once, on the catcher's side.
  std::uint64_t pairs() const noexcept { return pairs_.total(); }
  // Deposits that timed out and withdrew to the backing path.
  std::uint64_t withdrawals() const noexcept { return withdrawals_.total(); }

 private:
  // Slot word layout: low 2 bits = state, high 62 bits = epoch. The epoch
  // advances whenever the slot returns to empty (withdrawal or pair
  // completion), which (a) kills ABA on the catcher's CAS and (b) names the
  // pairing via the shared svc::elimination_pair_value rule, unique per
  // collision (the simulator's elimination model synthesizes the same
  // values, so model and real multisets cancel identically).
  // util::Atomic: the catcher/waiter CAS dance on the slot word is exactly
  // what the schedule checker explores (every load/CAS one step).
  struct alignas(util::kCacheLine) Slot {
    util::Atomic<std::uint64_t> word{0};
  };

  std::int64_t pair_value(std::size_t slot, std::uint64_t epoch) const {
    return elimination_pair_value(cfg_.slots, slot, epoch);
  }

  Config cfg_;
  std::vector<Slot> slots_;
  util::StallSlots pairs_;
  util::StallSlots withdrawals_;
};

// The decorator: increments spin briefly for a partner decrement (and vice
// versa on the single-op path); batch increments and bulk decrements catch
// already-waiting partners without spinning, then send the remainder to the
// inner counter. Counts are conserved exactly — each elimination pairs one
// inc with one dec, linearized back-to-back — and the inner backend's
// bound-at-zero guarantee is preserved, because an eliminated decrement
// succeeds only against an increment that is concurrently in flight.
//
// Value semantics: eliminated pairs exchange synthesized negative values
// that cancel in any inc-minus-dec multiset, so the *outstanding* set (and
// hence pool/token-bucket accounting) is exactly that of the inner counter.
// Do not use values from an ElimCounter as identities (IDs): a value
// returned by an eliminated increment is immediately reclaimed by its
// paired decrement rather than drawn from the backend's sequence.
class ElimCounter final : public rt::ForwardingCounter, public OverloadAware {
 public:
  struct Config {
    EliminationLayer::Config layer;
    // Spin budgets per role on the single-op paths (0 = catch-only).
    // Increments wait by default (ISSUE archetype: inc spins, dec cancels);
    // decrements get a short budget so consume-heavy buckets still pair
    // with batch refills.
    std::size_t inc_spins = 512;
    std::size_t dec_spins = 64;
    // Multiplier applied to both single-op spin budgets while an attached
    // overload manager's tier carries force_eliminate: waiting longer for
    // a partner trades per-op latency for fewer backend traversals, the
    // right trade exactly when the backend is the saturated resource.
    std::size_t overload_spin_boost = 8;
  };

  ElimCounter(std::unique_ptr<rt::Counter> inner, const Config& cfg);
  explicit ElimCounter(std::unique_ptr<rt::Counter> inner)
      : ElimCounter(std::move(inner), Config{}) {}

  std::int64_t fetch_increment(std::size_t thread_hint) override;
  void fetch_increment_batch(std::size_t thread_hint, std::size_t k,
                             std::int64_t* out_values) override;
  bool try_fetch_decrement(std::size_t thread_hint,
                           std::int64_t* reclaimed = nullptr) override;
  std::uint64_t try_fetch_decrement_n(std::size_t thread_hint,
                                      std::uint64_t n) override;

  std::string name() const override { return "elim·" + inner().name(); }

  // Overload hook: force_eliminate widens the single-op pairing window by
  // Config::overload_spin_boost. Pure routing — pairs still conserve
  // counts exactly, and misses still fall through to the inner backend.
  void attach_overload(const OverloadManager* manager) noexcept override {
    overload_.store(manager, std::memory_order_release);
  }

  EliminationLayer& layer() noexcept { return layer_; }
  const EliminationLayer& layer() const noexcept { return layer_; }

 private:
  // The spin budget for one single-op attempt under the current tier.
  std::size_t spin_budget(std::size_t base) const noexcept;

  Config cfg_;
  EliminationLayer layer_;
  std::atomic<const OverloadManager*> overload_{nullptr};
};

}  // namespace cnet::svc
