#include "cnet/svc/net_token_bucket.hpp"

#include <algorithm>

#include "cnet/svc/overload.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::svc {

namespace {
constexpr std::size_t kRefillChunkCap = 256;
}  // namespace

NetTokenBucket::NetTokenBucket(std::unique_ptr<rt::Counter> pool)
    : NetTokenBucket(std::move(pool), Config()) {}

NetTokenBucket::NetTokenBucket(std::unique_ptr<rt::Counter> pool, Config cfg)
    : pool_(std::move(pool)), cfg_(cfg) {
  CNET_REQUIRE(pool_ != nullptr, "null pool counter");
  CNET_REQUIRE(cfg_.refill_chunk > 0 && cfg_.refill_chunk <= kRefillChunkCap,
               "refill_chunk must be in 1..256");
  if (cfg_.initial_tokens > 0) refill(0, cfg_.initial_tokens);
}

std::uint64_t NetTokenBucket::consume(std::size_t thread_hint,
                                      std::uint64_t tokens,
                                      bool allow_partial) {
  if (tokens == 0) return 0;  // defined no-op: success, pool untouched
  attempts_.add(thread_hint, 1);
  if (tokens == 1) {
    // The common admit(1) case takes the single-op path: same conclusive
    // miss-means-empty contract, no bulk machinery — and on an ElimCounter
    // pool it is the path that deposits in the exchange slots, so lone
    // consumes can pair with a racing batch refill.
    if (pool_->try_fetch_decrement(thread_hint)) return 1;
    rejects_.add(thread_hint, 1);
    return 0;
  }
  // The grab/refund plan is the shared svc::bucket_consume policy (the
  // virtual-time simulator runs the identical plan against its pool
  // models). Bulk claims: central backends take the whole remainder in one
  // CAS, network backends in one antitoken traversal + block cell claims.
  // A zero return is conclusive — the pool was observably empty — and an
  // all-or-nothing shortfall goes back through refund_n, not refill():
  // count-wise the same increments, but marked so an adaptive pool's load
  // probe never mistakes a pure-reject storm for organic traffic.
  const std::uint64_t got = bucket_consume(
      tokens, allow_partial,
      [&](std::uint64_t want) {
        return pool_->try_fetch_decrement_n(thread_hint, want);
      },
      [&](std::uint64_t refund) { pool_->refund_n(thread_hint, refund); });
  if (got == 0) rejects_.add(thread_hint, 1);
  return got;
}

void NetTokenBucket::refill(std::size_t thread_hint, std::uint64_t tokens) {
  // The claimed values are discarded: a pool token has no identity, only
  // the net count matters. Under overload the shrink-batch action divides
  // the chunk size (floor 1): the same token count lands in the pool, in
  // smaller exclusive batch holds.
  std::size_t chunk = cfg_.refill_chunk;
  if (overload_ != nullptr) {
    chunk = std::max<std::size_t>(1, chunk / overload_->actions().batch_divisor);
  }
  std::int64_t scratch[kRefillChunkCap];
  while (tokens > 0) {
    const auto k =
        static_cast<std::size_t>(std::min<std::uint64_t>(tokens, chunk));
    pool_->fetch_increment_batch(thread_hint, k, scratch);
    tokens -= k;
  }
}

void NetTokenBucket::attach_overload(const OverloadManager* manager) noexcept {
  overload_ = manager;
  // Walk the pool's decorator chain and attach every overload-aware layer
  // (ElimCounter widens its pairing window, AdaptiveCounter accepts the
  // forced swap). ForwardingCounter is the only chain link in the library.
  rt::Counter* layer = pool_.get();
  while (layer != nullptr) {
    if (auto* aware = dynamic_cast<OverloadAware*>(layer)) {
      aware->attach_overload(manager);
    }
    auto* fwd = dynamic_cast<rt::ForwardingCounter*>(layer);
    layer = fwd != nullptr ? &fwd->inner() : nullptr;
  }
}

}  // namespace cnet::svc
