#include "cnet/svc/net_token_bucket.hpp"

#include <algorithm>
#include <utility>

#include "cnet/svc/overload.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::svc {

std::unique_ptr<NetTokenBucket::PoolState> NetTokenBucket::make_state(
    std::unique_ptr<rt::Counter> pool, std::size_t refill_chunk) {
  CNET_REQUIRE(pool != nullptr, "null pool counter");
  CNET_REQUIRE(respec_safe(refill_chunk), "refill_chunk must be in 1..256");
  auto state = std::make_unique<PoolState>();
  state->pool = std::move(pool);
  state->refill_chunk = refill_chunk;
  return state;
}

NetTokenBucket::NetTokenBucket(std::unique_ptr<rt::Counter> pool)
    : NetTokenBucket(std::move(pool), Config()) {}

NetTokenBucket::NetTokenBucket(std::unique_ptr<rt::Counter> pool, Config cfg)
    : engine_(make_state(std::move(pool), cfg.refill_chunk)) {
  if (cfg.initial_tokens > 0) refill(0, cfg.initial_tokens);
}

std::uint64_t NetTokenBucket::consume(std::size_t thread_hint,
                                      std::uint64_t tokens,
                                      ConsumeOptions opts) {
  if (tokens == 0) return 0;  // defined no-op: success, pool untouched
  attempts_.add(thread_hint, 1);
  const std::uint64_t got =
      engine_.read(thread_hint, [&](PoolState& state) -> std::uint64_t {
        if (tokens == 1) {
          // The common admit(1) case takes the single-op path: same
          // conclusive miss-means-empty contract, no bulk machinery — and
          // on an ElimCounter pool it is the path that deposits in the
          // exchange slots, so lone consumes can pair with a racing batch
          // refill.
          return state.pool->try_fetch_decrement(thread_hint) ? 1 : 0;
        }
        // The grab/refund plan is the shared svc::bucket_consume policy (the
        // virtual-time simulator runs the identical plan against its pool
        // models). Bulk claims: central backends take the whole remainder in
        // one CAS, network backends in one antitoken traversal + block cell
        // claims. A zero return is conclusive — the pool was observably
        // empty — and an all-or-nothing shortfall goes back through
        // refund_n, not refill(): count-wise the same increments, but marked
        // so an adaptive pool's load probe never mistakes a pure-reject
        // storm for organic traffic. Grab and shortfall-refund run inside
        // one read section, so a racing respec migrates either the
        // untouched pool or the fully settled one — never a half-refunded
        // state.
        return bucket_consume(
            tokens, opts,
            [&](std::uint64_t want) {
              return state.pool->try_fetch_decrement_n(thread_hint, want);
            },
            [&](std::uint64_t refund) {
              state.pool->refund_n(thread_hint, refund);
            });
      });
  if (got == 0) rejects_.add(thread_hint, 1);
  return got;
}

void NetTokenBucket::refill(std::size_t thread_hint, std::uint64_t tokens) {
  // The claimed values are discarded: a pool token has no identity, only
  // the net count matters. Under overload the shrink-batch action divides
  // the chunk size (shared divided_chunk rule, floor 1): the same token
  // count lands in the pool, in smaller exclusive batch holds.
  const std::size_t divisor =
      overload_ != nullptr ? overload_->actions().batch_divisor : 1;
  while (tokens > 0) {
    const std::uint64_t left = tokens;
    const std::uint64_t pushed =
        engine_.read(thread_hint, [&](PoolState& state) -> std::uint64_t {
          const std::size_t chunk = divided_chunk(state.refill_chunk, divisor);
          std::int64_t scratch[kMaxRefillChunk];
          const auto k =
              static_cast<std::size_t>(std::min<std::uint64_t>(left, chunk));
          state.pool->fetch_increment_batch(thread_hint, k, scratch);
          return k;
        });
    tokens -= pushed;
  }
}

void NetTokenBucket::refund(std::size_t thread_hint, std::uint64_t tokens) {
  if (tokens == 0) return;
  engine_.read(thread_hint, [&](PoolState& state) {
    state.pool->refund_n(thread_hint, tokens);
    return 0;
  });
}

std::uint64_t NetTokenBucket::respec(std::size_t thread_hint, const Respec& r) {
  CNET_REQUIRE(respec_safe(r.refill_chunk),
               "staged refill_chunk must be in 1..256");
  auto next = make_state(make_counter(r.spec, r.net), r.refill_chunk);
  // Wire the staged pool to the attached manager *before* publish: the very
  // first refill routed to it must already see the shrunken chunk /
  // forced-eliminate posture, with no unattached window.
  attach_chain(next->pool.get(), overload_);
  return engine_.commit(
      std::move(next), [&](PoolState& old_state, PoolState& new_state) {
        // Post-quiescence: no consume/refill/refund can touch the old pool
        // again, so its remaining count is exactly what the drain reclaims.
        // Tokens move in bounded chunks and are re-injected through
        // refund_n — migration is a give-back, not organic refill load, so
        // an adaptive replacement pool's switch probe ignores it.
        std::uint64_t moved = 0;
        constexpr std::uint64_t kChunk = 256;
        for (std::uint64_t got; (got = old_state.pool->try_fetch_decrement_n(
                                     thread_hint, kChunk)) != 0;) {
          moved += got;
        }
        new_state.pool->refund_n(thread_hint, moved);
        // Roll the retired pool's (now final) telemetry into the cumulative
        // totals so windowed monitors never observe a regressing count.
        retired_stalls_.fetch_add(old_state.pool->stall_count(),
                                  std::memory_order_relaxed);
        retired_traversals_.fetch_add(old_state.pool->traversal_count(),
                                      std::memory_order_relaxed);
        retired_batch_passes_.fetch_add(old_state.pool->batch_pass_count(),
                                        std::memory_order_relaxed);
      });
}

void NetTokenBucket::attach_chain(rt::Counter* layer,
                                  const OverloadManager* manager) noexcept {
  // Walk the pool's decorator chain and attach every overload-aware layer
  // (ElimCounter widens its pairing window, AdaptiveCounter accepts the
  // forced swap). ForwardingCounter is the only chain link in the library.
  while (layer != nullptr) {
    if (auto* aware = dynamic_cast<OverloadAware*>(layer)) {
      aware->attach_overload(manager);
    }
    auto* fwd = dynamic_cast<rt::ForwardingCounter*>(layer);
    layer = fwd != nullptr ? &fwd->inner() : nullptr;
  }
}

void NetTokenBucket::attach_overload(const OverloadManager* manager) noexcept {
  // Not synchronized with a concurrent respec(): attach before opening the
  // bucket to reconfiguration traffic (respec snapshots overload_ when it
  // wires the staged pool).
  overload_ = manager;
  attach_chain(engine_.current().pool.get(), manager);
}

}  // namespace cnet::svc
