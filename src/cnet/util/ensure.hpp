// Contract-checking helpers used across the library.
//
// Following the C++ Core Guidelines (I.6/I.8: express preconditions and
// postconditions), every public entry point validates its arguments with
// CNET_REQUIRE and internal invariants with CNET_ENSURE. Violations throw,
// so tests can assert on misuse, and release builds keep the checks (they
// are all O(1) or amortized into construction).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cnet::util {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace cnet::util

// Precondition on caller-supplied arguments; throws std::invalid_argument.
#define CNET_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) ::cnet::util::throw_precondition(#cond, __FILE__, __LINE__, \
                                                  (msg));                    \
  } while (false)

// Internal invariant; throws std::logic_error (a library bug if it fires).
#define CNET_ENSURE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) ::cnet::util::throw_invariant(#cond, __FILE__, __LINE__, \
                                               (msg));                    \
  } while (false)
