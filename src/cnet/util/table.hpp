// Console table / CSV emitter used by the benchmark harness so that every
// bench binary prints the rows the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cnet::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  // Structured access for machine-readable sinks (bench JSON reports).
  const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  // Column-aligned plain text rendering, with a header separator.
  void print(std::ostream& os) const;

  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers for table cells.
std::string fmt_int(std::int64_t v);
std::string fmt_double(double v, int precision = 3);
std::string fmt_ratio(double num, double den, int precision = 2);

}  // namespace cnet::util
