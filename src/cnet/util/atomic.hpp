// util::Atomic<T> — std::atomic<T> behind the schedule checker's seam.
//
// Every protocol word whose interleavings the checker explores (StallSlots
// tallies, EliminationLayer exchange slots, ReconfigEngine reader slots
// and active-state pointer, the quota borrow reservation) is declared as
// util::Atomic instead of std::atomic. With CNET_SCHED_CHECK off this is a
// pure forwarding shim over std::atomic — same layout, same memory orders,
// inline calls, zero overhead. With it on, each operation first announces
// itself at a util::SchedPoint, making it one explorable step of the
// controlled scheduler (see util/sched_point.hpp); the real std::atomic
// operation then executes with its original memory order, so the checked
// code is the shipped code, not a model of it.
//
// Only the operations the tree actually uses are provided — add more
// forwarders as call sites need them rather than pre-paving the full
// std::atomic surface.
#pragma once

#include <atomic>

#include "cnet/util/sched_point.hpp"

namespace cnet::util {

template <class T>
class Atomic {
 public:
  constexpr Atomic() noexcept = default;
  constexpr Atomic(T desired) noexcept : v_(desired) {}  // NOLINT(google-explicit-constructor): mirrors std::atomic
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    announce(SchedOpKind::kAtomicLoad);
    return v_.load(order);
  }

  void store(T desired, std::memory_order order = std::memory_order_seq_cst) {
    announce(SchedOpKind::kAtomicStore);
    v_.store(desired, order);
  }

  T exchange(T desired, std::memory_order order = std::memory_order_seq_cst) {
    announce(SchedOpKind::kAtomicRmw);
    return v_.exchange(desired, order);
  }

  T fetch_add(T arg, std::memory_order order = std::memory_order_seq_cst) {
    announce(SchedOpKind::kAtomicRmw);
    return v_.fetch_add(arg, order);
  }

  T fetch_sub(T arg, std::memory_order order = std::memory_order_seq_cst) {
    announce(SchedOpKind::kAtomicRmw);
    return v_.fetch_sub(arg, order);
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    announce(SchedOpKind::kAtomicRmw);
    return v_.compare_exchange_weak(expected, desired, order);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    announce(SchedOpKind::kAtomicRmw);
    return v_.compare_exchange_strong(expected, desired, order);
  }

 private:
  void announce(SchedOpKind kind) const {
#if defined(CNET_SCHED_CHECK)
    if (SchedHooks* h = sched_hooks()) h->sched_point(SchedOp{kind, this});
#else
    (void)kind;
#endif
  }

  std::atomic<T> v_{};
};

}  // namespace cnet::util
