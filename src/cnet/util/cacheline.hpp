// Cache-line padding utilities (Core Guidelines CP.31 locality notes):
// shared atomics that different threads update concurrently are placed on
// distinct cache lines to avoid false sharing.
#pragma once

#include <cstddef>
#include <new>

namespace cnet::util {

// Fixed rather than std::hardware_destructive_interference_size: the value
// participates in the library ABI and GCC warns that the std constant can
// drift with -mtune. 64 bytes is correct for every x86-64 and most AArch64.
inline constexpr std::size_t kCacheLine = 64;

// A value padded out to its own cache line.
template <class T>
struct alignas(kCacheLine) Padded {
  T value{};
};

}  // namespace cnet::util
