// Small constexpr bit-manipulation helpers for power-of-two network widths.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace cnet::util {

// True iff x is a positive power of two.
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

// Floor of log2(x); requires x > 0.
constexpr unsigned ilog2(std::uint64_t x) noexcept {
  return static_cast<unsigned>(63 - std::countl_zero(x | 1));
}

// Ceiling of a/b for nonnegative a and positive b.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

// Reverse the low `bits` bits of v (used for diffracting-tree leaf order).
constexpr std::uint64_t bit_reverse(std::uint64_t v, unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | ((v >> i) & 1u);
  }
  return r;
}

// Smallest power of two >= x; requires x >= 1.
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return std::bit_ceil(x);
}

}  // namespace cnet::util
