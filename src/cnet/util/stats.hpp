// Streaming summary statistics (Welford) and percentile helpers used by the
// simulator and the benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace cnet::util {

// Numerically stable running mean/variance with min/max tracking.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// p-th percentile (0 <= p <= 100) by linear interpolation; copies its input.
// Requires a nonempty sample.
double percentile(std::vector<double> sample, double p);

}  // namespace cnet::util
