// util::Mutex — std::mutex under Clang Thread Safety Analysis capability
// annotations (cnet/util/thread_annotations.hpp). libstdc++'s std::mutex
// carries no attributes, so the analysis cannot see a bare std::mutex
// being locked; this wrapper is what lets CNET_GUARDED_BY fields across
// the concurrency stack (overload manager, reconfig engine, lease ledger)
// be compiler-checked rather than comment-checked. Zero overhead: every
// member is a forwarding inline call, and off clang the attributes expand
// to nothing.
//
// The wrapper is also the schedule checker's lock seam (CNET_SCHED_CHECK,
// util/sched_point.hpp): on a checker-controlled thread, lock/unlock never
// touch the real std::mutex — kernel blocking would wedge the checker's
// serialized thread handoff — and ownership is tracked by the controlled
// scheduler instead, with waiters on a held mutex simply not enabled.
// Uncontrolled threads (and every thread in a normal build) take the
// std::mutex path unchanged.
#pragma once

#include <mutex>
#include <utility>

#include "cnet/util/sched_point.hpp"
#include "cnet/util/thread_annotations.hpp"

namespace cnet::util {

class CNET_CAPABILITY("mutex") Mutex {
 public:
#if defined(CNET_SCHED_CHECK)
  // Registering at construction gives each mutex a per-execution sequential
  // id; DualMutexLock orders its two acquires by it, because construction
  // order is deterministic across the explorer's executions while heap
  // addresses are not.
  Mutex() {
    if (SchedHooks* h = sched_hooks()) sched_id_ = h->mutex_created(this);
  }
#else
  Mutex() = default;
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CNET_ACQUIRE() {
#if defined(CNET_SCHED_CHECK)
    if (SchedHooks* h = sched_hooks()) {
      h->mutex_acquire(this);
      return;
    }
#endif
    mu_.lock();
  }

  void unlock() CNET_RELEASE() {
#if defined(CNET_SCHED_CHECK)
    if (SchedHooks* h = sched_hooks()) {
      h->mutex_release(this);
      return;
    }
#endif
    mu_.unlock();
  }

  bool try_lock() CNET_TRY_ACQUIRE(true) {
#if defined(CNET_SCHED_CHECK)
    if (SchedHooks* h = sched_hooks()) return h->mutex_try_acquire(this);
#endif
    return mu_.try_lock();
  }

 private:
  friend class DualMutexLock;
  std::mutex mu_;
#if defined(CNET_SCHED_CHECK)
  std::uint64_t sched_id_ = 0;  // 0 = constructed outside any checker
#endif
};

// RAII lock for one Mutex, the annotated std::lock_guard.
class CNET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CNET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CNET_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII lock over two Mutexes at once, acquired with std::lock's
// deadlock-avoiding protocol (the annotated std::scoped_lock(a, b)). Used
// where two ledgers must move together in one atomic step — e.g. a peer
// donation carving the donor's leases and recording the recipient's in
// the same critical section.
class CNET_SCOPED_CAPABILITY DualMutexLock {
 public:
  DualMutexLock(Mutex& a, Mutex& b) CNET_ACQUIRE(a, b) : a_(a), b_(b) {
#if defined(CNET_SCHED_CHECK)
    if (sched_hooks() != nullptr) {
      // std::lock's try-and-back-off dance is opaque to the controlled
      // scheduler; a fixed global acquisition order gives the same
      // deadlock freedom and is deterministic across executions.
      Mutex* lo = &a_;
      Mutex* hi = &b_;
      const bool ordered_ids = a_.sched_id_ != 0 && b_.sched_id_ != 0;
      if (ordered_ids ? a_.sched_id_ > b_.sched_id_ : &a_ > &b_) {
        std::swap(lo, hi);
      }
      lo->lock();
      hi->lock();
      return;
    }
#endif
    std::lock(a_.mu_, b_.mu_);
  }
  ~DualMutexLock() CNET_RELEASE() {
#if defined(CNET_SCHED_CHECK)
    if (sched_hooks() != nullptr) {
      a_.unlock();
      b_.unlock();
      return;
    }
#endif
    a_.mu_.unlock();
    b_.mu_.unlock();
  }

  DualMutexLock(const DualMutexLock&) = delete;
  DualMutexLock& operator=(const DualMutexLock&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

}  // namespace cnet::util
