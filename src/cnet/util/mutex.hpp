// util::Mutex — std::mutex under Clang Thread Safety Analysis capability
// annotations (cnet/util/thread_annotations.hpp). libstdc++'s std::mutex
// carries no attributes, so the analysis cannot see a bare std::mutex
// being locked; this wrapper is what lets CNET_GUARDED_BY fields across
// the concurrency stack (overload manager, reconfig engine, lease ledger)
// be compiler-checked rather than comment-checked. Zero overhead: every
// member is a forwarding inline call, and off clang the attributes expand
// to nothing.
#pragma once

#include <mutex>

#include "cnet/util/thread_annotations.hpp"

namespace cnet::util {

class CNET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CNET_ACQUIRE() { mu_.lock(); }
  void unlock() CNET_RELEASE() { mu_.unlock(); }
  bool try_lock() CNET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class DualMutexLock;
  std::mutex mu_;
};

// RAII lock for one Mutex, the annotated std::lock_guard.
class CNET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CNET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CNET_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII lock over two Mutexes at once, acquired with std::lock's
// deadlock-avoiding protocol (the annotated std::scoped_lock(a, b)). Used
// where two ledgers must move together in one atomic step — e.g. a peer
// donation carving the donor's leases and recording the recipient's in
// the same critical section.
class CNET_SCOPED_CAPABILITY DualMutexLock {
 public:
  DualMutexLock(Mutex& a, Mutex& b) CNET_ACQUIRE(a, b) : a_(a), b_(b) {
    std::lock(a_.mu_, b_.mu_);
  }
  ~DualMutexLock() CNET_RELEASE() {
    a_.mu_.unlock();
    b_.mu_.unlock();
  }

  DualMutexLock(const DualMutexLock&) = delete;
  DualMutexLock& operator=(const DualMutexLock&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

}  // namespace cnet::util
