// Deterministic, fast pseudo-random number generation.
//
// Benchmarks and property tests need reproducible randomness that is cheap
// enough to sit inside a simulation inner loop. We implement SplitMix64 (for
// seeding) and xoshiro256** 1.0 (general purpose; Blackman & Vigna, public
// domain), exposed as a UniformRandomBitGenerator so it composes with
// <random> distributions where convenient.
#pragma once

#include <array>
#include <cstdint>

namespace cnet::util {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xorshift64* (Marsaglia's xorshift, Vigna's * scrambler): the cheap
// inline step for call sites where carrying a full Xoshiro256 would be
// overkill — diffracting-tree prism choice, elimination slot probes, bench
// mix draws. Mutates `state`, which must be seeded nonzero.
inline constexpr std::uint64_t xorshift64_star(std::uint64_t& state) noexcept {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dULL;
}

// xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed'c0de'1998'0331ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  // Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform01() noexcept;

  // Jump ahead by 2^128 steps (gives independent subsequences per thread).
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace cnet::util
