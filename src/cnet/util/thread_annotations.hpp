// Portable Clang Thread Safety Analysis annotations (the -Wthread-safety
// attribute vocabulary, cf. clang's docs/ThreadSafetyAnalysis and the
// canonical mutex.h shim every large codebase carries). The macros expand
// to the clang attributes when the compiler understands them and to
// nothing everywhere else, so annotating a declaration costs other
// toolchains exactly zero — but under the thread-safety CI job
// (CNET_THREAD_SAFETY_ANALYSIS, clang, -Wthread-safety -Wthread-safety-beta
// promoted to errors) every mutex-guarded invariant in the concurrency
// stack is machine-checked at compile time instead of documented in prose:
// a read of a CNET_GUARDED_BY field outside its mutex, a helper called
// without the capability its CNET_REQUIRES declares, or a lock/unlock
// imbalance is a build failure, not a comment violation.
//
// The std::mutex in libstdc++ carries none of these attributes, so
// annotating fields guarded by a bare std::mutex would make every access
// a false positive (the analysis never sees the lock acquired). The
// annotated wrapper the repo's concurrency stack actually locks through
// is util::Mutex in cnet/util/mutex.hpp.
#pragma once

#if defined(__clang__)
#define CNET_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CNET_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

// On a class: instances are capabilities (lockable things). The string
// names the capability kind in diagnostics ("mutex", "role", ...).
#define CNET_CAPABILITY(x) CNET_THREAD_ANNOTATION_(capability(x))

// On a class: RAII object that acquires a capability in its constructor
// and releases it in its destructor (std::lock_guard shape).
#define CNET_SCOPED_CAPABILITY CNET_THREAD_ANNOTATION_(scoped_lockable)

// On a data member: reads and writes require holding the given capability.
#define CNET_GUARDED_BY(x) CNET_THREAD_ANNOTATION_(guarded_by(x))

// On a pointer/smart-pointer member: the *pointee* is guarded (the pointer
// itself may be read freely).
#define CNET_PT_GUARDED_BY(x) CNET_THREAD_ANNOTATION_(pt_guarded_by(x))

// On a function: the caller must already hold the capabilities (shared
// variant for reader locks).
#define CNET_REQUIRES(...) \
  CNET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CNET_REQUIRES_SHARED(...) \
  CNET_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// On a function: it acquires / releases the capabilities itself.
#define CNET_ACQUIRE(...) \
  CNET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CNET_ACQUIRE_SHARED(...) \
  CNET_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define CNET_RELEASE(...) \
  CNET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CNET_RELEASE_SHARED(...) \
  CNET_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// On a function returning bool: acquires the capability iff it returns
// the given value.
#define CNET_TRY_ACQUIRE(...) \
  CNET_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the capabilities (deadlock
// guard for functions that acquire them internally).
#define CNET_EXCLUDES(...) CNET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function: it returns a reference to the given capability.
#define CNET_RETURN_CAPABILITY(x) CNET_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code whose discipline the analysis cannot express
// (e.g. handoff protocols). Every use carries a justification comment.
#define CNET_NO_THREAD_SAFETY_ANALYSIS \
  CNET_THREAD_ANNOTATION_(no_thread_safety_analysis)
