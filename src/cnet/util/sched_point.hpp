// util::SchedPoint — the virtualization seam the systematic schedule
// checker (cnet::check) controls the concurrency stack through.
//
// Under the CNET_SCHED_CHECK build option, every synchronization operation
// the protocols perform — util::Atomic loads/stores/RMWs, util::Mutex
// acquire/release, spin-loop yields — first announces itself at a *sched
// point*: a call into the per-thread SchedHooks installed by the checker's
// controlled scheduler. The scheduler serializes all controlled threads
// (exactly one runs at a time), so each announced operation becomes one
// atomic step in an interleaving the explorer chooses deterministically —
// the same virtualized-sync idea as Loom's `loom::sync` shims and
// CDSChecker's operation interception, applied to this repo's own
// primitives.
//
// Three states, all zero-cost where it matters:
//   - option off (production): the hook calls are compiled out entirely;
//     util::Atomic<T> is a plain std::atomic<T> forwarding shim and
//     util::Mutex locks its std::mutex directly. Byte-for-byte identical
//     hot paths.
//   - option on, thread not controlled: a thread_local pointer test per
//     operation, then plain behavior. This is what normal tests see in a
//     CNET_SCHED_CHECK build.
//   - option on, thread controlled: every operation is a scheduling
//     decision point owned by cnet::check::Explorer.
//
// The interface is deliberately tiny: util knows how to *announce*
// operations, never how schedules are chosen. All exploration policy
// (preemption bounds, sleep sets, replay) lives in src/cnet/check/.
#pragma once

#include <cstdint>
#include <thread>

namespace cnet::util {

#if defined(CNET_SCHED_CHECK)
inline constexpr bool kSchedCheckEnabled = true;
#else
inline constexpr bool kSchedCheckEnabled = false;
#endif

// What a controlled thread is about to do. The checker's dependency
// relation (for sleep-set pruning) and enabledness rules key off this.
enum class SchedOpKind : std::uint8_t {
  kAtomicLoad,   // read of a util::Atomic
  kAtomicStore,  // write of a util::Atomic
  kAtomicRmw,    // fetch_add/fetch_sub/exchange/compare_exchange
  kMutexLock,    // blocking acquire of a util::Mutex
  kMutexTryLock, // non-blocking acquire attempt (always enabled)
  kMutexUnlock,  // release of a util::Mutex
  kYield,        // spin-loop back-off: disabled until another thread steps
  kThreadStart,  // first activation of a spawned thread (no operand yet)
  kJoin,         // wait for every other controlled thread to finish
};

struct SchedOp {
  SchedOpKind kind = SchedOpKind::kThreadStart;
  // The operation's shared operand: the util::Atomic's address or the
  // util::Mutex's identity. nullptr for thread-lifecycle operations.
  const void* addr = nullptr;
};

// The controlled scheduler, as util sees it. Implemented by
// cnet::check::Explorer's per-execution scheduler; installed per thread.
//
// Contract: sched_point() blocks until the scheduler decides the calling
// thread performs `op` as the next global step, then returns; the caller
// executes the real operation immediately after (still serialized — no
// other controlled thread runs until this thread reaches its next point).
// The mutex calls subsume both the announcement and the semantics: under
// control the real std::mutex is never locked (kernel blocking would wedge
// the serialized handoff); ownership is tracked by the scheduler, and
// waiters on a held mutex are simply not enabled.
class SchedHooks {
 public:
  virtual ~SchedHooks() = default;
  virtual void sched_point(const SchedOp& op) = 0;
  virtual void mutex_acquire(const void* mu) = 0;
  virtual bool mutex_try_acquire(const void* mu) = 0;
  virtual void mutex_release(const void* mu) = 0;
  // Announces construction of a util::Mutex, returning a per-execution
  // sequential id used for deterministic multi-lock ordering (heap
  // addresses are not stable across executions; construction order is).
  virtual std::uint64_t mutex_created(const void* mu) = 0;
  virtual void yield() = 0;
};

// The calling thread's scheduler, or nullptr when it is not controlled
// (which is every thread unless a checker explicitly adopted it).
SchedHooks* sched_hooks() noexcept;
// Installs/clears the calling thread's scheduler. Called by the checker's
// thread wrappers only.
void set_sched_hooks(SchedHooks* hooks) noexcept;

// Spin-loop back-off that the checker can see: under control the calling
// thread is descheduled until some other thread makes a step (the move
// that lets the explorer terminate unbounded wait loops like the reconfig
// commit's quiescence scan); otherwise a plain std::this_thread::yield().
inline void sched_yield() {
#if defined(CNET_SCHED_CHECK)
  if (SchedHooks* h = sched_hooks()) {
    h->yield();
    return;
  }
#endif
  std::this_thread::yield();
}

}  // namespace cnet::util
