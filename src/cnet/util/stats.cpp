#include "cnet/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "cnet/util/ensure.hpp"

namespace cnet::util {

void Accumulator::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double p) {
  CNET_REQUIRE(!sample.empty(), "percentile of empty sample");
  CNET_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

}  // namespace cnet::util
