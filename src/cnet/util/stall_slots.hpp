// Padded per-slot event tallies, shared by every counter backend that
// reports contention (CAS retries / lock waits) and, since the elimination
// layer, traversal counts and sampling probes. Threads scatter their
// updates across `slots` cache-line-padded atomics keyed by thread hint, so
// recording an event never becomes a contention point itself; full reads
// sum the slots and are expected to be rare (end-of-run reporting), while
// add_and_get exposes the writer's own slot cheaply for periodic-sampling
// triggers (svc::LoadStats).
#pragma once

#include <cstdint>
#include <vector>

#include "cnet/util/atomic.hpp"
#include "cnet/util/cacheline.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::util {

class StallSlots {
 public:
  // Under the schedule checker every slot read in total() is one explored
  // step, so the default scatter width shrinks to keep driver state spaces
  // small; production builds keep the full contention-avoiding spread.
#if defined(CNET_SCHED_CHECK)
  static constexpr std::size_t kDefaultSlots = 2;
#else
  static constexpr std::size_t kDefaultSlots = 64;
#endif

  explicit StallSlots(std::size_t slots = kDefaultSlots) : slots_(slots) {
    CNET_REQUIRE(slots > 0, "at least one stall slot");
  }

  void add(std::size_t thread_hint,
           std::uint64_t stalls) noexcept(!kSchedCheckEnabled) {
    if (stalls != 0) {
      slots_[thread_hint % slots_.size()].value.fetch_add(
          stalls, std::memory_order_relaxed);
    }
  }

  // Adds unconditionally and returns the slot's new tally. The return value
  // only reflects events recorded through the caller's own slot, which is
  // exactly what a "sample every N of my ops" trigger needs — no cross-slot
  // sum on the hot path.
  std::uint64_t add_and_get(std::size_t thread_hint,
                            std::uint64_t events) noexcept(!kSchedCheckEnabled) {
    return slots_[thread_hint % slots_.size()].value.fetch_add(
               events, std::memory_order_relaxed) +
           events;
  }

  std::uint64_t total() const noexcept(!kSchedCheckEnabled) {
    std::uint64_t sum = 0;
    for (const auto& slot : slots_) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  std::vector<Padded<Atomic<std::uint64_t>>> slots_;
};

}  // namespace cnet::util
