// Padded per-slot stall tallies, shared by every counter backend that
// reports contention (CAS retries / lock waits). Threads scatter their
// updates across `slots` cache-line-padded atomics keyed by thread hint, so
// recording a stall never becomes a contention point itself; reads sum the
// slots and are expected to be rare (end-of-run reporting).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cnet/util/cacheline.hpp"
#include "cnet/util/ensure.hpp"

namespace cnet::util {

class StallSlots {
 public:
  static constexpr std::size_t kDefaultSlots = 64;

  explicit StallSlots(std::size_t slots = kDefaultSlots) : slots_(slots) {
    CNET_REQUIRE(slots > 0, "at least one stall slot");
  }

  void add(std::size_t thread_hint, std::uint64_t stalls) noexcept {
    if (stalls != 0) {
      slots_[thread_hint % slots_.size()].value.fetch_add(
          stalls, std::memory_order_relaxed);
    }
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& slot : slots_) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  std::vector<Padded<std::atomic<std::uint64_t>>> slots_;
};

}  // namespace cnet::util
