#include "cnet/util/prng.hpp"

#include <bit>

#include "cnet/util/ensure.hpp"

namespace cnet::util {

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire rejection sampling: unbiased and branch-light.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo by contract
  return lo + static_cast<std::int64_t>(below(span));
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = acc;
}

}  // namespace cnet::util
