#include "cnet/util/sched_point.hpp"

namespace cnet::util {

namespace {
// One slot per thread: a thread is controlled iff its checker installed
// hooks here. Kept behind functions (not an inline header variable) so the
// library owns exactly one definition regardless of how many TUs touch it.
thread_local SchedHooks* t_hooks = nullptr;
}  // namespace

SchedHooks* sched_hooks() noexcept { return t_hooks; }

void set_sched_hooks(SchedHooks* hooks) noexcept { t_hooks = hooks; }

}  // namespace cnet::util
