#include "cnet/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "cnet/util/ensure.hpp"

namespace cnet::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CNET_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  CNET_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_int(std::int64_t v) { return std::to_string(v); }

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_ratio(double num, double den, int precision) {
  if (den == 0.0) return "n/a";
  return fmt_double(num / den, precision);
}

}  // namespace cnet::util
