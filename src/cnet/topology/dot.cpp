#include "cnet/topology/dot.hpp"

#include <sstream>

namespace cnet::topo {

std::string to_dot(const Topology& net, const std::string& name) {
  std::ostringstream os;
  os << "digraph \"" << name << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontsize=10];\n";
  for (std::size_t i = 0; i < net.width_in(); ++i) {
    os << "  in" << i << " [shape=point, xlabel=\"x" << i << "\"];\n";
  }
  for (std::size_t i = 0; i < net.width_out(); ++i) {
    os << "  out" << i << " [shape=point, xlabel=\"y" << i << "\"];\n";
  }
  for (std::size_t b = 0; b < net.num_balancers(); ++b) {
    const auto& bal = net.balancer(BalancerId{static_cast<std::uint32_t>(b)});
    os << "  b" << b << " [label=\"b" << b << "\\n(" << bal.fan_in() << ","
       << bal.fan_out() << ")\"];\n";
  }
  // Edges follow wires: producer -> consumer, labelled by ports.
  auto endpoint_name = [&](const WireEnd& end, bool as_producer) {
    std::ostringstream n;
    if (end.kind == WireEnd::Kind::kNetworkInput) {
      n << "in" << end.port;
    } else if (end.kind == WireEnd::Kind::kNetworkOutput) {
      n << "out" << end.port;
    } else {
      n << "b" << end.balancer.value;
    }
    (void)as_producer;
    return n.str();
  };
  for (std::size_t w = 0; w < net.num_wires(); ++w) {
    const WireId wire{static_cast<std::uint32_t>(w)};
    const WireEnd& from = net.producer(wire);
    const WireEnd& to = net.consumer(wire);
    os << "  " << endpoint_name(from, true) << " -> "
       << endpoint_name(to, false);
    if (from.kind == WireEnd::Kind::kBalancer) {
      os << " [taillabel=\"" << from.port << "\", fontsize=8]";
    }
    os << ";\n";
  }
  // Same-rank groups per layer keep the drawing close to the paper's.
  for (const auto& layer : net.layers()) {
    os << "  { rank=same;";
    for (const BalancerId b : layer) os << " b" << b.value << ";";
    os << " }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace cnet::topo
