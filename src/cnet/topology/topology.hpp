// Balancing-network topology (paper §1.1, §2.2).
//
// A balancing network is an acyclic network of (p,q)-balancers whose output
// wires feed input wires of later balancers. We represent it in wire-SSA
// form: every wire has exactly one producer (a network input or a balancer
// output port) and exactly one consumer (a balancer input port or a network
// output). Networks are assembled through `Builder`, whose API mirrors the
// paper's recursive constructions: balancers are added onto existing wires,
// so the balancer creation order is automatically a topological order.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cnet/topology/ids.hpp"

namespace cnet::topo {

// One (p,q)-balancer: ordered input and output wire lists.
struct Balancer {
  std::vector<WireId> inputs;
  std::vector<WireId> outputs;

  std::size_t fan_in() const noexcept { return inputs.size(); }
  std::size_t fan_out() const noexcept { return outputs.size(); }
};

// Where a wire comes from / goes to.
struct WireEnd {
  enum class Kind : std::uint8_t {
    kNetworkInput,   // produced by the environment
    kNetworkOutput,  // consumed by the environment
    kBalancer,       // attached to balancer `balancer`, port `port`
    kUnbound,        // not yet attached (illegal in a built Topology)
  };
  Kind kind = Kind::kUnbound;
  BalancerId balancer = kInvalidBalancer;
  std::uint32_t port = 0;  // input index on the network, or port on balancer
};

class Topology;

// Incrementally assembles a Topology. Typical use:
//   Builder b;
//   auto in = b.add_network_inputs(w);
//   auto out = wire_counting(b, in, t);   // recursive construction
//   b.set_outputs(out);
//   Topology net = std::move(b).build();
class Builder {
 public:
  // Creates one fresh network input wire.
  WireId add_network_input();
  // Convenience: `n` fresh network input wires in order.
  std::vector<WireId> add_network_inputs(std::size_t n);

  // Adds a (inputs.size(), fanout)-balancer consuming `inputs` (each must be
  // currently unconsumed) and returns its `fanout` fresh output wires.
  std::vector<WireId> add_balancer(std::span<const WireId> inputs,
                                   std::size_t fanout);
  // Convenience for the ubiquitous (2,2)-balancer; returns {top, bottom}.
  std::pair<WireId, WireId> add_balancer2(WireId a, WireId b);

  // Declares the ordered network output wires. Each must be unconsumed.
  void set_outputs(std::span<const WireId> outputs);

  // Validates and finalizes. Throws std::invalid_argument when any wire is
  // left dangling or outputs were never declared.
  Topology build() &&;

 private:
  friend class Topology;
  std::vector<WireEnd> producer_;   // indexed by wire
  std::vector<WireEnd> consumer_;   // indexed by wire
  std::vector<Balancer> balancers_;
  std::vector<WireId> inputs_;
  std::vector<WireId> outputs_;
  bool outputs_set_ = false;

  WireId new_wire(WireEnd producer);
};

// Census row: how many balancers of each (p,q) shape a network contains.
struct BalancerTypeCount {
  std::size_t fan_in = 0;
  std::size_t fan_out = 0;
  std::size_t count = 0;
};

// An immutable, validated balancing network.
class Topology {
 public:
  std::size_t width_in() const noexcept { return inputs_.size(); }
  std::size_t width_out() const noexcept { return outputs_.size(); }
  std::size_t num_balancers() const noexcept { return balancers_.size(); }
  std::size_t num_wires() const noexcept { return producer_.size(); }

  const Balancer& balancer(BalancerId id) const;
  std::span<const Balancer> balancers() const noexcept { return balancers_; }
  std::span<const WireId> input_wires() const noexcept { return inputs_; }
  std::span<const WireId> output_wires() const noexcept { return outputs_; }

  const WireEnd& producer(WireId w) const;
  const WireEnd& consumer(WireId w) const;

  // Depth of a balancer (paper §2.2): 1 for balancers fed only by network
  // inputs; otherwise 1 + max depth over producing balancers.
  std::size_t balancer_depth(BalancerId id) const;
  // Network depth: maximum balancer depth (0 for a wire-only network).
  std::size_t depth() const noexcept { return depth_; }

  // Layer decomposition (paper §2.2): layers()[d] lists the balancers of
  // depth d+1, in creation order. Balancer creation order is topological.
  const std::vector<std::vector<BalancerId>>& layers() const noexcept {
    return layers_;
  }

  // True iff every balancer has fan_in == fan_out (paper §1.1).
  bool is_regular() const noexcept;

  // Census of balancer shapes, sorted by (fan_in, fan_out).
  std::vector<BalancerTypeCount> census() const;

  // Human-readable one-line summary, e.g. "w=8 t=16 depth=6 balancers=28".
  std::string summary() const;

 private:
  friend class Builder;
  Topology() = default;

  std::vector<WireEnd> producer_;
  std::vector<WireEnd> consumer_;
  std::vector<Balancer> balancers_;
  std::vector<WireId> inputs_;
  std::vector<WireId> outputs_;
  std::vector<std::size_t> depth_of_;  // per balancer
  std::vector<std::vector<BalancerId>> layers_;
  std::size_t depth_ = 0;
};

}  // namespace cnet::topo
