#include "cnet/topology/serialize.hpp"

#include <sstream>
#include <vector>

#include "cnet/util/ensure.hpp"

namespace cnet::topo {

std::string to_text(const Topology& net) {
  std::ostringstream os;
  os << "cnet-topology v1\n";
  os << "inputs " << net.width_in() << "\n";
  for (std::uint32_t b = 0; b < net.num_balancers(); ++b) {
    const auto& bal = net.balancer(BalancerId{b});
    os << "balancer " << bal.fan_out();
    for (const WireId in : bal.inputs) os << ' ' << in.value;
    os << "\n";
  }
  os << "outputs";
  for (const WireId out : net.output_wires()) os << ' ' << out.value;
  os << "\n";
  return os.str();
}

Topology from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  Builder builder;
  std::vector<WireId> wires;  // id -> WireId handed out by the builder
  bool saw_header = false, saw_inputs = false, saw_outputs = false;

  auto fail = [](const std::string& why) -> void {
    throw std::invalid_argument("cnet-topology parse error: " + why);
  };

  while (std::getline(is, line)) {
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;

    if (!saw_header) {
      std::string version;
      if (keyword != "cnet-topology" || !(ls >> version) || version != "v1") {
        fail("expected header 'cnet-topology v1'");
      }
      saw_header = true;
      continue;
    }
    if (keyword == "inputs") {
      if (saw_inputs) fail("duplicate inputs line");
      std::size_t w = 0;
      if (!(ls >> w) || w == 0) fail("inputs needs a positive width");
      wires = builder.add_network_inputs(w);
      saw_inputs = true;
    } else if (keyword == "balancer") {
      if (!saw_inputs) fail("balancer before inputs");
      if (saw_outputs) fail("balancer after outputs");
      std::size_t fanout = 0;
      if (!(ls >> fanout) || fanout == 0) fail("balancer needs a fanout");
      std::vector<WireId> ins;
      std::size_t id = 0;
      while (ls >> id) {
        if (id >= wires.size()) fail("balancer references unknown wire");
        ins.push_back(wires[id]);
      }
      if (ins.empty()) fail("balancer needs at least one input wire");
      const auto outs = builder.add_balancer(ins, fanout);
      wires.insert(wires.end(), outs.begin(), outs.end());
    } else if (keyword == "outputs") {
      if (saw_outputs) fail("duplicate outputs line");
      std::vector<WireId> outs;
      std::size_t id = 0;
      while (ls >> id) {
        if (id >= wires.size()) fail("output references unknown wire");
        outs.push_back(wires[id]);
      }
      builder.set_outputs(outs);
      saw_outputs = true;
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_header) fail("missing header");
  if (!saw_outputs) fail("missing outputs line");
  return std::move(builder).build();
}

bool structurally_equal(const Topology& a, const Topology& b) {
  if (a.width_in() != b.width_in() || a.width_out() != b.width_out() ||
      a.num_balancers() != b.num_balancers() ||
      a.num_wires() != b.num_wires()) {
    return false;
  }
  for (std::uint32_t i = 0; i < a.num_balancers(); ++i) {
    const auto& ba = a.balancer(BalancerId{i});
    const auto& bb = b.balancer(BalancerId{i});
    if (ba.inputs != bb.inputs || ba.outputs != bb.outputs) return false;
  }
  for (std::size_t i = 0; i < a.width_out(); ++i) {
    if (a.output_wires()[i] != b.output_wires()[i]) return false;
  }
  for (std::size_t i = 0; i < a.width_in(); ++i) {
    if (a.input_wires()[i] != b.input_wires()[i]) return false;
  }
  return true;
}

}  // namespace cnet::topo
