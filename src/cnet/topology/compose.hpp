// Structural composition of balancing networks.
//
// Balancing networks compose: the cascade of two counting networks counts,
// the cascade of a k-smoothing and an l-smoothing network is l-smoothing,
// and the parallel stack of two networks balances each half independently.
// The periodic network (lg w cascaded blocks) is the canonical cascade; the
// recursive constructions use stacks implicitly. These helpers rebuild a
// fresh Topology, so composites are first-class networks usable everywhere
// (simulator, runtime, sorting, DOT export).
#pragma once

#include "cnet/topology/topology.hpp"

namespace cnet::topo {

// Feeds every output of `first` into the same-position input of `second`.
// Requires first.width_out() == second.width_in().
Topology cascade(const Topology& first, const Topology& second);

// `first` cascaded with itself `times` >= 1 times; requires equal input
// and output widths.
Topology cascade_n(const Topology& net, std::size_t times);

// Places `top` and `bottom` side by side: inputs (and outputs) of `top`
// come first, then those of `bottom`; no wires cross between them.
Topology stack(const Topology& top, const Topology& bottom);

}  // namespace cnet::topo
