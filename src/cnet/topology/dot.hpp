// Graphviz DOT export for balancing networks — used to regenerate the
// paper's structural figures (Figs. 1–3, 5–6, 10–14) as diagrams.
#pragma once

#include <string>

#include "cnet/topology/topology.hpp"

namespace cnet::topo {

// Renders the network as a left-to-right DOT digraph. Balancers become
// boxes labelled "(p,q)"; network inputs/outputs become point nodes; ranks
// follow the layer decomposition.
std::string to_dot(const Topology& net, const std::string& name);

}  // namespace cnet::topo
