// Strong id types for wires and balancers. Using distinct wrapper structs
// (Core Guidelines I.4: strong types for distinct concepts) prevents mixing
// up the two index spaces at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace cnet::topo {

struct WireId {
  std::uint32_t value = std::numeric_limits<std::uint32_t>::max();
  friend auto operator<=>(WireId, WireId) = default;
};

struct BalancerId {
  std::uint32_t value = std::numeric_limits<std::uint32_t>::max();
  friend auto operator<=>(BalancerId, BalancerId) = default;
};

inline constexpr WireId kInvalidWire{};
inline constexpr BalancerId kInvalidBalancer{};

constexpr bool is_valid(WireId w) noexcept { return w != kInvalidWire; }
constexpr bool is_valid(BalancerId b) noexcept {
  return b != kInvalidBalancer;
}

}  // namespace cnet::topo
