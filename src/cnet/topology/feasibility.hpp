// Constructibility of counting networks (paper §1.4.2).
//
// Aharonson & Attiya: a counting (indeed, smoothing) network of output
// width w cannot be built from balancers with output widths b_1..b_k if
// some prime factor p of w divides no b_i. This module implements that
// necessary condition, so callers can reject impossible (width, balancer
// set) requests before trying to build them — and it documents why the
// paper's family needs w = 2^k when only (2,2)- and (2,2p)-balancers are
// available.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cnet::topo {

// Prime factorization of n >= 1 (primes in increasing order, repeated by
// multiplicity).
std::vector<std::uint64_t> prime_factors(std::uint64_t n);

// True iff the Aharonson–Attiya condition PERMITS a counting network of
// output width `w` from balancers with the given output widths: every
// prime factor of w divides at least one balancer width. (Necessary, not
// sufficient.)
bool counting_width_feasible(std::uint64_t w,
                             std::span<const std::uint64_t> balancer_widths);

// The prime factors of w that witness infeasibility (empty iff feasible).
std::vector<std::uint64_t> infeasibility_witnesses(
    std::uint64_t w, std::span<const std::uint64_t> balancer_widths);

}  // namespace cnet::topo
