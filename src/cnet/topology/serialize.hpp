// Plain-text serialization of balancing networks.
//
// Format (one declaration per line, '#' comments allowed):
//   cnet-topology v1
//   inputs <w>
//   balancer <fanout> <in_wire_id>...   # outputs get the next fanout ids
//   outputs <wire_id>...
//
// Wire ids follow the Builder's deterministic numbering (network inputs
// first, then each balancer's outputs in declaration order), so a network
// round-trips to a structurally identical one. Useful for golden files,
// external tooling, and shipping topologies between processes.
#pragma once

#include <string>

#include "cnet/topology/topology.hpp"

namespace cnet::topo {

std::string to_text(const Topology& net);

// Parses and validates; throws std::invalid_argument on malformed input.
Topology from_text(const std::string& text);

// Structural identity: same widths and, position by position, the same
// balancer shapes wired to the same wire ids. (Stronger than isomorphism.)
bool structurally_equal(const Topology& a, const Topology& b);

}  // namespace cnet::topo
