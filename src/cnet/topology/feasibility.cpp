#include "cnet/topology/feasibility.hpp"

#include <algorithm>

#include "cnet/util/ensure.hpp"

namespace cnet::topo {

std::vector<std::uint64_t> prime_factors(std::uint64_t n) {
  CNET_REQUIRE(n >= 1, "factorization of zero");
  std::vector<std::uint64_t> factors;
  for (std::uint64_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

std::vector<std::uint64_t> infeasibility_witnesses(
    std::uint64_t w, std::span<const std::uint64_t> balancer_widths) {
  CNET_REQUIRE(w >= 1, "width must be positive");
  std::vector<std::uint64_t> witnesses;
  auto factors = prime_factors(w);
  factors.erase(std::unique(factors.begin(), factors.end()), factors.end());
  for (const std::uint64_t p : factors) {
    const bool divides_some =
        std::any_of(balancer_widths.begin(), balancer_widths.end(),
                    [p](std::uint64_t b) { return b % p == 0; });
    if (!divides_some) witnesses.push_back(p);
  }
  return witnesses;
}

bool counting_width_feasible(std::uint64_t w,
                             std::span<const std::uint64_t> balancer_widths) {
  return infeasibility_witnesses(w, balancer_widths).empty();
}

}  // namespace cnet::topo
