#include "cnet/topology/topology.hpp"

#include <algorithm>
#include <sstream>

#include "cnet/util/ensure.hpp"

namespace cnet::topo {

WireId Builder::new_wire(WireEnd producer) {
  const WireId id{static_cast<std::uint32_t>(producer_.size())};
  producer_.push_back(producer);
  consumer_.push_back(WireEnd{});  // unbound until consumed
  return id;
}

WireId Builder::add_network_input() {
  CNET_REQUIRE(!outputs_set_, "cannot add inputs after set_outputs");
  WireEnd end;
  end.kind = WireEnd::Kind::kNetworkInput;
  end.port = static_cast<std::uint32_t>(inputs_.size());
  const WireId id = new_wire(end);
  inputs_.push_back(id);
  return id;
}

std::vector<WireId> Builder::add_network_inputs(std::size_t n) {
  std::vector<WireId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(add_network_input());
  return out;
}

std::vector<WireId> Builder::add_balancer(std::span<const WireId> inputs,
                                          std::size_t fanout) {
  CNET_REQUIRE(!outputs_set_, "cannot add balancers after set_outputs");
  CNET_REQUIRE(!inputs.empty(), "balancer needs at least one input");
  CNET_REQUIRE(fanout >= 1, "balancer needs at least one output");
  const BalancerId bid{static_cast<std::uint32_t>(balancers_.size())};
  Balancer bal;
  bal.inputs.assign(inputs.begin(), inputs.end());
  for (std::uint32_t port = 0; port < inputs.size(); ++port) {
    const WireId w = inputs[port];
    CNET_REQUIRE(w.value < producer_.size(), "unknown wire id");
    CNET_REQUIRE(consumer_[w.value].kind == WireEnd::Kind::kUnbound,
                 "wire already consumed");
    consumer_[w.value] =
        WireEnd{WireEnd::Kind::kBalancer, bid, port};
  }
  bal.outputs.reserve(fanout);
  for (std::uint32_t port = 0; port < fanout; ++port) {
    bal.outputs.push_back(
        new_wire(WireEnd{WireEnd::Kind::kBalancer, bid, port}));
  }
  balancers_.push_back(std::move(bal));
  return balancers_.back().outputs;
}

std::pair<WireId, WireId> Builder::add_balancer2(WireId a, WireId b) {
  const WireId in[2] = {a, b};
  auto out = add_balancer(in, 2);
  return {out[0], out[1]};
}

void Builder::set_outputs(std::span<const WireId> outputs) {
  CNET_REQUIRE(!outputs_set_, "set_outputs called twice");
  for (std::uint32_t pos = 0; pos < outputs.size(); ++pos) {
    const WireId w = outputs[pos];
    CNET_REQUIRE(w.value < producer_.size(), "unknown wire id");
    CNET_REQUIRE(consumer_[w.value].kind == WireEnd::Kind::kUnbound,
                 "output wire already consumed");
    consumer_[w.value] =
        WireEnd{WireEnd::Kind::kNetworkOutput, kInvalidBalancer, pos};
  }
  outputs_.assign(outputs.begin(), outputs.end());
  outputs_set_ = true;
}

Topology Builder::build() && {
  CNET_REQUIRE(outputs_set_, "build() before set_outputs()");
  for (std::size_t w = 0; w < consumer_.size(); ++w) {
    CNET_REQUIRE(consumer_[w].kind != WireEnd::Kind::kUnbound,
                 "dangling wire " + std::to_string(w) +
                     " (neither consumed by a balancer nor a network output)");
  }
  Topology t;
  t.producer_ = std::move(producer_);
  t.consumer_ = std::move(consumer_);
  t.balancers_ = std::move(balancers_);
  t.inputs_ = std::move(inputs_);
  t.outputs_ = std::move(outputs_);

  // Depths: balancer creation order is topological (inputs must exist when
  // a balancer is added), so one forward pass suffices.
  t.depth_of_.assign(t.balancers_.size(), 0);
  for (std::size_t b = 0; b < t.balancers_.size(); ++b) {
    std::size_t d = 1;
    for (const WireId in : t.balancers_[b].inputs) {
      const WireEnd& prod = t.producer_[in.value];
      if (prod.kind == WireEnd::Kind::kBalancer) {
        CNET_ENSURE(prod.balancer.value < b, "not in topological order");
        d = std::max(d, t.depth_of_[prod.balancer.value] + 1);
      }
    }
    t.depth_of_[b] = d;
    t.depth_ = std::max(t.depth_, d);
  }
  t.layers_.assign(t.depth_, {});
  for (std::size_t b = 0; b < t.balancers_.size(); ++b) {
    t.layers_[t.depth_of_[b] - 1].push_back(
        BalancerId{static_cast<std::uint32_t>(b)});
  }
  return t;
}

const Balancer& Topology::balancer(BalancerId id) const {
  CNET_REQUIRE(id.value < balancers_.size(), "balancer id out of range");
  return balancers_[id.value];
}

const WireEnd& Topology::producer(WireId w) const {
  CNET_REQUIRE(w.value < producer_.size(), "wire id out of range");
  return producer_[w.value];
}

const WireEnd& Topology::consumer(WireId w) const {
  CNET_REQUIRE(w.value < consumer_.size(), "wire id out of range");
  return consumer_[w.value];
}

std::size_t Topology::balancer_depth(BalancerId id) const {
  CNET_REQUIRE(id.value < depth_of_.size(), "balancer id out of range");
  return depth_of_[id.value];
}

bool Topology::is_regular() const noexcept {
  return std::all_of(balancers_.begin(), balancers_.end(),
                     [](const Balancer& b) {
                       return b.fan_in() == b.fan_out();
                     });
}

std::vector<BalancerTypeCount> Topology::census() const {
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> counts;
  for (const auto& b : balancers_) {
    ++counts[{b.fan_in(), b.fan_out()}];
  }
  std::vector<BalancerTypeCount> out;
  out.reserve(counts.size());
  for (const auto& [shape, count] : counts) {
    out.push_back({shape.first, shape.second, count});
  }
  return out;
}

std::string Topology::summary() const {
  std::ostringstream os;
  os << "w=" << width_in() << " t=" << width_out() << " depth=" << depth()
     << " balancers=" << num_balancers() << " [";
  bool first = true;
  for (const auto& row : census()) {
    if (!first) os << ", ";
    first = false;
    os << row.count << "x(" << row.fan_in << "," << row.fan_out << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace cnet::topo
