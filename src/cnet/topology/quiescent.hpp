// Quiescent-state evaluation (paper §2.2).
//
// In a quiescent state the output sequence of a (p,q)-balancer is a function
// only of the number of tokens that entered it (and its initial state), and
// the network's output sequence is a function of the per-wire input counts.
// This lets us evaluate a whole network by a single forward pass over the
// balancers in topological order — the basis of all correctness checks
// (step property, k-smoothness, sum preservation).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "cnet/seq/sequence.hpp"
#include "cnet/topology/topology.hpp"
#include "cnet/util/prng.hpp"

namespace cnet::topo {

// Per-balancer initial states; empty means all balancers start at state 0.
using InitialStates = std::span<const std::uint32_t>;

// Propagates per-input-wire token counts through the network and returns the
// per-output-wire token counts of the resulting quiescent state.
// `input_counts.size()` must equal `net.width_in()`; counts are >= 0.
seq::Sequence evaluate(const Topology& net,
                       std::span<const seq::Value> input_counts,
                       InitialStates initial_states = {});

// Net-balance evaluation with antitokens (Aiello et al.): input counts are
// token-minus-antitoken balances and may be negative. For a counting
// network the output balances still satisfy the step property — Eq. (1)
// extends to negative totals — which is why counting networks support
// Fetch&Decrement alongside Fetch&Increment (paper §1.4.2).
seq::Sequence evaluate_net(const Topology& net,
                           std::span<const seq::Value> input_balances,
                           InitialStates initial_states = {});

// Like `evaluate` but also reports the number of tokens through each
// balancer and the final balancer states (used by structural analyses and
// by batch-composed evaluation: feeding final_states back in as
// initial_states continues the execution where it stopped).
struct EvaluationTrace {
  seq::Sequence outputs;
  std::vector<seq::Value> tokens_through_balancer;
  std::vector<std::uint32_t> final_states;
};
EvaluationTrace evaluate_traced(const Topology& net,
                                std::span<const seq::Value> input_counts,
                                InitialStates initial_states = {});

// Result of a property check: nullopt on success, else a witness input.
using Witness = std::optional<seq::Sequence>;

// Checks the step property on random input distributions (counts uniform in
// [0, max_per_wire]) plus a few structured corner cases. Returns the first
// failing input, if any.
Witness check_counting_random(const Topology& net, std::size_t trials,
                              seq::Value max_per_wire, util::Xoshiro256& rng);

// Exhaustively checks the step property for every input in
// {0,...,max_per_wire}^w. Only call on small networks: cost is
// (max_per_wire+1)^w evaluations.
Witness check_counting_exhaustive(const Topology& net,
                                  seq::Value max_per_wire);

// Measures the worst observed output smoothness over random inputs (plus
// corner cases); a k-smoothing network must never exceed k.
seq::Value max_output_smoothness_random(const Topology& net,
                                        std::size_t trials,
                                        seq::Value max_per_wire,
                                        util::Xoshiro256& rng);

}  // namespace cnet::topo
