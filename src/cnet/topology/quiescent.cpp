#include "cnet/topology/quiescent.hpp"

#include <algorithm>

#include "cnet/util/ensure.hpp"

namespace cnet::topo {

namespace {

// Core forward pass shared by evaluate / evaluate_net / evaluate_traced.
// `allow_negative` switches the per-balancer rule to the antitoken-aware
// net-balance formula.
EvaluationTrace run(const Topology& net,
                    std::span<const seq::Value> input_counts,
                    InitialStates initial_states, bool want_trace,
                    bool allow_negative = false) {
  CNET_REQUIRE(input_counts.size() == net.width_in(),
               "input sequence width mismatch");
  CNET_REQUIRE(initial_states.empty() ||
                   initial_states.size() == net.num_balancers(),
               "initial state vector must cover every balancer");
  if (!allow_negative) {
    for (const seq::Value v : input_counts) {
      CNET_REQUIRE(v >= 0, "token counts must be nonnegative");
    }
  }

  std::vector<seq::Value> on_wire(net.num_wires(), 0);
  for (std::size_t i = 0; i < net.width_in(); ++i) {
    on_wire[net.input_wires()[i].value] = input_counts[i];
  }

  EvaluationTrace trace;
  if (want_trace) {
    trace.tokens_through_balancer.assign(net.num_balancers(), 0);
    trace.final_states.assign(net.num_balancers(), 0);
  }

  // Balancer storage order is topological (Builder guarantees it).
  for (std::size_t b = 0; b < net.num_balancers(); ++b) {
    const Balancer& bal = net.balancer(BalancerId{
        static_cast<std::uint32_t>(b)});
    seq::Value total = 0;
    for (const WireId in : bal.inputs) total += on_wire[in.value];
    const std::uint32_t init =
        initial_states.empty() ? 0u : initial_states[b];
    CNET_REQUIRE(init < bal.fan_out(), "initial state out of range");
    const seq::Sequence outs =
        allow_negative ? seq::balancer_output_net(total, bal.fan_out(), init)
                       : seq::balancer_output(total, bal.fan_out(), init);
    for (std::size_t port = 0; port < bal.fan_out(); ++port) {
      on_wire[bal.outputs[port].value] = outs[port];
    }
    if (want_trace) {
      trace.tokens_through_balancer[b] = total;
      trace.final_states[b] = static_cast<std::uint32_t>(
          (init + static_cast<std::uint64_t>(total % static_cast<seq::Value>(
                                                 bal.fan_out()))) %
          bal.fan_out());
    }
  }

  trace.outputs.reserve(net.width_out());
  for (const WireId out : net.output_wires()) {
    trace.outputs.push_back(on_wire[out.value]);
  }
  return trace;
}

// Structured corner-case inputs every checker also tries: all-zero, all-one,
// single hot wire, extreme skew.
std::vector<seq::Sequence> corner_inputs(std::size_t w,
                                         seq::Value max_per_wire) {
  std::vector<seq::Sequence> cases;
  cases.emplace_back(w, 0);
  cases.emplace_back(w, 1);
  cases.emplace_back(w, max_per_wire);
  for (std::size_t hot = 0; hot < std::min<std::size_t>(w, 4); ++hot) {
    seq::Sequence x(w, 0);
    x[hot] = max_per_wire;
    cases.push_back(std::move(x));
  }
  seq::Sequence ramp(w);
  for (std::size_t i = 0; i < w; ++i) {
    ramp[i] = (max_per_wire * static_cast<seq::Value>(i)) /
              std::max<seq::Value>(1, static_cast<seq::Value>(w));
  }
  cases.push_back(std::move(ramp));
  return cases;
}

}  // namespace

seq::Sequence evaluate(const Topology& net,
                       std::span<const seq::Value> input_counts,
                       InitialStates initial_states) {
  return run(net, input_counts, initial_states, /*want_trace=*/false).outputs;
}

seq::Sequence evaluate_net(const Topology& net,
                           std::span<const seq::Value> input_balances,
                           InitialStates initial_states) {
  return run(net, input_balances, initial_states, /*want_trace=*/false,
             /*allow_negative=*/true)
      .outputs;
}

EvaluationTrace evaluate_traced(const Topology& net,
                                std::span<const seq::Value> input_counts,
                                InitialStates initial_states) {
  return run(net, input_counts, initial_states, /*want_trace=*/true);
}

Witness check_counting_random(const Topology& net, std::size_t trials,
                              seq::Value max_per_wire,
                              util::Xoshiro256& rng) {
  const std::size_t w = net.width_in();
  auto failing = [&](std::span<const seq::Value> x) -> bool {
    const seq::Sequence y = evaluate(net, x);
    if (!seq::is_step(y)) return true;
    return seq::sum(y) != seq::sum(x);  // sum preservation must also hold
  };
  for (const auto& x : corner_inputs(w, max_per_wire)) {
    if (failing(x)) return x;
  }
  for (std::size_t t = 0; t < trials; ++t) {
    seq::Sequence x(w);
    for (auto& v : x) {
      v = static_cast<seq::Value>(
          rng.below(static_cast<std::uint64_t>(max_per_wire) + 1));
    }
    if (failing(x)) return x;
  }
  return std::nullopt;
}

Witness check_counting_exhaustive(const Topology& net,
                                  seq::Value max_per_wire) {
  const std::size_t w = net.width_in();
  seq::Sequence x(w, 0);
  while (true) {
    const seq::Sequence y = evaluate(net, x);
    if (!seq::is_step(y) || seq::sum(y) != seq::sum(x)) return x;
    // Odometer increment over {0..max_per_wire}^w.
    std::size_t pos = 0;
    while (pos < w && x[pos] == max_per_wire) {
      x[pos] = 0;
      ++pos;
    }
    if (pos == w) return std::nullopt;
    ++x[pos];
  }
}

seq::Value max_output_smoothness_random(const Topology& net,
                                        std::size_t trials,
                                        seq::Value max_per_wire,
                                        util::Xoshiro256& rng) {
  const std::size_t w = net.width_in();
  seq::Value worst = 0;
  auto consider = [&](std::span<const seq::Value> x) {
    worst = std::max(worst, seq::smoothness(evaluate(net, x)));
  };
  for (const auto& x : corner_inputs(w, max_per_wire)) consider(x);
  for (std::size_t t = 0; t < trials; ++t) {
    seq::Sequence x(w);
    for (auto& v : x) {
      v = static_cast<seq::Value>(
          rng.below(static_cast<std::uint64_t>(max_per_wire) + 1));
    }
    consider(x);
  }
  return worst;
}

}  // namespace cnet::topo
