// Balancing-network isomorphism (paper §2.3).
//
// Two networks are isomorphic when (i) there is a fan-shape-preserving
// bijection between their balancers, and (ii) whenever the k-th output wire
// of balancer b_i feeds balancer b_j, the k-th output wire of the image of
// b_i feeds the image of b_j (the input port may differ). Note the paper's
// caveat: this is *not* plain graph isomorphism, because output ports are
// ordered while input ports are interchangeable.
//
// We provide a backtracking decision procedure (practical for the small
// instances in the paper, e.g. Lemma 5.3's butterflies) and a verifier for
// an explicitly given balancer correspondence.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cnet/topology/topology.hpp"

namespace cnet::topo {

// A candidate isomorphism: mapping[i] is the index in B of the balancer
// corresponding to balancer i of A.
using BalancerMapping = std::vector<std::uint32_t>;

// Checks that `mapping` satisfies conditions (i) and (ii).
bool verify_isomorphism(const Topology& a, const Topology& b,
                        const BalancerMapping& mapping);

// Searches for an isomorphism; returns it if one exists. Exponential in the
// worst case — intended for the figure-sized networks in the paper.
std::optional<BalancerMapping> find_isomorphism(const Topology& a,
                                                const Topology& b);

// Convenience wrapper.
inline bool are_isomorphic(const Topology& a, const Topology& b) {
  return find_isomorphism(a, b).has_value();
}

// The induced wire correspondences of §2.3: pi_in maps input positions of
// A to input positions of B, pi_out likewise for outputs. Output ports are
// pinned by condition (ii); for input wires, the network-fed input ports
// of each balancer are matched in order (any such matching is behaviourally
// equivalent, because a balancer's quiescent output depends only on the sum
// of its inputs). Lemma 2.7 then states: if u = pi_in(x) feeds B, its
// output is pi_out applied to A's output on x — see verify tests.
struct IoPermutations {
  std::vector<std::uint32_t> pi_in;   // A input position -> B input position
  std::vector<std::uint32_t> pi_out;  // A output position -> B output position
};
IoPermutations derive_io_permutations(const Topology& a, const Topology& b,
                                      const BalancerMapping& mapping);

}  // namespace cnet::topo
