#include "cnet/topology/isomorphism.hpp"

#include <algorithm>

#include "cnet/util/ensure.hpp"

namespace cnet::topo {

namespace {

// For each balancer, the "consumer signature" of one output port: whether it
// feeds a balancer (and which one) or a network output.
struct PortConsumer {
  bool to_balancer = false;
  std::uint32_t target = 0;  // balancer index when to_balancer
};

PortConsumer port_consumer(const Topology& net, const Balancer& bal,
                           std::size_t port) {
  const WireEnd& end = net.consumer(bal.outputs[port]);
  if (end.kind == WireEnd::Kind::kBalancer) {
    return {true, end.balancer.value};
  }
  return {false, 0};
}

// Number of a balancer's input ports fed directly by network inputs.
std::size_t network_fed_inputs(const Topology& net, const Balancer& bal) {
  std::size_t n = 0;
  for (const WireId in : bal.inputs) {
    if (net.producer(in).kind == WireEnd::Kind::kNetworkInput) ++n;
  }
  return n;
}

}  // namespace

bool verify_isomorphism(const Topology& a, const Topology& b,
                        const BalancerMapping& mapping) {
  if (a.width_in() != b.width_in() || a.width_out() != b.width_out()) {
    return false;
  }
  if (a.num_balancers() != b.num_balancers()) return false;
  if (mapping.size() != a.num_balancers()) return false;

  // (i) bijection preserving (p,q) shape.
  std::vector<bool> used(b.num_balancers(), false);
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    const std::uint32_t j = mapping[i];
    if (j >= b.num_balancers() || used[j]) return false;
    used[j] = true;
    const auto& ba = a.balancer(BalancerId{static_cast<std::uint32_t>(i)});
    const auto& bb = b.balancer(BalancerId{j});
    if (ba.fan_in() != bb.fan_in() || ba.fan_out() != bb.fan_out()) {
      return false;
    }
    // Network-fed input counts must agree, otherwise the implied input-wire
    // correspondence pi_in cannot exist.
    if (network_fed_inputs(a, ba) != network_fed_inputs(b, bb)) return false;
  }

  // (ii) per-output-port consumers correspond.
  for (std::size_t i = 0; i < a.num_balancers(); ++i) {
    const auto& ba = a.balancer(BalancerId{static_cast<std::uint32_t>(i)});
    const auto& bb = b.balancer(BalancerId{mapping[i]});
    for (std::size_t port = 0; port < ba.fan_out(); ++port) {
      const PortConsumer ca = port_consumer(a, ba, port);
      const PortConsumer cb = port_consumer(b, bb, port);
      if (ca.to_balancer != cb.to_balancer) return false;
      if (ca.to_balancer && mapping[ca.target] != cb.target) return false;
    }
  }
  return true;
}

std::optional<BalancerMapping> find_isomorphism(const Topology& a,
                                                const Topology& b) {
  if (a.width_in() != b.width_in() || a.width_out() != b.width_out()) {
    return std::nullopt;
  }
  const std::size_t n = a.num_balancers();
  if (n != b.num_balancers()) return std::nullopt;
  if (a.depth() != b.depth()) return std::nullopt;

  // Candidates grouped by (depth, fan_in, fan_out, network-fed inputs):
  // all are isomorphism invariants, so they prune hard.
  auto signature = [](const Topology& net, std::uint32_t idx) {
    const BalancerId id{idx};
    const auto& bal = net.balancer(id);
    return std::tuple(net.balancer_depth(id), bal.fan_in(), bal.fan_out(),
                      network_fed_inputs(net, bal));
  };

  std::vector<std::vector<std::uint32_t>> candidates(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto sig_a = signature(a, i);
    for (std::uint32_t j = 0; j < n; ++j) {
      if (signature(b, j) == sig_a) candidates[i].push_back(j);
    }
    if (candidates[i].empty()) return std::nullopt;
  }

  BalancerMapping mapping(n, 0);
  std::vector<bool> used(n, false);

  // Assign in topological (storage) order so that every producer of balancer
  // i is already mapped when i is considered.
  auto consistent = [&](std::uint32_t i, std::uint32_t j) {
    const auto& ba = a.balancer(BalancerId{i});
    const auto& bb = b.balancer(BalancerId{j});
    // Every balancer-produced input of i must come from the image of its
    // producer, on the same output port. Count matches per (producer, port).
    for (const WireId in : ba.inputs) {
      const WireEnd& prod = a.producer(in);
      if (prod.kind != WireEnd::Kind::kBalancer) continue;
      const std::uint32_t mapped_prod = mapping[prod.balancer.value];
      // The mapped producer's same-numbered port must feed j.
      const auto& pb = b.balancer(BalancerId{mapped_prod});
      const WireEnd& cons = b.consumer(pb.outputs[prod.port]);
      if (cons.kind != WireEnd::Kind::kBalancer ||
          cons.balancer.value != j) {
        return false;
      }
    }
    // Output ports that are network outputs must match in kind (the
    // balancer-to-balancer direction is enforced when consumers get
    // assigned, via the producer check above).
    for (std::size_t port = 0; port < ba.fan_out(); ++port) {
      if (port_consumer(a, ba, port).to_balancer !=
          port_consumer(b, bb, port).to_balancer) {
        return false;
      }
    }
    return true;
  };

  // Iterative backtracking over candidate lists.
  std::vector<std::size_t> choice(n, 0);
  std::size_t i = 0;
  while (true) {
    if (i == n) {
      CNET_ENSURE(verify_isomorphism(a, b, mapping),
                  "search produced an invalid isomorphism");
      return mapping;
    }
    bool advanced = false;
    for (std::size_t& c = choice[i]; c < candidates[i].size(); ++c) {
      const std::uint32_t j = candidates[i][c];
      if (used[j] || !consistent(static_cast<std::uint32_t>(i), j)) continue;
      mapping[i] = j;
      used[j] = true;
      ++c;  // resume after this candidate on backtrack
      ++i;
      advanced = true;
      break;
    }
    if (advanced) continue;
    // Exhausted candidates at level i: backtrack.
    choice[i] = 0;
    if (i == 0) return std::nullopt;
    --i;
    used[mapping[i]] = false;
  }
}

IoPermutations derive_io_permutations(const Topology& a, const Topology& b,
                                      const BalancerMapping& mapping) {
  CNET_REQUIRE(verify_isomorphism(a, b, mapping),
               "mapping is not an isomorphism");
  IoPermutations io;
  io.pi_in.assign(a.width_in(), 0);
  io.pi_out.assign(a.width_out(), 0);

  // Inputs: match the network-fed input ports of each balancer pair in
  // order. Wires that run straight from a network input to a network
  // output are handled below with the outputs.
  for (std::uint32_t i = 0; i < a.num_balancers(); ++i) {
    const auto& ba = a.balancer(BalancerId{i});
    const auto& bb = b.balancer(BalancerId{mapping[i]});
    std::vector<std::uint32_t> fed_a, fed_b;
    for (const WireId in : ba.inputs) {
      const WireEnd& p = a.producer(in);
      if (p.kind == WireEnd::Kind::kNetworkInput) fed_a.push_back(p.port);
    }
    for (const WireId in : bb.inputs) {
      const WireEnd& p = b.producer(in);
      if (p.kind == WireEnd::Kind::kNetworkInput) fed_b.push_back(p.port);
    }
    CNET_ENSURE(fed_a.size() == fed_b.size(), "network-fed port mismatch");
    for (std::size_t k = 0; k < fed_a.size(); ++k) {
      io.pi_in[fed_a[k]] = fed_b[k];
    }
  }

  // Outputs: output port k of balancer i corresponds to output port k of
  // its image (condition (ii) pins the numbering).
  for (std::uint32_t i = 0; i < a.num_balancers(); ++i) {
    const auto& ba = a.balancer(BalancerId{i});
    const auto& bb = b.balancer(BalancerId{mapping[i]});
    for (std::size_t port = 0; port < ba.fan_out(); ++port) {
      const WireEnd& ca = a.consumer(ba.outputs[port]);
      if (ca.kind != WireEnd::Kind::kNetworkOutput) continue;
      const WireEnd& cb = b.consumer(bb.outputs[port]);
      CNET_ENSURE(cb.kind == WireEnd::Kind::kNetworkOutput,
                  "output kind mismatch despite verified isomorphism");
      io.pi_out[ca.port] = cb.port;
    }
  }

  // Pass-through wires (network input straight to network output): pair
  // them up in order; their positions are interchangeable.
  {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pass_a, pass_b;
    auto collect = [](const Topology& net, auto& out) {
      for (std::uint32_t i = 0; i < net.width_in(); ++i) {
        const WireId w = net.input_wires()[i];
        const WireEnd& c = net.consumer(w);
        if (c.kind == WireEnd::Kind::kNetworkOutput) {
          out.emplace_back(i, c.port);
        }
      }
    };
    collect(a, pass_a);
    collect(b, pass_b);
    CNET_ENSURE(pass_a.size() == pass_b.size(), "pass-through mismatch");
    for (std::size_t k = 0; k < pass_a.size(); ++k) {
      io.pi_in[pass_a[k].first] = pass_b[k].first;
      io.pi_out[pass_a[k].second] = pass_b[k].second;
    }
  }
  return io;
}

}  // namespace cnet::topo
