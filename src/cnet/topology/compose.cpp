#include "cnet/topology/compose.hpp"

#include <vector>

#include "cnet/util/ensure.hpp"

namespace cnet::topo {

namespace {

// Replays `net`'s balancers into `builder`, with `inputs` standing in for
// the network's input wires. Returns the wires standing in for the
// network's outputs. Balancer storage order is topological, so a single
// pass suffices.
std::vector<WireId> replay(Builder& builder, const Topology& net,
                           std::span<const WireId> inputs) {
  CNET_ENSURE(inputs.size() == net.width_in(), "replay width mismatch");
  std::vector<WireId> map(net.num_wires(), kInvalidWire);
  for (std::size_t i = 0; i < net.width_in(); ++i) {
    map[net.input_wires()[i].value] = inputs[i];
  }
  for (std::uint32_t b = 0; b < net.num_balancers(); ++b) {
    const auto& bal = net.balancer(BalancerId{b});
    std::vector<WireId> ins;
    ins.reserve(bal.fan_in());
    for (const WireId in : bal.inputs) {
      CNET_ENSURE(is_valid(map[in.value]), "replay out of order");
      ins.push_back(map[in.value]);
    }
    const auto outs = builder.add_balancer(ins, bal.fan_out());
    for (std::size_t port = 0; port < outs.size(); ++port) {
      map[bal.outputs[port].value] = outs[port];
    }
  }
  std::vector<WireId> outputs;
  outputs.reserve(net.width_out());
  for (const WireId out : net.output_wires()) {
    CNET_ENSURE(is_valid(map[out.value]), "unmapped output wire");
    outputs.push_back(map[out.value]);
  }
  return outputs;
}

}  // namespace

Topology cascade(const Topology& first, const Topology& second) {
  CNET_REQUIRE(first.width_out() == second.width_in(),
               "cascade width mismatch");
  Builder b;
  const auto in = b.add_network_inputs(first.width_in());
  const auto mid = replay(b, first, in);
  const auto out = replay(b, second, mid);
  b.set_outputs(out);
  return std::move(b).build();
}

Topology cascade_n(const Topology& net, std::size_t times) {
  CNET_REQUIRE(times >= 1, "cascade_n needs at least one copy");
  CNET_REQUIRE(net.width_in() == net.width_out(),
               "cascade_n needs equal input/output width");
  Builder b;
  std::vector<WireId> wires = b.add_network_inputs(net.width_in());
  for (std::size_t i = 0; i < times; ++i) {
    wires = replay(b, net, wires);
  }
  b.set_outputs(wires);
  return std::move(b).build();
}

Topology stack(const Topology& top, const Topology& bottom) {
  Builder b;
  const auto in_top = b.add_network_inputs(top.width_in());
  const auto in_bottom = b.add_network_inputs(bottom.width_in());
  auto out = replay(b, top, in_top);
  const auto out_bottom = replay(b, bottom, in_bottom);
  out.insert(out.end(), out_bottom.begin(), out_bottom.end());
  b.set_outputs(out);
  return std::move(b).build();
}

}  // namespace cnet::topo
