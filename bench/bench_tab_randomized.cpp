// §7 (future-work experiment): randomized balancer initial states.
//
// The paper suggests that randomizing the initial states of the first
// layers might shrink the output difference δ of the recursive halves and
// hence the merger depth. We measure two quantities over random inputs and
// random initial states:
//
//   1. the ladder L(w)'s half-sum gap Σ(top) − Σ(bottom): deterministically
//      it lies in [0, w/2]; with random initial states it is centred at 0
//      with spread ~sqrt(w) — smaller in magnitude than w/2, but two-sided
//      (so a merger exploiting it would need a two-sided difference
//      guarantee, which is why this is future work, not a free win);
//   2. the butterfly D(w)'s output smoothness: randomization preserves the
//      lg w bound of Lemma 5.2 in distribution (cf. Herlihy–Tirthapura's
//      randomized smoothing networks).
#include <cmath>
#include <iostream>

#include "cnet/core/butterfly.hpp"
#include "cnet/core/ladder.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/stats.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

std::vector<std::uint32_t> random_states(const topo::Topology& net,
                                         util::Xoshiro256& rng) {
  std::vector<std::uint32_t> states;
  states.reserve(net.num_balancers());
  for (std::uint32_t b = 0; b < net.num_balancers(); ++b) {
    const auto fanout =
        net.balancer(topo::BalancerId{b}).fan_out();
    states.push_back(static_cast<std::uint32_t>(rng.below(fanout)));
  }
  return states;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  util::Xoshiro256 rng(0x57A7E5);
  constexpr int kTrials = 2000;

  bench::section("§7 experiment: ladder half-sum gap, zero vs random init states");
  {
    util::Table table({"w", "det max |gap|", "rand mean gap", "rand sd",
                       "rand max |gap|", "paper bound w/2"});
    for (const std::size_t w : {4u, 8u, 16u, 32u, 64u}) {
      const auto ladder = core::make_ladder(w);
      util::Accumulator det, rnd;
      double det_absmax = 0, rnd_absmax = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        seq::Sequence x(w);
        for (auto& v : x) v = static_cast<seq::Value>(rng.below(20));
        const auto y0 = topo::evaluate(ladder, x);
        const auto gap0 = static_cast<double>(
            seq::sum(seq::first_half(y0)) - seq::sum(seq::second_half(y0)));
        det.add(gap0);
        det_absmax = std::max(det_absmax, std::abs(gap0));
        const auto states = random_states(ladder, rng);
        const auto y1 = topo::evaluate(ladder, x, states);
        const auto gap1 = static_cast<double>(
            seq::sum(seq::first_half(y1)) - seq::sum(seq::second_half(y1)));
        rnd.add(gap1);
        rnd_absmax = std::max(rnd_absmax, std::abs(gap1));
      }
      table.add_row({util::fmt_int(static_cast<std::int64_t>(w)),
                     util::fmt_double(det_absmax, 0),
                     util::fmt_double(rnd.mean(), 2),
                     util::fmt_double(rnd.stddev(), 2),
                     util::fmt_double(rnd_absmax, 0),
                     util::fmt_int(static_cast<std::int64_t>(w / 2))});
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: randomized gaps centre at 0 with sd ~ sqrt(w)/2,\n"
        "typically far below the deterministic one-sided bound w/2 — the\n"
        "effect the paper's §7 speculates could shrink merger depth.", opts);
  }

  std::puts("");
  bench::section("§7 experiment: butterfly smoothness, zero vs random init states");
  {
    util::Table table({"w", "lg w", "det worst", "rand mean", "rand worst"});
    for (const std::size_t w : {8u, 16u, 32u, 64u}) {
      const auto net = core::make_forward_butterfly(w);
      seq::Value det_worst = 0;
      seq::Value rnd_worst = 0;
      util::Accumulator rnd_acc;
      for (int trial = 0; trial < kTrials; ++trial) {
        seq::Sequence x(w);
        for (auto& v : x) v = static_cast<seq::Value>(rng.below(30));
        det_worst =
            std::max(det_worst, seq::smoothness(topo::evaluate(net, x)));
        const auto states = random_states(net, rng);
        const auto s = seq::smoothness(topo::evaluate(net, x, states));
        rnd_acc.add(static_cast<double>(s));
        rnd_worst = std::max(rnd_worst, s);
      }
      table.add_row({util::fmt_int(static_cast<std::int64_t>(w)),
                     util::fmt_int(static_cast<std::int64_t>(util::ilog2(w))),
                     util::fmt_int(det_worst),
                     util::fmt_double(rnd_acc.mean(), 2),
                     util::fmt_int(rnd_worst)});
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: random initial states keep the typical output\n"
        "smoothness small (O(lg w)-ish in the worst observed case), in line\n"
        "with the randomized-smoothing literature cited in §7.", opts);
  }
  return cnet::bench::finish(opts);
}
