// Service-layer throughput: the svc building blocks under live threads via
// the LoadGen harness, each swept across every counter backend kind.
//
// Table A — ShardedIdAllocator: sustained allocate() IDs/sec as the shard
//           count grows (the dynomite-style composition: N counters,
//           stride-N residue classes, per-thread affinity + batched refill).
// Table B — NetTokenBucket: consume(1)/sec under a balanced refill/consume
//           load at several thread counts. The headline comparison: a
//           counting-network pool spreads admission across wires and exit
//           cells, a central pool serializes every decision on one word.
// Table C — AdmissionController: end-to-end admit() (bucket charge + unique
//           request ID) at a fixed thread count.
//
// --smoke shrinks measurement windows and sweeps so CI can exercise every
// code path in seconds; numbers from a smoke run are meaningless.
#include <string>
#include <vector>

#include "cnet/svc/admission.hpp"
#include "cnet/util/table.hpp"
#include "support/loadgen.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

svc::ShardedIdAllocator make_allocator(svc::BackendKind kind,
                                       std::size_t shards,
                                       std::size_t max_threads) {
  std::vector<std::unique_ptr<rt::Counter>> counters;
  for (std::size_t s = 0; s < shards; ++s) {
    counters.push_back(svc::make_counter(kind));
  }
  return svc::ShardedIdAllocator(
      std::move(counters), {.max_threads = max_threads, .refill_batch = 16});
}

bench::LoadGenConfig loadgen_config(std::size_t threads, bool smoke) {
  bench::LoadGenConfig cfg;
  cfg.threads = threads;
  cfg.warmup_seconds = smoke ? 0.01 : 0.15;
  cfg.measure_seconds = smoke ? 0.04 : 0.6;
  // A loaded CI runner can swallow the whole smoke window before a thread
  // runs once; the floor keeps every cell non-vacuous.
  cfg.min_ops_per_thread = 64;
  cfg.latency_sample_every = 0;  // pure throughput
  return cfg;
}

double allocator_rate(svc::BackendKind kind, std::size_t shards,
                      std::size_t threads, bool smoke) {
  auto alloc = make_allocator(kind, shards, threads);
  const auto result =
      bench::run_loadgen(loadgen_config(threads, smoke), [&](std::size_t t) {
        (void)alloc.allocate(t);
        return std::uint64_t{1};
      });
  return result.ops_per_sec;
}

// Balanced load: each thread tops the pool up by its own consumption in
// 256-token batches, so the pool hovers near its initial level and the
// measured rate is the cost of the consume+refill mechanism itself.
double bucket_rate(svc::BackendKind kind, std::size_t threads, bool smoke) {
  svc::NetTokenBucket bucket(svc::make_counter(kind),
                             {.initial_tokens = 256 * threads});
  std::vector<cnet::util::Padded<std::uint64_t>> since_refill(threads);
  const auto result =
      bench::run_loadgen(loadgen_config(threads, smoke), [&](std::size_t t) {
        if (++since_refill[t].value == 256) {
          since_refill[t].value = 0;
          bucket.refill(t, 256);
        }
        return bucket.consume(t, 1, svc::kPartialOk);
      });
  return result.ops_per_sec;
}

double admission_rate(svc::BackendKind kind, std::size_t threads,
                      bool smoke) {
  svc::AdmissionConfig cfg;
  cfg.backend = kind;
  cfg.shards = 4;
  cfg.ids.max_threads = threads;
  // Balanced like bucket_rate(): each thread replaces what it admits, so
  // the gate stays open by construction however fast the backend is.
  cfg.bucket.initial_tokens = 256 * threads;
  svc::AdmissionController ctl(cfg);
  std::vector<cnet::util::Padded<std::uint64_t>> since_refill(threads);
  const auto result =
      bench::run_loadgen(loadgen_config(threads, smoke), [&](std::size_t t) {
        if (++since_refill[t].value == 256) {
          since_refill[t].value = 0;
          ctl.refill(t, 256);
        }
        return std::uint64_t{ctl.admit(t, 1).admitted ? 1u : 0u};
      });
  return result.ops_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);

  const std::vector<std::size_t> shard_sweep =
      opts.smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 4, 8};
  const std::size_t alloc_threads = opts.smoke ? 2 : 8;

  bench::section("Table A: ShardedIdAllocator IDs/sec, " +
                 std::to_string(alloc_threads) + " threads");
  {
    std::vector<std::string> header{"backend"};
    for (const auto s : shard_sweep) {
      header.push_back(std::to_string(s) + " shard" + (s == 1 ? "" : "s"));
    }
    util::Table table(header);
    for (const auto kind : svc::kAllBackendKinds) {
      std::vector<std::string> row{svc::backend_kind_name(kind)};
      for (const auto shards : shard_sweep) {
        row.push_back(
            bench::fmt_rate(allocator_rate(kind, shards, alloc_threads,
                                           opts.smoke)));
      }
      table.add_row(row);
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: sharding multiplies every backend; network\n"
        "backends additionally spread each shard's traffic across wires.",
        opts);
  }

  std::puts("");
  const std::vector<std::size_t> thread_sweep =
      opts.smoke ? std::vector<std::size_t>{2}
                 : std::vector<std::size_t>{1, 4, 16};
  bench::section("Table B: NetTokenBucket consume(1)/sec, balanced refill");
  double central16 = 0.0, network16 = 0.0, batched16 = 0.0;
  {
    std::vector<std::string> header{"backend"};
    for (const auto t : thread_sweep) {
      header.push_back(std::to_string(t) + " thr");
    }
    util::Table table(header);
    for (const auto kind : svc::kAllBackendKinds) {
      std::vector<std::string> row{svc::backend_kind_name(kind)};
      for (const auto threads : thread_sweep) {
        const double rate = bucket_rate(kind, threads, opts.smoke);
        if (threads == 16) {
          if (kind == svc::BackendKind::kCentralAtomic) central16 = rate;
          if (kind == svc::BackendKind::kNetwork) network16 = rate;
          if (kind == svc::BackendKind::kBatchedNetwork) batched16 = rate;
        }
        row.push_back(bench::fmt_rate(rate));
      }
      table.add_row(row);
    }
    bench::emit(table, opts);
    if (central16 > 0.0) {
      bench::note("\nnetwork/central-atomic at 16 threads: " +
                      util::fmt_ratio(network16, central16, 2) +
                      "   batched/central-atomic: " +
                      util::fmt_ratio(batched16, central16, 2) +
                      "\n(>= 2x expected on multi-core hardware, where the\n"
                      "central pool's cache line is the bottleneck)",
                  opts);
    }
  }

  std::puts("");
  bench::section("Table C: AdmissionController admit()/sec, 4 shards");
  {
    const std::size_t threads = opts.smoke ? 2 : 8;
    util::Table table({"backend", std::to_string(threads) + " thr"});
    for (const auto kind : svc::kAllBackendKinds) {
      table.add_row({svc::backend_kind_name(kind),
                     bench::fmt_rate(admission_rate(kind, threads,
                                                    opts.smoke))});
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: admit = bucket charge + cached ID allocation,\n"
        "so rates track Table B with a small constant overhead.", opts);
  }
  return bench::finish(opts);
}
