// Multi-tenant quota hierarchy under live threads, plus its virtual-time
// model — the two-level admission workload (per-tenant child buckets
// borrowing from one shared parent pool) that ISSUE 5 builds.
//
// Table D — svc::QuotaHierarchy: aggregate acquire/sec and per-tenant
//           fairness for {4, 16, 64} tenants × {uniform, hot} skews ×
//           every parent backend spec. Each thread holds a small ring of
//           grants (acquire → hold → release-oldest), so demand exceeds
//           the child buckets and shortfalls exercise the weighted
//           max-borrow path on the shared parent.
// Table D′ — sim::simulate_quota: the same workload shape on simulated
//           cores, where the hot-tenant parent-contention ordering
//           (network ≥ central at 64 cores, inverted at 4) is observable
//           and deterministic on any host.
//
// Named checks (--json + exit code, the artifact CI gates on):
//   D:conservation[spec,T,skew] — quiescent drain returns every pool to
//       exactly its initial level with zero outstanding borrow, and the
//       run completed ops (a zero-op run must not pass vacuously);
//   D:isolation[spec,T,skew]    — no tenant's outstanding borrow ever
//       exceeded its weighted limit, and no cold-tenant acquire was
//       rejected (hot tenants saturating their cap cannot starve the
//       cold ones; the reject clause is waived for the adaptive parent,
//       whose swap window documents transient under-admission);
//   quota_sim_conservation / quota_sim_isolation — the model mirror, for
//       every spec × core count;
//   quota_sim_parent_crossover  — network parent >= central parent
//       goodput at 64 simulated cores;
//   quota_sim_central_wins_lowcores — and the inversion at 4 cores;
//   quota_sim_determinism       — a re-run with the same seed reproduces
//       Table D′ exactly.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cnet/sim/multicore.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/quota.hpp"
#include "cnet/util/cacheline.hpp"
#include "cnet/util/table.hpp"
#include "support/loadgen.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

constexpr std::size_t kHotExtraThreads = 4;  // extra threads on tenant 0
constexpr std::size_t kRingGrants = 2;       // grants each thread holds
constexpr std::uint64_t kChildInitial = 1;   // per-tenant child pool

struct QuotaRunResult {
  double ops_per_sec = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t admitted = 0;
  std::uint64_t cold_attempts = 0, cold_admitted = 0;
  std::uint64_t hot_attempts = 0, hot_admitted = 0;
  std::uint64_t peak_borrowed = 0;  // max sampled, across tenants
  std::uint64_t hot_limit = 0;
  bool cap_respected = false;  // borrowed(t) <= limit(t) at every sample
  bool cold_never_rejected = false;
  bool conserved = false;  // exact drain + zero outstanding borrow
};

// One Table D cell: T tenants, hot skew gives tenant 0 kHotExtraThreads
// extra threads and a proportional weight; every thread runs the
// acquire/hold/release ring against one shared hierarchy.
QuotaRunResult run_quota(const svc::BackendSpec& parent_spec,
                         std::size_t tenants, bool hot_skew, bool smoke) {
  const std::size_t threads = tenants + (hot_skew ? kHotExtraThreads : 0);

  svc::QuotaHierarchy::Config cfg;
  cfg.parent = parent_spec;
  // Budget scales with the tenant count; parent capacity exceeds it by
  // the acquire cost, so a won reservation always finds its tokens (the
  // isolation sizing rule from svc/quota.hpp).
  cfg.borrow_budget = 2 * tenants;
  cfg.parent_initial_tokens = cfg.borrow_budget + 1;
  std::vector<svc::QuotaHierarchy::TenantConfig> tenant_cfgs(tenants);
  for (std::size_t i = 0; i < tenants; ++i) {
    tenant_cfgs[i].initial_tokens = kChildInitial;
    tenant_cfgs[i].weight = hot_skew && i == 0 ? kHotExtraThreads : 1;
  }
  svc::QuotaHierarchy hierarchy(cfg, std::move(tenant_cfgs));

  // Thread → tenant pinning: the first 1 + kHotExtraThreads threads drive
  // tenant 0 under hot skew; otherwise one thread per tenant.
  const auto tenant_of = [&](std::size_t t) {
    if (!hot_skew) return t;
    return t <= kHotExtraThreads ? std::size_t{0} : t - kHotExtraThreads;
  };

  struct alignas(util::kCacheLine) Tally {
    std::uint64_t attempts = 0;
    std::uint64_t admitted = 0;
    std::uint64_t peak_borrowed = 0;
    bool cap_violated = false;
    std::size_t slot = 0;
    svc::QuotaHierarchy::Grant ring[kRingGrants];
  };
  std::vector<Tally> tallies(threads);

  bench::LoadGenConfig lg;
  lg.threads = threads;
  lg.warmup_seconds = smoke ? 0.01 : 0.1;
  lg.measure_seconds = smoke ? 0.05 : 0.3;
  lg.min_ops_per_thread = 64;
  lg.latency_sample_every = 0;
  const auto loadgen = bench::run_loadgen(lg, [&](std::size_t t) {
    Tally& tally = tallies[t];
    const std::size_t tenant = tenant_of(t);
    svc::QuotaHierarchy::Grant& held = tally.ring[tally.slot];
    tally.slot = (tally.slot + 1) % kRingGrants;
    if (held.admitted) {
      hierarchy.release(t, held);
      held = {};
    }
    const auto grant = hierarchy.acquire(t, tenant, 1);
    ++tally.attempts;
    if (grant.admitted) {
      ++tally.admitted;
      held = grant;
    }
    // Isolation probe, sampled at the point of every mutation: the
    // reservation CAS makes exceeding the cap structurally impossible, so
    // any observation above it is a real regression.
    const std::uint64_t borrowed = hierarchy.borrowed(tenant);
    tally.peak_borrowed = std::max(tally.peak_borrowed, borrowed);
    if (borrowed > hierarchy.borrow_limit(tenant)) tally.cap_violated = true;
    return std::uint64_t{1};
  });

  QuotaRunResult result;
  result.ops_per_sec = loadgen.ops_per_sec;
  result.cap_respected = true;
  for (std::size_t t = 0; t < threads; ++t) {
    const Tally& tally = tallies[t];
    result.attempts += tally.attempts;
    result.admitted += tally.admitted;
    const bool is_hot = hot_skew && tenant_of(t) == 0;
    (is_hot ? result.hot_attempts : result.cold_attempts) += tally.attempts;
    (is_hot ? result.hot_admitted : result.cold_admitted) += tally.admitted;
    result.peak_borrowed = std::max(result.peak_borrowed,
                                    tally.peak_borrowed);
    result.cap_respected = result.cap_respected && !tally.cap_violated;
    // Quiescent teardown: give every held grant back before draining.
    for (const auto& grant : tally.ring) {
      if (grant.admitted) hierarchy.release(t, grant);
    }
  }
  result.hot_limit = hierarchy.borrow_limit(0);
  result.cold_never_rejected =
      result.cold_admitted == result.cold_attempts;

  // Exact conservation: with all grants released, every pool must drain
  // to precisely its initial level and no borrow may be outstanding.
  bool conserved = true;
  for (std::size_t i = 0; i < tenants; ++i) {
    std::uint64_t drained = 0;
    while (hierarchy.child(i).consume(0, 1, svc::kPartialOk) == 1) {
      ++drained;
    }
    conserved = conserved && drained == kChildInitial &&
                hierarchy.borrowed(i) == 0;
  }
  std::uint64_t parent_drained = 0;
  while (hierarchy.parent().consume(0, 1, svc::kPartialOk) == 1) {
    ++parent_drained;
  }
  result.conserved =
      conserved && parent_drained == cfg.parent_initial_tokens;
  return result;
}

std::string pct_cell(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return util::fmt_double(100.0 * static_cast<double>(part) /
                              static_cast<double>(whole),
                          1) +
         "%";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);

  const std::vector<std::size_t> tenant_sweep =
      opts.smoke ? std::vector<std::size_t>{4, 16}
                 : std::vector<std::size_t>{4, 16, 64};
  const auto specs = sim::multicore_sweep_specs();

  bench::section(
      "Table D: QuotaHierarchy acquire/sec + fairness, live threads");
  {
    util::Table table({"backend", "tenants", "skew", "ops/s", "admit%",
                       "cold%", "hot%", "peak/cap", "conserved"});
    for (const auto& spec : specs) {
      for (const auto tenants : tenant_sweep) {
        for (const bool hot_skew : {false, true}) {
          const auto r = run_quota(spec, tenants, hot_skew, opts.smoke);
          const std::string skew = hot_skew ? "hot" : "uniform";
          table.add_row(
              {svc::backend_spec_name(spec), util::fmt_int(tenants), skew,
               bench::fmt_rate(r.ops_per_sec),
               pct_cell(r.admitted, r.attempts),
               pct_cell(r.cold_admitted, r.cold_attempts),
               hot_skew ? pct_cell(r.hot_admitted, r.hot_attempts) : "-",
               util::fmt_int(static_cast<std::int64_t>(r.peak_borrowed)) +
                   "/" +
                   util::fmt_int(static_cast<std::int64_t>(r.hot_limit)),
               r.conserved ? "yes" : "NO"});
          const std::string tag = "[" + svc::backend_spec_name(spec) + "," +
                                  std::to_string(tenants) + "," + skew + "]";
          bench::check("D:conservation" + tag,
                       r.conserved && r.attempts > 0, opts);
          // The adaptive parent's RCU swap documents transient
          // under-admission, so only the borrow cap is gated for it; every
          // other spec must also never reject a cold (in-cap) tenant.
          const bool reject_clause =
              spec.kind == svc::BackendKind::kAdaptive ||
              r.cold_never_rejected;
          bench::check("D:isolation" + tag,
                       r.cap_respected && reject_clause, opts);
        }
      }
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: uniform rows admit ~100% (demand sized inside\n"
        "child+cap); hot rows pin tenant 0 at its weighted borrow cap —\n"
        "hot admit% drops while cold tenants stay at 100%, the isolation\n"
        "the weighted max-borrow policy exists to provide.",
        opts);
  }

  std::puts("");
  bench::section("Table D': quota hierarchy on simulated cores");
  {
    const std::vector<std::size_t> core_sweep =
        opts.smoke ? std::vector<std::size_t>{4, 64}
                   : std::vector<std::size_t>{4, 16, 64};
    util::Table table({"backend", "cores", "goodput/vt", "ops/vt",
                       "admitted", "hot-rej", "cold-rej", "conserved",
                       "isolated"});
    bool all_conserved = true, all_isolated = true;
    double central4 = 0.0, network4 = 0.0, central64 = 0.0, network64 = 0.0;
    for (const auto& spec : specs) {
      for (const auto cores : core_sweep) {
        const auto r = sim::simulate_quota(
            spec, sim::quota_sim_reference_config(cores));
        all_conserved = all_conserved && r.conserved;
        all_isolated = all_isolated && r.isolation;
        if (!spec.elimination && (cores == 4 || cores == 64)) {
          if (spec.kind == svc::BackendKind::kCentralAtomic) {
            (cores == 4 ? central4 : central64) = r.goodput_per_vtime;
          } else if (spec.kind == svc::BackendKind::kNetwork) {
            (cores == 4 ? network4 : network64) = r.goodput_per_vtime;
          }
        }
        table.add_row({svc::backend_spec_name(spec),
                       util::fmt_int(cores),
                       util::fmt_double(r.goodput_per_vtime, 3),
                       util::fmt_double(r.ops_per_vtime, 3),
                       util::fmt_int(static_cast<std::int64_t>(r.admitted)),
                       util::fmt_int(
                           static_cast<std::int64_t>(r.hot_rejected)),
                       util::fmt_int(
                           static_cast<std::int64_t>(r.cold_rejected)),
                       r.conserved ? "yes" : "NO",
                       r.isolation ? "yes" : "NO"});
      }
    }
    bench::emit(table, opts);
    bench::note(
        "\nthe paper's inversion on the shared parent: the central word\n"
        "wins at 4 cores, the counting network at 64, where every hot\n"
        "acquire funnels through the parent pool — deterministic from the\n"
        "fixed seed.",
        opts);
    bench::check("quota_sim_conservation", all_conserved, opts);
    bench::check("quota_sim_isolation", all_isolated, opts);
    bench::check("quota_sim_parent_crossover", network64 >= central64, opts);
    bench::check("quota_sim_central_wins_lowcores", central4 > network4,
                 opts);

    // Determinism: re-run the headline cell and require bit-identity.
    const svc::BackendSpec headline{svc::BackendKind::kNetwork, false};
    const auto first =
        sim::simulate_quota(headline, sim::quota_sim_reference_config(64));
    const auto again =
        sim::simulate_quota(headline, sim::quota_sim_reference_config(64));
    const bool identical =
        first.makespan == again.makespan &&
        first.goodput_per_vtime == again.goodput_per_vtime &&
        first.admitted == again.admitted &&
        first.rejected == again.rejected &&
        first.parent_stalls == again.parent_stalls &&
        first.admitted_per_tenant == again.admitted_per_tenant &&
        first.peak_borrowed_per_tenant == again.peak_borrowed_per_tenant;
    bench::check("quota_sim_determinism", identical, opts);
  }

  return bench::finish(opts);
}
