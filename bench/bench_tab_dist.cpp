// The distributed counting tier, live and in virtual time — the
// dist::PeerCluster lease ledger ISSUE 8 layers over the quota hierarchy,
// and its sim::simulate_cluster mirror. Both sides run the identical
// dist/policy.hpp decision rules; these tables are what make the tier's
// conservation/partition/locality claims checkable before any socket
// exists.
//
// Table G  — live single-process multi-node harness: a deterministic tick
//            script drives admits, lease renewals (donation walk + global
//            acquire), a mid-run partition with expiries escrowing into
//            debt, a reweigh pushed by subscribe, heal, and a final
//            expire-everything drain that must balance the ledger to the
//            token.
// Table G′ — the sim sweep over node counts × link latency profiles ×
//            partition scripts: per-link FIFO latency servers join nodes
//            modeled as simulated multicore machines, and the p99
//            admission gap between rack-local lease renewal and naive
//            central counting is measured, not asserted.
//
// Named checks (--json + exit code, the artifact CI gates on):
//   G:conservation   — total spent + drained locals + drained hierarchy
//       == constructed tokens after heal + expire_all;
//   G:expiry_refund  — expiries fired and every recovered token was
//       refunded exactly once (recovered == refunded, debt included);
//   G:partition_heal — the partition escrowed debt (created > 0) and heal
//       reconciled it exactly (created == reconciled, escrow drained);
//   G:zero_lease     — a partitioned node spends only what it holds: its
//       initial pool drains to exact zero, then admits and renewals both
//       return 0 until heal;
//   G:subscribe      — a reweigh commit is *pushed* to every connected
//       node (no polling), the partitioned node misses it and catches up
//       at heal;
//   cluster_sim_conservation   — every sweep cell conserves tokens
//       exactly, borrows closed, escrow drained, leases settled;
//   cluster_sim_expiry_refund  — short-TTL churn: recovered == refunded
//       with real recoveries, conserved;
//   cluster_sim_partition_heal — scripted partitions escrow real debt,
//       heal replays it exactly, zero global touches while partitioned;
//   cluster_sim_locality       — rack-local renewal beats central
//       counting on both p50 and p99 simulated admission latency;
//   cluster_sim_determinism    — the partition cell reproduces
//       bit-identically on a re-run, latency tail included.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cnet/dist/peer_cluster.hpp"
#include "cnet/dist/topology.hpp"
#include "cnet/sim/multicore.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

// The same 2-dc striping as sim::cluster_sim_reference_config, so Table G
// and Table G′ agree on what "rack-local" means.
dist::Topology make_topology(std::size_t n) {
  const std::size_t per_dc = (n + 1) / 2;
  std::vector<dist::NodeLocation> locs(n);
  for (std::size_t i = 0; i < n; ++i) {
    locs[i].dc = static_cast<std::uint32_t>(i / per_dc);
    locs[i].rack = static_cast<std::uint32_t>((i % per_dc) / 2);
  }
  return dist::Topology(std::move(locs));
}

dist::ClusterConfig live_config() {
  dist::ClusterConfig cfg;
  cfg.parent_initial = 2048;
  cfg.node_account_initial = 256;
  cfg.borrow_budget = 2048;
  cfg.local_initial = 64;
  cfg.lease_chunk = 96;
  cfg.lease_cap = 384;
  cfg.lease_ttl = 4;
  cfg.peer_reserve = 24;
  cfg.reconcile_chunk = 192;
  return cfg;
}

struct LiveResult {
  std::uint64_t spent = 0;
  std::uint64_t drained = 0;
  std::uint64_t initial = 0;
  bool conserved = false;
  bool expiry_exact = false;
  bool partition_exact = false;
  bool subscribe_ok = false;
  util::Table table{{"node", "dc/rack", "spent", "renews+donates",
                     "end balance", "end leased"}};
};

// Table G's deterministic tick script on a 6-node cluster: every connected
// node admits and renews each tick, node 1 goes dark (partitioned, silent)
// for ticks [6, 16), a reweigh commits at tick 8 while it's dark, and the
// run ends in heal + expire_all + a full drain of every pool.
LiveResult run_live(std::uint64_t ticks, std::uint64_t admits_per_tick) {
  constexpr std::size_t kNodes = 6;
  constexpr std::size_t kDark = 1;
  dist::PeerCluster cluster(make_topology(kNodes), live_config());
  LiveResult res;
  res.initial = cluster.total_initial_tokens();

  bool subscribe_ok = true;
  std::vector<std::uint64_t> renews(kNodes, 0);
  for (std::uint64_t t = 1; t <= ticks; ++t) {
    cluster.advance(0, t);
    if (t == 6) cluster.partition(kDark);
    if (t == 8) {
      // Reweigh while node 1 is dark: the subscribe push lands on every
      // connected node at the commit instant; the dark node misses it.
      std::vector<std::uint64_t> weights(kNodes, 1);
      weights[0] = 2;
      cluster.global().reweigh(0, weights);
      for (std::size_t i = 0; i < kNodes; ++i) {
        const std::uint64_t want = i == kDark ? 1 : 2;
        subscribe_ok =
            subscribe_ok && cluster.observed_reweigh_version(i) == want;
      }
    }
    if (t == 16) {
      cluster.heal(0, kDark);
      subscribe_ok =
          subscribe_ok && cluster.observed_reweigh_version(kDark) == 2;
    }
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (cluster.is_partitioned(i)) continue;  // a dark node is silent
      if (cluster.local_balance(i) < 32) {
        renews[i] += cluster.renew(0, i, 96) > 0 ? 1 : 0;
      }
      for (std::uint64_t a = 0; a < admits_per_tick; ++a) {
        cluster.admit(0, i, 3);
      }
    }
    cluster.evaluate_overload();
  }

  res.partition_exact = cluster.debt_created() > 0 &&
                        cluster.debt_created() == cluster.debt_reconciled() &&
                        cluster.debt_tokens(kDark) == 0;
  res.subscribe_ok = subscribe_ok;

  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto loc = cluster.topology().location(i);
    res.table.add_row(
        {util::fmt_int(static_cast<std::int64_t>(i)),
         util::fmt_int(loc.dc) + "/" + util::fmt_int(loc.rack),
         util::fmt_int(static_cast<std::int64_t>(cluster.spent(i))),
         util::fmt_int(static_cast<std::int64_t>(renews[i])),
         util::fmt_int(cluster.local_balance(i)),
         util::fmt_int(static_cast<std::int64_t>(cluster.leased_tokens(i)))});
  }

  // Final settlement: force-expire every lease, then drain every pool and
  // balance the ledger against the constructed total.
  cluster.expire_all(0);
  res.expiry_exact = cluster.expiries() > 0 &&
                     cluster.expiry_recovered() > 0 &&
                     cluster.expiry_recovered() == cluster.expiry_refunded();
  for (std::size_t i = 0; i < kNodes; ++i) {
    res.drained += cluster.drain_local(0, i);
  }
  res.drained += cluster.drain_global(0);
  res.spent = cluster.total_spent();
  res.conserved = res.spent + res.drained == res.initial;
  return res;
}

// Table G's zero-lease degradation cell: a node partitioned before it ever
// renews holds nothing but its initial local pool — it must drain that to
// exact zero and then admit (and renew) nothing until heal.
bool run_zero_lease() {
  constexpr std::size_t kNode = 3;
  dist::PeerCluster cluster(make_topology(6), live_config());
  cluster.advance(0, 1);
  cluster.partition(kNode);

  std::uint64_t spent = 0;
  while (cluster.admit(0, kNode, 1) != 0) ++spent;
  bool ok = spent == live_config().local_initial;      // exactly its pool
  ok = ok && cluster.leased_tokens(kNode) == 0;        // never held a lease
  ok = ok && cluster.renew(0, kNode, 96) == 0;         // control plane down
  ok = ok && cluster.admit(0, kNode, 1) == 0;          // and nothing to spend
  cluster.heal(0, kNode);
  ok = ok && cluster.renew(0, kNode, 96) > 0 &&        // back in business
       cluster.admit(0, kNode, 1) == 1;

  cluster.expire_all(0);
  std::uint64_t drained = 0;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    drained += cluster.drain_local(0, i);
  }
  drained += cluster.drain_global(0);
  return ok &&
         cluster.total_spent() + drained == cluster.total_initial_tokens();
}

bool sim_identical(const sim::ClusterSimResult& a,
                   const sim::ClusterSimResult& b) {
  return a.makespan == b.makespan && a.attempts == b.attempts &&
         a.admitted == b.admitted && a.rejected == b.rejected &&
         a.spent == b.spent && a.renewals == b.renewals &&
         a.renewal_tokens == b.renewal_tokens &&
         a.donations == b.donations && a.donated_tokens == b.donated_tokens &&
         a.expiries == b.expiries &&
         a.expiry_recovered == b.expiry_recovered &&
         a.expiry_refunded == b.expiry_refunded &&
         a.debt_created == b.debt_created &&
         a.debt_reconciled == b.debt_reconciled &&
         a.partition_global_touches == b.partition_global_touches &&
         a.final_parent_pool == b.final_parent_pool &&
         a.final_account_tokens == b.final_account_tokens &&
         a.final_local_tokens == b.final_local_tokens &&
         a.p50_admission == b.p50_admission &&
         a.p99_admission == b.p99_admission &&
         a.parent_stalls == b.parent_stalls;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  const svc::BackendSpec parent{svc::BackendKind::kBatchedNetwork, false};

  bench::section("Table G: live peer cluster, lease ledger end to end");
  {
    const std::uint64_t ticks = opts.smoke ? 24 : 96;
    const std::uint64_t admits = opts.smoke ? 8 : 16;
    const auto r = run_live(ticks, admits);
    bench::emit(r.table, opts);
    std::printf("  ledger: spent %llu + drained %llu == initial %llu\n",
                static_cast<unsigned long long>(r.spent),
                static_cast<unsigned long long>(r.drained),
                static_cast<unsigned long long>(r.initial));
    bench::note(
        "\nnode 1 goes dark for ticks [6,16): its leases expire into debt\n"
        "escrow, the tick-8 reweigh push misses it (every connected node\n"
        "sees version 2 at the commit instant), and heal replays the debt\n"
        "exactly and catches the version up. expire_all + full drain then\n"
        "balances the ledger to the token.",
        opts);
    bench::check("G:conservation", r.conserved, opts);
    bench::check("G:expiry_refund", r.expiry_exact, opts);
    bench::check("G:partition_heal", r.partition_exact, opts);
    bench::check("G:subscribe", r.subscribe_ok, opts);
    bench::check("G:zero_lease", run_zero_lease(), opts);
  }

  std::puts("");
  bench::section("Table G': simulated cluster, nodes x links x partitions");
  {
    const std::uint64_t ops = opts.smoke ? 96 : 224;
    struct LinkProfile {
      const char* name;
      double rack, dc, remote;
    };
    const LinkProfile profiles[] = {{"lan 1/4/16", 1.0, 4.0, 16.0},
                                    {"wan 2/8/40", 2.0, 8.0, 40.0}};
    util::Table table({"nodes", "links", "admitted", "rejected", "renews",
                       "donates", "p50", "p99", "conserved"});
    bool all_conserved = true;
    for (const std::size_t n : {4, 6, 8}) {
      for (const LinkProfile& link : profiles) {
        sim::ClusterSimConfig cfg = sim::cluster_sim_reference_config(n);
        cfg.ops_per_core = ops;
        cfg.link_same_rack = link.rack;
        cfg.link_same_dc = link.dc;
        cfg.link_remote = link.remote;
        const auto r = sim::simulate_cluster(parent, cfg);
        all_conserved = all_conserved && r.conserved && r.debt_settled;
        table.add_row(
            {util::fmt_int(static_cast<std::int64_t>(n)), link.name,
             util::fmt_int(static_cast<std::int64_t>(r.admitted)),
             util::fmt_int(static_cast<std::int64_t>(r.rejected)),
             util::fmt_int(static_cast<std::int64_t>(r.renewals)),
             util::fmt_int(static_cast<std::int64_t>(r.donations)),
             util::fmt_double(r.p50_admission, 3),
             util::fmt_double(r.p99_admission, 3),
             r.conserved ? "yes" : "NO"});
      }
    }
    bench::emit(table, opts);
    bench::check("cluster_sim_conservation", all_conserved, opts);

    // Short-TTL churn: leases expire between renewals everywhere, so the
    // refund path carries real tokens — and must carry each exactly once.
    sim::ClusterSimConfig churn = sim::cluster_sim_reference_config(6);
    churn.ops_per_core = ops;
    churn.lease_ttl = 12.0;
    const auto ce = sim::simulate_cluster(parent, churn);
    bench::check("cluster_sim_expiry_refund",
                 ce.expiries > 0 && ce.expiry_recovered > 0 &&
                     ce.expiry_recovered == ce.expiry_refunded &&
                     ce.conserved,
                 opts);

    // Two scripted partitions on top of the churn: expiries on the dark
    // nodes escrow into debt, heal replays it exactly, and no dark node
    // ever touches the coordinator or a peer.
    sim::ClusterSimConfig part = churn;
    part.partitions.push_back({1, 42.0, 300.0});
    part.partitions.push_back({4, 90.0, 340.0});
    const auto cp = sim::simulate_cluster(parent, part);
    bench::check("cluster_sim_partition_heal",
                 cp.debt_created > 0 && cp.debt_settled &&
                     cp.partition_global_touches == 0 && cp.conserved,
                 opts);

    // The locality claim, measured: identical workload and token supply,
    // leases + rack-local renewal vs every admission round-tripping the
    // uplink to one central pool.
    sim::ClusterSimConfig loc = sim::cluster_sim_reference_config(6);
    loc.ops_per_core = ops;
    // Locality is a latency claim, not a scarcity claim: give both modes
    // enough tokens for the whole demand so the tail measures renewal
    // round trips, not end-of-run global starvation.
    loc.parent_initial = 6 * loc.cores_per_node * ops;
    sim::ClusterSimConfig central = loc;
    central.leased = false;
    const auto rl = sim::simulate_cluster(parent, loc);
    const auto rc = sim::simulate_cluster(parent, central);
    util::Table lat({"mode", "admitted", "p50 admission", "p99 admission",
                     "makespan"});
    lat.add_row({"leased (rack-local renew)",
                 util::fmt_int(static_cast<std::int64_t>(rl.admitted)),
                 util::fmt_double(rl.p50_admission, 3),
                 util::fmt_double(rl.p99_admission, 3),
                 util::fmt_double(rl.makespan, 1)});
    lat.add_row({"central counting",
                 util::fmt_int(static_cast<std::int64_t>(rc.admitted)),
                 util::fmt_double(rc.p50_admission, 3),
                 util::fmt_double(rc.p99_admission, 3),
                 util::fmt_double(rc.makespan, 1)});
    bench::emit(lat, opts);
    bench::note(
        "\nsame demand, same tokens: leases keep the admission fast path\n"
        "local (p50 is one local service draw) and renewals mostly one\n"
        "rack round trip away; central counting pays the uplink's FIFO\n"
        "queue on every single admission.",
        opts);
    bench::check("cluster_sim_locality",
                 rl.conserved && rc.conserved &&
                     rl.p99_admission < rc.p99_admission &&
                     rl.p50_admission < rc.p50_admission,
                 opts);

    const auto again = sim::simulate_cluster(parent, part);
    bench::check("cluster_sim_determinism", sim_identical(cp, again), opts);
  }

  return bench::finish(opts);
}
