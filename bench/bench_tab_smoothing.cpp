// Lemma 5.2 (the butterfly D(w) is lgw-smoothing), Lemma 5.3 (E(w) ≅ D(w)),
// and Lemma 6.6 (the C(w,t) prefix N_a,b is (⌊w·lgw/t⌋+2)-smoothing) —
// measured worst-case output smoothness over adversarial random inputs vs
// the paper's bounds. Also covers Fig. 14's two butterfly drawings.
#include <iostream>
#include <string>

#include "cnet/core/butterfly.hpp"
#include "cnet/topology/isomorphism.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {
using namespace cnet;
}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  util::Xoshiro256 rng(0x5300);

  bench::section("Lemma 5.2: butterfly smoothness (worst over 600 random inputs)");
  {
    util::Table table({"network", "measured", "bound lg w", "within"});
    for (const std::size_t w : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      for (const bool forward : {true, false}) {
        const auto net = forward ? core::make_forward_butterfly(w)
                                 : core::make_backward_butterfly(w);
        const auto worst =
            topo::max_output_smoothness_random(net, 600, 50, rng);
        const auto bound = static_cast<seq::Value>(util::ilog2(w));
        table.add_row({(forward ? "D(" : "E(") + std::to_string(w) + ")",
                       util::fmt_int(worst), util::fmt_int(bound),
                       worst <= bound ? "yes" : "NO"});
      }
    }
    bench::emit(table, opts);
  }

  std::puts("");
  bench::section("Lemma 5.3: backward butterfly isomorphic to forward butterfly");
  {
    util::Table table({"w", "isomorphic"});
    for (const std::size_t w : {2u, 4u, 8u, 16u}) {
      const bool iso = topo::are_isomorphic(core::make_backward_butterfly(w),
                                            core::make_forward_butterfly(w));
      table.add_row({util::fmt_int(static_cast<std::int64_t>(w)),
                     iso ? "yes" : "NO"});
    }
    bench::emit(table, opts);
  }

  std::puts("");
  bench::section("Lemma 6.6: smoothness of the C(w,t) prefix N_a,b");
  {
    util::Table table({"prefix", "measured", "bound s", "within"});
    for (const std::size_t w : {4u, 8u, 16u, 32u}) {
      for (const std::size_t p : {1u, 2u, 4u, 8u}) {
        const std::size_t t = p * w;
        const auto net = core::make_counting_prefix(w, t);
        const auto worst =
            topo::max_output_smoothness_random(net, 600, 50, rng);
        const auto bound =
            static_cast<seq::Value>(core::prefix_smoothness_bound(w, t));
        table.add_row(
            {"C'(" + std::to_string(w) + "," + std::to_string(t) + ")",
             util::fmt_int(worst), util::fmt_int(bound),
             worst <= bound ? "yes" : "NO"});
      }
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: measured smoothness never exceeds the bound, and\n"
        "widening t tightens the prefix output (s shrinks to 2).", opts);
  }
  return cnet::bench::finish(opts);
}
