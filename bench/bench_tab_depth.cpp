// Theorem 4.1 / Lemma 3.1: depth identities, and the size ledger of every
// network family (the structural comparison of §1.3.1 / §1.4.1).
//
// depth(C(w,t)) = (lg²w + lgw)/2  — a function of w only, equal to the
// bitonic depth; periodic is lg²w; diffracting tree is lg w. Every row also
// re-verifies the counting property on random inputs, so this bench doubles
// as a large-scale Theorem 4.2 validation.
#include <iostream>
#include <string>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/difftree.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

void add_row(util::Table& table, const std::string& name,
             const topo::Topology& net, std::size_t predicted_depth,
             util::Xoshiro256& rng) {
  const bool counts =
      !topo::check_counting_random(net, 60, 25, rng).has_value();
  table.add_row({name,
                 util::fmt_int(static_cast<std::int64_t>(net.width_in())),
                 util::fmt_int(static_cast<std::int64_t>(net.width_out())),
                 util::fmt_int(static_cast<std::int64_t>(net.depth())),
                 util::fmt_int(static_cast<std::int64_t>(predicted_depth)),
                 net.depth() == predicted_depth ? "yes" : "NO",
                 util::fmt_int(static_cast<std::int64_t>(net.num_balancers())),
                 counts ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  bench::section("Theorem 4.1: depth(C(w,t)) = (lg^2 w + lg w)/2, vs baselines");
  util::Xoshiro256 rng(0xDEP7);
  util::Table table({"network", "w", "t", "depth", "paper", "match",
                     "balancers", "counts"});
  for (const std::size_t w : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::size_t k = util::ilog2(w);
    const std::size_t formula = (k * k + k) / 2;
    add_row(table, "C(" + std::to_string(w) + "," + std::to_string(w) + ")",
            core::make_counting(w, w), formula, rng);
    const std::size_t t_lg = w * k;
    add_row(table,
            "C(" + std::to_string(w) + "," + std::to_string(t_lg) + ")",
            core::make_counting(w, t_lg), formula, rng);
    add_row(table, "bitonic(" + std::to_string(w) + ")",
            baselines::make_bitonic(w), formula, rng);
    add_row(table, "periodic(" + std::to_string(w) + ")",
            baselines::make_periodic(w), k * k, rng);
    add_row(table, "difftree(" + std::to_string(w) + ")",
            baselines::make_diffracting_tree(w), k, rng);
  }
  bench::emit(table, opts);
  bench::note(
      "\npaper claims reproduced:\n"
      " * depth(C(w,t)) independent of t and equal to the bitonic depth;\n"
      " * periodic depth lg^2 w (worse for every w >= 4);\n"
      " * every constructed network satisfies the step property.", opts);
  return cnet::bench::finish(opts);
}
