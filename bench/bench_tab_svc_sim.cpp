// Table B′ — the multi-core rerun of bench_tab_svc Table B, answered in
// virtual time: sim::simulate_multicore drives the svc-layer models with P
// simulated cores, so the central→network crossover and the organic
// adaptive switch are observable (and CI-gated) on any host, including the
// 1-vCPU dev container where the real-thread bench cannot contend a cache
// line. Deterministic from the fixed seed: every number reproduces
// bit-identically.
//
// Table B′ — consume(1) ops per virtual second for every backend spec as
//            the simulated core count grows.
// Table B′a — adaptive detail: organic switch time, ops at the switch,
//            observed stall events per core count.
// Table B′e — elimination detail: pairs / withdrawals per core count.
//
// Named checks (fail the run via --json, which is what CI gates on):
//   svc_sim_conservation                — every spec × core count conserves
//                                         tokens exactly, pool bound at 0;
//   svc_sim_crossover_network_vs_central— network >= 2x central-atomic
//                                         ops/virtual-sec at the largest
//                                         core count;
//   svc_sim_central_wins_singlecore     — ...and the opposite at 1 core,
//                                         the paper's other half;
//   svc_sim_adaptive_organic_switch     — the adaptive spec switched on its
//                                         own at the largest core count;
//   svc_sim_adaptive_stays_cold_singlecore — and did not at 1 core;
//   svc_sim_elim_pairs_recorded         — the elimination front-end paired
//                                         ops at the largest core count;
//   svc_sim_determinism                 — a re-run with the same seed
//                                         reproduces Table B′ exactly.
#include <string>
#include <vector>

#include "cnet/sim/multicore.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

sim::MulticoreConfig base_config(std::size_t cores, bool smoke) {
  sim::MulticoreConfig cfg;
  cfg.cores = cores;
  cfg.ops_per_core = smoke ? 512 : 2048;
  cfg.refill_every = smoke ? 64 : 256;
  cfg.initial_tokens_per_core = cfg.refill_every;
  // Exponential service draws: access-time variance is what makes queueing
  // depth (and the network's width) matter, as in bench_tab_throughput_sim.
  cfg.exponential_service = true;
  cfg.seed = 0xB10C0DE;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);

  const std::vector<std::size_t> core_sweep =
      opts.smoke ? std::vector<std::size_t>{1, 4, 16}
                 : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64};
  const std::size_t max_cores = core_sweep.back();
  const auto specs = sim::multicore_sweep_specs();

  // One pass over spec × cores; everything below reads from this grid.
  std::vector<std::vector<sim::MulticoreResult>> grid(specs.size());
  bool all_conserved = true;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    for (const auto cores : core_sweep) {
      grid[s].push_back(
          sim::simulate_multicore(specs[s], base_config(cores, opts.smoke)));
      all_conserved = all_conserved && grid[s].back().conserved;
    }
  }
  auto result_for = [&](const svc::BackendSpec& want,
                        std::size_t cores) -> const sim::MulticoreResult& {
    for (std::size_t s = 0; s < specs.size(); ++s) {
      if (specs[s].kind != want.kind ||
          specs[s].elimination != want.elimination) {
        continue;
      }
      for (std::size_t c = 0; c < core_sweep.size(); ++c) {
        if (core_sweep[c] == cores) return grid[s][c];
      }
    }
    std::abort();  // spec_list/core_sweep are closed sets
  };

  bench::section("Table B': consume(1) ops per virtual sec vs simulated cores");
  {
    std::vector<std::string> header{"backend"};
    for (const auto c : core_sweep) {
      header.push_back(std::to_string(c) + " cores");
    }
    util::Table table(header);
    for (std::size_t s = 0; s < specs.size(); ++s) {
      std::vector<std::string> row{svc::backend_spec_name(specs[s])};
      for (std::size_t c = 0; c < core_sweep.size(); ++c) {
        row.push_back(util::fmt_double(grid[s][c].ops_per_vtime, 3));
      }
      table.add_row(row);
    }
    bench::emit(table, opts);
    const double central1 =
        result_for({svc::BackendKind::kCentralAtomic, false}, 1)
            .ops_per_vtime;
    const double network1 =
        result_for({svc::BackendKind::kNetwork, false}, 1).ops_per_vtime;
    const double centralP =
        result_for({svc::BackendKind::kCentralAtomic, false}, max_cores)
            .ops_per_vtime;
    const double networkP =
        result_for({svc::BackendKind::kNetwork, false}, max_cores)
            .ops_per_vtime;
    bench::note("\nnetwork/central-atomic at " + std::to_string(max_cores) +
                    " cores: " + util::fmt_ratio(networkP, centralP, 2) +
                    "   at 1 core: " + util::fmt_ratio(network1, central1, 2) +
                    "\n(the paper's inversion: the central word wins "
                    "uncontended, the\nnetwork wins once the word is the "
                    "bottleneck)",
                opts);
    bench::check("svc_sim_crossover_network_vs_central",
                 networkP >= 2.0 * centralP, opts);
    bench::check("svc_sim_central_wins_singlecore", central1 > network1,
                 opts);
  }

  std::puts("");
  bench::section("Table B'a: adaptive backend, organic switch vs cores");
  {
    util::Table table({"cores", "switched", "switch vtime", "ops at switch",
                       "stall events", "ops/vsec"});
    const svc::BackendSpec adaptive{svc::BackendKind::kAdaptive, false};
    for (const auto cores : core_sweep) {
      const auto& r = result_for(adaptive, cores);
      table.add_row({std::to_string(cores), r.switched ? "yes" : "no",
                     r.switched ? util::fmt_double(r.switch_time, 2) : "-",
                     r.switched ? std::to_string(r.ops_at_switch) : "-",
                     std::to_string(r.stall_events),
                     util::fmt_double(r.ops_per_vtime, 3)});
    }
    bench::emit(table, opts);
    bench::note(
        "\nthe switch is organic: no force_switch, just the shared\n"
        "svc::should_switch rule over windows of simulated stall events.",
        opts);
    bench::check("svc_sim_adaptive_organic_switch",
                 result_for(adaptive, max_cores).switched, opts);
    bench::check("svc_sim_adaptive_stays_cold_singlecore",
                 !result_for(adaptive, 1).switched, opts);
  }

  std::puts("");
  bench::section("Table B'e: elimination front-end pairing vs cores");
  {
    util::Table table({"backend", "cores", "pairs", "withdrawals",
                       "pairs/1k ops"});
    for (std::size_t s = 0; s < specs.size(); ++s) {
      if (!specs[s].elimination) continue;
      for (std::size_t c = 0; c < core_sweep.size(); ++c) {
        const auto& r = grid[s][c];
        table.add_row(
            {svc::backend_spec_name(specs[s]),
             std::to_string(core_sweep[c]), std::to_string(r.elim_pairs),
             std::to_string(r.elim_withdrawals),
             util::fmt_double(1000.0 * static_cast<double>(r.elim_pairs) /
                                  static_cast<double>(r.consume_ops),
                              2)});
      }
    }
    bench::emit(table, opts);
    bench::note(
        "\nconsume-heavy mix: decrements deposit briefly, bulk refills\n"
        "catch them — pairs never enter the backend at all.",
        opts);
    const svc::BackendSpec elim_batched{svc::BackendKind::kBatchedNetwork,
                                        true};
    bench::check("svc_sim_elim_pairs_recorded",
                 result_for(elim_batched, max_cores).elim_pairs > 0, opts);
  }

  bench::check("svc_sim_conservation", all_conserved, opts);

  // Determinism: the whole point of answering Table B in virtual time is
  // that the numbers reproduce anywhere — re-run one cell and compare
  // every field that reaches the tables.
  {
    const svc::BackendSpec adaptive{svc::BackendKind::kAdaptive, false};
    const auto& first = result_for(adaptive, max_cores);
    const auto again = sim::simulate_multicore(
        adaptive, base_config(max_cores, opts.smoke));
    const bool identical = first.ops_per_vtime == again.ops_per_vtime &&
                           first.makespan == again.makespan &&
                           first.consumed == again.consumed &&
                           first.stall_events == again.stall_events &&
                           first.switch_time == again.switch_time &&
                           first.ops_at_switch == again.ops_at_switch;
    bench::check("svc_sim_determinism", identical, opts);
  }

  return bench::finish(opts);
}
